// Domain scenario 4: simultaneous gate + wire sizing (paper §2.1: "the
// approach developed in this paper can simultaneously handle both").
// Wire vertices join the same sizing IR, so the identical D/W machinery
// optimizes them — no new algorithm needed.
#include <cstdio>

#include "gen/blocks.h"
#include "sizing/minflotransit.h"
#include "timing/lowering.h"

using namespace mft;

int main() {
  Netlist nl = make_comparator(8);
  std::printf("circuit: %s (%d gates)\n\n", nl.name().c_str(),
              nl.num_logic_gates());

  GateLoweringOptions wires;
  wires.size_wires = true;
  for (bool with_wires : {false, true}) {
    LoweredCircuit lc = with_wires ? lower_gate_level(nl, Tech{}, wires)
                                   : lower_gate_level(nl, Tech{});
    const double dmin = min_sized_delay(lc.net);
    const double floor_d = run_tilos(lc.net, 0.05 * dmin).achieved_delay;
    const double target = floor_d + 0.3 * (dmin - floor_d);
    const MinflotransitResult r = run_minflotransit(lc.net, target);
    std::printf("%-22s %4d sizeable | Dmin %7.1f | TILOS %8.1f | MFT %8.1f "
                "| %.2f%% saved\n",
                with_wires ? "gates + wires" : "gates only",
                lc.net.num_sizeable(), dmin, r.initial.area, r.area,
                100.0 * (1.0 - r.area / r.initial.area));
    if (with_wires) {
      // Largest wires chosen by the optimizer.
      double max_wire = 0.0;
      std::string which;
      for (NodeId v = 0; v < lc.net.num_vertices(); ++v) {
        if (lc.net.vertex(v).kind != VertexKind::kWire) continue;
        if (r.sizes[static_cast<std::size_t>(v)] > max_wire) {
          max_wire = r.sizes[static_cast<std::size_t>(v)];
          which = lc.net.name(v);
        }
      }
      std::printf("  widest wire: %s at %.2f units\n", which.c_str(), max_wire);
    }
  }
  return 0;
}
