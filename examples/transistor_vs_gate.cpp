// Domain scenario 3: true transistor sizing vs the relaxed gate-sizing
// problem (paper feature 2). The same netlist is lowered at both
// granularities and sized to equivalent relative targets; transistor
// sizing can size the two planes and the positions within a stack
// independently, which gate sizing cannot express.
#include <cstdio>

#include "gen/blocks.h"
#include "sizing/minflotransit.h"
#include "timing/lowering.h"

using namespace mft;

namespace {

void report(const char* label, const LoweredCircuit& lc) {
  const double dmin = min_sized_delay(lc.net);
  const double floor_d = run_tilos(lc.net, 0.05 * dmin).achieved_delay;
  const double target = floor_d + 0.3 * (dmin - floor_d);
  const MinflotransitResult r = run_minflotransit(lc.net, target);
  std::printf("%-18s %5d sizeable vertices | target %.2f Dmin | TILOS %8.1f "
              "| MFT %8.1f | %5.2f%% saved | %zu iters\n",
              label, lc.net.num_sizeable(), target / dmin, r.initial.area,
              r.area, 100.0 * (1.0 - r.area / r.initial.area),
              r.iterations.size());
}

}  // namespace

int main() {
  Netlist nl = make_ripple_adder(8);
  std::printf("circuit: %s (%d NAND gates)\n\n", nl.name().c_str(),
              nl.num_logic_gates());

  report("gate sizing", lower_gate_level(nl, Tech{}));
  report("transistor sizing", lower_transistor_level(nl, Tech{}));

  // Show the intra-gate freedom transistor sizing exploits: in a sized
  // NAND2 stack, the output-side and rail-side NMOS need not match.
  LoweredCircuit lc = lower_transistor_level(nl, Tech{});
  const double dmin = min_sized_delay(lc.net);
  const MinflotransitResult r = run_minflotransit(lc.net, 0.6 * dmin);
  int shown = 0;
  std::printf("\nsample per-transistor sizes (output-side n0 vs rail-side n1):\n");
  for (NodeId v = 0; v + 1 < lc.net.num_vertices() && shown < 5; ++v) {
    const auto& name = lc.net.name(v);
    if (name.size() > 3 && name.substr(name.size() - 3) == "_n0") {
      const auto& next = lc.net.name(v + 1);
      if (next.substr(next.size() - 3) == "_n1") {
        std::printf("  %-14s %5.2f   %-14s %5.2f\n", name.c_str(),
                    r.sizes[static_cast<std::size_t>(v)], next.c_str(),
                    r.sizes[static_cast<std::size_t>(v) + 1]);
        ++shown;
      }
    }
  }
  return 0;
}
