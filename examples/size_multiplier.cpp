// Domain scenario 1: the paper's headline case. Array multipliers (c6288's
// function class) have thousands of competing reconvergent near-critical
// paths, which defeats TILOS's greedy one-transistor-at-a-time strategy —
// exactly where the D-phase's global slack redistribution pays off.
//
// Sizes an 8x8 Braun multiplier across three delay targets and shows the
// widening MINFLOTRANSIT-vs-TILOS gap.
#include <cstdio>

#include "gen/blocks.h"
#include "netlist/stats.h"
#include "sizing/minflotransit.h"
#include "timing/lowering.h"

using namespace mft;

int main() {
  Netlist nl = make_array_multiplier(8);
  std::printf("%s: %s\n", nl.name().c_str(),
              to_string(compute_stats(nl)).c_str());

  LoweredCircuit lc = lower_gate_level(nl, Tech{});
  const double dmin = min_sized_delay(lc.net);
  const double floor_d = run_tilos(lc.net, 0.05 * dmin).achieved_delay;
  std::printf("Dmin = %.1f, sizing floor = %.2f Dmin\n\n", dmin,
              floor_d / dmin);

  std::printf("%-12s %-14s %-14s %-9s %s\n", "target", "TILOS area",
              "MFT area", "savings", "iterations");
  for (double lambda : {0.6, 0.3, 0.1}) {
    const double target = floor_d + lambda * (dmin - floor_d);
    const MinflotransitResult r = run_minflotransit(lc.net, target);
    if (!r.initial.met_target) continue;
    std::printf("%5.2f Dmin   %-14.1f %-14.1f %6.2f%%   %zu\n", target / dmin,
                r.initial.area, r.area,
                100.0 * (1.0 - r.area / r.initial.area), r.iterations.size());
  }
  std::printf("\nThe gap widens as the target tightens: with many "
              "simultaneously-critical paths,\ngreedy bumping oversizes "
              "whole cones that the min-cost-flow budget shift avoids.\n");
  return 0;
}
