// Domain scenario 2: the drop-in flow for real netlists. Writes an ISCAS85
// .bench file to disk, parses it back (the same path a genuine c432.bench
// would take), sizes it, and emits a CSV sizing report — the shape of a
// production tool's CLI.
//
// Usage: custom_bench_file [path/to/netlist.bench]
// With no argument, a demo file is generated first.
#include <cstdio>

#include "gen/iscas_analog.h"
#include "netlist/bench_io.h"
#include "netlist/stats.h"
#include "sizing/minflotransit.h"
#include "timing/lowering.h"

using namespace mft;

int main(int argc, char** argv) {
  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    path = "/tmp/mft_demo_c432.bench";
    write_bench_file(make_iscas_analog("c432"), path);
    std::printf("no input given — wrote demo netlist to %s\n", path.c_str());
  }

  const Netlist nl = read_bench_file(path);
  std::string why;
  if (!nl.validate(&why)) {
    std::printf("invalid netlist: %s\n", why.c_str());
    return 1;
  }
  std::printf("parsed %s: %s\n", path.c_str(),
              to_string(compute_stats(nl)).c_str());

  LoweredCircuit lc = lower_gate_level(nl, Tech{});
  const double dmin = min_sized_delay(lc.net);
  const double target = 0.55 * dmin;
  const MinflotransitResult r = run_minflotransit(lc.net, target);
  std::printf("target %.2f Dmin: %s — TILOS %.1f, MINFLOTRANSIT %.1f "
              "(%.1f%% saved)\n",
              target / dmin, r.met_target ? "met" : "NOT met", r.initial.area,
              r.area, 100.0 * (1.0 - r.area / r.initial.area));

  // CSV sizing report: gate, size.
  const std::string out = path + ".sizes.csv";
  FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::printf("cannot write %s\n", out.c_str());
    return 1;
  }
  std::fprintf(f, "gate,size\n");
  for (NodeId v = 0; v < lc.net.num_vertices(); ++v)
    if (!lc.net.is_source(v))
      std::fprintf(f, "%s,%.4f\n", lc.net.name(v).c_str(),
                   r.sizes[static_cast<std::size_t>(v)]);
  std::fclose(f);
  std::printf("sizing report: %s\n", out.c_str());
  return 0;
}
