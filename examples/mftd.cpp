// mftd — headless sizing daemon over JSON-lines.
//
// Usage:
//   mftd [--threads N] [--inner-threads N] [--context-cache N]
//        [--max-queue N] [--pressure X] [--no-shed] [--socket PATH]
//        [--journal PATH] [--journal-compact-bytes N]
//
// Default transport is stdin/stdout: one request object per input line,
// one event object per output line (see engine/daemon.h for the
// protocol). --socket PATH serves the same protocol over a Unix stream
// socket instead, one client at a time; the daemon exits after a client
// sends {"op":"shutdown"} (or, in stdio mode, at EOF).
//
// --journal PATH makes accepted work crash-durable: every admitted
// submit is written ahead to an fsync'd journal and every terminal
// result is journaled after it is emitted, so restarting mftd on the
// same path replays exactly the unfinished requests (same journaled
// seeds, bit-identical sizes_hash) before serving new ones. ECO
// sessions ("session":true submits plus "resize"/"release" ops) are
// journaled too: a restart re-runs the session base and re-applies the
// resize chain. --journal-compact-bytes N bounds the file: once it
// grows past N bytes the daemon rewrites it down to its live set (the
// config snapshot plus unfinished work and open sessions).
//
// Shutdown discipline: SIGPIPE is ignored (a client that closes its pipe
// mid-burst must not kill the daemon — pending results just drain to a
// dead fd). The first SIGTERM/SIGINT stops reading, drains every
// admitted job, and exits 0 (a clean stop, same as EOF); a second one
// forces immediate exit with the conventional 128+signo code. The
// handlers are installed without SA_RESTART so a signal interrupts the
// blocking read and the loop notices the stop flag promptly.
//
// All engine semantics live in SizingDaemon (src/engine/daemon.{h,cc});
// this file is transport only, so tests and sanitizer runs cover the
// daemon through the library rather than through a subprocess.
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include "engine/daemon.h"

namespace {

struct Flags {
  mft::DaemonOptions daemon;
  std::string socket_path;
};

volatile std::sig_atomic_t g_stop = 0;

#ifndef _WIN32
extern "C" void on_stop_signal(int sig) {
  if (g_stop != 0) ::_exit(128 + sig);  // second signal: forced stop
  g_stop = 1;
}

void install_signal_handlers() {
  std::signal(SIGPIPE, SIG_IGN);
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = on_stop_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately no SA_RESTART: interrupt blocking reads
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
}
#else
void install_signal_handlers() {}
#endif

[[noreturn]] void usage(int code) {
  std::fprintf(
      code == 0 ? stdout : stderr,
      "usage: mftd [options]\n"
      "  --threads N        engine worker threads (0 = hardware)\n"
      "  --inner-threads N  default inner-loop threads per job\n"
      "  --context-cache N  per-worker context LRU bound (0 = unbounded)\n"
      "  --max-queue N      reject submits at queue depth N (0 = unbounded)\n"
      "  --pressure X       reject deadlined submits whose predicted wait\n"
      "                     exceeds deadline*X (0 = off)\n"
      "  --no-shed          disable overload shedding (on by default)\n"
      "  --socket PATH      serve a Unix stream socket instead of stdio\n"
      "  --journal PATH     write-ahead journal: replay unfinished requests\n"
      "                     on restart, fsync every accepted submit\n"
      "  --journal-compact-bytes N  compact the journal down to its live\n"
      "                     set once it grows past N bytes (0 = never)\n"
      "  --help             this text\n");
  std::exit(code);
}

Flags parse(int argc, char** argv) {
  Flags f;
  auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "error: %s needs a value\n", argv[i]);
      std::exit(2);
    }
    return argv[++i];
  };
  auto int_value = [&](int& i) {
    const char* s = value(i);
    char* end = nullptr;
    const long v = std::strtol(s, &end, 10);
    if (end == s || *end != '\0' || v < 0) {
      std::fprintf(stderr, "error: bad value '%s' for %s\n", s, argv[i - 1]);
      std::exit(2);
    }
    return static_cast<int>(v);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--threads") f.daemon.engine.threads = int_value(i);
    else if (flag == "--inner-threads")
      f.daemon.engine.inner_threads = int_value(i);
    else if (flag == "--context-cache")
      f.daemon.engine.context_cache_limit = int_value(i);
    else if (flag == "--max-queue")
      f.daemon.max_queue_depth = static_cast<std::size_t>(int_value(i));
    else if (flag == "--pressure") {
      const char* s = value(i);
      char* end = nullptr;
      f.daemon.deadline_pressure = std::strtod(s, &end);
      if (end == s || *end != '\0' || f.daemon.deadline_pressure < 0) {
        std::fprintf(stderr, "error: bad --pressure value '%s'\n", s);
        std::exit(2);
      }
    } else if (flag == "--no-shed")
      f.daemon.shed = false;
    else if (flag == "--socket")
      f.socket_path = value(i);
    else if (flag == "--journal")
      f.daemon.journal_path = value(i);
    else if (flag == "--journal-compact-bytes")
      f.daemon.journal_compact_bytes =
          static_cast<std::uint64_t>(int_value(i));
    else if (flag == "--help" || flag == "-h")
      usage(0);
    else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", flag.c_str());
      usage(2);
    }
  }
  return f;
}

int serve_stdio(const mft::DaemonOptions& opt) {
  mft::SizingDaemon daemon(opt, [](const std::string& line) {
    std::fputs(line.c_str(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
  });
#ifndef _WIN32
  // Raw read loop (not iostreams) so an un-restarted signal surfaces as
  // EINTR here and the stop flag is honored mid-blocking-read.
  std::string buf;
  char chunk[4096];
  while (!daemon.shutdown_requested() && g_stop == 0) {
    const ssize_t n = ::read(STDIN_FILENO, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;  // loop re-checks the stop flag
      break;
    }
    if (n == 0) break;  // EOF
    buf.append(chunk, static_cast<std::size_t>(n));
    std::size_t nl;
    while (!daemon.shutdown_requested() &&
           (nl = buf.find('\n')) != std::string::npos) {
      daemon.handle_line(buf.substr(0, nl));
      buf.erase(0, nl + 1);
    }
  }
  if (g_stop == 0 && !daemon.shutdown_requested() && !buf.empty())
    daemon.handle_line(buf);  // unterminated final line at EOF
#else
  std::string line;
  while (!daemon.shutdown_requested() && std::getline(std::cin, line))
    daemon.handle_line(line);
#endif
  if (g_stop != 0)
    std::fprintf(stderr, "mftd: stop signal received, draining\n");
  daemon.drain();
  return 0;  // clean stop — EOF, shutdown op, or drained signal alike
}

#ifndef _WIN32
int serve_socket(const mft::DaemonOptions& opt, const std::string& path) {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("mftd: socket");
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "error: --socket path too long\n");
    return 2;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listener, 1) < 0) {
    std::perror("mftd: bind/listen");
    ::close(listener);
    return 1;
  }
  int client = -1;
  mft::SizingDaemon daemon(opt, [&client](const std::string& line) {
    if (client < 0) return;
    std::string out = line;
    out.push_back('\n');
    std::size_t off = 0;
    while (off < out.size()) {
      const ssize_t n = ::write(client, out.data() + off, out.size() - off);
      if (n <= 0) break;  // client went away; results keep draining
      off += static_cast<std::size_t>(n);
    }
  });
  // One client at a time: accept, serve its lines, loop on disconnect
  // until a client asks for shutdown or a stop signal arrives.
  std::string buf;
  while (!daemon.shutdown_requested() && g_stop == 0) {
    client = ::accept(listener, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;  // loop re-checks the stop flag
      break;
    }
    buf.clear();
    char chunk[4096];
    while (!daemon.shutdown_requested() && g_stop == 0) {
      const ssize_t n = ::read(client, chunk, sizeof(chunk));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      buf.append(chunk, static_cast<std::size_t>(n));
      std::size_t nl;
      while ((nl = buf.find('\n')) != std::string::npos) {
        daemon.handle_line(buf.substr(0, nl));
        buf.erase(0, nl + 1);
      }
    }
    daemon.drain();  // flush results to this client before it goes away
    ::close(client);
    client = -1;
  }
  if (g_stop != 0)
    std::fprintf(stderr, "mftd: stop signal received, draining\n");
  daemon.drain();
  ::close(listener);
  ::unlink(path.c_str());
  return 0;
}
#endif

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = parse(argc, argv);
  install_signal_handlers();
  if (!flags.socket_path.empty()) {
#ifndef _WIN32
    return serve_socket(flags.daemon, flags.socket_path);
#else
    std::fprintf(stderr, "error: --socket is not supported on this platform\n");
    return 2;
#endif
  }
  return serve_stdio(flags.daemon);
}
