// mftd — headless sizing daemon over JSON-lines.
//
// Usage:
//   mftd [--threads N] [--inner-threads N] [--context-cache N]
//        [--max-queue N] [--pressure X] [--no-shed] [--socket PATH]
//
// Default transport is stdin/stdout: one request object per input line,
// one event object per output line (see engine/daemon.h for the
// protocol). --socket PATH serves the same protocol over a Unix stream
// socket instead, one client at a time; the daemon exits after a client
// sends {"op":"shutdown"} (or, in stdio mode, at EOF).
//
// All engine semantics live in SizingDaemon (src/engine/daemon.{h,cc});
// this file is transport only, so tests and sanitizer runs cover the
// daemon through the library rather than through a subprocess.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include "engine/daemon.h"

namespace {

struct Flags {
  mft::DaemonOptions daemon;
  std::string socket_path;
};

[[noreturn]] void usage(int code) {
  std::fprintf(
      code == 0 ? stdout : stderr,
      "usage: mftd [options]\n"
      "  --threads N        engine worker threads (0 = hardware)\n"
      "  --inner-threads N  default inner-loop threads per job\n"
      "  --context-cache N  per-worker context LRU bound (0 = unbounded)\n"
      "  --max-queue N      reject submits at queue depth N (0 = unbounded)\n"
      "  --pressure X       reject deadlined submits whose predicted wait\n"
      "                     exceeds deadline*X (0 = off)\n"
      "  --no-shed          disable overload shedding (on by default)\n"
      "  --socket PATH      serve a Unix stream socket instead of stdio\n"
      "  --help             this text\n");
  std::exit(code);
}

Flags parse(int argc, char** argv) {
  Flags f;
  auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "error: %s needs a value\n", argv[i]);
      std::exit(2);
    }
    return argv[++i];
  };
  auto int_value = [&](int& i) {
    const char* s = value(i);
    char* end = nullptr;
    const long v = std::strtol(s, &end, 10);
    if (end == s || *end != '\0' || v < 0) {
      std::fprintf(stderr, "error: bad value '%s' for %s\n", s, argv[i - 1]);
      std::exit(2);
    }
    return static_cast<int>(v);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--threads") f.daemon.engine.threads = int_value(i);
    else if (flag == "--inner-threads")
      f.daemon.engine.inner_threads = int_value(i);
    else if (flag == "--context-cache")
      f.daemon.engine.context_cache_limit = int_value(i);
    else if (flag == "--max-queue")
      f.daemon.max_queue_depth = static_cast<std::size_t>(int_value(i));
    else if (flag == "--pressure") {
      const char* s = value(i);
      char* end = nullptr;
      f.daemon.deadline_pressure = std::strtod(s, &end);
      if (end == s || *end != '\0' || f.daemon.deadline_pressure < 0) {
        std::fprintf(stderr, "error: bad --pressure value '%s'\n", s);
        std::exit(2);
      }
    } else if (flag == "--no-shed")
      f.daemon.shed = false;
    else if (flag == "--socket")
      f.socket_path = value(i);
    else if (flag == "--help" || flag == "-h")
      usage(0);
    else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", flag.c_str());
      usage(2);
    }
  }
  return f;
}

int serve_stdio(const mft::DaemonOptions& opt) {
  mft::SizingDaemon daemon(opt, [](const std::string& line) {
    std::fputs(line.c_str(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
  });
  std::string line;
  while (!daemon.shutdown_requested() && std::getline(std::cin, line))
    daemon.handle_line(line);
  daemon.drain();
  return 0;
}

#ifndef _WIN32
int serve_socket(const mft::DaemonOptions& opt, const std::string& path) {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("mftd: socket");
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "error: --socket path too long\n");
    return 2;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listener, 1) < 0) {
    std::perror("mftd: bind/listen");
    ::close(listener);
    return 1;
  }
  int client = -1;
  mft::SizingDaemon daemon(opt, [&client](const std::string& line) {
    if (client < 0) return;
    std::string out = line;
    out.push_back('\n');
    std::size_t off = 0;
    while (off < out.size()) {
      const ssize_t n = ::write(client, out.data() + off, out.size() - off);
      if (n <= 0) break;  // client went away; results keep draining
      off += static_cast<std::size_t>(n);
    }
  });
  // One client at a time: accept, serve its lines, loop on disconnect
  // until a client asks for shutdown.
  std::string buf;
  while (!daemon.shutdown_requested()) {
    client = ::accept(listener, nullptr, nullptr);
    if (client < 0) break;
    buf.clear();
    char chunk[4096];
    ssize_t n;
    while (!daemon.shutdown_requested() &&
           (n = ::read(client, chunk, sizeof(chunk))) > 0) {
      buf.append(chunk, static_cast<std::size_t>(n));
      std::size_t nl;
      while ((nl = buf.find('\n')) != std::string::npos) {
        daemon.handle_line(buf.substr(0, nl));
        buf.erase(0, nl + 1);
      }
    }
    daemon.drain();  // flush results to this client before it goes away
    ::close(client);
    client = -1;
  }
  ::close(listener);
  ::unlink(path.c_str());
  return 0;
}
#endif

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = parse(argc, argv);
  if (!flags.socket_path.empty()) {
#ifndef _WIN32
    return serve_socket(flags.daemon, flags.socket_path);
#else
    std::fprintf(stderr, "error: --socket is not supported on this platform\n");
    return 2;
#endif
  }
  return serve_stdio(flags.daemon);
}
