// mft_cli — the full command-line face of the sizer, the entry point a
// downstream user would script against.
//
// Usage:
//   mft_cli --circuit c6288 --target-ratio 0.7 [options]
//   mft_cli --bench path/to/file.bench --target-ratio 0.6 --granularity transistor
//
// Options:
//   --circuit NAME        built-in circuit: c17, adderN, c432..c7552 analogs
//   --bench PATH          read an ISCAS85 .bench file instead
//   --target-ratio R      delay target as a fraction of Dmin (default 0.6)
//   --granularity G       gate | transistor (default gate)
//   --wires               co-size wires (gate granularity only)
//   --tilos-only          stop after the TILOS baseline
//   --beta B              D-phase trust bound (default 0.25)
//   --bumpsize B          TILOS bump factor (default 1.1)
//   --csv PATH            write the per-element sizing CSV
//   --histogram           print the size histogram
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "gen/blocks.h"
#include "gen/iscas_analog.h"
#include "netlist/bench_io.h"
#include "netlist/netlist.h"
#include "netlist/stats.h"
#include "sizing/report.h"
#include "timing/lowering.h"

using namespace mft;

namespace {

struct Args {
  std::string circuit = "c17";
  std::string bench_path;
  std::string csv_path;
  std::string granularity = "gate";
  double target_ratio = 0.6;
  double beta = 0.25;
  double bumpsize = 1.1;
  bool wires = false;
  bool tilos_only = false;
  bool histogram = false;
};

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr, "error: %s\nsee the header of examples/mft_cli.cpp\n",
               msg);
  std::exit(2);
}

Args parse(int argc, char** argv) {
  Args a;
  auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("missing value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string f = argv[i];
    if (f == "--circuit") a.circuit = value(i);
    else if (f == "--bench") a.bench_path = value(i);
    else if (f == "--target-ratio") a.target_ratio = std::atof(value(i));
    else if (f == "--granularity") a.granularity = value(i);
    else if (f == "--wires") a.wires = true;
    else if (f == "--tilos-only") a.tilos_only = true;
    else if (f == "--beta") a.beta = std::atof(value(i));
    else if (f == "--bumpsize") a.bumpsize = std::atof(value(i));
    else if (f == "--csv") a.csv_path = value(i);
    else if (f == "--histogram") a.histogram = true;
    else usage(("unknown flag " + f).c_str());
  }
  if (a.target_ratio <= 0.0 || a.target_ratio > 2.0)
    usage("--target-ratio out of (0, 2]");
  if (a.granularity != "gate" && a.granularity != "transistor")
    usage("--granularity must be gate or transistor");
  if (a.wires && a.granularity != "gate")
    usage("--wires needs --granularity gate");
  return a;
}

Netlist build_circuit(const Args& a) {
  if (!a.bench_path.empty()) return read_bench_file(a.bench_path);
  if (a.circuit == "c17") return make_c17();
  if (a.circuit.rfind("adder", 0) == 0)
    return make_ripple_adder(std::atoi(a.circuit.c_str() + 5));
  return make_iscas_analog(a.circuit);
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  Netlist nl = build_circuit(args);
  std::printf("circuit %s: %s\n", nl.name().c_str(),
              to_string(compute_stats(nl)).c_str());

  if (args.granularity == "transistor" && !nl.is_primitive_only()) {
    std::printf("tech-mapping composites to NAND/NOR/NOT for transistor "
                "sizing...\n");
    nl = tech_map_to_primitives(nl);
  }
  GateLoweringOptions gopt;
  gopt.size_wires = args.wires;
  LoweredCircuit lc = args.granularity == "transistor"
                          ? lower_transistor_level(nl, Tech{})
                          : lower_gate_level(nl, Tech{}, gopt);
  const double dmin = min_sized_delay(lc.net);
  const double target = args.target_ratio * dmin;
  std::printf("%d sizeable elements, Dmin = %.3f, target = %.3f (%.2f Dmin)\n\n",
              lc.net.num_sizeable(), dmin, target, args.target_ratio);

  MinflotransitOptions opt;
  opt.dphase.beta = args.beta;
  opt.tilos.bumpsize = args.bumpsize;
  if (args.tilos_only) opt.max_iterations = 0;

  const MinflotransitResult r = run_minflotransit(lc.net, target, opt);
  if (!r.initial.met_target) {
    std::printf("TARGET UNREACHABLE: best achievable delay %.4f (%.2f Dmin)\n",
                r.initial.achieved_delay, r.initial.achieved_delay / dmin);
    return 1;
  }
  std::printf("%s\n%s", compare_report(lc.net, r).c_str(),
              timing_summary(lc.net, r.sizes).c_str());
  if (args.histogram)
    std::printf("\nsize histogram (xminimum size):\n%s",
                size_histogram(lc.net, r.sizes).c_str());
  if (!args.csv_path.empty()) {
    std::ofstream f(args.csv_path);
    if (!f.good()) {
      std::fprintf(stderr, "cannot write %s\n", args.csv_path.c_str());
      return 1;
    }
    f << sizing_csv(lc.net, r.sizes);
    std::printf("\nwrote %s\n", args.csv_path.c_str());
  }
  return 0;
}
