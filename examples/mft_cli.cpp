// mft_cli — the full command-line face of the sizer, the entry point a
// downstream user would script against. All sizing runs go through the
// engine layer (engine/runner.h): even a single request is a one-job batch,
// and --sweep fans a whole area-delay trade-off curve out across --threads
// workers.
//
// Usage:
//   mft_cli --circuit c6288 --target-ratio 0.7 [options]
//   mft_cli --bench path/to/file.bench --target-ratio 0.6 --granularity transistor
//   mft_cli --circuit c432 --sweep --threads 4 --json sweep.json
//
// Options:
//   --circuit NAME        built-in circuit: c17, adderN, c432..c7552 analogs
//   --bench PATH          read an ISCAS85 .bench file instead
//   --target-ratio R      delay target as a fraction of Dmin (default 0.6)
//   --granularity G       gate | transistor (default gate)
//   --wires               co-size wires (gate granularity only)
//   --tilos-only          stop after the TILOS baseline
//   --beta B              D-phase trust bound (default 0.25)
//   --bumpsize B          TILOS bump factor (default 1.1)
//   --sweep               run the full area-delay trade-off curve instead
//                         of a single target
//   --ratios R1,R2,...    sweep targets as fractions of Dmin
//                         (default 1.0,0.9,0.8,0.7,0.6,0.5,0.4)
//   --threads N           engine worker threads (default: hardware)
//   --inner-threads N     level-parallel STA/W-phase threads per job
//                         (default 0: leftover --threads capacity goes to
//                         the widest jobs; results identical at any value)
//   --json PATH           write the engine batch results as JSON
//   --csv PATH            write the per-element sizing CSV (single run)
//   --histogram           print the size histogram (single run)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "engine/runner.h"
#include "gen/blocks.h"
#include "gen/iscas_analog.h"
#include "netlist/bench_io.h"
#include "netlist/netlist.h"
#include "netlist/stats.h"
#include "sizing/report.h"
#include "timing/lowering.h"
#include "util/str.h"
#include "util/table.h"

using namespace mft;

namespace {

struct Args {
  std::string circuit = "c17";
  std::string bench_path;
  std::string csv_path;
  std::string json_path;
  std::string granularity = "gate";
  std::vector<double> sweep_ratios = {1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4};
  double target_ratio = 0.6;
  double beta = 0.25;
  double bumpsize = 1.1;
  int threads = 0;        // 0 = hardware concurrency
  int inner_threads = 0;  // 0 = runner policy (leftover cores)
  bool sweep = false;
  bool wires = false;
  bool tilos_only = false;
  bool histogram = false;
};

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr, "error: %s\nsee the header of examples/mft_cli.cpp\n",
               msg);
  std::exit(2);
}

std::vector<double> parse_ratio_list(const std::string& s) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    const std::string item = s.substr(pos, comma - pos);
    char* end = nullptr;
    const double v = std::strtod(item.c_str(), &end);
    if (item.empty() || end == item.c_str() || *end != '\0' || v <= 0.0 ||
        v > 2.0)
      usage(("--ratios entry out of (0, 2]: '" + item + "'").c_str());
    out.push_back(v);
    pos = comma + 1;
  }
  if (out.empty()) usage("--ratios needs at least one value");
  return out;
}

Args parse(int argc, char** argv) {
  Args a;
  auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("missing value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string f = argv[i];
    if (f == "--circuit") a.circuit = value(i);
    else if (f == "--bench") a.bench_path = value(i);
    else if (f == "--target-ratio") a.target_ratio = std::atof(value(i));
    else if (f == "--granularity") a.granularity = value(i);
    else if (f == "--wires") a.wires = true;
    else if (f == "--tilos-only") a.tilos_only = true;
    else if (f == "--beta") a.beta = std::atof(value(i));
    else if (f == "--bumpsize") a.bumpsize = std::atof(value(i));
    else if (f == "--sweep") a.sweep = true;
    else if (f == "--ratios") a.sweep_ratios = parse_ratio_list(value(i));
    else if (f == "--threads" || f == "--inner-threads") {
      const char* s = value(i);
      char* end = nullptr;
      const long v = std::strtol(s, &end, 10);
      if (end == s || *end != '\0' || v < 0)
        usage(("bad " + f + " value '" + std::string(s) + "'").c_str());
      (f == "--threads" ? a.threads : a.inner_threads) = static_cast<int>(v);
    }
    else if (f == "--json") a.json_path = value(i);
    else if (f == "--csv") a.csv_path = value(i);
    else if (f == "--histogram") a.histogram = true;
    else usage(("unknown flag " + f).c_str());
  }
  if (a.target_ratio <= 0.0 || a.target_ratio > 2.0)
    usage("--target-ratio out of (0, 2]");
  if (a.granularity != "gate" && a.granularity != "transistor")
    usage("--granularity must be gate or transistor");
  if (a.wires && a.granularity != "gate")
    usage("--wires needs --granularity gate");
  return a;
}

/// Builds the requested circuit, exiting with a clear diagnostic (never
/// silent fallback behavior) when --bench is missing/unparsable or
/// --circuit names no known generator.
Netlist build_circuit(const Args& a) {
  if (!a.bench_path.empty()) {
    std::ifstream probe(a.bench_path);
    if (!probe.good()) {
      std::fprintf(stderr, "error: cannot open --bench file '%s'\n",
                   a.bench_path.c_str());
      std::exit(2);
    }
    try {
      return read_bench_file(a.bench_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: failed to parse --bench file '%s':\n  %s\n",
                   a.bench_path.c_str(), e.what());
      std::exit(2);
    }
  }
  try {
    if (a.circuit == "c17") return make_c17();
    if (a.circuit.rfind("adder", 0) == 0)
      return make_ripple_adder(std::atoi(a.circuit.c_str() + 5));
    return make_iscas_analog(a.circuit);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: unknown --circuit '%s':\n  %s\n",
                 a.circuit.c_str(), e.what());
    std::exit(2);
  }
}

MinflotransitOptions make_options(const Args& args) {
  MinflotransitOptions opt;
  opt.dphase.beta = args.beta;
  opt.tilos.bumpsize = args.bumpsize;
  if (args.tilos_only) opt.max_iterations = 0;
  return opt;
}

int run_single(const Args& args, const LoweredCircuit& lc, double dmin) {
  const double target = args.target_ratio * dmin;
  std::printf("%d sizeable elements, Dmin = %.3f, target = %.3f (%.2f Dmin)\n\n",
              lc.net.num_sizeable(), dmin, target, args.target_ratio);

  SizingJob job;
  job.target_ratio = args.target_ratio;
  job.options = make_options(args);
  job.label = args.circuit + strf("@%.2f", args.target_ratio);

  JobRunnerOptions ropt;
  ropt.threads = args.threads;
  ropt.inner_threads = args.inner_threads;
  const JobRunner runner(ropt);
  const BatchResult batch = runner.run({&lc.net}, {job});
  const JobResult& r = batch.results.front();
  // Write the machine-readable record first: it carries ok/error fields,
  // so scripted callers get it on failure too (as in --sweep mode).
  if (!args.json_path.empty() && !write_batch_json(args.json_path, batch))
    std::fprintf(stderr, "warning: cannot write %s\n", args.json_path.c_str());
  if (!r.ok) {
    std::fprintf(stderr, "error: sizing failed: %s\n", r.error.c_str());
    return 1;
  }
  if (!r.result.initial.met_target) {
    std::printf("TARGET UNREACHABLE: best achievable delay %.4f (%.2f Dmin)\n",
                r.result.initial.achieved_delay,
                r.result.initial.achieved_delay / dmin);
    return 1;
  }
  std::printf("%s\n%s", compare_report(lc.net, r.result).c_str(),
              timing_summary(lc.net, r.result.sizes).c_str());
  std::printf(
      "\nengine     : %d thread%s (%d inner); job wall time %.2fs "
      "(TILOS %.2fs, %d D/W iterations)\n",
      batch.threads_used, batch.threads_used == 1 ? "" : "s", r.inner_threads,
      r.wall_seconds, r.result.tilos_seconds,
      static_cast<int>(r.result.iterations.size()));
  if (args.histogram)
    std::printf("\nsize histogram (xminimum size):\n%s",
                size_histogram(lc.net, r.result.sizes).c_str());
  if (!args.csv_path.empty()) {
    std::ofstream f(args.csv_path);
    if (!f.good()) {
      std::fprintf(stderr, "cannot write %s\n", args.csv_path.c_str());
      return 1;
    }
    f << sizing_csv(lc.net, r.result.sizes);
    std::printf("\nwrote %s\n", args.csv_path.c_str());
  }
  return 0;
}

int run_sweep(const Args& args, const LoweredCircuit& lc, double dmin) {
  const double min_area = lc.net.area(lc.net.min_sizes());
  std::printf("%d sizeable elements, Dmin = %.3f; sweeping %d targets\n\n",
              lc.net.num_sizeable(), dmin,
              static_cast<int>(args.sweep_ratios.size()));

  std::vector<SizingJob> jobs;
  for (const double ratio : args.sweep_ratios) {
    SizingJob job;
    job.target_ratio = ratio;
    job.options = make_options(args);
    job.label = args.circuit + strf("@%.3f", ratio);
    jobs.push_back(std::move(job));
  }

  JobRunnerOptions ropt;
  ropt.threads = args.threads;
  ropt.inner_threads = args.inner_threads;
  ropt.progress = [](const JobResult& r, int done, int total) {
    std::printf("  [%d/%d] %-16s %.2fs on thread %d\n", done, total,
                r.label.c_str(), r.wall_seconds, r.thread);
    std::fflush(stdout);
  };
  const JobRunner runner(ropt);
  const BatchResult batch = runner.run({&lc.net}, jobs);

  Table t({"delay/Dmin", "TILOS area/min", "MFT area/min", "savings",
           "job wall"});
  bool any_failed = false;
  bool any_met = false;
  for (const JobResult& r : batch.results) {
    if (!r.ok) {
      std::fprintf(stderr, "error: job %s failed: %s\n", r.label.c_str(),
                   r.error.c_str());
      any_failed = true;
      continue;
    }
    if (!r.result.initial.met_target) {
      t.add_row({strf("%.3f", r.target / dmin), "unreachable", "-", "-",
                 strf("%.2fs", r.wall_seconds)});
      continue;
    }
    any_met = true;
    const double savings = 100.0 * (1.0 - r.result.area / r.result.initial.area);
    t.add_row({strf("%.3f", r.target / dmin),
               strf("%.3f", r.result.initial.area / min_area),
               strf("%.3f", r.result.area / min_area), strf("%.1f%%", savings),
               strf("%.2fs", r.wall_seconds)});
  }
  std::printf("\n%s", t.to_text().c_str());
  std::printf(
      "\nengine     : %d thread%s; %d jobs in %.2fs (%.2f jobs/s)\n",
      batch.threads_used, batch.threads_used == 1 ? "" : "s",
      static_cast<int>(batch.results.size()), batch.wall_seconds,
      batch.jobs_per_second);
  if (!args.json_path.empty()) {
    if (write_batch_json(args.json_path, batch))
      std::printf("wrote %s\n", args.json_path.c_str());
    else
      std::fprintf(stderr, "warning: cannot write %s\n",
                   args.json_path.c_str());
  }
  // Scriptable exit code, consistent with the single-run mode: nonzero
  // when any job errored or no target on the curve was reachable.
  return (any_failed || !any_met) ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = parse(argc, argv);
  Netlist nl = build_circuit(args);
  if (!args.bench_path.empty()) args.circuit = nl.name();
  std::printf("circuit %s: %s\n", nl.name().c_str(),
              to_string(compute_stats(nl)).c_str());

  if (args.granularity == "transistor" && !nl.is_primitive_only()) {
    std::printf("tech-mapping composites to NAND/NOR/NOT for transistor "
                "sizing...\n");
    nl = tech_map_to_primitives(nl);
  }
  GateLoweringOptions gopt;
  gopt.size_wires = args.wires;
  LoweredCircuit lc = args.granularity == "transistor"
                          ? lower_transistor_level(nl, Tech{})
                          : lower_gate_level(nl, Tech{}, gopt);
  const double dmin = min_sized_delay(lc.net);
  return args.sweep ? run_sweep(args, lc, dmin) : run_single(args, lc, dmin);
}
