// mft_cli — the full command-line face of the sizer, the entry point a
// downstream user would script against. All sizing runs go through the
// engine layer (engine/runner.h): even a single request is a one-job batch,
// and --sweep fans a whole area-delay trade-off curve out across --threads
// workers.
//
// Usage:
//   mft_cli --circuit c6288 --target-ratio 0.7 [options]
//   mft_cli --bench path/to/file.bench --target-ratio 0.6 --granularity transistor
//   mft_cli --circuit c432 --sweep --threads 4 --json sweep.json
//
// Options:
//   --circuit NAME        built-in circuit: c17, adderN, c432..c7552
//                         analogs, tiledLxSxB (see --list-circuits)
//   --list-circuits       print every built-in circuit name and exit
//   --bench PATH          read an ISCAS85 .bench file instead
//   --target-ratio R      delay target as a fraction of Dmin (default 0.6)
//   --granularity G       gate | transistor (default gate)
//   --wires               co-size wires (gate granularity only)
//   --tilos-only          stop after the TILOS baseline
//   --beta B              D-phase trust bound (default 0.25)
//   --bumpsize B          TILOS bump factor (default 1.1)
//   --sweep               run the full area-delay trade-off curve instead
//                         of a single target
//   --ratios R1,R2,...    sweep targets as fractions of Dmin
//                         (default 1.0,0.9,0.8,0.7,0.6,0.5,0.4)
//   --threads N           engine worker threads (default: hardware)
//   --inner-threads N     level-parallel STA/W-phase threads per job
//                         (default 0: leftover --threads capacity goes to
//                         the widest jobs; results identical at any value)
//   --streaming           run single/sweep requests through the persistent
//                         StreamingRunner (submit/poll engine) instead of
//                         the batch wrapper — bit-identical results, with
//                         per-ticket completion reporting; the sharded
//                         mode always streams internally
//   --context-cache N     per-worker context-pool LRU bound (0 = keep one
//                         context per network ever touched); eviction
//                         never changes results
//   --shards K            sharded large-netlist solve: cut the network into
//                         K level bands, size them as parallel engine jobs,
//                         reconcile boundary budgets (sizing/shard.h);
//                         K=1 is bit-identical to the monolithic pipeline
//   --json PATH           write machine-readable results as JSON (engine
//                         batch shape; a shard-summary shape with --shards)
//   --csv PATH            write the per-element sizing CSV (single run)
//   --histogram           print the size histogram (single run)
//   --deadline S          per-job wall-clock deadline in seconds (sharded
//                         mode: deadline for the whole solve); an expired
//                         job returns its best-so-far feasible solution
//                         flagged "degraded"
//   --cancel-after S      streaming modes only: cancel every in-flight
//                         ticket S seconds after submission (exercises
//                         StreamingRunner::cancel)
//   --priority N          streaming only: submit every job at scheduler
//                         priority N (higher dispatches first; results
//                         stay bit-identical — only dispatch order moves)
//   --shed                streaming only: enable overload shedding —
//                         queued jobs whose --deadline has already expired
//                         at dispatch fail fast with status "shed" instead
//                         of burning a worker
//   --eco PATH            ECO serving replay: solve the base target once,
//                         then apply the delta script at PATH against the
//                         warm session — one line per directive:
//                           target <R>       retarget to R x Dmin
//                           load <v> <dB>    add dB to vertex v's fixed load
//                           pin <v> <size>   pin vertex v (size 0 releases)
//                           apply            resize with the staged delta
//                         '#' comments and blank lines are skipped; each
//                         apply prints mode/delay/area and the re-solve
//                         wall time (warm-start resize, not a fresh solve)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/runner.h"
#include "engine/stream.h"
#include "gen/blocks.h"
#include "gen/iscas_analog.h"
#include "gen/tiled.h"
#include "netlist/bench_io.h"
#include "netlist/netlist.h"
#include "netlist/stats.h"
#include "sizing/report.h"
#include "sizing/resize.h"
#include "sizing/shard.h"
#include "timing/lowering.h"
#include "util/stopwatch.h"
#include "util/str.h"
#include "util/table.h"

using namespace mft;

namespace {

struct Args {
  std::string circuit = "c17";
  std::string bench_path;
  std::string csv_path;
  std::string json_path;
  std::string eco_path;
  std::string granularity = "gate";
  std::vector<double> sweep_ratios = {1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4};
  double target_ratio = 0.6;
  double beta = 0.25;
  double bumpsize = 1.1;
  int threads = 0;        // 0 = hardware concurrency
  int inner_threads = 0;  // 0 = runner policy (leftover cores)
  int shards = 0;         // 0 = monolithic solve
  int context_cache = 0;  // 0 = unbounded context pools
  double deadline = 0.0;      // 0 = no deadline
  double cancel_after = -1.0; // < 0 = never cancel
  int priority = 0;           // streaming scheduler priority for all jobs
  bool shed = false;          // streaming: fail expired queued jobs fast
  bool streaming = false;
  bool sweep = false;
  bool wires = false;
  bool tilos_only = false;
  bool histogram = false;
  bool fast_math = false;
};

/// One line per accepted flag — printed whenever parsing fails, so an
/// unknown or malformed flag gets the full menu, not a bare error.
const char* option_listing() {
  return
      "  --circuit NAME        built-in circuit (see --list-circuits)\n"
      "  --list-circuits       print every built-in circuit name and exit\n"
      "  --bench PATH          read an ISCAS85 .bench file instead\n"
      "  --target-ratio R      delay target as a fraction of Dmin (default "
      "0.6)\n"
      "  --granularity G       gate | transistor (default gate)\n"
      "  --wires               co-size wires (gate granularity only)\n"
      "  --tilos-only          stop after the TILOS baseline\n"
      "  --beta B              D-phase trust bound (default 0.25)\n"
      "  --bumpsize B          TILOS bump factor (default 1.1)\n"
      "  --sweep               run the full area-delay trade-off curve\n"
      "  --ratios R1,R2,...    sweep targets as fractions of Dmin\n"
      "  --threads N           engine worker threads (default: hardware)\n"
      "  --inner-threads N     level-parallel STA/W-phase threads per job\n"
      "  --streaming           run through the persistent StreamingRunner\n"
      "  --context-cache N     per-worker context-pool LRU bound\n"
      "  --shards K            sharded solve with K level bands\n"
      "  --deadline S          per-job (or per-solve, with --shards) "
      "wall-clock\n"
      "                        deadline in seconds; expired jobs return "
      "their\n"
      "                        best-so-far feasible solution, flagged "
      "degraded\n"
      "  --cancel-after S      streaming modes only: cancel every ticket S\n"
      "                        seconds after submission\n"
      "  --priority N          streaming only: scheduler priority for every\n"
      "                        job (higher dispatches first; bit-identical\n"
      "                        results, only dispatch order moves)\n"
      "  --shed                streaming only: shed queued jobs whose\n"
      "                        --deadline already expired at dispatch\n"
      "  --eco PATH            solve the base target, then replay the ECO\n"
      "                        delta script at PATH against the warm "
      "session\n"
      "                        (directives: target R | load V DB | pin V S "
      "|\n"
      "                        apply; '#' comments)\n"
      "  --fast-math           FP-reassociated delay folds: faster, "
      "reproducible\n"
      "                        for a fixed binary but NOT bit-identical to "
      "the\n"
      "                        default exact mode (incompatible with "
      "--shards,\n"
      "                        whose reconciliation is bit-identity-gated)\n"
      "  --json PATH           write machine-readable results as JSON\n"
      "  --csv PATH            write the per-element sizing CSV (single "
      "run)\n"
      "  --histogram           print the size histogram (single run)\n";
}

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr, "error: %s\nusage: mft_cli [options]\noptions:\n%s",
               msg, option_listing());
  std::exit(2);
}

/// Every built-in --circuit spelling, one per line (patterns shown with
/// their parameter syntax). Shared by --list-circuits and the unknown
/// circuit diagnostic.
std::string circuit_listing() {
  std::string out;
  out += "  c17             the 6-NAND c17 benchmark\n";
  out += "  adder<N>        N-bit ripple-carry adder, e.g. adder32\n";
  out += "  tiled<L>x<S>x<B> L-lane S-stage B-bit tiled datapath mesh,\n";
  out += "                  e.g. tiled64x48x4 (~110k gates)\n";
  for (const IscasAnalogSpec& spec : iscas85_specs()) {
    const std::size_t pad =
        spec.name.size() < 16 ? 16 - spec.name.size() : 1;
    out += "  " + spec.name + std::string(pad, ' ') + spec.function + "\n";
  }
  return out;
}

/// Parses "tiled<L>x<S>x<B>"; returns false if `name` is not of that form.
bool parse_tiled_name(const std::string& name, TiledDatapathParams& p) {
  int lanes = 0, stages = 0, bits = 0;
  char tail = '\0';
  if (std::sscanf(name.c_str(), "tiled%dx%dx%d%c", &lanes, &stages, &bits,
                  &tail) != 3 ||
      lanes < 1 || stages < 1 || bits < 1)
    return false;
  p.lanes = lanes;
  p.stages = stages;
  p.bits = bits;
  return true;
}

std::vector<double> parse_ratio_list(const std::string& s) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    const std::string item = s.substr(pos, comma - pos);
    char* end = nullptr;
    const double v = std::strtod(item.c_str(), &end);
    if (item.empty() || end == item.c_str() || *end != '\0' || v <= 0.0 ||
        v > 2.0)
      usage(("--ratios entry out of (0, 2]: '" + item + "'").c_str());
    out.push_back(v);
    pos = comma + 1;
  }
  if (out.empty()) usage("--ratios needs at least one value");
  return out;
}

Args parse(int argc, char** argv) {
  Args a;
  auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("missing value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string f = argv[i];
    if (f == "--circuit") a.circuit = value(i);
    else if (f == "--bench") a.bench_path = value(i);
    else if (f == "--target-ratio") a.target_ratio = std::atof(value(i));
    else if (f == "--granularity") a.granularity = value(i);
    else if (f == "--wires") a.wires = true;
    else if (f == "--tilos-only") a.tilos_only = true;
    else if (f == "--beta") a.beta = std::atof(value(i));
    else if (f == "--bumpsize") a.bumpsize = std::atof(value(i));
    else if (f == "--sweep") a.sweep = true;
    else if (f == "--ratios") a.sweep_ratios = parse_ratio_list(value(i));
    else if (f == "--threads" || f == "--inner-threads" || f == "--shards" ||
             f == "--context-cache") {
      const char* s = value(i);
      char* end = nullptr;
      const long v = std::strtol(s, &end, 10);
      if (end == s || *end != '\0' || v < 0)
        usage(("bad " + f + " value '" + std::string(s) + "'").c_str());
      (f == "--threads"         ? a.threads
       : f == "--inner-threads" ? a.inner_threads
       : f == "--shards"        ? a.shards
                                : a.context_cache) = static_cast<int>(v);
    }
    else if (f == "--deadline" || f == "--cancel-after") {
      const char* s = value(i);
      char* end = nullptr;
      const double v = std::strtod(s, &end);
      if (end == s || *end != '\0' || v < 0.0)
        usage(("bad " + f + " value '" + std::string(s) + "'").c_str());
      (f == "--deadline" ? a.deadline : a.cancel_after) = v;
    }
    else if (f == "--priority") {
      const char* s = value(i);
      char* end = nullptr;
      const long v = std::strtol(s, &end, 10);  // negative priorities allowed
      if (end == s || *end != '\0')
        usage(("bad --priority value '" + std::string(s) + "'").c_str());
      a.priority = static_cast<int>(v);
    }
    else if (f == "--shed") a.shed = true;
    else if (f == "--streaming") a.streaming = true;
    else if (f == "--fast-math") a.fast_math = true;
    else if (f == "--list-circuits") {
      std::printf("built-in circuits (--circuit NAME):\n%s",
                  circuit_listing().c_str());
      std::exit(0);
    }
    else if (f == "--eco") a.eco_path = value(i);
    else if (f == "--json") a.json_path = value(i);
    else if (f == "--csv") a.csv_path = value(i);
    else if (f == "--histogram") a.histogram = true;
    else usage(("unknown flag " + f).c_str());
  }
  if (a.target_ratio <= 0.0 || a.target_ratio > 2.0)
    usage("--target-ratio out of (0, 2]");
  if (a.granularity != "gate" && a.granularity != "transistor")
    usage("--granularity must be gate or transistor");
  if (a.wires && a.granularity != "gate")
    usage("--wires needs --granularity gate");
  if (a.shards > 0 && a.sweep)
    usage("--shards is a single-target mode; drop --sweep");
  if (a.cancel_after >= 0.0 && !a.streaming)
    usage("--cancel-after needs --streaming (it cancels tickets)");
  if (a.priority != 0 && !a.streaming)
    usage("--priority needs --streaming (the batch engine ignores it)");
  if (a.shed && !a.streaming)
    usage("--shed needs --streaming (shedding is a queue policy)");
  if (a.fast_math && a.shards > 0)
    usage(
        "--fast-math cannot be combined with --shards: shard "
        "reconciliation depends on bit-identical re-evaluation of boundary "
        "timing, which FP-reassociated folds do not guarantee");
  if (!a.eco_path.empty() && (a.sweep || a.shards > 0 || a.streaming))
    usage(
        "--eco is a single warm-session mode; drop --sweep / --shards / "
        "--streaming");
  return a;
}

/// Builds the requested circuit, exiting with a clear diagnostic (never
/// silent fallback behavior) when --bench is missing/unparsable or
/// --circuit names no known generator.
Netlist build_circuit(const Args& a) {
  if (!a.bench_path.empty()) {
    std::ifstream probe(a.bench_path);
    if (!probe.good()) {
      std::fprintf(stderr, "error: cannot open --bench file '%s'\n",
                   a.bench_path.c_str());
      std::exit(2);
    }
    try {
      return read_bench_file(a.bench_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: failed to parse --bench file '%s':\n  %s\n",
                   a.bench_path.c_str(), e.what());
      std::exit(2);
    }
  }
  try {
    if (a.circuit == "c17") return make_c17();
    if (a.circuit.rfind("adder", 0) == 0)
      return make_ripple_adder(std::atoi(a.circuit.c_str() + 5));
    TiledDatapathParams tp;
    if (parse_tiled_name(a.circuit, tp)) return make_tiled_datapath(tp);
    return make_iscas_analog(a.circuit);
  } catch (const std::exception& e) {
    std::fprintf(stderr,
                 "error: unknown --circuit '%s':\n  %s\n"
                 "available circuits:\n%s",
                 a.circuit.c_str(), e.what(), circuit_listing().c_str());
    std::exit(2);
  }
}

/// The engine configuration shared by every execution mode; a new knob
/// added here reaches single/sweep/streaming/sharded alike.
JobRunnerOptions make_runner_options(const Args& args) {
  JobRunnerOptions ropt;
  ropt.threads = args.threads;
  ropt.inner_threads = args.inner_threads;
  ropt.context_cache_limit = args.context_cache;
  ropt.fast_math = args.fast_math;
  return ropt;
}

/// Streams `jobs` through the persistent StreamingRunner — submit-all,
/// then ticket-ordered consumption — and repackages the results in the
/// familiar batch shape. Bit-identical to JobRunner::run on the same jobs
/// (submission order == job order makes ticket-derived seeds equal the
/// batch's index-derived ones, and the CLI has the whole list up front,
/// so the batch inner-thread policy is stamped per job too), so every
/// downstream report and JSON path is shared; what --streaming
/// demonstrates is the ticket lifecycle and per-completion reporting of
/// the submit/poll engine.
BatchResult run_streaming(const Args& args, const SizingNetwork& net,
                          std::vector<SizingJob> jobs, bool report) {
  JobRunnerOptions ropt = make_runner_options(args);
  ropt.shed = args.shed;
  Stopwatch sw;
  StreamingRunner stream(ropt);
  const std::vector<int> inner = resolve_batch_inner_threads(
      {&net}, jobs, stream.threads(), ropt.inner_threads);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].inner_threads = inner[i];
    jobs[i].priority = args.priority;
  }
  const int total = static_cast<int>(jobs.size());
  int done = 0;  // callbacks are serialized by the runner
  std::vector<JobTicket> tickets;
  tickets.reserve(jobs.size());
  for (SizingJob& job : jobs) {
    std::function<void(const JobResult&)> on_complete;
    if (report)
      on_complete = [&done, total](const JobResult& r) {
        std::printf("  [ticket %d] %-16s %.2fs on thread %d (%d/%d done)\n",
                    r.job, r.label.c_str(), r.wall_seconds, r.thread, ++done,
                    total);
        std::fflush(stdout);
      };
    tickets.push_back(stream.submit(net, std::move(job),
                                    std::move(on_complete)));
  }
  if (args.cancel_after >= 0.0) {
    // Let the workers get going, then cancel every ticket: queued jobs
    // fail immediately with kCanceled, running ones stop at their next
    // pass/sweep checkpoint. cancel() returns false for already-finished
    // tickets, which is fine here.
    std::this_thread::sleep_for(
        std::chrono::duration<double>(args.cancel_after));
    int hit = 0;
    for (const JobTicket t : tickets)
      if (stream.cancel(t)) ++hit;
    std::printf("  canceled %d of %d in-flight ticket%s after %.3fs\n", hit,
                total, total == 1 ? "" : "s", args.cancel_after);
  }
  BatchResult batch;
  for (const JobTicket t : tickets)
    batch.results.push_back(stream.wait(t));
  if (args.shed) {
    const StreamStats stats = stream.stats();
    if (stats.shed > 0)
      std::printf("  shed %llu queued job%s (deadline expired before "
                  "dispatch)\n",
                  static_cast<unsigned long long>(stats.shed),
                  stats.shed == 1 ? "" : "s");
  }
  batch.threads_used = stream.threads();
  batch.wall_seconds = sw.seconds();
  batch.jobs_per_second =
      batch.wall_seconds > 0.0 ? total / batch.wall_seconds : 0.0;
  return batch;
}

MinflotransitOptions make_options(const Args& args) {
  MinflotransitOptions opt;
  opt.dphase.beta = args.beta;
  opt.tilos.bumpsize = args.bumpsize;
  if (args.tilos_only) opt.max_iterations = 0;
  return opt;
}

/// Shared single-solution epilogue (--histogram / --csv), used by the
/// single-target and sharded modes. Returns false on an I/O failure.
bool write_solution_outputs(const Args& args, const LoweredCircuit& lc,
                            const std::vector<double>& sizes) {
  if (args.histogram)
    std::printf("\nsize histogram (xminimum size):\n%s",
                size_histogram(lc.net, sizes).c_str());
  if (!args.csv_path.empty()) {
    std::ofstream f(args.csv_path);
    if (!f.good()) {
      std::fprintf(stderr, "cannot write %s\n", args.csv_path.c_str());
      return false;
    }
    f << sizing_csv(lc.net, sizes);
    std::printf("\nwrote %s\n", args.csv_path.c_str());
  }
  return true;
}

int run_single(const Args& args, const LoweredCircuit& lc, double dmin) {
  const double target = args.target_ratio * dmin;
  std::printf("%d sizeable elements, Dmin = %.3f, target = %.3f (%.2f Dmin)\n\n",
              lc.net.num_sizeable(), dmin, target, args.target_ratio);

  SizingJob job;
  job.target_ratio = args.target_ratio;
  job.options = make_options(args);
  job.label = args.circuit + strf("@%.2f", args.target_ratio);
  job.deadline_seconds = args.deadline;

  BatchResult batch;
  if (args.streaming) {
    batch = run_streaming(args, lc.net, {job}, /*report=*/false);
  } else {
    batch = JobRunner(make_runner_options(args)).run({&lc.net}, {job});
  }
  const JobResult& r = batch.results.front();
  // Write the machine-readable record first: it carries ok/error fields,
  // so scripted callers get it on failure too (as in --sweep mode).
  if (!args.json_path.empty() && !write_batch_json(args.json_path, batch))
    std::fprintf(stderr, "warning: cannot write %s\n", args.json_path.c_str());
  if (!r.ok) {
    std::fprintf(stderr, "error: sizing failed [%s]: %s\n",
                 to_string(r.status), r.error.c_str());
    return 1;
  }
  if (r.degraded)
    std::printf("DEGRADED [%s]: reporting the best-so-far feasible "
                "solution\n",
                to_string(r.status));
  if (!r.result.initial.met_target) {
    std::printf("TARGET UNREACHABLE: best achievable delay %.4f (%.2f Dmin)\n",
                r.result.initial.achieved_delay,
                r.result.initial.achieved_delay / dmin);
    return 1;
  }
  std::printf("%s\n%s", compare_report(lc.net, r.result).c_str(),
              timing_summary(lc.net, r.result.sizes).c_str());
  std::printf(
      "\nengine     : %d thread%s (%d inner); job wall time %.2fs "
      "(TILOS %.2fs, %d D/W iterations)\n",
      batch.threads_used, batch.threads_used == 1 ? "" : "s", r.inner_threads,
      r.wall_seconds, r.result.tilos_seconds,
      static_cast<int>(r.result.iterations.size()));
  return write_solution_outputs(args, lc, r.result.sizes) ? 0 : 1;
}

int run_sharded(const Args& args, const LoweredCircuit& lc, double dmin) {
  const double target = args.target_ratio * dmin;
  std::printf(
      "%d sizeable elements, Dmin = %.3f, target = %.3f (%.2f Dmin), "
      "%d shards\n\n",
      lc.net.num_sizeable(), dmin, target, args.target_ratio, args.shards);

  ShardOptions opt;
  opt.num_shards = args.shards;
  opt.options = make_options(args);
  opt.deadline_seconds = args.deadline;
  opt.runner = make_runner_options(args);
  opt.runner.progress = [](const JobResult& r, int done, int total) {
    std::printf("  [%d/%d] %-16s %.2fs on thread %d\n", done, total,
                r.label.c_str(), r.wall_seconds, r.thread);
    std::fflush(stdout);
  };
  ShardSolveResult r;
  try {
    r = run_sharded_solve(lc.net, target, opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: sharded solve failed: %s\n", e.what());
    return 1;
  }
  std::printf("\n");
  if (r.degraded)
    std::printf("DEGRADED [%s]: reporting the best-so-far feasible "
                "solution\n",
                to_string(r.status));
  // Machine-readable record first, like the single/sweep modes: scripted
  // callers get it even when the target turns out unreachable.
  if (!args.json_path.empty()) {
    std::FILE* f = std::fopen(args.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n",
                   args.json_path.c_str());
    } else {
      std::fprintf(
          f,
          "{\n  \"mode\": \"sharded\", \"shards\": %d, \"met_target\": %s,\n"
          "  \"dmin\": %.17g, \"target\": %.17g, \"area\": %.17g, "
          "\"delay\": %.17g,\n"
          "  \"shard_jobs\": %d, \"converged\": %s, \"total_seconds\": %.9g,\n"
          "  \"cut_levels\": [",
          r.num_shards, r.result.met_target ? "true" : "false", dmin, target,
          r.result.area, r.result.delay, r.shard_jobs,
          r.converged ? "true" : "false", r.result.total_seconds);
      for (std::size_t i = 0; i < r.cut_levels.size(); ++i)
        std::fprintf(f, "%s%d", i ? ", " : "", r.cut_levels[i]);
      std::fprintf(f, "],\n  \"rounds\": [\n");
      for (std::size_t i = 0; i < r.rounds.size(); ++i) {
        const ShardRound& rr = r.rounds[i];
        std::fprintf(f,
                     "    {\"critical_path\": %.17g, \"area\": %.17g, "
                     "\"met_target\": %s, \"shards_solved\": %d, "
                     "\"wall_seconds\": %.9g}%s\n",
                     rr.critical_path, rr.area,
                     rr.met_target ? "true" : "false", rr.shards_solved,
                     rr.wall_seconds, i + 1 < r.rounds.size() ? "," : "");
      }
      std::fprintf(f, "  ]\n}\n");
      std::fclose(f);
      std::printf("wrote %s\n", args.json_path.c_str());
    }
  }
  if (!r.result.met_target) {
    std::printf("TARGET UNREACHABLE: best stitched delay %.4f (%.2f Dmin)\n",
                r.result.initial.achieved_delay,
                r.result.initial.achieved_delay / dmin);
    return 1;
  }
  std::printf("%s\n%s", compare_report(lc.net, r.result).c_str(),
              timing_summary(lc.net, r.result.sizes).c_str());
  std::string cuts;
  for (std::size_t i = 0; i < r.cut_levels.size(); ++i)
    cuts += (i ? "," : "") + std::to_string(r.cut_levels[i]);
  std::printf(
      "\nsharding   : %d shards (cut levels %s); %d reconciliation "
      "round%s, %d shard jobs, %sconverged; total %.2fs\n",
      r.num_shards, cuts.c_str(), static_cast<int>(r.rounds.size()),
      r.rounds.size() == 1 ? "" : "s", r.shard_jobs,
      r.converged ? "" : "NOT ", r.result.total_seconds);
  return write_solution_outputs(args, lc, r.result.sizes) ? 0 : 1;
}

int run_sweep(const Args& args, const LoweredCircuit& lc, double dmin) {
  const double min_area = lc.net.area(lc.net.min_sizes());
  std::printf("%d sizeable elements, Dmin = %.3f; sweeping %d targets\n\n",
              lc.net.num_sizeable(), dmin,
              static_cast<int>(args.sweep_ratios.size()));

  std::vector<SizingJob> jobs;
  for (const double ratio : args.sweep_ratios) {
    SizingJob job;
    job.target_ratio = ratio;
    job.options = make_options(args);
    job.label = args.circuit + strf("@%.3f", ratio);
    job.deadline_seconds = args.deadline;
    jobs.push_back(std::move(job));
  }

  BatchResult batch;
  if (args.streaming) {
    batch = run_streaming(args, lc.net, std::move(jobs), /*report=*/true);
  } else {
    JobRunnerOptions ropt = make_runner_options(args);
    ropt.progress = [](const JobResult& r, int done, int total) {
      std::printf("  [%d/%d] %-16s %.2fs on thread %d\n", done, total,
                  r.label.c_str(), r.wall_seconds, r.thread);
      std::fflush(stdout);
    };
    batch = JobRunner(ropt).run({&lc.net}, jobs);
  }

  Table t({"delay/Dmin", "TILOS area/min", "MFT area/min", "savings",
           "job wall"});
  bool any_failed = false;
  bool any_met = false;
  int degraded = 0;
  for (const JobResult& r : batch.results) {
    if (!r.ok) {
      std::fprintf(stderr, "error: job %s failed [%s]: %s\n", r.label.c_str(),
                   to_string(r.status), r.error.c_str());
      any_failed = true;
      continue;
    }
    if (r.degraded) ++degraded;
    if (!r.result.initial.met_target) {
      t.add_row({strf("%.3f", r.target / dmin), "unreachable", "-", "-",
                 strf("%.2fs", r.wall_seconds)});
      continue;
    }
    any_met = true;
    const double savings = 100.0 * (1.0 - r.result.area / r.result.initial.area);
    t.add_row({strf("%.3f", r.target / dmin),
               strf("%.3f", r.result.initial.area / min_area),
               strf("%.3f", r.result.area / min_area), strf("%.1f%%", savings),
               strf("%.2fs", r.wall_seconds)});
  }
  std::printf("\n%s", t.to_text().c_str());
  if (degraded > 0)
    std::printf("\n%d job%s hit a budget and report%s best-so-far feasible "
                "solutions (see \"degraded\" in --json)\n",
                degraded, degraded == 1 ? "" : "s", degraded == 1 ? "s" : "");
  std::printf(
      "\nengine     : %d thread%s; %d jobs in %.2fs (%.2f jobs/s)\n",
      batch.threads_used, batch.threads_used == 1 ? "" : "s",
      static_cast<int>(batch.results.size()), batch.wall_seconds,
      batch.jobs_per_second);
  if (!args.json_path.empty()) {
    if (write_batch_json(args.json_path, batch))
      std::printf("wrote %s\n", args.json_path.c_str());
    else
      std::fprintf(stderr, "warning: cannot write %s\n",
                   args.json_path.c_str());
  }
  // Scriptable exit code, consistent with the single-run mode: nonzero
  // when any job errored or no target on the curve was reachable.
  return (any_failed || !any_met) ? 1 : 0;
}

/// ECO serving replay: one base cold solve opens the warm session, then
/// the delta script drives resize(delta) — the same warm/cold machinery
/// the daemon's "resize" op serves, minus the protocol.
int run_eco(const Args& args, const LoweredCircuit& lc, double dmin) {
  std::ifstream in(args.eco_path);
  if (!in.good()) {
    std::fprintf(stderr, "error: cannot open --eco script '%s'\n",
                 args.eco_path.c_str());
    return 2;
  }
  const double target = args.target_ratio * dmin;
  std::printf("%d sizeable elements, Dmin = %.3f, base target = %.3f "
              "(%.2f Dmin)\n",
              lc.net.num_sizeable(), dmin, target, args.target_ratio);

  ResizeSession session(lc.net);
  Stopwatch base_sw;
  const ResizeResult base = session.solve(target);
  if (!base.ok || !base.met_target) {
    std::fprintf(stderr, "error: base solve %s\n",
                 base.ok ? "missed the target" : base.error.c_str());
    return 1;
  }
  std::printf("base solve : %.2fs  area %.1f  delay %.4f\n\n",
              base_sw.seconds(), base.area, base.delay);

  ResizeDelta staged;
  int line_no = 0, applies = 0;
  double final_area = base.area, final_delay = base.delay;
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string op;
    if (!(ls >> op) || op[0] == '#') continue;
    auto bad = [&](const char* why) {
      std::fprintf(stderr, "error: %s:%d: %s: '%s'\n", args.eco_path.c_str(),
                   line_no, why, line.c_str());
      return 1;
    };
    if (op == "target") {
      double ratio = 0.0;
      if (!(ls >> ratio) || !(ratio > 0.0))
        return bad("target needs a positive Dmin ratio");
      staged.target_delay = ratio * dmin;
    } else if (op == "load") {
      ResizeLoadEdit e;
      if (!(ls >> e.vertex >> e.b_delta))
        return bad("load needs '<vertex> <b_delta>'");
      staged.load_edits.push_back(e);
    } else if (op == "pin") {
      ResizePin p;
      if (!(ls >> p.vertex >> p.size))
        return bad("pin needs '<vertex> <size>' (size 0 releases)");
      staged.pins.push_back(p);
    } else if (op == "apply") {
      Stopwatch sw;
      const ResizeResult r = session.resize(staged);
      if (!r.ok) {
        std::fprintf(stderr, "error: %s:%d: resize rejected: %s\n",
                     args.eco_path.c_str(), line_no, r.error.c_str());
        return 1;
      }
      ++applies;
      final_area = r.area;
      final_delay = r.delay;
      std::printf(
          "apply #%-3d : %8.1fms  %-8s%s delay %.4f / %.4f%s  area %.1f  "
          "dirty %d  region %d\n",
          applies, 1e3 * sw.seconds(), to_string(r.mode),
          r.fell_back ? " (fell back)" : "", r.delay, r.target,
          r.met_target ? "" : "  TARGET MISSED", r.area, r.dirty_vertices,
          r.region_vertices);
      staged = ResizeDelta{};
    } else {
      return bad("unknown directive (target | load | pin | apply)");
    }
  }
  if (!staged.load_edits.empty() || !staged.pins.empty() ||
      staged.target_delay != 0.0)
    std::fprintf(stderr,
                 "warning: %s ends with staged edits and no final 'apply'; "
                 "they were not applied\n",
                 args.eco_path.c_str());
  std::printf("\n%d delta%s applied; final area %.1f, delay %.4f (target "
              "%.4f)\n",
              applies, applies == 1 ? "" : "s", final_area, final_delay,
              session.target());
  return write_solution_outputs(args, lc, session.sizes()) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = parse(argc, argv);
  Netlist nl = build_circuit(args);
  if (!args.bench_path.empty()) args.circuit = nl.name();
  std::printf("circuit %s: %s\n", nl.name().c_str(),
              to_string(compute_stats(nl)).c_str());

  if (args.granularity == "transistor" && !nl.is_primitive_only()) {
    std::printf("tech-mapping composites to NAND/NOR/NOT for transistor "
                "sizing...\n");
    nl = tech_map_to_primitives(nl);
  }
  GateLoweringOptions gopt;
  gopt.size_wires = args.wires;
  LoweredCircuit lc = args.granularity == "transistor"
                          ? lower_transistor_level(nl, Tech{})
                          : lower_gate_level(nl, Tech{}, gopt);
  const double dmin = min_sized_delay(lc.net);
  if (!args.eco_path.empty()) return run_eco(args, lc, dmin);
  if (args.sweep) return run_sweep(args, lc, dmin);
  if (args.shards > 0) return run_sharded(args, lc, dmin);
  return run_single(args, lc, dmin);
}
