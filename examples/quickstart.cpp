// Quickstart: size a small circuit with MINFLOTRANSIT in ~30 lines.
//
//   1. Build (or parse) a netlist.
//   2. Lower it to a sizing network (gate granularity, Elmore delays).
//   3. Pick a delay target relative to the minimum-sized circuit.
//   4. Run MINFLOTRANSIT; inspect the sizes it chose.
#include <cstdio>

#include "gen/blocks.h"
#include "sizing/minflotransit.h"
#include "timing/lowering.h"

using namespace mft;

int main() {
  // The classic 6-NAND c17 benchmark.
  Netlist nl = make_c17();
  std::printf("circuit: %s — %d gates, %d inputs, %d outputs\n",
              nl.name().c_str(), nl.num_logic_gates(), nl.num_inputs(),
              nl.num_outputs());

  // Gate-level lowering with default (normalized) technology parameters.
  LoweredCircuit lc = lower_gate_level(nl, Tech{});

  // Target: 60% of the minimum-sized circuit's critical path.
  const double dmin = min_sized_delay(lc.net);
  const double target = 0.6 * dmin;
  std::printf("Dmin = %.3f, target = %.3f\n", dmin, target);

  const MinflotransitResult r = run_minflotransit(lc.net, target);
  if (!r.met_target) {
    std::printf("target unreachable (best achieved: %.3f)\n", r.delay);
    return 1;
  }
  std::printf("TILOS baseline:   area %.2f at delay %.3f\n", r.initial.area,
              r.initial.achieved_delay);
  std::printf("MINFLOTRANSIT:    area %.2f at delay %.3f (%.1f%% saved, %zu "
              "iterations)\n",
              r.area, r.delay, 100.0 * (1.0 - r.area / r.initial.area),
              r.iterations.size());

  std::printf("\nper-gate sizes:\n");
  for (NodeId v = 0; v < lc.net.num_vertices(); ++v) {
    if (lc.net.is_source(v)) continue;
    std::printf("  %-4s  TILOS %5.2f  ->  MFT %5.2f\n",
                lc.net.name(v).c_str(),
                r.initial.sizes[static_cast<std::size_t>(v)],
                r.sizes[static_cast<std::size_t>(v)]);
  }
  return 0;
}
