// Tests for the timing layer: the sizing IR, STA (eq. (8)), delay
// balancing (Fig. 3/4), gate lowering, and the area/delay linearization
// weights validated by finite differences through the W-phase.
#include <gtest/gtest.h>

#include "gen/blocks.h"
#include "sizing/wphase.h"
#include "timing/delay_balance.h"
#include "timing/lowering.h"
#include "timing/sta.h"
#include "util/rng.h"

namespace mft {
namespace {

// A network of fixed-delay vertices (x = 1, delay = b): lets us hand-check
// STA against a worked example.
struct FixedDelayNet {
  SizingNetwork net{Tech{}};
  std::vector<NodeId> v;

  NodeId source(const std::string& name) {
    SizingVertex s;
    s.kind = VertexKind::kSource;
    v.push_back(net.add_vertex(std::move(s), name));
    return v.back();
  }
  NodeId vertex(const std::string& name, double delay, bool po = false) {
    SizingVertex s;
    s.kind = VertexKind::kGate;
    s.b = delay;
    s.is_po = po;
    v.push_back(net.add_vertex(std::move(s), name));
    return v.back();
  }
  std::vector<double> unit_sizes() const {
    std::vector<double> x(static_cast<std::size_t>(net.num_vertices()), 1.0);
    return x;
  }
};

TEST(Sta, DiamondHandExample) {
  // PI -> A(2) -> {B(3), C(1)} -> D(2, PO).
  FixedDelayNet f;
  const NodeId pi = f.source("pi");
  const NodeId a = f.vertex("A", 2);
  const NodeId b = f.vertex("B", 3);
  const NodeId c = f.vertex("C", 1);
  const NodeId d = f.vertex("D", 2, /*po=*/true);
  f.net.add_arc(pi, a);
  f.net.add_arc(a, b);
  f.net.add_arc(a, c);
  f.net.add_arc(b, d);
  f.net.add_arc(c, d);
  f.net.freeze();

  const TimingReport t = run_sta(f.net, f.unit_sizes());
  EXPECT_DOUBLE_EQ(t.critical_path, 7.0);
  EXPECT_DOUBLE_EQ(t.at[static_cast<std::size_t>(a)], 0.0);
  EXPECT_DOUBLE_EQ(t.at[static_cast<std::size_t>(b)], 2.0);
  EXPECT_DOUBLE_EQ(t.at[static_cast<std::size_t>(c)], 2.0);
  EXPECT_DOUBLE_EQ(t.at[static_cast<std::size_t>(d)], 5.0);
  EXPECT_DOUBLE_EQ(t.rt[static_cast<std::size_t>(d)], 5.0);
  EXPECT_DOUBLE_EQ(t.rt[static_cast<std::size_t>(b)], 2.0);
  EXPECT_DOUBLE_EQ(t.rt[static_cast<std::size_t>(c)], 4.0);
  EXPECT_DOUBLE_EQ(t.slack[static_cast<std::size_t>(c)], 2.0);
  EXPECT_DOUBLE_EQ(t.slack[static_cast<std::size_t>(a)], 0.0);
  EXPECT_TRUE(t.safe(f.net));

  // Edge slack on C->D (arc index 4): RT(D) - AT(C) - delay(C) = 2.
  EXPECT_DOUBLE_EQ(t.edge_slack(f.net, 4), 2.0);

  // The critical path is PI, A, B, D.
  const auto path = t.critical_vertices(f.net);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path[1], a);
  EXPECT_EQ(path[2], b);
  EXPECT_EQ(path[3], d);
}

TEST(DelayBalance, AsapAndAlapAreBalancedAndDisplaced) {
  FixedDelayNet f;
  const NodeId pi = f.source("pi");
  const NodeId a = f.vertex("A", 2);
  const NodeId b = f.vertex("B", 3);
  const NodeId c = f.vertex("C", 1);
  const NodeId d = f.vertex("D", 2, true);
  f.net.add_arc(pi, a);
  f.net.add_arc(a, b);
  const ArcId arc_ac = f.net.dag().num_arcs();
  f.net.add_arc(a, c);
  f.net.add_arc(b, d);
  const ArcId arc_cd = f.net.dag().num_arcs();
  f.net.add_arc(c, d);
  f.net.freeze();
  const auto x = f.unit_sizes();
  const TimingReport t = run_sta(f.net, x);

  const DelayBalance asap = compute_delay_balance(f.net, t, BalanceMode::kAsap);
  const DelayBalance alap = compute_delay_balance(f.net, t, BalanceMode::kAlap);
  std::string why;
  EXPECT_TRUE(check_balanced(f.net, t, asap, &why)) << why;
  EXPECT_TRUE(check_balanced(f.net, t, alap, &why)) << why;

  // ASAP pushes C's 2 units of slack onto the C->D edge; ALAP onto A->C.
  EXPECT_DOUBLE_EQ(asap.arc_fsdu[static_cast<std::size_t>(arc_cd)], 2.0);
  EXPECT_DOUBLE_EQ(asap.arc_fsdu[static_cast<std::size_t>(arc_ac)], 0.0);
  EXPECT_DOUBLE_EQ(alap.arc_fsdu[static_cast<std::size_t>(arc_ac)], 2.0);
  EXPECT_DOUBLE_EQ(alap.arc_fsdu[static_cast<std::size_t>(arc_cd)], 0.0);

  // Theorem 1: the two configurations are FSDU-displaced versions of each
  // other, i.e. FSDU'(i→j) − FSDU(i→j) = r(j) − r(i) with r = t' − t.
  for (ArcId arc = 0; arc < f.net.dag().num_arcs(); ++arc) {
    const NodeId i = f.net.dag().tail(arc);
    const NodeId j = f.net.dag().head(arc);
    const double r_i = alap.schedule[static_cast<std::size_t>(i)] -
                       asap.schedule[static_cast<std::size_t>(i)];
    const double r_j = alap.schedule[static_cast<std::size_t>(j)] -
                       asap.schedule[static_cast<std::size_t>(j)];
    EXPECT_NEAR(alap.arc_fsdu[static_cast<std::size_t>(arc)] -
                    asap.arc_fsdu[static_cast<std::size_t>(arc)],
                r_j - r_i, 1e-12);
  }
}

TEST(DelayBalance, PathSumsEqualCriticalPath) {
  // Property: in a balanced configuration every maximal path's delays plus
  // FSDUs (plus the PO FSDU) add up to exactly CP.
  Netlist nl = make_ripple_adder(6);
  LoweredCircuit lc = lower_gate_level(nl, Tech{});
  const auto x = lc.net.min_sizes();
  const TimingReport t = run_sta(lc.net, x);
  for (BalanceMode mode : {BalanceMode::kAsap, BalanceMode::kAlap}) {
    const DelayBalance bal = compute_delay_balance(lc.net, t, mode);
    std::string why;
    ASSERT_TRUE(check_balanced(lc.net, t, bal, &why)) << why;
    // Random greedy walks source -> sink.
    Rng rng(3);
    const Digraph& g = lc.net.dag();
    for (int walk = 0; walk < 20; ++walk) {
      const auto sources = g.sources();
      NodeId v = sources[rng.index(sources.size())];
      double sum = bal.schedule[static_cast<std::size_t>(v)];
      while (g.out_degree(v) > 0) {
        const ArcId a = g.out_arcs(v)[rng.index(
            static_cast<std::size_t>(g.out_degree(v)))];
        sum += t.delay[static_cast<std::size_t>(v)] +
               bal.arc_fsdu[static_cast<std::size_t>(a)];
        v = g.head(a);
      }
      sum += t.delay[static_cast<std::size_t>(v)] +
             bal.po_fsdu[static_cast<std::size_t>(v)];
      EXPECT_NEAR(sum, bal.critical_path, 1e-9) << "walk " << walk;
    }
  }
}

TEST(GateLowering, InverterChainElmoreByHand) {
  // PI -> inv1 -> inv2(PO). Unit sizes, defaults:
  // delay(inv1) = a_self + (c_in·g(inv2)·x2 + c_wire)/x1
  //             = r·1·c_par·1 + (1·1·1·1 + 0.6)/1 = 0.35 + 1.6 = 1.95
  // delay(inv2) = 0.35 + c_po_load/1 = 4.35.
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId i1 = nl.add_gate(GateKind::kNot, "i1", {a});
  const GateId i2 = nl.add_gate(GateKind::kNot, "i2", {i1});
  nl.mark_output(i2);
  Tech tech;
  tech.c_par = 0.35;  // the hand numbers below assume this value
  LoweredCircuit lc = lower_gate_level(nl, tech);
  auto x = lc.net.min_sizes();
  const NodeId v1 = lc.gate_vertices[static_cast<std::size_t>(i1)][0];
  const NodeId v2 = lc.gate_vertices[static_cast<std::size_t>(i2)][0];
  EXPECT_NEAR(lc.net.delay(v1, x), 1.95, 1e-12);
  EXPECT_NEAR(lc.net.delay(v2, x), 4.35, 1e-12);

  // Upsizing the load gate makes the driver slower, itself faster.
  x[static_cast<std::size_t>(v2)] = 4.0;
  EXPECT_NEAR(lc.net.delay(v1, x), 0.35 + (4.0 + 0.6) / 1.0, 1e-12);
  EXPECT_NEAR(lc.net.delay(v2, x), 0.35 + 4.0 / 4.0, 1e-12);
}

TEST(GateLowering, MultiInputGatesAreSlowerAtEqualSize) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId c = nl.add_input("c");
  const GateId n2 = nl.add_gate(GateKind::kNand, "n2", {a, b});
  const GateId n3 = nl.add_gate(GateKind::kNand, "n3", {a, b, c});
  nl.mark_output(n2);
  nl.mark_output(n3);
  LoweredCircuit lc = lower_gate_level(nl, Tech{});
  const auto x = lc.net.min_sizes();
  EXPECT_GT(lc.net.delay(lc.gate_vertices[static_cast<std::size_t>(n3)][0], x),
            lc.net.delay(lc.gate_vertices[static_cast<std::size_t>(n2)][0], x));
}

TEST(GateLowering, PinMultiplicityCountsTwice) {
  // A gate feeding both pins of a NAND2 contributes twice the pin load.
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId inv = nl.add_gate(GateKind::kNot, "inv", {a});
  const GateId both = nl.add_gate(GateKind::kNand, "both", {inv, inv});
  nl.mark_output(both);
  Netlist nl1;
  const GateId a1 = nl1.add_input("a");
  const GateId b1 = nl1.add_input("b");
  const GateId inv1 = nl1.add_gate(GateKind::kNot, "inv", {a1});
  const GateId one = nl1.add_gate(GateKind::kNand, "one", {inv1, b1});
  nl1.mark_output(one);
  LoweredCircuit lc2 = lower_gate_level(nl, Tech{});
  LoweredCircuit lc1 = lower_gate_level(nl1, Tech{});
  const double d2 = lc2.net.delay(
      lc2.gate_vertices[static_cast<std::size_t>(inv)][0], lc2.net.min_sizes());
  const double d1 = lc1.net.delay(
      lc1.gate_vertices[static_cast<std::size_t>(inv1)][0], lc1.net.min_sizes());
  EXPECT_GT(d2, d1);
}

TEST(GateLowering, WireVerticesExtendTheDag) {
  Netlist nl = make_ripple_adder(4);
  GateLoweringOptions opt;
  opt.size_wires = true;
  LoweredCircuit plain = lower_gate_level(nl, Tech{});
  LoweredCircuit wired = lower_gate_level(nl, Tech{}, opt);
  EXPECT_GT(wired.net.num_vertices(), plain.net.num_vertices());
  // Wire vertices exist exactly for driven nets.
  int wires = 0;
  for (GateId g = 0; g < nl.num_gates(); ++g)
    if (wired.wire_vertices[static_cast<std::size_t>(g)] != kInvalidNode)
      ++wires;
  int driven = 0;
  for (GateId g = 0; g < nl.num_gates(); ++g)
    if (!nl.fanouts(g).empty()) ++driven;
  EXPECT_EQ(wires, driven);
  // STA still runs and yields a finite critical path.
  const TimingReport t = run_sta(wired.net, wired.net.min_sizes());
  EXPECT_GT(t.critical_path, 0.0);
  EXPECT_TRUE(t.safe(wired.net));
}

TEST(Weights, MatchFiniteDifferenceThroughWPhase) {
  // The D-phase linearization claims Δ(Σx) ≈ −C_i·δd_i. Verify through the
  // actual W-phase: perturb one vertex's budget and compare the area change
  // against the analytic weight.
  Netlist nl = make_c17();
  Tech tech;
  tech.min_size = 0.01;  // keep the least fixpoint unclamped
  LoweredCircuit lc = lower_gate_level(nl, tech);

  // A generous interior operating point.
  std::vector<double> x0(static_cast<std::size_t>(lc.net.num_vertices()), 5.0);
  for (NodeId v = 0; v < lc.net.num_vertices(); ++v)
    if (lc.net.is_source(v)) x0[static_cast<std::size_t>(v)] = 0.0;
  std::vector<double> budget(static_cast<std::size_t>(lc.net.num_vertices()));
  for (NodeId v = 0; v < lc.net.num_vertices(); ++v)
    budget[static_cast<std::size_t>(v)] = lc.net.delay(v, x0);
  const WPhaseResult base = solve_wphase(lc.net, budget);
  ASSERT_TRUE(base.feasible);
  const double base_area = lc.net.area(base.sizes);
  const std::vector<double> weights = lc.net.area_delay_weights(base.sizes);

  for (NodeId v = 0; v < lc.net.num_vertices(); ++v) {
    if (lc.net.is_source(v)) continue;
    const double eps = 1e-5 * budget[static_cast<std::size_t>(v)];
    auto perturbed = budget;
    perturbed[static_cast<std::size_t>(v)] += eps;
    const WPhaseResult r = solve_wphase(lc.net, perturbed);
    ASSERT_TRUE(r.feasible);
    const double darea = lc.net.area(r.sizes) - base_area;
    EXPECT_NEAR(darea, -weights[static_cast<std::size_t>(v)] * eps,
                std::abs(weights[static_cast<std::size_t>(v)] * eps) * 0.02 +
                    1e-12)
        << "vertex " << v;
  }
}

TEST(SizingNetwork, InvariantsEnforced) {
  SizingNetwork net{Tech{}};
  SizingVertex src;
  src.kind = VertexKind::kSource;
  const NodeId s = net.add_vertex(src, "s");
  SizingVertex g;
  g.kind = VertexKind::kGate;
  g.b = 1.0;
  const NodeId v = net.add_vertex(g, "g");
  EXPECT_THROW(net.add_load(v, s, 1.0), CheckError);   // loads on sources
  EXPECT_THROW(net.add_load(v, v, 1.0), CheckError);   // self-load
  net.add_arc(s, v);
  net.freeze();
  EXPECT_THROW(net.add_b(v, 1.0), CheckError);  // frozen
  // Degenerate vertex (no loads, b = 0) is rejected at freeze.
  SizingNetwork bad{Tech{}};
  SizingVertex z;
  z.kind = VertexKind::kGate;
  bad.add_vertex(z, "z");
  EXPECT_THROW(bad.freeze(), CheckError);
}

TEST(SizingNetwork, CycleRejectedAtFreeze) {
  SizingNetwork net{Tech{}};
  SizingVertex a;
  a.kind = VertexKind::kGate;
  a.b = 1.0;
  SizingVertex b = a;
  const NodeId va = net.add_vertex(a, "a");
  const NodeId vb = net.add_vertex(b, "b");
  net.add_arc(va, vb);
  net.add_arc(vb, va);
  EXPECT_THROW(net.freeze(), CheckError);
}

}  // namespace
}  // namespace mft
