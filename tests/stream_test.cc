// Streaming engine tests (tier1):
//
//  - SchedQueue laws: deterministic dispatch order (priority desc,
//    deadline asc, ticket asc) with the all-default FIFO reduction,
//    push-after-close, drain-then-fail pop, close waking parked
//    consumers, multi-producer/multi-consumer item conservation.
//  - StreamingRunner semantics: submit-while-workers-run, ticket
//    lifecycle (poll → wait → consumed), wait/submit-after-shutdown error
//    paths, drain vs cancel shutdown, completion callbacks firing exactly
//    once (including for canceled jobs).
//  - The determinism contract: a streamed job set consumed in ticket
//    order is bit-identical to the same jobs run as a JobRunner batch, at
//    1/2/4 workers, including shard-extracted networks solved with inner
//    threads.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <limits>
#include <map>
#include <stdexcept>
#include <thread>
#include <vector>

#include "engine/runner.h"
#include "engine/stream.h"
#include "gen/blocks.h"
#include "gen/tiled.h"
#include "sizing/shard.h"
#include "timing/lowering.h"

namespace mft {
namespace {

LoweredCircuit lower(const Netlist& nl) {
  return lower_gate_level(nl, Tech{});
}

// ---------------------------------------------------------------------------
// SchedQueue
// ---------------------------------------------------------------------------

/// Minimal schedulable payload: the queue only requires a public `key`.
struct QItem {
  SchedKey key;
  int value = 0;
};

/// All-default key except the ticket — the FIFO-equivalent shape every
/// plain submission has.
QItem fifo_item(int i) {
  QItem it;
  it.key.ticket = static_cast<JobTicket>(i);
  it.value = i;
  return it;
}

QItem sched_item(int value, int priority, double deadline_at, JobTicket t) {
  QItem it;
  it.key.priority = priority;
  it.key.deadline_at = deadline_at;
  it.key.ticket = t;
  it.value = value;
  return it;
}

TEST(SchedQueue, AllDefaultKeysDispatchInTicketOrder) {
  SchedQueue<QItem> q;
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(q.push(fifo_item(i)));
  EXPECT_EQ(q.size(), 100u);
  QItem out;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out.value, i);  // FIFO reduction: pop order == push order
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(SchedQueue, OrdersByPriorityThenDeadlineThenTicket) {
  const double inf = std::numeric_limits<double>::infinity();
  SchedQueue<QItem> q;
  ASSERT_TRUE(q.push(sched_item(0, /*priority=*/0, inf, /*ticket=*/0)));
  ASSERT_TRUE(q.push(sched_item(1, /*priority=*/5, inf, /*ticket=*/1)));
  ASSERT_TRUE(q.push(sched_item(2, /*priority=*/5, /*deadline_at=*/1.0,
                                /*ticket=*/2)));
  ASSERT_TRUE(q.push(sched_item(3, /*priority=*/-1, inf, /*ticket=*/3)));
  ASSERT_TRUE(q.push(sched_item(4, /*priority=*/0, /*deadline_at=*/2.0,
                                /*ticket=*/4)));
  // Priority desc first, then earlier deadline, then ticket; no-deadline
  // (+inf) sorts after any finite deadline at the same priority.
  const int expected[] = {2, 1, 4, 0, 3};
  QItem out;
  for (int e : expected) {
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out.value, e);
  }
}

TEST(SchedQueue, EqualKeysPreserveInsertionOrder) {
  // Fully equal keys (same priority, deadline, even ticket): dispatch must
  // still be insertion order — the multiset-stability backstop behind the
  // equal-priority FIFO law.
  SchedQueue<QItem> q;
  for (int i = 0; i < 10; ++i)
    ASSERT_TRUE(q.push(sched_item(i, /*priority=*/3, /*deadline_at=*/7.0,
                                  /*ticket=*/42)));
  QItem out;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out.value, i);
  }
}

TEST(SchedQueue, PushAfterCloseFailsAndDropsTheItem) {
  SchedQueue<QItem> q;
  ASSERT_TRUE(q.push(fifo_item(1)));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.push(fifo_item(2)));
  EXPECT_EQ(q.size(), 1u);  // the rejected item was not enqueued
}

TEST(SchedQueue, PopDrainsEverythingPushedBeforeCloseThenFails) {
  SchedQueue<QItem> q;
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.push(fifo_item(i)));
  q.close();
  QItem out;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.pop(out));  // close never loses queued items
    EXPECT_EQ(out.value, i);
  }
  EXPECT_FALSE(q.pop(out));  // closed and drained
  EXPECT_FALSE(q.try_pop(out));
}

TEST(SchedQueue, CloseWakesAParkedConsumer) {
  SchedQueue<QItem> q;
  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    QItem out;
    const bool got = q.pop(out);  // parks: queue is empty and open
    EXPECT_FALSE(got);
    returned.store(true);
  });
  // The consumer may or may not have parked yet; close() must wake it
  // either way.
  q.close();
  consumer.join();
  EXPECT_TRUE(returned.load());
}

TEST(SchedQueue, MultiProducerMultiConsumerConservesItems) {
  SchedQueue<QItem> q;
  constexpr int kProducers = 4, kConsumers = 4, kPerProducer = 200;
  std::vector<std::thread> threads;
  std::mutex collected_mu;
  std::vector<int> collected;
  for (int c = 0; c < kConsumers; ++c)
    threads.emplace_back([&] {
      QItem out;
      std::vector<int> mine;
      while (q.pop(out)) mine.push_back(out.value);
      std::lock_guard<std::mutex> lock(collected_mu);
      collected.insert(collected.end(), mine.begin(), mine.end());
    });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i)
        ASSERT_TRUE(q.push(fifo_item(p * kPerProducer + i)));
    });
  for (std::thread& t : producers) t.join();
  q.close();
  for (std::thread& t : threads) t.join();
  ASSERT_EQ(collected.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
  std::sort(collected.begin(), collected.end());
  for (int i = 0; i < kProducers * kPerProducer; ++i)
    ASSERT_EQ(collected[static_cast<std::size_t>(i)], i);  // each exactly once
}

TEST(SchedQueue, CloseAndDrainHandsLeftoverItemsBackInDispatchOrder) {
  SchedQueue<QItem> q;
  for (int i = 0; i < 7; ++i) ASSERT_TRUE(q.push(fifo_item(i)));
  ASSERT_TRUE(q.push(sched_item(99, /*priority=*/9, /*deadline_at=*/1.0,
                                /*ticket=*/7)));
  const std::vector<QItem> leftover = q.close_and_drain();
  ASSERT_EQ(leftover.size(), 8u);
  EXPECT_EQ(leftover[0].value, 99);  // best key first
  for (int i = 0; i < 7; ++i)
    EXPECT_EQ(leftover[static_cast<std::size_t>(i + 1)].value, i);
  QItem out;
  EXPECT_FALSE(q.pop(out));  // closed and empty
}

// ---------------------------------------------------------------------------
// StreamingRunner semantics
// ---------------------------------------------------------------------------

TEST(StreamingRunner, TicketLifecycleAndSubmitWhileRunning) {
  Netlist nl = make_c17();
  LoweredCircuit lc = lower(nl);
  JobRunnerOptions opt;
  opt.threads = 2;
  StreamingRunner stream(opt);
  EXPECT_EQ(stream.threads(), 2);

  SizingJob job;
  job.target_ratio = 0.8;
  const JobTicket t0 = stream.submit(lc.net, job);
  EXPECT_EQ(t0, 0u);
  // Jobs keep arriving while workers are already executing earlier ones —
  // the queue never requires the full job list up front.
  std::vector<JobTicket> more;
  for (double ratio : {0.75, 0.7, 0.65, 0.6}) {
    SizingJob j;
    j.target_ratio = ratio;
    more.push_back(stream.submit(lc.net, j));
  }
  const JobResult r0 = stream.wait(t0);
  EXPECT_TRUE(r0.ok) << r0.error;
  EXPECT_TRUE(r0.result.met_target);
  // Submit again after consuming — the pool is persistent.
  SizingJob late;
  late.target_ratio = 0.9;
  const JobTicket tl = stream.submit(lc.net, late);
  EXPECT_EQ(tl, 5u);  // tickets are the monotone submission index
  for (const JobTicket t : more) {
    const JobResult r = stream.wait(t);
    EXPECT_TRUE(r.ok) << r.error;
  }
  stream.wait_all();
  EXPECT_TRUE(stream.poll(tl));  // completed, not yet consumed
  const JobResult rl = stream.wait(tl);
  EXPECT_TRUE(rl.ok);
  EXPECT_FALSE(stream.poll(tl));  // consumed
  const StreamStats stats = stream.stats();
  EXPECT_EQ(stats.submitted, 6u);
  EXPECT_EQ(stats.completed, 6u);
}

TEST(StreamingRunner, WaitAndSubmitErrorPathsAroundShutdown) {
  Netlist nl = make_c17();
  LoweredCircuit lc = lower(nl);
  JobRunnerOptions opt;
  opt.threads = 1;
  StreamingRunner stream(opt);

  EXPECT_THROW(stream.wait(0), std::runtime_error);  // never issued

  SizingJob job;
  job.target_ratio = 0.8;
  const JobTicket t = stream.submit(lc.net, job);
  const JobResult r = stream.wait(t);
  EXPECT_TRUE(r.ok);
  EXPECT_THROW(stream.wait(t), std::runtime_error);  // already consumed

  SizingJob last;
  last.target_ratio = 0.7;
  const JobTicket t2 = stream.submit(lc.net, last);
  stream.shutdown();  // drain: the queued job still runs to completion
  EXPECT_TRUE(stream.is_shutdown());
  EXPECT_THROW(stream.submit(lc.net, last), std::runtime_error);
  const JobResult r2 = stream.wait(t2);  // collectible after shutdown
  EXPECT_TRUE(r2.ok) << r2.error;
  stream.shutdown();  // idempotent
}

TEST(StreamingRunner, CancelShutdownFailsUnstartedJobsAndCallbacksFireOnce) {
  Netlist nl = make_c17();
  LoweredCircuit lc = lower(nl);
  JobRunnerOptions opt;
  opt.threads = 1;
  StreamingRunner stream(opt);

  std::mutex mu;
  std::map<int, int> calls;  // ticket -> callback count
  std::vector<JobTicket> tickets;
  for (int i = 0; i < 8; ++i) {
    SizingJob job;
    job.target_ratio = 0.8;
    job.label = "cb" + std::to_string(i);
    tickets.push_back(stream.submit(lc.net, job, [&](const JobResult& r) {
      std::lock_guard<std::mutex> lock(mu);
      ++calls[r.job];
    }));
  }
  // Cancel immediately: the single worker has started at most a few jobs;
  // everything still queued must complete as ok == false without running.
  stream.shutdown(StreamingRunner::ShutdownMode::kCancel);
  int canceled = 0;
  for (const JobTicket t : tickets) {
    const JobResult r = stream.wait(t);
    if (!r.ok) {
      ++canceled;
      EXPECT_NE(r.error.find("canceled"), std::string::npos) << r.error;
    } else {
      EXPECT_TRUE(r.result.met_target);
    }
  }
  // With 8 quick jobs on one worker, an immediate cancel leaves at least
  // one job unstarted in practice — but the law under test is exactly-once
  // callbacks and a well-formed result per ticket, which holds for any
  // race outcome.
  const StreamStats stats = stream.stats();
  EXPECT_EQ(stats.submitted, 8u);
  EXPECT_EQ(stats.completed, 8u);
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(calls.size(), 8u);  // every job's callback fired...
  for (const auto& kv : calls) EXPECT_EQ(kv.second, 1);  // ...exactly once
  (void)canceled;
}

TEST(StreamingRunner, CallbacksAreSerializedAndSeeTheFinalResult) {
  Netlist nl = make_c17();
  LoweredCircuit lc = lower(nl);
  JobRunnerOptions opt;
  opt.threads = 4;
  StreamingRunner stream(opt);
  std::atomic<int> in_callback{0};
  std::atomic<int> total{0};
  std::vector<JobTicket> tickets;
  for (int i = 0; i < 10; ++i) {
    SizingJob job;
    job.target_ratio = 0.85 - 0.02 * i;
    tickets.push_back(stream.submit(lc.net, job, [&](const JobResult& r) {
      EXPECT_EQ(in_callback.fetch_add(1), 0);  // never concurrent
      EXPECT_TRUE(r.ok);
      EXPECT_GT(r.result.area, 0.0);
      ++total;
      in_callback.fetch_sub(1);
    }));
  }
  stream.wait_all();
  EXPECT_EQ(total.load(), 10);
  for (const JobTicket t : tickets) EXPECT_TRUE(stream.poll(t));
}

TEST(StreamingRunner, DetachedSubmissionsRetainNothing) {
  Netlist nl = make_c17();
  LoweredCircuit lc = lower(nl);
  JobRunnerOptions opt;
  opt.threads = 2;
  StreamingRunner stream(opt);
  std::mutex mu;
  std::vector<double> areas;
  std::vector<JobTicket> tickets;
  for (int i = 0; i < 6; ++i) {
    SizingJob job;
    job.target_ratio = 0.85 - 0.03 * i;
    tickets.push_back(
        stream.submit_detached(lc.net, job, [&](const JobResult& r) {
          std::lock_guard<std::mutex> lock(mu);
          ASSERT_TRUE(r.ok) << r.error;
          areas.push_back(r.result.area);
        }));
  }
  stream.wait_all();
  // The callbacks were the delivery: nothing parks in the runner, so a
  // long-lived callback-driven consumer stays flat.
  const StreamStats stats = stream.stats();
  EXPECT_EQ(stats.completed, 6u);
  EXPECT_EQ(stats.ready, 0u);
  for (const JobTicket t : tickets) {
    EXPECT_FALSE(stream.poll(t));
    EXPECT_THROW(stream.wait(t), std::runtime_error);
  }
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(areas.size(), 6u);
  // A detached submit without a callback is a programming error (the
  // result would be delivered nowhere).
  SizingJob job;
  EXPECT_THROW(stream.submit_detached(lc.net, job, nullptr), CheckError);
}

// ---------------------------------------------------------------------------
// Per-ticket cancellation
// ---------------------------------------------------------------------------

TEST(StreamingRunner, CancelPlucksQueuedJobsAndReportsStructuredStatus) {
  Netlist nl = make_c17();
  LoweredCircuit lc = lower(nl);
  JobRunnerOptions opt;
  opt.threads = 1;
  StreamingRunner stream(opt);

  // Gate the single worker inside the blocker's completion callback so the
  // tail jobs below are deterministically still queued when canceled (the
  // worker cannot pop the next item until the callback returns). The tail
  // jobs carry no callback, so the plucked-cancel path never waits on the
  // callback lock the gated worker holds.
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  SizingJob blocker;
  blocker.target_ratio = 0.8;
  const JobTicket tb = stream.submit(
      lc.net, blocker, [opened](const JobResult&) { opened.wait(); });
  std::vector<JobTicket> tail;
  for (int i = 0; i < 4; ++i) {
    SizingJob job;
    job.target_ratio = 0.8;
    job.label = "tail" + std::to_string(i);
    tail.push_back(stream.submit(lc.net, job));
  }
  for (const JobTicket t : tail) EXPECT_TRUE(stream.cancel(t));
  gate.set_value();
  for (const JobTicket t : tail) {
    const JobResult r = stream.wait(t);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.status, EngineStatus::kCanceled);
    EXPECT_NE(r.error.find("canceled before start"), std::string::npos)
        << r.error;
  }
  const JobResult rb = stream.wait(tb);
  EXPECT_TRUE(rb.ok) << rb.error;
  EXPECT_FALSE(stream.cancel(tb));  // already completed: cancellation lost
  EXPECT_THROW(stream.cancel(999), std::runtime_error);  // never issued
  const StreamStats stats = stream.stats();
  EXPECT_EQ(stats.canceled, 4u);
  EXPECT_EQ(stats.completed, 5u);
}

TEST(StreamingRunner, CancelInterruptsARunningJobCooperatively) {
  TiledDatapathParams tp;
  tp.lanes = 4;
  tp.stages = 6;
  tp.bits = 2;
  LoweredCircuit lc = lower(make_tiled_datapath(tp));
  JobRunnerOptions opt;
  opt.threads = 1;
  StreamingRunner stream(opt);
  SizingJob job;
  job.target_ratio = 0.55;
  const JobTicket t = stream.submit(lc.net, job);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const bool requested = stream.cancel(t);
  const JobResult r = stream.wait(t);
  if (requested && !r.ok) {
    // Interrupted at a checkpoint: structured status, never a hang.
    EXPECT_EQ(r.status, EngineStatus::kCanceled);
    EXPECT_NE(r.error.find("canceled"), std::string::npos) << r.error;
  } else {
    // Cancellation lost the race to completion; the result stands.
    EXPECT_TRUE(r.ok) << r.error;
  }
  // The runner stays serviceable after a cancellation.
  SizingJob next;
  next.target_ratio = 0.9;
  const JobResult r2 = stream.wait(stream.submit(lc.net, next));
  EXPECT_TRUE(r2.ok) << r2.error;
}

// ---------------------------------------------------------------------------
// Streaming == batch bit-identity
// ---------------------------------------------------------------------------

/// The job set: plain jobs over two ordinary circuits plus shard-extracted
/// networks (the reconciliation workload) solved with 2 inner threads.
struct StreamFixture {
  static TiledDatapathParams small_tiled() {
    TiledDatapathParams p;
    p.lanes = 4;
    p.stages = 6;
    p.bits = 2;
    return p;
  }

  LoweredCircuit c17 = lower(make_c17());
  LoweredCircuit adder = lower(make_ripple_adder(8));
  LoweredCircuit tiled = lower(make_tiled_datapath(small_tiled()));
  ShardPartition part = partition_levels(tiled.net, 2);
  ShardNetwork shard0 =
      build_shard_network(tiled.net, part, 0, tiled.net.min_sizes());
  ShardNetwork shard1 =
      build_shard_network(tiled.net, part, 1, tiled.net.min_sizes());
  std::vector<const SizingNetwork*> networks{&c17.net, &adder.net,
                                             shard0.net.get(),
                                             shard1.net.get()};
  std::vector<SizingJob> jobs;

  StreamFixture() {
    const double ratios[] = {0.8, 0.7, 0.9, 0.75, 0.6, 0.85};
    for (int i = 0; i < 6; ++i) {
      SizingJob job;
      job.network = i % 4;
      job.target_ratio = ratios[i];
      if (job.network >= 2) job.inner_threads = 2;  // shard jobs, inner-parallel
      job.label = "job" + std::to_string(i);
      jobs.push_back(std::move(job));
    }
  }
};

TEST(StreamingRunner, StreamedJobsAreBitIdenticalToTheBatchAtAnyWorkerCount) {
  StreamFixture f;
  JobRunnerOptions bopt;
  bopt.threads = 1;
  const BatchResult reference = JobRunner(bopt).run(f.networks, f.jobs);
  for (const JobResult& r : reference.results) ASSERT_TRUE(r.ok) << r.error;

  for (int workers : {1, 2, 4}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    JobRunnerOptions opt;
    opt.threads = workers;
    StreamingRunner stream(opt);
    std::vector<JobTicket> tickets;
    for (const SizingJob& job : f.jobs)
      tickets.push_back(
          stream.submit(*f.networks[static_cast<std::size_t>(job.network)],
                        job));
    for (std::size_t i = 0; i < tickets.size(); ++i) {
      const JobResult r = stream.wait(tickets[i]);
      const JobResult& x = reference.results[i];
      ASSERT_TRUE(r.ok) << r.error;
      // Submission order == batch order, so the ticket-derived seed must
      // equal the batch's index-derived seed…
      EXPECT_EQ(r.seed, x.seed);
      EXPECT_EQ(r.target, x.target);
      EXPECT_EQ(r.dmin, x.dmin);
      // …and every solution bit must match, regardless of worker count,
      // arrival interleaving, or inner-thread width.
      ASSERT_EQ(r.result.sizes.size(), x.result.sizes.size());
      for (std::size_t v = 0; v < x.result.sizes.size(); ++v)
        ASSERT_EQ(r.result.sizes[v], x.result.sizes[v]) << "vertex " << v;
      EXPECT_EQ(r.result.area, x.result.area);
      EXPECT_EQ(r.result.delay, x.result.delay);
      EXPECT_EQ(r.result.iterations.size(), x.result.iterations.size());
    }
  }
}

TEST(StreamingRunner, ArrivalOrderDoesNotChangeSeedsOrResults) {
  // Two runners fed the same logical jobs, but the second receives them
  // in two waves with consumption in between — tickets, seeds, and
  // results must match ticket-for-ticket.
  StreamFixture f;
  JobRunnerOptions opt;
  opt.threads = 2;

  std::vector<JobResult> one_wave;
  {
    StreamingRunner stream(opt);
    std::vector<JobTicket> tickets;
    for (const SizingJob& job : f.jobs)
      tickets.push_back(stream.submit(
          *f.networks[static_cast<std::size_t>(job.network)], job));
    for (const JobTicket t : tickets) one_wave.push_back(stream.wait(t));
  }
  {
    StreamingRunner stream(opt);
    std::vector<JobTicket> tickets;
    for (std::size_t i = 0; i < 3; ++i)
      tickets.push_back(stream.submit(
          *f.networks[static_cast<std::size_t>(f.jobs[i].network)],
          f.jobs[i]));
    const JobResult early = stream.wait(tickets[0]);  // consume mid-stream
    for (std::size_t i = 3; i < f.jobs.size(); ++i)
      tickets.push_back(stream.submit(
          *f.networks[static_cast<std::size_t>(f.jobs[i].network)],
          f.jobs[i]));
    std::vector<JobResult> two_waves;
    two_waves.push_back(early);
    for (std::size_t i = 1; i < tickets.size(); ++i)
      two_waves.push_back(stream.wait(tickets[i]));
    ASSERT_EQ(two_waves.size(), one_wave.size());
    for (std::size_t i = 0; i < one_wave.size(); ++i) {
      EXPECT_EQ(two_waves[i].seed, one_wave[i].seed);
      ASSERT_EQ(two_waves[i].result.sizes, one_wave[i].result.sizes);
    }
  }
}

TEST(StreamingRunner, CanceledThenResubmittedJobsAreBitIdentical) {
  StreamFixture f;
  JobRunnerOptions bopt;
  bopt.threads = 1;
  const BatchResult reference = JobRunner(bopt).run(f.networks, f.jobs);
  for (const JobResult& r : reference.results) ASSERT_TRUE(r.ok) << r.error;

  for (int workers : {1, 2, 4}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    JobRunnerOptions opt;
    opt.threads = workers;
    StreamingRunner stream(opt);
    std::vector<JobTicket> tickets;
    for (const SizingJob& job : f.jobs)
      tickets.push_back(stream.submit(
          *f.networks[static_cast<std::size_t>(job.network)], job));
    // Cancel a fixed subset immediately. Depending on scheduling each
    // victim is plucked from the queue, interrupted at a checkpoint, or
    // already complete — every outcome must be recoverable by resubmission
    // without perturbing a single bit.
    for (const int victim : {1, 3, 5})
      stream.cancel(tickets[static_cast<std::size_t>(victim)]);
    for (std::size_t i = 0; i < tickets.size(); ++i) {
      JobResult r = stream.wait(tickets[i]);
      if (!r.ok) {
        ASSERT_EQ(r.status, EngineStatus::kCanceled) << r.error;
        // Resubmit under the original derived seed — a fresh ticket would
        // derive a different one, and the contract is seed-for-seed
        // identity with the never-canceled batch.
        SizingJob again = f.jobs[i];
        again.seed = reference.results[i].seed;
        r = stream.wait(stream.submit(
            *f.networks[static_cast<std::size_t>(again.network)], again));
        ASSERT_TRUE(r.ok) << r.error;
      }
      const JobResult& x = reference.results[i];
      EXPECT_EQ(r.seed, x.seed);
      ASSERT_EQ(r.result.sizes, x.result.sizes);
      EXPECT_EQ(r.result.area, x.result.area);
      EXPECT_EQ(r.result.delay, x.result.delay);
    }
  }
}

// ---------------------------------------------------------------------------
// Scheduler determinism
// ---------------------------------------------------------------------------

TEST(StreamingRunner, PriorityJumpsTheQueueButEqualPriorityStaysFifo) {
  Netlist nl = make_c17();
  LoweredCircuit lc = lower(nl);
  JobRunnerOptions opt;
  opt.threads = 1;
  StreamingRunner stream(opt);

  // Gate the single worker inside the blocker's completion callback so
  // every job below is still queued when the high-priority one arrives;
  // the tail callbacks fire on the same worker after the gate opens, so
  // recording order through them is race-free.
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  SizingJob blocker;
  blocker.target_ratio = 0.8;
  stream.submit(lc.net, blocker,
                [opened](const JobResult&) { opened.wait(); });

  std::mutex mu;
  std::vector<std::string> order;
  auto record = [&](const JobResult& r) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(r.label);
  };
  for (int i = 0; i < 4; ++i) {
    SizingJob job;
    job.target_ratio = 0.8;
    job.label = "low" + std::to_string(i);
    stream.submit(lc.net, job, record);
  }
  // Submitted last, behind four queued equal-priority jobs: dispatched
  // first — and its presence must not reorder the equal-priority tail
  // (priority inversion never breaks the FIFO law).
  SizingJob urgent;
  urgent.target_ratio = 0.8;
  urgent.priority = 7;
  urgent.label = "urgent";
  stream.submit(lc.net, urgent, record);

  gate.set_value();
  stream.wait_all();
  std::lock_guard<std::mutex> lock(mu);
  const std::vector<std::string> expected = {"urgent", "low0", "low1", "low2",
                                             "low3"};
  EXPECT_EQ(order, expected);
}

TEST(StreamingRunner, MixedPrioritiesStayBitIdenticalToTheBatch) {
  // Priorities reorder *dispatch*, never bits: seeds are ticket-derived at
  // submit, so the scheduled stream must equal the FIFO batch
  // result-for-result at any worker count.
  StreamFixture f;
  JobRunnerOptions bopt;
  bopt.threads = 1;
  const BatchResult reference = JobRunner(bopt).run(f.networks, f.jobs);
  for (const JobResult& r : reference.results) ASSERT_TRUE(r.ok) << r.error;

  const int priorities[] = {2, 0, 5, 0, 3, 1};
  for (int workers : {1, 2, 4}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    JobRunnerOptions opt;
    opt.threads = workers;
    StreamingRunner stream(opt);
    std::vector<JobTicket> tickets;
    for (std::size_t i = 0; i < f.jobs.size(); ++i) {
      SizingJob job = f.jobs[i];
      job.priority = priorities[i];
      tickets.push_back(stream.submit(
          *f.networks[static_cast<std::size_t>(job.network)], job));
    }
    for (std::size_t i = 0; i < tickets.size(); ++i) {
      const JobResult r = stream.wait(tickets[i]);
      const JobResult& x = reference.results[i];
      ASSERT_TRUE(r.ok) << r.error;
      EXPECT_EQ(r.priority, priorities[i]);
      EXPECT_EQ(r.seed, x.seed);
      ASSERT_EQ(r.result.sizes, x.result.sizes);
      EXPECT_EQ(r.result.area, x.result.area);
      EXPECT_EQ(r.result.delay, x.result.delay);
    }
  }
}

TEST(StreamingRunner, ShedDecisionsAreDeterministicUnderAFakeClock) {
  Netlist nl = make_c17();
  LoweredCircuit lc = lower(nl);
  auto fake = std::make_shared<std::atomic<double>>(0.0);
  JobRunnerOptions opt;
  opt.threads = 1;
  opt.shed = true;
  opt.clock = [fake] { return fake->load(); };
  StreamingRunner stream(opt);

  // Gate the worker, then queue one job whose (fake-clock) deadline will
  // lapse before dispatch and one whose deadline will not. Deadlines are
  // huge in real-clock terms, so the jobs' AbortTokens (real clock) never
  // trip — the shed-vs-run split is decided purely by the fake clock.
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  SizingJob blocker;
  blocker.target_ratio = 0.8;
  const JobTicket tb = stream.submit(
      lc.net, blocker, [opened](const JobResult&) { opened.wait(); });

  SizingJob tight;
  tight.target_ratio = 0.8;
  tight.deadline_seconds = 100.0;  // deadline_at = 0 + 100 on the fake clock
  const JobTicket t_shed = stream.submit(lc.net, tight);
  SizingJob loose;
  loose.target_ratio = 0.8;
  loose.deadline_seconds = 5000.0;
  const JobTicket t_run = stream.submit(lc.net, loose);

  fake->store(200.0);  // past tight's deadline, before loose's
  gate.set_value();

  const JobResult shed = stream.wait(t_shed);
  EXPECT_FALSE(shed.ok);
  EXPECT_EQ(shed.status, EngineStatus::kShed);
  EXPECT_NE(shed.error.find("shed"), std::string::npos) << shed.error;
  EXPECT_EQ(shed.queue_seconds, 200.0);  // fake-clock wait, exact

  const JobResult run = stream.wait(t_run);
  EXPECT_TRUE(run.ok) << run.error;
  EXPECT_FALSE(run.degraded);

  EXPECT_TRUE(stream.wait(tb).ok);
  const StreamStats stats = stream.stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_GE(stats.queue_peak, 2u);
  EXPECT_GE(stats.queue_wait_seconds, 200.0);
}


}  // namespace
}  // namespace mft
