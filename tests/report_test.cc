// Tests for the sizing-report module and a few cross-module seams that the
// CLI flow exercises (tech-map + transistor sizing end to end, tradeoff on
// tiny nets, tech parameter laws).
#include <gtest/gtest.h>

#include "gen/blocks.h"
#include "sizing/report.h"
#include "sizing/tradeoff.h"
#include "timing/lowering.h"

namespace mft {
namespace {

MinflotransitResult sized_c17(LoweredCircuit& lc) {
  Netlist nl = make_c17();
  lc = lower_gate_level(nl, Tech{});
  const double dmin = min_sized_delay(lc.net);
  return run_minflotransit(lc.net, 0.6 * dmin);
}

TEST(Report, TimingSummaryContainsCriticalPath) {
  LoweredCircuit lc(Tech{});
  const MinflotransitResult r = sized_c17(lc);
  const std::string s = timing_summary(lc.net, r.sizes);
  EXPECT_NE(s.find("critical path"), std::string::npos);
  EXPECT_NE(s.find("total area"), std::string::npos);
  // Worst slack of a sized circuit is never negative.
  EXPECT_EQ(s.find("worst slack   : -"), std::string::npos);
}

TEST(Report, HistogramCountsEverySizeableVertex) {
  LoweredCircuit lc(Tech{});
  const MinflotransitResult r = sized_c17(lc);
  const std::string h = size_histogram(lc.net, r.sizes);
  // Sum the trailing counts of each row.
  int total = 0;
  for (std::size_t pos = 0; pos < h.size();) {
    const std::size_t eol = h.find('\n', pos);
    if (eol == std::string::npos) break;
    const std::string line = h.substr(pos, eol - pos);
    const std::size_t sp = line.find_last_of(' ');
    total += std::atoi(line.c_str() + sp + 1);
    pos = eol + 1;
  }
  EXPECT_EQ(total, lc.net.num_sizeable());
}

TEST(Report, CsvHasOneRowPerSizeableVertex) {
  LoweredCircuit lc(Tech{});
  const MinflotransitResult r = sized_c17(lc);
  const std::string csv = sizing_csv(lc.net, r.sizes);
  const int lines = static_cast<int>(
      std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(lines, lc.net.num_sizeable() + 1);  // header + rows
  EXPECT_NE(csv.find("name,kind,size,delay,slack"), std::string::npos);
  EXPECT_NE(csv.find("G22,gate,"), std::string::npos);
}

TEST(Report, CompareReportShowsSavingsAndMoves) {
  LoweredCircuit lc(Tech{});
  const MinflotransitResult r = sized_c17(lc);
  const std::string s = compare_report(lc.net, r);
  EXPECT_NE(s.find("TILOS"), std::string::npos);
  EXPECT_NE(s.find("MINFLOTRANSIT"), std::string::npos);
  EXPECT_NE(s.find("savings"), std::string::npos);
}

TEST(Tech, LogicalEffortLaws) {
  // Inverter is the unit; efforts grow with fanin; NOR grows faster than
  // NAND (series PMOS are weaker).
  EXPECT_DOUBLE_EQ(logical_effort(GateKind::kNot, 1), 1.0);
  EXPECT_DOUBLE_EQ(parasitic_effort(GateKind::kNot, 1), 1.0);
  for (int k = 2; k <= 6; ++k) {
    EXPECT_GT(logical_effort(GateKind::kNand, k),
              logical_effort(GateKind::kNand, k - 1));
    EXPECT_GT(logical_effort(GateKind::kNor, k),
              logical_effort(GateKind::kNand, k));
    EXPECT_GE(parasitic_effort(GateKind::kNand, k), k);
  }
  EXPECT_EQ(logical_effort(GateKind::kInput, 0), 0.0);
}

TEST(Tech, UniformWeightsAblationRunsAndStaysFeasible) {
  Netlist nl = make_ripple_adder(6);
  LoweredCircuit lc = lower_gate_level(nl, Tech{});
  const double dmin = min_sized_delay(lc.net);
  MinflotransitOptions opt;
  opt.dphase.uniform_weights = true;
  const MinflotransitResult r = run_minflotransit(lc.net, 0.55 * dmin, opt);
  ASSERT_TRUE(r.initial.met_target);
  EXPECT_TRUE(r.met_target);
  EXPECT_LE(r.area, r.initial.area * (1 + 1e-9));
  // The weighted objective should do at least as well as uniform.
  const MinflotransitResult full = run_minflotransit(lc.net, 0.55 * dmin);
  EXPECT_LE(full.area, r.area * 1.02);
}

TEST(Tech, TilosOnlyModeSkipsIterations) {
  Netlist nl = make_c17();
  LoweredCircuit lc = lower_gate_level(nl, Tech{});
  const double dmin = min_sized_delay(lc.net);
  MinflotransitOptions opt;
  opt.max_iterations = 0;
  const MinflotransitResult r = run_minflotransit(lc.net, 0.6 * dmin, opt);
  EXPECT_TRUE(r.met_target);
  EXPECT_TRUE(r.iterations.empty());
  // Iteration 0 (pure W pruning) still applies: never worse than TILOS.
  EXPECT_LE(r.area, r.initial.area * (1 + 1e-9));
}

}  // namespace
}  // namespace mft
