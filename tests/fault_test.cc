// Robustness tests (tier1): the fault-injection harness and the
// cancellation/deadline machinery it soaks.
//
//  - AbortToken laws: step counting, step-budget and deadline trips,
//    cancel precedence, sticky latch.
//  - FaultInjector laws: nth-hit windows, deterministic probabilistic
//    arming, disarm reset, the MFT_FAULT_POINT macro contract.
//  - Every named engine site, armed, yields a structured EngineStatus
//    through the streaming runner — and the worker pool survives it
//    (poll/wait complete, later submits succeed).
//  - Shard-solve failure recovery: a faulted extraction or flow solve is
//    retried once and converges within 2% of the fault-free area; a
//    double failure folds the band back and still terminates feasibly.
//  - Budget degradation: a tripped step budget returns the best-so-far
//    feasible iterate (ok + degraded), deterministically; an armed but
//    untripped budget is a pure observer (bit-identical results).
//  - A randomized multi-worker soak: injected worker deaths and flow
//    faults plus live cancellations never hang or kill the runner.
//  - Daemon front-end sites (daemon.parse, daemon.accept): an injected
//    fault becomes one structured error response, the daemon survives,
//    and the next request is served clean.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/daemon.h"
#include "engine/runner.h"
#include "engine/stream.h"
#include "gen/blocks.h"
#include "gen/tiled.h"
#include "sizing/shard.h"
#include "timing/lowering.h"
#include "util/abort.h"
#include "util/fault.h"

namespace mft {
namespace {

LoweredCircuit lower(const Netlist& nl) { return lower_gate_level(nl, Tech{}); }

/// The injector is process-wide state; every test starts and ends disarmed
/// so no armed site can leak across tests.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::instance().disarm_all(); }
  void TearDown() override { FaultInjector::instance().disarm_all(); }
};

// ---------------------------------------------------------------------------
// AbortToken
// ---------------------------------------------------------------------------

TEST_F(FaultTest, AbortTokenBudgetsAndPrecedence) {
  AbortToken none;
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(none.step());
  EXPECT_EQ(none.tripped(), EngineStatus::kOk);
  EXPECT_EQ(none.steps(), 100);

  AbortToken s;
  s.arm_steps(3);
  EXPECT_FALSE(s.step());  // 1
  EXPECT_FALSE(s.step());  // 2
  EXPECT_FALSE(s.step());  // 3
  EXPECT_TRUE(s.step());   // 4 > 3: trips
  EXPECT_EQ(s.tripped(), EngineStatus::kStepBudget);
  EXPECT_TRUE(s.step());  // sticky: the first reason latches
  EXPECT_EQ(s.tripped(), EngineStatus::kStepBudget);

  AbortToken c;
  c.arm_steps(1);
  c.request_cancel();
  EXPECT_TRUE(c.canceled());
  EXPECT_TRUE(c.step());
  EXPECT_EQ(c.tripped(), EngineStatus::kCanceled);  // cancel wins

  AbortToken d;
  d.arm_deadline(1e-9);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(d.step());
  EXPECT_EQ(d.tripped(), EngineStatus::kDeadlineExpired);
}

// ---------------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------------

TEST_F(FaultTest, InjectorNthHitWindowAndDisarm) {
  FaultInjector& fi = FaultInjector::instance();
  EXPECT_FALSE(fi.armed());
  // Disarmed, a fault point is a no-op at any site.
  for (int i = 0; i < 3; ++i) MFT_FAULT_POINT("fault_test.free");

  fi.arm("fault_test.site", 2, 2);  // fire on hits 2 and 3
  EXPECT_TRUE(fi.armed());
  EXPECT_FALSE(fi.should_fire("fault_test.site"));  // hit 1
  EXPECT_TRUE(fi.should_fire("fault_test.site"));   // hit 2
  EXPECT_TRUE(fi.should_fire("fault_test.site"));   // hit 3
  EXPECT_FALSE(fi.should_fire("fault_test.site"));  // hit 4: window passed
  EXPECT_EQ(fi.hits("fault_test.site"), 4);
  EXPECT_FALSE(fi.should_fire("fault_test.other"));  // unarmed site

  fi.arm("fault_test.macro", 1);
  try {
    MFT_FAULT_POINT("fault_test.macro");
    FAIL() << "armed site did not throw";
  } catch (const FaultInjectedError& e) {
    EXPECT_EQ(e.site(), "fault_test.macro");
    EXPECT_EQ(e.status(), EngineStatus::kInternal);
    EXPECT_NE(std::string(e.what()).find("fault_test.macro"),
              std::string::npos);
  }

  fi.disarm_all();
  EXPECT_FALSE(fi.armed());
  EXPECT_EQ(fi.hits("fault_test.site"), 0);
  MFT_FAULT_POINT("fault_test.macro");  // disarmed again: no throw
}

TEST_F(FaultTest, RandomArmingIsDeterministicInTheHitIndex) {
  FaultInjector& fi = FaultInjector::instance();
  std::vector<bool> first, second;
  fi.arm_random("fault_test.rand", 0.5, 1234);
  for (int i = 0; i < 64; ++i)
    first.push_back(fi.should_fire("fault_test.rand"));
  fi.disarm_all();
  fi.arm_random("fault_test.rand", 0.5, 1234);
  for (int i = 0; i < 64; ++i)
    second.push_back(fi.should_fire("fault_test.rand"));
  EXPECT_EQ(first, second);  // same (seed, hit) sequence, same decisions
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);

  fi.disarm_all();
  fi.arm_random("fault_test.rand", 1.0, 7);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(fi.should_fire("fault_test.rand"));
  fi.disarm_all();
  fi.arm_random("fault_test.rand", 0.0, 7);
  for (int i = 0; i < 8; ++i) EXPECT_FALSE(fi.should_fire("fault_test.rand"));
}

// ---------------------------------------------------------------------------
// Armed engine sites → structured errors, surviving runner
// ---------------------------------------------------------------------------

TEST_F(FaultTest, EveryEngineSiteYieldsAStructuredErrorAndTheRunnerSurvives) {
  LoweredCircuit lc = lower(make_ripple_adder(8));
  struct Case {
    const char* site;
    EngineStatus want;
    const char* needle;
  };
  const Case cases[] = {
      // Outside the job body: the worker fence reports a worker death.
      {"stream.worker", EngineStatus::kWorkerDied, "worker died"},
      {"stream.context", EngineStatus::kWorkerDied, "stream.context"},
      // Inside the job body: the injected EngineError keeps its status.
      {"stream.execute", EngineStatus::kInternal, "stream.execute"},
      {"flow.solve", EngineStatus::kInternal, "flow.solve"},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.site);
    FaultInjector::instance().disarm_all();
    FaultInjector::instance().arm(c.site, 1);
    JobRunnerOptions opt;
    opt.threads = 1;
    StreamingRunner stream(opt);
    SizingJob job;
    job.target_ratio = 0.6;
    job.label = std::string("faulted:") + c.site;
    // The regression under test: a fault outside the job body must still
    // produce a collectible result — wait() completes instead of hanging
    // on a ticket whose worker died.
    const JobResult r = stream.wait(stream.submit(lc.net, job));
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.status, c.want) << r.error;
    EXPECT_NE(r.error.find(c.needle), std::string::npos) << r.error;
    // One-hit window: the same runner completes the same job cleanly right
    // after, proving the pool survived the injection.
    const JobResult again = stream.wait(stream.submit(lc.net, job));
    EXPECT_TRUE(again.ok) << again.error;
    EXPECT_TRUE(again.result.met_target);
    const StreamStats stats = stream.stats();
    EXPECT_EQ(stats.submitted, 2u);
    EXPECT_EQ(stats.completed, 2u);
  }
}

TEST_F(FaultTest, FaultedRunLeavesNoResidueOnceDisarmed) {
  LoweredCircuit lc = lower(make_c17());
  JobRunnerOptions opt;
  opt.threads = 1;
  StreamingRunner stream(opt);
  SizingJob job;
  job.target_ratio = 0.7;
  job.seed = 99;  // explicit: the three runs must be comparable
  const JobResult before = stream.wait(stream.submit(lc.net, job));
  ASSERT_TRUE(before.ok) << before.error;

  FaultInjector::instance().arm("flow.solve", 1);
  const JobResult faulted = stream.wait(stream.submit(lc.net, job));
  EXPECT_FALSE(faulted.ok);
  FaultInjector::instance().disarm_all();

  const JobResult after = stream.wait(stream.submit(lc.net, job));
  ASSERT_TRUE(after.ok) << after.error;
  ASSERT_EQ(after.result.sizes, before.result.sizes);
  EXPECT_EQ(after.result.area, before.result.area);
  EXPECT_EQ(after.result.delay, before.result.delay);
}

// ---------------------------------------------------------------------------
// Shard failure recovery
// ---------------------------------------------------------------------------

TEST_F(FaultTest, ShardFaultsAreRetriedAndConvergeNearTheFaultFreeSolve) {
  TiledDatapathParams p;
  p.lanes = 4;
  p.stages = 6;
  p.bits = 2;
  LoweredCircuit lc = lower(make_tiled_datapath(p));
  const double dmin = min_sized_delay(lc.net);
  const double target = 0.7 * dmin;
  ShardOptions opt;
  opt.num_shards = 2;
  opt.runner.threads = 2;
  const ShardSolveResult ref = run_sharded_solve(lc.net, target, opt);
  ASSERT_TRUE(ref.result.met_target);
  ASSERT_EQ(ref.shard_retries, 0);
  ASSERT_EQ(ref.status, EngineStatus::kOk);

  // One hit, retried once: both a coordinator-side extraction fault and a
  // worker-side flow fault must be absorbed by the retry path.
  for (const char* site : {"shard.extract", "flow.solve"}) {
    SCOPED_TRACE(site);
    FaultInjector::instance().disarm_all();
    FaultInjector::instance().arm(site, 1);
    const ShardSolveResult r = run_sharded_solve(lc.net, target, opt);
    EXPECT_TRUE(r.result.met_target);
    EXPECT_EQ(r.status, EngineStatus::kOk);
    EXPECT_GE(r.shard_retries, 1);
    EXPECT_EQ(r.shard_failures, 0);
    EXPECT_NEAR(r.result.area, ref.result.area, 0.02 * ref.result.area);
  }

  // Both submit-time extractions fail (hits 1, 2) AND the first retry
  // fails too (hit 3): shard 0 double-fails and its band folds back into
  // the next round's re-budget — degraded recovery that needs extra
  // rounds to unwind the round-1 stitch (the folded band sat at its
  // previous sizes), but still a feasible termination under a sufficient
  // cap. With too few rounds the same run throws kShardFailed instead
  // (feasible-or-error, never a silent miss).
  FaultInjector::instance().disarm_all();
  FaultInjector::instance().arm("shard.extract", 1, 3);
  ShardOptions patient = opt;
  patient.max_rounds = 10;
  const ShardSolveResult folded = run_sharded_solve(lc.net, target, patient);
  EXPECT_TRUE(folded.result.met_target);
  EXPECT_GE(folded.shard_failures, 1);
  EXPECT_GE(folded.shard_retries, 1);

  FaultInjector::instance().disarm_all();
  FaultInjector::instance().arm("shard.extract", 1, 3);
  ShardOptions capped = opt;
  capped.max_rounds = 2;  // too few to unwind the folded round-1 stitch
  try {
    run_sharded_solve(lc.net, target, capped);
    FAIL() << "persistent failure with an unmet target must be an error";
  } catch (const EngineError& e) {
    EXPECT_EQ(e.status(), EngineStatus::kShardFailed);
    EXPECT_NE(std::string(e.what()).find("failed after retry"),
              std::string::npos);
  }
}

TEST_F(FaultTest, ShardSolveStepBudgetStopsAtRoundGranularity) {
  TiledDatapathParams p;
  p.lanes = 4;
  p.stages = 6;
  p.bits = 2;
  LoweredCircuit lc = lower(make_tiled_datapath(p));
  const double dmin = min_sized_delay(lc.net);
  const double target = 0.7 * dmin;
  ShardOptions opt;
  opt.num_shards = 2;
  opt.runner.threads = 2;
  const ShardSolveResult ref = run_sharded_solve(lc.net, target, opt);
  if (ref.rounds.size() < 2) GTEST_SKIP() << "solve converged in one round";

  // One virtual step = one reconciliation round: the budget deterministically
  // stops the solve after round 1 and reports the stitched best-so-far.
  ShardOptions budgeted = opt;
  budgeted.max_steps = 1;
  const ShardSolveResult r = run_sharded_solve(lc.net, target, budgeted);
  EXPECT_EQ(r.status, EngineStatus::kStepBudget);
  EXPECT_EQ(r.rounds.size(), 1u);
  EXPECT_EQ(r.degraded, r.result.met_target);
}

// ---------------------------------------------------------------------------
// Budget degradation (deterministic via the virtual-step budget)
// ---------------------------------------------------------------------------

TEST_F(FaultTest, StepBudgetDegradesToTheBestSoFarFeasibleIterate) {
  LoweredCircuit lc = lower(make_c17());
  JobRunnerOptions opt;
  opt.threads = 1;
  StreamingRunner stream(opt);
  SizingJob base;
  base.target_ratio = 0.7;
  base.seed = 42;  // fixed: every budgeted rerun is comparable
  const JobResult ref = stream.wait(stream.submit(lc.net, base));
  ASSERT_TRUE(ref.ok) << ref.error;
  ASSERT_FALSE(ref.degraded);
  ASSERT_TRUE(ref.result.met_target);

  // A budget too small for TILOS to reach feasibility: structured failure,
  // nothing to degrade to.
  SizingJob tiny = base;
  tiny.max_steps = 1;
  const JobResult r1 = stream.wait(stream.submit(lc.net, tiny));
  EXPECT_FALSE(r1.ok);
  EXPECT_EQ(r1.status, EngineStatus::kStepBudget);
  EXPECT_NE(r1.error.find("step_budget"), std::string::npos) << r1.error;

  // Walk the budget up one step at a time. Every run between the first
  // feasible iterate and convergence must come back ok + degraded with a
  // feasible best-so-far; the first budget the solve fits inside must be
  // bit-identical to the unbudgeted reference (an armed but untripped
  // token is a pure observer).
  bool saw_degraded = false;
  bool saw_clean = false;
  for (std::int64_t steps = 2; steps <= 5000; ++steps) {
    SizingJob job = base;
    job.max_steps = steps;
    const JobResult r = stream.wait(stream.submit(lc.net, job));
    if (!r.ok) {
      EXPECT_EQ(r.status, EngineStatus::kStepBudget) << r.error;
      continue;
    }
    if (r.degraded) {
      EXPECT_EQ(r.status, EngineStatus::kStepBudget);
      EXPECT_TRUE(r.result.met_target);
      // Monotone improvement: an earlier feasible iterate never beats the
      // converged solution on area.
      EXPECT_GE(r.result.area, ref.result.area * (1.0 - 1e-12));
      if (!saw_degraded) {
        // The virtual-step budget is deterministic: same budget, same bits.
        const JobResult twin = stream.wait(stream.submit(lc.net, job));
        ASSERT_TRUE(twin.ok) << twin.error;
        EXPECT_TRUE(twin.degraded);
        ASSERT_EQ(twin.result.sizes, r.result.sizes);
        EXPECT_EQ(twin.result.area, r.result.area);
      }
      saw_degraded = true;
      continue;
    }
    EXPECT_EQ(r.status, EngineStatus::kOk);
    ASSERT_EQ(r.result.sizes, ref.result.sizes);
    EXPECT_EQ(r.result.area, ref.result.area);
    saw_clean = true;
    break;  // larger budgets can only repeat the clean run
  }
  EXPECT_TRUE(saw_degraded);
  EXPECT_TRUE(saw_clean);
}

TEST_F(FaultTest, WallClockDeadlineExpiresWithAStructuredStatus) {
  TiledDatapathParams p;
  p.lanes = 4;
  p.stages = 6;
  p.bits = 2;
  LoweredCircuit lc = lower(make_tiled_datapath(p));
  JobRunnerOptions opt;
  opt.threads = 1;
  StreamingRunner stream(opt);
  SizingJob job;
  job.target_ratio = 0.55;
  job.seed = 7;
  job.deadline_seconds = 1e-6;  // expires before feasibility is reachable
  const JobResult r = stream.wait(stream.submit(lc.net, job));
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.status, EngineStatus::kDeadlineExpired) << r.error;
  EXPECT_NE(r.error.find("deadline_expired"), std::string::npos) << r.error;

  // A deadline the solve fits inside is a pure observer: bit-identical to
  // the undeadlined run.
  SizingJob calm = job;
  calm.deadline_seconds = 300.0;
  SizingJob free_job = job;
  free_job.deadline_seconds = 0.0;
  const JobResult rc = stream.wait(stream.submit(lc.net, calm));
  const JobResult rf = stream.wait(stream.submit(lc.net, free_job));
  ASSERT_TRUE(rc.ok) << rc.error;
  ASSERT_TRUE(rf.ok) << rf.error;
  EXPECT_FALSE(rc.degraded);
  ASSERT_EQ(rc.result.sizes, rf.result.sizes);
  EXPECT_EQ(rc.result.area, rf.result.area);
}

// ---------------------------------------------------------------------------
// Multi-worker soak
// ---------------------------------------------------------------------------

TEST_F(FaultTest, RandomFaultSoakKeepsTheRunnerServiceable) {
  LoweredCircuit c17 = lower(make_c17());
  LoweredCircuit adder = lower(make_ripple_adder(8));
  for (int workers : {2, 4}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    FaultInjector::instance().disarm_all();
    FaultInjector::instance().arm_random(
        "stream.worker", 0.3, 0x5eedULL + static_cast<std::uint64_t>(workers));
    FaultInjector::instance().arm_random(
        "flow.solve", 0.2, 0xfeedULL + static_cast<std::uint64_t>(workers));
    JobRunnerOptions opt;
    opt.threads = workers;
    StreamingRunner stream(opt);
    std::vector<JobTicket> tickets;
    for (int i = 0; i < 16; ++i) {
      SizingJob job;
      job.target_ratio = 0.75;
      job.label = "soak" + std::to_string(i);
      tickets.push_back(stream.submit(i % 2 ? adder.net : c17.net, job));
    }
    // Live cancellations for extra churn: plucked, interrupted, or lost.
    stream.cancel(tickets[5]);
    stream.cancel(tickets[11]);
    for (const JobTicket t : tickets) {
      const JobResult r = stream.wait(t);  // must never hang
      if (r.ok) {
        EXPECT_TRUE(r.result.met_target);
      } else {
        EXPECT_NE(r.status, EngineStatus::kOk);
        EXPECT_FALSE(r.error.empty());
      }
    }
    const StreamStats stats = stream.stats();
    EXPECT_EQ(stats.submitted, 16u);
    EXPECT_EQ(stats.completed, 16u);
    // Disarmed, the very same pool goes right back to clean service.
    FaultInjector::instance().disarm_all();
    SizingJob last;
    last.target_ratio = 0.8;
    const JobResult r = stream.wait(stream.submit(c17.net, last));
    EXPECT_TRUE(r.ok) << r.error;
  }
}

// ---------------------------------------------------------------------------
// Daemon front-end sites: daemon.parse / daemon.accept
// ---------------------------------------------------------------------------

TEST_F(FaultTest, DaemonParseAndAcceptFaultsYieldStructuredErrorsAndSurvive) {
  for (const char* site : {"daemon.parse", "daemon.accept"}) {
    SCOPED_TRACE(site);
    FaultInjector::instance().disarm_all();
    std::mutex mu;
    std::vector<std::string> lines;
    DaemonOptions opt;
    opt.engine.threads = 1;
    SizingDaemon daemon(opt, [&](const std::string& line) {
      std::lock_guard<std::mutex> lock(mu);
      lines.push_back(line);
    });
    // Arm the site for the next request only: the daemon must turn the
    // injected throw into one structured result, not die.
    FaultInjector::instance().arm(site, 1);
    daemon.handle_line(
        "{\"op\":\"submit\",\"id\":\"faulted\",\"circuit\":\"c17\","
        "\"ratio\":0.8}");
    {
      std::lock_guard<std::mutex> lock(mu);
      ASSERT_EQ(lines.size(), 1u);
      EXPECT_NE(lines[0].find("\"event\":\"result\""), std::string::npos);
      EXPECT_NE(lines[0].find("\"status\":\"internal\""), std::string::npos);
      EXPECT_NE(lines[0].find(site), std::string::npos);
      EXPECT_EQ(FaultInjector::instance().hits(site), 1);
      lines.clear();
    }
    // The window passed; the very next request is served clean end to end.
    daemon.handle_line(
        "{\"op\":\"submit\",\"id\":\"clean\",\"circuit\":\"c17\","
        "\"ratio\":0.8}");
    daemon.drain();
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_NE(lines[0].find("\"event\":\"accepted\""), std::string::npos);
    EXPECT_NE(lines[1].find("\"status\":\"ok\""), std::string::npos);
    const DaemonStats s = daemon.stats();
    EXPECT_EQ(s.requests, 2u);
    EXPECT_EQ(s.invalid, 1u);
    EXPECT_EQ(s.admitted, 1u);
  }
}

}  // namespace
}  // namespace mft
