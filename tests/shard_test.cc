// Tests for the sharded large-netlist solve (sizing/shard.h):
//
//  - Partition properties, on every lowering: level-cut bands cover each
//    vertex exactly once, every crossing arc/load points from a lower
//    shard to a higher one (no cross-shard intra-level coupling — the
//    schedule-validity contract), and every band owns sizeable work.
//  - Shard networks are valid standalone problems (freeze succeeds, owned
//    vertices keep their coefficients, replicas are proper sources) and
//    the span decomposition is conservative: the sum of shard-internal
//    CPs bounds the global CP from above under the same sizes.
//  - K=1 sharded solve is bit-identical to the monolithic pipeline
//    (including the unreachable-target path), in the spirit of the
//    parallel_test bit-identity harness.
//  - K>1 sharded solve meets the target, with a bounded area gap to the
//    monolithic solution, and is bit-identical at any worker / inner
//    thread count.
//  - Shard metadata round-trips through the engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "engine/runner.h"
#include "gen/blocks.h"
#include "gen/iscas_analog.h"
#include "gen/tiled.h"
#include "sizing/minflotransit.h"
#include "sizing/shard.h"
#include "timing/lowering.h"
#include "timing/sta.h"

namespace mft {
namespace {

struct NamedCircuit {
  std::string name;
  LoweredCircuit lc;
};

/// One instance per lowering: plain gate, gate+wires, transistor.
std::vector<NamedCircuit> shard_fixtures() {
  std::vector<NamedCircuit> out;
  {
    NamedCircuit c{"c432/gate", LoweredCircuit(Tech{})};
    c.lc = lower_gate_level(make_iscas_analog("c432"), Tech{});
    out.push_back(std::move(c));
  }
  {
    GateLoweringOptions wopt;
    wopt.size_wires = true;
    NamedCircuit c{"c880/gate+wires", LoweredCircuit(Tech{})};
    c.lc = lower_gate_level(make_iscas_analog("c880"), Tech{}, wopt);
    out.push_back(std::move(c));
  }
  {
    NamedCircuit c{"adder16/transistor", LoweredCircuit(Tech{})};
    c.lc = lower_transistor_level(make_ripple_adder(16), Tech{});
    out.push_back(std::move(c));
  }
  {
    TiledDatapathParams p;
    p.lanes = 6;
    p.stages = 5;
    p.bits = 2;
    NamedCircuit c{"tiled6x5x2/gate", LoweredCircuit(Tech{})};
    c.lc = lower_gate_level(make_tiled_datapath(p), Tech{});
    out.push_back(std::move(c));
  }
  return out;
}

TEST(ShardPartition, LevelCutBandsAreValidSchedules) {
  for (const NamedCircuit& f : shard_fixtures()) {
    const SizingNetwork& net = f.lc.net;
    for (const int k : {2, 3, 5}) {
      const ShardPartition part = partition_levels(net, k);
      SCOPED_TRACE(f.name + " k=" + std::to_string(k));
      ASSERT_GE(part.num_shards(), 1);
      ASSERT_LE(part.num_shards(), k);
      ASSERT_EQ(static_cast<int>(part.cut_levels.size()),
                part.num_shards() + 1);
      EXPECT_EQ(part.cut_levels.front(), 0);
      EXPECT_EQ(part.cut_levels.back(), net.num_levels());
      EXPECT_TRUE(std::is_sorted(part.cut_levels.begin(),
                                 part.cut_levels.end()));

      // Every vertex in exactly one shard, consistent with its level band.
      std::vector<int> seen(static_cast<std::size_t>(net.num_vertices()), 0);
      for (int s = 0; s < part.num_shards(); ++s) {
        bool sizeable = false;
        for (const NodeId v : part.vertices[static_cast<std::size_t>(s)]) {
          ++seen[static_cast<std::size_t>(v)];
          EXPECT_EQ(part.shard_of[static_cast<std::size_t>(v)], s);
          const int l = net.level_of()[static_cast<std::size_t>(v)];
          EXPECT_GE(l, part.cut_levels[static_cast<std::size_t>(s)]);
          EXPECT_LT(l, part.cut_levels[static_cast<std::size_t>(s) + 1]);
          if (!net.is_source(v)) sizeable = true;
        }
        EXPECT_TRUE(sizeable) << "shard " << s << " owns no sizeable vertex";
      }
      for (const int c : seen) EXPECT_EQ(c, 1);

      // Crossing arcs and loads only ever point from a lower shard to a
      // higher one; same-level vertices never land in different shards.
      const Digraph& g = net.dag();
      for (ArcId a = 0; a < g.num_arcs(); ++a) {
        const int su = part.shard_of[static_cast<std::size_t>(g.tail(a))];
        const int sv = part.shard_of[static_cast<std::size_t>(g.head(a))];
        EXPECT_LE(su, sv);
      }
      for (NodeId v = 0; v < net.num_vertices(); ++v) {
        for (const LoadTerm& t : net.vertex(v).loads) {
          const int sv = part.shard_of[static_cast<std::size_t>(v)];
          const int st = part.shard_of[static_cast<std::size_t>(t.vertex)];
          if (sv != st) {
            const int lv = net.level_of()[static_cast<std::size_t>(v)];
            const int lt = net.level_of()[static_cast<std::size_t>(t.vertex)];
            EXPECT_NE(lv, lt)
                << "cross-shard load between same-level vertices";
            EXPECT_EQ(lv < lt ? sv : st, std::min(sv, st));
          }
        }
      }
    }
  }
}

TEST(TiledDatapath, GateCountMatchesFormula) {
  for (const TiledDatapathParams p :
       {TiledDatapathParams{3, 2, 2, true}, TiledDatapathParams{2, 5, 1, false},
        TiledDatapathParams{8, 6, 2, true}}) {
    EXPECT_EQ(make_tiled_datapath(p).num_logic_gates(),
              tiled_datapath_gates(p))
        << p.lanes << "x" << p.stages << "x" << p.bits;
  }
}

TEST(ShardPartition, DeliversTheRequestedShardCountOnRegularCircuits) {
  // The width minimization must only consider feasible boundaries: on
  // adder16 the thinnest boundary in the window is level 1, whose band
  // [0,1) is the all-source level — picking it would merge the shard away
  // and silently run monolithic.
  for (const NamedCircuit& f : shard_fixtures()) {
    SCOPED_TRACE(f.name);
    EXPECT_EQ(partition_levels(f.lc.net, 2).num_shards(), 2);
    EXPECT_EQ(partition_levels(f.lc.net, 4).num_shards(), 4);
  }
  const LoweredCircuit adder = lower_gate_level(make_ripple_adder(16), Tech{});
  EXPECT_EQ(partition_levels(adder.net, 2).num_shards(), 2);
  EXPECT_EQ(partition_levels(adder.net, 4).num_shards(), 4);
}

TEST(ShardPartition, DeepMassDoesNotSnapCutOntoEmptyAfterEndBoundary) {
  // Vertex mass concentrated in the deepest level: the equal-vertex ideal
  // split for the last cut lands at the end of the level range, where the
  // after-end boundary has crossing width 0. The partitioner must not
  // snap onto it (that would silently merge the last band away).
  Netlist nl("deepmass");
  GateId sig = nl.add_input("in");
  for (int i = 0; i < 30; ++i)
    sig = nl.add_gate(GateKind::kNot, "chain" + std::to_string(i), {sig});
  for (int i = 0; i < 500; ++i)
    nl.mark_output(
        nl.add_gate(GateKind::kNot, "leaf" + std::to_string(i), {sig}));
  nl.mark_output(sig);
  const LoweredCircuit lc = lower_gate_level(nl, Tech{});
  const ShardPartition part = partition_levels(lc.net, 2);
  ASSERT_EQ(part.num_shards(), 2);
  EXPECT_GT(part.cut_levels[1], 0);
  EXPECT_LT(part.cut_levels[1], lc.net.num_levels());
}

TEST(ShardNetwork, ExtractionKeepsCoefficientsAndSpanBoundIsConservative) {
  for (const NamedCircuit& f : shard_fixtures()) {
    const SizingNetwork& net = f.lc.net;
    const std::vector<double> sizes = net.min_sizes();
    const TimingReport global = run_sta(net, sizes);
    for (const int k : {2, 4}) {
      SCOPED_TRACE(f.name + " k=" + std::to_string(k));
      const ShardPartition part = partition_levels(net, k);
      double span_sum = 0.0;
      int owned_total = 0;
      for (int s = 0; s < part.num_shards(); ++s) {
        const ShardNetwork sn = build_shard_network(net, part, s, sizes);
        ASSERT_TRUE(sn.net->frozen());
        owned_total += sn.num_owned;
        ASSERT_EQ(static_cast<int>(sn.global_of_local.size()),
                  sn.net->num_vertices());
        // Owned vertices keep kind and self coefficient; replicas are
        // proper sources.
        std::vector<double> local_sizes = sn.net->min_sizes();
        for (int l = 0; l < sn.net->num_vertices(); ++l) {
          const NodeId gv = sn.global_of_local[static_cast<std::size_t>(l)];
          if (l < sn.num_owned) {
            EXPECT_EQ(sn.net->vertex(l).kind, net.vertex(gv).kind);
            EXPECT_DOUBLE_EQ(sn.net->vertex(l).a_self, net.vertex(gv).a_self);
            // At the frozen sizes every owned vertex has exactly its
            // global delay: folded b terms reproduce the crossing loads.
            if (!net.is_source(gv)) {
              local_sizes[static_cast<std::size_t>(l)] =
                  sizes[static_cast<std::size_t>(gv)];
            }
          } else {
            EXPECT_EQ(sn.net->vertex(l).kind, VertexKind::kSource);
          }
        }
        for (int l = 0; l < sn.num_owned; ++l) {
          const NodeId gv = sn.global_of_local[static_cast<std::size_t>(l)];
          EXPECT_NEAR(sn.net->delay(l, local_sizes),
                      net.delay(gv, sizes), 1e-12)
              << f.name << " shard " << s << " local " << l;
        }
        span_sum += run_sta(*sn.net, local_sizes).critical_path;
      }
      EXPECT_EQ(owned_total, net.num_vertices());
      // Conservativeness: shard-internal CPs decompose every global path,
      // so their sum dominates the global CP.
      EXPECT_GE(span_sum, global.critical_path - 1e-9);
    }
  }
}

TEST(ShardSolve, K1IsBitIdenticalToMonolithic) {
  const LoweredCircuit lc = lower_gate_level(make_iscas_analog("c432"), Tech{});
  const double dmin = min_sized_delay(lc.net);
  // Reachable (including "awkward" fractions whose absolute target is
  // ulp-sensitive — the K=1 span must be the target bit-for-bit) and
  // unreachable.
  for (const double ratio : {0.7, 0.61234, 0.834, 0.05}) {
    SCOPED_TRACE(ratio);
    const double target = ratio * dmin;
    const MinflotransitResult mono = run_minflotransit(lc.net, target);
    ShardOptions opt;
    opt.num_shards = 1;
    opt.runner.threads = 1;
    const ShardSolveResult sharded = run_sharded_solve(lc.net, target, opt);
    EXPECT_EQ(sharded.num_shards, 1);
    EXPECT_TRUE(sharded.converged);
    EXPECT_EQ(sharded.result.met_target, mono.met_target);
    EXPECT_EQ(sharded.result.sizes, mono.sizes);
    EXPECT_EQ(sharded.result.area, mono.area);
    EXPECT_EQ(sharded.result.delay, mono.delay);
    // The whole result shape is forwarded, not just the final solution:
    // the true TILOS seed and the D/W iteration log survive K=1 sharding.
    EXPECT_EQ(sharded.result.initial.sizes, mono.initial.sizes);
    EXPECT_EQ(sharded.result.initial.area, mono.initial.area);
    EXPECT_EQ(sharded.result.initial.met_target, mono.initial.met_target);
    EXPECT_EQ(sharded.result.iterations.size(), mono.iterations.size());
  }
}

TEST(ShardSolve, MeetsTargetWithBoundedGapToMonolithic) {
  TiledDatapathParams p;
  p.lanes = 8;
  p.stages = 6;
  p.bits = 2;
  const LoweredCircuit lc = lower_gate_level(make_tiled_datapath(p), Tech{});
  const double dmin = min_sized_delay(lc.net);
  const double target = 0.8 * dmin;

  const MinflotransitResult mono = run_minflotransit(lc.net, target);
  ASSERT_TRUE(mono.met_target);

  ShardOptions opt;
  opt.num_shards = 4;
  opt.runner.threads = 2;
  const ShardSolveResult sharded = run_sharded_solve(lc.net, target, opt);
  ASSERT_EQ(sharded.num_shards, 4);
  ASSERT_TRUE(sharded.result.met_target);
  ASSERT_FALSE(sharded.rounds.empty());
  int solved = 0;
  for (const ShardRound& r : sharded.rounds) solved += r.shards_solved;
  EXPECT_EQ(sharded.shard_jobs, solved);
  EXPECT_EQ(sharded.rounds.front().shards_solved, 4);  // round 1: all dirty

  // The stitched solution must verify against an independent full STA.
  const TimingReport check = run_sta(lc.net, sharded.result.sizes);
  EXPECT_LE(check.critical_path, target * (1.0 + 1e-9));
  EXPECT_NEAR(check.critical_path, sharded.result.delay, 1e-12);

  // Frozen-boundary conservatism costs area, but the reconciliation keeps
  // the gap small; worst slack against the target is no worse than the
  // monolithic solution's feasibility margin (both are >= 0: they meet
  // the same target).
  EXPECT_LE(sharded.result.area, mono.area * 1.10)
      << "sharded area gap above 10%";
  EXPECT_GE(target - check.critical_path, -target * 1e-9);
}

TEST(ShardSolve, UnreachableTargetAtKGreaterThan1ReportsClosestAttempt) {
  TiledDatapathParams p;
  p.lanes = 6;
  p.stages = 4;
  p.bits = 2;
  const LoweredCircuit lc = lower_gate_level(make_tiled_datapath(p), Tech{});
  const double dmin = min_sized_delay(lc.net);
  ShardOptions opt;
  opt.num_shards = 3;
  opt.max_rounds = 2;
  opt.runner.threads = 1;
  // 0.05*Dmin is far below the TILOS floor: every round stitches
  // infeasible; the solve must not throw and must report the closest
  // attempt honestly.
  const ShardSolveResult r = run_sharded_solve(lc.net, 0.05 * dmin, opt);
  EXPECT_FALSE(r.result.met_target);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(static_cast<int>(r.rounds.size()), opt.max_rounds);
  ASSERT_EQ(static_cast<int>(r.result.sizes.size()), lc.net.num_vertices());
  EXPECT_GT(r.result.initial.achieved_delay, 0.05 * dmin);
  EXPECT_GT(r.result.area, 0.0);
  // The reported sizes really are the closest attempt: re-timing them
  // reproduces the reported achieved delay.
  EXPECT_NEAR(run_sta(lc.net, r.result.sizes).critical_path,
              r.result.initial.achieved_delay, 1e-9);
}

TEST(ShardSolve, BitIdenticalAtAnyWorkerAndInnerThreadCount) {
  TiledDatapathParams p;
  p.lanes = 8;
  p.stages = 6;
  p.bits = 2;
  const LoweredCircuit lc = lower_gate_level(make_tiled_datapath(p), Tech{});
  const double target = 0.8 * min_sized_delay(lc.net);

  ShardSolveResult base;
  bool first = true;
  for (const int workers : {1, 2, 4}) {
    for (const int inner : {1, 2}) {
      ShardOptions opt;
      opt.num_shards = 4;
      opt.runner.threads = workers;
      opt.runner.inner_threads = inner;
      ShardSolveResult r = run_sharded_solve(lc.net, target, opt);
      if (first) {
        base = std::move(r);
        first = false;
        continue;
      }
      SCOPED_TRACE("workers=" + std::to_string(workers) +
                   " inner=" + std::to_string(inner));
      EXPECT_EQ(r.result.sizes, base.result.sizes);
      EXPECT_EQ(r.result.area, base.result.area);
      EXPECT_EQ(r.result.delay, base.result.delay);
      EXPECT_EQ(r.rounds.size(), base.rounds.size());
      for (std::size_t i = 0; i < r.rounds.size(); ++i) {
        EXPECT_EQ(r.rounds[i].critical_path, base.rounds[i].critical_path);
        EXPECT_EQ(r.rounds[i].area, base.rounds[i].area);
        EXPECT_EQ(r.rounds[i].spans, base.rounds[i].spans);
      }
    }
  }
}

TEST(ShardSolve, ShardMetadataRoundTripsThroughEngine) {
  const LoweredCircuit lc = lower_gate_level(make_c17(), Tech{});
  SizingJob job;
  job.target_ratio = 0.9;
  job.shard = 3;
  job.shard_round = 2;
  job.label = "meta";
  const JobRunner runner(JobRunnerOptions{});
  const BatchResult batch = runner.run({&lc.net}, {job});
  ASSERT_TRUE(batch.results.front().ok);
  EXPECT_EQ(batch.results.front().shard, 3);
  EXPECT_EQ(batch.results.front().shard_round, 2);
}

}  // namespace
}  // namespace mft
