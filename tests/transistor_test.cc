// Tests for the transistor-level lowering (paper §2.1–2.2, Fig. 1–2):
// hand-computed Elmore projections for inverters and NAND stacks, DAG shape
// (roots at the output node, leaves at the rail, cross-gate plane
// swapping), and end-to-end STA/TILOS at transistor granularity.
#include <gtest/gtest.h>

#include "gen/blocks.h"
#include "sizing/tilos.h"
#include "timing/lowering.h"
#include "timing/sta.h"

namespace mft {
namespace {

TEST(TransistorLowering, RequiresPrimitiveNetlist) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId x = nl.add_gate(GateKind::kXor, "x", {a, b});
  nl.mark_output(x);
  EXPECT_THROW(lower_transistor_level(nl, Tech{}), CheckError);
}

TEST(TransistorLowering, InverterChainElmoreByHand) {
  // PI -> inv1 -> inv2(PO). Each inverter: one NMOS + one PMOS, both at the
  // output node. At unit sizes:
  // delay(inv1 device) = r·[c_par(x_n + x_p) + c_wire + c_in·(x_n2 + x_p2)]
  //                    = 0.7 + 0.6 + 2 = 3.3
  // delay(inv2 device) = 0.7 + 4 (PO load) = 4.7.
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId i1 = nl.add_gate(GateKind::kNot, "i1", {a});
  const GateId i2 = nl.add_gate(GateKind::kNot, "i2", {i1});
  nl.mark_output(i2);
  Tech tech;
  tech.c_par = 0.35;  // the hand numbers below assume this value
  LoweredCircuit lc = lower_transistor_level(nl, tech);
  // 1 source + 2 transistors per inverter.
  EXPECT_EQ(lc.net.num_vertices(), 5);
  const auto x = lc.net.min_sizes();
  for (NodeId v : lc.gate_vertices[static_cast<std::size_t>(i1)])
    EXPECT_NEAR(lc.net.delay(v, x), 3.3, 1e-12);
  for (NodeId v : lc.gate_vertices[static_cast<std::size_t>(i2)])
    EXPECT_NEAR(lc.net.delay(v, x), 4.7, 1e-12);
}

TEST(TransistorLowering, Nand2StackMatchesEquationTwo) {
  // Standalone NAND2 driving a PO. Pulldown stack n0 (output side), n1
  // (rail side); pullup p0 ∥ p1 at the output node. Unit sizes.
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId g = nl.add_gate(GateKind::kNand, "g", {a, b});
  nl.mark_output(g);
  Tech tech;
  tech.c_par = 0.35;  // the hand numbers below assume this value
  LoweredCircuit lc = lower_transistor_level(nl, tech);
  ASSERT_EQ(lc.gate_vertices[static_cast<std::size_t>(g)].size(), 4u);
  const auto x = lc.net.min_sizes();

  // Output node cap: c_par·(n0 + p0 + p1) = 1.05, plus C_L = 4.
  // Internal node cap: c_par·(n0 + n1) = 0.7.
  // n0 (level 0): 0.35(self) + (0.35·2 + 4)/1 = 5.05
  // n1 (level 1): internal node + output node above it:
  //   0.35·2 (self at boundary: source) ... delay = a_self + load/x with
  //   a_self = 0.35 (drain@out? n1 not at out) + ... = 0.70? Let's check
  //   totals instead: delay(n1) = [c_par(n0+n1) + c_par(n0+p0+p1) + C_L]·r
  //                  = 0.7 + 1.05 + 4 = 5.75.
  double d_n0 = -1, d_n1 = -1;
  for (NodeId v : lc.gate_vertices[static_cast<std::size_t>(g)]) {
    const std::string& name = lc.net.name(v);
    if (name == "g_n0") d_n0 = lc.net.delay(v, x);
    if (name == "g_n1") d_n1 = lc.net.delay(v, x);
  }
  EXPECT_NEAR(d_n0, 5.05, 1e-12);
  EXPECT_NEAR(d_n1, 5.75, 1e-12);

  // Pulldown path delay (root n0 -> leaf n1) equals the full Elmore sum.
  const TimingReport t = run_sta(lc.net, x);
  EXPECT_NEAR(t.critical_path, d_n0 + d_n1, 1e-12);
}

TEST(TransistorLowering, CrossGateArcsSwapPlanes) {
  // inv -> nand2: the inverter's NMOS leaf must feed the NAND's PMOS roots
  // and its PMOS leaf the NAND's NMOS roots (Fig. 2).
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId inv = nl.add_gate(GateKind::kNot, "inv", {a});
  const GateId g = nl.add_gate(GateKind::kNand, "g", {inv, b});
  nl.mark_output(g);
  LoweredCircuit lc = lower_transistor_level(nl, Tech{});
  const Digraph& dag = lc.net.dag();

  auto find_vertex = [&](const std::string& name) {
    for (NodeId v = 0; v < lc.net.num_vertices(); ++v)
      if (lc.net.name(v) == name) return v;
    return kInvalidNode;
  };
  const NodeId inv_n = find_vertex("inv_n0");
  const NodeId inv_p = find_vertex("inv_p0");
  // inv drives pin 0 of the NAND: NMOS n0 (stack top) and PMOS p0.
  const NodeId g_n0 = find_vertex("g_n0");
  const NodeId g_p0 = find_vertex("g_p0");
  ASSERT_NE(inv_n, kInvalidNode);
  auto has_arc = [&](NodeId u, NodeId v) {
    for (ArcId arc : dag.out_arcs(u))
      if (dag.head(arc) == v) return true;
    return false;
  };
  EXPECT_TRUE(has_arc(inv_n, g_p0));  // NMOS driver -> PMOS plane
  EXPECT_TRUE(has_arc(inv_p, g_n0));  // PMOS driver -> NMOS plane
  EXPECT_FALSE(has_arc(inv_n, g_n0));
  EXPECT_FALSE(has_arc(inv_p, g_p0));
}

TEST(TransistorLowering, NandRootsReachOnlyDrivenParallelBranch) {
  // For a NAND's *pullup* (parallel) plane, the arc from a driver must
  // land only on the PMOS transistor actually driven, not its siblings.
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId inv = nl.add_gate(GateKind::kNot, "inv", {a});
  const GateId g = nl.add_gate(GateKind::kNand, "g", {b, inv});  // pin 1
  nl.mark_output(g);
  LoweredCircuit lc = lower_transistor_level(nl, Tech{});
  const Digraph& dag = lc.net.dag();
  auto find_vertex = [&](const std::string& name) {
    for (NodeId v = 0; v < lc.net.num_vertices(); ++v)
      if (lc.net.name(v) == name) return v;
    return kInvalidNode;
  };
  const NodeId inv_n = find_vertex("inv_n0");
  const NodeId g_p0 = find_vertex("g_p0");  // pin 0 (driven by PI b)
  const NodeId g_p1 = find_vertex("g_p1");  // pin 1 (driven by inv)
  auto has_arc = [&](NodeId u, NodeId v) {
    for (ArcId arc : dag.out_arcs(u))
      if (dag.head(arc) == v) return true;
    return false;
  };
  EXPECT_TRUE(has_arc(inv_n, g_p1));
  EXPECT_FALSE(has_arc(inv_n, g_p0));
}

TEST(TransistorLowering, AoiTopologyCounts) {
  // AOI21: pulldown (p0.p1)+p2 has depth 2; pullup (p0+p1).p2 has depth 2.
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId c = nl.add_input("c");
  const GateId g = nl.add_gate(GateKind::kAoi21, "g", {a, b, c});
  nl.mark_output(g);
  LoweredCircuit lc = lower_transistor_level(nl, Tech{});
  EXPECT_EQ(lc.gate_vertices[static_cast<std::size_t>(g)].size(), 6u);
  const TimingReport t = run_sta(lc.net, lc.net.min_sizes());
  EXPECT_GT(t.critical_path, 0.0);
  EXPECT_TRUE(t.safe(lc.net));
}

TEST(TransistorLowering, AdderEndToEndStaAndWeights) {
  Netlist nl = make_ripple_adder(4);
  LoweredCircuit lc = lower_transistor_level(nl, Tech{});
  // 9 NAND2 per bit = 4 transistors each, ×4 bits, + 9 sources.
  EXPECT_EQ(lc.net.num_vertices(), 9 + 9 * 4 * 4);
  const auto x = lc.net.min_sizes();
  const TimingReport t = run_sta(lc.net, x);
  EXPECT_GT(t.critical_path, 0.0);
  EXPECT_TRUE(t.safe(lc.net));
  // The block-triangular weight solve must converge to positive weights.
  const auto w = lc.net.area_delay_weights(x);
  for (NodeId v = 0; v < lc.net.num_vertices(); ++v) {
    if (!lc.net.is_source(v)) {
      EXPECT_GT(w[static_cast<std::size_t>(v)], 0.0) << v;
    }
  }
}

TEST(TransistorLowering, TilosMeetsTargetAtTransistorGranularity) {
  Netlist nl = make_ripple_adder(3);
  LoweredCircuit lc = lower_transistor_level(nl, Tech{});
  const double dmin = min_sized_delay(lc.net);
  const TilosResult r = run_tilos(lc.net, 0.7 * dmin);
  EXPECT_TRUE(r.met_target);
  EXPECT_LE(r.achieved_delay, 0.7 * dmin + 1e-9);
  EXPECT_GT(r.area, lc.net.area(lc.net.min_sizes()));
}

}  // namespace
}  // namespace mft
