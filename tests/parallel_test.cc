// Tests for the inner-loop parallelism stack:
//
//  - ThreadArena: static partitioning covers [0, n) exactly once, thread
//    indices are dense, tiny ranges run inline, and one arena survives
//    thousands of dispatches.
//  - Levelization: on every generated circuit (gate, gate+wires, and
//    transistor lowering) the cached levels are a valid parallel schedule —
//    no two same-level vertices share an arc or a load term, and every load
//    term's orientation agrees with the topological order.
//  - Bit-identity: parallel run_sta and solve_wphase (1/2/4 inner threads,
//    including the changed-hint incremental path) match the sequential
//    results bit for bit.
//  - Hints and warm starts: the changed-hint STA path agrees with the
//    scanning path under randomized updates; warm-started W-phase matches
//    cold on triangular networks and converges to the same fixpoint on
//    coupled ones.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <vector>

#include "gen/blocks.h"
#include "gen/iscas_analog.h"
#include "sizing/tilos.h"
#include "sizing/wphase.h"
#include "timing/lowering.h"
#include "timing/sta.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace mft {
namespace {

// ---------------------------------------------------------------------------
// ThreadArena
// ---------------------------------------------------------------------------

TEST(ThreadArena, CoversRangeExactlyOnceAtEveryThreadCount) {
  for (int threads : {1, 2, 3, 4}) {
    ThreadArena arena(threads);
    EXPECT_EQ(arena.threads(), threads);
    for (int n : {0, 1, 7, 64, 129, 1000}) {
      std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
      for (auto& h : hits) h.store(0);
      arena.parallel_for(n, /*grain=*/16, [&](int thread, int begin, int end) {
        EXPECT_GE(thread, 0);
        EXPECT_LT(thread, threads);
        EXPECT_LE(begin, end);
        for (int i = begin; i < end; ++i)
          hits[static_cast<std::size_t>(i)].fetch_add(1);
      });
      for (int i = 0; i < n; ++i)
        EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
            << "n=" << n << " threads=" << threads << " i=" << i;
    }
  }
}

TEST(ThreadArena, SmallRangesRunInlineOnCallerThread) {
  ThreadArena arena(4);
  int calls = 0;
  // Below the grain the body must run inline as one chunk on thread 0.
  arena.parallel_for(10, /*grain=*/64, [&](int thread, int begin, int end) {
    ++calls;
    EXPECT_EQ(thread, 0);
    EXPECT_EQ(begin, 0);
    EXPECT_EQ(end, 10);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadArena, SurvivesManySmallDispatches) {
  // The level sweeps dispatch once per level — thousands of tiny regions
  // against one arena must accumulate exactly.
  ThreadArena arena(4);
  std::atomic<long long> sum{0};
  long long expect = 0;
  for (int round = 0; round < 3000; ++round) {
    const int n = 1 + (round % 97);
    expect += n;
    arena.parallel_for(n, /*grain=*/8, [&](int, int begin, int end) {
      sum.fetch_add(end - begin, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(sum.load(), expect);
}

// ---------------------------------------------------------------------------
// Levelization
// ---------------------------------------------------------------------------

struct NamedNet {
  std::string name;
  LoweredCircuit lc;
};

std::vector<NamedNet> schedule_corpus() {
  std::vector<NamedNet> nets;
  auto gate = [&](const std::string& name, Netlist nl) {
    nets.push_back({name, lower_gate_level(nl, Tech{})});
  };
  gate("c17", make_c17());
  gate("adder16", make_ripple_adder(16));
  gate("mux16", make_mux_tree(4));
  gate("cmp8", make_comparator(8));
  gate("alu8", make_alu(8));
  gate("mult8", make_array_multiplier(8));
  gate("parity8", tech_map_to_primitives(make_parity_sec(8)));
  RandomLogicParams prm;
  prm.num_inputs = 24;
  prm.num_gates = 400;
  prm.seed = 7;
  gate("rnd400", make_random_logic(prm));
  for (const IscasAnalogSpec& spec : iscas85_specs())
    gate(spec.name, make_iscas_analog(spec.name));
  GateLoweringOptions wires;
  wires.size_wires = true;
  nets.push_back(
      {"adder8+wires", lower_gate_level(make_ripple_adder(8), Tech{}, wires)});
  nets.push_back(
      {"adder4-trans", lower_transistor_level(make_ripple_adder(4), Tech{})});
  nets.push_back({"c17-trans", lower_transistor_level(make_c17(), Tech{})});
  return nets;
}

TEST(Levelization, IsValidParallelScheduleOnEveryGeneratedCircuit) {
  for (const NamedNet& t : schedule_corpus()) {
    SCOPED_TRACE(t.name);
    const SizingNetwork& net = t.lc.net;
    const auto& level = net.level_of();
    const auto& pos = net.topo_position();
    const auto& order = net.level_order();
    const auto& off = net.level_offsets();
    const int n = net.num_vertices();

    // Structure: offsets partition level_order, levels ascending, sorted by
    // topological position within a level; every vertex appears once.
    ASSERT_EQ(static_cast<int>(order.size()), n);
    ASSERT_EQ(static_cast<int>(off.size()), net.num_levels() + 1);
    EXPECT_EQ(off.front(), 0);
    EXPECT_EQ(off.back(), n);
    std::vector<char> seen(static_cast<std::size_t>(n), 0);
    for (int l = 0; l < net.num_levels(); ++l) {
      for (int i = off[static_cast<std::size_t>(l)];
           i < off[static_cast<std::size_t>(l) + 1]; ++i) {
        const NodeId v = order[static_cast<std::size_t>(i)];
        EXPECT_EQ(level[static_cast<std::size_t>(v)], l);
        EXPECT_FALSE(seen[static_cast<std::size_t>(v)]);
        seen[static_cast<std::size_t>(v)] = 1;
        if (i > off[static_cast<std::size_t>(l)]) {
          EXPECT_LT(pos[static_cast<std::size_t>(
                        order[static_cast<std::size_t>(i - 1)])],
                    pos[static_cast<std::size_t>(v)]);
        }
      }
    }

    // Arcs: strictly level-increasing (in particular never intra-level).
    const Digraph& g = net.dag();
    for (ArcId a = 0; a < g.num_arcs(); ++a)
      EXPECT_LT(level[static_cast<std::size_t>(g.tail(a))],
                level[static_cast<std::size_t>(g.head(a))])
          << "arc " << a;

    // Load terms: never intra-level, and ordered like the topological
    // order — that equivalence is what makes the level sweeps read exactly
    // the values the sequential sweeps read.
    for (NodeId v = 0; v < n; ++v) {
      for (const LoadTerm& t2 : net.vertex(v).loads) {
        const NodeId j = t2.vertex;
        EXPECT_NE(level[static_cast<std::size_t>(v)],
                  level[static_cast<std::size_t>(j)])
            << "load " << v << "<-" << j;
        EXPECT_EQ(pos[static_cast<std::size_t>(v)] < pos[static_cast<std::size_t>(j)],
                  level[static_cast<std::size_t>(v)] <
                      level[static_cast<std::size_t>(j)])
            << "load " << v << "<-" << j;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Parallel STA bit-identity
// ---------------------------------------------------------------------------

void expect_reports_identical(const TimingReport& a, const TimingReport& b) {
  ASSERT_EQ(a.delay.size(), b.delay.size());
  for (std::size_t i = 0; i < a.delay.size(); ++i) {
    EXPECT_EQ(a.delay[i], b.delay[i]) << "delay " << i;
    EXPECT_EQ(a.at[i], b.at[i]) << "at " << i;
    EXPECT_EQ(a.rt[i], b.rt[i]) << "rt " << i;
    EXPECT_EQ(a.slack[i], b.slack[i]) << "slack " << i;
  }
  EXPECT_EQ(a.critical_path, b.critical_path);
  EXPECT_EQ(a.cp_vertex, b.cp_vertex);
}

std::vector<NamedNet> identity_corpus() {
  std::vector<NamedNet> nets;
  nets.push_back({"alu8", lower_gate_level(make_alu(8), Tech{})});
  RandomLogicParams prm;
  prm.num_inputs = 32;
  prm.num_gates = 900;
  prm.seed = 21;
  nets.push_back({"rnd900", lower_gate_level(make_random_logic(prm), Tech{})});
  GateLoweringOptions wires;
  wires.size_wires = true;
  nets.push_back(
      {"adder8+wires", lower_gate_level(make_ripple_adder(8), Tech{}, wires)});
  nets.push_back(
      {"adder4-trans", lower_transistor_level(make_ripple_adder(4), Tech{})});
  return nets;
}

TEST(ParallelSta, BitIdenticalToSequentialAcrossThreadCounts) {
  for (const NamedNet& t : identity_corpus()) {
    SCOPED_TRACE(t.name);
    const SizingNetwork& net = t.lc.net;
    Rng rng(0xfeedu);
    // A randomized trajectory of size updates, replayed identically
    // against the sequential scratch and each parallel scratch.
    std::vector<std::vector<double>> trail;
    std::vector<double> x = net.min_sizes();
    trail.push_back(x);
    for (int step = 0; step < 12; ++step) {
      const int moves = 1 + static_cast<int>(rng.index(5));
      for (int m = 0; m < moves; ++m) {
        const NodeId v = static_cast<NodeId>(
            rng.index(static_cast<std::size_t>(net.num_vertices())));
        if (net.is_source(v)) continue;
        x[static_cast<std::size_t>(v)] =
            std::min(net.tech().max_size,
                     x[static_cast<std::size_t>(v)] * rng.uniform(1.0, 1.6));
      }
      trail.push_back(x);
    }

    TimingScratch seq;
    std::vector<TimingReport> expected;
    for (const auto& sizes : trail)
      expected.push_back(run_sta(net, sizes, seq));  // copies the report

    for (int threads : {2, 4}) {
      SCOPED_TRACE(threads);
      ThreadArena arena(threads);
      TimingScratch par;
      par.arena = &arena;
      for (std::size_t i = 0; i < trail.size(); ++i) {
        const TimingReport& got = run_sta(net, trail[i], par);
        expect_reports_identical(expected[i], got);
      }
      EXPECT_EQ(par.full_runs, 1);
      EXPECT_EQ(par.incremental_runs,
                static_cast<std::int64_t>(trail.size()) - 1);
    }
  }
}

TEST(ParallelSta, HintedIncrementalMatchesScanAndFullAcrossThreadCounts) {
  for (const NamedNet& t : identity_corpus()) {
    SCOPED_TRACE(t.name);
    const SizingNetwork& net = t.lc.net;
    for (int threads : {1, 2, 4}) {
      SCOPED_TRACE(threads);
      ThreadArena arena(threads);
      TimingScratch hinted;
      hinted.arena = threads > 1 ? &arena : nullptr;
      TimingScratch scanned;
      Rng rng(0xabcu + static_cast<std::uint64_t>(threads));
      std::vector<double> x = net.min_sizes();
      run_sta(net, x, hinted);
      run_sta(net, x, scanned);
      for (int step = 0; step < 10; ++step) {
        std::vector<NodeId> changed;
        const int moves = 1 + static_cast<int>(rng.index(4));
        for (int m = 0; m < moves; ++m) {
          const NodeId v = static_cast<NodeId>(
              rng.index(static_cast<std::size_t>(net.num_vertices())));
          if (net.is_source(v)) continue;
          x[static_cast<std::size_t>(v)] *= rng.uniform(1.01, 1.5);
          changed.push_back(v);
        }
        // Supersets and duplicates are part of the hint contract.
        const std::vector<NodeId> once = changed;
        changed.insert(changed.end(), once.begin(), once.end());
        changed.push_back(0);
        const TimingReport& h = run_sta(net, x, hinted, changed);
        expect_reports_identical(run_sta(net, x, scanned), h);
        expect_reports_identical(run_sta(net, x), h);
      }
      EXPECT_EQ(hinted.hinted_runs, 10);
      EXPECT_EQ(scanned.hinted_runs, 0);
    }
  }
}

TEST(ParallelSta, TilosWithArenaBitIdentical) {
  const LoweredCircuit lc = lower_gate_level(make_alu(8), Tech{});
  const double dmin = min_sized_delay(lc.net);
  const TilosResult seq = run_tilos(lc.net, 0.6 * dmin);
  for (int threads : {2, 4}) {
    ThreadArena arena(threads);
    const TilosResult par = run_tilos(lc.net, 0.6 * dmin, {}, &arena);
    EXPECT_EQ(seq.met_target, par.met_target);
    EXPECT_EQ(seq.bumps, par.bumps);
    EXPECT_EQ(seq.area, par.area);
    EXPECT_EQ(seq.achieved_delay, par.achieved_delay);
    ASSERT_EQ(seq.sizes.size(), par.sizes.size());
    for (std::size_t i = 0; i < seq.sizes.size(); ++i)
      EXPECT_EQ(seq.sizes[i], par.sizes[i]) << i;
  }
}

// ---------------------------------------------------------------------------
// Parallel + warm-started W-phase
// ---------------------------------------------------------------------------

TEST(ParallelWphase, BitIdenticalToSequentialAcrossThreadCounts) {
  for (const NamedNet& t : identity_corpus()) {
    SCOPED_TRACE(t.name);
    const SizingNetwork& net = t.lc.net;
    // Budgets from a sized interior point so the sweeps do real work.
    std::vector<double> x = net.min_sizes();
    for (NodeId v = 0; v < net.num_vertices(); ++v)
      if (!net.is_source(v)) x[static_cast<std::size_t>(v)] *= 2.5;
    std::vector<double> budget(static_cast<std::size_t>(net.num_vertices()));
    for (NodeId v = 0; v < net.num_vertices(); ++v)
      budget[static_cast<std::size_t>(v)] = net.delay(v, x);

    const WPhaseResult seq = solve_wphase(net, budget);
    for (int threads : {2, 4}) {
      SCOPED_TRACE(threads);
      ThreadArena arena(threads);
      const WPhaseResult par = solve_wphase(net, budget, &arena);
      EXPECT_EQ(seq.feasible, par.feasible);
      EXPECT_EQ(seq.sweeps, par.sweeps);
      ASSERT_EQ(seq.sizes.size(), par.sizes.size());
      for (std::size_t i = 0; i < seq.sizes.size(); ++i)
        EXPECT_EQ(seq.sizes[i], par.sizes[i]) << i;
      EXPECT_EQ(seq.changed, par.changed);

      // Warm-started, parallel: same fixpoint as warm sequential, bit for
      // bit (same sweep arithmetic, level order == reverse topo order).
      const WPhaseResult warm_seq = solve_wphase(net, budget, x);
      const WPhaseResult warm_par = solve_wphase(net, budget, x, &arena);
      EXPECT_EQ(warm_seq.sweeps, warm_par.sweeps);
      for (std::size_t i = 0; i < warm_seq.sizes.size(); ++i)
        EXPECT_EQ(warm_seq.sizes[i], warm_par.sizes[i]) << i;
    }
  }
}

TEST(Wphase, WarmStartMatchesColdOnTriangularNetworks) {
  // Gate-level loads point strictly downstream: one reverse-topological
  // sweep is exact from ANY start, so warm == cold bit for bit.
  const LoweredCircuit lc = lower_gate_level(make_comparator(8), Tech{});
  const SizingNetwork& net = lc.net;
  const double dmin = min_sized_delay(net);
  const TilosResult tilos = run_tilos(net, 0.7 * dmin);
  ASSERT_TRUE(tilos.met_target);
  std::vector<double> budget(static_cast<std::size_t>(net.num_vertices()));
  for (NodeId v = 0; v < net.num_vertices(); ++v)
    budget[static_cast<std::size_t>(v)] = net.delay(v, tilos.sizes);

  const WPhaseResult cold = solve_wphase(net, budget);
  ASSERT_TRUE(cold.feasible);
  const WPhaseResult warm = solve_wphase(net, budget, tilos.sizes);
  ASSERT_TRUE(warm.feasible);
  for (std::size_t i = 0; i < cold.sizes.size(); ++i)
    EXPECT_EQ(cold.sizes[i], warm.sizes[i]) << i;

  // Warm-starting from the fixpoint itself converges in a single sweep.
  const WPhaseResult again = solve_wphase(net, budget, cold.sizes);
  EXPECT_EQ(again.sweeps, 1);
  EXPECT_TRUE(again.changed.empty());

  // The changed list is exactly the diff against the start point.
  std::vector<NodeId> diff;
  const auto start = net.min_sizes();
  for (NodeId v = 0; v < net.num_vertices(); ++v)
    if (cold.sizes[static_cast<std::size_t>(v)] !=
        start[static_cast<std::size_t>(v)])
      diff.push_back(v);
  EXPECT_EQ(cold.changed, diff);
}

TEST(Wphase, WarmStartConvergesToTheSameFixpointOnCoupledNetworks) {
  // Transistor blocks load each other mutually, so the trajectory is
  // start-dependent — but the fixpoint is unique: warm and cold must agree
  // to the sweep tolerance, with the warm start never needing more sweeps.
  const LoweredCircuit lc = lower_transistor_level(make_ripple_adder(4), Tech{});
  const SizingNetwork& net = lc.net;
  std::vector<double> x = net.min_sizes();
  for (NodeId v = 0; v < net.num_vertices(); ++v)
    if (!net.is_source(v)) x[static_cast<std::size_t>(v)] *= 3.0;
  std::vector<double> budget(static_cast<std::size_t>(net.num_vertices()));
  for (NodeId v = 0; v < net.num_vertices(); ++v)
    budget[static_cast<std::size_t>(v)] = net.delay(v, x);

  const WPhaseResult cold = solve_wphase(net, budget);
  ASSERT_TRUE(cold.feasible);
  const WPhaseResult warm = solve_wphase(net, budget, x);
  ASSERT_TRUE(warm.feasible);
  for (std::size_t i = 0; i < cold.sizes.size(); ++i)
    EXPECT_NEAR(warm.sizes[i], cold.sizes[i],
                1e-9 * std::max(1.0, cold.sizes[i]))
        << i;
  EXPECT_LE(warm.sweeps, cold.sweeps);
}

}  // namespace
}  // namespace mft
