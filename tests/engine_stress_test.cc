// Heavier engine runs, labeled "slow" in CMake so the ASan/UBSan CI job
// (tier-1 labels only) skips them — the TSan job runs this suite for the
// concurrency coverage: a Table-1-sized circuit at gate granularity plus
// a transistor-granularity adder, batched at several thread counts, all
// required to be bit-identical to the sequential run; and a mixed-workload
// streaming soak (shard-extracted tiled networks with inner threads
// interleaved with ISCAS jobs, submission order randomized by the
// portable Rng) whose per-ticket results must be bit-identical at every
// worker count and every submission order.
#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "engine/runner.h"
#include "engine/stream.h"
#include "gen/blocks.h"
#include "gen/iscas_analog.h"
#include "gen/tiled.h"
#include "sizing/shard.h"
#include "timing/lowering.h"
#include "util/rng.h"

namespace mft {
namespace {

TEST(EngineStress, MixedGranularityBatchDeterministicAcrossThreadCounts) {
  // c6288 (the array-multiplier analog) is the heaviest Table-1 circuit;
  // pairing it with a transistor-granularity adder exercises both
  // lowerings under the pool.
  Netlist c6288 = make_iscas_analog("c6288");
  Netlist adder = make_ripple_adder(16);
  LoweredCircuit gate_lc = lower_gate_level(c6288, Tech{});
  LoweredCircuit tran_lc = lower_transistor_level(adder, Tech{});
  const std::vector<const SizingNetwork*> networks = {&gate_lc.net,
                                                      &tran_lc.net};

  std::vector<SizingJob> jobs;
  for (double ratio : {0.7, 0.6}) {
    SizingJob g;
    g.network = 0;
    g.target_ratio = ratio;
    g.label = "c6288/gate@" + std::to_string(ratio);
    jobs.push_back(std::move(g));
  }
  for (double ratio : {0.8, 0.6, 0.5, 0.45}) {
    SizingJob t;
    t.network = 1;
    t.target_ratio = ratio;
    t.label = "adder16/tran@" + std::to_string(ratio);
    jobs.push_back(std::move(t));
  }

  JobRunnerOptions seq;
  seq.threads = 1;
  const BatchResult reference = JobRunner(seq).run(networks, jobs);
  for (const JobResult& r : reference.results) {
    SCOPED_TRACE(r.label);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(r.result.met_target);
  }

  for (int threads : {4}) {
    JobRunnerOptions par;
    par.threads = threads;
    const BatchResult batch = JobRunner(par).run(networks, jobs);
    ASSERT_EQ(batch.results.size(), reference.results.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      SCOPED_TRACE(jobs[i].label + " @" + std::to_string(threads) +
                   " threads");
      const JobResult& x = reference.results[i];
      const JobResult& y = batch.results[i];
      ASSERT_TRUE(y.ok) << y.error;
      EXPECT_EQ(x.seed, y.seed);
      EXPECT_EQ(x.target, y.target);
      ASSERT_EQ(x.result.sizes.size(), y.result.sizes.size());
      for (std::size_t v = 0; v < x.result.sizes.size(); ++v)
        ASSERT_EQ(x.result.sizes[v], y.result.sizes[v]) << "vertex " << v;
      EXPECT_EQ(x.result.area, y.result.area);
      EXPECT_EQ(x.result.delay, y.result.delay);
      EXPECT_EQ(x.result.iterations.size(), y.result.iterations.size());
    }
  }
}

TEST(EngineStress, MixedWorkloadStreamingSoakIsDeterministicPerTicket) {
  // The streaming runner's production shape: shard jobs (fresh networks
  // with inner-thread parallelism, the reconciliation workload) arriving
  // interleaved with ordinary circuit jobs, in an order the caller does
  // not control. Each logical job carries an explicit seed, so any
  // submission permutation of the same logical job must land on the
  // bit-identical result — at any worker count, with bounded context
  // pools forcing evictions throughout.
  TiledDatapathParams p;
  p.lanes = 6;
  p.stages = 8;
  p.bits = 2;
  const LoweredCircuit tiled = lower_gate_level(make_tiled_datapath(p), Tech{});
  const ShardPartition part = partition_levels(tiled.net, 3);
  ASSERT_EQ(part.num_shards(), 3);
  std::vector<ShardNetwork> shards;
  for (int sh = 0; sh < 3; ++sh)
    shards.push_back(
        build_shard_network(tiled.net, part, sh, tiled.net.min_sizes()));
  const Netlist c432 = make_iscas_analog("c432");
  const LoweredCircuit iscas = lower_gate_level(c432, Tech{});

  std::vector<const SizingNetwork*> nets;
  for (const ShardNetwork& s : shards) nets.push_back(s.net.get());
  nets.push_back(&iscas.net);

  std::vector<SizingJob> logical;
  for (int i = 0; i < 16; ++i) {
    SizingJob job;
    job.network = i % 4;  // shard0, shard1, shard2, c432, shard0, ...
    job.target_ratio = 0.9 - 0.03 * (i / 4);
    job.options.max_iterations = 3;
    if (job.network < 3) job.inner_threads = 2;  // shard jobs, inner-parallel
    job.label = "soak" + std::to_string(i);
    job.seed = 0x5eed0000u + static_cast<std::uint64_t>(i);  // order-independent
    logical.push_back(std::move(job));
  }

  auto stream_permuted = [&](const std::vector<int>& order, int workers,
                             int context_limit) {
    JobRunnerOptions opt;
    opt.threads = workers;
    opt.context_cache_limit = context_limit;
    StreamingRunner stream(opt);
    // tickets[logical job] — submissions happen in `order`.
    std::vector<JobTicket> tickets(logical.size());
    for (const int id : order) {
      const SizingJob& job = logical[static_cast<std::size_t>(id)];
      tickets[static_cast<std::size_t>(id)] = stream.submit(
          *nets[static_cast<std::size_t>(job.network)], job);
    }
    std::vector<JobResult> by_logical;
    for (std::size_t i = 0; i < logical.size(); ++i)
      by_logical.push_back(stream.wait(tickets[i]));
    return by_logical;
  };

  std::vector<int> canonical(logical.size());
  std::iota(canonical.begin(), canonical.end(), 0);
  const std::vector<JobResult> reference = stream_permuted(canonical, 1, 0);
  for (const JobResult& r : reference) {
    SCOPED_TRACE(r.label);
    ASSERT_TRUE(r.ok) << r.error;
  }

  Rng rng(20260730);
  for (const int workers : {2, 4}) {
    // Fisher–Yates with the portable Rng: the same shuffles on every
    // platform, so failures reproduce.
    std::vector<int> order = canonical;
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[rng.index(i)]);
    const std::vector<JobResult> got =
        stream_permuted(order, workers, /*context_limit=*/2);
    ASSERT_EQ(got.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      SCOPED_TRACE(reference[i].label + " @" + std::to_string(workers) +
                   " workers");
      const JobResult& x = reference[i];
      const JobResult& y = got[i];
      ASSERT_TRUE(y.ok) << y.error;
      EXPECT_EQ(y.seed, x.seed);
      EXPECT_EQ(y.target, x.target);
      EXPECT_EQ(y.dmin, x.dmin);
      ASSERT_EQ(y.result.sizes.size(), x.result.sizes.size());
      for (std::size_t v = 0; v < x.result.sizes.size(); ++v)
        ASSERT_EQ(y.result.sizes[v], x.result.sizes[v]) << "vertex " << v;
      EXPECT_EQ(y.result.area, x.result.area);
      EXPECT_EQ(y.result.delay, x.result.delay);
    }
  }
}

}  // namespace
}  // namespace mft
