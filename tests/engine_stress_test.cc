// Heavier engine runs, labeled "slow" in CMake so the sanitizer CI job
// (tier-1 labels only) skips them: a Table-1-sized circuit at gate
// granularity plus a transistor-granularity adder, batched at several
// thread counts, all required to be bit-identical to the sequential run.
#include <gtest/gtest.h>

#include "engine/runner.h"
#include "gen/blocks.h"
#include "gen/iscas_analog.h"
#include "timing/lowering.h"

namespace mft {
namespace {

TEST(EngineStress, MixedGranularityBatchDeterministicAcrossThreadCounts) {
  // c6288 (the array-multiplier analog) is the heaviest Table-1 circuit;
  // pairing it with a transistor-granularity adder exercises both
  // lowerings under the pool.
  Netlist c6288 = make_iscas_analog("c6288");
  Netlist adder = make_ripple_adder(16);
  LoweredCircuit gate_lc = lower_gate_level(c6288, Tech{});
  LoweredCircuit tran_lc = lower_transistor_level(adder, Tech{});
  const std::vector<const SizingNetwork*> networks = {&gate_lc.net,
                                                      &tran_lc.net};

  std::vector<SizingJob> jobs;
  for (double ratio : {0.7, 0.6}) {
    SizingJob g;
    g.network = 0;
    g.target_ratio = ratio;
    g.label = "c6288/gate@" + std::to_string(ratio);
    jobs.push_back(std::move(g));
  }
  for (double ratio : {0.8, 0.6, 0.5, 0.45}) {
    SizingJob t;
    t.network = 1;
    t.target_ratio = ratio;
    t.label = "adder16/tran@" + std::to_string(ratio);
    jobs.push_back(std::move(t));
  }

  JobRunnerOptions seq;
  seq.threads = 1;
  const BatchResult reference = JobRunner(seq).run(networks, jobs);
  for (const JobResult& r : reference.results) {
    SCOPED_TRACE(r.label);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(r.result.met_target);
  }

  for (int threads : {4}) {
    JobRunnerOptions par;
    par.threads = threads;
    const BatchResult batch = JobRunner(par).run(networks, jobs);
    ASSERT_EQ(batch.results.size(), reference.results.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      SCOPED_TRACE(jobs[i].label + " @" + std::to_string(threads) +
                   " threads");
      const JobResult& x = reference.results[i];
      const JobResult& y = batch.results[i];
      ASSERT_TRUE(y.ok) << y.error;
      EXPECT_EQ(x.seed, y.seed);
      EXPECT_EQ(x.target, y.target);
      ASSERT_EQ(x.result.sizes.size(), y.result.sizes.size());
      for (std::size_t v = 0; v < x.result.sizes.size(); ++v)
        ASSERT_EQ(x.result.sizes[v], y.result.sizes[v]) << "vertex " << v;
      EXPECT_EQ(x.result.area, y.result.area);
      EXPECT_EQ(x.result.delay, y.result.delay);
      EXPECT_EQ(x.result.iterations.size(), y.result.iterations.size());
    }
  }
}

}  // namespace
}  // namespace mft
