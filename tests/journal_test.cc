// Journal tests (tier1): framing + durability invariants of the
// write-ahead journal, and the daemon's crash-recovery contract on top
// of it.
//
//  - Framing: append/replay round-trips byte-exactly; replay of a file
//    truncated at EVERY byte offset returns a valid prefix of the
//    records without crashing (the kill -9 contract); a CRC-corrupt
//    record ends the walk at the last intact prefix; rewrite() compacts
//    atomically and the file stays appendable.
//  - Daemon: accepted submits and terminal results are journaled; a
//    clean run leaves nothing to recover; a simulated crash (results
//    stripped from the journal) re-admits every unfinished request and
//    reproduces bit-identical sizes_hash values under the journaled
//    seeds; injected faults at journal.append / journal.replay degrade
//    to structured error responses, never a dead daemon.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "engine/daemon.h"
#include "util/fault.h"
#include "util/journal.h"

namespace mft {
namespace {

std::string temp_path(const std::string& name) {
  const std::string p = ::testing::TempDir() + "/" + name;
  std::remove(p.c_str());
  return p;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Raw value of `"key":...` in a flat JSON line we emitted ourselves
/// (string values come back unquoted). Empty when the key is absent.
std::string json_field(const std::string& line, const std::string& key) {
  const std::string pat = "\"" + key + "\":";
  const std::size_t p = line.find(pat);
  if (p == std::string::npos) return "";
  std::size_t s = p + pat.size();
  if (s < line.size() && line[s] == '"') {
    const std::size_t e = line.find('"', s + 1);
    return line.substr(s + 1, e - s - 1);
  }
  std::size_t e = s;
  while (e < line.size() && line[e] != ',' && line[e] != '}') ++e;
  return line.substr(s, e - s);
}

/// Thread-safe capture of the daemon's emitted event lines.
struct EventLog {
  std::mutex mu;
  std::vector<std::string> lines;
  SizingDaemon::Emit emit() {
    return [this](const std::string& l) {
      std::lock_guard<std::mutex> lock(mu);
      lines.push_back(l);
    };
  }
  std::vector<std::string> snapshot() {
    std::lock_guard<std::mutex> lock(mu);
    return lines;
  }
  /// sizes_hash of the result event for `id` ("" when none / not ok).
  std::string hash_for(const std::string& id) {
    std::lock_guard<std::mutex> lock(mu);
    for (const std::string& l : lines)
      if (json_field(l, "event") == "result" && json_field(l, "id") == id)
        return json_field(l, "sizes_hash");
    return "";
  }
};

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::instance().disarm_all(); }
  void TearDown() override { FaultInjector::instance().disarm_all(); }
};

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

TEST_F(JournalTest, AppendReplayRoundTripsByteExactly) {
  const std::string path = temp_path("journal_roundtrip.mftj");
  // Missing file: an empty journal, not an error.
  bool torn = true;
  EXPECT_TRUE(Journal::replay(path, &torn).empty());
  EXPECT_FALSE(torn);

  const std::vector<std::string> recs = {
      "{\"type\":\"submit\",\"rid\":0}", "",  // empty payload is legal
      std::string("binary \0 bytes \xff and \"quotes\"", 29)};
  Journal j;
  j.open(path);
  for (const std::string& r : recs) j.append(r);
  EXPECT_EQ(j.appends(), 3);
  EXPECT_EQ(j.fsyncs(), 3);  // one fsync per append, the durability law
  j.close();

  const std::vector<std::string> got = Journal::replay(path, &torn);
  EXPECT_FALSE(torn);
  EXPECT_EQ(got, recs);

  // Reopen and extend: append-only means history survives.
  j.open(path);
  j.append("tail");
  j.close();
  EXPECT_EQ(Journal::replay(path).size(), 4u);
  EXPECT_EQ(Journal::replay(path).back(), "tail");
}

TEST_F(JournalTest, TruncationAtEveryByteOffsetYieldsAValidPrefix) {
  const std::string path = temp_path("journal_torn.mftj");
  const std::vector<std::string> recs = {"first record", "second-record",
                                         "{\"third\":3}"};
  std::vector<std::size_t> boundary = {0};  // file size after k records
  {
    Journal j;
    j.open(path);
    for (const std::string& r : recs) {
      j.append(r);  // fsync'd: the grown file is visible immediately
      boundary.push_back(slurp(path).size());
    }
  }
  const std::string full = slurp(path);
  ASSERT_FALSE(full.empty());
  ASSERT_EQ(boundary.back(), full.size());

  const std::string cut = temp_path("journal_torn_cut.mftj");
  for (std::size_t len = 0; len < full.size(); ++len) {
    spit(cut, full.substr(0, len));
    bool torn = false;
    std::vector<std::string> got;
    ASSERT_NO_THROW(got = Journal::replay(cut, &torn)) << "len=" << len;
    // Whatever survives is a prefix of what was written — never garbage,
    // never a record that was not fully on disk.
    ASSERT_LT(got.size(), recs.size()) << "len=" << len;
    for (std::size_t i = 0; i < got.size(); ++i)
      EXPECT_EQ(got[i], recs[i]) << "len=" << len;
    // The torn flag fires iff bytes trail the last intact record — i.e.
    // the cut landed anywhere but exactly on a record boundary.
    EXPECT_EQ(torn, len != boundary[got.size()]) << "len=" << len;
  }
}

TEST_F(JournalTest, CrcCorruptionEndsTheWalkAtTheLastIntactRecord) {
  const std::string path = temp_path("journal_crc.mftj");
  {
    Journal j;
    j.open(path);
    j.append("record zero");
    j.append("record one");
  }
  std::string bytes = slurp(path);
  // Flip one payload byte of the LAST record ("one" -> "onf"): its CRC no
  // longer matches, so replay keeps only the first record.
  const std::size_t at = bytes.rfind("one") + 2;
  bytes[at] = static_cast<char>(bytes[at] ^ 0x01);
  spit(path, bytes);
  bool torn = false;
  const std::vector<std::string> got = Journal::replay(path, &torn);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "record zero");
  EXPECT_TRUE(torn);
}

TEST_F(JournalTest, RewriteCompactsAtomicallyAndStaysAppendable) {
  const std::string path = temp_path("journal_rewrite.mftj");
  {
    Journal j;
    j.open(path);
    for (int i = 0; i < 5; ++i) j.append("rec" + std::to_string(i));
  }
  Journal::rewrite(path, {"rec1", "rec3"});
  EXPECT_EQ(Journal::replay(path), (std::vector<std::string>{"rec1", "rec3"}));
  Journal j;
  j.open(path);
  j.append("rec9");
  j.close();
  EXPECT_EQ(Journal::replay(path),
            (std::vector<std::string>{"rec1", "rec3", "rec9"}));
  EXPECT_EQ(Journal::crc32(""), 0u);  // pinned: CRC32/IEEE of empty input
  EXPECT_EQ(Journal::crc32("123456789"), 0xcbf43926u);  // the check value
}

// ---------------------------------------------------------------------------
// Daemon durability
// ---------------------------------------------------------------------------

DaemonOptions durable_opts(const std::string& path) {
  DaemonOptions opt;
  opt.engine.threads = 2;
  opt.journal_path = path;
  return opt;
}

const char* kSubmitA =
    "{\"op\":\"submit\",\"circuit\":\"c17\",\"ratio\":0.8,\"id\":\"a\"}";
const char* kSubmitB =
    "{\"op\":\"submit\",\"circuit\":\"c17\",\"ratio\":0.7,\"id\":\"b\"}";

TEST_F(JournalTest, CleanRunJournalsEverythingAndRecoversNothing) {
  const std::string path = temp_path("journal_clean.mftj");
  {
    EventLog log;
    SizingDaemon d(durable_opts(path), log.emit());
    d.handle_line(kSubmitA);
    d.handle_line(kSubmitB);
    d.drain();
    const DaemonStats s = d.stats();
    EXPECT_EQ(s.journal_records, 4u);  // 2 submits + 2 results
    EXPECT_GE(s.journal_fsyncs, 4u);
    EXPECT_EQ(s.journal_errors, 0u);
    EXPECT_EQ(s.recovered, 0u);
    EXPECT_NE(log.hash_for("a"), "");
  }
  // Every submit has its result on disk, behind the config snapshot that
  // heads every journal...
  EXPECT_EQ(Journal::replay(path).size(), 5u);
  EXPECT_EQ(json_field(Journal::replay(path).front(), "type"), "config");
  // ...so a restart finds nothing unfinished and compacts down to just
  // the config snapshot.
  EventLog log2;
  SizingDaemon d2(durable_opts(path), log2.emit());
  const std::vector<std::string> events = log2.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(json_field(events[0], "event"), "replay");
  EXPECT_EQ(json_field(events[0], "ok"), "true");
  EXPECT_EQ(json_field(events[0], "recovered"), "0");
  EXPECT_EQ(json_field(events[0], "finished"), "2");
  const std::vector<std::string> after = Journal::replay(path);
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(json_field(after[0], "type"), "config");
}

TEST_F(JournalTest, CrashReplayReproducesBitIdenticalHashes) {
  const std::string path = temp_path("journal_crash.mftj");
  EventLog ref;
  {
    SizingDaemon d(durable_opts(path), ref.emit());
    d.handle_line(kSubmitA);
    d.handle_line(kSubmitB);
    d.drain();
  }
  ASSERT_NE(ref.hash_for("a"), "");
  ASSERT_NE(ref.hash_for("b"), "");
  ASSERT_NE(ref.hash_for("a"), ref.hash_for("b"));  // distinct rid seeds

  // Simulate the kill -9: strip the result records, leaving the journal
  // exactly as it stood after the write-ahead appends — both requests
  // accepted, neither finished.
  std::vector<std::string> submits;
  for (const std::string& rec : Journal::replay(path))
    if (rec.find("\"type\":\"submit\"") != std::string::npos)
      submits.push_back(rec);
  ASSERT_EQ(submits.size(), 2u);
  Journal::rewrite(path, submits);

  EventLog log;
  {
    SizingDaemon d(durable_opts(path), log.emit());
    d.drain();
    EXPECT_EQ(d.stats().recovered, 2u);
  }
  // Replay re-admitted both (accepted events carry their original rids)
  // and — same journaled seeds — reproduced the exact solution vectors.
  EXPECT_EQ(log.hash_for("a"), ref.hash_for("a"));
  EXPECT_EQ(log.hash_for("b"), ref.hash_for("b"));
  // And the terminal results are now journaled, so a second restart is a
  // no-op recovery.
  EventLog log2;
  SizingDaemon d2(durable_opts(path), log2.emit());
  EXPECT_EQ(json_field(log2.snapshot().at(0), "recovered"), "0");
}

TEST_F(JournalTest, AppendFaultRefusesTheSubmitButTheDaemonServes) {
  const std::string path = temp_path("journal_append_fault.mftj");
  EventLog log;
  SizingDaemon d(durable_opts(path), log.emit());
  FaultInjector::instance().arm("journal.append", 1);
  d.handle_line(kSubmitA);
  d.drain();
  {
    const std::vector<std::string> events = log.snapshot();
    // replay event + exactly one terminal error, no accepted event: the
    // write-ahead failed, so the job never reached the engine.
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(json_field(events[1], "event"), "result");
    EXPECT_EQ(json_field(events[1], "status"), "internal");
    EXPECT_NE(events[1].find("journal append failed"), std::string::npos);
  }
  EXPECT_EQ(d.stats().journal_errors, 1u);
  // The fault was transient; the next submit is durable and completes.
  d.handle_line(kSubmitB);
  d.drain();
  EXPECT_NE(log.hash_for("b"), "");
  // config snapshot + b's submit + b's result
  EXPECT_EQ(Journal::replay(path).size(), 3u);
}

TEST_F(JournalTest, ReplayFaultDegradesToAStructuredEventAndServes) {
  const std::string path = temp_path("journal_replay_fault.mftj");
  {  // leave one unfinished submit behind
    Journal j;
    j.open(path);
    j.append(
        "{\"type\":\"submit\",\"rid\":0,\"circuit\":\"c17\",\"id\":\"a\","
        "\"ratio\":0.8,\"seed\":42}");
  }
  FaultInjector::instance().arm("journal.replay", 1);
  EventLog log;
  SizingDaemon d(durable_opts(path), log.emit());
  {
    const std::vector<std::string> events = log.snapshot();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(json_field(events[0], "event"), "replay");
    EXPECT_EQ(json_field(events[0], "ok"), "false");
  }
  EXPECT_EQ(d.stats().recovered, 0u);
  EXPECT_EQ(d.stats().journal_errors, 1u);
  // Recovery was lost, not the daemon: it keeps serving durably.
  d.handle_line(kSubmitB);
  d.drain();
  EXPECT_NE(log.hash_for("b"), "");
}

// ---------------------------------------------------------------------------
// Rotation (size-triggered compaction) and the config snapshot gate
// ---------------------------------------------------------------------------

TEST_F(JournalTest, RotationCompactsTheJournalDownToItsLiveSet) {
  const std::string path = temp_path("journal_rotate.mftj");
  DaemonOptions opt = durable_opts(path);
  // Any terminal record tips the journal over this bound, so every
  // completed request compacts: the steady-state file is exactly the
  // config snapshot plus whatever is still unfinished.
  opt.journal_compact_bytes = 1;
  EventLog log;
  SizingDaemon d(opt, log.emit());
  for (int i = 0; i < 4; ++i) {
    d.handle_line(kSubmitA);
    d.drain();
  }
  const DaemonStats s = d.stats();
  EXPECT_GE(s.journal_compactions, 4u);
  EXPECT_EQ(s.journal_errors, 0u);
  // Nothing outstanding: the rotated journal holds only the config head,
  // and its size stays bounded by the live set instead of growing with
  // history.
  const std::vector<std::string> recs = Journal::replay(path);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(json_field(recs[0], "type"), "config");
  EXPECT_LT(s.journal_bytes, 256u);
  // A restart of the rotated journal recovers nothing and serves on.
  EventLog log2;
  SizingDaemon d2(opt, log2.emit());
  EXPECT_EQ(json_field(log2.snapshot().at(0), "ok"), "true");
  EXPECT_EQ(json_field(log2.snapshot().at(0), "recovered"), "0");
  d2.handle_line(kSubmitB);
  d2.drain();
  EXPECT_NE(log2.hash_for("b"), "");
}

TEST_F(JournalTest, IncompatibleConfigSnapshotRefusesReplayAndPreservesIt) {
  const std::string path = temp_path("journal_config.mftj");
  {  // clean run under the default engine config
    EventLog log;
    SizingDaemon d(durable_opts(path), log.emit());
    d.handle_line(kSubmitA);
    d.drain();
  }
  // Simulate the crash: strip the result record so rid 0 looks
  // unfinished, keeping the config snapshot and the submit.
  std::vector<std::string> recs;
  for (const std::string& r : Journal::replay(path))
    if (r.find("\"type\":\"result\"") == std::string::npos) recs.push_back(r);
  ASSERT_EQ(recs.size(), 2u);  // config + submit
  Journal::rewrite(path, recs);

  // A daemon with a different base_seed could *run* the replay — and
  // silently produce different sizes than the journal's clients were
  // promised. It must refuse instead, and leave the file untouched.
  DaemonOptions other = durable_opts(path);
  other.engine.base_seed = 12345;
  EventLog log;
  SizingDaemon d(other, log.emit());
  {
    const std::vector<std::string> events = log.snapshot();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(json_field(events[0], "event"), "replay");
    EXPECT_EQ(json_field(events[0], "ok"), "false");
    EXPECT_NE(events[0].find("config incompatible"), std::string::npos);
  }
  EXPECT_EQ(d.stats().recovered, 0u);
  EXPECT_EQ(Journal::replay(path).size(), 2u);  // preserved, not compacted
  // The refusing daemon still serves (its new records append behind the
  // preserved ones).
  d.handle_line(kSubmitB);
  d.drain();
  EXPECT_NE(log.hash_for("b"), "");

  // The *matching* engine can still recover the preserved request later.
  EventLog log2;
  SizingDaemon d2(durable_opts(path), log2.emit());
  d2.drain();
  EXPECT_EQ(json_field(log2.snapshot().at(0), "ok"), "true");
  EXPECT_EQ(d2.stats().recovered, 1u);
  EXPECT_NE(log2.hash_for("a"), "");
}

}  // namespace
}  // namespace mft
