// Tests for the optimization stack: TILOS, W-phase, D-phase, and the full
// MINFLOTRANSIT loop, including the paper's Example 1 and the headline
// property (area savings over TILOS at identical timing).
#include <gtest/gtest.h>

#include "gen/blocks.h"
#include "gen/iscas_analog.h"
#include "sizing/minflotransit.h"
#include "sizing/tradeoff.h"
#include "timing/lowering.h"
#include "util/rng.h"

namespace mft {
namespace {

LoweredCircuit lower(const Netlist& nl) {
  return lower_gate_level(nl, Tech{});
}

TEST(Tilos, MeetsTargetOnC17) {
  Netlist nl = make_c17();
  LoweredCircuit lc = lower(nl);
  const double dmin = min_sized_delay(lc.net);
  const TilosResult r = run_tilos(lc.net, 0.6 * dmin);
  EXPECT_TRUE(r.met_target);
  EXPECT_LE(r.achieved_delay, 0.6 * dmin + 1e-9);
  // The timing-feasible solution must cost area.
  EXPECT_GT(r.area, lc.net.area(lc.net.min_sizes()));
}

TEST(Tilos, TrivialTargetNeedsNoBumps) {
  Netlist nl = make_c17();
  LoweredCircuit lc = lower(nl);
  const double dmin = min_sized_delay(lc.net);
  const TilosResult r = run_tilos(lc.net, 1.5 * dmin);
  EXPECT_TRUE(r.met_target);
  EXPECT_EQ(r.bumps, 0);
  EXPECT_DOUBLE_EQ(r.area, lc.net.area(lc.net.min_sizes()));
}

TEST(Tilos, ImpossibleTargetReportsFailure) {
  Netlist nl = make_c17();
  LoweredCircuit lc = lower(nl);
  const TilosResult r = run_tilos(lc.net, 1e-3);
  EXPECT_FALSE(r.met_target);
}

TEST(Tilos, AreaIsMonotoneInTargetTightness) {
  Netlist nl = make_ripple_adder(8);
  LoweredCircuit lc = lower(nl);
  const double dmin = min_sized_delay(lc.net);
  double prev_area = 0.0;
  for (double ratio : {0.9, 0.7, 0.5, 0.4}) {
    const TilosResult r = run_tilos(lc.net, ratio * dmin);
    ASSERT_TRUE(r.met_target) << ratio;
    EXPECT_GE(r.area, prev_area) << ratio;
    prev_area = r.area;
  }
}

TEST(WPhase, BudgetsAreMetWithEquality) {
  // Feed the W-phase the delays of a known sizing; it must return sizes
  // whose delays hit those budgets exactly (where unclamped).
  Netlist nl = make_c17();
  Tech tech;
  tech.min_size = 0.01;
  LoweredCircuit lc = lower_gate_level(nl, tech);
  std::vector<double> x0(static_cast<std::size_t>(lc.net.num_vertices()), 3.0);
  for (NodeId v = 0; v < lc.net.num_vertices(); ++v)
    if (lc.net.is_source(v)) x0[static_cast<std::size_t>(v)] = 0.0;
  std::vector<double> budget(static_cast<std::size_t>(lc.net.num_vertices()));
  for (NodeId v = 0; v < lc.net.num_vertices(); ++v)
    budget[static_cast<std::size_t>(v)] = lc.net.delay(v, x0);
  const WPhaseResult r = solve_wphase(lc.net, budget);
  ASSERT_TRUE(r.feasible);
  for (NodeId v = 0; v < lc.net.num_vertices(); ++v) {
    if (lc.net.is_source(v)) continue;
    EXPECT_LE(lc.net.delay(v, r.sizes),
              budget[static_cast<std::size_t>(v)] * (1 + 1e-9));
  }
}

TEST(WPhase, LeastFixpointIsBelowAnyFeasibleSizing) {
  // x0 itself satisfies budget = delay(x0); the SMP least fixpoint must be
  // pointwise <= x0 (that is what makes the W-phase an *optimal* resizer).
  Netlist nl = make_ripple_adder(4);
  LoweredCircuit lc = lower(nl);
  const double dmin = min_sized_delay(lc.net);
  const TilosResult tilos = run_tilos(lc.net, 0.6 * dmin);
  ASSERT_TRUE(tilos.met_target);
  std::vector<double> budget(static_cast<std::size_t>(lc.net.num_vertices()));
  for (NodeId v = 0; v < lc.net.num_vertices(); ++v)
    budget[static_cast<std::size_t>(v)] = lc.net.delay(v, tilos.sizes);
  const WPhaseResult r = solve_wphase(lc.net, budget);
  ASSERT_TRUE(r.feasible);
  for (NodeId v = 0; v < lc.net.num_vertices(); ++v) {
    if (!lc.net.is_source(v)) {
      EXPECT_LE(r.sizes[static_cast<std::size_t>(v)],
                tilos.sizes[static_cast<std::size_t>(v)] * (1 + 1e-9))
          << v;
    }
  }
  EXPECT_LE(lc.net.area(r.sizes), tilos.area * (1 + 1e-9));
  // Timing must be preserved: every vertex delay within its budget implies
  // CP within the TILOS CP.
  EXPECT_LE(run_sta(lc.net, r.sizes).critical_path,
            tilos.achieved_delay * (1 + 1e-9));
}

TEST(WPhase, InfeasibleBudgetFlagged) {
  Netlist nl = make_c17();
  LoweredCircuit lc = lower(nl);
  std::vector<double> budget(static_cast<std::size_t>(lc.net.num_vertices()),
                             1e-6);
  const WPhaseResult r = solve_wphase(lc.net, budget);
  EXPECT_FALSE(r.feasible);
}

TEST(DPhase, KeepsCriticalPathAndPredictsImprovement) {
  Netlist nl = make_ripple_adder(6);
  LoweredCircuit lc = lower(nl);
  const double dmin = min_sized_delay(lc.net);
  const TilosResult tilos = run_tilos(lc.net, 0.55 * dmin);
  ASSERT_TRUE(tilos.met_target);

  const DPhaseResult d = run_dphase(lc.net, tilos.sizes);
  ASSERT_TRUE(d.solved);
  // r = 0 is feasible, so the optimum is >= 0.
  EXPECT_GE(d.objective, -1e-9);
  // Realize the budgets: the W-phase result must not break timing.
  const WPhaseResult w = solve_wphase(lc.net, d.budget);
  ASSERT_TRUE(w.feasible);
  const TimingReport t = run_sta(lc.net, w.sizes);
  EXPECT_LE(t.critical_path, tilos.achieved_delay * (1 + 1e-6));
  EXPECT_TRUE(t.safe(lc.net));
}

TEST(DPhase, AllFlowSolversProduceSameObjective) {
  Netlist nl = make_c17();
  LoweredCircuit lc = lower(nl);
  const double dmin = min_sized_delay(lc.net);
  const TilosResult tilos = run_tilos(lc.net, 0.6 * dmin);
  ASSERT_TRUE(tilos.met_target);
  DPhaseOptions opt;
  opt.solver = FlowSolver::kNetworkSimplex;
  const DPhaseResult a = run_dphase(lc.net, tilos.sizes, opt);
  opt.solver = FlowSolver::kSsp;
  const DPhaseResult b = run_dphase(lc.net, tilos.sizes, opt);
  opt.solver = FlowSolver::kCycleCanceling;
  const DPhaseResult c = run_dphase(lc.net, tilos.sizes, opt);
  ASSERT_TRUE(a.solved && b.solved && c.solved);
  EXPECT_NEAR(a.objective, b.objective, 1e-6 * (1 + std::abs(a.objective)));
  EXPECT_NEAR(a.objective, c.objective, 1e-6 * (1 + std::abs(a.objective)));
}

TEST(DPhase, TightBetaLimitsBudgetMovement) {
  Netlist nl = make_ripple_adder(4);
  LoweredCircuit lc = lower(nl);
  const double dmin = min_sized_delay(lc.net);
  const TilosResult tilos = run_tilos(lc.net, 0.6 * dmin);
  ASSERT_TRUE(tilos.met_target);
  DPhaseOptions opt;
  opt.beta = 0.05;
  const DPhaseResult d = run_dphase(lc.net, tilos.sizes, opt);
  ASSERT_TRUE(d.solved);
  const TimingReport t = run_sta(lc.net, tilos.sizes);
  for (NodeId v = 0; v < lc.net.num_vertices(); ++v) {
    if (lc.net.is_source(v)) continue;
    const double delay = t.delay[static_cast<std::size_t>(v)];
    EXPECT_LE(d.budget[static_cast<std::size_t>(v)],
              delay * (1 + opt.beta) + 1e-6);
    EXPECT_GE(d.budget[static_cast<std::size_t>(v)],
              delay * (1 - opt.beta) - 1e-6);
  }
}

TEST(Minflotransit, PaperExampleOneSharedFaninWins) {
  // Fig. 6: A fans out to B and C; both paths critical. TILOS bumps B and C
  // alternately; MINFLOTRANSIT should find the globally cheaper solution.
  Netlist nl;
  const GateId i1 = nl.add_input("i1");
  const GateId i2 = nl.add_input("i2");
  const GateId i3 = nl.add_input("i3");
  const GateId i4 = nl.add_input("i4");
  const GateId a = nl.add_gate(GateKind::kNand, "A", {i1, i2});
  const GateId b = nl.add_gate(GateKind::kNand, "B", {a, i3});
  const GateId c = nl.add_gate(GateKind::kNand, "C", {a, i4});
  nl.mark_output(b);
  nl.mark_output(c);
  LoweredCircuit lc = lower(nl);
  const double dmin = min_sized_delay(lc.net);
  const MinflotransitResult r = run_minflotransit(lc.net, 0.55 * dmin);
  ASSERT_TRUE(r.met_target);
  EXPECT_LE(r.delay, 0.55 * dmin * (1 + 1e-9));
  EXPECT_LE(r.area, r.initial.area * (1 + 1e-9));
}

struct NamedCircuit {
  const char* name;
  Netlist (*build)();
};

Netlist build_c17() { return make_c17(); }
Netlist build_adder8() { return make_ripple_adder(8); }
Netlist build_mux16() { return make_mux_tree(4); }
Netlist build_cmp8() { return make_comparator(8); }
Netlist build_parity() { return tech_map_to_primitives(make_parity_sec(8)); }

class MftOnCircuit : public ::testing::TestWithParam<NamedCircuit> {};

INSTANTIATE_TEST_SUITE_P(
    Circuits, MftOnCircuit,
    ::testing::Values(NamedCircuit{"c17", build_c17},
                      NamedCircuit{"adder8", build_adder8},
                      NamedCircuit{"mux16", build_mux16},
                      NamedCircuit{"cmp8", build_cmp8},
                      NamedCircuit{"parity8", build_parity}),
    [](const auto& info) { return std::string(info.param.name); });

// The paper's central claim, as a property: at identical delay targets,
// MINFLOTRANSIT never does worse than TILOS and always stays feasible.
TEST_P(MftOnCircuit, NeverWorseThanTilosAndAlwaysFeasible) {
  Netlist nl = GetParam().build();
  LoweredCircuit lc = lower(nl);
  const double dmin = min_sized_delay(lc.net);
  // Each circuit has a sizing floor (intrinsic delay + asymptotic effort)
  // below which no sizing helps; probe it so the targets are feasible by
  // construction, mirroring the paper's "reasonable delay targets".
  const double floor = run_tilos(lc.net, 0.05 * dmin).achieved_delay;
  ASSERT_LT(floor, 0.8 * dmin);
  for (double lambda : {0.5, 0.15}) {
    const double target = floor + lambda * (dmin - floor);
    const MinflotransitResult r = run_minflotransit(lc.net, target);
    ASSERT_TRUE(r.initial.met_target) << "TILOS failed at " << lambda;
    EXPECT_TRUE(r.met_target) << lambda;
    EXPECT_LE(r.delay, target * (1 + 1e-9)) << lambda;
    EXPECT_LE(r.area, r.initial.area * (1 + 1e-9)) << lambda;
    // Sizes stay in bounds.
    for (NodeId v = 0; v < lc.net.num_vertices(); ++v) {
      if (lc.net.is_source(v)) continue;
      EXPECT_GE(r.sizes[static_cast<std::size_t>(v)],
                lc.net.tech().min_size - 1e-12);
      EXPECT_LE(r.sizes[static_cast<std::size_t>(v)],
                lc.net.tech().max_size + 1e-12);
    }
  }
}

TEST(Minflotransit, ConvergesWithinTensOfIterations) {
  Netlist nl = make_ripple_adder(12);
  LoweredCircuit lc = lower(nl);
  const double dmin = min_sized_delay(lc.net);
  const MinflotransitResult r = run_minflotransit(lc.net, 0.5 * dmin);
  ASSERT_TRUE(r.met_target);
  EXPECT_LE(static_cast<int>(r.iterations.size()), 100);  // paper §3
  // Area trajectory is (weakly) decreasing at the recorded best points.
  double best = r.initial.area;
  for (const IterationLog& log : r.iterations) {
    EXPECT_LE(log.area, best * 1.05);  // bounded transient regression
    best = std::min(best, log.area);
  }
}

TEST(Minflotransit, UnreachableTargetReportsTilosFailure) {
  Netlist nl = make_c17();
  LoweredCircuit lc = lower(nl);
  const MinflotransitResult r = run_minflotransit(lc.net, 1e-4);
  EXPECT_FALSE(r.met_target);
  EXPECT_FALSE(r.initial.met_target);
}

TEST(Tradeoff, CurveShapesMatchFigureSeven) {
  Netlist nl = make_ripple_adder(8);
  LoweredCircuit lc = lower(nl);
  const TradeoffCurve curve =
      area_delay_sweep(lc.net, {1.0, 0.8, 0.6, 0.5});
  ASSERT_EQ(curve.points.size(), 4u);
  double prev = 0.0;
  for (const TradeoffPoint& p : curve.points) {
    ASSERT_TRUE(p.tilos_met && p.mft_met) << p.target_ratio;
    // MINFLOTRANSIT on or below the TILOS curve.
    EXPECT_LE(p.mft_area_ratio, p.tilos_area_ratio * (1 + 1e-9));
    // Areas grow as the target tightens.
    EXPECT_GE(p.mft_area_ratio, prev - 1e-9);
    prev = p.mft_area_ratio;
  }
  // At ratio 1.0 no sizing is needed.
  EXPECT_NEAR(curve.points.front().mft_area_ratio, 1.0, 1e-9);
}

TEST(Minflotransit, WorksOnTransistorGranularity) {
  Netlist nl = make_ripple_adder(2);
  LoweredCircuit lc = lower_transistor_level(nl, Tech{});
  const double dmin = min_sized_delay(lc.net);
  const MinflotransitResult r = run_minflotransit(lc.net, 0.6 * dmin);
  ASSERT_TRUE(r.initial.met_target);
  EXPECT_TRUE(r.met_target);
  EXPECT_LE(r.area, r.initial.area * (1 + 1e-9));
}

TEST(Minflotransit, WireSizingVariantRuns) {
  Netlist nl = make_c17();
  GateLoweringOptions gopt;
  gopt.size_wires = true;
  LoweredCircuit lc = lower_gate_level(nl, Tech{}, gopt);
  const double dmin = min_sized_delay(lc.net);
  const MinflotransitResult r = run_minflotransit(lc.net, 0.7 * dmin);
  ASSERT_TRUE(r.initial.met_target);
  EXPECT_TRUE(r.met_target);
  EXPECT_LE(r.area, r.initial.area * (1 + 1e-9));
}

}  // namespace
}  // namespace mft
