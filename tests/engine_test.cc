// Tests for the sizing engine's three layers:
//
//  - Pass layer: the default pipeline must reproduce the pre-refactor
//    run_minflotransit loop *bit-identically*. The reference here is a
//    verbatim copy of the legacy driver (legacy_minflotransit below),
//    frozen at the PR that introduced the pipeline.
//  - Context layer: per-job instrumentation resets at begin_job() while
//    cached solver state (LP build, STA sizes) survives.
//  - Engine layer: a multi-thread batch is bit-identical to the same batch
//    run sequentially, results come back in job order, failures are
//    per-job, and seeding is deterministic.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "engine/runner.h"
#include "gen/blocks.h"
#include "sizing/context.h"
#include "sizing/pass.h"
#include "sizing/tradeoff.h"
#include "timing/lowering.h"
#include "util/stopwatch.h"

namespace mft {
namespace {

// ---------------------------------------------------------------------------
// Reference: the pre-pipeline run_minflotransit, copied verbatim (only
// renamed). Any change in the pass layer's arithmetic or control flow will
// show up as a size/area/delay mismatch against this. One deliberate
// amendment since the original freeze: the W-phase calls warm-start from
// the current iterate, mirroring the same intentional algorithm change in
// WPhasePass/DPhasePass (identical results on triangular/gate networks,
// fewer sweeps — and a slightly different, equally-converged trajectory —
// on mutually-loading transistor networks).
// ---------------------------------------------------------------------------
MinflotransitResult legacy_minflotransit(const SizingNetwork& net,
                                         double target_delay,
                                         const MinflotransitOptions& opt = {}) {
  Stopwatch total;
  MinflotransitResult res;

  {
    Stopwatch sw;
    res.initial = run_tilos(net, target_delay, opt.tilos);
    res.tilos_seconds = sw.seconds();
  }
  res.sizes = res.initial.sizes;
  res.met_target = res.initial.met_target;
  res.area = res.initial.area;
  res.delay = res.initial.achieved_delay;
  if (!res.met_target) {
    res.total_seconds = total.seconds();
    return res;
  }

  double best_area = res.area;
  std::vector<double> best_sizes = res.sizes;
  std::vector<double> cur = res.sizes;

  DPhaseWorkspace dws;
  TimingScratch sta;

  {
    const TimingReport& t0 = run_sta(net, cur, sta);
    const WPhaseResult w0 = solve_wphase(net, t0.delay, cur);
    if (w0.feasible) {
      const double area0 = net.area(w0.sizes);
      if (run_sta(net, w0.sizes, sta).critical_path <=
              target_delay * (1.0 + 1e-9) &&
          area0 <= best_area) {
        cur = w0.sizes;
        best_sizes = cur;
        best_area = area0;
      }
    }
  }

  DPhaseOptions dopt = opt.dphase;
  int stagnant = 0;
  int backoffs = 0;
  for (int iter = 0; iter < opt.max_iterations; ++iter) {
    const DPhaseResult d = run_dphase(net, cur, dopt, &dws);
    if (!d.solved) break;
    const WPhaseResult w = solve_wphase(net, d.budget, cur);
    const TimingReport& timing = run_sta(net, w.sizes, sta);
    const double area = net.area(w.sizes);
    const bool ok = w.feasible &&
                    timing.critical_path <= target_delay * (1.0 + 1e-9) &&
                    area <= best_area * (1.0 + 1e-9);
    if (!ok) {
      if (++backoffs > opt.max_beta_backoffs) break;
      dopt.beta *= 0.5;
      cur = best_sizes;
      continue;
    }
    backoffs = 0;
    cur = w.sizes;
    res.iterations.push_back(
        IterationLog{area, timing.critical_path, d.objective, dopt.beta});
    const double improvement = (best_area - area) / best_area;
    if (area < best_area) {
      best_area = area;
      best_sizes = cur;
    }
    if (improvement < opt.rel_improvement_stop) {
      if (++stagnant >= opt.patience) break;
    } else {
      stagnant = 0;
    }
  }

  res.sizes = std::move(best_sizes);
  res.area = best_area;
  res.delay = run_sta(net, res.sizes, sta).critical_path;
  res.total_seconds = total.seconds();
  return res;
}

LoweredCircuit lower(const Netlist& nl) { return lower_gate_level(nl, Tech{}); }

void expect_bit_identical(const MinflotransitResult& a,
                          const MinflotransitResult& b) {
  EXPECT_EQ(a.met_target, b.met_target);
  ASSERT_EQ(a.sizes.size(), b.sizes.size());
  for (std::size_t i = 0; i < a.sizes.size(); ++i)
    EXPECT_EQ(a.sizes[i], b.sizes[i]) << "size mismatch at vertex " << i;
  EXPECT_EQ(a.area, b.area);
  EXPECT_EQ(a.delay, b.delay);
  EXPECT_EQ(a.initial.met_target, b.initial.met_target);
  EXPECT_EQ(a.initial.area, b.initial.area);
  EXPECT_EQ(a.initial.bumps, b.initial.bumps);
  ASSERT_EQ(a.iterations.size(), b.iterations.size());
  for (std::size_t i = 0; i < a.iterations.size(); ++i) {
    EXPECT_EQ(a.iterations[i].area, b.iterations[i].area);
    EXPECT_EQ(a.iterations[i].critical_path, b.iterations[i].critical_path);
    EXPECT_EQ(a.iterations[i].dphase_objective,
              b.iterations[i].dphase_objective);
    EXPECT_EQ(a.iterations[i].beta, b.iterations[i].beta);
  }
}

struct NamedCircuit {
  const char* name;
  Netlist (*build)();
};

Netlist build_c17() { return make_c17(); }
Netlist build_adder8() { return make_ripple_adder(8); }
Netlist build_mux16() { return make_mux_tree(4); }
Netlist build_cmp8() { return make_comparator(8); }
Netlist build_parity() { return tech_map_to_primitives(make_parity_sec(8)); }

class PipelineOnCircuit : public ::testing::TestWithParam<NamedCircuit> {};

INSTANTIATE_TEST_SUITE_P(
    Circuits, PipelineOnCircuit,
    ::testing::Values(NamedCircuit{"c17", build_c17},
                      NamedCircuit{"adder8", build_adder8},
                      NamedCircuit{"mux16", build_mux16},
                      NamedCircuit{"cmp8", build_cmp8},
                      NamedCircuit{"parity8", build_parity}),
    [](const auto& info) { return std::string(info.param.name); });

// The acceptance gate of the pipeline refactor: on the seed circuits the
// new pass pipeline (via the run_minflotransit wrapper) must match the
// legacy loop bit for bit, at a moderate and a steep target.
TEST_P(PipelineOnCircuit, BitIdenticalToLegacyDriver) {
  Netlist nl = GetParam().build();
  LoweredCircuit lc = lower(nl);
  const double dmin = min_sized_delay(lc.net);
  const double floor = run_tilos(lc.net, 0.05 * dmin).achieved_delay;
  for (double lambda : {0.5, 0.15}) {
    const double target = floor + lambda * (dmin - floor);
    const MinflotransitResult legacy = legacy_minflotransit(lc.net, target);
    const MinflotransitResult now = run_minflotransit(lc.net, target);
    SCOPED_TRACE(lambda);
    expect_bit_identical(legacy, now);
  }
}

TEST(Pipeline, BitIdenticalToLegacyOnTransistorGranularity) {
  Netlist nl = make_ripple_adder(2);
  LoweredCircuit lc = lower_transistor_level(nl, Tech{});
  const double dmin = min_sized_delay(lc.net);
  const MinflotransitResult legacy =
      legacy_minflotransit(lc.net, 0.6 * dmin);
  const MinflotransitResult now = run_minflotransit(lc.net, 0.6 * dmin);
  expect_bit_identical(legacy, now);
}

TEST(Pipeline, UnreachableTargetMatchesLegacy) {
  Netlist nl = make_c17();
  LoweredCircuit lc = lower(nl);
  const MinflotransitResult legacy = legacy_minflotransit(lc.net, 1e-4);
  const MinflotransitResult now = run_minflotransit(lc.net, 1e-4);
  EXPECT_FALSE(now.met_target);
  expect_bit_identical(legacy, now);
}

TEST(Pipeline, ZeroIterationsMatchesLegacyTilosOnly) {
  // --tilos-only path: the W-phase canonicalization still runs, the D/W
  // loop does not.
  Netlist nl = make_ripple_adder(8);
  LoweredCircuit lc = lower(nl);
  const double dmin = min_sized_delay(lc.net);
  MinflotransitOptions opt;
  opt.max_iterations = 0;
  const MinflotransitResult legacy =
      legacy_minflotransit(lc.net, 0.5 * dmin, opt);
  const MinflotransitResult now = run_minflotransit(lc.net, 0.5 * dmin, opt);
  EXPECT_TRUE(now.met_target);
  EXPECT_TRUE(now.iterations.empty());
  expect_bit_identical(legacy, now);
}

TEST(Pipeline, ExplicitPipelineMatchesWrapperAndReportsPassStats) {
  Netlist nl = make_ripple_adder(8);
  LoweredCircuit lc = lower(nl);
  const double dmin = min_sized_delay(lc.net);
  const MinflotransitResult via_wrapper =
      run_minflotransit(lc.net, 0.5 * dmin);

  SizingContext ctx(lc.net);
  const Pipeline pipeline = make_minflotransit_pipeline();
  const PipelineResult pr = pipeline.run(ctx, 0.5 * dmin);
  const MinflotransitResult via_pipeline = to_minflotransit_result(ctx, pr);
  expect_bit_identical(via_wrapper, via_pipeline);

  // Per-pass instrumentation: one entry per configured pass, in order.
  ASSERT_EQ(pr.pass_stats.size(), 3u);
  EXPECT_EQ(pr.pass_stats[0].name, "tilos");
  EXPECT_EQ(pr.pass_stats[1].name, "wphase");
  EXPECT_EQ(pr.pass_stats[2].name, "dphase");
  EXPECT_EQ(pr.pass_stats[0].invocations, 1);
  EXPECT_EQ(pr.pass_stats[1].invocations, 1);
  // The D/W alternation ran at least the accepted iterations.
  EXPECT_GE(pr.pass_stats[2].invocations,
            static_cast<int>(pr.state.iterations.size()));
}

TEST(Pipeline, CustomPhaseOrderWithDownsizePass) {
  // The point of the pass layer: compose a non-default pipeline. Appending
  // a DownsizePass can only improve area and must keep timing feasible.
  Netlist nl = make_ripple_adder(6);
  LoweredCircuit lc = lower(nl);
  const double dmin = min_sized_delay(lc.net);
  const double target = 0.55 * dmin;

  const MinflotransitResult plain = run_minflotransit(lc.net, target);
  ASSERT_TRUE(plain.met_target);

  MinflotransitOptions opt;
  Pipeline pipeline;
  pipeline.add(std::make_unique<TilosPass>(opt.tilos));
  pipeline.add(std::make_unique<WPhasePass>());
  pipeline.add(std::make_unique<DPhasePass>(opt.dphase,
                                            opt.rel_improvement_stop,
                                            opt.patience,
                                            opt.max_beta_backoffs),
               opt.max_iterations);
  pipeline.add(std::make_unique<DownsizePass>());
  SizingContext ctx(lc.net);
  const MinflotransitResult polished =
      to_minflotransit_result(ctx, pipeline.run(ctx, target));
  ASSERT_TRUE(polished.met_target);
  EXPECT_LE(polished.area, plain.area * (1 + 1e-9));
  EXPECT_LE(polished.delay, target * (1 + 1e-9));
  // Near-optimality (paper Theorem 3): the local search reclaims < 2%.
  EXPECT_GE(polished.area, plain.area * 0.98);
}

TEST(Pipeline, ReusablePipelineObjectAcrossRuns) {
  // A Pipeline holds no per-run state (DPhasePass::begin re-arms the trust
  // region), so one object must serve many targets with clean results.
  Netlist nl = make_ripple_adder(6);
  LoweredCircuit lc = lower(nl);
  const double dmin = min_sized_delay(lc.net);
  const Pipeline pipeline = make_minflotransit_pipeline();
  SizingContext ctx(lc.net);
  for (double ratio : {0.7, 0.5, 0.7}) {
    const double target = ratio * dmin;
    ctx.begin_job();
    const MinflotransitResult fresh = run_minflotransit(lc.net, target);
    const MinflotransitResult reused =
        to_minflotransit_result(ctx, pipeline.run(ctx, target));
    SCOPED_TRACE(ratio);
    expect_bit_identical(fresh, reused);
  }
}

// ---------------------------------------------------------------------------
// Context layer
// ---------------------------------------------------------------------------

TEST(Context, InstrumentationResetsPerJobWhileCachesSurvive) {
  Netlist nl = make_ripple_adder(8);
  LoweredCircuit lc = lower(nl);
  const double dmin = min_sized_delay(lc.net);

  SizingContext ctx(lc.net);
  ContextStats fresh = ctx.stats();
  EXPECT_EQ(fresh.sta_full_runs, 0);
  EXPECT_EQ(fresh.sta_incremental_runs, 0);
  EXPECT_EQ(fresh.sta_delays_recomputed, 0);

  run_minflotransit(ctx, 0.5 * dmin);
  const ContextStats job1 = ctx.stats();
  EXPECT_GT(job1.sta_full_runs + job1.sta_incremental_runs, 0);
  EXPECT_EQ(ctx.dphase().problem_builds(), 1);

  // Second job on the reused context: stats start from zero again...
  ctx.begin_job();
  fresh = ctx.stats();
  EXPECT_EQ(fresh.sta_full_runs, 0);
  EXPECT_EQ(fresh.sta_incremental_runs, 0);
  EXPECT_EQ(fresh.sta_delays_recomputed, 0);

  run_minflotransit(ctx, 0.6 * dmin);
  const ContextStats job2 = ctx.stats();
  EXPECT_GT(job2.sta_full_runs + job2.sta_incremental_runs, 0);
  // ...but the cached LP/flow build is NOT discarded: still one build.
  EXPECT_EQ(ctx.dphase().problem_builds(), 1);
}

TEST(Context, ContextRunsAreBitIdenticalToFreshRuns) {
  Netlist nl = make_mux_tree(4);
  LoweredCircuit lc = lower(nl);
  const double dmin = min_sized_delay(lc.net);
  SizingContext ctx(lc.net);
  for (double ratio : {0.8, 0.55}) {
    ctx.begin_job();
    const MinflotransitResult reused =
        run_minflotransit(ctx, ratio * dmin);
    const MinflotransitResult fresh = run_minflotransit(lc.net, ratio * dmin);
    SCOPED_TRACE(ratio);
    expect_bit_identical(fresh, reused);
  }
}

// ---------------------------------------------------------------------------
// Engine layer
// ---------------------------------------------------------------------------

std::vector<SizingJob> make_batch_jobs() {
  // 8 jobs across 2 networks and mixed configurations (the determinism
  // test from the issue: batch runs must not depend on scheduling).
  std::vector<SizingJob> jobs;
  const double ratios[4] = {0.8, 0.65, 0.5, 0.45};
  for (int n = 0; n < 2; ++n) {
    for (int k = 0; k < 4; ++k) {
      SizingJob job;
      job.network = n;
      job.target_ratio = ratios[k];
      job.label = (n == 0 ? "adder8@" : "cmp8@") + std::to_string(ratios[k]);
      if (k == 3) job.options.dphase.solver = FlowSolver::kSsp;
      jobs.push_back(std::move(job));
    }
  }
  return jobs;
}

TEST(Engine, ParallelBatchBitIdenticalToSequential) {
  Netlist a = make_ripple_adder(8);
  Netlist b = make_comparator(8);
  LoweredCircuit la = lower(a);
  LoweredCircuit lb = lower(b);
  const std::vector<const SizingNetwork*> networks = {&la.net, &lb.net};
  const std::vector<SizingJob> jobs = make_batch_jobs();

  JobRunnerOptions seq;
  seq.threads = 1;
  JobRunnerOptions par;
  par.threads = 4;
  const BatchResult s = JobRunner(seq).run(networks, jobs);
  const BatchResult p = JobRunner(par).run(networks, jobs);

  EXPECT_EQ(s.threads_used, 1);
  EXPECT_EQ(p.threads_used, 4);
  ASSERT_EQ(s.results.size(), jobs.size());
  ASSERT_EQ(p.results.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    SCOPED_TRACE(jobs[i].label);
    const JobResult& x = s.results[i];
    const JobResult& y = p.results[i];
    // Ordered collection: results[i] belongs to jobs[i] in both runs.
    EXPECT_EQ(x.job, static_cast<int>(i));
    EXPECT_EQ(y.job, static_cast<int>(i));
    EXPECT_EQ(x.label, jobs[i].label);
    EXPECT_EQ(y.label, jobs[i].label);
    ASSERT_TRUE(x.ok);
    ASSERT_TRUE(y.ok);
    // Deterministic seeding: same derivation regardless of thread count.
    EXPECT_EQ(x.seed, y.seed);
    EXPECT_NE(x.seed, 0u);
    // Bit-identical sizes/areas/delays.
    expect_bit_identical(x.result, y.result);
    EXPECT_EQ(x.dmin, y.dmin);
    EXPECT_EQ(x.target, y.target);
  }
}

TEST(Engine, MatchesDirectRunsAndTradeoffSweep) {
  // Engine results must equal what a caller gets without the engine.
  Netlist nl = make_ripple_adder(8);
  LoweredCircuit lc = lower(nl);
  const double dmin = min_sized_delay(lc.net);

  std::vector<SizingJob> jobs;
  for (double ratio : {1.0, 0.8, 0.6, 0.5}) {
    SizingJob job;
    job.target_ratio = ratio;
    jobs.push_back(std::move(job));
  }
  JobRunnerOptions ropt;
  ropt.threads = 2;
  const BatchResult batch = JobRunner(ropt).run({&lc.net}, jobs);

  const TradeoffCurve curve = area_delay_sweep(lc.net, {1.0, 0.8, 0.6, 0.5});
  ASSERT_EQ(batch.results.size(), curve.points.size());
  for (std::size_t i = 0; i < curve.points.size(); ++i) {
    ASSERT_TRUE(batch.results[i].ok);
    const MinflotransitResult& r = batch.results[i].result;
    const MinflotransitResult direct =
        run_minflotransit(lc.net, curve.points[i].target_ratio * dmin);
    expect_bit_identical(direct, r);
  }
}

TEST(Engine, ProgressCallbackFiresOncePerJobInCompletionOrder) {
  Netlist nl = make_c17();
  LoweredCircuit lc = lower(nl);
  std::vector<SizingJob> jobs(5);
  for (std::size_t i = 0; i < jobs.size(); ++i)
    jobs[i].target_ratio = 0.9 - 0.05 * static_cast<double>(i);

  int calls = 0;
  int last_done = 0;
  JobRunnerOptions ropt;
  ropt.threads = 3;
  ropt.progress = [&](const JobResult& r, int done, int total) {
    ++calls;
    EXPECT_EQ(total, 5);
    EXPECT_EQ(done, last_done + 1);  // serialized, monotone completion count
    last_done = done;
    EXPECT_GE(r.job, 0);
    EXPECT_LT(r.job, 5);
  };
  const BatchResult batch = JobRunner(ropt).run({&lc.net}, jobs);
  EXPECT_EQ(calls, 5);
  EXPECT_EQ(static_cast<int>(batch.results.size()), 5);
  EXPECT_GT(batch.jobs_per_second, 0.0);
}

TEST(Engine, PerJobFailureDoesNotPoisonTheBatch) {
  Netlist nl = make_c17();
  LoweredCircuit lc = lower(nl);
  std::vector<SizingJob> jobs(3);
  jobs[0].target_ratio = 0.7;
  jobs[1].target_ratio = 0.7;
  jobs[1].options.dphase.beta = -1.0;  // invalid: run_dphase MFT_CHECKs
  jobs[2].target_ratio = 0.6;

  JobRunnerOptions ropt;
  ropt.threads = 2;
  const BatchResult batch = JobRunner(ropt).run({&lc.net}, jobs);
  ASSERT_EQ(batch.results.size(), 3u);
  EXPECT_TRUE(batch.results[0].ok);
  EXPECT_FALSE(batch.results[1].ok);
  EXPECT_FALSE(batch.results[1].error.empty());
  EXPECT_TRUE(batch.results[2].ok);
  // The healthy jobs match engine-free runs.
  const double dmin = min_sized_delay(lc.net);
  expect_bit_identical(run_minflotransit(lc.net, 0.7 * dmin),
                       batch.results[0].result);
  expect_bit_identical(run_minflotransit(lc.net, 0.6 * dmin),
                       batch.results[2].result);
}

TEST(Engine, ExplicitJobSeedWinsOverDerivedSeed) {
  Netlist nl = make_c17();
  LoweredCircuit lc = lower(nl);
  std::vector<SizingJob> jobs(2);
  jobs[0].target_ratio = 0.8;
  jobs[1].target_ratio = 0.8;
  jobs[1].seed = 1234567;
  const BatchResult batch = JobRunner().run({&lc.net}, jobs);
  EXPECT_NE(batch.results[0].seed, 0u);
  EXPECT_EQ(batch.results[1].seed, 1234567u);
}

TEST(Pipeline, SeedReachesPipelineState) {
  // The engine threads the resolved job seed through
  // MinflotransitOptions::seed; the pipeline must surface it to passes.
  Netlist nl = make_c17();
  LoweredCircuit lc = lower(nl);
  SizingContext ctx(lc.net);
  const Pipeline pipeline = make_minflotransit_pipeline();
  const PipelineResult r =
      pipeline.run(ctx, 0.8 * min_sized_delay(lc.net), 987654321u);
  EXPECT_EQ(r.state.seed, 987654321u);
}

TEST(Engine, WritesBatchJson) {
  Netlist nl = make_c17();
  LoweredCircuit lc = lower(nl);
  std::vector<SizingJob> jobs(2);
  jobs[0].target_ratio = 0.8;
  jobs[0].label = "a \"quoted\"\nlabel\\\x01";
  jobs[1].target_ratio = 0.01;  // unreachable: met_target == false branch
  const BatchResult batch = JobRunner().run({&lc.net}, jobs);
  const std::string path = ::testing::TempDir() + "engine_batch.json";
  ASSERT_TRUE(write_batch_json(path, batch));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string content(1 << 14, '\0');
  const std::size_t n = std::fread(content.data(), 1, content.size(), f);
  std::fclose(f);
  content.resize(n);
  EXPECT_NE(content.find("\"jobs\":"), std::string::npos);
  EXPECT_NE(content.find("\"jobs_per_second\""), std::string::npos);
  // Escaping: quotes/backslashes escaped, control chars as \n / \uXXXX.
  EXPECT_NE(content.find("\\\"quoted\\\"\\nlabel\\\\\\u0001"),
            std::string::npos);
  EXPECT_NE(content.find("\"met_target\": false"), std::string::npos);
  // The per-pass stats (including W-phase sweeps) reach the JSON.
  EXPECT_NE(content.find("\"passes\": ["), std::string::npos);
  EXPECT_NE(content.find("\"sweeps\":"), std::string::npos);
  EXPECT_NE(content.find("\"inner_threads\":"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Inner-loop parallelism through the engine
// ---------------------------------------------------------------------------

TEST(Engine, InnerThreadsAreBitIdenticalAndReported) {
  Netlist nl = make_comparator(8);
  LoweredCircuit lc = lower(nl);
  std::vector<SizingJob> jobs(3);
  jobs[0].target_ratio = 0.85;
  jobs[1].target_ratio = 0.7;
  jobs[2].target_ratio = 0.45;  // TILOS-unreachable: aborted pipeline path

  JobRunnerOptions seq;
  seq.threads = 1;
  seq.inner_threads = 1;
  JobRunnerOptions par;
  par.threads = 1;
  par.inner_threads = 4;
  const BatchResult s = JobRunner(seq).run({&lc.net}, jobs);
  const BatchResult p = JobRunner(par).run({&lc.net}, jobs);
  ASSERT_EQ(s.results.size(), p.results.size());
  int refined = 0;
  for (std::size_t i = 0; i < s.results.size(); ++i) {
    SCOPED_TRACE(i);
    ASSERT_TRUE(s.results[i].ok);
    ASSERT_TRUE(p.results[i].ok);
    EXPECT_EQ(s.results[i].inner_threads, 1);
    EXPECT_EQ(p.results[i].inner_threads, 4);
    // The whole point: level-parallel inner loops never change results.
    expect_bit_identical(s.results[i].result, p.results[i].result);
    ASSERT_EQ(p.results[i].pass_stats.size(), 3u);
    EXPECT_EQ(p.results[i].pass_stats[1].name, "wphase");
    if (!p.results[i].result.met_target) continue;  // pipeline aborted
    ++refined;
    // Per-pass stats came back, with the W-phase passes counting sweeps
    // independent of the inner thread count.
    EXPECT_GT(p.results[i].pass_stats[1].sweeps, 0);
    EXPECT_EQ(p.results[i].pass_stats[1].sweeps,
              s.results[i].pass_stats[1].sweeps);
    // The D-phase runs hinted on every straight accepted iteration.
    EXPECT_GT(p.results[i].stats.sta_hinted_runs, 0);
  }
  EXPECT_GE(refined, 2);  // the guarded assertions actually ran
}

TEST(Engine, InnerThreadPolicyGivesLeftoverCoresToWidestJobs) {
  // 5-thread pool, 2 jobs: batch width is served first (1 core per job),
  // the 3 leftover cores round-robin onto the widest network first.
  // The env knob would override the policy under test: clear it for this
  // test only and restore afterwards (CI runs the tier-1 suite a second
  // time with MFT_INNER_THREADS=4 and later tests must still see it).
  struct EnvGuard {
    std::string saved;
    bool was_set;
    EnvGuard() {
      const char* v = std::getenv("MFT_INNER_THREADS");
      was_set = v != nullptr;
      if (was_set) saved = v;
      ::unsetenv("MFT_INNER_THREADS");
    }
    ~EnvGuard() {
      if (was_set) ::setenv("MFT_INNER_THREADS", saved.c_str(), 1);
    }
  } env_guard;
  Netlist small = make_c17();
  Netlist big = make_ripple_adder(8);
  LoweredCircuit ls = lower(small);
  LoweredCircuit lb = lower(big);
  ASSERT_GT(lb.net.num_vertices(), ls.net.num_vertices());

  std::vector<SizingJob> jobs(2);
  jobs[0].network = 0;  // small
  jobs[1].network = 1;  // big
  jobs[0].target_ratio = jobs[1].target_ratio = 0.7;
  JobRunnerOptions ropt;
  ropt.threads = 5;
  const BatchResult batch = JobRunner(ropt).run({&ls.net, &lb.net}, jobs);
  ASSERT_TRUE(batch.results[0].ok);
  ASSERT_TRUE(batch.results[1].ok);
  EXPECT_EQ(batch.results[1].inner_threads, 3);  // big: 1 + 2 leftover
  EXPECT_EQ(batch.results[0].inner_threads, 2);  // small: 1 + 1 leftover

  // A batch at least as wide as the pool gets sequential inner loops.
  std::vector<SizingJob> wide(5);
  for (auto& j : wide) j.target_ratio = 0.8;
  const BatchResult flat = JobRunner(ropt).run({&ls.net, &lb.net}, wide);
  for (const JobResult& r : flat.results) EXPECT_EQ(r.inner_threads, 1);

  // An explicit per-job request overrides the policy.
  jobs[0].inner_threads = 1;
  jobs[1].inner_threads = 2;
  const BatchResult forced = JobRunner(ropt).run({&ls.net, &lb.net}, jobs);
  EXPECT_EQ(forced.results[0].inner_threads, 1);
  EXPECT_EQ(forced.results[1].inner_threads, 2);

  // Mixed: the forced job is charged against the budget first, the policy
  // splits what remains — the free (big) job gets 5 - 1 = 4 cores.
  jobs[0].inner_threads = 1;
  jobs[1].inner_threads = 0;
  const BatchResult mixed = JobRunner(ropt).run({&ls.net, &lb.net}, jobs);
  EXPECT_EQ(mixed.results[0].inner_threads, 1);
  EXPECT_EQ(mixed.results[1].inner_threads, 4);
}

TEST(Engine, OuterAndInnerParallelismComposeBitIdentically) {
  // 2 outer workers × 2 inner threads vs fully sequential.
  Netlist a = make_ripple_adder(8);
  Netlist b = make_comparator(8);
  LoweredCircuit la = lower(a);
  LoweredCircuit lb = lower(b);
  const std::vector<const SizingNetwork*> networks = {&la.net, &lb.net};
  const std::vector<SizingJob> jobs = make_batch_jobs();

  JobRunnerOptions seq;
  seq.threads = 1;
  seq.inner_threads = 1;
  JobRunnerOptions par;
  par.threads = 2;
  par.inner_threads = 2;
  const BatchResult s = JobRunner(seq).run(networks, jobs);
  const BatchResult p = JobRunner(par).run(networks, jobs);
  ASSERT_EQ(s.results.size(), p.results.size());
  for (std::size_t i = 0; i < s.results.size(); ++i) {
    SCOPED_TRACE(jobs[i].label);
    ASSERT_TRUE(s.results[i].ok);
    ASSERT_TRUE(p.results[i].ok);
    expect_bit_identical(s.results[i].result, p.results[i].result);
  }
}

}  // namespace
}  // namespace mft
