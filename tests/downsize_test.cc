// Near-optimality probes (paper Theorem 3): a greedy local search started
// from MINFLOTRANSIT's output should reclaim almost nothing, while started
// from raw TILOS it reclaims plenty — independent evidence that the D/W
// alternation, not luck, removes the greedy oversizing.
#include <gtest/gtest.h>

#include "gen/blocks.h"
#include "sizing/downsize.h"
#include "sizing/minflotransit.h"
#include "timing/lowering.h"

namespace mft {
namespace {

TEST(Downsize, RejectsInfeasibleStart) {
  Netlist nl = make_c17();
  LoweredCircuit lc = lower_gate_level(nl, Tech{});
  const auto x = lc.net.min_sizes();
  const double cp = run_sta(lc.net, x).critical_path;
  EXPECT_THROW(greedy_downsize(lc.net, x, 0.5 * cp), CheckError);
}

TEST(Downsize, PreservesTimingAndNeverGrows) {
  Netlist nl = make_ripple_adder(4);
  LoweredCircuit lc = lower_gate_level(nl, Tech{});
  const double dmin = min_sized_delay(lc.net);
  const double target = 0.6 * dmin;
  const TilosResult tilos = run_tilos(lc.net, target);
  ASSERT_TRUE(tilos.met_target);
  const DownsizeResult d = greedy_downsize(lc.net, tilos.sizes, target);
  EXPECT_LE(d.area, tilos.area * (1 + 1e-12));
  EXPECT_LE(run_sta(lc.net, d.sizes).critical_path, target * (1 + 1e-9));
  for (NodeId v = 0; v < lc.net.num_vertices(); ++v) {
    if (!lc.net.is_source(v)) {
      EXPECT_LE(d.sizes[static_cast<std::size_t>(v)],
                tilos.sizes[static_cast<std::size_t>(v)] * (1 + 1e-12));
    }
  }
}

TEST(Downsize, MinflotransitLeavesLittleOnTheTable) {
  for (auto make : {+[] { return make_c17(); },
                    +[] { return make_ripple_adder(4); },
                    +[] { return make_comparator(4); }}) {
    Netlist nl = make();
    LoweredCircuit lc = lower_gate_level(nl, Tech{});
    const double dmin = min_sized_delay(lc.net);
    const double floor_d = run_tilos(lc.net, 0.05 * dmin).achieved_delay;
    const double target = floor_d + 0.3 * (dmin - floor_d);
    const MinflotransitResult r = run_minflotransit(lc.net, target);
    ASSERT_TRUE(r.met_target) << nl.name();

    const DownsizeResult polish = greedy_downsize(lc.net, r.sizes, target);
    // Local search reclaims < 5% after MINFLOTRANSIT...
    EXPECT_LE(r.area - polish.area, 0.05 * r.area) << nl.name();
    // ...and the MFT result beats (or ties) even a *polished* TILOS point,
    // because TILOS+local-search is still a local method.
    const DownsizeResult tilos_polished =
        greedy_downsize(lc.net, r.initial.sizes, target);
    EXPECT_LE(r.area, tilos_polished.area * 1.05) << nl.name();
  }
}

}  // namespace
}  // namespace mft
