// Supervision-layer tests (tier1): worker heartbeats + watchdog and the
// generic retry policy.
//
//  - Retry: transient statuses (worker death, internal faults) are
//    re-enqueued under the same ticket and seed, so a retried success is
//    bit-identical to a fault-free run; exhaustion surfaces the last
//    failure with the attempt count echoed; non-transient outcomes are
//    never retried; the backoff schedule is a deterministic pure function.
//  - Watchdog: a fault-driven true hang (stream.execute armed to spin) is
//    detected on the fake clock, the token fired, escalation produces a
//    structured kHung completion, the lost worker is replaced, and the
//    runner keeps serving bit-identical results. An armed-but-untripped
//    watchdog is a pure observer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "engine/stream.h"
#include "gen/blocks.h"
#include "timing/lowering.h"
#include "util/backoff.h"
#include "util/fault.h"

namespace mft {
namespace {

LoweredCircuit lower(const Netlist& nl) { return lower_gate_level(nl, Tech{}); }

class SuperviseTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::instance().disarm_all(); }
  void TearDown() override { FaultInjector::instance().disarm_all(); }
};

SizingJob c17_job(std::uint64_t seed) {
  SizingJob job;
  job.target_ratio = 0.8;
  job.seed = seed;  // fixed: results comparable across runners and tickets
  return job;
}

/// Clean single-job reference on a default runner.
JobResult reference_result(const LoweredCircuit& lc, const SizingJob& job) {
  StreamingRunner stream(JobRunnerOptions{});
  return stream.wait(stream.submit(lc.net, job));
}

// ---------------------------------------------------------------------------
// Backoff schedule
// ---------------------------------------------------------------------------

TEST(RetryBackoff, ScheduleIsADeterministicPureFunction) {
  RetryPolicy p;
  p.max_attempts = 5;
  p.backoff_base = 0.1;
  p.jitter_from_seed = false;
  // No jitter: exact exponential doubling, and nothing before attempt 2.
  EXPECT_EQ(retry_backoff_seconds(p, 42, 1), 0.0);
  EXPECT_EQ(retry_backoff_seconds(p, 42, 2), 0.1);
  EXPECT_EQ(retry_backoff_seconds(p, 42, 3), 0.2);
  EXPECT_EQ(retry_backoff_seconds(p, 42, 4), 0.4);

  p.jitter_from_seed = true;
  for (int attempt = 2; attempt <= 5; ++attempt) {
    const double b = retry_backoff_seconds(p, 42, attempt);
    const double nominal = 0.1 * static_cast<double>(1 << (attempt - 2));
    EXPECT_GE(b, 0.5 * nominal);
    EXPECT_LT(b, 1.5 * nominal);
    // Same (policy, seed, attempt) => same backoff, bit-exact.
    EXPECT_EQ(b, retry_backoff_seconds(p, 42, attempt));
  }
  // Distinct seeds decorrelate the jitter (not a hard law, but these two
  // seeds do differ — pinned so a broken mix that collapses the jitter to
  // a constant fails loudly).
  EXPECT_NE(retry_backoff_seconds(p, 1, 2), retry_backoff_seconds(p, 2, 2));

  // Disabled policy shapes.
  RetryPolicy off;
  EXPECT_EQ(retry_backoff_seconds(off, 7, 2), 0.0);
  EXPECT_FALSE(retryable_status(EngineStatus::kCanceled));
  EXPECT_FALSE(retryable_status(EngineStatus::kShed));
  EXPECT_FALSE(retryable_status(EngineStatus::kDeadlineExpired));
  EXPECT_FALSE(retryable_status(EngineStatus::kStepBudget));
  EXPECT_FALSE(retryable_status(EngineStatus::kHung));
  EXPECT_TRUE(retryable_status(EngineStatus::kWorkerDied));
  EXPECT_TRUE(retryable_status(EngineStatus::kInternal));
}

// ---------------------------------------------------------------------------
// Retry policy on the runner
// ---------------------------------------------------------------------------

TEST_F(SuperviseTest, TransientWorkerDeathIsRetriedToABitIdenticalSuccess) {
  LoweredCircuit lc = lower(make_c17());
  const SizingJob job = c17_job(12345);
  const JobResult ref = reference_result(lc, job);
  ASSERT_TRUE(ref.ok) << ref.error;

  FaultInjector::instance().arm("stream.worker", 1);
  JobRunnerOptions opt;
  opt.threads = 1;
  opt.retry.max_attempts = 2;
  StreamingRunner stream(opt);
  std::atomic<int> callbacks{0};
  const JobTicket t = stream.submit(
      lc.net, job, [&callbacks](const JobResult&) { ++callbacks; });
  const JobResult r = stream.wait(t);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.attempts, 2);
  EXPECT_EQ(callbacks.load(), 1);  // one completion, despite two attempts
  // Same ticket, same seed: the retried solve is the fault-free solve.
  EXPECT_EQ(r.seed, ref.seed);
  EXPECT_EQ(r.result.sizes, ref.result.sizes);
  EXPECT_EQ(r.result.area, ref.result.area);
  const StreamStats st = stream.stats();
  EXPECT_EQ(st.retries, 1u);
  EXPECT_EQ(st.completed, 1u);
}

TEST_F(SuperviseTest, HeartbeatFaultIsAWorkerDeathAndRetryable) {
  LoweredCircuit lc = lower(make_c17());
  const SizingJob job = c17_job(999);

  // Without retry: a structured kWorkerDied result, runner intact.
  FaultInjector::instance().arm("stream.heartbeat", 1);
  {
    JobRunnerOptions opt;
    opt.threads = 1;
    StreamingRunner stream(opt);
    const JobResult r = stream.wait(stream.submit(lc.net, job));
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.status, EngineStatus::kWorkerDied);
    EXPECT_EQ(r.attempts, 1);
    const JobResult next = stream.wait(stream.submit(lc.net, job));
    EXPECT_TRUE(next.ok) << next.error;
  }

  // With retry: absorbed.
  FaultInjector::instance().disarm_all();
  FaultInjector::instance().arm("stream.heartbeat", 1);
  {
    JobRunnerOptions opt;
    opt.threads = 1;
    opt.retry.max_attempts = 2;
    StreamingRunner stream(opt);
    const JobResult r = stream.wait(stream.submit(lc.net, job));
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.attempts, 2);
  }
}

TEST_F(SuperviseTest, RetryExhaustionSurfacesTheLastFailure) {
  LoweredCircuit lc = lower(make_c17());
  FaultInjector::instance().arm("stream.execute", 1, 5);  // every attempt
  JobRunnerOptions opt;
  opt.threads = 1;
  opt.retry.max_attempts = 3;
  opt.retry.backoff_base = 1e-4;  // exercise the backoff sleep, invisibly
  StreamingRunner stream(opt);
  const JobResult r = stream.wait(stream.submit(lc.net, c17_job(7)));
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.status, EngineStatus::kInternal);
  EXPECT_EQ(r.attempts, 3);
  EXPECT_GT(r.backoff_seconds, 0.0);
  EXPECT_EQ(stream.stats().retries, 2u);
}

TEST_F(SuperviseTest, NonTransientOutcomesAreNeverRetried) {
  LoweredCircuit lc = lower(make_c17());
  JobRunnerOptions opt;
  opt.threads = 1;
  opt.retry.max_attempts = 3;
  StreamingRunner stream(opt);
  // A one-step budget trips before any feasible iterate: a final,
  // by-design failure the retry policy must leave alone.
  SizingJob job = c17_job(11);
  job.target_ratio = 0.5;
  job.max_steps = 1;
  const JobResult r = stream.wait(stream.submit(lc.net, job));
  EXPECT_EQ(r.status, EngineStatus::kStepBudget);
  EXPECT_EQ(r.attempts, 1);
  EXPECT_EQ(stream.stats().retries, 0u);
}

// ---------------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------------

TEST_F(SuperviseTest, WatchdogEscalatesATrueHangAndRespawnsTheWorker) {
  LoweredCircuit lc = lower(make_c17());
  const SizingJob job = c17_job(2024);
  const JobResult ref = reference_result(lc, job);
  ASSERT_TRUE(ref.ok) << ref.error;

  auto fake = std::make_shared<std::atomic<double>>(0.0);
  JobRunnerOptions opt;
  opt.threads = 1;
  opt.clock = [fake] { return fake->load(); };
  opt.hang_timeout = 10.0;
  opt.hang_grace = 5.0;
  StreamingRunner stream(opt);

  // The job spins inside the fault point — a worker stuck mid-body that
  // never reaches a checkpoint, the exact shape the watchdog exists for.
  FaultInjector::instance().arm_hang("stream.execute", 1);
  const JobTicket t = stream.submit(lc.net, job);
  while (FaultInjector::instance().hits("stream.execute") < 1)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  // Stage 1 — advance the fake clock until the watchdog declares the
  // heartbeat stalled and fires the job's AbortToken. (Monotone advances
  // converge no matter when the watchdog first observed the stall.)
  while (stream.stats().hang_cancels < 1) {
    fake->store(fake->load() + 20.0);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // Stage 2 — the hung job ignores the token; advancing past the grace
  // escalates to a structured kHung completion.
  while (stream.stats().hangs < 1) {
    fake->store(fake->load() + 20.0);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const JobResult r = stream.wait(t);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.status, EngineStatus::kHung);
  EXPECT_NE(r.error.find("hung"), std::string::npos) << r.error;
  EXPECT_EQ(r.seed, job.seed);

  StreamStats st = stream.stats();
  EXPECT_EQ(st.hang_cancels, 1u);
  EXPECT_EQ(st.hangs, 1u);
  EXPECT_EQ(st.respawns, 1u);
  EXPECT_GE(st.heartbeat_age_peak, opt.hang_timeout);

  // Capacity held: the replacement worker serves new submissions — with
  // the lost worker still stuck — and bit-identically to the reference.
  const JobResult again = stream.wait(stream.submit(lc.net, job));
  ASSERT_TRUE(again.ok) << again.error;
  EXPECT_EQ(again.result.sizes, ref.result.sizes);
  EXPECT_EQ(again.result.area, ref.result.area);
  EXPECT_EQ(again.result.delay, ref.result.delay);

  // Release the stuck worker so shutdown can join it; its long-dead
  // ticket was already delivered as kHung, so its late result is dropped.
  FaultInjector::instance().disarm("stream.execute");
  stream.shutdown();
  EXPECT_EQ(stream.stats().completed, 2u);
}

TEST_F(SuperviseTest, ArmedButUntrippedWatchdogIsAPureObserver) {
  LoweredCircuit lc = lower(make_c17());
  JobRunnerOptions opt;
  opt.threads = 2;
  opt.hang_timeout = 1e6;  // armed, far beyond any real solve
  opt.retry.max_attempts = 2;
  StreamingRunner stream(opt);
  std::vector<JobTicket> tickets;
  for (int i = 0; i < 4; ++i)
    tickets.push_back(stream.submit(lc.net, c17_job(100 + i)));
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    const JobResult r = stream.wait(tickets[i]);
    const JobResult ref = reference_result(lc, c17_job(100 + i));
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.attempts, 1);
    EXPECT_EQ(r.result.sizes, ref.result.sizes);
    EXPECT_EQ(r.result.area, ref.result.area);
  }
  const StreamStats st = stream.stats();
  EXPECT_EQ(st.hangs, 0u);
  EXPECT_EQ(st.hang_cancels, 0u);
  EXPECT_EQ(st.respawns, 0u);
  EXPECT_EQ(st.retries, 0u);
}

}  // namespace
}  // namespace mft
