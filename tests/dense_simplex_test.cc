// Unit tests for the dense simplex oracle itself.
#include <gtest/gtest.h>

#include "lp/dense_simplex.h"

namespace mft {
namespace {

TEST(DenseLp, SolvesTextbookTwoVarProblem) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0.
  DenseLp lp(2);
  lp.set_objective(0, 3.0);
  lp.set_objective(1, 5.0);
  lp.add_row({1, 0}, 4);
  lp.add_row({0, 2}, 12);
  lp.add_row({3, 2}, 18);
  lp.add_row({-1, 0}, 0);
  lp.add_row({0, -1}, 0);
  auto sol = lp.solve();
  ASSERT_TRUE(sol.has_value());
  EXPECT_NEAR(sol->objective, 36.0, 1e-7);
  EXPECT_NEAR(sol->x[0], 2.0, 1e-7);
  EXPECT_NEAR(sol->x[1], 6.0, 1e-7);
}

TEST(DenseLp, HandlesFreeVariablesGoingNegative) {
  // max -x s.t. x >= -5  ->  x = -5.
  DenseLp lp(1);
  lp.set_objective(0, -1.0);
  lp.add_row({-1.0}, 5.0);  // -x <= 5
  lp.add_row({1.0}, 100.0);
  auto sol = lp.solve();
  ASSERT_TRUE(sol.has_value());
  EXPECT_NEAR(sol->x[0], -5.0, 1e-7);
}

TEST(DenseLp, DetectsUnbounded) {
  DenseLp lp(1);
  lp.set_objective(0, 1.0);
  lp.add_row({-1.0}, 0.0);  // only a lower bound
  EXPECT_FALSE(lp.solve().has_value());
}

TEST(DenseLp, DetectsInfeasible) {
  DenseLp lp(1);
  lp.set_objective(0, 1.0);
  lp.add_row({1.0}, 1.0);    // x <= 1
  lp.add_row({-1.0}, -2.0);  // x >= 2
  EXPECT_FALSE(lp.solve().has_value());
}

TEST(DenseLp, EqualityViaBoundsPinsVariable) {
  DenseLp lp(2);
  lp.set_objective(1, 1.0);
  lp.add_bounds(0, 3.0, 3.0);
  lp.add_row({-1, 1}, 2.0);  // y - x <= 2
  lp.add_bounds(1, -100.0, 100.0);
  auto sol = lp.solve();
  ASSERT_TRUE(sol.has_value());
  EXPECT_NEAR(sol->x[0], 3.0, 1e-7);
  EXPECT_NEAR(sol->x[1], 5.0, 1e-7);
}

TEST(DenseLp, DegenerateConstraintsStillTerminate) {
  // Several redundant rows through the same vertex (classic cycling bait —
  // Bland's rule must cope).
  DenseLp lp(2);
  lp.set_objective(0, 1.0);
  lp.set_objective(1, 1.0);
  for (int k = 1; k <= 4; ++k)
    lp.add_row({static_cast<double>(k), static_cast<double>(k)}, 2.0 * k);
  lp.add_row({-1, 0}, 0);
  lp.add_row({0, -1}, 0);
  auto sol = lp.solve();
  ASSERT_TRUE(sol.has_value());
  EXPECT_NEAR(sol->objective, 2.0, 1e-7);
}

}  // namespace
}  // namespace mft
