// Tests for the reusable solver workspaces: solver results must be
// identical with and without a workspace, repeated D-phase calls on one
// topology must not reconstruct the flow problem (the acceptance counter),
// and the incremental STA must agree bit-for-bit with the full recompute.
#include <gtest/gtest.h>

#include "gen/blocks.h"
#include "mcf/network_simplex.h"
#include "mcf/ssp.h"
#include "sizing/dphase.h"
#include "sizing/tilos.h"
#include "timing/lowering.h"
#include "util/rng.h"

namespace mft {
namespace {

McfProblem random_problem(std::uint64_t seed) {
  Rng rng(seed);
  const int n = rng.uniform_int(2, 30);
  McfProblem p(n);
  const int m = rng.uniform_int(n, 4 * n);
  for (int i = 0; i < m; ++i) {
    const NodeId t = static_cast<NodeId>(rng.index(static_cast<std::size_t>(n)));
    NodeId h = static_cast<NodeId>(rng.index(static_cast<std::size_t>(n)));
    if (h == t) h = (h + 1) % n;
    const Flow cap = rng.flip(0.3) ? kInfFlow : rng.uniform_int(0, 40);
    const Cost cost = rng.uniform_int(cap == kInfFlow ? 0 : -20, 60);
    p.add_arc(t, h, cap, cost);
  }
  // Feasible by construction: supplies are the imbalance of a random
  // sub-capacity flow.
  for (ArcId a = 0; a < p.num_arcs(); ++a) {
    const McfArc& arc = p.arc(a);
    if (arc.capacity == 0) continue;
    const Flow f = arc.capacity == kInfFlow
                       ? rng.uniform_int(0, 15)
                       : rng.uniform_int(0, static_cast<int>(arc.capacity));
    p.add_supply(arc.tail, f);
    p.add_supply(arc.head, -f);
  }
  return p;
}

TEST(McfWorkspace, ReusedWorkspaceMatchesFreshSolves) {
  McfWorkspace ws;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const McfProblem p = random_problem(seed);
    const McfSolution fresh = solve_network_simplex(p);
    const McfSolution reused = solve_network_simplex(p, {}, &ws);
    ASSERT_EQ(fresh.status, reused.status) << "seed " << seed;
    if (fresh.status != McfStatus::kOptimal) continue;
    EXPECT_EQ(fresh.total_cost, reused.total_cost) << "seed " << seed;
    std::string why;
    EXPECT_TRUE(check_flow_optimal(p, reused, &why)) << "seed " << seed
                                                     << ": " << why;
    EXPECT_GT(ws.ns_pivots, 0) << "seed " << seed;
  }
}

TEST(McfWorkspace, SspWorkspaceMatchesFreshSolves) {
  McfWorkspace ws;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const McfProblem p = random_problem(seed ^ 0xBEEF);
    const McfSolution fresh = solve_ssp(p);
    const McfSolution reused = solve_ssp(p, ws);
    ASSERT_EQ(fresh.status, reused.status) << "seed " << seed;
    if (fresh.status != McfStatus::kOptimal) continue;
    EXPECT_EQ(fresh.total_cost, reused.total_cost) << "seed " << seed;
    std::string why;
    EXPECT_TRUE(check_flow_optimal(p, reused, &why)) << "seed " << seed
                                                     << ": " << why;
  }
}

TEST(McfWorkspace, PivotStatsReported) {
  McfWorkspace ws;
  McfProblem p(2);
  p.add_arc(0, 1, 10, 3);
  p.set_supply(0, 7);
  p.set_supply(1, -7);
  ASSERT_EQ(solve_network_simplex(p, {}, &ws).status, McfStatus::kOptimal);
  EXPECT_GT(ws.ns_pivots, 0);
  ASSERT_EQ(solve_ssp(p, ws).status, McfStatus::kOptimal);
  EXPECT_EQ(ws.ssp_augmentations, 1);
}

TEST(NetworkSimplexPricing, BothRulesAgree) {
  for (std::uint64_t seed = 100; seed < 130; ++seed) {
    const McfProblem p = random_problem(seed);
    NetworkSimplexOptions block;
    block.pricing = NetworkSimplexOptions::Pricing::kBlockSearch;
    NetworkSimplexOptions cand;
    cand.pricing = NetworkSimplexOptions::Pricing::kCandidateList;
    const McfSolution a = solve_network_simplex(p, block);
    const McfSolution b = solve_network_simplex(p, cand);
    ASSERT_EQ(a.status, b.status) << "seed " << seed;
    if (a.status == McfStatus::kOptimal) {
      EXPECT_EQ(a.total_cost, b.total_cost) << "seed " << seed;
    }
  }
}

class DPhaseWorkspaceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RandomLogicParams prm;
    prm.num_inputs = 10;
    prm.num_gates = 120;
    prm.seed = 7;
    lc_ = lower_gate_level(make_random_logic(prm), Tech{});
    const double dmin = min_sized_delay(lc_.net);
    tilos_ = run_tilos(lc_.net, 0.75 * dmin);
    ASSERT_TRUE(tilos_.met_target);
  }
  LoweredCircuit lc_{Tech{}};
  TilosResult tilos_;
};

TEST_F(DPhaseWorkspaceTest, RepeatedCallsBuildTheProblemOnce) {
  DPhaseWorkspace ws;
  Rng rng(99);
  std::vector<double> sizes = tilos_.sizes;
  for (int iter = 0; iter < 8; ++iter) {
    const DPhaseResult with_ws = run_dphase(lc_.net, sizes, {}, &ws);
    const DPhaseResult fresh = run_dphase(lc_.net, sizes);
    ASSERT_TRUE(with_ws.solved);
    ASSERT_TRUE(fresh.solved);
    EXPECT_EQ(with_ws.num_constraints, fresh.num_constraints);
    EXPECT_NEAR(with_ws.objective, fresh.objective, 1e-9);
    ASSERT_EQ(with_ws.budget.size(), fresh.budget.size());
    for (std::size_t v = 0; v < fresh.budget.size(); ++v)
      EXPECT_NEAR(with_ws.budget[v], fresh.budget[v], 1e-12) << "vertex " << v;
    // Perturb some sizes so the next iteration solves a different LP on
    // the same structure.
    for (int k = 0; k < 10; ++k) {
      const NodeId v = static_cast<NodeId>(
          rng.index(static_cast<std::size_t>(lc_.net.num_vertices())));
      if (!lc_.net.is_source(v))
        sizes[static_cast<std::size_t>(v)] *= rng.uniform(1.0, 1.2);
    }
  }
  // The acceptance counter: one construction, then pure reuse.
  EXPECT_EQ(ws.problem_builds(), 1);
  EXPECT_EQ(ws.timing.full_runs, 1);
  EXPECT_EQ(ws.timing.incremental_runs, 7);
}

TEST_F(DPhaseWorkspaceTest, TopologyChangeTriggersRebuild) {
  DPhaseWorkspace ws;
  ASSERT_TRUE(run_dphase(lc_.net, tilos_.sizes, {}, &ws).solved);
  EXPECT_EQ(ws.problem_builds(), 1);

  RandomLogicParams prm;
  prm.num_inputs = 8;
  prm.num_gates = 60;
  prm.seed = 8;
  LoweredCircuit other = lower_gate_level(make_random_logic(prm), Tech{});
  const TilosResult t2 = run_tilos(other.net, 0.8 * min_sized_delay(other.net));
  ASSERT_TRUE(t2.met_target);
  ASSERT_TRUE(run_dphase(other.net, t2.sizes, {}, &ws).solved);
  EXPECT_EQ(ws.problem_builds(), 1);  // reset + one rebuild for the new net
}

TEST(IncrementalSta, MatchesFullRecomputeUnderRandomUpdates) {
  RandomLogicParams prm;
  prm.num_inputs = 12;
  prm.num_gates = 150;
  prm.seed = 21;
  LoweredCircuit lc = lower_gate_level(make_random_logic(prm), Tech{});
  Rng rng(5);
  std::vector<double> sizes = lc.net.min_sizes();

  TimingScratch scratch;
  for (int iter = 0; iter < 20; ++iter) {
    const TimingReport& inc = run_sta(lc.net, sizes, scratch);
    const TimingReport full = run_sta(lc.net, sizes);
    ASSERT_EQ(inc.cp_vertex, full.cp_vertex) << "iter " << iter;
    EXPECT_EQ(inc.critical_path, full.critical_path) << "iter " << iter;
    for (NodeId v = 0; v < lc.net.num_vertices(); ++v) {
      const std::size_t i = static_cast<std::size_t>(v);
      EXPECT_EQ(inc.delay[i], full.delay[i]) << "iter " << iter << " v " << v;
      EXPECT_EQ(inc.at[i], full.at[i]) << "iter " << iter << " v " << v;
      EXPECT_EQ(inc.rt[i], full.rt[i]) << "iter " << iter << " v " << v;
    }
    EXPECT_EQ(inc.critical_vertices(lc.net), full.critical_vertices(lc.net));
    // Random sparse update for the next round (sometimes none at all).
    const int moves = rng.uniform_int(0, 6);
    for (int k = 0; k < moves; ++k) {
      const NodeId v = static_cast<NodeId>(
          rng.index(static_cast<std::size_t>(lc.net.num_vertices())));
      if (!lc.net.is_source(v))
        sizes[static_cast<std::size_t>(v)] *= rng.uniform(1.0, 1.5);
    }
  }
  EXPECT_EQ(scratch.full_runs, 1);
  EXPECT_EQ(scratch.incremental_runs, 19);
  // The dirty-set path must actually be sparse: far fewer delay recomputes
  // than 20 full sweeps would need.
  EXPECT_LT(scratch.delays_recomputed,
            20 * static_cast<std::int64_t>(lc.net.num_vertices()));
}

TEST(IncrementalSta, ScratchReusedAcrossNetworksFallsBackToFullRecompute) {
  // Two different networks (regardless of matching vertex counts) must not
  // mix delays: the scratch keys on SizingNetwork::serial().
  RandomLogicParams prm;
  prm.num_inputs = 10;
  prm.num_gates = 80;
  prm.seed = 41;
  LoweredCircuit a = lower_gate_level(make_random_logic(prm), Tech{});
  prm.seed = 42;
  LoweredCircuit b = lower_gate_level(make_random_logic(prm), Tech{});

  TimingScratch scratch;
  run_sta(a.net, a.net.min_sizes(), scratch);
  const TimingReport& inc = run_sta(b.net, b.net.min_sizes(), scratch);
  const TimingReport full = run_sta(b.net, b.net.min_sizes());
  EXPECT_EQ(scratch.full_runs, 2);
  EXPECT_EQ(scratch.incremental_runs, 0);
  ASSERT_EQ(inc.delay.size(), full.delay.size());
  for (std::size_t v = 0; v < full.delay.size(); ++v)
    EXPECT_EQ(inc.delay[v], full.delay[v]) << "vertex " << v;
  EXPECT_EQ(inc.critical_path, full.critical_path);
}

TEST(IncrementalSta, CriticalPathWalkIsDeterministicAndExact) {
  RandomLogicParams prm;
  prm.num_inputs = 9;
  prm.num_gates = 90;
  prm.seed = 31;
  LoweredCircuit lc = lower_gate_level(make_random_logic(prm), Tech{});
  const TimingReport t = run_sta(lc.net, lc.net.min_sizes());
  ASSERT_NE(t.cp_vertex, kInvalidNode);
  const std::vector<NodeId> path = t.critical_vertices(lc.net);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.back(), t.cp_vertex);
  double sum = 0.0;
  for (NodeId v : path) sum += t.delay[static_cast<std::size_t>(v)];
  EXPECT_NEAR(sum, t.critical_path, 1e-12);
  // Walking twice gives the identical path.
  EXPECT_EQ(path, t.critical_vertices(lc.net));
}

}  // namespace
}  // namespace mft
