// Tests for the netlist IR, cell definitions, tech mapping and .bench I/O.
#include <gtest/gtest.h>

#include "netlist/bench_io.h"
#include "netlist/netlist.h"
#include "netlist/stats.h"
#include "util/rng.h"
#include "util/status.h"

namespace mft {
namespace {

Netlist two_nand_chain() {
  Netlist nl("chain");
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId g1 = nl.add_gate(GateKind::kNand, "g1", {a, b});
  const GateId g2 = nl.add_gate(GateKind::kNand, "g2", {g1, b});
  nl.mark_output(g2);
  return nl;
}

TEST(Netlist, BasicTopology) {
  Netlist nl = two_nand_chain();
  EXPECT_EQ(nl.num_gates(), 4);
  EXPECT_EQ(nl.num_logic_gates(), 2);
  EXPECT_EQ(nl.num_inputs(), 2);
  EXPECT_EQ(nl.num_outputs(), 1);
  EXPECT_EQ(nl.depth(), 2);
  const GateId b = nl.find("b");
  ASSERT_NE(b, kInvalidGate);
  EXPECT_EQ(nl.fanouts(b).size(), 2u);  // drives g1 and g2
  std::string why;
  EXPECT_TRUE(nl.validate(&why)) << why;
}

TEST(Netlist, RejectsBadConstruction) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  EXPECT_THROW(nl.add_input("a"), CheckError);            // duplicate
  EXPECT_THROW(nl.add_gate(GateKind::kNot, "n", {a, a}), CheckError);  // arity
  EXPECT_THROW(nl.add_gate(GateKind::kNand, "m", {99}), CheckError);   // bad id
}

TEST(Netlist, ValidateFlagsDanglingGate) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  nl.add_gate(GateKind::kNot, "n", {a});  // never marked output, no fanout
  std::string why;
  EXPECT_FALSE(nl.validate(&why));
  EXPECT_NE(why.find("dangles"), std::string::npos);
}

TEST(Netlist, EvaluateNandChain) {
  Netlist nl = two_nand_chain();
  // g1 = !(a&b); g2 = !(g1&b)
  EXPECT_EQ(nl.evaluate({false, false}), (std::vector<bool>{true}));
  EXPECT_EQ(nl.evaluate({true, true}), (std::vector<bool>{true}));
  EXPECT_EQ(nl.evaluate({false, true}), (std::vector<bool>{false}));
}

TEST(Netlist, EvaluateAllKinds) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId c = nl.add_input("c");
  const GateId aoi = nl.add_gate(GateKind::kAoi21, "aoi", {a, b, c});
  const GateId oai = nl.add_gate(GateKind::kOai21, "oai", {a, b, c});
  const GateId x3 = nl.add_gate(GateKind::kXor, "x3", {a, b, c});
  nl.mark_output(aoi);
  nl.mark_output(oai);
  nl.mark_output(x3);
  for (int m = 0; m < 8; ++m) {
    const bool va = m & 1, vb = m & 2, vc = m & 4;
    auto out = nl.evaluate({va, vb, vc});
    EXPECT_EQ(out[0], !((va && vb) || vc)) << m;
    EXPECT_EQ(out[1], !((va || vb) && vc)) << m;
    EXPECT_EQ(out[2], (va != vb) != vc) << m;
  }
}

TEST(Cell, KindStringsRoundTrip) {
  for (GateKind k :
       {GateKind::kBuf, GateKind::kNot, GateKind::kAnd, GateKind::kNand,
        GateKind::kOr, GateKind::kNor, GateKind::kXor, GateKind::kXnor,
        GateKind::kAoi21, GateKind::kOai21})
    EXPECT_EQ(gate_kind_from_string(to_string(k)), k);
  EXPECT_THROW(gate_kind_from_string("FLIPFLOP"), CheckError);
}

TEST(Cell, PulldownTopologies) {
  EXPECT_EQ(pulldown_topology(GateKind::kNand, 3).to_string(), "(p0.p1.p2)");
  EXPECT_EQ(pulldown_topology(GateKind::kNor, 2).to_string(), "(p0+p1)");
  EXPECT_EQ(pulldown_topology(GateKind::kAoi21, 3).to_string(), "((p0.p1)+p2)");
  EXPECT_EQ(pulldown_topology(GateKind::kNot, 1).to_string(), "p0");
  EXPECT_THROW(pulldown_topology(GateKind::kXor, 2), CheckError);
}

TEST(TechMap, PreservesFunctionOnRandomVectors) {
  // Build a composite-rich netlist and check the primitive version computes
  // the same outputs on random input vectors.
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId c = nl.add_input("c");
  const GateId d = nl.add_input("d");
  const GateId x = nl.add_gate(GateKind::kXor, "x", {a, b, c});
  const GateId o = nl.add_gate(GateKind::kOr, "o", {x, d});
  const GateId n = nl.add_gate(GateKind::kXnor, "n", {o, a});
  const GateId f = nl.add_gate(GateKind::kBuf, "f", {n});
  const GateId g = nl.add_gate(GateKind::kAnd, "g", {f, c, d});
  nl.mark_output(g);
  nl.mark_output(x);

  Netlist prim = tech_map_to_primitives(nl);
  EXPECT_TRUE(prim.is_primitive_only());
  EXPECT_FALSE(nl.is_primitive_only());
  std::string why;
  EXPECT_TRUE(prim.validate(&why)) << why;
  ASSERT_EQ(prim.num_inputs(), nl.num_inputs());
  ASSERT_EQ(prim.num_outputs(), nl.num_outputs());
  for (int m = 0; m < 16; ++m) {
    const std::vector<bool> in{static_cast<bool>(m & 1),
                               static_cast<bool>(m & 2),
                               static_cast<bool>(m & 4),
                               static_cast<bool>(m & 8)};
    EXPECT_EQ(nl.evaluate(in), prim.evaluate(in)) << "vector " << m;
  }
}

TEST(BenchIo, ParsesC17Text) {
  const std::string text = R"(# c17
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
)";
  Netlist nl = read_bench_string(text, "c17");
  EXPECT_EQ(nl.num_inputs(), 5);
  EXPECT_EQ(nl.num_outputs(), 2);
  EXPECT_EQ(nl.num_logic_gates(), 6);
  EXPECT_EQ(nl.depth(), 3);
  std::string why;
  EXPECT_TRUE(nl.validate(&why)) << why;
}

TEST(BenchIo, HandlesForwardReferences) {
  // Gates defined out of order must still resolve.
  const std::string text = R"(
INPUT(a)
OUTPUT(z)
z = NOT(y)
y = NAND(a, a2)
a2 = NOT(a)
)";
  Netlist nl = read_bench_string(text);
  EXPECT_EQ(nl.num_logic_gates(), 3);
  EXPECT_EQ(nl.find("z") != kInvalidGate, true);
}

TEST(BenchIo, RejectsUndefinedSignals) {
  EXPECT_THROW(read_bench_string("INPUT(a)\nz = NAND(a, ghost)\nOUTPUT(z)\n"),
               EngineError);
}

TEST(BenchIo, RejectsMalformedLines) {
  EXPECT_THROW(read_bench_string("z NAND(a, b)\n"), EngineError);
  EXPECT_THROW(read_bench_string("INPUT a\n"), EngineError);
}

TEST(BenchIo, ParseErrorsAreStructuredWithLineNumbers) {
  // Malformed input must surface as EngineError(kInvalidInput) carrying
  // the offending line number — never as an invariant CheckError.
  try {
    read_bench_string("INPUT(a)\nz = FLIPFLOP(a)\nOUTPUT(z)\n");
    FAIL() << "unknown gate type accepted";
  } catch (const EngineError& e) {
    EXPECT_EQ(e.status(), EngineStatus::kInvalidInput);
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("FLIPFLOP"), std::string::npos);
  }
  try {
    read_bench_string("INPUT(a)\nINPUT(a)\n");
    FAIL() << "duplicate input accepted";
  } catch (const EngineError& e) {
    EXPECT_EQ(e.status(), EngineStatus::kInvalidInput);
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  try {
    read_bench_file("/nonexistent/no-such-file.bench");
    FAIL() << "missing file accepted";
  } catch (const EngineError& e) {
    EXPECT_EQ(e.status(), EngineStatus::kInvalidInput);
  }
}

TEST(BenchIo, RoundTripPreservesStructureAndFunction) {
  Rng rng(55);
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId g1 = nl.add_gate(GateKind::kXor, "g1", {a, b});
  const GateId g2 = nl.add_gate(GateKind::kAoi21, "g2", {a, b, g1});
  nl.mark_output(g2);
  Netlist back = read_bench_string(write_bench_string(nl), "rt");
  EXPECT_EQ(back.num_logic_gates(), nl.num_logic_gates());
  for (int m = 0; m < 4; ++m) {
    const std::vector<bool> in{static_cast<bool>(m & 1),
                               static_cast<bool>(m & 2)};
    EXPECT_EQ(nl.evaluate(in), back.evaluate(in));
  }
}

TEST(Stats, CountsAreConsistent) {
  Netlist nl = two_nand_chain();
  const NetlistStats s = compute_stats(nl);
  EXPECT_EQ(s.num_logic_gates, 2);
  EXPECT_EQ(s.depth, 2);
  EXPECT_DOUBLE_EQ(s.avg_fanin, 2.0);
  EXPECT_EQ(s.kind_histogram.at(GateKind::kNand), 2);
  EXPECT_EQ(s.max_fanout, 2);
}

}  // namespace
}  // namespace mft
