// Tests for the frozen SweepPlan layout (timing/sizing_network.h) and the
// level-contiguous streaming kernels built on it:
//  - structural validity: the sweep permutation is topological and level-
//    contiguous, the CSR tables mirror the AoS construction data
//    (SizingVertex::loads, reverse_loads(), the timing DAG) term for term,
//  - bit-identity: the streaming STA / W-phase kernels reproduce direct
//    array-of-structs reference implementations EXACTLY (operator== on
//    doubles) across all three lowerings on randomized size vectors — the
//    layout refactor is a memory-order change, not a numerical one,
//  - fast-math: the explicitly gated reassociated folds stay within the
//    tolerance documented on SweepPlan::delay_at_fast (1e-12 relative per
//    delay, 1e-9 on accumulated path quantities).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "gen/blocks.h"
#include "sizing/wphase.h"
#include "timing/lowering.h"
#include "timing/sta.h"
#include "util/rng.h"

namespace mft {
namespace {

/// The three lowerings of one shared circuit, by ablation-arm index.
SizingNetwork make_net(int lowering) {
  const Netlist nl = make_ripple_adder(24);
  if (lowering == 2) return std::move(lower_transistor_level(nl, Tech{}).net);
  GateLoweringOptions opt;
  opt.size_wires = lowering == 1;
  return std::move(lower_gate_level(nl, Tech{}, opt).net);
}

std::vector<double> random_sizes(const SizingNetwork& net, Rng& rng) {
  std::vector<double> x = net.min_sizes();
  for (NodeId v = 0; v < net.num_vertices(); ++v)
    if (!net.is_source(v))
      x[static_cast<std::size_t>(v)] *= rng.uniform(1.0, 8.0);
  return x;
}

// ---------------------------------------------------------------------------
// Array-of-structs reference kernels: the pre-SweepPlan walks (per-vertex
// heap load vectors, id-indexed values, Digraph adjacency, topological
// order). Everything the streaming kernels compute must match these
// bit for bit.
// ---------------------------------------------------------------------------

double aos_delay(const SizingNetwork& net, NodeId v,
                 const std::vector<double>& sizes) {
  const SizingVertex& sv = net.vertex(v);
  if (sv.kind == VertexKind::kSource) return 0.0;
  double load = sv.b;
  for (const LoadTerm& t : sv.loads)
    load += t.coeff * sizes[static_cast<std::size_t>(t.vertex)];
  return sv.a_self + load / sizes[static_cast<std::size_t>(v)];
}

TimingReport aos_run_sta(const SizingNetwork& net,
                         const std::vector<double>& sizes) {
  const std::size_t n = static_cast<std::size_t>(net.num_vertices());
  const Digraph& g = net.dag();
  TimingReport r;
  r.delay.resize(n);
  r.at.assign(n, 0.0);
  r.rt.assign(n, std::numeric_limits<double>::infinity());
  r.slack.resize(n);
  for (NodeId v = 0; v < net.num_vertices(); ++v)
    r.delay[static_cast<std::size_t>(v)] = aos_delay(net, v, sizes);
  r.critical_path = 0.0;
  r.cp_vertex = kInvalidNode;
  for (NodeId v : net.topological_order()) {
    double at = 0.0;
    for (ArcId a : g.in_arcs(v)) {
      const NodeId j = g.tail(a);
      at = std::max(at, r.at[static_cast<std::size_t>(j)] +
                            r.delay[static_cast<std::size_t>(j)]);
    }
    r.at[static_cast<std::size_t>(v)] = at;
    const double end = at + r.delay[static_cast<std::size_t>(v)];
    if (r.cp_vertex == kInvalidNode || end > r.critical_path) {
      r.critical_path = end;
      r.cp_vertex = v;
    }
  }
  const auto& topo = net.topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId v = *it;
    double rt = std::numeric_limits<double>::infinity();
    if (net.vertex(v).is_po || g.out_degree(v) == 0)
      rt = r.critical_path - r.delay[static_cast<std::size_t>(v)];
    for (ArcId a : g.out_arcs(v)) {
      const NodeId j = g.head(a);
      rt = std::min(rt, r.rt[static_cast<std::size_t>(j)] -
                            r.delay[static_cast<std::size_t>(v)]);
    }
    r.rt[static_cast<std::size_t>(v)] = rt;
    r.slack[static_cast<std::size_t>(v)] =
        rt - r.at[static_cast<std::size_t>(v)];
  }
  return r;
}

WPhaseResult aos_wphase(const SizingNetwork& net,
                        const std::vector<double>& budget) {
  const Tech& tech = net.tech();
  WPhaseResult res;
  res.sizes = net.min_sizes();
  const auto start = res.sizes;
  const auto& topo = net.topological_order();
  const int max_sweeps = std::max(4, net.num_vertices());
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    ++res.sweeps;
    double max_rel_change = 0.0;
    char infeasible = 0;
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      const NodeId v = *it;
      const SizingVertex& sv = net.vertex(v);
      if (sv.kind == VertexKind::kSource) continue;
      const double d = budget[static_cast<std::size_t>(v)];
      if (d <= sv.a_self) {
        infeasible = 1;
        res.sizes[static_cast<std::size_t>(v)] = tech.max_size;
        continue;
      }
      double load = sv.b;
      for (const LoadTerm& t : sv.loads)
        load += t.coeff * res.sizes[static_cast<std::size_t>(t.vertex)];
      double x = load / (d - sv.a_self);
      if (x > tech.max_size) {
        infeasible = 1;
        x = tech.max_size;
      }
      x = std::max(x, tech.min_size);
      const double old = res.sizes[static_cast<std::size_t>(v)];
      max_rel_change = std::max(max_rel_change, std::abs(x - old) / old);
      res.sizes[static_cast<std::size_t>(v)] = x;
    }
    if (infeasible) res.feasible = false;
    if (max_rel_change < 1e-12) break;
  }
  for (NodeId v = 0; v < net.num_vertices(); ++v)
    if (res.sizes[static_cast<std::size_t>(v)] !=
        start[static_cast<std::size_t>(v)])
      res.changed.push_back(v);
  return res;
}

TEST(SweepPlan, StructureMirrorsConstructionData) {
  for (int lowering = 0; lowering < 3; ++lowering) {
    SCOPED_TRACE("lowering " + std::to_string(lowering));
    const SizingNetwork net = make_net(lowering);
    const SweepPlan& pl = net.plan();
    const int n = net.num_vertices();
    ASSERT_EQ(pl.n, n);

    // vid is exactly the level order, pos_of its inverse.
    ASSERT_EQ(pl.vid, net.level_order());
    for (int p = 0; p < n; ++p) {
      EXPECT_EQ(pl.pos_of[static_cast<std::size_t>(
                    pl.vid[static_cast<std::size_t>(p)])],
                p);
      EXPECT_EQ(pl.topo_pos[static_cast<std::size_t>(p)],
                net.topo_position()[static_cast<std::size_t>(
                    pl.vid[static_cast<std::size_t>(p)])]);
    }

    // The permutation is topological: every timing arc and every load
    // dependency crosses strictly forward in position space. (Loads point
    // at fanout vertices — strictly HIGHER positions — which is what lets
    // the W-phase relax in reverse position order.)
    const Digraph& g = net.dag();
    for (ArcId a = 0; a < g.num_arcs(); ++a)
      EXPECT_LT(pl.pos_of[static_cast<std::size_t>(g.tail(a))],
                pl.pos_of[static_cast<std::size_t>(g.head(a))]);

    // Levels are contiguous position runs.
    const auto& off = net.level_offsets();
    for (int l = 0; l < net.num_levels(); ++l)
      for (int p = off[static_cast<std::size_t>(l)];
           p < off[static_cast<std::size_t>(l) + 1]; ++p)
        EXPECT_EQ(net.level_of()[static_cast<std::size_t>(
                      pl.vid[static_cast<std::size_t>(p)])],
                  l);

    // SoA attributes and the four CSR tables mirror the AoS data exactly,
    // preserving per-vertex term order (the bit-identity precondition).
    for (int p = 0; p < n; ++p) {
      const std::size_t pi = static_cast<std::size_t>(p);
      const NodeId v = pl.vid[pi];
      const SizingVertex& sv = net.vertex(v);
      EXPECT_EQ(pl.a_self[pi], sv.a_self);
      EXPECT_EQ(pl.b[pi], sv.b);
      EXPECT_EQ(pl.source[pi] != 0, sv.kind == VertexKind::kSource);
      EXPECT_EQ(pl.sink[pi] != 0, sv.is_po || g.out_degree(v) == 0);

      ASSERT_EQ(pl.load_off[pi + 1] - pl.load_off[pi],
                static_cast<int>(sv.loads.size()));
      for (std::size_t t = 0; t < sv.loads.size(); ++t) {
        const std::size_t k = static_cast<std::size_t>(pl.load_off[pi]) + t;
        EXPECT_EQ(pl.load_pos[k],
                  pl.pos_of[static_cast<std::size_t>(sv.loads[t].vertex)]);
        EXPECT_EQ(pl.load_coeff[k], sv.loads[t].coeff);
      }

      const auto& rev = net.reverse_loads()[static_cast<std::size_t>(v)];
      ASSERT_EQ(pl.rload_off[pi + 1] - pl.rload_off[pi],
                static_cast<int>(rev.size()));
      for (std::size_t t = 0; t < rev.size(); ++t) {
        const std::size_t k = static_cast<std::size_t>(pl.rload_off[pi]) + t;
        EXPECT_EQ(pl.rload_pos[k],
                  pl.pos_of[static_cast<std::size_t>(rev[t].vertex)]);
        EXPECT_EQ(pl.rload_coeff[k], rev[t].coeff);
      }

      const auto& in = g.in_arcs(v);
      ASSERT_EQ(pl.fanin_off[pi + 1] - pl.fanin_off[pi],
                static_cast<int>(in.size()));
      for (std::size_t t = 0; t < in.size(); ++t)
        EXPECT_EQ(pl.fanin_pos[static_cast<std::size_t>(pl.fanin_off[pi]) + t],
                  pl.pos_of[static_cast<std::size_t>(g.tail(in[t]))]);

      const auto& out = g.out_arcs(v);
      ASSERT_EQ(pl.fanout_off[pi + 1] - pl.fanout_off[pi],
                static_cast<int>(out.size()));
      for (std::size_t t = 0; t < out.size(); ++t)
        EXPECT_EQ(
            pl.fanout_pos[static_cast<std::size_t>(pl.fanout_off[pi]) + t],
            pl.pos_of[static_cast<std::size_t>(g.head(out[t]))]);
    }
  }
}

TEST(SweepPlan, StaBitIdenticalToAosReference) {
  for (int lowering = 0; lowering < 3; ++lowering) {
    SCOPED_TRACE("lowering " + std::to_string(lowering));
    const SizingNetwork net = make_net(lowering);
    Rng rng(0x5eedull + static_cast<std::uint64_t>(lowering));
    TimingScratch scratch;
    for (int trial = 0; trial < 4; ++trial) {
      const std::vector<double> x = random_sizes(net, rng);
      const TimingReport ref = aos_run_sta(net, x);

      // Stateless overload and the scratch overload (full recompute path).
      const TimingReport got = run_sta(net, x);
      EXPECT_EQ(ref.delay, got.delay);
      EXPECT_EQ(ref.at, got.at);
      EXPECT_EQ(ref.rt, got.rt);
      EXPECT_EQ(ref.slack, got.slack);
      EXPECT_EQ(ref.critical_path, got.critical_path);
      EXPECT_EQ(ref.cp_vertex, got.cp_vertex);

      // Incremental path (warm scratch from the previous trial's sizes).
      const TimingReport& inc = run_sta(net, x, scratch);
      EXPECT_EQ(ref.at, inc.at);
      EXPECT_EQ(ref.rt, inc.rt);
      EXPECT_EQ(ref.cp_vertex, inc.cp_vertex);
    }
  }
}

TEST(SweepPlan, WPhaseBitIdenticalToAosReference) {
  for (int lowering = 0; lowering < 3; ++lowering) {
    SCOPED_TRACE("lowering " + std::to_string(lowering));
    const SizingNetwork net = make_net(lowering);
    Rng rng(0xabcdull + static_cast<std::uint64_t>(lowering));
    const std::vector<double> sized = random_sizes(net, rng);
    std::vector<double> budget(static_cast<std::size_t>(net.num_vertices()));
    for (NodeId v = 0; v < net.num_vertices(); ++v)
      budget[static_cast<std::size_t>(v)] = net.delay(v, sized);

    const WPhaseResult ref = aos_wphase(net, budget);
    const WPhaseResult got = solve_wphase(net, budget);
    EXPECT_EQ(ref.sizes, got.sizes);
    EXPECT_EQ(ref.changed, got.changed);
    EXPECT_EQ(ref.feasible, got.feasible);
    EXPECT_EQ(ref.sweeps, got.sweeps);
  }
}

TEST(SweepPlan, DelayHelpersMatchAos) {
  for (int lowering = 0; lowering < 3; ++lowering) {
    SCOPED_TRACE("lowering " + std::to_string(lowering));
    const SizingNetwork net = make_net(lowering);
    Rng rng(0x77ull + static_cast<std::uint64_t>(lowering));
    const std::vector<double> x = random_sizes(net, rng);
    std::vector<double> x_pos;
    net.plan().gather(x, x_pos);
    for (NodeId v = 0; v < net.num_vertices(); ++v) {
      const int p = net.plan().pos_of[static_cast<std::size_t>(v)];
      EXPECT_EQ(net.delay(v, x), aos_delay(net, v, x));
      EXPECT_EQ(net.plan().delay_at(p, x_pos), aos_delay(net, v, x));
    }
  }
}

// Fast math is opt-in and NOT bit-identical — it must stay within the
// tolerance documented on SweepPlan::delay_at_fast.
TEST(FastMath, WithinDocumentedTolerance) {
  constexpr double kDelayRelTol = 1e-12;
  constexpr double kPathRelTol = 1e-9;
  auto rel = [](double a, double b) {
    const double mag = std::max(std::abs(a), std::abs(b));
    if (!std::isfinite(mag) || mag == 0.0) return 0.0;  // inf RT == inf RT
    return std::abs(a - b) / mag;
  };
  for (int lowering = 0; lowering < 3; ++lowering) {
    SCOPED_TRACE("lowering " + std::to_string(lowering));
    const SizingNetwork net = make_net(lowering);
    Rng rng(0xfa57ull + static_cast<std::uint64_t>(lowering));
    const std::vector<double> x = random_sizes(net, rng);
    const std::size_t n = static_cast<std::size_t>(net.num_vertices());

    TimingScratch exact, fast;
    fast.fast_math = true;
    const TimingReport& re = run_sta(net, x, exact);
    const TimingReport& rf = run_sta(net, x, fast);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_LE(rel(re.delay[i], rf.delay[i]), kDelayRelTol);
      EXPECT_LE(rel(re.at[i], rf.at[i]), kPathRelTol);
      EXPECT_LE(rel(re.rt[i], rf.rt[i]), kPathRelTol);
    }
    EXPECT_LE(rel(re.critical_path, rf.critical_path), kPathRelTol);

    // Flipping the mode on a warm scratch must force a full recompute in
    // the new mode (never mix folds), and flipping back restores exact
    // results bit for bit.
    fast.fast_math = false;
    const TimingReport& back = run_sta(net, x, fast);
    EXPECT_EQ(re.delay, back.delay);
    EXPECT_EQ(re.at, back.at);
    EXPECT_EQ(re.critical_path, back.critical_path);

    // W-phase under fast math: same sweep structure, sizes within the
    // accumulated-path tolerance.
    std::vector<double> budget(n);
    for (NodeId v = 0; v < net.num_vertices(); ++v)
      budget[static_cast<std::size_t>(v)] = net.delay(v, x);
    const WPhaseResult we = solve_wphase(net, budget);
    const WPhaseResult wf = solve_wphase(net, budget, /*arena=*/nullptr,
                                         /*abort=*/nullptr,
                                         /*fast_math=*/true);
    EXPECT_EQ(we.feasible, wf.feasible);
    ASSERT_EQ(we.sizes.size(), wf.sizes.size());
    for (std::size_t i = 0; i < we.sizes.size(); ++i)
      EXPECT_LE(rel(we.sizes[i], wf.sizes[i]), kPathRelTol);
  }
}

}  // namespace
}  // namespace mft
