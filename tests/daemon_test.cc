// Service front-end tests (tier1):
//
//  - LatencyHistogram: bucket resolution, conservative quantiles,
//    under/overflow capture, reset.
//  - Protocol basics: submit → accepted ack then exactly one terminal
//    result; malformed / unknown requests get structured invalid_input
//    results and the daemon keeps serving; cancel through the protocol.
//  - The overload gate: with 1 worker and a burst exceeding capacity,
//    every request gets exactly one structured response — admitted→ok,
//    shed→"shed", rejected→"rejected", malformed→"invalid_input" — with
//    no hangs and no lost tickets.
//  - Priority jump: a high-priority submit behind queued low-priority
//    work is dispatched before it, and every per-ticket solution stays
//    bit-identical (sizes_hash) to the plain FIFO batch engine run with
//    the same seeds.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/daemon.h"
#include "engine/runner.h"
#include "gen/blocks.h"
#include "gen/tiled.h"
#include "timing/lowering.h"
#include "util/histogram.h"

namespace mft {
namespace {

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

TEST(LatencyHistogram, QuantilesAreConservativeBucketUpperEdges) {
  LatencyHistogram h;
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);  // empty histogram
  // 90 samples in [1e-3, 2e-3), 10 samples in [1e-1, 2e-1).
  for (int i = 0; i < 90; ++i) h.record(1.5e-3);
  for (int i = 0; i < 10; ++i) h.record(1.5e-1);
  EXPECT_EQ(h.total(), 100u);
  const double p50 = h.quantile(0.50);
  const double p99 = h.quantile(0.99);
  // p50 lands in the 1.5ms bucket: its upper edge is >= the sample and
  // within 2x of it (the geometric-bucket error bound).
  EXPECT_GE(p50, 1.5e-3);
  EXPECT_LE(p50, 3.0e-3);
  // p99 must see the slow tail.
  EXPECT_GE(p99, 1.5e-1);
  EXPECT_LE(p99, 3.0e-1);
  // p100 == p99 bucket here; quantile(1.0) never exceeds the overflow edge.
  EXPECT_GE(h.quantile(1.0), p99);
}

TEST(LatencyHistogram, UnderflowOverflowAndReset) {
  LatencyHistogram h;
  h.record(0.0);     // below the 1µs base: underflow bucket
  h.record(-1.0);    // negative (clock skew): underflow, never UB
  h.record(1e12);    // absurdly slow: overflow bucket
  EXPECT_EQ(h.total(), 3u);
  EXPECT_GT(h.quantile(1.0), 0.0);
  h.reset();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

// ---------------------------------------------------------------------------
// Daemon harness
// ---------------------------------------------------------------------------

/// Captures every emitted event line, thread-safe (results arrive from
/// engine workers).
struct Capture {
  std::mutex mu;
  std::vector<std::string> lines;

  SizingDaemon::Emit emit() {
    return [this](const std::string& line) {
      std::lock_guard<std::mutex> lock(mu);
      lines.push_back(line);
    };
  }

  std::vector<std::string> snapshot() {
    std::lock_guard<std::mutex> lock(mu);
    return lines;
  }
};

/// Raw token of `"key":<token>` in a JSON line ("" when absent). Good
/// enough for the flat one-line events the daemon emits.
std::string raw_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  std::size_t i = at + needle.size();
  if (i < line.size() && line[i] == '"') {
    const std::size_t end = line.find('"', i + 1);
    return line.substr(i + 1, end - i - 1);
  }
  std::size_t end = i;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  return line.substr(i, end - i);
}

/// The lines with "event":"result" and the given id, in emission order.
std::vector<std::string> results_for(const std::vector<std::string>& lines,
                                     const std::string& id) {
  std::vector<std::string> out;
  for (const std::string& l : lines)
    if (raw_field(l, "event") == "result" && raw_field(l, "id") == id)
      out.push_back(l);
  return out;
}

/// Same FNV-1a-over-bits rule the daemon uses for "sizes_hash", so the
/// test can compute the expected hash from a batch-engine reference run.
std::uint64_t fnv_sizes(const std::vector<double>& sizes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const double d : sizes) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &d, sizeof bits);
    for (int i = 0; i < 8; ++i) {
      h ^= (bits >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return h;
}

/// Polls the daemon until the engine queue is empty and `results` results
/// have been emitted — i.e. earlier submissions are being executed (or
/// done), so the next submit deterministically queues behind them.
void wait_for_drain_to_workers(SizingDaemon& daemon, std::uint64_t results) {
  for (int spins = 0; spins < 20000; ++spins) {
    const DaemonStats s = daemon.stats();
    if (s.engine.queue_depth == 0 && s.results >= results) return;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  FAIL() << "daemon never drained its queue to the workers";
}

std::string submit_line(const std::string& id, const std::string& circuit,
                        double ratio, int priority = 0,
                        double deadline = 0.0) {
  std::string s = "{\"op\":\"submit\",\"id\":\"" + id + "\",\"circuit\":\"" +
                  circuit + "\"";
  char buf[64];
  std::snprintf(buf, sizeof buf, ",\"ratio\":%.3f", ratio);
  s += buf;
  if (priority != 0) {
    std::snprintf(buf, sizeof buf, ",\"priority\":%d", priority);
    s += buf;
  }
  if (deadline > 0.0) {
    std::snprintf(buf, sizeof buf, ",\"deadline\":%.9g", deadline);
    s += buf;
  }
  return s + "}";
}

// ---------------------------------------------------------------------------
// Protocol basics
// ---------------------------------------------------------------------------

TEST(SizingDaemon, SubmitEmitsAcceptedThenExactlyOneResult) {
  Capture cap;
  DaemonOptions opt;
  opt.engine.threads = 1;
  {
    SizingDaemon daemon(opt, cap.emit());
    daemon.handle_line(submit_line("a", "c17", 0.8));
    daemon.drain();
  }
  const std::vector<std::string> lines = cap.snapshot();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(raw_field(lines[0], "event"), "accepted");
  EXPECT_EQ(raw_field(lines[0], "ticket"), "0");
  EXPECT_EQ(raw_field(lines[1], "event"), "result");
  EXPECT_EQ(raw_field(lines[1], "status"), "ok");
  EXPECT_EQ(raw_field(lines[1], "ok"), "true");
  EXPECT_EQ(raw_field(lines[1], "ticket"), "0");
  EXPECT_FALSE(raw_field(lines[1], "sizes_hash").empty());
  EXPECT_FALSE(raw_field(lines[1], "area").empty());
}

TEST(SizingDaemon, MalformedAndUnknownRequestsGetStructuredErrors) {
  Capture cap;
  DaemonOptions opt;
  opt.engine.threads = 1;
  SizingDaemon daemon(opt, cap.emit());

  daemon.handle_line("");              // blank: ignored, no response
  daemon.handle_line("   ");           // whitespace: ignored
  daemon.handle_line("not json at all");
  daemon.handle_line("{\"op\":\"submit\",\"circuit\":");  // truncated
  daemon.handle_line("{\"op\":\"frobnicate\",\"id\":\"x\"}");
  daemon.handle_line("{\"id\":\"y\"}");                   // no op
  daemon.handle_line(
      "{\"op\":\"submit\",\"id\":\"z\",\"circuit\":\"nonesuch99\"}");
  daemon.handle_line("{\"op\":\"cancel\"}");              // no ticket
  // Every bad line produced exactly one structured invalid_input result.
  std::vector<std::string> lines = cap.snapshot();
  ASSERT_EQ(lines.size(), 6u);
  for (const std::string& l : lines) {
    EXPECT_EQ(raw_field(l, "event"), "result") << l;
    EXPECT_EQ(raw_field(l, "status"), "invalid_input") << l;
    EXPECT_EQ(raw_field(l, "ok"), "false") << l;
    EXPECT_FALSE(raw_field(l, "error").empty()) << l;
  }
  // The daemon survived all of it: a clean request still works.
  daemon.handle_line(submit_line("good", "c17", 0.8));
  daemon.drain();
  const std::vector<std::string> good = results_for(cap.snapshot(), "good");
  ASSERT_EQ(good.size(), 1u);
  EXPECT_EQ(raw_field(good[0], "status"), "ok");
  const DaemonStats s = daemon.stats();
  EXPECT_EQ(s.invalid, 6u);
  EXPECT_EQ(s.admitted, 1u);
}

TEST(SizingDaemon, CancelThroughTheProtocol) {
  Capture cap;
  DaemonOptions opt;
  opt.engine.threads = 1;
  SizingDaemon daemon(opt, cap.emit());
  // Occupy the single worker, then queue a job and cancel it by ticket.
  daemon.handle_line(submit_line("blocker", "tiled4x6x2", 0.55));
  wait_for_drain_to_workers(daemon, 0);
  daemon.handle_line(submit_line("victim", "c17", 0.8));
  // The victim's ticket is in its accepted ack.
  std::string ticket;
  for (const std::string& l : cap.snapshot())
    if (raw_field(l, "event") == "accepted" && raw_field(l, "id") == "victim")
      ticket = raw_field(l, "ticket");
  ASSERT_FALSE(ticket.empty());
  daemon.handle_line("{\"op\":\"cancel\",\"ticket\":" + ticket + "}");
  daemon.handle_line("{\"op\":\"cancel\",\"ticket\":99999}");  // never issued
  daemon.drain();

  const std::vector<std::string> lines = cap.snapshot();
  std::vector<std::string> cancels;
  for (const std::string& l : lines)
    if (raw_field(l, "event") == "cancel") cancels.push_back(l);
  ASSERT_EQ(cancels.size(), 2u);
  EXPECT_EQ(raw_field(cancels[0], "ok"), "true");
  EXPECT_EQ(raw_field(cancels[1], "ok"), "false");
  EXPECT_FALSE(raw_field(cancels[1], "error").empty());
  const std::vector<std::string> victim = results_for(lines, "victim");
  ASSERT_EQ(victim.size(), 1u);  // canceled jobs still get their result
  EXPECT_EQ(raw_field(victim[0], "status"), "canceled");
}

// ---------------------------------------------------------------------------
// The overload gate
// ---------------------------------------------------------------------------

TEST(SizingDaemon, OverloadBurstYieldsExactlyOneStructuredResponseEach) {
  Capture cap;
  DaemonOptions opt;
  opt.engine.threads = 1;
  opt.max_queue_depth = 2;  // admission bound
  opt.shed = true;
  SizingDaemon daemon(opt, cap.emit());

  // Occupy the lone worker with a slow job so the burst below queues
  // behind it deterministically.
  daemon.handle_line(submit_line("blocker", "tiled4x6x2", 0.55));
  wait_for_drain_to_workers(daemon, 0);
  // Burst: a job whose deadline is unmeetable by construction (1ns — any
  // dispatch latency exceeds it, so the armed shedder always fires), one
  // admissible job, one submit over the queue bound, one malformed line.
  daemon.handle_line(submit_line("doomed", "c17", 0.8, 0, 1e-9));
  daemon.handle_line(submit_line("fine", "c17", 0.8));
  daemon.handle_line(submit_line("over", "c17", 0.8));  // depth 2 >= bound
  daemon.handle_line("{\"op\":\"submit\"");             // malformed
  daemon.drain();

  const std::vector<std::string> lines = cap.snapshot();
  struct Expect {
    const char* id;
    const char* status;
  };
  const Expect expected[] = {
      {"blocker", "ok"}, {"doomed", "shed"},      {"fine", "ok"},
      {"over", "rejected"},
  };
  for (const Expect& e : expected) {
    const std::vector<std::string> rs = results_for(lines, e.id);
    ASSERT_EQ(rs.size(), 1u) << e.id << ": exactly one terminal response";
    EXPECT_EQ(raw_field(rs[0], "status"), e.status) << rs[0];
  }
  // The malformed line (no id) also got exactly one structured response.
  const std::vector<std::string> anon = results_for(lines, "");
  ASSERT_EQ(anon.size(), 1u);
  EXPECT_EQ(raw_field(anon[0], "status"), "invalid_input");

  const DaemonStats s = daemon.stats();
  EXPECT_EQ(s.admitted, 3u);
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.invalid, 1u);
  EXPECT_EQ(s.engine.shed, 1u);
  EXPECT_EQ(s.engine.completed, 3u);
  EXPECT_GE(s.engine.queue_peak, 2u);
  EXPECT_EQ(s.results, 3u);  // engine-delivered results (blocker, doomed, fine)
  EXPECT_GT(s.p50_seconds, 0.0);
  EXPECT_GE(s.p99_seconds, s.p50_seconds);
}

// ---------------------------------------------------------------------------
// Deadline-pressure admission (the ECO-serving bugfix trio)
// ---------------------------------------------------------------------------

// Before the first result lands there is no EWMA runtime estimate; the
// old gate silently admitted every deadline job through that window. The
// fixed gate falls back to queue-depth-only pressure: refuse
// deadline-carrying submits once the backlog reaches the worker count.
TEST(SizingDaemon, ColdStartDeadlinePressureFallsBackToQueueDepth) {
  Capture cap;
  DaemonOptions opt;
  opt.engine.threads = 1;
  opt.deadline_pressure = 1.0;  // no max_queue_depth: pressure-only gate
  SizingDaemon daemon(opt, cap.emit());

  EXPECT_EQ(daemon.stats().ewma_run_seconds, 0.0);  // cold: no estimate yet
  daemon.handle_line(submit_line("blocker", "tiled4x6x2", 0.55));
  wait_for_drain_to_workers(daemon, 0);
  // Worker busy but backlog empty: a deadline submit is still admitted
  // (the conservative fallback refuses backlog, not all deadline work).
  daemon.handle_line(submit_line("early", "c17", 0.8, 0, 30.0));
  // Backlog now 1 >= 1 worker with no estimate: cold-start refusal.
  daemon.handle_line(submit_line("cold", "c17", 0.8, 0, 30.0));
  daemon.drain();

  const std::vector<std::string> lines = cap.snapshot();
  EXPECT_EQ(raw_field(results_for(lines, "early").at(0), "status"), "ok");
  const std::vector<std::string> cold = results_for(lines, "cold");
  ASSERT_EQ(cold.size(), 1u);
  EXPECT_EQ(raw_field(cold[0], "status"), "rejected");
  EXPECT_NE(cold[0].find("cold start"), std::string::npos) << cold[0];
  const DaemonStats s = daemon.stats();
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_GT(s.ewma_run_seconds, 0.0);  // first successes seeded the EWMA
}

// The admission EWMA folds in successful completions only. Shed jobs
// return in near-zero wall time; the old code averaged them in, so a
// storm of failures dragged the estimate toward zero and re-opened
// admission exactly when the daemon was drowning.
TEST(SizingDaemon, FailureStormDoesNotContaminateTheRuntimeEwma) {
  Capture cap;
  DaemonOptions opt;
  opt.engine.threads = 1;
  opt.shed = true;  // deadline_pressure stays 0: admission never refuses
  SizingDaemon daemon(opt, cap.emit());

  daemon.handle_line(submit_line("seed", "c17", 0.8));
  daemon.drain();
  const double ewma0 = daemon.stats().ewma_run_seconds;
  ASSERT_GT(ewma0, 0.0);

  // Five unmeetable deadlines (1ns): each is shed at dispatch, failing
  // with ok=false in near-zero wall time.
  for (int i = 0; i < 5; ++i)
    daemon.handle_line(submit_line("doomed" + std::to_string(i), "c17", 0.8,
                                   0, 1e-9));
  daemon.drain();
  const DaemonStats s = daemon.stats();
  EXPECT_EQ(s.engine.shed, 5u);
  // Bit-identical: no failed result touched the estimate.
  EXPECT_EQ(s.ewma_run_seconds, ewma0);
}

// Predicted *completion* must include the job's own expected run, not
// just its queue wait: on an idle daemon the old estimate was exactly
// zero, admitting jobs whose deadline their own runtime would blow —
// only to shed or degrade them after the fact.
TEST(SizingDaemon, DeadlinePressureCountsTheJobsOwnRunTime) {
  Capture cap;
  DaemonOptions opt;
  opt.engine.threads = 1;
  opt.deadline_pressure = 1.0;
  SizingDaemon daemon(opt, cap.emit());

  daemon.handle_line(submit_line("seed", "c17", 0.8));
  daemon.drain();
  const double ewma = daemon.stats().ewma_run_seconds;
  ASSERT_GT(ewma, 0.0);
  ASSERT_EQ(daemon.stats().engine.queue_depth, 0u);  // idle: wait is zero

  // Deadline far under one expected run: refused up front even though
  // the queue is empty (the old gate predicted 0 here and admitted).
  daemon.handle_line(submit_line("tight", "c17", 0.8, 0, ewma * 0.25));
  // Deadline comfortably above one expected run: admitted.
  daemon.handle_line(submit_line("roomy", "c17", 0.8, 0, ewma * 100.0));
  daemon.drain();

  const std::vector<std::string> lines = cap.snapshot();
  const std::vector<std::string> tight = results_for(lines, "tight");
  ASSERT_EQ(tight.size(), 1u);
  EXPECT_EQ(raw_field(tight[0], "status"), "rejected");
  EXPECT_NE(tight[0].find("predicted completion"), std::string::npos)
      << tight[0];
  EXPECT_EQ(raw_field(results_for(lines, "roomy").at(0), "status"), "ok");
}

TEST(SizingDaemon, ShutdownRefusesLateSubmitsAndStatsKeepServing) {
  Capture cap;
  DaemonOptions opt;
  opt.engine.threads = 1;
  SizingDaemon daemon(opt, cap.emit());
  daemon.handle_line(submit_line("a", "c17", 0.8));
  EXPECT_FALSE(daemon.shutdown_requested());
  daemon.handle_line("{\"op\":\"shutdown\"}");
  EXPECT_TRUE(daemon.shutdown_requested());
  daemon.handle_line(submit_line("late", "c17", 0.8));
  daemon.drain();
  const std::vector<std::string> lines = cap.snapshot();
  const std::vector<std::string> late = results_for(lines, "late");
  ASSERT_EQ(late.size(), 1u);
  EXPECT_EQ(raw_field(late[0], "status"), "rejected");
  ASSERT_EQ(results_for(lines, "a").size(), 1u);  // admitted work completes
  bool saw_shutdown = false;
  for (const std::string& l : lines)
    if (raw_field(l, "event") == "shutdown") saw_shutdown = true;
  EXPECT_TRUE(saw_shutdown);
}

// ---------------------------------------------------------------------------
// Priority jump + bit-identity with the FIFO batch engine
// ---------------------------------------------------------------------------

TEST(SizingDaemon, PriorityJumpKeepsResultsBitIdenticalToTheFifoBatch) {
  // Reference: the same five jobs as a plain FIFO batch (priority is
  // ignored there; seeds derive from the index == the daemon's ticket).
  LoweredCircuit tiled = lower_gate_level(
      [] {
        TiledDatapathParams p;
        p.lanes = 4;
        p.stages = 6;
        p.bits = 2;
        return make_tiled_datapath(p);
      }(),
      Tech{});
  LoweredCircuit c17 = lower_gate_level(make_c17(), Tech{});
  const double ratios[] = {0.8, 0.7, 0.9};
  std::vector<const SizingNetwork*> nets{&tiled.net, &c17.net};
  std::vector<SizingJob> jobs;
  SizingJob blocker;
  blocker.network = 0;
  blocker.target_ratio = 0.55;
  jobs.push_back(blocker);
  for (const double r : ratios) {
    SizingJob low;
    low.network = 1;
    low.target_ratio = r;
    jobs.push_back(low);
  }
  SizingJob high;
  high.network = 1;
  high.target_ratio = 0.75;
  jobs.push_back(high);
  JobRunnerOptions bopt;
  bopt.threads = 1;
  const BatchResult reference = JobRunner(bopt).run(nets, jobs);
  for (const JobResult& r : reference.results) ASSERT_TRUE(r.ok) << r.error;

  Capture cap;
  DaemonOptions opt;
  opt.engine.threads = 1;
  SizingDaemon daemon(opt, cap.emit());
  daemon.handle_line(submit_line("t0", "tiled4x6x2", 0.55));
  wait_for_drain_to_workers(daemon, 0);  // blocker on the worker, queue empty
  daemon.handle_line(submit_line("t1", "c17", ratios[0]));
  daemon.handle_line(submit_line("t2", "c17", ratios[1]));
  daemon.handle_line(submit_line("t3", "c17", ratios[2]));
  daemon.handle_line(submit_line("t4", "c17", 0.75, /*priority=*/9));
  daemon.drain();

  const std::vector<std::string> lines = cap.snapshot();
  // Dispatch order: the high-priority t4, submitted behind three queued
  // low-priority jobs, must complete before all of them.
  std::vector<std::string> done_ids;
  for (const std::string& l : lines)
    if (raw_field(l, "event") == "result") done_ids.push_back(raw_field(l, "id"));
  ASSERT_EQ(done_ids.size(), 5u);
  const auto pos = [&](const std::string& id) {
    for (std::size_t i = 0; i < done_ids.size(); ++i)
      if (done_ids[i] == id) return i;
    ADD_FAILURE() << "no result for " << id;
    return done_ids.size();
  };
  EXPECT_LT(pos("t4"), pos("t1"));
  EXPECT_LT(pos("t4"), pos("t2"));
  EXPECT_LT(pos("t4"), pos("t3"));

  // Bit-identity: every ticket's solution hash equals the FIFO batch's.
  const char* ids[] = {"t0", "t1", "t2", "t3", "t4"};
  for (std::size_t i = 0; i < 5; ++i) {
    const std::vector<std::string> rs = results_for(lines, ids[i]);
    ASSERT_EQ(rs.size(), 1u) << ids[i];
    EXPECT_EQ(raw_field(rs[0], "status"), "ok") << rs[0];
    EXPECT_EQ(raw_field(rs[0], "seed"),
              std::to_string(reference.results[i].seed))
        << ids[i];
    EXPECT_EQ(raw_field(rs[0], "sizes_hash"),
              std::to_string(fnv_sizes(reference.results[i].result.sizes)))
        << ids[i] << ": scheduled stream must be bit-identical to the batch";
  }
}

}  // namespace
}  // namespace mft
