// Tests for the circuit generators: functional correctness of arithmetic
// blocks (exhaustive where tractable), structural sanity everywhere, and
// gate-count fidelity of the ISCAS85 analogs.
#include <gtest/gtest.h>

#include "gen/blocks.h"
#include "gen/iscas_analog.h"
#include "netlist/bench_io.h"
#include "netlist/stats.h"

namespace mft {
namespace {

// Packs an unsigned value into per-bit bools, LSB first.
std::vector<bool> bits_of(unsigned v, int n) {
  std::vector<bool> out(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out[static_cast<std::size_t>(i)] = (v >> i) & 1;
  return out;
}

unsigned value_of(const std::vector<bool>& bits, int from, int count) {
  unsigned v = 0;
  for (int i = 0; i < count; ++i)
    if (bits[static_cast<std::size_t>(from + i)]) v |= 1u << i;
  return v;
}

TEST(GenC17, MatchesKnownTruthTable) {
  Netlist nl = make_c17();
  EXPECT_EQ(nl.num_logic_gates(), 6);
  EXPECT_EQ(nl.num_inputs(), 5);
  // Spot values computed from the canonical netlist by hand:
  // all-zero inputs: G10=G11=1, G16=!(0&1)=1, G19=!(1&0)=1, G22=!(1&1)=0? ...
  // rely on structural evaluation vs an independent formula instead.
  for (unsigned m = 0; m < 32; ++m) {
    const bool g1 = m & 1, g2 = m & 2, g3 = m & 4, g6 = m & 8, g7 = m & 16;
    const bool g10 = !(g1 && g3);
    const bool g11 = !(g3 && g6);
    const bool g16 = !(g2 && g11);
    const bool g19 = !(g11 && g7);
    auto out = nl.evaluate({g1, g2, g3, g6, g7});
    EXPECT_EQ(out[0], !(g10 && g16)) << m;
    EXPECT_EQ(out[1], !(g16 && g19)) << m;
  }
}

TEST(GenAdder, FourBitExhaustive) {
  const int n = 4;
  Netlist nl = make_ripple_adder(n);
  ASSERT_EQ(nl.num_inputs(), 2 * n + 1);
  ASSERT_EQ(nl.num_outputs(), n + 1);
  EXPECT_EQ(nl.num_logic_gates(), 9 * n);
  for (unsigned a = 0; a < 16; ++a)
    for (unsigned b = 0; b < 16; ++b)
      for (unsigned cin = 0; cin <= 1; ++cin) {
        std::vector<bool> in = bits_of(a, n);
        const std::vector<bool> bb = bits_of(b, n);
        in.insert(in.end(), bb.begin(), bb.end());
        in.push_back(cin);
        const auto out = nl.evaluate(in);
        const unsigned sum = value_of(out, 0, n);
        const unsigned cout = out[static_cast<std::size_t>(n)];
        EXPECT_EQ(sum + (cout << n), a + b + cin)
            << a << "+" << b << "+" << cin;
      }
}

TEST(GenAdder, LargeAdderIsStructurallySound) {
  Netlist nl = make_ripple_adder(64);
  std::string why;
  EXPECT_TRUE(nl.validate(&why)) << why;
  EXPECT_TRUE(nl.is_primitive_only());
  EXPECT_EQ(nl.num_logic_gates(), 9 * 64);
  EXPECT_GE(nl.depth(), 64);  // carry chain dominates
}

TEST(GenMultiplier, FourByFourExhaustive) {
  const int n = 4;
  Netlist nl = make_array_multiplier(n);
  ASSERT_EQ(nl.num_inputs(), 2 * n);
  ASSERT_EQ(nl.num_outputs(), 2 * n);
  for (unsigned a = 0; a < 16; ++a)
    for (unsigned b = 0; b < 16; ++b) {
      std::vector<bool> in = bits_of(a, n);
      const std::vector<bool> bb = bits_of(b, n);
      in.insert(in.end(), bb.begin(), bb.end());
      const auto out = nl.evaluate(in);
      EXPECT_EQ(value_of(out, 0, 2 * n), a * b) << a << "*" << b;
    }
}

TEST(GenMultiplier, SixteenBitMatchesC6288Character) {
  Netlist nl = make_array_multiplier(16);
  std::string why;
  EXPECT_TRUE(nl.validate(&why)) << why;
  EXPECT_TRUE(nl.is_primitive_only());
  const NetlistStats s = compute_stats(nl);
  // Published c6288: 2406 gates, 32 PI, 32 PO. Our structural analog lands
  // within ~15% (different full-adder mapping).
  EXPECT_EQ(s.num_inputs, 32);
  EXPECT_EQ(s.num_outputs, 32);
  EXPECT_NEAR(s.num_logic_gates, 2406, 2406 * 0.15);
  // Spot-check a multiplication.
  std::vector<bool> in = bits_of(51234, 16);
  const std::vector<bool> bb = bits_of(47711, 16);
  in.insert(in.end(), bb.begin(), bb.end());
  const auto out = nl.evaluate(in);
  const unsigned long long expect = 51234ull * 47711ull;
  for (int i = 0; i < 32; ++i)
    EXPECT_EQ(static_cast<bool>(out[static_cast<std::size_t>(i)]),
              static_cast<bool>((expect >> i) & 1))
        << "bit " << i;
}

TEST(GenParitySec, CorrectsSingleBitErrors) {
  // With check bits computed for the data word, every single-bit data error
  // must be corrected at the outputs.
  const int n = 8;
  Netlist nl = make_parity_sec(n);
  int k = 1;
  while ((1 << k) < n + k + 1) ++k;
  ASSERT_EQ(nl.num_inputs(), n + k);
  ASSERT_EQ(nl.num_outputs(), n);

  auto checks_for = [&](unsigned data) {
    std::vector<bool> c(static_cast<std::size_t>(k), false);
    for (int j = 0; j < k; ++j) {
      bool parity = false;
      for (int i = 0; i < n; ++i)
        if (((i + 1) >> j) & 1) parity = parity != (((data >> i) & 1) != 0);
      c[static_cast<std::size_t>(j)] = parity;
    }
    return c;
  };
  for (unsigned data : {0x00u, 0xFFu, 0x5Au, 0x93u}) {
    const std::vector<bool> checks = checks_for(data);
    for (int err = -1; err < n; ++err) {
      unsigned corrupted = data;
      if (err >= 0) corrupted ^= 1u << err;
      std::vector<bool> in = bits_of(corrupted, n);
      in.insert(in.end(), checks.begin(), checks.end());
      const auto out = nl.evaluate(in);
      EXPECT_EQ(value_of(out, 0, n), data)
          << "data " << data << " err bit " << err;
    }
  }
}

TEST(GenMuxTree, SelectsEveryInput) {
  const int s = 3;
  Netlist nl = make_mux_tree(s);
  ASSERT_EQ(nl.num_inputs(), s + (1 << s));
  ASSERT_EQ(nl.num_outputs(), 1);
  for (unsigned sel = 0; sel < (1u << s); ++sel) {
    for (unsigned pattern : {0x0Fu, 0xA5u, 0x01u << sel}) {
      std::vector<bool> in = bits_of(sel, s);
      const std::vector<bool> data = bits_of(pattern, 1 << s);
      in.insert(in.end(), data.begin(), data.end());
      const auto out = nl.evaluate(in);
      EXPECT_EQ(out[0], static_cast<bool>((pattern >> sel) & 1))
          << "sel " << sel << " pattern " << pattern;
    }
  }
}

TEST(GenComparator, FourBitExhaustive) {
  const int n = 4;
  Netlist nl = make_comparator(n);
  ASSERT_EQ(nl.num_outputs(), 2);
  for (unsigned a = 0; a < 16; ++a)
    for (unsigned b = 0; b < 16; ++b) {
      std::vector<bool> in = bits_of(a, n);
      const std::vector<bool> bb = bits_of(b, n);
      in.insert(in.end(), bb.begin(), bb.end());
      const auto out = nl.evaluate(in);
      EXPECT_EQ(out[0], a == b) << a << " vs " << b;
      EXPECT_EQ(out[1], a > b) << a << " vs " << b;
    }
}

TEST(GenAlu, AllFourOpsOnRandomOperands) {
  const int n = 6;
  Netlist nl = make_alu(n);
  // inputs: a, b, op0, op1, cin
  auto run = [&](unsigned a, unsigned b, int op, unsigned cin) {
    std::vector<bool> in = bits_of(a, n);
    const std::vector<bool> bb = bits_of(b, n);
    in.insert(in.end(), bb.begin(), bb.end());
    in.push_back(op & 1);
    in.push_back(op & 2);
    in.push_back(cin);
    return nl.evaluate(in);
  };
  for (unsigned a : {0u, 13u, 63u, 42u})
    for (unsigned b : {0u, 7u, 63u, 21u}) {
      // op 0: add, op 1: and, op 2: or, op 3: xor.
      EXPECT_EQ(value_of(run(a, b, 0, 0), 0, n), (a + b) & 63u);
      EXPECT_EQ(value_of(run(a, b, 0, 1), 0, n), (a + b + 1) & 63u);
      EXPECT_EQ(value_of(run(a, b, 1, 0), 0, n), a & b);
      EXPECT_EQ(value_of(run(a, b, 2, 0), 0, n), a | b);
      EXPECT_EQ(value_of(run(a, b, 3, 0), 0, n), a ^ b);
    }
}

TEST(GenRandomLogic, DeterministicAndValid) {
  RandomLogicParams params;
  params.num_inputs = 10;
  params.num_gates = 150;
  params.seed = 99;
  Netlist a = make_random_logic(params);
  Netlist b = make_random_logic(params);
  EXPECT_EQ(write_bench_string(a), write_bench_string(b));
  EXPECT_EQ(a.num_logic_gates(), 150);
  std::string why;
  EXPECT_TRUE(a.validate(&why)) << why;
}

TEST(IscasAnalog, GateCountsTrackTable1) {
  for (const IscasAnalogSpec& spec : iscas85_specs()) {
    Netlist nl = make_iscas_analog(spec.name);
    std::string why;
    EXPECT_TRUE(nl.validate(&why)) << spec.name << ": " << why;
    const double tolerance = spec.name == "c6288" ? 0.15 : 0.02;
    EXPECT_NEAR(nl.num_logic_gates(), spec.published_gates,
                spec.published_gates * tolerance)
        << spec.name;
  }
}

TEST(IscasAnalog, DeterministicAcrossCalls) {
  Netlist a = make_iscas_analog("c432");
  Netlist b = make_iscas_analog("c432");
  EXPECT_EQ(write_bench_string(a), write_bench_string(b));
}

TEST(IscasAnalog, RejectsUnknownName) {
  EXPECT_THROW(make_iscas_analog("c9999"), CheckError);
}

TEST(IscasAnalog, BenchRoundTrip) {
  Netlist nl = make_iscas_analog("c432");
  Netlist back = read_bench_string(write_bench_string(nl), "c432rt");
  EXPECT_EQ(back.num_logic_gates(), nl.num_logic_gates());
  EXPECT_EQ(back.num_inputs(), nl.num_inputs());
  EXPECT_EQ(back.num_outputs(), nl.num_outputs());
}

}  // namespace
}  // namespace mft
