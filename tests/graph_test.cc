// Tests for the digraph container and series/parallel trees.
#include <gtest/gtest.h>

#include "graph/digraph.h"
#include "graph/sp_tree.h"
#include "util/rng.h"

namespace mft {
namespace {

TEST(Digraph, BasicConstruction) {
  Digraph g(3);
  const ArcId a = g.add_arc(0, 1);
  const ArcId b = g.add_arc(1, 2);
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_arcs(), 2);
  EXPECT_EQ(g.tail(a), 0);
  EXPECT_EQ(g.head(a), 1);
  EXPECT_EQ(g.out_degree(1), 1);
  EXPECT_EQ(g.in_degree(1), 1);
  EXPECT_EQ(g.out_arcs(1).front(), b);
}

TEST(Digraph, TopologicalOrderRespectsArcs) {
  Digraph g(5);
  g.add_arc(3, 1);
  g.add_arc(1, 4);
  g.add_arc(3, 4);
  g.add_arc(0, 3);
  auto order = g.topological_order();
  ASSERT_TRUE(order.has_value());
  std::vector<int> pos(5);
  for (int i = 0; i < 5; ++i) pos[static_cast<std::size_t>((*order)[static_cast<std::size_t>(i)])] = i;
  for (ArcId a = 0; a < g.num_arcs(); ++a)
    EXPECT_LT(pos[static_cast<std::size_t>(g.tail(a))], pos[static_cast<std::size_t>(g.head(a))]);
}

TEST(Digraph, CycleHasNoTopologicalOrder) {
  Digraph g(3);
  g.add_arc(0, 1);
  g.add_arc(1, 2);
  g.add_arc(2, 0);
  EXPECT_FALSE(g.topological_order().has_value());
  EXPECT_FALSE(g.is_dag());
}

TEST(Digraph, SourcesAndSinks) {
  Digraph g(4);
  g.add_arc(0, 2);
  g.add_arc(1, 2);
  g.add_arc(2, 3);
  EXPECT_EQ(g.sources(), (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(g.sinks(), (std::vector<NodeId>{3}));
}

TEST(Digraph, Reachability) {
  Digraph g(4);
  g.add_arc(0, 1);
  g.add_arc(1, 2);
  EXPECT_TRUE(g.reachable(0, 2));
  EXPECT_TRUE(g.reachable(2, 2));
  EXPECT_FALSE(g.reachable(2, 0));
  EXPECT_FALSE(g.reachable(0, 3));
}

TEST(Digraph, RandomDagAlwaysHasOrder) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = rng.uniform_int(2, 40);
    Digraph g(n);
    for (int e = 0; e < 3 * n; ++e) {
      int u = rng.uniform_int(0, n - 2);
      int v = rng.uniform_int(u + 1, n - 1);
      g.add_arc(u, v);  // forward arcs only => DAG by construction
    }
    EXPECT_TRUE(g.is_dag());
  }
}

TEST(SpTree, NandPulldownShape) {
  // 3-input NAND: pulldown = series of 3, pullup = parallel of 3 (Fig. 1).
  SpTree pd = SpTree::series({SpTree::leaf(0), SpTree::leaf(1), SpTree::leaf(2)});
  EXPECT_EQ(pd.num_transistors(), 3);
  EXPECT_EQ(pd.stack_depth(), 3);
  SpTree pu = pd.dual();
  EXPECT_EQ(pu.kind(), SpKind::kParallel);
  EXPECT_EQ(pu.num_transistors(), 3);
  EXPECT_EQ(pu.stack_depth(), 1);
}

TEST(SpTree, DualIsInvolution) {
  SpTree aoi = SpTree::parallel(
      {SpTree::series({SpTree::leaf(0), SpTree::leaf(1)}), SpTree::leaf(2)});
  EXPECT_EQ(aoi.dual().dual().to_string(), aoi.to_string());
}

TEST(SpTree, SingleChildCollapses) {
  SpTree t = SpTree::series({SpTree::leaf(4)});
  EXPECT_EQ(t.kind(), SpKind::kLeaf);
  EXPECT_EQ(t.pin(), 4);
}

TEST(SpTree, StackDepthOfNestedNetwork) {
  // (a.b + c).d -> depth 3
  SpTree t = SpTree::series(
      {SpTree::parallel({SpTree::series({SpTree::leaf(0), SpTree::leaf(1)}),
                         SpTree::leaf(2)}),
       SpTree::leaf(3)});
  EXPECT_EQ(t.stack_depth(), 3);
  EXPECT_EQ(t.num_transistors(), 4);
}

TEST(SpTree, ToStringRoundTripShape) {
  SpTree t = SpTree::parallel({SpTree::leaf(0), SpTree::leaf(1)});
  EXPECT_EQ(t.to_string(), "(p0+p1)");
}

}  // namespace
}  // namespace mft
