// Randomized property tests over the whole stack, parameterized by seed
// (TEST_P sweeps): monotonicity laws of the Elmore IR, W-phase optimality
// laws (idempotence, least-fixpoint dominance), D-phase safety laws
// (non-negative objective, causality preservation), and TILOS dominance.
#include <gtest/gtest.h>

#include "gen/blocks.h"
#include "netlist/bench_io.h"
#include "sizing/minflotransit.h"
#include "timing/delay_balance.h"
#include "timing/lowering.h"
#include "util/rng.h"

namespace mft {
namespace {

Netlist random_circuit(std::uint64_t seed) {
  RandomLogicParams p;
  Rng rng(seed);
  p.num_inputs = rng.uniform_int(6, 20);
  p.num_gates = rng.uniform_int(40, 240);
  p.seed = seed * 977 + 1;
  return make_random_logic(p);
}

class SeededProperty : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

TEST_P(SeededProperty, UpsizingIsMonotoneInTheElmoreModel) {
  Netlist nl = random_circuit(GetParam());
  LoweredCircuit lc = lower_gate_level(nl, Tech{});
  Rng rng(GetParam() ^ 0xABCD);
  std::vector<double> x = lc.net.min_sizes();
  for (NodeId v = 0; v < lc.net.num_vertices(); ++v)
    if (!lc.net.is_source(v))
      x[static_cast<std::size_t>(v)] = rng.uniform(1.0, 8.0);

  for (int trial = 0; trial < 25; ++trial) {
    NodeId v = static_cast<NodeId>(rng.index(
        static_cast<std::size_t>(lc.net.num_vertices())));
    if (lc.net.is_source(v)) continue;
    const double own_before = lc.net.delay(v, x);
    std::vector<double> upstream_before;
    for (const LoadTerm& t : lc.net.reverse_loads()[static_cast<std::size_t>(v)])
      upstream_before.push_back(lc.net.delay(t.vertex, x));

    auto y = x;
    y[static_cast<std::size_t>(v)] *= 1.5;
    // Own delay can only drop; every loading driver can only slow down.
    EXPECT_LE(lc.net.delay(v, y), own_before + 1e-12);
    std::size_t k = 0;
    for (const LoadTerm& t : lc.net.reverse_loads()[static_cast<std::size_t>(v)])
      EXPECT_GE(lc.net.delay(t.vertex, y), upstream_before[k++] - 1e-12);
  }
}

TEST_P(SeededProperty, CriticalPathIsMaxOverAllPathSums) {
  Netlist nl = random_circuit(GetParam());
  LoweredCircuit lc = lower_gate_level(nl, Tech{});
  const auto x = lc.net.min_sizes();
  const TimingReport t = run_sta(lc.net, x);
  // Random downstream walks can never beat the reported CP.
  Rng rng(GetParam() ^ 0x77);
  const Digraph& g = lc.net.dag();
  for (int walk = 0; walk < 30; ++walk) {
    const auto sources = g.sources();
    NodeId v = sources[rng.index(sources.size())];
    double sum = 0.0;
    while (true) {
      sum += t.delay[static_cast<std::size_t>(v)];
      if (g.out_degree(v) == 0) break;
      v = g.head(g.out_arcs(v)[rng.index(
          static_cast<std::size_t>(g.out_degree(v)))]);
    }
    EXPECT_LE(sum, t.critical_path + 1e-9);
  }
  // And the reconstructed critical path realizes it exactly.
  double cp = 0.0;
  for (NodeId v : t.critical_vertices(lc.net))
    cp += t.delay[static_cast<std::size_t>(v)];
  EXPECT_NEAR(cp, t.critical_path, 1e-9);
}

TEST_P(SeededProperty, WPhaseIsIdempotent) {
  Netlist nl = random_circuit(GetParam());
  LoweredCircuit lc = lower_gate_level(nl, Tech{});
  const double dmin = min_sized_delay(lc.net);
  const TilosResult tilos = run_tilos(lc.net, 0.8 * dmin);
  ASSERT_TRUE(tilos.met_target);
  std::vector<double> budget(static_cast<std::size_t>(lc.net.num_vertices()));
  for (NodeId v = 0; v < lc.net.num_vertices(); ++v)
    budget[static_cast<std::size_t>(v)] = lc.net.delay(v, tilos.sizes);
  const WPhaseResult once = solve_wphase(lc.net, budget);
  ASSERT_TRUE(once.feasible);
  // Re-deriving budgets from the fixpoint and re-solving changes nothing:
  // the W-phase output is self-consistent (it IS the least fixpoint).
  std::vector<double> budget2(static_cast<std::size_t>(lc.net.num_vertices()));
  for (NodeId v = 0; v < lc.net.num_vertices(); ++v)
    budget2[static_cast<std::size_t>(v)] =
        std::max(budget[static_cast<std::size_t>(v)],
                 lc.net.delay(v, once.sizes));
  const WPhaseResult twice = solve_wphase(lc.net, budget2);
  ASSERT_TRUE(twice.feasible);
  for (NodeId v = 0; v < lc.net.num_vertices(); ++v)
    EXPECT_NEAR(twice.sizes[static_cast<std::size_t>(v)],
                once.sizes[static_cast<std::size_t>(v)], 1e-6);
}

TEST_P(SeededProperty, DPhaseBudgetsRemainRealizableAndSafe) {
  Netlist nl = random_circuit(GetParam());
  LoweredCircuit lc = lower_gate_level(nl, Tech{});
  const double dmin = min_sized_delay(lc.net);
  const TilosResult tilos = run_tilos(lc.net, 0.75 * dmin);
  ASSERT_TRUE(tilos.met_target);
  for (BalanceMode mode : {BalanceMode::kAsap, BalanceMode::kAlap}) {
    DPhaseOptions opt;
    opt.balance = mode;
    const DPhaseResult d = run_dphase(lc.net, tilos.sizes, opt);
    ASSERT_TRUE(d.solved);
    EXPECT_GE(d.objective, -1e-9);
    const WPhaseResult w = solve_wphase(lc.net, d.budget);
    ASSERT_TRUE(w.feasible);
    const TimingReport t = run_sta(lc.net, w.sizes);
    EXPECT_LE(t.critical_path, tilos.achieved_delay * (1 + 1e-6));
    EXPECT_TRUE(t.safe(lc.net));
  }
}

TEST_P(SeededProperty, MinflotransitDominatesTilos) {
  Netlist nl = random_circuit(GetParam());
  LoweredCircuit lc = lower_gate_level(nl, Tech{});
  const double dmin = min_sized_delay(lc.net);
  const double floor_d = run_tilos(lc.net, 0.05 * dmin).achieved_delay;
  const double target = floor_d + 0.3 * (dmin - floor_d);
  const MinflotransitResult r = run_minflotransit(lc.net, target);
  ASSERT_TRUE(r.initial.met_target);
  EXPECT_TRUE(r.met_target);
  EXPECT_LE(r.area, r.initial.area * (1 + 1e-9));
  EXPECT_LE(r.delay, target * (1 + 1e-9));
}

TEST_P(SeededProperty, BenchRoundTripPreservesFunction) {
  Netlist nl = random_circuit(GetParam());
  Netlist back = read_bench_string(write_bench_string(nl), "rt");
  ASSERT_EQ(back.num_inputs(), nl.num_inputs());
  Rng rng(GetParam() ^ 0xF00D);
  for (int vec = 0; vec < 10; ++vec) {
    std::vector<bool> in(static_cast<std::size_t>(nl.num_inputs()));
    for (std::size_t i = 0; i < in.size(); ++i) in[i] = rng.flip(0.5);
    EXPECT_EQ(nl.evaluate(in), back.evaluate(in)) << "vector " << vec;
  }
}

TEST_P(SeededProperty, TransistorLoweringConservesStructure) {
  Netlist nl = tech_map_to_primitives(random_circuit(GetParam()));
  LoweredCircuit lc = lower_transistor_level(nl, Tech{});
  // Vertex count: every primitive gate contributes 2 transistors per input.
  int expect = nl.num_inputs();
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const Gate& gate = nl.gate(g);
    if (gate.kind != GateKind::kInput)
      expect += 2 * static_cast<int>(gate.fanins.size());
  }
  EXPECT_EQ(lc.net.num_vertices(), expect);
  const TimingReport t = run_sta(lc.net, lc.net.min_sizes());
  EXPECT_TRUE(t.safe(lc.net));
  EXPECT_GT(t.critical_path, 0.0);
}

}  // namespace
}  // namespace mft
