// Randomized property tests over the whole stack, parameterized by seed
// (TEST_P sweeps): monotonicity laws of the Elmore IR, W-phase optimality
// laws (idempotence, least-fixpoint dominance), D-phase safety laws
// (non-negative objective, causality preservation), and TILOS dominance.
#include <gtest/gtest.h>

#include "gen/blocks.h"
#include "lp/dense_simplex.h"
#include "mcf/network_simplex.h"
#include "mcf/ssp.h"
#include "netlist/bench_io.h"
#include "sizing/minflotransit.h"
#include "timing/delay_balance.h"
#include "timing/lowering.h"
#include "util/rng.h"

namespace mft {
namespace {

Netlist random_circuit(std::uint64_t seed) {
  RandomLogicParams p;
  Rng rng(seed);
  p.num_inputs = rng.uniform_int(6, 20);
  p.num_gates = rng.uniform_int(40, 240);
  p.seed = seed * 977 + 1;
  return make_random_logic(p);
}

class SeededProperty : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

TEST_P(SeededProperty, UpsizingIsMonotoneInTheElmoreModel) {
  Netlist nl = random_circuit(GetParam());
  LoweredCircuit lc = lower_gate_level(nl, Tech{});
  Rng rng(GetParam() ^ 0xABCD);
  std::vector<double> x = lc.net.min_sizes();
  for (NodeId v = 0; v < lc.net.num_vertices(); ++v)
    if (!lc.net.is_source(v))
      x[static_cast<std::size_t>(v)] = rng.uniform(1.0, 8.0);

  for (int trial = 0; trial < 25; ++trial) {
    NodeId v = static_cast<NodeId>(rng.index(
        static_cast<std::size_t>(lc.net.num_vertices())));
    if (lc.net.is_source(v)) continue;
    const double own_before = lc.net.delay(v, x);
    std::vector<double> upstream_before;
    for (const LoadTerm& t : lc.net.reverse_loads()[static_cast<std::size_t>(v)])
      upstream_before.push_back(lc.net.delay(t.vertex, x));

    auto y = x;
    y[static_cast<std::size_t>(v)] *= 1.5;
    // Own delay can only drop; every loading driver can only slow down.
    EXPECT_LE(lc.net.delay(v, y), own_before + 1e-12);
    std::size_t k = 0;
    for (const LoadTerm& t : lc.net.reverse_loads()[static_cast<std::size_t>(v)])
      EXPECT_GE(lc.net.delay(t.vertex, y), upstream_before[k++] - 1e-12);
  }
}

TEST_P(SeededProperty, CriticalPathIsMaxOverAllPathSums) {
  Netlist nl = random_circuit(GetParam());
  LoweredCircuit lc = lower_gate_level(nl, Tech{});
  const auto x = lc.net.min_sizes();
  const TimingReport t = run_sta(lc.net, x);
  // Random downstream walks can never beat the reported CP.
  Rng rng(GetParam() ^ 0x77);
  const Digraph& g = lc.net.dag();
  for (int walk = 0; walk < 30; ++walk) {
    const auto sources = g.sources();
    NodeId v = sources[rng.index(sources.size())];
    double sum = 0.0;
    while (true) {
      sum += t.delay[static_cast<std::size_t>(v)];
      if (g.out_degree(v) == 0) break;
      v = g.head(g.out_arcs(v)[rng.index(
          static_cast<std::size_t>(g.out_degree(v)))]);
    }
    EXPECT_LE(sum, t.critical_path + 1e-9);
  }
  // And the reconstructed critical path realizes it exactly.
  double cp = 0.0;
  for (NodeId v : t.critical_vertices(lc.net))
    cp += t.delay[static_cast<std::size_t>(v)];
  EXPECT_NEAR(cp, t.critical_path, 1e-9);
}

TEST_P(SeededProperty, WPhaseIsIdempotent) {
  Netlist nl = random_circuit(GetParam());
  LoweredCircuit lc = lower_gate_level(nl, Tech{});
  const double dmin = min_sized_delay(lc.net);
  const TilosResult tilos = run_tilos(lc.net, 0.8 * dmin);
  ASSERT_TRUE(tilos.met_target);
  std::vector<double> budget(static_cast<std::size_t>(lc.net.num_vertices()));
  for (NodeId v = 0; v < lc.net.num_vertices(); ++v)
    budget[static_cast<std::size_t>(v)] = lc.net.delay(v, tilos.sizes);
  const WPhaseResult once = solve_wphase(lc.net, budget);
  ASSERT_TRUE(once.feasible);
  // Re-deriving budgets from the fixpoint and re-solving changes nothing:
  // the W-phase output is self-consistent (it IS the least fixpoint).
  std::vector<double> budget2(static_cast<std::size_t>(lc.net.num_vertices()));
  for (NodeId v = 0; v < lc.net.num_vertices(); ++v)
    budget2[static_cast<std::size_t>(v)] =
        std::max(budget[static_cast<std::size_t>(v)],
                 lc.net.delay(v, once.sizes));
  const WPhaseResult twice = solve_wphase(lc.net, budget2);
  ASSERT_TRUE(twice.feasible);
  for (NodeId v = 0; v < lc.net.num_vertices(); ++v)
    EXPECT_NEAR(twice.sizes[static_cast<std::size_t>(v)],
                once.sizes[static_cast<std::size_t>(v)], 1e-6);
}

TEST_P(SeededProperty, DPhaseBudgetsRemainRealizableAndSafe) {
  Netlist nl = random_circuit(GetParam());
  LoweredCircuit lc = lower_gate_level(nl, Tech{});
  const double dmin = min_sized_delay(lc.net);
  const TilosResult tilos = run_tilos(lc.net, 0.75 * dmin);
  ASSERT_TRUE(tilos.met_target);
  for (BalanceMode mode : {BalanceMode::kAsap, BalanceMode::kAlap}) {
    DPhaseOptions opt;
    opt.balance = mode;
    const DPhaseResult d = run_dphase(lc.net, tilos.sizes, opt);
    ASSERT_TRUE(d.solved);
    EXPECT_GE(d.objective, -1e-9);
    const WPhaseResult w = solve_wphase(lc.net, d.budget);
    ASSERT_TRUE(w.feasible);
    const TimingReport t = run_sta(lc.net, w.sizes);
    EXPECT_LE(t.critical_path, tilos.achieved_delay * (1 + 1e-6));
    EXPECT_TRUE(t.safe(lc.net));
  }
}

TEST_P(SeededProperty, MinflotransitDominatesTilos) {
  Netlist nl = random_circuit(GetParam());
  LoweredCircuit lc = lower_gate_level(nl, Tech{});
  const double dmin = min_sized_delay(lc.net);
  const double floor_d = run_tilos(lc.net, 0.05 * dmin).achieved_delay;
  const double target = floor_d + 0.3 * (dmin - floor_d);
  const MinflotransitResult r = run_minflotransit(lc.net, target);
  ASSERT_TRUE(r.initial.met_target);
  EXPECT_TRUE(r.met_target);
  EXPECT_LE(r.area, r.initial.area * (1 + 1e-9));
  EXPECT_LE(r.delay, target * (1 + 1e-9));
}

TEST_P(SeededProperty, BenchRoundTripPreservesFunction) {
  Netlist nl = random_circuit(GetParam());
  Netlist back = read_bench_string(write_bench_string(nl), "rt");
  ASSERT_EQ(back.num_inputs(), nl.num_inputs());
  Rng rng(GetParam() ^ 0xF00D);
  for (int vec = 0; vec < 10; ++vec) {
    std::vector<bool> in(static_cast<std::size_t>(nl.num_inputs()));
    for (std::size_t i = 0; i < in.size(); ++i) in[i] = rng.flip(0.5);
    EXPECT_EQ(nl.evaluate(in), back.evaluate(in)) << "vector " << vec;
  }
}

// Small random MCF instance, feasible by construction (supplies are the
// imbalance of a random sub-capacity flow) and bounded (uncapacitated arcs
// carry nonnegative cost, so no uncapacitated negative cycle exists).
McfProblem random_mcf(std::uint64_t seed, int max_nodes) {
  Rng rng(seed);
  const int n = rng.uniform_int(2, max_nodes);
  McfProblem p(n);
  const int m = rng.uniform_int(n, 3 * n);
  for (int i = 0; i < m; ++i) {
    const NodeId t = static_cast<NodeId>(rng.index(static_cast<std::size_t>(n)));
    NodeId h = static_cast<NodeId>(rng.index(static_cast<std::size_t>(n)));
    if (h == t) h = (h + 1) % n;
    const Flow cap = rng.flip(0.35) ? kInfFlow : rng.uniform_int(0, 30);
    const Cost cost = rng.uniform_int(cap == kInfFlow ? 0 : -15, 40);
    p.add_arc(t, h, cap, cost);
  }
  for (ArcId a = 0; a < p.num_arcs(); ++a) {
    const McfArc& arc = p.arc(a);
    if (arc.capacity == 0) continue;
    const Flow f = arc.capacity == kInfFlow
                       ? rng.uniform_int(0, 10)
                       : rng.uniform_int(0, static_cast<int>(arc.capacity));
    p.add_supply(arc.tail, f);
    p.add_supply(arc.head, -f);
  }
  return p;
}

// Solves the LP dual of `p` with the dense simplex (a completely
// independent algorithmic lineage):
//     max Σ supply(v)·π(v) − Σ_{finite a} cap(a)·z(a)
//     s.t. π(tail) − π(head) − [z(a)] ≤ cost(a),  z ≥ 0,  π(0) = 0
// By strong duality its optimum equals the min-cost-flow optimum.
double dense_dual_objective(const McfProblem& p, bool* solved) {
  std::vector<int> zvar(static_cast<std::size_t>(p.num_arcs()), -1);
  int nz = 0;
  for (ArcId a = 0; a < p.num_arcs(); ++a)
    if (p.arc(a).capacity != kInfFlow)
      zvar[static_cast<std::size_t>(a)] = p.num_nodes() + nz++;
  DenseLp lp(p.num_nodes() + nz);
  for (NodeId v = 0; v < p.num_nodes(); ++v)
    lp.set_objective(v, static_cast<double>(p.supply(v)));
  lp.add_bounds(0, 0.0, 0.0);  // pin the dual's translation freedom
  for (ArcId a = 0; a < p.num_arcs(); ++a) {
    const McfArc& arc = p.arc(a);
    std::vector<double> row(static_cast<std::size_t>(lp.num_vars()), 0.0);
    row[static_cast<std::size_t>(arc.tail)] += 1.0;
    row[static_cast<std::size_t>(arc.head)] -= 1.0;
    const int z = zvar[static_cast<std::size_t>(a)];
    if (z >= 0) {
      row[static_cast<std::size_t>(z)] = -1.0;
      lp.set_objective(z, -static_cast<double>(arc.capacity));
      std::vector<double> pos(static_cast<std::size_t>(lp.num_vars()), 0.0);
      pos[static_cast<std::size_t>(z)] = -1.0;
      lp.add_row(pos, 0.0);  // z >= 0
    }
    lp.add_row(row, static_cast<double>(arc.cost));
  }
  const auto sol = lp.solve();
  *solved = sol.has_value();
  return sol ? sol->objective : 0.0;
}

TEST(CrossSolverAgreement, AllSolversAndTheDenseDualAgree) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const McfProblem p = random_mcf(seed, 12);
    const McfSolution ns = solve_network_simplex(p);
    const McfSolution ssp = solve_ssp(p);
    const McfSolution cc = solve_cycle_canceling(p);
    ASSERT_EQ(ns.status, McfStatus::kOptimal) << "seed " << seed;
    ASSERT_EQ(ssp.status, McfStatus::kOptimal) << "seed " << seed;
    ASSERT_EQ(cc.status, McfStatus::kOptimal) << "seed " << seed;
    EXPECT_EQ(ns.total_cost, ssp.total_cost) << "seed " << seed;
    EXPECT_EQ(ns.total_cost, cc.total_cost) << "seed " << seed;
    std::string why;
    EXPECT_TRUE(check_flow_optimal(p, ns, &why)) << "seed " << seed << ": " << why;

    bool lp_solved = false;
    const double dual = dense_dual_objective(p, &lp_solved);
    ASSERT_TRUE(lp_solved) << "seed " << seed;
    EXPECT_NEAR(dual, static_cast<double>(ns.total_cost), 1e-6)
        << "seed " << seed;
  }
}

TEST(CrossSolverAgreement, StatusClassificationMatchesTheSspOracle) {
  // Larger random instances with arbitrary balanced supplies: routing may
  // be impossible, and the simplex must classify exactly like SSP.
  int non_optimal = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    Rng rng(seed * 131 + 7);
    const int n = rng.uniform_int(3, 20);
    McfProblem p(n);
    const int m = rng.uniform_int(2, 2 * n);
    for (int i = 0; i < m; ++i) {
      const NodeId t = static_cast<NodeId>(rng.index(static_cast<std::size_t>(n)));
      NodeId h = static_cast<NodeId>(rng.index(static_cast<std::size_t>(n)));
      if (h == t) h = (h + 1) % n;
      p.add_arc(t, h, rng.flip(0.5) ? kInfFlow : rng.uniform_int(0, 25),
                rng.uniform_int(0, 30));
    }
    Flow pushed = 0;
    for (NodeId v = 0; v + 1 < n; ++v) {
      const Flow s = rng.uniform_int(-8, 8);
      p.add_supply(v, s);
      pushed += s;
    }
    p.add_supply(n - 1, -pushed);
    const McfSolution ns = solve_network_simplex(p);
    const McfSolution ssp = solve_ssp(p);
    EXPECT_EQ(ns.status, ssp.status) << "seed " << seed;
    if (ns.status != McfStatus::kOptimal) ++non_optimal;
    if (ns.status == McfStatus::kOptimal) {
      EXPECT_EQ(ns.total_cost, ssp.total_cost) << "seed " << seed;
    }
  }
  // The sweep must actually exercise the non-optimal classifications.
  EXPECT_GT(non_optimal, 0);

  // Unboundedness: an uncapacitated negative cycle.
  McfProblem cyc(3);
  cyc.add_arc(0, 1, kInfFlow, -5);
  cyc.add_arc(1, 2, kInfFlow, 1);
  cyc.add_arc(2, 0, kInfFlow, 1);
  EXPECT_EQ(solve_network_simplex(cyc).status, McfStatus::kUnbounded);
  EXPECT_EQ(solve_ssp(cyc).status, McfStatus::kUnbounded);
}

TEST_P(SeededProperty, TransistorLoweringConservesStructure) {
  Netlist nl = tech_map_to_primitives(random_circuit(GetParam()));
  LoweredCircuit lc = lower_transistor_level(nl, Tech{});
  // Vertex count: every primitive gate contributes 2 transistors per input.
  int expect = nl.num_inputs();
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const Gate& gate = nl.gate(g);
    if (gate.kind != GateKind::kInput)
      expect += 2 * static_cast<int>(gate.fanins.size());
  }
  EXPECT_EQ(lc.net.num_vertices(), expect);
  const TimingReport t = run_sta(lc.net, lc.net.min_sizes());
  EXPECT_TRUE(t.safe(lc.net));
  EXPECT_GT(t.critical_path, 0.0);
}

}  // namespace
}  // namespace mft
