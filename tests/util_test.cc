// Tests for util: checks, strings, tables, RNG determinism.
#include <gtest/gtest.h>

#include "util/check.h"
#include "util/rng.h"
#include "util/str.h"
#include "util/table.h"

namespace mft {
namespace {

TEST(Check, ThrowsWithContext) {
  try {
    MFT_CHECK_MSG(1 == 2, "custom " << 42);
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom 42"), std::string::npos);
  }
}

TEST(Str, TrimAndSplit) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim(""), "");
  auto parts = split(" a, b ,, c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
  auto kept = split("a,,b", ',', /*keep_empty=*/true);
  EXPECT_EQ(kept.size(), 3u);
}

TEST(Str, StartsWithAndUpper) {
  EXPECT_TRUE(starts_with("INPUT(a)", "INPUT"));
  EXPECT_FALSE(starts_with("IN", "INPUT"));
  EXPECT_EQ(to_upper("nand2"), "NAND2");
}

TEST(Str, Strf) {
  EXPECT_EQ(strf("%d-%s-%.2f", 3, "x", 1.5), "3-x-1.50");
  EXPECT_EQ(strf("empty"), "empty");
}

TEST(Table, AlignedTextAndCsv) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22"});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("| name"), std::string::npos);
  EXPECT_NE(text.find("long-name"), std::string::npos);
  EXPECT_EQ(t.to_csv(), "name,value\na,1\nlong-name,22\n");
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
}

TEST(Rng, RangesRespected) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    const double d = rng.uniform(0.5, 1.5);
    EXPECT_GE(d, 0.5);
    EXPECT_LT(d, 1.5);
    const int g = rng.decaying_int(1, 4, 0.5);
    EXPECT_GE(g, 1);
    EXPECT_LE(g, 4);
  }
}

}  // namespace
}  // namespace mft
