// Validates the difference-constraint dual LP (the D-phase reduction,
// eq. (10)) against hand solutions and against the independent dense
// simplex oracle in src/lp.
#include <gtest/gtest.h>

#include <cmath>

#include "lp/dense_simplex.h"
#include "mcf/dual_lp.h"
#include "util/rng.h"

namespace mft {
namespace {

constexpr double kTol = 1e-3;  // decimal-scaling quantum is 1e-4

TEST(DualFlowLp, SingleChainMovesSlackToWeightedVertex) {
  // Variables: g (ground), a, b. Maximize 2*(a-g) + 1*(b-a)
  // s.t. a-g <= 3, b-a <= 4, g-b >= -10 i.e. b-g <= 10 overall via g-b <= ...
  DualFlowLp lp(3);
  lp.fix_zero(0);
  lp.add_constraint(1, 0, 3.0);   // a <= 3
  lp.add_constraint(2, 1, 4.0);   // b - a <= 4
  lp.add_constraint(0, 2, 0.0);   // -b <= 0  => b >= 0
  lp.add_objective_difference(1, 0, 2.0);
  lp.add_objective_difference(2, 1, 1.0);
  auto res = lp.solve();
  ASSERT_TRUE(res.solved);
  // a wants to be max (coeff of a in expanded objective is 2-1=1 >0), b max.
  EXPECT_NEAR(res.r[1], 3.0, kTol);
  EXPECT_NEAR(res.r[2], 7.0, kTol);
  EXPECT_NEAR(res.objective, 2 * 3 + 1 * 4, 10 * kTol);
}

TEST(DualFlowLp, GroundedVariablesStayZero) {
  DualFlowLp lp(4);
  lp.fix_zero(0);
  lp.fix_zero(3);
  lp.add_constraint(1, 0, 5.0);
  lp.add_constraint(2, 1, 1.0);
  lp.add_constraint(3, 2, 2.0);  // 0 - r2 <= 2 => r2 >= -2
  lp.add_objective_difference(2, 1, 1.0);
  auto res = lp.solve();
  ASSERT_TRUE(res.solved);
  EXPECT_EQ(res.r[0], 0.0);
  EXPECT_EQ(res.r[3], 0.0);
  // r2 - r1 maximal: r2 can rise until r2 >= -2... r2 - r1 <= 1 binds with
  // r1 as low as possible. r1 has only upper constraints; flow duality
  // keeps it finite through the objective-balance: optimum is r2-r1 = 1.
  EXPECT_NEAR(res.r[2] - res.r[1], 1.0, kTol);
}

TEST(DualFlowLp, InfeasibleFlowMeansUnboundedLp) {
  // maximize r1 with only upper-bounding constraint in the wrong direction:
  // r1 unbounded above => dual flow infeasible.
  DualFlowLp lp(2);
  lp.fix_zero(0);
  lp.add_constraint(0, 1, 0.0);  // -r1 <= 0, no upper bound on r1
  lp.add_objective_difference(1, 0, 1.0);
  auto res = lp.solve();
  EXPECT_FALSE(res.solved);
  EXPECT_EQ(res.flow_status, McfStatus::kInfeasible);
}

TEST(DualFlowLp, ReturnedSolutionNeverViolatesTrueConstraints) {
  // Conservative floor-rounding must keep r feasible for the *real* w.
  Rng rng(7);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = rng.uniform_int(3, 10);
    DualFlowLp lp(n);
    lp.fix_zero(0);
    struct C {
      int a, b;
      double w;
    };
    std::vector<C> cs;
    // A ring of constraints guarantees boundedness in both directions.
    for (int v = 1; v < n; ++v) {
      cs.push_back({v, v - 1, rng.uniform(0.0, 5.0)});
      cs.push_back({v - 1, v, rng.uniform(0.0, 5.0)});
    }
    for (const C& c : cs) lp.add_constraint(c.a, c.b, c.w);
    for (int v = 1; v < n; ++v)
      lp.add_objective_difference(v, rng.uniform_int(0, v - 1),
                                  rng.uniform(0.1, 3.0));
    auto res = lp.solve();
    ASSERT_TRUE(res.solved) << "trial " << trial;
    for (const C& c : cs)
      EXPECT_LE(res.r[c.a] - res.r[c.b], c.w + 1e-9)
          << "trial " << trial << " constraint " << c.a << "-" << c.b;
  }
}

TEST(DualFlowLp, AllThreeFlowSolversAgreeOnObjective) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = rng.uniform_int(4, 12);
    DualFlowLp lp(n);
    lp.fix_zero(0);
    for (int v = 1; v < n; ++v) {
      lp.add_constraint(v, v - 1, rng.uniform(0.0, 4.0));
      lp.add_constraint(v - 1, v, rng.uniform(0.0, 4.0));
    }
    for (int e = 0; e < n; ++e) {
      int a = rng.uniform_int(0, n - 1), b = rng.uniform_int(0, n - 1);
      if (a != b) lp.add_constraint(a, b, rng.uniform(0.0, 6.0));
    }
    for (int v = 1; v < n; ++v)
      lp.add_objective_difference(v, v - 1, rng.uniform(0.1, 2.0));
    auto ns = lp.solve(FlowSolver::kNetworkSimplex);
    auto ssp = lp.solve(FlowSolver::kSsp);
    auto cc = lp.solve(FlowSolver::kCycleCanceling);
    ASSERT_TRUE(ns.solved);
    ASSERT_TRUE(ssp.solved);
    ASSERT_TRUE(cc.solved);
    EXPECT_NEAR(ns.objective, ssp.objective, 1e-6) << "trial " << trial;
    EXPECT_NEAR(ns.objective, cc.objective, 1e-6) << "trial " << trial;
  }
}

// The decisive test: the flow-dual optimum must equal the optimum computed
// by a dense simplex with a completely independent implementation.
TEST(DualFlowLp, MatchesDenseSimplexOracleOnRandomInstances) {
  Rng rng(31337);
  for (int trial = 0; trial < 25; ++trial) {
    const int n = rng.uniform_int(3, 8);
    DualFlowLp lp(n);
    DenseLp oracle(n);
    lp.fix_zero(0);
    oracle.add_bounds(0, 0.0, 0.0);

    // Ring constraints for boundedness + random chords. Use one-decimal
    // weights so decimal scaling is exact and the comparison is tight.
    auto add = [&](int a, int b, double w) {
      lp.add_constraint(a, b, w);
      std::vector<double> row(static_cast<std::size_t>(n), 0.0);
      row[static_cast<std::size_t>(a)] = 1.0;
      row[static_cast<std::size_t>(b)] = -1.0;
      oracle.add_row(row, w);
    };
    for (int v = 1; v < n; ++v) {
      add(v, v - 1, 0.1 * rng.uniform_int(0, 50));
      add(v - 1, v, 0.1 * rng.uniform_int(0, 50));
    }
    for (int e = 0; e < n; ++e) {
      int a = rng.uniform_int(0, n - 1), b = rng.uniform_int(0, n - 1);
      if (a != b) add(a, b, 0.1 * rng.uniform_int(0, 80));
    }
    std::vector<double> c(static_cast<std::size_t>(n), 0.0);
    for (int v = 1; v < n; ++v) {
      const double coeff = 0.5 * rng.uniform_int(1, 6);
      const int minus = rng.uniform_int(0, v - 1);
      lp.add_objective_difference(v, minus, coeff);
      c[static_cast<std::size_t>(v)] += coeff;
      c[static_cast<std::size_t>(minus)] -= coeff;
    }
    for (int v = 0; v < n; ++v) oracle.set_objective(v, c[static_cast<std::size_t>(v)]);

    auto flow_res = lp.solve();
    auto lp_res = oracle.solve();
    ASSERT_TRUE(flow_res.solved) << "trial " << trial;
    ASSERT_TRUE(lp_res.has_value()) << "trial " << trial;
    EXPECT_NEAR(flow_res.objective, lp_res->objective, 1e-6)
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace mft
