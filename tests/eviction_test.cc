// Eviction property tests (tier1) for the engine's shared LRU policy
// (util/lru.h, JobRunnerOptions::context_cache_limit):
//
//  - LruCache unit laws: the capacity bound, LRU victim order, MRU touch
//    on find, insert-overwrite, set_capacity trimming, unbounded mode.
//  - Context pools never exceed the configured limit (per worker), and
//    eviction never changes results — a SizingContext is pure cache, so a
//    serial-keyed rebuild after eviction must land on the identical
//    solution (the serial-guard correctness property).
//  - The batch runner's cross-run() Dmin/min-area cache (the PR-4
//    repeat-batch optimization) under the same bound: thrashing it across
//    batches forces recomputation but can never change dmin, targets, or
//    solutions.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/runner.h"
#include "engine/stream.h"
#include "gen/blocks.h"
#include "gen/tiled.h"
#include "sizing/shard.h"
#include "sizing/tilos.h"
#include "timing/lowering.h"
#include "util/lru.h"

namespace mft {
namespace {

LoweredCircuit lower(const Netlist& nl) {
  return lower_gate_level(nl, Tech{});
}

// ---------------------------------------------------------------------------
// LruCache
// ---------------------------------------------------------------------------

TEST(LruCache, UnboundedByDefault) {
  LruCache<int, int> cache;
  for (int i = 0; i < 1000; ++i) cache.insert(i, i * i);
  EXPECT_EQ(cache.size(), 1000u);
  EXPECT_EQ(cache.evictions(), 0);
  ASSERT_NE(cache.find(0), nullptr);
  EXPECT_EQ(*cache.find(999), 999 * 999);
}

TEST(LruCache, CapacityBoundsSizeAndEvictsLeastRecentlyUsed) {
  LruCache<int, std::string> cache(3);
  cache.insert(1, "a");
  cache.insert(2, "b");
  cache.insert(3, "c");
  EXPECT_EQ(cache.size(), 3u);
  cache.insert(4, "d");  // evicts 1 (LRU)
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_EQ(cache.find(1), nullptr);
  ASSERT_NE(cache.find(2), nullptr);  // 2 is now MRU
  cache.insert(5, "e");               // evicts 3, not the just-touched 2
  EXPECT_EQ(cache.find(3), nullptr);
  ASSERT_NE(cache.find(2), nullptr);
  ASSERT_NE(cache.find(4), nullptr);
  ASSERT_NE(cache.find(5), nullptr);
}

TEST(LruCache, FindTouchesAndInsertOverwritesWithoutGrowth) {
  LruCache<int, int> cache(2);
  cache.insert(1, 10);
  cache.insert(2, 20);
  ASSERT_NE(cache.find(1), nullptr);  // 1 becomes MRU
  cache.insert(1, 11);                // overwrite, no eviction
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 0);
  EXPECT_EQ(*cache.find(1), 11);
  cache.insert(3, 30);  // evicts 2 (1 was touched twice)
  EXPECT_EQ(cache.find(2), nullptr);
  ASSERT_NE(cache.find(1), nullptr);
}

TEST(LruCache, SetCapacityTrimsFromTheLruEnd) {
  LruCache<int, int> cache;
  for (int i = 0; i < 6; ++i) cache.insert(i, i);
  cache.set_capacity(2);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 4);
  ASSERT_NE(cache.find(5), nullptr);  // the two most recent survive
  ASSERT_NE(cache.find(4), nullptr);
  EXPECT_EQ(cache.find(3), nullptr);
}

// ---------------------------------------------------------------------------
// Context-pool eviction through the streaming runner
// ---------------------------------------------------------------------------

/// Four distinct small networks with interleaved jobs: any bounded pool
/// must evict while the job stream cycles through them.
struct EvictionFixture {
  LoweredCircuit a = lower(make_c17());
  LoweredCircuit b = lower(make_ripple_adder(4));
  LoweredCircuit c = lower(make_ripple_adder(6));
  LoweredCircuit d = lower(make_comparator(4));
  std::vector<const SizingNetwork*> networks{&a.net, &b.net, &c.net, &d.net};
  std::vector<SizingJob> jobs;

  EvictionFixture() {
    for (int i = 0; i < 12; ++i) {
      SizingJob job;
      job.network = i % 4;
      job.target_ratio = 0.85 - 0.02 * (i / 4);
      job.label = "ev" + std::to_string(i);
      jobs.push_back(std::move(job));
    }
  }

  std::vector<JobResult> stream_all(int workers, int limit,
                                    StreamStats* stats = nullptr) {
    JobRunnerOptions opt;
    opt.threads = workers;
    opt.context_cache_limit = limit;
    StreamingRunner stream(opt);
    std::vector<JobTicket> tickets;
    for (const SizingJob& job : jobs)
      tickets.push_back(stream.submit(
          *networks[static_cast<std::size_t>(job.network)], job));
    std::vector<JobResult> out;
    for (const JobTicket t : tickets) out.push_back(stream.wait(t));
    stream.shutdown();  // workers publish their pool stats on exit
    if (stats != nullptr) *stats = stream.stats();
    return out;
  }
};

TEST(ContextEviction, PoolNeverExceedsTheLimitAndActuallyEvicts) {
  EvictionFixture f;
  StreamStats stats;
  const std::vector<JobResult> results = f.stream_all(1, 2, &stats);
  for (const JobResult& r : results) ASSERT_TRUE(r.ok) << r.error;
  // One worker saw all 4 networks under a 2-context bound: the pool
  // peaked exactly at the limit and evicted at least once per extra
  // network visit.
  EXPECT_EQ(stats.context_peak_per_worker, 2u);
  EXPECT_GE(stats.context_evictions, 2);
  EXPECT_EQ(stats.context_hits + stats.context_misses,
            static_cast<std::int64_t>(f.jobs.size()));

  StreamStats unbounded;
  const std::vector<JobResult> free_results = f.stream_all(1, 0, &unbounded);
  EXPECT_EQ(unbounded.context_peak_per_worker, 4u);  // one per network
  EXPECT_EQ(unbounded.context_evictions, 0);
  (void)free_results;
}

TEST(ContextEviction, EvictionNeverChangesResults) {
  EvictionFixture f;
  const std::vector<JobResult> unbounded = f.stream_all(2, 0);
  for (int limit : {1, 2, 3}) {
    SCOPED_TRACE("limit=" + std::to_string(limit));
    const std::vector<JobResult> bounded = f.stream_all(2, limit);
    ASSERT_EQ(bounded.size(), unbounded.size());
    for (std::size_t i = 0; i < unbounded.size(); ++i) {
      SCOPED_TRACE(f.jobs[i].label);
      ASSERT_TRUE(bounded[i].ok) << bounded[i].error;
      EXPECT_EQ(bounded[i].seed, unbounded[i].seed);
      EXPECT_EQ(bounded[i].dmin, unbounded[i].dmin);
      EXPECT_EQ(bounded[i].target, unbounded[i].target);
      // Serial-guard correctness: a context rebuilt after eviction lands
      // on the bit-identical solution.
      ASSERT_EQ(bounded[i].result.sizes, unbounded[i].result.sizes);
      EXPECT_EQ(bounded[i].result.area, unbounded[i].result.area);
      EXPECT_EQ(bounded[i].result.delay, unbounded[i].result.delay);
    }
  }
}

// ---------------------------------------------------------------------------
// The batch runner's repeat-batch Dmin/min-area cache under eviction
// ---------------------------------------------------------------------------

TEST(InfoCacheEviction, RepeatBatchesStayBitIdenticalWhileTheCacheThrashes) {
  // PR-4 regression surface: JobRunner caches per-network Dmin/min-area
  // across run() calls. With a bound of 1 and two networks per batch the
  // cache evicts on every batch — recomputation must reproduce the exact
  // dmin (it is a pure function of the frozen network), so targets and
  // solutions never move.
  EvictionFixture f;
  const std::vector<const SizingNetwork*> nets = {f.networks[0],
                                                  f.networks[1]};
  std::vector<SizingJob> jobs(3);
  jobs[0].network = 0;
  jobs[0].target_ratio = 0.8;
  jobs[1].network = 1;
  jobs[1].target_ratio = 0.75;
  jobs[2].network = 0;
  jobs[2].target_ratio = 0.7;

  JobRunnerOptions unbounded_opt;
  unbounded_opt.threads = 2;
  const JobRunner unbounded(unbounded_opt);

  JobRunnerOptions bounded_opt;
  bounded_opt.threads = 2;
  bounded_opt.context_cache_limit = 1;
  const JobRunner bounded(bounded_opt);

  for (int batch = 0; batch < 3; ++batch) {
    SCOPED_TRACE("batch " + std::to_string(batch));
    const BatchResult x = unbounded.run(nets, jobs);
    const BatchResult y = bounded.run(nets, jobs);
    ASSERT_EQ(x.results.size(), y.results.size());
    for (std::size_t i = 0; i < x.results.size(); ++i) {
      ASSERT_TRUE(x.results[i].ok);
      ASSERT_TRUE(y.results[i].ok) << y.results[i].error;
      EXPECT_EQ(y.results[i].dmin, x.results[i].dmin);
      EXPECT_EQ(y.results[i].min_area, x.results[i].min_area);
      EXPECT_EQ(y.results[i].target, x.results[i].target);
      EXPECT_EQ(y.results[i].seed, x.results[i].seed);
      ASSERT_EQ(y.results[i].result.sizes, x.results[i].result.sizes);
    }
    EXPECT_LE(bounded.info_cache_size(), 1u);  // the bound holds...
  }
  EXPECT_EQ(unbounded.info_cache_size(), 2u);
  EXPECT_EQ(unbounded.info_cache_evictions(), 0);
  EXPECT_GE(bounded.info_cache_evictions(), 3);  // ...and actually bit
}

TEST(InfoCacheEviction, ShardedSolveIsUnchangedUnderATightContextBound) {
  // Reconciliation rebuilds dirty shard networks with fresh serials every
  // round — the workload the eviction policy exists for. A tight explicit
  // bound must not move a single bit of the solve.
  TiledDatapathParams p;
  p.lanes = 4;
  p.stages = 6;
  p.bits = 2;
  const LoweredCircuit lc = lower(make_tiled_datapath(p));
  const double target = 0.9 * min_sized_delay(lc.net);

  ShardOptions base;
  base.num_shards = 3;
  base.max_rounds = 2;
  base.options.max_iterations = 2;
  base.runner.threads = 2;
  const ShardSolveResult a = run_sharded_solve(lc.net, target, base);

  ShardOptions tight = base;
  tight.runner.context_cache_limit = 1;
  const ShardSolveResult b = run_sharded_solve(lc.net, target, tight);

  EXPECT_EQ(a.result.met_target, b.result.met_target);
  EXPECT_EQ(a.result.area, b.result.area);
  EXPECT_EQ(a.result.delay, b.result.delay);
  ASSERT_EQ(a.result.sizes, b.result.sizes);
  EXPECT_EQ(a.rounds.size(), b.rounds.size());
  EXPECT_EQ(a.shard_jobs, b.shard_jobs);
}

}  // namespace
}  // namespace mft
