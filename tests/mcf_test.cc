// Tests for the min-cost-flow library: hand-sized instances with known
// optima, status handling (infeasible / unbounded), and randomized
// cross-checks of all three solvers against each other and against the
// check_flow_optimal certificate.
#include <gtest/gtest.h>

#include "mcf/mcf.h"
#include "mcf/network_simplex.h"
#include "mcf/ssp.h"
#include "util/rng.h"

namespace mft {
namespace {

using Solver = McfSolution (*)(const McfProblem&);

McfSolution run_ns(const McfProblem& p) { return solve_network_simplex(p); }

const std::vector<std::pair<const char*, Solver>> kSolvers = {
    {"network-simplex", run_ns},
    {"ssp", solve_ssp},
    {"cycle-canceling", solve_cycle_canceling},
};

class AllSolvers : public ::testing::TestWithParam<std::pair<const char*, Solver>> {
 protected:
  Solver solver() const { return GetParam().second; }
};

INSTANTIATE_TEST_SUITE_P(Mcf, AllSolvers, ::testing::ValuesIn(kSolvers),
                         [](const auto& info) {
                           std::string n = info.param.first;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

TEST_P(AllSolvers, EmptyProblemIsOptimal) {
  McfProblem p(0);
  EXPECT_EQ(solver()(p).status, McfStatus::kOptimal);
}

TEST_P(AllSolvers, SingleArcRoutesSupply) {
  McfProblem p(2);
  p.add_arc(0, 1, 10, 3);
  p.set_supply(0, 7);
  p.set_supply(1, -7);
  McfSolution s = solver()(p);
  ASSERT_EQ(s.status, McfStatus::kOptimal);
  EXPECT_EQ(s.total_cost, 21);
  EXPECT_EQ(s.flow[0], 7);
  std::string why;
  EXPECT_TRUE(check_flow_optimal(p, s, &why)) << why;
}

TEST_P(AllSolvers, PrefersCheaperParallelArc) {
  McfProblem p(2);
  p.add_arc(0, 1, 5, 10);  // expensive
  p.add_arc(0, 1, 5, 1);   // cheap
  p.set_supply(0, 8);
  p.set_supply(1, -8);
  McfSolution s = solver()(p);
  ASSERT_EQ(s.status, McfStatus::kOptimal);
  // 5 units on the cheap arc, 3 on the expensive one.
  EXPECT_EQ(s.total_cost, 5 * 1 + 3 * 10);
  std::string why;
  EXPECT_TRUE(check_flow_optimal(p, s, &why)) << why;
}

TEST_P(AllSolvers, DiamondTakesShorterPath) {
  // 0 -> {1, 2} -> 3 with asymmetric path costs.
  McfProblem p(4);
  p.add_arc(0, 1, kInfFlow, 1);
  p.add_arc(1, 3, kInfFlow, 1);
  p.add_arc(0, 2, kInfFlow, 2);
  p.add_arc(2, 3, kInfFlow, 3);
  p.set_supply(0, 4);
  p.set_supply(3, -4);
  McfSolution s = solver()(p);
  ASSERT_EQ(s.status, McfStatus::kOptimal);
  EXPECT_EQ(s.total_cost, 4 * 2);
  EXPECT_EQ(s.flow[0], 4);
  EXPECT_EQ(s.flow[2], 0);
}

TEST_P(AllSolvers, CapacityForcesSplitAcrossPaths) {
  McfProblem p(4);
  p.add_arc(0, 1, 3, 1);
  p.add_arc(1, 3, 3, 1);
  p.add_arc(0, 2, kInfFlow, 2);
  p.add_arc(2, 3, kInfFlow, 3);
  p.set_supply(0, 5);
  p.set_supply(3, -5);
  McfSolution s = solver()(p);
  ASSERT_EQ(s.status, McfStatus::kOptimal);
  EXPECT_EQ(s.total_cost, 3 * 2 + 2 * 5);
  std::string why;
  EXPECT_TRUE(check_flow_optimal(p, s, &why)) << why;
}

TEST_P(AllSolvers, NegativeCostArcIsExploited) {
  // The cheapest route uses a negative arc even though it is longer.
  McfProblem p(3);
  p.add_arc(0, 1, 10, 4);
  p.add_arc(0, 2, 10, 2);
  p.add_arc(2, 1, 10, -3);
  p.set_supply(0, 6);
  p.set_supply(1, -6);
  McfSolution s = solver()(p);
  ASSERT_EQ(s.status, McfStatus::kOptimal);
  EXPECT_EQ(s.total_cost, 6 * (2 - 3));
  std::string why;
  EXPECT_TRUE(check_flow_optimal(p, s, &why)) << why;
}

TEST_P(AllSolvers, NegativeCycleWithCapacityIsCanceled) {
  // Zero supply; optimal flow circulates around the capacitated negative
  // cycle to harvest its cost.
  McfProblem p(3);
  p.add_arc(0, 1, 4, -2);
  p.add_arc(1, 2, 4, -1);
  p.add_arc(2, 0, 4, 1);
  McfSolution s = solver()(p);
  ASSERT_EQ(s.status, McfStatus::kOptimal);
  EXPECT_EQ(s.total_cost, 4 * (-2 - 1 + 1));
  std::string why;
  EXPECT_TRUE(check_flow_optimal(p, s, &why)) << why;
}

TEST_P(AllSolvers, DisconnectedSupplyIsInfeasible) {
  McfProblem p(4);
  p.add_arc(0, 1, kInfFlow, 1);
  p.add_arc(2, 3, kInfFlow, 1);
  p.set_supply(0, 5);
  p.set_supply(3, -5);
  EXPECT_EQ(solver()(p).status, McfStatus::kInfeasible);
}

TEST_P(AllSolvers, InsufficientCapacityIsInfeasible) {
  McfProblem p(2);
  p.add_arc(0, 1, 3, 1);
  p.set_supply(0, 5);
  p.set_supply(1, -5);
  EXPECT_EQ(solver()(p).status, McfStatus::kInfeasible);
}

TEST_P(AllSolvers, UnbalancedSupplyIsInfeasible) {
  McfProblem p(2);
  p.add_arc(0, 1, kInfFlow, 1);
  p.set_supply(0, 5);
  p.set_supply(1, -4);
  EXPECT_EQ(solver()(p).status, McfStatus::kInfeasible);
}

TEST_P(AllSolvers, UncapacitatedNegativeCycleIsUnbounded) {
  McfProblem p(2);
  p.add_arc(0, 1, kInfFlow, -1);
  p.add_arc(1, 0, kInfFlow, -1);
  EXPECT_EQ(solver()(p).status, McfStatus::kUnbounded);
}

TEST_P(AllSolvers, ZeroSupplyNonNegativeCostsGiveZeroFlow) {
  McfProblem p(3);
  p.add_arc(0, 1, 10, 1);
  p.add_arc(1, 2, 10, 0);
  McfSolution s = solver()(p);
  ASSERT_EQ(s.status, McfStatus::kOptimal);
  EXPECT_EQ(s.total_cost, 0);
}

// --- Randomized cross-checks -----------------------------------------------

McfProblem random_problem(Rng& rng, int n, int m, bool allow_negative,
                          bool uncapacitated) {
  McfProblem p(n);
  for (int i = 0; i < m; ++i) {
    const NodeId u = static_cast<NodeId>(rng.index(static_cast<std::size_t>(n)));
    NodeId v = static_cast<NodeId>(rng.index(static_cast<std::size_t>(n)));
    if (u == v) v = (v + 1) % n;
    const Cost c = allow_negative ? rng.uniform_int(-5, 20) : rng.uniform_int(0, 20);
    const Flow cap = uncapacitated ? kInfFlow : rng.uniform_int(0, 30);
    p.add_arc(u, v, cap, c);
  }
  // Balanced random supplies routed through random node pairs.
  for (int i = 0; i < n / 2; ++i) {
    const NodeId a = static_cast<NodeId>(rng.index(static_cast<std::size_t>(n)));
    const NodeId b = static_cast<NodeId>(rng.index(static_cast<std::size_t>(n)));
    const Flow s = rng.uniform_int(0, 10);
    p.add_supply(a, s);
    p.add_supply(b, -s);
  }
  return p;
}

TEST(McfCrossCheck, SolversAgreeOnRandomCapacitatedInstances) {
  Rng rng(20260613);
  int optimal_seen = 0;
  for (int trial = 0; trial < 60; ++trial) {
    McfProblem p = random_problem(rng, rng.uniform_int(3, 12),
                                  rng.uniform_int(4, 30),
                                  /*allow_negative=*/true,
                                  /*uncapacitated=*/false);
    McfSolution a = solve_network_simplex(p);
    McfSolution b = solve_ssp(p);
    McfSolution c = solve_cycle_canceling(p);
    ASSERT_EQ(a.status, b.status) << "trial " << trial;
    ASSERT_EQ(a.status, c.status) << "trial " << trial;
    if (a.status != McfStatus::kOptimal) continue;
    ++optimal_seen;
    EXPECT_EQ(a.total_cost, b.total_cost) << "trial " << trial;
    EXPECT_EQ(a.total_cost, c.total_cost) << "trial " << trial;
    std::string why;
    EXPECT_TRUE(check_flow_optimal(p, a, &why)) << "ns trial " << trial << ": " << why;
    EXPECT_TRUE(check_flow_optimal(p, b, &why)) << "ssp trial " << trial << ": " << why;
    EXPECT_TRUE(check_flow_optimal(p, c, &why)) << "cc trial " << trial << ": " << why;
  }
  // The generator must actually exercise the optimal path most of the time.
  EXPECT_GE(optimal_seen, 30);
}

TEST(McfCrossCheck, SolversAgreeOnRandomUncapacitatedInstances) {
  // Uncapacitated with non-negative costs: the exact shape the D-phase
  // reduction produces.
  Rng rng(98765);
  for (int trial = 0; trial < 60; ++trial) {
    McfProblem p = random_problem(rng, rng.uniform_int(3, 15),
                                  rng.uniform_int(4, 40),
                                  /*allow_negative=*/false,
                                  /*uncapacitated=*/true);
    McfSolution a = solve_network_simplex(p);
    McfSolution b = solve_ssp(p);
    ASSERT_EQ(a.status, b.status) << "trial " << trial;
    if (a.status != McfStatus::kOptimal) continue;
    EXPECT_EQ(a.total_cost, b.total_cost) << "trial " << trial;
    std::string why;
    EXPECT_TRUE(check_flow_optimal(p, a, &why)) << "trial " << trial << ": " << why;
  }
}

TEST(McfCrossCheck, LargerSparseInstancesStayConsistent) {
  Rng rng(4242);
  for (int trial = 0; trial < 8; ++trial) {
    McfProblem p = random_problem(rng, 120, 500, /*allow_negative=*/false,
                                  /*uncapacitated=*/false);
    McfSolution a = solve_network_simplex(p);
    McfSolution b = solve_ssp(p);
    ASSERT_EQ(a.status, b.status);
    if (a.status != McfStatus::kOptimal) continue;
    EXPECT_EQ(a.total_cost, b.total_cost);
    std::string why;
    EXPECT_TRUE(check_flow_optimal(p, a, &why)) << why;
  }
}

TEST(McfChecker, RejectsCorruptedFlow) {
  McfProblem p(2);
  p.add_arc(0, 1, 10, 3);
  p.set_supply(0, 7);
  p.set_supply(1, -7);
  McfSolution s = solve_network_simplex(p);
  ASSERT_EQ(s.status, McfStatus::kOptimal);
  s.flow[0] = 6;  // violates conservation
  EXPECT_FALSE(check_flow_optimal(p, s));
  s.flow[0] = 11;  // violates capacity
  EXPECT_FALSE(check_flow_optimal(p, s));
}

TEST(McfChecker, RejectsBadPotentials) {
  McfProblem p(2);
  p.add_arc(0, 1, 10, 3);
  p.set_supply(0, 7);
  p.set_supply(1, -7);
  McfSolution s = solve_network_simplex(p);
  ASSERT_EQ(s.status, McfStatus::kOptimal);
  s.potential[0] = s.potential[1] + 100;  // dual infeasible on arc 0->1
  EXPECT_FALSE(check_flow_optimal(p, s));
}

TEST(McfProblemApi, RejectsSelfLoopsAndBadNodes) {
  McfProblem p(2);
  EXPECT_THROW(p.add_arc(0, 0, 1, 1), CheckError);
  EXPECT_THROW(p.add_arc(0, 5, 1, 1), CheckError);
  EXPECT_THROW(p.add_arc(-1, 1, 1, 1), CheckError);
  EXPECT_THROW(p.add_arc(0, 1, -2, 1), CheckError);
}

}  // namespace
}  // namespace mft
