// ECO serving tests (tier1): the daemon's session lifecycle around
// resize(delta).
//
//  - Round trip: submit with "session":true → base result; a zero-delta
//    resize is a fixpoint whose sizes_hash equals the base result's hash
//    bit-for-bit; a load-edit resize re-solves and meets timing; release
//    ends the session and later resizes are refused.
//  - Ordering: a resize racing the still-queued base job is rejected
//    ("not ready"), and succeeds once the base result lands.
//  - Durability: a simulated crash (terminal resize results stripped from
//    the journal) re-runs the base job and re-applies the resize chain on
//    replay, reproducing bit-identical hashes; a second restart replays
//    the chain silently (results already journaled, nothing re-emitted).
#include <gtest/gtest.h>

#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "engine/daemon.h"
#include "gen/blocks.h"
#include "timing/lowering.h"
#include "util/journal.h"

namespace mft {
namespace {

std::string temp_path(const std::string& name) {
  const std::string p = ::testing::TempDir() + "/" + name;
  std::remove(p.c_str());
  return p;
}

/// Thread-safe capture of the daemon's emitted event lines.
struct Capture {
  std::mutex mu;
  std::vector<std::string> lines;
  SizingDaemon::Emit emit() {
    return [this](const std::string& l) {
      std::lock_guard<std::mutex> lock(mu);
      lines.push_back(l);
    };
  }
  std::vector<std::string> snapshot() {
    std::lock_guard<std::mutex> lock(mu);
    return lines;
  }
};

/// Raw token of `"key":<token>` in a flat JSON line ("" when absent).
std::string raw_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  std::size_t i = at + needle.size();
  if (i < line.size() && line[i] == '"') {
    const std::size_t end = line.find('"', i + 1);
    return line.substr(i + 1, end - i - 1);
  }
  std::size_t end = i;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  return line.substr(i, end - i);
}

/// The single line matching event==`event` and id==`id` ("" when absent).
std::string line_for(const std::vector<std::string>& lines,
                     const std::string& event, const std::string& id) {
  for (const std::string& l : lines)
    if (raw_field(l, "event") == event && raw_field(l, "id") == id) return l;
  return "";
}

std::string hash_for(const std::vector<std::string>& lines,
                     const std::string& id) {
  return raw_field(line_for(lines, "result", id), "sizes_hash");
}

/// A non-source vertex id of the daemon's lowered "c17" — the daemon uses
/// lower_gate_level(make_c17(), Tech{}) too, so ids line up exactly.
NodeId c17_gate_vertex() {
  const LoweredCircuit lc = lower_gate_level(make_c17(), Tech{});
  for (NodeId v = 0; v < lc.net.num_vertices(); ++v)
    if (!lc.net.is_source(v)) return v;
  return -1;
}

std::string session_submit(const std::string& id, const std::string& circuit,
                           double ratio) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "{\"op\":\"submit\",\"id\":\"%s\",\"circuit\":\"%s\","
                "\"ratio\":%.3f,\"session\":true}",
                id.c_str(), circuit.c_str(), ratio);
  return buf;
}

std::string resize_line(const std::string& id, const std::string& sid,
                        const std::string& extra = "") {
  return "{\"op\":\"resize\",\"id\":\"" + id + "\",\"session\":" + sid +
         extra + "}";
}

TEST(EcoSession, RoundTripFixpointLoadEditAndRelease) {
  Capture cap;
  DaemonOptions opt;
  opt.engine.threads = 1;
  SizingDaemon daemon(opt, cap.emit());

  daemon.handle_line(session_submit("base", "c17", 0.8));
  daemon.drain();
  std::vector<std::string> lines = cap.snapshot();
  const std::string accepted = line_for(lines, "accepted", "base");
  ASSERT_FALSE(accepted.empty());
  const std::string sid = raw_field(accepted, "session");
  ASSERT_FALSE(sid.empty());
  const std::string base_hash = hash_for(lines, "base");
  ASSERT_FALSE(base_hash.empty());

  // Zero delta: the fixpoint contract, exposed end to end as hash equality.
  daemon.handle_line(resize_line("fp", sid));
  lines = cap.snapshot();
  const std::string fp = line_for(lines, "result", "fp");
  ASSERT_FALSE(fp.empty());
  EXPECT_EQ(raw_field(fp, "ok"), "true");
  EXPECT_EQ(raw_field(fp, "mode"), "fixpoint");
  EXPECT_EQ(raw_field(fp, "dirty"), "0");
  EXPECT_EQ(raw_field(fp, "sizes_hash"), base_hash);

  // A real delta: bump one gate's constant load, re-solve, meet timing.
  const std::string loads =
      ",\"loads\":\"" + std::to_string(c17_gate_vertex()) + ":0.05\"";
  daemon.handle_line(resize_line("edit", sid, loads));
  lines = cap.snapshot();
  const std::string edit = line_for(lines, "result", "edit");
  ASSERT_FALSE(edit.empty());
  EXPECT_EQ(raw_field(edit, "ok"), "true");
  EXPECT_EQ(raw_field(edit, "met_target"), "true");
  EXPECT_EQ(raw_field(edit, "dirty"), "1");
  EXPECT_EQ(daemon.stats().sessions, 1u);

  // Release ends the session; the next resize is a structured refusal.
  daemon.handle_line("{\"op\":\"release\",\"session\":" + sid + "}");
  lines = cap.snapshot();
  bool released = false;
  for (const std::string& l : lines)
    if (raw_field(l, "event") == "release" && raw_field(l, "session") == sid)
      released = true;
  EXPECT_TRUE(released);
  EXPECT_EQ(daemon.stats().sessions, 0u);

  daemon.handle_line(resize_line("late", sid));
  lines = cap.snapshot();
  const std::string late = line_for(lines, "result", "late");
  ASSERT_FALSE(late.empty());
  EXPECT_EQ(raw_field(late, "status"), "invalid_input");
  EXPECT_NE(late.find("unknown session"), std::string::npos);
}

TEST(EcoSession, ResizeBeforeTheBaseResultIsRejectedThenWorks) {
  Capture cap;
  DaemonOptions opt;
  opt.engine.threads = 1;
  SizingDaemon daemon(opt, cap.emit());

  // A plain job occupies the single worker so the session base queues.
  daemon.handle_line(
      "{\"op\":\"submit\",\"id\":\"blocker\",\"circuit\":\"tiled4x6x2\","
      "\"ratio\":0.6}");
  daemon.handle_line(session_submit("base", "c17", 0.8));
  std::vector<std::string> lines = cap.snapshot();
  const std::string sid =
      raw_field(line_for(lines, "accepted", "base"), "session");
  ASSERT_FALSE(sid.empty());

  // The base job has not produced its result yet: resize must be refused
  // with a retryable status, not block and not crash.
  daemon.handle_line(resize_line("early", sid));
  lines = cap.snapshot();
  const std::string early = line_for(lines, "result", "early");
  ASSERT_FALSE(early.empty());
  EXPECT_EQ(raw_field(early, "status"), "rejected");
  EXPECT_NE(early.find("not ready"), std::string::npos);

  daemon.drain();
  daemon.handle_line(resize_line("after", sid));
  lines = cap.snapshot();
  const std::string after = line_for(lines, "result", "after");
  ASSERT_FALSE(after.empty());
  EXPECT_EQ(raw_field(after, "ok"), "true");
  EXPECT_EQ(raw_field(after, "mode"), "fixpoint");
}

TEST(EcoSession, ResizeChainSurvivesACrashWithBitIdenticalHashes) {
  const std::string path = temp_path("eco_crash.mftj");
  DaemonOptions opt;
  opt.engine.threads = 1;
  opt.journal_path = path;

  const std::string loads =
      ",\"loads\":\"" + std::to_string(c17_gate_vertex()) + ":0.05\"";
  Capture ref;
  std::string sid;
  {
    SizingDaemon d(opt, ref.emit());
    d.handle_line(session_submit("base", "c17", 0.8));
    d.drain();
    sid = raw_field(line_for(ref.snapshot(), "accepted", "base"), "session");
    ASSERT_FALSE(sid.empty());
    d.handle_line(resize_line("r1", sid, loads));
    d.handle_line(resize_line("r2", sid));  // zero delta on the new state
  }
  const std::vector<std::string> ref_lines = ref.snapshot();
  const std::string base_hash = hash_for(ref_lines, "base");
  const std::string r1_hash = hash_for(ref_lines, "r1");
  const std::string r2_hash = hash_for(ref_lines, "r2");
  ASSERT_FALSE(base_hash.empty());
  ASSERT_FALSE(r1_hash.empty());
  EXPECT_EQ(r2_hash, r1_hash);  // zero delta after r1 is r1's fixpoint

  // Simulate the kill -9 mid-serving: the write-ahead resize records are
  // on disk but their terminal results are not. (The ok base result is
  // never journaled at all — replay re-runs it to rebuild the session's
  // sized state.)
  std::vector<std::string> keep;
  for (const std::string& rec : Journal::replay(path))
    if (rec.find("\"type\":\"result\"") == std::string::npos)
      keep.push_back(rec);
  Journal::rewrite(path, keep);

  Capture log;
  {
    SizingDaemon d(opt, log.emit());
    d.drain();
    const std::vector<std::string> lines = log.snapshot();
    // Base re-ran under its journaled seed, then the chain re-applied in
    // rid order; every hash is bit-identical to the first life.
    EXPECT_EQ(hash_for(lines, "base"), base_hash);
    EXPECT_EQ(hash_for(lines, "r1"), r1_hash);
    EXPECT_EQ(hash_for(lines, "r2"), r2_hash);
    EXPECT_EQ(d.stats().sessions, 1u);
  }

  // Second restart: the resize results are journaled now, so the chain
  // replays silently (state rebuilt, nothing re-emitted) and the session
  // is alive for further deltas.
  Capture log2;
  SizingDaemon d2(opt, log2.emit());
  d2.drain();
  std::vector<std::string> lines2 = log2.snapshot();
  EXPECT_EQ(hash_for(lines2, "base"), base_hash);  // base always re-emits
  EXPECT_EQ(line_for(lines2, "result", "r1"), "");
  EXPECT_EQ(line_for(lines2, "result", "r2"), "");
  d2.handle_line(resize_line("fp", sid));
  lines2 = log2.snapshot();
  EXPECT_EQ(hash_for(lines2, "fp"), r1_hash);
}

}  // namespace
}  // namespace mft
