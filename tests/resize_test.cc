// Tests for the ECO resize session: the zero-delta fixpoint contract
// (bit-identical sizes), warm-vs-cold equivalence at small perturbations,
// the cold-fallback triggers, pin semantics across re-solves, and delta
// validation leaving a rejected session untouched.
#include <gtest/gtest.h>

#include <vector>

#include "gen/blocks.h"
#include "sizing/minflotransit.h"
#include "sizing/resize.h"
#include "sizing/tilos.h"
#include "timing/lowering.h"

namespace mft {
namespace {

LoweredCircuit lower(const Netlist& nl) {
  return lower_gate_level(nl, Tech{});
}

/// A non-source vertex whose level sits nearest the middle of the network —
/// a representative spot for a local ECO load edit.
NodeId mid_level_vertex(const SizingNetwork& net) {
  const int want = net.num_levels() / 2;
  NodeId best = -1;
  int best_dist = net.num_levels() + 1;
  for (NodeId v = 0; v < net.num_vertices(); ++v) {
    if (net.is_source(v)) continue;
    const int dist =
        std::abs(net.level_of()[static_cast<std::size_t>(v)] - want);
    if (dist < best_dist) {
      best_dist = dist;
      best = v;
    }
  }
  return best;
}

TEST(Resize, ZeroDeltaIsABitIdenticalFixpoint) {
  LoweredCircuit lc = lower(make_c17());
  const double target = 0.7 * min_sized_delay(lc.net);
  ResizeSession rs(lc.net);
  const ResizeResult base = rs.solve(target);
  ASSERT_TRUE(base.ok) << base.error;
  ASSERT_TRUE(base.met_target);

  const ResizeResult fp = rs.resize(ResizeDelta{});
  ASSERT_TRUE(fp.ok) << fp.error;
  EXPECT_EQ(fp.mode, ResizeMode::kFixpoint);
  EXPECT_EQ(fp.dirty_vertices, 0);
  EXPECT_TRUE(fp.met_target);
  // The contract: bit-identical, not merely close.
  EXPECT_EQ(fp.sizes, base.sizes);

  // And idempotent: a second zero delta returns the same vector again.
  const ResizeResult fp2 = rs.resize(ResizeDelta{});
  ASSERT_TRUE(fp2.ok) << fp2.error;
  EXPECT_EQ(fp2.mode, ResizeMode::kFixpoint);
  EXPECT_EQ(fp2.sizes, base.sizes);
}

TEST(Resize, AdoptedStateIsAFixpointToo) {
  LoweredCircuit lc = lower(make_c17());
  const double target = 0.7 * min_sized_delay(lc.net);
  const MinflotransitResult m = run_minflotransit(lc.net, target);
  ASSERT_TRUE(m.met_target);

  ResizeSession rs(lc.net);
  const ResizeResult a = rs.adopt(m.sizes, target);
  ASSERT_TRUE(a.ok) << a.error;
  EXPECT_EQ(a.mode, ResizeMode::kFixpoint);
  EXPECT_TRUE(a.met_target);

  const ResizeResult fp = rs.resize(ResizeDelta{});
  ASSERT_TRUE(fp.ok) << fp.error;
  EXPECT_EQ(fp.mode, ResizeMode::kFixpoint);
  EXPECT_EQ(fp.sizes, m.sizes);
}

TEST(Resize, WarmResizeMatchesAColdSolveOnTheEditedNetwork) {
  Netlist nl = make_ripple_adder(16);
  LoweredCircuit warm_lc = lower(nl);
  const double target = 0.75 * min_sized_delay(warm_lc.net);
  const NodeId v = mid_level_vertex(warm_lc.net);
  const double b_delta = 0.05;

  ResizeSession rs(warm_lc.net);
  ASSERT_TRUE(rs.solve(target).ok);
  ResizeDelta delta;
  delta.load_edits.push_back({v, b_delta});
  const ResizeResult warm = rs.resize(delta);
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_TRUE(warm.met_target);
  EXPECT_LE(warm.delay, warm.target * (1.0 + 1e-9));
  EXPECT_EQ(warm.dirty_vertices, 1);
  // A one-vertex edit on this instance stays under the carve threshold.
  EXPECT_EQ(warm.mode, ResizeMode::kWarm);
  EXPECT_FALSE(warm.fell_back);
  EXPECT_GT(warm.region_vertices, 0);
  EXPECT_LT(warm.region_vertices, warm_lc.net.num_vertices());

  // Cold reference: a fresh solve on an identically-edited network.
  LoweredCircuit cold_lc = lower(nl);
  cold_lc.net.eco_add_b(v, b_delta);
  ResizeSession cold_rs(cold_lc.net);
  const ResizeResult cold = cold_rs.solve(target);
  ASSERT_TRUE(cold.ok) << cold.error;
  ASSERT_TRUE(cold.met_target);

  // Both meet timing on the edited network; the warm answer's area must be
  // competitive with the from-scratch solve at this perturbation size.
  EXPECT_LE(warm.area, cold.area * 1.10);
  EXPECT_GE(warm.area, cold.area * 0.90);
}

TEST(Resize, RegionOverThresholdTriggersTheColdFallback) {
  LoweredCircuit lc = lower(make_ripple_adder(8));
  const double target = 0.75 * min_sized_delay(lc.net);
  ResizeOptions opt;
  opt.full_solve_frac = 0.0;  // any dirty region exceeds the threshold
  ResizeSession rs(lc.net, opt);
  ASSERT_TRUE(rs.solve(target).ok);

  ResizeDelta delta;
  delta.load_edits.push_back({mid_level_vertex(rs.net()), 0.05});
  const ResizeResult r = rs.resize(delta);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.mode, ResizeMode::kCold);
  EXPECT_FALSE(r.fell_back);  // warm never attempted, straight to cold
  EXPECT_TRUE(r.met_target);
}

TEST(Resize, InfeasibleRetargetFallsBackAndReportsTheMiss) {
  LoweredCircuit lc = lower(make_c17());
  const double dmin = min_sized_delay(lc.net);
  ResizeSession rs(lc.net);
  ASSERT_TRUE(rs.solve(0.9 * dmin).ok);

  ResizeDelta delta;
  delta.target_delay = 1e-3 * dmin;  // unreachable at any sizing
  const ResizeResult r = rs.resize(delta);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.mode, ResizeMode::kCold);
  EXPECT_TRUE(r.fell_back);  // warm retarget attempted, verification failed
  EXPECT_FALSE(r.met_target);
}

TEST(Resize, LoosenedTargetResolvesWarmWithoutAreaGrowth) {
  LoweredCircuit lc = lower(make_ripple_adder(8));
  const double dmin = min_sized_delay(lc.net);
  ResizeSession rs(lc.net);
  const ResizeResult base = rs.solve(0.6 * dmin);
  ASSERT_TRUE(base.ok);
  ASSERT_TRUE(base.met_target);

  ResizeDelta delta;
  delta.target_delay = 0.8 * dmin;
  const ResizeResult r = rs.resize(delta);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.mode, ResizeMode::kWarm);
  EXPECT_EQ(r.dirty_vertices, 0);
  EXPECT_TRUE(r.met_target);
  // Relaxing the target must never cost area.
  EXPECT_LE(r.area, base.area * (1.0 + 1e-9));
}

TEST(Resize, PinsHoldExactSizesAcrossSubsequentResizes) {
  LoweredCircuit lc = lower(make_ripple_adder(8));
  const double target = 0.75 * min_sized_delay(lc.net);
  ResizeSession rs(lc.net);
  ASSERT_TRUE(rs.solve(target).ok);
  const NodeId pinned = mid_level_vertex(rs.net());
  const double pin_size = 2.5;

  ResizeDelta pin_delta;
  pin_delta.pins.push_back({pinned, pin_size});
  const ResizeResult p = rs.resize(pin_delta);
  ASSERT_TRUE(p.ok) << p.error;
  EXPECT_TRUE(p.met_target);
  EXPECT_DOUBLE_EQ(p.sizes[static_cast<std::size_t>(pinned)], pin_size);

  // The pin survives an unrelated load edit elsewhere in the network.
  NodeId other = -1;
  for (NodeId v = 0; v < rs.net().num_vertices(); ++v)
    if (!rs.net().is_source(v) && v != pinned) {
      other = v;
      break;
    }
  ASSERT_GE(other, 0);
  ResizeDelta edit;
  edit.load_edits.push_back({other, 0.05});
  const ResizeResult e = rs.resize(edit);
  ASSERT_TRUE(e.ok) << e.error;
  EXPECT_TRUE(e.met_target);
  EXPECT_DOUBLE_EQ(e.sizes[static_cast<std::size_t>(pinned)], pin_size);

  // Releasing the pin (size 0) re-solves with the vertex free again.
  ResizeDelta release;
  release.pins.push_back({pinned, 0.0});
  const ResizeResult f = rs.resize(release);
  ASSERT_TRUE(f.ok) << f.error;
  EXPECT_TRUE(f.met_target);
}

TEST(Resize, RejectedDeltasLeaveTheSessionUntouched) {
  LoweredCircuit lc = lower(make_c17());
  const double target = 0.7 * min_sized_delay(lc.net);
  ResizeSession rs(lc.net);
  const ResizeResult base = rs.solve(target);
  ASSERT_TRUE(base.ok);
  const int n = rs.net().num_vertices();
  NodeId source = -1, gate = -1;
  for (NodeId v = 0; v < n; ++v) {
    if (rs.net().is_source(v) && source < 0) source = v;
    if (!rs.net().is_source(v) && gate < 0) gate = v;
  }
  ASSERT_GE(source, 0);
  ASSERT_GE(gate, 0);

  {
    ResizeDelta d;  // unknown vertex
    d.load_edits.push_back({static_cast<NodeId>(n + 5), 0.1});
    const ResizeResult r = rs.resize(d);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("unknown vertex"), std::string::npos) << r.error;
  }
  {
    ResizeDelta d;  // load edit on a source
    d.load_edits.push_back({source, 0.1});
    const ResizeResult r = rs.resize(d);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("source"), std::string::npos) << r.error;
  }
  {
    ResizeDelta d;  // b driven negative
    d.load_edits.push_back({gate, -1e9});
    const ResizeResult r = rs.resize(d);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("degenerate"), std::string::npos) << r.error;
  }
  {
    ResizeDelta d;  // pin outside the tech's size range
    d.pins.push_back({gate, 1e6});
    const ResizeResult r = rs.resize(d);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("outside"), std::string::npos) << r.error;
  }
  {
    ResizeDelta d;  // negative target
    d.target_delay = -1.0;
    const ResizeResult r = rs.resize(d);
    EXPECT_FALSE(r.ok);
  }

  // After every rejection the session is exactly where solve() left it.
  const ResizeResult fp = rs.resize(ResizeDelta{});
  ASSERT_TRUE(fp.ok) << fp.error;
  EXPECT_EQ(fp.mode, ResizeMode::kFixpoint);
  EXPECT_EQ(fp.sizes, base.sizes);
}

TEST(Resize, ResizeBeforeSolveIsRejected) {
  LoweredCircuit lc = lower(make_c17());
  ResizeSession rs(lc.net);
  const ResizeResult r = rs.resize(ResizeDelta{});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("no sized state"), std::string::npos) << r.error;
}

}  // namespace
}  // namespace mft
