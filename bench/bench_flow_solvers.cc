// Ablation A1: which min-cost-flow solver should back the D-phase?
// Benchmarks network simplex vs successive shortest paths vs cycle
// canceling on real D-phase instances (the LP of eq. (10) built from
// TILOS-sized ISCAS analogs). google-benchmark micro-harness.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "sizing/dphase.h"

using namespace mft;
using namespace mft::bench;

namespace {

struct Prepared {
  LoweredCircuit lc;
  std::vector<double> sizes;
};

const Prepared& prepared(const std::string& name) {
  static std::map<std::string, Prepared> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    Netlist nl = load_circuit(name);
    Prepared p{lower_gate_level(nl, Tech{}), {}};
    const CalibratedTarget cal = calibrate_target(p.lc.net);
    p.sizes = run_tilos(p.lc.net, cal.target).sizes;
    it = cache.emplace(name, std::move(p)).first;
  }
  return it->second;
}

void BM_DPhaseSolver(benchmark::State& state, const std::string& circuit,
                     FlowSolver solver) {
  const Prepared& p = prepared(circuit);
  DPhaseOptions opt;
  opt.solver = solver;
  for (auto _ : state) {
    DPhaseResult r = run_dphase(p.lc.net, p.sizes, opt);
    benchmark::DoNotOptimize(r);
  }
  const DPhaseResult r = run_dphase(p.lc.net, p.sizes, opt);
  state.counters["constraints"] = static_cast<double>(r.num_constraints);
  state.counters["objective"] = r.objective;
}

}  // namespace

BENCHMARK_CAPTURE(BM_DPhaseSolver, c432_network_simplex, "c432",
                  FlowSolver::kNetworkSimplex);
BENCHMARK_CAPTURE(BM_DPhaseSolver, c432_ssp, "c432", FlowSolver::kSsp);
BENCHMARK_CAPTURE(BM_DPhaseSolver, c432_cycle_canceling, "c432",
                  FlowSolver::kCycleCanceling);
BENCHMARK_CAPTURE(BM_DPhaseSolver, c880_network_simplex, "c880",
                  FlowSolver::kNetworkSimplex);
BENCHMARK_CAPTURE(BM_DPhaseSolver, c880_ssp, "c880", FlowSolver::kSsp);
BENCHMARK_CAPTURE(BM_DPhaseSolver, c1355_network_simplex, "c1355",
                  FlowSolver::kNetworkSimplex);
BENCHMARK_CAPTURE(BM_DPhaseSolver, c1355_ssp, "c1355", FlowSolver::kSsp);
BENCHMARK_CAPTURE(BM_DPhaseSolver, c2670_network_simplex, "c2670",
                  FlowSolver::kNetworkSimplex);

BENCHMARK_MAIN();
