// Ablation A1: which min-cost-flow solver should back the D-phase?
//
// Two sections:
//  1. Real D-phase instances — the LP of eq. (10) built from TILOS-sized
//     ISCAS analogs — solved end-to-end through run_dphase with each
//     backend solver.
//  2. Generated layered min-cost-flow instances of growing size (deep,
//     chain-heavy networks shaped like circuit DAG duals), solved directly
//     with the network simplex. This is the hot-path scaling curve; the
//     largest instance is the PR-over-PR perf gate.
//
// Results go to stdout and to BENCH_flow_solvers.json (see BenchJson).
#include <cstdio>
#include <functional>
#include <map>

#include "bench_common.h"
#include "mcf/network_simplex.h"
#include "mcf/ssp.h"
#include "sizing/dphase.h"
#include "util/rng.h"
#include "util/stopwatch.h"

using namespace mft;
using namespace mft::bench;

namespace {

struct Prepared {
  LoweredCircuit lc;
  std::vector<double> sizes;
};

const Prepared& prepared(const std::string& name) {
  static std::map<std::string, Prepared> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    Netlist nl = load_circuit(name);
    Prepared p{lower_gate_level(nl, Tech{}), {}};
    const CalibratedTarget cal = calibrate_target(p.lc.net);
    p.sizes = run_tilos(p.lc.net, cal.target).sizes;
    it = cache.emplace(name, std::move(p)).first;
  }
  return it->second;
}

// Deterministic layered flow network mimicking a D-phase dual: `layers`
// ranks of `width` nodes, a guaranteed spine i->i between consecutive
// ranks (so every supply can route), plus random in-rank-to-next-rank and
// skip arcs. Mostly uncapacitated arcs with nonnegative integerized costs;
// a fraction carry finite capacity and possibly negative cost.
McfProblem make_layered(std::uint64_t seed, int layers, int width,
                        int extra_per_node) {
  Rng rng(seed);
  const int n = layers * width;
  McfProblem p(n);
  auto node = [width](int layer, int i) { return layer * width + i; };
  for (int l = 0; l + 1 < layers; ++l) {
    for (int i = 0; i < width; ++i) {
      p.add_arc(node(l, i), node(l + 1, i), kInfFlow,
                rng.uniform_int(0, 1000));
      for (int e = 0; e < extra_per_node; ++e) {
        const int j = rng.uniform_int(0, width - 1);
        const int skip = std::min(layers - 1 - l, rng.uniform_int(1, 3));
        if (rng.flip(0.2)) {
          // Capacitated (possibly negative-cost) shortcut.
          p.add_arc(node(l, i), node(l + skip, j),
                    rng.uniform_int(1, 50), rng.uniform_int(-200, 1000));
        } else {
          p.add_arc(node(l, i), node(l + skip, j), kInfFlow,
                    rng.uniform_int(0, 1000));
        }
      }
    }
  }
  // Balanced supplies: sources on rank 0, sinks on the last rank.
  Flow total = 0;
  for (int i = 0; i < width; ++i) {
    const Flow s = rng.uniform_int(1, 20);
    p.add_supply(node(0, i), s);
    total += s;
  }
  for (int i = 0; i < width; ++i) {
    const Flow s = i + 1 < width ? total / width : total - (width - 1) * (total / width);
    p.add_supply(node(layers - 1, i), -s);
  }
  return p;
}

double time_best_of(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Stopwatch sw;
    fn();
    best = std::min(best, sw.seconds());
  }
  return best;
}

}  // namespace

int main() {
  BenchJson json;

  // --- Section 1: D-phase instances through each backend -----------------
  const std::vector<std::string> circuits = {"c432", "c880", "c1355", "c2670"};
  const std::vector<std::pair<const char*, FlowSolver>> solvers = {
      {"network_simplex", FlowSolver::kNetworkSimplex},
      {"ssp", FlowSolver::kSsp},
  };
  std::printf("%-34s %12s %14s %12s\n", "benchmark", "wall (ms)",
              "constraints", "objective");
  for (const std::string& name : circuits) {
    const Prepared& p = prepared(name);
    for (const auto& [sname, solver] : solvers) {
      if (solver == FlowSolver::kSsp && name == "c2670") continue;
      DPhaseOptions opt;
      opt.solver = solver;
      DPhaseResult r;
      const double secs = time_best_of(3, [&] {
        r = run_dphase(p.lc.net, p.sizes, opt);
      });
      const std::string bname = "dphase/" + name + "/" + sname;
      std::printf("%-34s %12.3f %14d %12.4f\n", bname.c_str(), secs * 1e3,
                  r.num_constraints, r.objective);
      std::fflush(stdout);
      json.add(bname, secs,
               {{"constraints", static_cast<double>(r.num_constraints)},
                {"objective", r.objective}});
    }
    // Steady-state with a persistent workspace: the LP + flow problem are
    // built on the first call, later calls only rewrite costs/supplies.
    {
      DPhaseWorkspace ws;
      DPhaseResult r = run_dphase(p.lc.net, p.sizes, {}, &ws);  // warm up
      const double secs = time_best_of(3, [&] {
        r = run_dphase(p.lc.net, p.sizes, {}, &ws);
      });
      const std::string bname = "dphase/" + name + "/network_simplex_ws";
      std::printf("%-34s %12.3f %14d %12.4f\n", bname.c_str(), secs * 1e3,
                  r.num_constraints, r.objective);
      std::fflush(stdout);
      json.add(bname, secs,
               {{"constraints", static_cast<double>(r.num_constraints)},
                {"objective", r.objective},
                {"pivots", static_cast<double>(ws.flow.mcf.ns_pivots)},
                {"problem_builds", static_cast<double>(ws.problem_builds())}});
    }
  }

  // --- Section 2: network simplex on generated layered instances ---------
  struct Shape {
    const char* name;
    int layers, width, extra;
  };
  const std::vector<Shape> shapes = {
      {"layered_2k", 100, 20, 2},
      {"layered_12k", 600, 20, 2},
      {"layered_50k", 2500, 20, 2},
  };
  std::printf("\n%-34s %12s %10s %10s %16s\n", "benchmark", "wall (ms)",
              "nodes", "arcs", "cost");
  McfWorkspace ws;
  for (const Shape& s : shapes) {
    const McfProblem p = make_layered(/*seed=*/42, s.layers, s.width, s.extra);
    McfSolution sol;
    const int reps = p.num_nodes() <= 20000 ? 3 : 2;
    const double secs = time_best_of(reps, [&] {
      sol = solve_network_simplex(p, {}, &ws);
    });
    MFT_CHECK(sol.status == McfStatus::kOptimal);
    const std::string bname = std::string("ns/") + s.name;
    std::printf("%-34s %12.3f %10d %10d %16lld\n", bname.c_str(), secs * 1e3,
                p.num_nodes(), p.num_arcs(),
                static_cast<long long>(sol.total_cost));
    std::fflush(stdout);
    json.add(bname, secs,
             {{"nodes", static_cast<double>(p.num_nodes())},
              {"arcs", static_cast<double>(p.num_arcs())},
              {"pivots", static_cast<double>(ws.ns_pivots)},
              {"cost", static_cast<double>(sol.total_cost)}});
    // Cross-check the small instance against SSP.
    if (p.num_nodes() <= 5000) {
      const McfSolution ref = solve_ssp(p);
      MFT_CHECK(ref.status == McfStatus::kOptimal &&
                ref.total_cost == sol.total_cost);
    }
  }

  if (!json.write("BENCH_flow_solvers.json"))
    std::fprintf(stderr, "warning: could not write BENCH_flow_solvers.json\n");
  return 0;
}
