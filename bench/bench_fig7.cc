// Reproduces Figure 7: comparative area-delay trade-off curves for gate
// sizing of c432 and c6288, TILOS vs MINFLOTRANSIT. Both axes normalized:
// delay to the minimum-sized circuit's delay, area to the minimum-sized
// circuit's area. Expected shape: the MINFLOTRANSIT curve lies on or below
// the TILOS curve everywhere, with the gap widening at aggressive targets
// on c6288 (paper: 14.2% at 0.5·Dmin).
#include <cstdio>

#include "bench_common.h"
#include "sizing/tradeoff.h"
#include "util/str.h"
#include "util/table.h"

using namespace mft;
using namespace mft::bench;

int main() {
  for (const std::string& name : {std::string("c432"), std::string("c6288")}) {
    const Netlist nl = load_circuit(name);
    const LoweredCircuit lc = lower_gate_level(nl, Tech{});
    // Sweep from relaxed to the circuit's feasibility floor, like the
    // figure's x-axis. The floor is probed with an aggressive TILOS run.
    const double dmin = min_sized_delay(lc.net);
    const double floor_ratio =
        run_tilos(lc.net, 0.05 * dmin).achieved_delay / dmin;
    std::vector<double> ratios;
    for (double f : {1.0, 0.9, 0.8, 0.7, 0.55, 0.4, 0.25, 0.1})
      ratios.push_back(floor_ratio + f * (1.0 - floor_ratio));

    const TradeoffCurve curve = area_delay_sweep(lc.net, ratios);
    std::printf("Figure 7 series: %s (%d gates, Dmin = %.1f, floor = %.2f Dmin)\n",
                name.c_str(), nl.num_logic_gates(), curve.dmin, floor_ratio);
    Table t({"delay/Dmin", "TILOS area/min", "MFT area/min", "savings"});
    for (const TradeoffPoint& p : curve.points) {
      if (!p.tilos_met) continue;
      t.add_row({strf("%.3f", p.target_ratio),
                 strf("%.3f", p.tilos_area_ratio),
                 strf("%.3f", p.mft_area_ratio), strf("%.1f%%", p.savings_pct)});
    }
    std::printf("%s\nCSV:\n%s\n", t.to_text().c_str(), t.to_csv().c_str());
    std::fflush(stdout);
  }
  return 0;
}
