// Reproduces Figure 7: comparative area-delay trade-off curves for gate
// sizing of c432 and c6288, TILOS vs MINFLOTRANSIT. Both axes normalized:
// delay to the minimum-sized circuit's delay, area to the minimum-sized
// circuit's area. Expected shape: the MINFLOTRANSIT curve lies on or below
// the TILOS curve everywhere, with the gap widening at aggressive targets
// on c6288 (paper: 14.2% at 0.5·Dmin).
//
// Both circuits' sweep points are submitted as one engine batch, so with
// --threads N (or MFT_BENCH_THREADS) the whole figure is produced in
// parallel; results are collected in job order, so the printed tables are
// identical at any thread count.
#include <cstdio>

#include "bench_common.h"
#include "util/str.h"
#include "util/table.h"

using namespace mft;
using namespace mft::bench;

int main(int argc, char** argv) {
  const std::vector<std::string> names = {"c432", "c6288"};

  // Sequential prologue: build/lower each circuit and probe its
  // feasibility floor with an aggressive TILOS run (the figure's x-axis
  // starts there).
  std::vector<Netlist> netlists;
  std::vector<LoweredCircuit> lowered;
  std::vector<double> dmin, floor_ratio;
  for (const std::string& name : names) {
    netlists.push_back(load_circuit(name));
    lowered.push_back(lower_gate_level(netlists.back(), Tech{}));
    const SizingNetwork& net = lowered.back().net;
    dmin.push_back(min_sized_delay(net));
    floor_ratio.push_back(run_tilos(net, 0.05 * dmin.back()).achieved_delay /
                          dmin.back());
  }

  // One batch over both circuits: (circuit, ratio) jobs in figure order.
  std::vector<const SizingNetwork*> networks;
  for (const LoweredCircuit& lc : lowered) networks.push_back(&lc.net);
  std::vector<SizingJob> jobs;
  for (std::size_t c = 0; c < names.size(); ++c) {
    for (double f : {1.0, 0.9, 0.8, 0.7, 0.55, 0.4, 0.25, 0.1}) {
      SizingJob job;
      job.network = static_cast<int>(c);
      job.target_ratio = floor_ratio[c] + f * (1.0 - floor_ratio[c]);
      job.label = names[c] + strf("@%.3f", job.target_ratio);
      jobs.push_back(std::move(job));
    }
  }

  JobRunnerOptions ropt;
  ropt.threads = bench_threads(argc, argv);
  ropt.inner_threads = bench_inner_threads(argc, argv);
  ropt.progress = print_progress;
  const JobRunner runner(ropt);
  std::printf("running %d sweep jobs on %d threads...\n",
              static_cast<int>(jobs.size()), runner.threads());
  const BatchResult batch = runner.run(networks, jobs);

  for (std::size_t c = 0; c < names.size(); ++c) {
    std::printf("\nFigure 7 series: %s (%d gates, Dmin = %.1f, floor = %.2f Dmin)\n",
                names[c].c_str(), netlists[c].num_logic_gates(), dmin[c],
                floor_ratio[c]);
    Table t({"delay/Dmin", "TILOS area/min", "MFT area/min", "savings"});
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (jobs[i].network != static_cast<int>(c)) continue;
      const JobResult& r = batch.results[i];
      if (!r.ok || !r.result.initial.met_target) continue;
      const double savings =
          100.0 * (1.0 - r.result.area / r.result.initial.area);
      t.add_row({strf("%.3f", r.target / dmin[c]),
                 strf("%.3f", r.result.initial.area / r.min_area),
                 strf("%.3f", r.result.area / r.min_area),
                 strf("%.1f%%", savings)});
    }
    std::printf("%s\nCSV:\n%s\n", t.to_text().c_str(), t.to_csv().c_str());
    std::fflush(stdout);
  }
  print_engine_summary(batch);
  return 0;
}
