// Run-time scaling (paper §1/§3 claim: both phases behave near-linearly in
// circuit size, comparable to TILOS). Sweeps ripple-carry adders 32..256
// bits and layered random logic 250..4000 gates, timing TILOS alone and the
// full MINFLOTRANSIT loop at a fixed relative delay target.
#include <cstdio>

#include "bench_common.h"
#include "util/str.h"
#include "util/table.h"

using namespace mft;
using namespace mft::bench;

namespace {

void row(Table& t, const std::string& label, const Netlist& nl) {
  const LoweredCircuit lc = lower_gate_level(nl, Tech{});
  const double dmin = min_sized_delay(lc.net);
  const double floor_d = run_tilos(lc.net, 0.05 * dmin).achieved_delay;
  const double target = floor_d + 0.3 * (dmin - floor_d);
  const MinflotransitResult r = run_minflotransit(lc.net, target);
  t.add_row({label, std::to_string(nl.num_logic_gates()),
             strf("%.3fs", r.tilos_seconds), strf("%.3fs", r.total_seconds),
             strf("%.2fx", r.total_seconds / std::max(1e-9, r.tilos_seconds)),
             strf("%.1f%%", r.initial.met_target && r.met_target
                                ? 100.0 * (1.0 - r.area / r.initial.area)
                                : 0.0)});
  std::fflush(stdout);
}

}  // namespace

int main() {
  std::printf("Run-time scaling: TILOS vs full MINFLOTRANSIT\n\n");
  Table t({"circuit", "# gates", "CPU TILOS", "CPU MFT total", "ratio",
           "savings"});
  for (int bits : {32, 64, 128, 256})
    row(t, "adder" + std::to_string(bits), make_ripple_adder(bits));
  for (int gates : {250, 500, 1000, 2000, 4000}) {
    RandomLogicParams p;
    p.num_inputs = 32;
    p.num_gates = gates;
    p.seed = 7;
    row(t, "rnd" + std::to_string(gates), make_random_logic(p));
  }
  std::printf("%s\nCSV:\n%s", t.to_text().c_str(), t.to_csv().c_str());
  return 0;
}
