#!/usr/bin/env sh
# Runs every benchmark binary and collects the BENCH_*.json records in one
# place, so the perf trajectory is actually recorded per PR.
#
# Usage:  bench/run_all.sh [BUILD_DIR] [OUT_DIR]
#   BUILD_DIR  where the bench binaries live      (default: build)
#   OUT_DIR    where the JSON records are copied  (default: bench/results)
#
# Environment knobs pass through (MFT_BENCH_THREADS, MFT_BENCH_INNER_THREADS,
# MFT_SHARD_LANES/STAGES/BITS, ...). Heavy benches honor their own flags;
# set MFT_RUN_ALL_ARGS_<bench> (e.g. MFT_RUN_ALL_ARGS_bench_shard="--lanes 16
# --stages 8") to scale one down. A missing binary is an error (build with
# -DMFT_BUILD_BENCH=ON first); a failing bench stops the run so a broken
# perf gate is never silently skipped. Also reachable as the `run_all_benches`
# CMake target.
set -eu

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-bench/results}"

if [ ! -d "$BUILD_DIR" ]; then
  echo "error: build dir '$BUILD_DIR' not found (run cmake first)" >&2
  exit 2
fi
mkdir -p "$OUT_DIR"

BENCHES="
bench_flow_solvers
bench_engine
bench_inner
bench_shard
bench_table1
bench_fig7
bench_convergence
bench_scaling
bench_tilos_bump
bench_ablation_bounds
bench_ablation_scale
bench_ablation_weights
bench_eco
"

for b in $BENCHES; do
  bin="$BUILD_DIR/$b"
  if [ ! -x "$bin" ]; then
    echo "error: $bin not built" >&2
    exit 2
  fi
  args_var="MFT_RUN_ALL_ARGS_$b"
  args="$(eval "printf '%s' \"\${$args_var:-}\"")"
  echo "==> $b $args"
  # Benches emit their JSON next to the current working directory.
  (cd "$BUILD_DIR" && "./$b" $args)
done

count=0
for f in "$BUILD_DIR"/BENCH_*.json; do
  [ -e "$f" ] || continue
  cp "$f" "$OUT_DIR/"
  count=$((count + 1))
done
echo "collected $count BENCH_*.json records into $OUT_DIR/"
