// Sharded large-netlist solve benchmark: monolithic pipeline vs
// partition → parallel shard jobs → reconciliation, on a generated tiled
// datapath 1–2 orders of magnitude beyond the Table-1 circuits.
//
// Arms, all at the same delay target and optimizer options:
//  - monolithic:   one engine job on the full network, 1 inner thread —
//                  the PR-2 baseline.
//  - monolithic+N: same job with N inner threads (PR 3's level-parallel
//                  sweeps) — the fairest same-core-budget baseline.
//  - shard@W:      run_sharded_solve with W workers (K shards), 1 inner
//                  thread per job, for W in {1, 2, 4, ...}.
//
// Interpretation: shard@1 vs monolithic isolates the *algorithmic* win
// (per-sweep cost inside a shard is O(V/K), and each shard's flow
// problems are K-times smaller); shard@W adds the engine's worker
// parallelism on top. On a 1-core container the W > 1 rows time-slice one
// core and read ≈ shard@1 (documented; the speedup criterion applies to
// multi-core hardware — CI smoke-runs a small instance, the default
// instance is ~110k vertices).
//
// Emits BENCH_shard.json: wall time per arm, speedups over monolithic,
// stitched-vs-monolithic area gap (acceptance: within 2%), and the worst
// slack against the target for both solutions (recorded for the perf
// trajectory; "no worse worst-slack" is enforced in the meets-the-target
// sense). The exit-code gate: nonzero when the sharded solve misses a
// target the monolithic pipeline met (i.e. its slack-vs-target went
// negative where monolithic's was not), or the area gap exceeds 2%.
//
// Flags: --lanes/--stages/--bits (instance), --shards, --rounds,
// --ratio-pct (target as % of Dmin), --max-iters (cap on D/W iterations
// per (shard) solve, both arms), --workers (max worker count measured),
// --inner-threads (inner threads of the monolithic+N arm; default
// min(--workers, hardware concurrency) — never self-inflicted
// oversubscription, matching the engine's thread policy; the arm is
// skipped entirely when that resolves to 1).
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "gen/tiled.h"
#include "sizing/shard.h"
#include "timing/sta.h"
#include "util/str.h"

using namespace mft;
using namespace mft::bench;

int main(int argc, char** argv) {
  TiledDatapathParams p;
  p.lanes = bench_int_flag(argc, argv, "--lanes", "MFT_SHARD_LANES", 64);
  p.stages = bench_int_flag(argc, argv, "--stages", "MFT_SHARD_STAGES", 48);
  p.bits = bench_int_flag(argc, argv, "--bits", "MFT_SHARD_BITS", 4);
  const int shards = bench_int_flag(argc, argv, "--shards", nullptr, 4);
  const int rounds = bench_int_flag(argc, argv, "--rounds", nullptr, 3);
  const int ratio_pct =
      bench_int_flag(argc, argv, "--ratio-pct", nullptr, 90);
  const int max_iters = bench_int_flag(argc, argv, "--max-iters", nullptr, 4);
  const int max_workers =
      std::max(1, bench_int_flag(argc, argv, "--workers", nullptr, 4));
  const unsigned hw = std::thread::hardware_concurrency();
  int mono_inner = bench_inner_threads(argc, argv, /*fallback=*/0);
  if (mono_inner <= 0)
    mono_inner = std::min(max_workers, hw > 0 ? static_cast<int>(hw) : 1);

  const Netlist nl = make_tiled_datapath(p);
  const LoweredCircuit lc = lower_gate_level(nl, Tech{});
  const SizingNetwork& net = lc.net;
  const double dmin = min_sized_delay(net);
  const double target = 0.01 * ratio_pct * dmin;
  std::printf(
      "shard bench: %s, %d vertices (%d sizeable), %d arcs, %d levels\n"
      "target %.3f (%d%% of Dmin %.3f), K=%d, max %d rounds, max %d D/W "
      "iterations, hw concurrency %u\n\n",
      nl.name().c_str(), net.num_vertices(), net.num_sizeable(),
      net.dag().num_arcs(), net.num_levels(), target, ratio_pct, dmin,
      shards, rounds, max_iters, hw);

  MinflotransitOptions mopt;
  mopt.max_iterations = max_iters;

  BenchJson json;

  // --- Monolithic arms -----------------------------------------------------
  // Timed with the same outer stopwatch scope as the sharded arms (around
  // the whole runner.run call, including the engine's per-network prep),
  // so the recorded speedups compare like with like.
  double mono_seconds = 0.0;
  auto run_monolithic = [&](int inner) {
    SizingJob job;
    job.target_delay = target;
    job.options = mopt;
    job.inner_threads = inner;
    job.label = strf("monolithic+%d", inner);
    JobRunnerOptions ropt;
    ropt.threads = 1;
    const JobRunner runner(ropt);
    Stopwatch sw;
    BatchResult batch = runner.run({&net}, {job});
    mono_seconds = sw.seconds();
    return batch;
  };

  std::printf("running monolithic (1 inner thread)...\n");
  std::fflush(stdout);
  const BatchResult mono1 = run_monolithic(1);
  const double mono1_seconds = mono_seconds;
  const JobResult& mono = mono1.results.front();
  if (!mono.ok) {
    std::fprintf(stderr, "error: monolithic solve failed: %s\n",
                 mono.error.c_str());
    return 1;
  }
  std::printf("  %.2fs, met=%d, area %.1f, CP %.4f\n", mono1_seconds,
              mono.result.met_target ? 1 : 0, mono.result.area,
              mono.result.delay);
  std::fflush(stdout);

  double mono_inner_seconds = 0.0;
  if (mono_inner > 1) {
    std::printf("running monolithic (%d inner threads)...\n", mono_inner);
    std::fflush(stdout);
    const BatchResult monoN = run_monolithic(mono_inner);
    const JobResult& rN = monoN.results.front();
    if (!rN.ok) {
      std::fprintf(stderr, "error: monolithic+%d solve failed: %s\n",
                   mono_inner, rN.error.c_str());
      return 1;
    }
    mono_inner_seconds = mono_seconds;
    if (rN.result.sizes != mono.result.sizes) {
      std::fprintf(stderr,
                   "FAIL: monolithic+%d result differs from 1 inner thread "
                   "(bit-identity contract broken)\n",
                   mono_inner);
      return 1;
    }
    std::printf("  %.2fs (bit-identical to 1 inner thread: checked)\n",
                mono_inner_seconds);
  }

  // --- Sharded arms --------------------------------------------------------
  std::vector<int> worker_counts;
  for (int w = 1; w <= max_workers; w *= 2) worker_counts.push_back(w);
  if (worker_counts.back() != max_workers)
    worker_counts.push_back(max_workers);

  ShardSolveResult last;
  std::vector<double> shard_seconds;
  for (const int w : worker_counts) {
    ShardOptions sopt;
    sopt.num_shards = shards;
    sopt.max_rounds = rounds;
    sopt.options = mopt;
    sopt.runner.threads = w;
    sopt.runner.inner_threads = 1;
    std::printf("running sharded K=%d at %d worker%s...\n", shards, w,
                w == 1 ? "" : "s");
    std::fflush(stdout);
    Stopwatch sw;
    ShardSolveResult r = run_sharded_solve(net, target, sopt);
    const double secs = sw.seconds();
    shard_seconds.push_back(secs);
    std::printf(
        "  %.2fs, met=%d, area %.1f, CP %.4f, %d rounds, %d shard jobs, "
        "converged=%d, reconcile barrier %.3fs\n",
        secs, r.result.met_target ? 1 : 0, r.result.area, r.result.delay,
        static_cast<int>(r.rounds.size()), r.shard_jobs,
        r.converged ? 1 : 0, r.reconcile_seconds);
    std::fflush(stdout);
    last = std::move(r);
  }

  // --- Quality gate + emission --------------------------------------------
  const double area_gap_pct =
      mono.result.area > 0.0
          ? 100.0 * (last.result.area - mono.result.area) / mono.result.area
          : 0.0;
  const TimingReport mono_sta = run_sta(net, mono.result.sizes);
  const TimingReport shard_sta = run_sta(net, last.result.sizes);
  const double mono_slack = target - mono_sta.critical_path;
  const double shard_slack = target - shard_sta.critical_path;

  std::printf(
      "\nquality: area gap %+0.2f%% (sharded %.1f vs monolithic %.1f), "
      "slack vs target: sharded %+0.5f, monolithic %+0.5f\n",
      area_gap_pct, last.result.area, mono.result.area, shard_slack,
      mono_slack);
  for (std::size_t i = 0; i < worker_counts.size(); ++i)
    std::printf("speedup shard@%d over monolithic: %.2fx\n",
                worker_counts[i],
                shard_seconds[i] > 0.0 ? mono1_seconds / shard_seconds[i]
                                       : 0.0);

  json.add("shard/monolithic", mono1_seconds,
           {{"area", mono.result.area},
            {"met_target", mono.result.met_target ? 1.0 : 0.0},
            {"critical_path", mono.result.delay},
            {"iterations", static_cast<double>(mono.result.iterations.size())},
            {"inner_threads", 1.0}});
  if (mono_inner > 1)
    json.add("shard/monolithic_inner", mono_inner_seconds,
             {{"inner_threads", static_cast<double>(mono_inner)}});
  for (std::size_t i = 0; i < worker_counts.size(); ++i)
    json.add(strf("shard/sharded_w%d", worker_counts[i]), shard_seconds[i],
             {{"workers", static_cast<double>(worker_counts[i])},
              {"speedup_vs_monolithic",
               shard_seconds[i] > 0.0 ? mono1_seconds / shard_seconds[i]
                                      : 0.0}});
  // The wave-free reconciliation measurement: how much per-solve wall time
  // is coordinator barrier (stitched STA + re-budget) vs streamed shard
  // work. Recorded for the last (widest) arm.
  json.add("shard/reconcile_barrier", last.reconcile_seconds,
           {{"rounds", static_cast<double>(last.rounds.size())},
            {"barrier_fraction",
             shard_seconds.back() > 0.0
                 ? last.reconcile_seconds / shard_seconds.back()
                 : 0.0}});
  std::vector<std::pair<std::string, double>> summary = {
      {"vertices", static_cast<double>(net.num_vertices())},
      {"levels", static_cast<double>(net.num_levels())},
      {"num_shards", static_cast<double>(last.num_shards)},
      {"rounds", static_cast<double>(last.rounds.size())},
      {"shard_jobs", static_cast<double>(last.shard_jobs)},
      {"reconcile_seconds", last.reconcile_seconds},
      {"converged", last.converged ? 1.0 : 0.0},
      {"met_target", last.result.met_target ? 1.0 : 0.0},
      {"area", last.result.area},
      {"area_gap_pct", area_gap_pct},
      {"slack_vs_target", shard_slack},
      {"mono_slack_vs_target", mono_slack},
      {"hw_concurrency",
       static_cast<double>(hw)},
  };
  for (std::size_t c = 0; c < last.cut_levels.size(); ++c)
    summary.emplace_back(strf("cut_level_%d", static_cast<int>(c)),
                         static_cast<double>(last.cut_levels[c]));
  json.add("shard/summary", shard_seconds.back(), summary);
  if (!json.write("BENCH_shard.json"))
    std::fprintf(stderr, "warning: could not write BENCH_shard.json\n");

  // Gate: sharding must not lose a target the monolithic pipeline met, and
  // the area gap stays within the 2% acceptance band.
  if (mono.result.met_target && !last.result.met_target) {
    std::fprintf(stderr, "FAIL: sharded solve missed the target\n");
    return 1;
  }
  if (mono.result.met_target && area_gap_pct > 2.0) {
    std::fprintf(stderr, "FAIL: area gap %.2f%% above 2%%\n", area_gap_pct);
    return 1;
  }
  std::printf("\nPASS\n");
  return 0;
}
