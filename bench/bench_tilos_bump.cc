// Ablation A3: TILOS bumpsize (§3 uses 1.1). Small bumps give finer initial
// solutions at more STA passes; large bumps overshoot and waste area that
// the W-phase must claw back. Reports TILOS quality/time and the
// MINFLOTRANSIT result seeded from each.
#include <cstdio>

#include "bench_common.h"
#include "util/str.h"
#include "util/table.h"

using namespace mft;
using namespace mft::bench;

int main() {
  std::printf("Ablation: TILOS bumpsize (paper uses 1.1)\n\n");
  const Netlist nl = load_circuit("c880");
  const LoweredCircuit lc = lower_gate_level(nl, Tech{});
  const CalibratedTarget cal = calibrate_target(lc.net);
  Table t({"bumpsize", "TILOS bumps", "TILOS area", "TILOS time", "MFT area",
           "MFT savings"});
  for (double bump : {1.01, 1.05, 1.1, 1.2, 1.5, 2.0}) {
    MinflotransitOptions opt;
    opt.tilos.bumpsize = bump;
    const MinflotransitResult r = run_minflotransit(lc.net, cal.target, opt);
    if (!r.initial.met_target) {
      t.add_row({strf("%.2f", bump), "-", "infeasible", "-", "-", "-"});
      continue;
    }
    t.add_row({strf("%.2f", bump), std::to_string(r.initial.bumps),
               strf("%.1f", r.initial.area), strf("%.3fs", r.tilos_seconds),
               strf("%.1f", r.area),
               strf("%.2f%%", 100.0 * (1.0 - r.area / r.initial.area))});
    std::fflush(stdout);
  }
  std::printf("c880 @ %.2f Dmin:\n%s", cal.target / cal.dmin,
              t.to_text().c_str());
  return 0;
}
