// Shared helpers for the benchmark binaries: circuit loading by Table-1 name
// and delay-target calibration.
//
// The paper reports rows "for sizing solutions where the area penalty is
// within 1.5–1.75 times that of a minimum sized circuit" (§3). Absolute
// delay values are technology-bound, so each bench calibrates its per-
// circuit target the same way: bisect the delay target until the TILOS area
// ratio lands near the middle of that band.
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "gen/blocks.h"
#include "gen/iscas_analog.h"
#include "sizing/minflotransit.h"
#include "timing/lowering.h"

namespace mft::bench {

/// Machine-readable benchmark record sink. Each entry is one benchmark run
/// (name, wall seconds, and free-form numeric metrics such as pivot counts
/// or optimal costs); write() emits a JSON array so the perf trajectory can
/// be diffed across PRs (BENCH_flow_solvers.json, BENCH_table1.json, ...).
class BenchJson {
 public:
  void add(const std::string& name, double wall_seconds,
           std::vector<std::pair<std::string, double>> metrics = {}) {
    entries_.push_back(Entry{name, wall_seconds, std::move(metrics)});
  }

  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) return false;
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      std::fprintf(f, "  {\"name\": \"%s\", \"wall_seconds\": %.9g",
                   e.name.c_str(), e.wall_seconds);
      for (const auto& [key, value] : e.metrics)
        std::fprintf(f, ", \"%s\": %.17g", key.c_str(), value);
      std::fprintf(f, "}%s\n", i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    return true;
  }

 private:
  struct Entry {
    std::string name;
    double wall_seconds = 0.0;
    std::vector<std::pair<std::string, double>> metrics;
  };
  std::vector<Entry> entries_;
};

/// Builds a Table-1 circuit by name: "adder32", "adder256", or an ISCAS85
/// analog name ("c432" ... "c7552").
inline Netlist load_circuit(const std::string& name) {
  if (name == "adder32") return make_ripple_adder(32);
  if (name == "adder64") return make_ripple_adder(64);
  if (name == "adder128") return make_ripple_adder(128);
  if (name == "adder256") return make_ripple_adder(256);
  return make_iscas_analog(name);
}

struct CalibratedTarget {
  double dmin = 0.0;    ///< CP of the minimum-sized circuit
  double target = 0.0;  ///< calibrated delay target
  double tilos_area_ratio = 0.0;  ///< TILOS area / min area at `target`
};

/// Bisects the delay target so TILOS lands at roughly `area_ratio` times the
/// minimum-sized area (the paper's 1.5–1.75 band -> default 1.6).
inline CalibratedTarget calibrate_target(const SizingNetwork& net,
                                         double area_ratio = 1.6,
                                         int steps = 7) {
  CalibratedTarget cal;
  cal.dmin = min_sized_delay(net);
  const double min_area = net.area(net.min_sizes());
  double lo = 0.05, hi = 1.0;  // fraction of Dmin
  double best_target = cal.dmin;
  double best_ratio = 1.0;
  for (int i = 0; i < steps; ++i) {
    const double mid = 0.5 * (lo + hi);
    const TilosResult r = run_tilos(net, mid * cal.dmin);
    if (!r.met_target) {
      lo = mid;  // infeasible: relax
      continue;
    }
    best_target = mid * cal.dmin;
    best_ratio = r.area / min_area;
    if (r.area / min_area > area_ratio)
      lo = mid;  // too expensive: relax the target
    else
      hi = mid;  // cheap: tighten
  }
  cal.target = best_target;
  cal.tilos_area_ratio = best_ratio;
  return cal;
}

}  // namespace mft::bench
