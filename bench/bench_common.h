// Shared helpers for the benchmark binaries: circuit loading by Table-1 name
// and delay-target calibration.
//
// The paper reports rows "for sizing solutions where the area penalty is
// within 1.5–1.75 times that of a minimum sized circuit" (§3). Absolute
// delay values are technology-bound, so each bench calibrates its per-
// circuit target the same way: bisect the delay target until the TILOS area
// ratio lands near the middle of that band.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "engine/runner.h"
#include "gen/blocks.h"
#include "gen/iscas_analog.h"
#include "sizing/minflotransit.h"
#include "timing/lowering.h"
#include "util/stopwatch.h"

namespace mft::bench {

/// Shared `--flag N` / `--flag=N` / environment-variable integer parsing
/// for the bench binaries. A malformed value is a hard error — a silently
/// wrong thread count would mislabel the emitted numbers.
inline int bench_int_flag(int argc, char** argv, const char* flag,
                          const char* env_name, int fallback) {
  auto parse = [&](const char* s) {
    char* end = nullptr;
    const long v = std::strtol(s, &end, 10);
    if (end == s || *end != '\0' || v < 0) {
      std::fprintf(stderr, "error: bad %s value '%s'\n", flag, s);
      std::exit(2);
    }
    return static_cast<int>(v);
  };
  const std::size_t len = std::strlen(flag);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        std::exit(2);
      }
      return parse(argv[i + 1]);
    }
    if (std::strncmp(argv[i], flag, len) == 0 && argv[i][len] == '=')
      return parse(argv[i] + len + 1);
  }
  if (env_name != nullptr)
    if (const char* env = std::getenv(env_name)) return parse(env);
  return fallback;
}

/// Engine thread count for a bench binary: `--threads N` / `--threads=N`
/// on the command line, else the MFT_BENCH_THREADS environment variable,
/// else 0 (= hardware concurrency, resolved by JobRunner).
inline int bench_threads(int argc, char** argv) {
  return bench_int_flag(argc, argv, "--threads", "MFT_BENCH_THREADS", 0);
}

/// Inner-loop (level-parallel) thread count: `--inner-threads N`, else the
/// MFT_BENCH_INNER_THREADS environment variable, else `fallback`.
inline int bench_inner_threads(int argc, char** argv, int fallback = 0) {
  return bench_int_flag(argc, argv, "--inner-threads",
                        "MFT_BENCH_INNER_THREADS", fallback);
}

/// Wall times of repeated runs of one timed section. BENCH_*.json numbers
/// derived from a single total are at the mercy of CI noise; `min` is the
/// least-noise estimate of the true cost and `median` its robust central
/// tendency — emit those alongside (or instead of) the total.
struct RepeatTiming {
  std::vector<double> seconds;

  double total() const {
    double t = 0.0;
    for (const double s : seconds) t += s;
    return t;
  }
  double min() const {
    return seconds.empty()
               ? 0.0
               : *std::min_element(seconds.begin(), seconds.end());
  }
  double median() const {
    if (seconds.empty()) return 0.0;
    std::vector<double> sorted = seconds;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t n = sorted.size();
    return n % 2 == 1 ? sorted[n / 2]
                      : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
  }
};

/// Times `fn()` `repeats` times.
template <typename F>
RepeatTiming time_repeats(int repeats, F&& fn) {
  RepeatTiming t;
  t.seconds.reserve(static_cast<std::size_t>(repeats));
  for (int i = 0; i < repeats; ++i) {
    Stopwatch sw;
    fn();
    t.seconds.push_back(sw.seconds());
  }
  return t;
}

/// Shared progress line for bench batches.
inline void print_progress(const JobResult& r, int done, int total) {
  std::printf("  [%d/%d] %-20s %6.2fs%s\n", done, total, r.label.c_str(),
              r.wall_seconds, r.ok ? "" : "  FAILED");
  std::fflush(stdout);
}

/// Shared trailer line for bench batches.
inline void print_engine_summary(const BatchResult& batch) {
  std::printf("engine: %d threads, %d jobs in %.1fs (%.2f jobs/s)\n",
              batch.threads_used, static_cast<int>(batch.results.size()),
              batch.wall_seconds, batch.jobs_per_second);
}

/// Machine-readable benchmark record sink. Each entry is one benchmark run
/// (name, wall seconds, and free-form numeric metrics such as pivot counts
/// or optimal costs); write() emits a JSON array so the perf trajectory can
/// be diffed across PRs (BENCH_flow_solvers.json, BENCH_table1.json, ...).
class BenchJson {
 public:
  void add(const std::string& name, double wall_seconds,
           std::vector<std::pair<std::string, double>> metrics = {}) {
    entries_.push_back(Entry{name, wall_seconds, std::move(metrics)});
  }

  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) return false;
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      std::fprintf(f, "  {\"name\": \"%s\", \"wall_seconds\": %.9g",
                   e.name.c_str(), e.wall_seconds);
      for (const auto& [key, value] : e.metrics)
        std::fprintf(f, ", \"%s\": %.17g", key.c_str(), value);
      std::fprintf(f, "}%s\n", i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    return true;
  }

 private:
  struct Entry {
    std::string name;
    double wall_seconds = 0.0;
    std::vector<std::pair<std::string, double>> metrics;
  };
  std::vector<Entry> entries_;
};

/// Builds a Table-1 circuit by name: "adder32", "adder256", or an ISCAS85
/// analog name ("c432" ... "c7552").
inline Netlist load_circuit(const std::string& name) {
  if (name == "adder32") return make_ripple_adder(32);
  if (name == "adder64") return make_ripple_adder(64);
  if (name == "adder128") return make_ripple_adder(128);
  if (name == "adder256") return make_ripple_adder(256);
  return make_iscas_analog(name);
}

struct CalibratedTarget {
  double dmin = 0.0;    ///< CP of the minimum-sized circuit
  double target = 0.0;  ///< calibrated delay target
  double tilos_area_ratio = 0.0;  ///< TILOS area / min area at `target`
};

/// Bisects the delay target so TILOS lands at roughly `area_ratio` times the
/// minimum-sized area (the paper's 1.5–1.75 band -> default 1.6).
inline CalibratedTarget calibrate_target(const SizingNetwork& net,
                                         double area_ratio = 1.6,
                                         int steps = 7) {
  CalibratedTarget cal;
  cal.dmin = min_sized_delay(net);
  const double min_area = net.area(net.min_sizes());
  double lo = 0.05, hi = 1.0;  // fraction of Dmin
  double best_target = cal.dmin;
  double best_ratio = 1.0;
  for (int i = 0; i < steps; ++i) {
    const double mid = 0.5 * (lo + hi);
    const TilosResult r = run_tilos(net, mid * cal.dmin);
    if (!r.met_target) {
      lo = mid;  // infeasible: relax
      continue;
    }
    best_target = mid * cal.dmin;
    best_ratio = r.area / min_area;
    if (r.area / min_area > area_ratio)
      lo = mid;  // too expensive: relax the target
    else
      hi = mid;  // cheap: tighten
  }
  cal.target = best_target;
  cal.tilos_area_ratio = best_ratio;
  return cal;
}

}  // namespace mft::bench
