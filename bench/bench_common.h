// Shared helpers for the benchmark binaries: circuit loading by Table-1 name
// and delay-target calibration.
//
// The paper reports rows "for sizing solutions where the area penalty is
// within 1.5–1.75 times that of a minimum sized circuit" (§3). Absolute
// delay values are technology-bound, so each bench calibrates its per-
// circuit target the same way: bisect the delay target until the TILOS area
// ratio lands near the middle of that band.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "engine/runner.h"
#include "gen/blocks.h"
#include "gen/iscas_analog.h"
#include "sizing/minflotransit.h"
#include "timing/lowering.h"
#include "util/stopwatch.h"

namespace mft::bench {

/// Shared `--flag N` / `--flag=N` / environment-variable integer parsing
/// for the bench binaries. A malformed value is a hard error — a silently
/// wrong thread count would mislabel the emitted numbers.
inline int bench_int_flag(int argc, char** argv, const char* flag,
                          const char* env_name, int fallback) {
  auto parse = [&](const char* s) {
    char* end = nullptr;
    const long v = std::strtol(s, &end, 10);
    if (end == s || *end != '\0' || v < 0) {
      std::fprintf(stderr, "error: bad %s value '%s'\n", flag, s);
      std::exit(2);
    }
    return static_cast<int>(v);
  };
  const std::size_t len = std::strlen(flag);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        std::exit(2);
      }
      return parse(argv[i + 1]);
    }
    if (std::strncmp(argv[i], flag, len) == 0 && argv[i][len] == '=')
      return parse(argv[i] + len + 1);
  }
  if (env_name != nullptr)
    if (const char* env = std::getenv(env_name)) return parse(env);
  return fallback;
}

/// Engine thread count for a bench binary: `--threads N` / `--threads=N`
/// on the command line, else the MFT_BENCH_THREADS environment variable,
/// else 0 (= hardware concurrency, resolved by JobRunner).
inline int bench_threads(int argc, char** argv) {
  return bench_int_flag(argc, argv, "--threads", "MFT_BENCH_THREADS", 0);
}

/// Inner-loop (level-parallel) thread count: `--inner-threads N`, else the
/// MFT_BENCH_INNER_THREADS environment variable, else `fallback`.
inline int bench_inner_threads(int argc, char** argv, int fallback = 0) {
  return bench_int_flag(argc, argv, "--inner-threads",
                        "MFT_BENCH_INNER_THREADS", fallback);
}

/// Wall times of repeated runs of one timed section. BENCH_*.json numbers
/// derived from a single total are at the mercy of CI noise; `min` is the
/// least-noise estimate of the true cost and `median` its robust central
/// tendency — emit those alongside (or instead of) the total.
struct RepeatTiming {
  std::vector<double> seconds;

  double total() const {
    double t = 0.0;
    for (const double s : seconds) t += s;
    return t;
  }
  double min() const {
    return seconds.empty()
               ? 0.0
               : *std::min_element(seconds.begin(), seconds.end());
  }
  double median() const {
    if (seconds.empty()) return 0.0;
    std::vector<double> sorted = seconds;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t n = sorted.size();
    return n % 2 == 1 ? sorted[n / 2]
                      : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
  }
};

/// Times `fn()` `repeats` times.
template <typename F>
RepeatTiming time_repeats(int repeats, F&& fn) {
  RepeatTiming t;
  t.seconds.reserve(static_cast<std::size_t>(repeats));
  for (int i = 0; i < repeats; ++i) {
    Stopwatch sw;
    fn();
    t.seconds.push_back(sw.seconds());
  }
  return t;
}

/// Shared progress line for bench batches.
inline void print_progress(const JobResult& r, int done, int total) {
  std::printf("  [%d/%d] %-20s %6.2fs%s\n", done, total, r.label.c_str(),
              r.wall_seconds, r.ok ? "" : "  FAILED");
  std::fflush(stdout);
}

/// Shared trailer line for bench batches.
inline void print_engine_summary(const BatchResult& batch) {
  std::printf("engine: %d threads, %d jobs in %.1fs (%.2f jobs/s)\n",
              batch.threads_used, static_cast<int>(batch.results.size()),
              batch.wall_seconds, batch.jobs_per_second);
}

/// Machine-readable benchmark record sink. Each entry is one benchmark run
/// (name, wall seconds, and free-form numeric metrics such as pivot counts
/// or optimal costs); write() emits a JSON array so the perf trajectory can
/// be diffed across PRs (BENCH_flow_solvers.json, BENCH_table1.json, ...).
class BenchJson {
 public:
  void add(const std::string& name, double wall_seconds,
           std::vector<std::pair<std::string, double>> metrics = {}) {
    entries_.push_back(Entry{name, wall_seconds, std::move(metrics)});
  }

  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) return false;
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      std::fprintf(f, "  {\"name\": \"%s\", \"wall_seconds\": %.9g",
                   e.name.c_str(), e.wall_seconds);
      for (const auto& [key, value] : e.metrics)
        std::fprintf(f, ", \"%s\": %.17g", key.c_str(), value);
      std::fprintf(f, "}%s\n", i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    return true;
  }

 private:
  struct Entry {
    std::string name;
    double wall_seconds = 0.0;
    std::vector<std::pair<std::string, double>> metrics;
  };
  std::vector<Entry> entries_;
};

/// Builds a Table-1 circuit by name: "adder32", "adder256", or an ISCAS85
/// analog name ("c432" ... "c7552").
inline Netlist load_circuit(const std::string& name) {
  if (name == "adder32") return make_ripple_adder(32);
  if (name == "adder64") return make_ripple_adder(64);
  if (name == "adder128") return make_ripple_adder(128);
  if (name == "adder256") return make_ripple_adder(256);
  return make_iscas_analog(name);
}

struct CalibratedTarget {
  double dmin = 0.0;    ///< CP of the minimum-sized circuit
  double target = 0.0;  ///< calibrated delay target
  double tilos_area_ratio = 0.0;  ///< TILOS area / min area at `target`
};

/// Engine-parallel calibration: a per-circuit bisection run in lock step —
/// every bisection step is ONE
/// engine batch of TILOS-only probe jobs (max_iterations = 0) across all
/// circuits, fanned over the runner's workers. Each circuit's bisection
/// decisions depend only on its own probe outcomes, and TILOS probes are
/// bit-identical at any worker/inner-thread count, so the calibrated delay
/// specs are identical to the sequential version at any thread count —
/// while the longest sequential stretch of the Table-1 reproduction now
/// parallelizes like the rest of the batch.
inline std::vector<CalibratedTarget> calibrate_targets(
    const std::vector<const SizingNetwork*>& networks,
    const JobRunnerOptions& ropt, double area_ratio = 1.6, int steps = 7) {
  const std::size_t n = networks.size();
  std::vector<CalibratedTarget> cals(n);
  std::vector<double> lo(n, 0.05), hi(n, 1.0), min_area(n);
  std::vector<double> best_target(n), best_ratio(n, 1.0);
  for (std::size_t i = 0; i < n; ++i)
    min_area[i] = networks[i]->area(networks[i]->min_sizes());
  const JobRunner runner(ropt);
  for (int step = 0; step < steps; ++step) {
    std::vector<SizingJob> jobs;
    for (std::size_t i = 0; i < n; ++i) {
      SizingJob job;
      job.network = static_cast<int>(i);
      // Ratio-form target: the runner resolves mid * Dmin itself (same
      // arithmetic on the same cached Dmin), so Dmin is computed exactly
      // once per network — in the runner's NetInfo cache — instead of a
      // second time here.
      job.target_ratio = 0.5 * (lo[i] + hi[i]);
      // D/W refinement off; the pinned pipeline shape (engine_test's
      // legacy contract) still runs one W-phase canonicalization per
      // feasible probe — it never touches result.initial, which is all
      // the bisection reads, and costs little next to the TILOS probe.
      job.options.max_iterations = 0;
      job.label = "calibrate/" + std::to_string(i) + "@" +
                  std::to_string(step);
      jobs.push_back(std::move(job));
    }
    const BatchResult batch = runner.run(networks, jobs);
    for (std::size_t i = 0; i < n; ++i) {
      const double mid = 0.5 * (lo[i] + hi[i]);
      const JobResult& jr = batch.results[i];
      if (step == 0) {
        cals[i].dmin = jr.dmin;  // the runner's cached min-sized delay
        best_target[i] = cals[i].dmin;
      }
      if (!jr.ok) {
        // A dead probe is a bench bug, not an infeasible target; treating
        // it as the latter would silently loosen the calibrated spec and
        // mislabel every downstream number.
        std::fprintf(stderr, "error: calibration probe %s failed: %s\n",
                     jr.label.c_str(), jr.error.c_str());
        std::exit(2);
      }
      if (!jr.result.initial.met_target) {
        lo[i] = mid;  // infeasible: relax
        continue;
      }
      best_target[i] = mid * cals[i].dmin;
      best_ratio[i] = jr.result.initial.area / min_area[i];
      if (best_ratio[i] > area_ratio)
        lo[i] = mid;  // too expensive: relax the target
      else
        hi[i] = mid;  // cheap: tighten
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    cals[i].target = best_target[i];
    cals[i].tilos_area_ratio = best_ratio[i];
  }
  return cals;
}

/// Single-circuit calibration: bisects the delay target so TILOS lands at
/// roughly `area_ratio` times the minimum-sized area (the paper's
/// 1.5–1.75 band -> default 1.6). Delegates to calibrate_targets with a
/// one-job batch, so there is exactly one copy of the bisection rule.
inline CalibratedTarget calibrate_target(const SizingNetwork& net,
                                         double area_ratio = 1.6,
                                         int steps = 7) {
  JobRunnerOptions ropt;
  ropt.threads = 1;
  return calibrate_targets({&net}, ropt, area_ratio, steps).front();
}

}  // namespace mft::bench
