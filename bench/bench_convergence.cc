// Convergence behavior (paper §3: "only a few tens of iterations were
// required ... no more than 100 iterations" on the steepest parts of the
// trade-off curve). Prints the per-iteration area trajectory of the D/W
// alternation for representative circuits at moderate and steep targets.
#include <cstdio>

#include "bench_common.h"
#include "util/str.h"
#include "util/table.h"

using namespace mft;
using namespace mft::bench;

int main() {
  std::printf("MINFLOTRANSIT convergence trajectories\n\n");
  Table summary({"circuit", "target", "iterations", "TILOS area", "final area",
                 "savings"});
  for (const std::string& name :
       {std::string("c432"), std::string("c1355"), std::string("c6288")}) {
    const Netlist nl = load_circuit(name);
    const LoweredCircuit lc = lower_gate_level(nl, Tech{});
    const double dmin = min_sized_delay(lc.net);
    const double floor_d = run_tilos(lc.net, 0.05 * dmin).achieved_delay;
    for (double lambda : {0.5, 0.15}) {  // moderate and steep
      const double target = floor_d + lambda * (dmin - floor_d);
      const MinflotransitResult r = run_minflotransit(lc.net, target);
      if (!r.initial.met_target) continue;
      summary.add_row({name, strf("%.2f Dmin", target / dmin),
                       std::to_string(r.iterations.size()),
                       strf("%.1f", r.initial.area), strf("%.1f", r.area),
                       strf("%.1f%%", 100.0 * (1.0 - r.area / r.initial.area))});
      std::printf("%s @ %.2f Dmin — area per iteration:", name.c_str(),
                  target / dmin);
      for (std::size_t i = 0; i < r.iterations.size(); ++i)
        std::printf("%s %.0f", i ? "," : "", r.iterations[i].area);
      std::printf("\n");
      std::fflush(stdout);
    }
  }
  std::printf("\n%s", summary.to_text().c_str());
  return 0;
}
