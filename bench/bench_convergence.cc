// Convergence behavior (paper §3: "only a few tens of iterations were
// required ... no more than 100 iterations" on the steepest parts of the
// trade-off curve). Prints the per-iteration area trajectory of the D/W
// alternation for representative circuits at moderate and steep targets.
// The (circuit × target) runs are one engine batch; trajectories come back
// in job order regardless of --threads.
#include <cstdio>

#include "bench_common.h"
#include "util/str.h"
#include "util/table.h"

using namespace mft;
using namespace mft::bench;

int main(int argc, char** argv) {
  const std::vector<std::string> names = {"c432", "c1355", "c6288"};

  std::printf("MINFLOTRANSIT convergence trajectories\n\n");

  // Sequential prologue: build/lower each circuit and probe its floor.
  std::vector<Netlist> netlists;
  std::vector<LoweredCircuit> lowered;
  std::vector<double> dmin, floor_d;
  for (const std::string& name : names) {
    netlists.push_back(load_circuit(name));
    lowered.push_back(lower_gate_level(netlists.back(), Tech{}));
    const SizingNetwork& net = lowered.back().net;
    dmin.push_back(min_sized_delay(net));
    floor_d.push_back(run_tilos(net, 0.05 * dmin.back()).achieved_delay);
  }

  std::vector<const SizingNetwork*> networks;
  for (const LoweredCircuit& lc : lowered) networks.push_back(&lc.net);
  std::vector<SizingJob> jobs;
  for (std::size_t c = 0; c < names.size(); ++c) {
    for (double lambda : {0.5, 0.15}) {  // moderate and steep
      SizingJob job;
      job.network = static_cast<int>(c);
      job.target_delay = floor_d[c] + lambda * (dmin[c] - floor_d[c]);
      job.label = names[c] + strf("@%.2fDmin", job.target_delay / dmin[c]);
      jobs.push_back(std::move(job));
    }
  }

  JobRunnerOptions ropt;
  ropt.threads = bench_threads(argc, argv);
  ropt.inner_threads = bench_inner_threads(argc, argv);
  ropt.progress = print_progress;
  const JobRunner runner(ropt);
  std::printf("running %d jobs on %d threads...\n",
              static_cast<int>(jobs.size()), runner.threads());
  const BatchResult batch = runner.run(networks, jobs);

  Table summary({"circuit", "target", "iterations", "TILOS area", "final area",
                 "savings"});
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const std::size_t c = static_cast<std::size_t>(jobs[i].network);
    const JobResult& jr = batch.results[i];
    if (!jr.ok || !jr.result.initial.met_target) continue;
    const MinflotransitResult& r = jr.result;
    summary.add_row({names[c], strf("%.2f Dmin", jr.target / dmin[c]),
                     std::to_string(r.iterations.size()),
                     strf("%.1f", r.initial.area), strf("%.1f", r.area),
                     strf("%.1f%%", 100.0 * (1.0 - r.area / r.initial.area))});
    std::printf("%s @ %.2f Dmin — area per iteration:", names[c].c_str(),
                jr.target / dmin[c]);
    for (std::size_t it = 0; it < r.iterations.size(); ++it)
      std::printf("%s %.0f", it ? "," : "", r.iterations[it].area);
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("\n%s", summary.to_text().c_str());
  print_engine_summary(batch);
  return 0;
}
