// Reproduces Table 1: area savings of MINFLOTRANSIT over TILOS and the CPU
// time of both, for ripple-carry adders and the ten ISCAS85 analogs, at
// delay specs calibrated so the TILOS area penalty sits in the paper's
// 1.5–1.75× band (§3). Expected shape (not absolute numbers): savings ≈1%
// on adders, 2–17% elsewhere, largest on c6288; MINFLOTRANSIT total time
// within ~2–4× of TILOS.
#include <cstdio>

#include "bench_common.h"
#include "util/str.h"
#include "util/table.h"

using namespace mft;
using namespace mft::bench;

int main() {
  const std::vector<std::string> circuits = {
      "adder32", "adder256", "c432",  "c499",  "c880",  "c1355",
      "c1908",   "c2670",    "c3540", "c5315", "c6288", "c7552"};

  Table table({"Circuit", "# Gates", "Area savings over TILOS", "Delay spec",
               "CPU (TILOS)", "CPU (OURS)", "TILOS area/min", "MFT area/min"});
  BenchJson json;

  std::printf("Table 1: MINFLOTRANSIT vs TILOS at calibrated delay specs\n");
  std::printf("(paper: UltraSPARC-10 seconds; here: this machine)\n\n");
  for (const std::string& name : circuits) {
    const Netlist nl = load_circuit(name);
    const LoweredCircuit lc = lower_gate_level(nl, Tech{});
    const double min_area = lc.net.area(lc.net.min_sizes());
    const CalibratedTarget cal = calibrate_target(lc.net);

    const MinflotransitResult r = run_minflotransit(lc.net, cal.target);
    const double savings =
        r.initial.met_target && r.met_target
            ? 100.0 * (1.0 - r.area / r.initial.area)
            : 0.0;
    table.add_row({name, std::to_string(nl.num_logic_gates()),
                   strf("%.1f%%", savings),
                   strf("%.2f Dmin", cal.target / cal.dmin),
                   strf("%.2fs", r.tilos_seconds),
                   strf("%.2fs", r.total_seconds),
                   strf("%.2f", r.initial.area / min_area),
                   strf("%.2f", r.area / min_area)});
    std::fflush(stdout);
    json.add("table1/" + name, r.total_seconds,
             {{"gates", static_cast<double>(nl.num_logic_gates())},
              {"tilos_seconds", r.tilos_seconds},
              {"iterations", static_cast<double>(r.iterations.size())},
              {"area_savings_pct", savings},
              {"tilos_area_ratio", r.initial.area / min_area},
              {"mft_area_ratio", r.area / min_area}});
  }
  std::printf("%s\n", table.to_text().c_str());
  std::printf("CSV:\n%s", table.to_csv().c_str());
  if (!json.write("BENCH_table1.json"))
    std::fprintf(stderr, "warning: could not write BENCH_table1.json\n");
  return 0;
}
