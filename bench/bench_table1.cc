// Reproduces Table 1: area savings of MINFLOTRANSIT over TILOS and the CPU
// time of both, for ripple-carry adders and the ten ISCAS85 analogs, at
// delay specs calibrated so the TILOS area penalty sits in the paper's
// 1.5–1.75× band (§3). Expected shape (not absolute numbers): savings ≈1%
// on adders, 2–17% elsewhere, largest on c6288; MINFLOTRANSIT total time
// within ~2–4× of TILOS.
//
// Both the calibration and the sizing runs go through the engine
// (--threads / MFT_BENCH_THREADS to fan them out): the per-circuit TILOS
// bisection runs in lock step, one batch of probe jobs per bisection step
// (calibrate_targets in bench_common.h), and the sized circuits are one
// final batch. Probe outcomes are bit-identical at any worker count, so
// the delay specs are too; results are collected in job order so the
// table is as well.
#include <cstdio>

#include "bench_common.h"
#include "util/str.h"
#include "util/table.h"

using namespace mft;
using namespace mft::bench;

int main(int argc, char** argv) {
  const std::vector<std::string> circuits = {
      "adder32", "adder256", "c432",  "c499",  "c880",  "c1355",
      "c1908",   "c2670",    "c3540", "c5315", "c6288", "c7552"};

  Table table({"Circuit", "# Gates", "Area savings over TILOS", "Delay spec",
               "CPU (TILOS)", "CPU (OURS)", "TILOS area/min", "MFT area/min"});
  BenchJson json;

  std::printf("Table 1: MINFLOTRANSIT vs TILOS at calibrated delay specs\n");
  std::printf("(paper: UltraSPARC-10 seconds; here: this machine)\n\n");

  // Build and lower every circuit, then calibrate all of them through the
  // engine: each bisection step is one batch of TILOS probe jobs.
  std::vector<Netlist> netlists;
  std::vector<LoweredCircuit> lowered;
  for (const std::string& name : circuits) {
    netlists.push_back(load_circuit(name));
    lowered.push_back(lower_gate_level(netlists.back(), Tech{}));
  }
  std::vector<const SizingNetwork*> networks;
  for (const LoweredCircuit& lc : lowered) networks.push_back(&lc.net);

  JobRunnerOptions calopt;
  calopt.threads = bench_threads(argc, argv);
  calopt.inner_threads = bench_inner_threads(argc, argv);
  std::printf("calibrating %d circuits through the engine...\n",
              static_cast<int>(networks.size()));
  const std::vector<CalibratedTarget> cals =
      calibrate_targets(networks, calopt);

  std::vector<SizingJob> jobs;
  for (std::size_t c = 0; c < circuits.size(); ++c) {
    SizingJob job;
    job.network = static_cast<int>(c);
    job.target_delay = cals[c].target;  // absolute, calibrated
    job.label = circuits[c];
    jobs.push_back(std::move(job));
  }

  JobRunnerOptions ropt;
  ropt.threads = bench_threads(argc, argv);
  ropt.inner_threads = bench_inner_threads(argc, argv);
  ropt.progress = print_progress;
  const JobRunner runner(ropt);
  std::printf("running %d circuits on %d threads...\n",
              static_cast<int>(jobs.size()), runner.threads());
  const BatchResult batch = runner.run(networks, jobs);

  for (std::size_t c = 0; c < circuits.size(); ++c) {
    const JobResult& jr = batch.results[c];
    if (!jr.ok) {
      std::fprintf(stderr, "error: %s failed: %s\n", circuits[c].c_str(),
                   jr.error.c_str());
      continue;
    }
    const MinflotransitResult& r = jr.result;
    const double min_area = jr.min_area;
    const double savings =
        r.initial.met_target && r.met_target
            ? 100.0 * (1.0 - r.area / r.initial.area)
            : 0.0;
    table.add_row({circuits[c], std::to_string(netlists[c].num_logic_gates()),
                   strf("%.1f%%", savings),
                   strf("%.2f Dmin", jr.target / cals[c].dmin),
                   strf("%.2fs", r.tilos_seconds),
                   strf("%.2fs", r.total_seconds),
                   strf("%.2f", r.initial.area / min_area),
                   strf("%.2f", r.area / min_area)});
    json.add("table1/" + circuits[c], r.total_seconds,
             {{"gates", static_cast<double>(netlists[c].num_logic_gates())},
              {"tilos_seconds", r.tilos_seconds},
              {"iterations", static_cast<double>(r.iterations.size())},
              {"area_savings_pct", savings},
              {"tilos_area_ratio", r.initial.area / min_area},
              {"mft_area_ratio", r.area / min_area},
              {"job_wall_seconds", jr.wall_seconds}});
  }
  std::printf("%s\n", table.to_text().c_str());
  std::printf("CSV:\n%s", table.to_csv().c_str());
  print_engine_summary(batch);
  if (!json.write("BENCH_table1.json"))
    std::fprintf(stderr, "warning: could not write BENCH_table1.json\n");
  return 0;
}
