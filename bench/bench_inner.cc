// Inner-loop benchmark: the three hot kernels (STA full, incremental STA
// sweeps, W-phase Gauss–Seidel) on the largest generated instance.
//
// Three axes:
//  - inner-thread scaling (sequential vs N level-parallel inner threads,
//    plus the bit-exactness cross-check: thread count must never change
//    results),
//  - layout ablation: the pre-SweepPlan array-of-structs walks (per-vertex
//    heap load vectors, id-indexed values, Digraph adjacency) re-timed
//    under the same seeds against the level-contiguous SoA kernels the
//    library now runs, with a bit-identity gate between the two — the
//    layout win is attributable, not just a before/after wall number,
//  - per-kernel throughput: vertices/second and effective GB/s (documented
//    byte model below) so regressions show up as bandwidth, not just time.
//
// Emits BENCH_inner.json with min/median wall times per phase at each
// thread count (RepeatTiming — robust to CI noise), the speedups, the
// determinism bit and hw_concurrency. The thread speedup is hardware-bound
// — interpret it against hw_concurrency: on >= 4 real cores the sweep
// phases are expected >= 1.5x at 4 inner threads, while a 1-core container
// reads well BELOW 1x because four workers time-slice one core. The
// 1-thread numbers run the sequential code path (no arena), so they double
// as the no-regression baseline; bench/BASELINE_inner_pr6.json snapshots
// the pre-SweepPlan numbers on the same instance. Override the thread
// count with --inner-threads or MFT_BENCH_INNER_THREADS.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <thread>

#include "bench_common.h"
#include "sizing/wphase.h"
#include "timing/sta.h"
#include "util/parallel.h"
#include "util/str.h"

using namespace mft;
using namespace mft::bench;

namespace {

bool reports_identical(const TimingReport& a, const TimingReport& b) {
  return a.delay == b.delay && a.at == b.at && a.rt == b.rt &&
         a.slack == b.slack && a.critical_path == b.critical_path &&
         a.cp_vertex == b.cp_vertex;
}

/// The largest generated instance: a wide datapath array — `slices`
/// independent `bits`-bit ripple-carry chains in one netlist (the shape of
/// a big multi-lane datapath, and of the sharded-solve workloads 10-100x
/// beyond c7552). Width scales with `slices`, depth with `bits`, which is
/// exactly the single-large-circuit case the level-parallel inner loop
/// exists for.
Netlist make_wide_datapath(int slices, int bits) {
  Netlist nl(strf("datapath%dx%d", slices, bits));
  for (int s = 0; s < slices; ++s) {
    const std::string p = "s" + std::to_string(s);
    GateId carry = nl.add_input(p + "_cin");
    for (int i = 0; i < bits; ++i) {
      const GateId a = nl.add_input(strf("%s_a%d", p.c_str(), i));
      const GateId b = nl.add_input(strf("%s_b%d", p.c_str(), i));
      const AdderBits fa = add_full_adder_nand(
          nl, a, b, carry, strf("%s_fa%d", p.c_str(), i));
      carry = fa.cout;
      nl.mark_output(fa.sum);
    }
    nl.mark_output(carry);
  }
  return nl;
}

// ---------------------------------------------------------------------------
// Legacy array-of-structs reference kernels (layout ablation arm)
// ---------------------------------------------------------------------------
// The exact pre-SweepPlan walks, kept here (not in the library): per-vertex
// delay chases verts_[v].loads, the sweeps walk topological_order() with
// id-indexed value arrays, W-phase relaxes in reverse topological order.
// The determinism gate below asserts they still produce bit-identical
// results to the streaming kernels — the ablation times the layout, not a
// different algorithm.

double aos_delay(const SizingNetwork& net, NodeId v,
                 const std::vector<double>& sizes) {
  const SizingVertex& sv = net.vertex(v);
  if (sv.kind == VertexKind::kSource) return 0.0;
  double load = sv.b;
  for (const LoadTerm& t : sv.loads)
    load += t.coeff * sizes[static_cast<std::size_t>(t.vertex)];
  return sv.a_self + load / sizes[static_cast<std::size_t>(v)];
}

void aos_sweeps(const SizingNetwork& net, TimingReport& r) {
  const double inf = std::numeric_limits<double>::infinity();
  const Digraph& g = net.dag();
  r.critical_path = 0.0;
  r.cp_vertex = kInvalidNode;
  for (NodeId v : net.topological_order()) {
    double at = 0.0;
    for (ArcId a : g.in_arcs(v)) {
      const NodeId j = g.tail(a);
      at = std::max(at, r.at[static_cast<std::size_t>(j)] +
                            r.delay[static_cast<std::size_t>(j)]);
    }
    r.at[static_cast<std::size_t>(v)] = at;
    const double end = at + r.delay[static_cast<std::size_t>(v)];
    if (r.cp_vertex == kInvalidNode || end > r.critical_path) {
      r.critical_path = end;
      r.cp_vertex = v;
    }
  }
  const auto& topo = net.topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId v = *it;
    double rt = inf;
    if (net.vertex(v).is_po || g.out_degree(v) == 0)
      rt = r.critical_path - r.delay[static_cast<std::size_t>(v)];
    for (ArcId a : g.out_arcs(v)) {
      const NodeId j = g.head(a);
      rt = std::min(rt, r.rt[static_cast<std::size_t>(j)] -
                            r.delay[static_cast<std::size_t>(v)]);
    }
    r.rt[static_cast<std::size_t>(v)] = rt;
    r.slack[static_cast<std::size_t>(v)] =
        rt - r.at[static_cast<std::size_t>(v)];
  }
}

TimingReport aos_run_sta(const SizingNetwork& net,
                         const std::vector<double>& sizes) {
  const std::size_t n = static_cast<std::size_t>(net.num_vertices());
  TimingReport r;
  r.delay.resize(n);
  r.at.assign(n, 0.0);
  r.rt.assign(n, std::numeric_limits<double>::infinity());
  r.slack.resize(n);
  for (NodeId v = 0; v < net.num_vertices(); ++v)
    r.delay[static_cast<std::size_t>(v)] = aos_delay(net, v, sizes);
  aos_sweeps(net, r);
  return r;
}

WPhaseResult aos_wphase(const SizingNetwork& net,
                        const std::vector<double>& budget) {
  const Tech& tech = net.tech();
  WPhaseResult res;
  res.sizes = net.min_sizes();
  const auto start = res.sizes;
  const auto& topo = net.topological_order();
  const int max_sweeps = std::max(4, net.num_vertices());
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    ++res.sweeps;
    double max_rel_change = 0.0;
    char infeasible = 0;
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      const NodeId v = *it;
      const SizingVertex& sv = net.vertex(v);
      if (sv.kind == VertexKind::kSource) continue;
      const double d = budget[static_cast<std::size_t>(v)];
      if (d <= sv.a_self) {
        infeasible = 1;
        res.sizes[static_cast<std::size_t>(v)] = tech.max_size;
        continue;
      }
      double load = sv.b;
      for (const LoadTerm& t : sv.loads)
        load += t.coeff * res.sizes[static_cast<std::size_t>(t.vertex)];
      double x = load / (d - sv.a_self);
      if (x > tech.max_size) {
        infeasible = 1;
        x = tech.max_size;
      }
      x = std::max(x, tech.min_size);
      const double old = res.sizes[static_cast<std::size_t>(v)];
      max_rel_change = std::max(max_rel_change, std::abs(x - old) / old);
      res.sizes[static_cast<std::size_t>(v)] = x;
    }
    if (infeasible) res.feasible = false;
    if (max_rel_change < 1e-12) break;
  }
  for (NodeId v = 0; v < net.num_vertices(); ++v)
    if (res.sizes[static_cast<std::size_t>(v)] !=
        start[static_cast<std::size_t>(v)])
      res.changed.push_back(v);
  return res;
}

// ---------------------------------------------------------------------------
// Effective-bandwidth model
// ---------------------------------------------------------------------------
// Bytes each kernel must move per run, counting every array element the
// streaming kernels touch exactly once (8 bytes per double, 4 per int,
// 1 per byte mask; gathers counted once — no cache modeling). A crude
// lower bound on real traffic, but stable across machines, so
// GB/s = bytes / median_seconds tracks layout efficiency over PRs.

double sweeps_bytes(int n, int arcs) {
  const double nd = n, ed = arcs;
  // Forward: fanin offsets + targets, AT+delay gathered per arc, delay +
  // topo_pos per vertex, AT written.           Backward: mirrored with RT.
  const double fwd = 4 * (nd + 1) + 4 * ed + 16 * ed + 8 * nd + 4 * nd + 8 * nd;
  const double bwd = 4 * (nd + 1) + 4 * ed + 8 * ed + 8 * nd + 1 * nd + 8 * nd;
  // Export: pos_of + three reads + four writes per vertex.
  const double exp = 4 * nd + 24 * nd + 32 * nd;
  return fwd + bwd + exp;
}

double full_sta_bytes(int n, int arcs, int load_terms) {
  // Delay init: load offsets + (coeff, target, gathered size) per term +
  // a_self/b/size/source per vertex + delay written; then the sweeps.
  const double nd = n, ld = load_terms;
  const double init = 4 * (nd + 1) + 20 * ld + 25 * nd + 8 * nd;
  return init + sweeps_bytes(n, arcs);
}

double wphase_bytes(int n, int load_terms, int sweeps) {
  const double nd = n, ld = load_terms;
  // Per sweep: load CSR + gathered sizes per term, budget/a_self/b/source
  // per vertex, size read+written.
  const double per_sweep = 4 * (nd + 1) + 20 * ld + 25 * nd + 16 * nd;
  // Gather budgets+start, scatter result.
  const double permute = 3 * (4 * nd + 16 * nd);
  return per_sweep * std::max(1, sweeps) + permute;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned hw = std::thread::hardware_concurrency();
  int par_threads = bench_inner_threads(argc, argv);
  if (par_threads <= 0) par_threads = std::max(4u, hw ? hw : 1u);
  const int repeats = 40;

  const Netlist nl = make_wide_datapath(/*slices=*/256, /*bits=*/24);
  const LoweredCircuit lc = lower_gate_level(nl, Tech{});
  const SizingNetwork& net = lc.net;
  const int n = net.num_vertices();
  const int arcs = net.dag().num_arcs();
  const int load_terms = net.plan().load_off[static_cast<std::size_t>(n)];

  const int levels = net.num_levels();
  int max_width = 0;
  for (int l = 0; l < levels; ++l)
    max_width = std::max(max_width, net.level_offsets()[l + 1] -
                                        net.level_offsets()[l]);
  std::printf(
      "inner-loop bench: %s, %d vertices, %d arcs, %d load terms, %d levels "
      "(avg width %.0f, max %d), hw concurrency %u\n\n",
      nl.name().c_str(), n, arcs, load_terms, levels,
      levels > 0 ? static_cast<double>(n) / levels : 0.0, max_width, hw);

  // Workload inputs: a sized interior point for budgets, and a trail of
  // single-vertex updates for the incremental-sweep phase.
  std::vector<double> sized = net.min_sizes();
  for (NodeId v = 0; v < n; ++v)
    if (!net.is_source(v)) sized[static_cast<std::size_t>(v)] *= 2.0;
  std::vector<double> budget(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v)
    budget[static_cast<std::size_t>(v)] = net.delay(v, sized);
  NodeId bump = 0;
  while (net.is_source(bump)) ++bump;

  BenchJson json;
  const int thread_counts[2] = {1, par_threads};
  RepeatTiming full[2], sweeps[2], wphase[2];
  TimingReport report[2];
  WPhaseResult wres[2];

  for (int i = 0; i < 2; ++i) {
    const int threads = thread_counts[i];
    ThreadArena arena(threads);
    ThreadArena* use = threads > 1 ? &arena : nullptr;  // 1 = sequential

    // Full STA: delay init + both sweeps, from a cold scratch every time.
    TimingScratch scratch;
    scratch.arena = use;
    full[i] = time_repeats(repeats, [&] {
      scratch.valid = false;
      run_sta(net, sized, scratch);
    });

    // Sweep phase: one hinted single-vertex update per run — the delay
    // recompute is O(loaders of one vertex), so this times the level
    // sweeps themselves (the TILOS/D-phase steady state).
    std::vector<double> x = sized;
    const std::vector<NodeId> hint = {bump};
    sweeps[i] = time_repeats(repeats, [&] {
      const std::size_t b = static_cast<std::size_t>(bump);
      x[b] = x[b] == sized[b] ? sized[b] * 1.1 : sized[b];
      run_sta(net, x, scratch, hint);
    });
    report[i] = scratch.report;  // copy for the determinism check

    // W-phase: cold Gauss–Seidel to the least fixpoint of the budgets.
    wphase[i] = time_repeats(repeats, [&] {
      wres[i] = solve_wphase(net, budget, use);
    });

    std::printf(
        "%d inner thread%s: sta_full min %.3fms  sweeps min %.3fms  "
        "wphase min %.3fms (%d sweeps)\n",
        threads, threads == 1 ? " " : "s", full[i].min() * 1e3,
        sweeps[i].min() * 1e3, wphase[i].min() * 1e3, wres[i].sweeps);
    const double phase_bytes[3] = {
        full_sta_bytes(n, arcs, load_terms), sweeps_bytes(n, arcs),
        wphase_bytes(n, load_terms, wres[i].sweeps)};
    const double phase_verts[3] = {
        static_cast<double>(n), static_cast<double>(n),
        static_cast<double>(n) * std::max(1, wres[i].sweeps)};
    int pi = 0;
    for (const char* phase : {"sta_full", "sta_sweeps", "wphase"}) {
      const RepeatTiming& t = pi == 0 ? full[i] : pi == 1 ? sweeps[i]
                                                          : wphase[i];
      json.add(strf("inner/%s_t%d", phase, threads), t.total(),
               {{"min_seconds", t.min()},
                {"median_seconds", t.median()},
                {"vertices_per_second", phase_verts[pi] / t.median()},
                {"effective_gb_per_second",
                 phase_bytes[pi] / t.median() / 1e9},
                {"repeats", static_cast<double>(repeats)},
                {"threads", static_cast<double>(threads)}});
      ++pi;
    }
  }

  // -------------------------------------------------------------------------
  // Layout ablation arm (sequential): legacy AoS walks, same seeds.
  // -------------------------------------------------------------------------
  RepeatTiming aos_full_t, aos_sweeps_t, aos_wphase_t;
  TimingReport aos_report;
  {
    TimingReport r;
    aos_full_t = time_repeats(repeats, [&] { r = aos_run_sta(net, sized); });
    const bool full_match = reports_identical(r, run_sta(net, sized));

    // Hinted single-vertex toggles, mirroring the sweeps phase above: the
    // delay refresh walks reverse_loads, the sweeps walk topo order.
    std::vector<double> x = sized;
    const auto& rev = net.reverse_loads()[static_cast<std::size_t>(bump)];
    aos_sweeps_t = time_repeats(repeats, [&] {
      const std::size_t b = static_cast<std::size_t>(bump);
      x[b] = x[b] == sized[b] ? sized[b] * 1.1 : sized[b];
      r.delay[b] = aos_delay(net, bump, x);
      for (const LoadTerm& t : rev)
        r.delay[static_cast<std::size_t>(t.vertex)] =
            aos_delay(net, t.vertex, x);
      aos_sweeps(net, r);
    });
    aos_report = r;

    WPhaseResult w;
    aos_wphase_t = time_repeats(repeats, [&] { w = aos_wphase(net, budget); });
    const bool wphase_match = w.sizes == wres[0].sizes &&
                              w.sweeps == wres[0].sweeps &&
                              w.feasible == wres[0].feasible;
    if (!full_match || !wphase_match)
      std::printf("layout ablation: AOS/SoA MISMATCH (full %d, wphase %d)\n",
                  full_match, wphase_match);
    // Fold the ablation equivalence into the determinism exit gate below.
    if (!full_match || !wphase_match) aos_report.critical_path = -1.0;
  }
  auto speedup = [](const RepeatTiming& a, const RepeatTiming& b) {
    return b.min() > 0.0 ? a.min() / b.min() : 0.0;
  };
  std::printf(
      "layout ablation (1 thread, AoS -> SoA): sta_full %.2fx "
      "(%.3f -> %.3fms), sweeps %.2fx (%.3f -> %.3fms), wphase %.2fx "
      "(%.3f -> %.3fms)\n",
      speedup(aos_full_t, full[0]), aos_full_t.min() * 1e3, full[0].min() * 1e3,
      speedup(aos_sweeps_t, sweeps[0]), aos_sweeps_t.min() * 1e3,
      sweeps[0].min() * 1e3, speedup(aos_wphase_t, wphase[0]),
      aos_wphase_t.min() * 1e3, wphase[0].min() * 1e3);
  {
    int pi = 0;
    for (const char* phase : {"sta_full", "sta_sweeps", "wphase"}) {
      const RepeatTiming& t = pi == 0   ? aos_full_t
                              : pi == 1 ? aos_sweeps_t
                                        : aos_wphase_t;
      const RepeatTiming& soa = pi == 0 ? full[0] : pi == 1 ? sweeps[0]
                                                            : wphase[0];
      json.add(strf("inner/ablation_aos_%s_t1", phase), t.total(),
               {{"min_seconds", t.min()},
                {"median_seconds", t.median()},
                {"layout_speedup_min", speedup(t, soa)},
                {"layout_speedup_median",
                 soa.median() > 0.0 ? t.median() / soa.median() : 0.0},
                {"repeats", static_cast<double>(repeats)},
                {"threads", 1.0}});
      ++pi;
    }
  }

  const bool deterministic =
      reports_identical(report[0], report[1]) &&
      reports_identical(report[0], aos_report) &&
      wres[0].sizes == wres[1].sizes && wres[0].sweeps == wres[1].sweeps &&
      wres[0].feasible == wres[1].feasible;
  const double sweep_speedup = speedup(sweeps[0], sweeps[1]);
  std::printf(
      "\nspeedup 1 -> %d inner threads: sta_full %.2fx, sweeps %.2fx, "
      "wphase %.2fx (hw concurrency %u)\n",
      par_threads, speedup(full[0], full[1]), sweep_speedup,
      speedup(wphase[0], wphase[1]), hw);
  std::printf("determinism across thread counts and layouts: %s\n",
              deterministic ? "bit-identical" : "MISMATCH");

  json.add("inner/summary", full[0].total() + full[1].total(),
           {{"sweep_speedup", sweep_speedup},
            {"sta_full_speedup", speedup(full[0], full[1])},
            {"wphase_speedup", speedup(wphase[0], wphase[1])},
            {"layout_sta_full_speedup", speedup(aos_full_t, full[0])},
            {"layout_sweep_speedup", speedup(aos_sweeps_t, sweeps[0])},
            {"layout_wphase_speedup", speedup(aos_wphase_t, wphase[0])},
            // Cross-PR trend lines (compare bench/BASELINE_inner_pr6.json).
            {"sta_full_t1_median", full[0].median()},
            {"sta_sweeps_t1_median", sweeps[0].median()},
            {"wphase_t1_median", wphase[0].median()},
            {"inner_threads", static_cast<double>(par_threads)},
            {"hw_concurrency", static_cast<double>(hw)},
            {"deterministic", deterministic ? 1.0 : 0.0},
            {"vertices", static_cast<double>(n)},
            {"arcs", static_cast<double>(arcs)},
            {"load_terms", static_cast<double>(load_terms)},
            {"levels", static_cast<double>(levels)},
            {"max_level_width", static_cast<double>(max_width)}});
  if (!json.write("BENCH_inner.json"))
    std::fprintf(stderr, "warning: could not write BENCH_inner.json\n");
  return deterministic ? 0 : 1;
}
