// Inner-loop parallelism benchmark: level-parallel STA sweeps and W-phase
// Gauss–Seidel on the largest generated instance, sequential vs N inner
// threads, plus a bit-exactness cross-check (the levelization contract:
// thread count must never change results).
//
// Emits BENCH_inner.json with min/median wall times per phase at each
// thread count (RepeatTiming — robust to CI noise), the speedups, the
// determinism bit and hw_concurrency. The speedup is hardware-bound —
// interpret it against hw_concurrency: on >= 4 real cores the sweep phases
// are expected >= 1.5x at 4 inner threads, while a 1-core container reads
// well BELOW 1x because four workers time-slice one core (the engine's
// thread policy never creates that state by itself — it only hands out
// leftover cores that exist; this bench forces it to keep the measurement
// available everywhere). The 1-thread numbers run the unchanged sequential
// code path (no arena), so they double as the no-regression baseline.
// Override the thread count with --inner-threads or
// MFT_BENCH_INNER_THREADS.
#include <algorithm>
#include <cstdio>
#include <thread>

#include "bench_common.h"
#include "sizing/wphase.h"
#include "timing/sta.h"
#include "util/parallel.h"
#include "util/str.h"

using namespace mft;
using namespace mft::bench;

namespace {

bool reports_identical(const TimingReport& a, const TimingReport& b) {
  return a.delay == b.delay && a.at == b.at && a.rt == b.rt &&
         a.slack == b.slack && a.critical_path == b.critical_path &&
         a.cp_vertex == b.cp_vertex;
}

}  // namespace

namespace {

/// The largest generated instance: a wide datapath array — `slices`
/// independent `bits`-bit ripple-carry chains in one netlist (the shape of
/// a big multi-lane datapath, and of the sharded-solve workloads 10-100x
/// beyond c7552). Width scales with `slices`, depth with `bits`, which is
/// exactly the single-large-circuit case the level-parallel inner loop
/// exists for.
Netlist make_wide_datapath(int slices, int bits) {
  Netlist nl(strf("datapath%dx%d", slices, bits));
  for (int s = 0; s < slices; ++s) {
    const std::string p = "s" + std::to_string(s);
    GateId carry = nl.add_input(p + "_cin");
    for (int i = 0; i < bits; ++i) {
      const GateId a = nl.add_input(strf("%s_a%d", p.c_str(), i));
      const GateId b = nl.add_input(strf("%s_b%d", p.c_str(), i));
      const AdderBits fa = add_full_adder_nand(
          nl, a, b, carry, strf("%s_fa%d", p.c_str(), i));
      carry = fa.cout;
      nl.mark_output(fa.sum);
    }
    nl.mark_output(carry);
  }
  return nl;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned hw = std::thread::hardware_concurrency();
  int par_threads = bench_inner_threads(argc, argv);
  if (par_threads <= 0) par_threads = std::max(4u, hw ? hw : 1u);
  const int repeats = 40;

  const Netlist nl = make_wide_datapath(/*slices=*/256, /*bits=*/24);
  const LoweredCircuit lc = lower_gate_level(nl, Tech{});
  const SizingNetwork& net = lc.net;

  const int levels = net.num_levels();
  int max_width = 0;
  for (int l = 0; l < levels; ++l)
    max_width = std::max(max_width, net.level_offsets()[l + 1] -
                                        net.level_offsets()[l]);
  std::printf(
      "inner-loop bench: %s, %d vertices, %d arcs, %d levels "
      "(avg width %.0f, max %d), hw concurrency %u\n\n",
      nl.name().c_str(), net.num_vertices(), net.dag().num_arcs(), levels,
      levels > 0 ? static_cast<double>(net.num_vertices()) / levels : 0.0,
      max_width, hw);

  // Workload inputs: a sized interior point for budgets, and a trail of
  // single-vertex updates for the incremental-sweep phase.
  std::vector<double> sized = net.min_sizes();
  for (NodeId v = 0; v < net.num_vertices(); ++v)
    if (!net.is_source(v)) sized[static_cast<std::size_t>(v)] *= 2.0;
  std::vector<double> budget(static_cast<std::size_t>(net.num_vertices()));
  for (NodeId v = 0; v < net.num_vertices(); ++v)
    budget[static_cast<std::size_t>(v)] = net.delay(v, sized);
  NodeId bump = 0;
  while (net.is_source(bump)) ++bump;

  BenchJson json;
  const int thread_counts[2] = {1, par_threads};
  RepeatTiming full[2], sweeps[2], wphase[2];
  TimingReport report[2];
  WPhaseResult wres[2];

  for (int i = 0; i < 2; ++i) {
    const int threads = thread_counts[i];
    ThreadArena arena(threads);
    ThreadArena* use = threads > 1 ? &arena : nullptr;  // 1 = pre-PR path

    // Full STA: delay init + both sweeps, from a cold scratch every time.
    TimingScratch scratch;
    scratch.arena = use;
    full[i] = time_repeats(repeats, [&] {
      scratch.valid = false;
      run_sta(net, sized, scratch);
    });

    // Sweep phase: one hinted single-vertex update per run — the delay
    // recompute is O(loaders of one vertex), so this times the level
    // sweeps themselves (the TILOS/D-phase steady state).
    std::vector<double> x = sized;
    const std::vector<NodeId> hint = {bump};
    sweeps[i] = time_repeats(repeats, [&] {
      const std::size_t b = static_cast<std::size_t>(bump);
      x[b] = x[b] == sized[b] ? sized[b] * 1.1 : sized[b];
      run_sta(net, x, scratch, hint);
    });
    report[i] = scratch.report;  // copy for the determinism check

    // W-phase: cold Gauss–Seidel to the least fixpoint of the budgets.
    wphase[i] = time_repeats(repeats, [&] {
      wres[i] = solve_wphase(net, budget, use);
    });

    std::printf(
        "%d inner thread%s: sta_full min %.3fms  sweeps min %.3fms  "
        "wphase min %.3fms (%d sweeps)\n",
        threads, threads == 1 ? " " : "s", full[i].min() * 1e3,
        sweeps[i].min() * 1e3, wphase[i].min() * 1e3, wres[i].sweeps);
    for (const char* phase : {"sta_full", "sta_sweeps", "wphase"}) {
      const RepeatTiming& t = phase == std::string("sta_full") ? full[i]
                              : phase == std::string("sta_sweeps")
                                  ? sweeps[i]
                                  : wphase[i];
      json.add(strf("inner/%s_t%d", phase, threads), t.total(),
               {{"min_seconds", t.min()},
                {"median_seconds", t.median()},
                {"repeats", static_cast<double>(repeats)},
                {"threads", static_cast<double>(threads)}});
    }
  }

  const bool deterministic =
      reports_identical(report[0], report[1]) &&
      wres[0].sizes == wres[1].sizes && wres[0].sweeps == wres[1].sweeps &&
      wres[0].feasible == wres[1].feasible;
  auto speedup = [](const RepeatTiming& t1, const RepeatTiming& tn) {
    return tn.min() > 0.0 ? t1.min() / tn.min() : 0.0;
  };
  const double sweep_speedup = speedup(sweeps[0], sweeps[1]);
  std::printf(
      "\nspeedup 1 -> %d inner threads: sta_full %.2fx, sweeps %.2fx, "
      "wphase %.2fx (hw concurrency %u)\n",
      par_threads, speedup(full[0], full[1]), sweep_speedup,
      speedup(wphase[0], wphase[1]), hw);
  std::printf("determinism across inner thread counts: %s\n",
              deterministic ? "bit-identical" : "MISMATCH");

  json.add("inner/summary", full[0].total() + full[1].total(),
           {{"sweep_speedup", sweep_speedup},
            {"sta_full_speedup", speedup(full[0], full[1])},
            {"wphase_speedup", speedup(wphase[0], wphase[1])},
            {"inner_threads", static_cast<double>(par_threads)},
            {"hw_concurrency", static_cast<double>(hw)},
            {"deterministic", deterministic ? 1.0 : 0.0},
            {"vertices", static_cast<double>(net.num_vertices())},
            {"levels", static_cast<double>(levels)},
            {"max_level_width", static_cast<double>(max_width)}});
  if (!json.write("BENCH_inner.json"))
    std::fprintf(stderr, "warning: could not write BENCH_inner.json\n");
  return deterministic ? 0 : 1;
}
