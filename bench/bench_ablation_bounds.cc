// Ablation A2: the D-phase trust bound β (MINΔD/MAXΔD = ∓/±β·delay).
// The paper requires the bounds to be "small" for the Taylor linearization
// (Theorem 3 proof) — too small wastes iterations, too large triggers
// backoffs. Sweeps β and reports final savings, iteration count and time.
#include <cstdio>

#include "bench_common.h"
#include "util/stopwatch.h"
#include "util/str.h"
#include "util/table.h"

using namespace mft;
using namespace mft::bench;

int main() {
  std::printf("Ablation: D-phase trust bound beta\n\n");
  for (const std::string& name : {std::string("c880"), std::string("c1355")}) {
    const Netlist nl = load_circuit(name);
    const LoweredCircuit lc = lower_gate_level(nl, Tech{});
    const CalibratedTarget cal = calibrate_target(lc.net);
    Table t({"beta", "savings", "iterations", "time", "final area"});
    for (double beta : {0.02, 0.05, 0.1, 0.25, 0.5, 0.8}) {
      MinflotransitOptions opt;
      opt.dphase.beta = beta;
      Stopwatch sw;
      const MinflotransitResult r = run_minflotransit(lc.net, cal.target, opt);
      t.add_row({strf("%.2f", beta),
                 strf("%.2f%%", 100.0 * (1.0 - r.area / r.initial.area)),
                 std::to_string(r.iterations.size()), strf("%.2fs", sw.seconds()),
                 strf("%.1f", r.area)});
      std::fflush(stdout);
    }
    std::printf("%s (target %.2f Dmin):\n%s\n", name.c_str(),
                cal.target / cal.dmin, t.to_text().c_str());
  }
  return 0;
}
