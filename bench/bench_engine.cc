// Engine batch-throughput benchmark: the same 8-job area-delay sweep of
// c3540 executed sequentially (1 thread) and on a multi-thread pool, plus a
// bit-exactness cross-check between the two runs (the engine's determinism
// contract: scheduling must never change results).
//
// Emits BENCH_engine.json with jobs/sec at each thread count and the
// parallel speedup. The speedup is hardware-bound — `hw_concurrency` is
// recorded alongside so a 1-core CI container reading ~1.0x is
// interpretable; on >= 4 real cores the batch is embarrassingly parallel
// and scales accordingly. Override the pool size with --threads or
// MFT_BENCH_THREADS.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <thread>

#include "bench_common.h"
#include "util/str.h"

using namespace mft;
using namespace mft::bench;

namespace {

bool identical(const BatchResult& a, const BatchResult& b) {
  if (a.results.size() != b.results.size()) return false;
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    const JobResult& x = a.results[i];
    const JobResult& y = b.results[i];
    if (x.ok != y.ok || x.seed != y.seed) return false;
    if (x.result.sizes != y.result.sizes) return false;  // bit-exact
    if (x.result.area != y.result.area) return false;
    if (x.result.delay != y.result.delay) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  // c3540 gives ~0.5 s/job at these targets: heavy enough that pool
  // startup and measurement noise are negligible, light enough that the
  // bench stays under ~10 s sequential.
  const Netlist nl = load_circuit("c3540");
  const LoweredCircuit lc = lower_gate_level(nl, Tech{});

  std::vector<SizingJob> jobs;
  for (double ratio : {0.8, 0.7, 0.65, 0.6, 0.55, 0.5, 0.45, 0.4}) {
    SizingJob job;
    job.target_ratio = ratio;
    job.label = strf("c3540@%.2f", ratio);
    jobs.push_back(std::move(job));
  }

  const unsigned hw = std::thread::hardware_concurrency();
  int par_threads = bench_threads(argc, argv);
  if (par_threads <= 0) par_threads = std::max(4u, hw ? hw : 1u);

  std::printf("engine throughput: %d-job c3540 sweep, hw concurrency %u\n\n",
              static_cast<int>(jobs.size()), hw);

  BenchJson json;
  BatchResult runs[2];
  const int thread_counts[2] = {1, par_threads};
  for (int i = 0; i < 2; ++i) {
    JobRunnerOptions ropt;
    ropt.threads = thread_counts[i];
    const JobRunner runner(ropt);
    std::printf("%d thread%s:\n", thread_counts[i],
                thread_counts[i] == 1 ? "" : "s");
    runs[i] = runner.run({&lc.net}, jobs);
    for (const JobResult& r : runs[i].results)
      std::printf("  %-12s %6.2fs  thread %d\n", r.label.c_str(),
                  r.wall_seconds, r.thread);
    std::printf("  -> %d jobs in %.2fs (%.3f jobs/s)\n\n",
                static_cast<int>(runs[i].results.size()), runs[i].wall_seconds,
                runs[i].jobs_per_second);
    json.add(strf("engine/sweep8_t%d", thread_counts[i]),
             runs[i].wall_seconds,
             {{"threads", static_cast<double>(runs[i].threads_used)},
              {"jobs", static_cast<double>(runs[i].results.size())},
              {"jobs_per_second", runs[i].jobs_per_second}});
  }

  const bool deterministic = identical(runs[0], runs[1]);
  const double speedup = runs[1].wall_seconds > 0.0
                             ? runs[0].wall_seconds / runs[1].wall_seconds
                             : 0.0;
  std::printf("speedup %d -> %d threads: %.2fx (hw concurrency %u)\n",
              thread_counts[0], thread_counts[1], speedup, hw);
  std::printf("determinism across thread counts: %s\n",
              deterministic ? "bit-identical" : "MISMATCH");
  json.add("engine/summary", runs[0].wall_seconds + runs[1].wall_seconds,
           {{"speedup", speedup},
            {"par_threads", static_cast<double>(par_threads)},
            {"hw_concurrency", static_cast<double>(hw)},
            {"deterministic", deterministic ? 1.0 : 0.0}});
  if (!json.write("BENCH_engine.json"))
    std::fprintf(stderr, "warning: could not write BENCH_engine.json\n");
  if (!write_batch_json("BENCH_engine_jobs.json", runs[1]))
    std::fprintf(stderr, "warning: could not write BENCH_engine_jobs.json\n");
  return deterministic ? 0 : 1;
}
