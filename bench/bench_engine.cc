// Engine batch-throughput benchmark: the same 8-job area-delay sweep of
// c3540 executed sequentially (1 thread), on a multi-thread batch pool,
// and through the persistent StreamingRunner (submit-all / wait-all over
// the scheduler queue), plus bit-exactness cross-checks between all three
// runs
// (the engine's determinism contract: scheduling, and now arrival
// interleaving, must never change results).
//
// Emits BENCH_engine.json with jobs/sec at each thread count, the
// parallel speedup, and the streaming-vs-batch comparison (`stream8_t<N>`
// + `streaming_speedup`: wall-time ratio batch/streaming at the same pool
// width — ~1.0 is the expectation; the streaming path exists for
// submit-while-running workloads, and this row pins that its queue adds
// no measurable overhead on a plain batch). The parallel speedup is
// hardware-bound — `hw_concurrency` is recorded alongside so a 1-core CI
// container reading ~1.0x is interpretable; on >= 4 real cores the batch
// is embarrassingly parallel and scales accordingly. Override the pool
// size with --threads or MFT_BENCH_THREADS.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <thread>

#include "bench_common.h"
#include "engine/stream.h"
#include "util/journal.h"
#include "util/str.h"

using namespace mft;
using namespace mft::bench;

namespace {

bool identical(const BatchResult& a, const BatchResult& b) {
  if (a.results.size() != b.results.size()) return false;
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    const JobResult& x = a.results[i];
    const JobResult& y = b.results[i];
    if (x.ok != y.ok || x.seed != y.seed) return false;
    if (x.result.sizes != y.result.sizes) return false;  // bit-exact
    if (x.result.area != y.result.area) return false;
    if (x.result.delay != y.result.delay) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  // c3540 gives ~0.5 s/job at these targets: heavy enough that pool
  // startup and measurement noise are negligible, light enough that the
  // bench stays under ~10 s sequential.
  const Netlist nl = load_circuit("c3540");
  const LoweredCircuit lc = lower_gate_level(nl, Tech{});

  std::vector<SizingJob> jobs;
  for (double ratio : {0.8, 0.7, 0.65, 0.6, 0.55, 0.5, 0.45, 0.4}) {
    SizingJob job;
    job.target_ratio = ratio;
    job.label = strf("c3540@%.2f", ratio);
    jobs.push_back(std::move(job));
  }

  const unsigned hw = std::thread::hardware_concurrency();
  int par_threads = bench_threads(argc, argv);
  if (par_threads <= 0) par_threads = std::max(4u, hw ? hw : 1u);

  std::printf("engine throughput: %d-job c3540 sweep, hw concurrency %u\n\n",
              static_cast<int>(jobs.size()), hw);

  BenchJson json;
  BatchResult runs[2];
  const int thread_counts[2] = {1, par_threads};
  for (int i = 0; i < 2; ++i) {
    JobRunnerOptions ropt;
    ropt.threads = thread_counts[i];
    const JobRunner runner(ropt);
    std::printf("%d thread%s:\n", thread_counts[i],
                thread_counts[i] == 1 ? "" : "s");
    runs[i] = runner.run({&lc.net}, jobs);
    for (const JobResult& r : runs[i].results)
      std::printf("  %-12s %6.2fs  thread %d\n", r.label.c_str(),
                  r.wall_seconds, r.thread);
    std::printf("  -> %d jobs in %.2fs (%.3f jobs/s)\n\n",
                static_cast<int>(runs[i].results.size()), runs[i].wall_seconds,
                runs[i].jobs_per_second);
    json.add(strf("engine/sweep8_t%d", thread_counts[i]),
             runs[i].wall_seconds,
             {{"threads", static_cast<double>(runs[i].threads_used)},
              {"jobs", static_cast<double>(runs[i].results.size())},
              {"jobs_per_second", runs[i].jobs_per_second}});
  }

  // Streaming arm: the same jobs submitted through the persistent
  // StreamingRunner at the batch pool width, consumed in ticket order.
  // Submission order equals batch order, so the ticket-derived seeds must
  // equal the batch's index-derived seeds and every bit must match. The
  // full supervision stack is armed — watchdog at a generous timeout plus
  // a 2-attempt retry policy — precisely because on a healthy run it must
  // be a pure observer: the bit-exactness gate below fails the bench if
  // supervision ever perturbs a result.
  BatchResult streamed;
  {
    JobRunnerOptions ropt;
    ropt.threads = par_threads;
    ropt.hang_timeout = 300.0;  // far beyond any honest c3540 solve
    ropt.retry.max_attempts = 2;
    std::printf("streaming (supervised), %d workers:\n", par_threads);
    Stopwatch sw;
    StreamingRunner stream(ropt);
    // Same per-job inner widths as the batch arm (the whole list is known
    // up front), so any wall-time difference is queue overhead, not a
    // thread-allocation asymmetry.
    const std::vector<int> inner = resolve_batch_inner_threads(
        {&lc.net}, jobs, stream.threads(), ropt.inner_threads);
    std::vector<JobTicket> tickets;
    tickets.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      SizingJob job = jobs[i];
      job.inner_threads = inner[i];
      tickets.push_back(stream.submit(lc.net, std::move(job)));
    }
    for (const JobTicket t : tickets) streamed.results.push_back(stream.wait(t));
    streamed.threads_used = stream.threads();
    streamed.wall_seconds = sw.seconds();
    streamed.jobs_per_second = streamed.wall_seconds > 0.0
                                   ? jobs.size() / streamed.wall_seconds
                                   : 0.0;
    for (const JobResult& r : streamed.results)
      std::printf("  %-12s %6.2fs  thread %d (queued %.3fs)\n",
                  r.label.c_str(), r.wall_seconds, r.thread, r.queue_seconds);
    std::printf("  -> %d jobs in %.2fs (%.3f jobs/s)\n",
                static_cast<int>(streamed.results.size()),
                streamed.wall_seconds, streamed.jobs_per_second);
    // Scheduler-queue health: the high-water mark and the total
    // ticket-seconds spent queued vs running. With submit-all-up-front the
    // peak is jobs - workers_that_grabbed_immediately; queue wait shrinks
    // as the pool widens.
    const StreamStats stats = stream.stats();
    std::printf(
        "  queue: peak depth %llu, %.2fs total queue wait, %.2fs total "
        "run\n",
        static_cast<unsigned long long>(stats.queue_peak),
        stats.queue_wait_seconds, stats.run_seconds);
    std::printf(
        "  supervision: %llu retries, %llu hang cancels, %llu hangs, "
        "%llu respawns, heartbeat age peak %.3fs\n\n",
        static_cast<unsigned long long>(stats.retries),
        static_cast<unsigned long long>(stats.hang_cancels),
        static_cast<unsigned long long>(stats.hangs),
        static_cast<unsigned long long>(stats.respawns),
        stats.heartbeat_age_peak);
    json.add(strf("engine/stream8_t%d", par_threads), streamed.wall_seconds,
             {{"threads", static_cast<double>(streamed.threads_used)},
              {"jobs", static_cast<double>(streamed.results.size())},
              {"jobs_per_second", streamed.jobs_per_second},
              {"queue_peak", static_cast<double>(stats.queue_peak)},
              {"queue_wait_seconds", stats.queue_wait_seconds},
              {"run_seconds", stats.run_seconds},
              {"retries", static_cast<double>(stats.retries)},
              {"hangs", static_cast<double>(stats.hangs)},
              {"respawns", static_cast<double>(stats.respawns)},
              {"heartbeat_age_peak", stats.heartbeat_age_peak}});
  }

  // Journal micro-bench: the per-request durability cost of the daemon's
  // write-ahead log is one framed append + fsync. Measured standalone so
  // BENCH_engine.json records what --journal adds to each accepted submit
  // and each terminal result on this machine's storage.
  {
    const char* path = "BENCH_journal.tmp";
    std::remove(path);
    const std::string payload =
        "{\"type\":\"result\",\"rid\":123,\"status\":\"ok\","
        "\"sizes_hash\":12345678901234567890}";
    const int appends = 256;
    Stopwatch sw;
    Journal j;
    j.open(path);
    for (int i = 0; i < appends; ++i) j.append(payload);
    const double secs = sw.seconds();
    std::printf("journal: %d fsync'd appends in %.3fs (%.0f appends/s)\n\n",
                appends, secs, secs > 0.0 ? appends / secs : 0.0);
    json.add("engine/journal_append", secs,
             {{"appends", static_cast<double>(j.appends())},
              {"fsyncs", static_cast<double>(j.fsyncs())},
              {"appends_per_second", secs > 0.0 ? appends / secs : 0.0}});
    j.close();
    std::remove(path);
  }

  const bool deterministic = identical(runs[0], runs[1]);
  const bool stream_deterministic = identical(runs[1], streamed);
  const double speedup = runs[1].wall_seconds > 0.0
                             ? runs[0].wall_seconds / runs[1].wall_seconds
                             : 0.0;
  const double streaming_speedup =
      streamed.wall_seconds > 0.0 ? runs[1].wall_seconds / streamed.wall_seconds
                                  : 0.0;
  std::printf("speedup %d -> %d threads: %.2fx (hw concurrency %u)\n",
              thread_counts[0], thread_counts[1], speedup, hw);
  std::printf("streaming vs batch at %d threads: %.2fx\n", par_threads,
              streaming_speedup);
  std::printf("determinism across thread counts: %s\n",
              deterministic ? "bit-identical" : "MISMATCH");
  std::printf("determinism streaming vs batch: %s\n",
              stream_deterministic ? "bit-identical" : "MISMATCH");
  json.add("engine/summary", runs[0].wall_seconds + runs[1].wall_seconds,
           {{"speedup", speedup},
            {"streaming_speedup", streaming_speedup},
            {"par_threads", static_cast<double>(par_threads)},
            {"hw_concurrency", static_cast<double>(hw)},
            {"deterministic", deterministic ? 1.0 : 0.0},
            {"streaming_deterministic", stream_deterministic ? 1.0 : 0.0}});
  if (!json.write("BENCH_engine.json"))
    std::fprintf(stderr, "warning: could not write BENCH_engine.json\n");
  if (!write_batch_json("BENCH_engine_jobs.json", runs[1]))
    std::fprintf(stderr, "warning: could not write BENCH_engine_jobs.json\n");
  return deterministic && stream_deterministic ? 0 : 1;
}
