// Ablation A5: where does the win actually come from?
//  1. "W-only"     — no D-phase at all: a single SMP least-fixpoint pass on
//                    the TILOS solution (max_iterations = 0).
//  2. "uniform-D"  — full D/W alternation but with uniform objective
//                    weights instead of the eq. (7) C_i = x_i·y_i.
//  3. "full"       — the paper's algorithm.
// The gap 1→3 is the value of budget redistribution; the gap 2→3 is the
// value of the sensitivity-weighted objective specifically.
#include <cstdio>

#include "bench_common.h"
#include "util/str.h"
#include "util/table.h"

using namespace mft;
using namespace mft::bench;

int main() {
  std::printf("Ablation: W-only vs uniform-weight D-phase vs full MINFLOTRANSIT\n\n");
  Table t({"circuit", "TILOS area", "W-only", "uniform-D", "full",
           "W-only sav", "uniform sav", "full sav"});
  for (const std::string& name :
       {std::string("c880"), std::string("c1355"), std::string("c6288")}) {
    const Netlist nl = load_circuit(name);
    const LoweredCircuit lc = lower_gate_level(nl, Tech{});
    const CalibratedTarget cal = calibrate_target(lc.net);

    MinflotransitOptions wonly;
    wonly.max_iterations = 0;
    MinflotransitOptions uniform;
    uniform.dphase.uniform_weights = true;
    const MinflotransitResult a = run_minflotransit(lc.net, cal.target, wonly);
    const MinflotransitResult b = run_minflotransit(lc.net, cal.target, uniform);
    const MinflotransitResult c = run_minflotransit(lc.net, cal.target);
    if (!c.initial.met_target) continue;
    auto sav = [&](const MinflotransitResult& r) {
      return strf("%.2f%%", 100.0 * (1.0 - r.area / r.initial.area));
    };
    t.add_row({name, strf("%.1f", c.initial.area), strf("%.1f", a.area),
               strf("%.1f", b.area), strf("%.1f", c.area), sav(a), sav(b),
               sav(c)});
    std::fflush(stdout);
  }
  std::printf("%s", t.to_text().c_str());
  return 0;
}
