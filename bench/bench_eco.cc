// ECO serving benchmark: warm-start resize(delta) against the cold
// from-scratch solve on the largest generated instance.
//
// The serving claim under test (ROADMAP "ECO serving"): against an
// already-sized network, a small perturbation — a handful of per-vertex
// load edits — re-solves in milliseconds-to-subsecond via the carved
// warm path, while the cold solve costs tens of seconds; and the zero
// delta is a true fixpoint (bit-identical sizes, no solver touched).
//
// Measurements, emitted to BENCH_eco.json:
//  - cold_base: the full MINFLOTRANSIT solve that opens the session,
//  - fixpoint: median zero-delta resize (the no-op floor of the serving
//    path) plus the determinism bit (sizes bit-identical to the base),
//  - warm@<frac>: one warm resize per perturbation fraction (clustered
//    level-band load edits on frac*n vertices), with its speedup over
//    cold_base, the carved region size, and whether the warm path held
//    (mode_warm=1) or fell back,
//  - cold_resize: the same largest perturbation forced down the cold
//    path (full_solve_frac=0), the honest like-for-like denominator.
//
// Gates (exit code 1, for CI):
//  - the zero-delta resize must return bit-identical sizes, always;
//  - at full size (default --slices/--bits, n ~ 68k) the warm resize at
//    every swept fraction <= 1% must be >= 5x faster than the cold
//    re-solve and must not have fallen back.
// A smoke run (--slices 16 --bits 8) keeps the determinism gate but
// skips the speedup gate — small instances make cold cheap enough that
// the ratio is noise-bound.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "sizing/resize.h"
#include "sizing/tilos.h"
#include "util/str.h"

using namespace mft;
using namespace mft::bench;

namespace {

/// Same wide-datapath array as bench_inner (kept in sync by hand — the
/// generator is 15 lines): `slices` independent `bits`-bit ripple-carry
/// chains, the single-large-circuit shape the serving path targets.
Netlist make_wide_datapath(int slices, int bits) {
  Netlist nl(strf("datapath%dx%d", slices, bits));
  for (int s = 0; s < slices; ++s) {
    const std::string p = "s" + std::to_string(s);
    GateId carry = nl.add_input(p + "_cin");
    for (int i = 0; i < bits; ++i) {
      const GateId a = nl.add_input(strf("%s_a%d", p.c_str(), i));
      const GateId b = nl.add_input(strf("%s_b%d", p.c_str(), i));
      const AdderBits fa =
          add_full_adder_nand(nl, a, b, carry, strf("%s_fa%d", p.c_str(), i));
      carry = fa.cout;
      nl.mark_output(fa.sum);
    }
    nl.mark_output(carry);
  }
  return nl;
}

/// Deterministic clustered perturbation: the first `count` non-source
/// vertices whose level falls in a band around the middle of the network —
/// the locality a placed-and-routed ECO actually has.
ResizeDelta make_perturbation(const SizingNetwork& net, int count,
                              double b_delta) {
  ResizeDelta delta;
  const int mid = net.num_levels() / 2;
  for (int radius = 3; radius <= net.num_levels();
       radius += 3) {  // widen until enough
    delta.load_edits.clear();
    for (NodeId v = 0;
         v < net.num_vertices() &&
         static_cast<int>(delta.load_edits.size()) < count;
         ++v) {
      const int l = net.level_of()[static_cast<std::size_t>(v)];
      if (!net.is_source(v) && l >= mid - radius && l < mid + radius)
        delta.load_edits.push_back({v, b_delta});
    }
    if (static_cast<int>(delta.load_edits.size()) >= count) break;
  }
  return delta;
}

}  // namespace

int main(int argc, char** argv) {
  const int slices = bench_int_flag(argc, argv, "--slices", nullptr, 256);
  const int bits = bench_int_flag(argc, argv, "--bits", nullptr, 24);
  const bool full_size = slices >= 256 && bits >= 24;

  Netlist nl = make_wide_datapath(slices, bits);
  LoweredCircuit lc = lower_gate_level(nl, Tech{});
  const int n = lc.net.num_vertices();
  const double dmin = min_sized_delay(lc.net);
  const double target = 0.8 * dmin;
  std::printf("eco: %s n=%d levels=%d target=%.4f (0.8 dmin)\n",
              nl.name().c_str(), n, lc.net.num_levels(), target);

  BenchJson json;
  bool gates_ok = true;

  // The session base: one cold solve, the denominator for every speedup.
  ResizeSession session(lc.net);
  Stopwatch cold_sw;
  const ResizeResult base = session.solve(target);
  const double cold_seconds = cold_sw.seconds();
  if (!base.ok || !base.met_target) {
    std::fprintf(stderr, "error: base cold solve failed: %s\n",
                 base.error.c_str());
    return 1;
  }
  std::printf("  cold_base      %8.3fs  area %.1f\n", cold_seconds,
              base.area);
  json.add("cold_base", cold_seconds,
           {{"n", n}, {"area", base.area}, {"met_target", 1.0}});

  // Zero-delta fixpoint: the serving no-op, and the determinism gate.
  bool fixpoint_identical = true;
  const RepeatTiming fp_t = time_repeats(5, [&] {
    const ResizeResult fp = session.resize(ResizeDelta{});
    fixpoint_identical =
        fixpoint_identical && fp.ok && fp.mode == ResizeMode::kFixpoint &&
        fp.sizes == base.sizes;
  });
  std::printf("  fixpoint       %8.4fs  bit-identical=%d\n", fp_t.median(),
              fixpoint_identical);
  json.add("fixpoint", fp_t.median(),
           {{"identical", fixpoint_identical ? 1.0 : 0.0},
            {"repeats", 5.0}});
  if (!fixpoint_identical) {
    std::fprintf(stderr,
                 "GATE FAILED: zero-delta resize is not a bit-identical "
                 "fixpoint\n");
    gates_ok = false;
  }

  // Perturbation sweep: frac*n clustered load edits, warm path.
  const std::vector<double> fracs = {0.0001, 0.001, 0.01};
  ResizeDelta largest;
  for (const double frac : fracs) {
    const int count =
        std::max(1, static_cast<int>(frac * static_cast<double>(n)));
    const ResizeDelta delta = make_perturbation(lc.net, count, 0.05);
    largest = delta;

    ResizeSession warm(lc.net);
    if (!warm.adopt(base.sizes, target).ok) {
      std::fprintf(stderr, "error: warm adopt failed\n");
      return 1;
    }
    Stopwatch sw;
    const ResizeResult r = warm.resize(delta);
    const double warm_seconds = sw.seconds();
    const double speedup =
        warm_seconds > 0.0 ? cold_seconds / warm_seconds : 0.0;
    const bool warm_held = r.ok && r.mode == ResizeMode::kWarm && !r.fell_back;
    std::printf(
        "  warm@%-7.4f  %8.4fs  %6.1fx  edits=%d region=%d mode=%s%s "
        "met=%d\n",
        frac, warm_seconds, speedup, r.dirty_vertices, r.region_vertices,
        to_string(r.mode), r.fell_back ? " (fell back)" : "", r.met_target);
    json.add(strf("warm@%g", frac), warm_seconds,
             {{"speedup_vs_cold", speedup},
              {"edits", static_cast<double>(r.dirty_vertices)},
              {"region", static_cast<double>(r.region_vertices)},
              {"mode_warm", warm_held ? 1.0 : 0.0},
              {"met_target", r.met_target ? 1.0 : 0.0}});
    if (!r.ok || !r.met_target) {
      std::fprintf(stderr, "GATE FAILED: warm resize at frac %g: %s\n", frac,
                   r.ok ? "missed target" : r.error.c_str());
      gates_ok = false;
    }
    if (full_size && (!warm_held || speedup < 5.0)) {
      std::fprintf(stderr,
                   "GATE FAILED: frac %g: warm %s, speedup %.1fx (need warm "
                   "path held and >= 5x)\n",
                   frac, warm_held ? "held" : "fell back", speedup);
      gates_ok = false;
    }
  }

  // Like-for-like cold denominator: the largest perturbation forced down
  // the cold path (threshold 0 disables the carve).
  {
    ResizeOptions opt;
    opt.full_solve_frac = 0.0;
    ResizeSession cold(lc.net, opt);
    if (!cold.adopt(base.sizes, target).ok) {
      std::fprintf(stderr, "error: cold adopt failed\n");
      return 1;
    }
    Stopwatch sw;
    const ResizeResult r = cold.resize(largest);
    const double s = sw.seconds();
    std::printf("  cold_resize    %8.3fs  edits=%d mode=%s met=%d\n", s,
                r.dirty_vertices, to_string(r.mode), r.met_target);
    json.add("cold_resize", s,
             {{"edits", static_cast<double>(r.dirty_vertices)},
              {"met_target", r.ok && r.met_target ? 1.0 : 0.0}});
  }

  if (!json.write("BENCH_eco.json")) {
    std::fprintf(stderr, "error: cannot write BENCH_eco.json\n");
    return 1;
  }
  std::printf("wrote BENCH_eco.json%s\n",
              gates_ok ? "" : "  (GATES FAILED)");
  return gates_ok ? 0 : 1;
}
