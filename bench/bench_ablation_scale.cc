// Ablation A4: decimal integerization of the D-phase flow (§2.3.1: "by
// choosing appropriate powers of 10, arbitrary accuracy can be maintained
// with almost no penalty"). Sweeps the cost scaling digits and compares the
// D-phase objective against a high-precision reference, plus the end-to-end
// area.
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "util/stopwatch.h"
#include "util/str.h"
#include "util/table.h"

using namespace mft;
using namespace mft::bench;

int main() {
  std::printf("Ablation: D-phase integerization scale (powers of 10)\n\n");
  const Netlist nl = load_circuit("c880");
  const LoweredCircuit lc = lower_gate_level(nl, Tech{});
  const CalibratedTarget cal = calibrate_target(lc.net);
  const TilosResult tilos = run_tilos(lc.net, cal.target);

  DPhaseOptions ref_opt;
  ref_opt.cost_digits = 8;
  ref_opt.supply_digits = 6;
  const DPhaseResult ref = run_dphase(lc.net, tilos.sizes, ref_opt);

  Table t({"cost digits", "supply digits", "objective", "rel err vs 10^8",
           "D-phase time", "MFT final area"});
  for (int digits : {1, 2, 3, 4, 6}) {
    DPhaseOptions opt;
    opt.cost_digits = digits;
    opt.supply_digits = std::max(1, digits - 1);
    Stopwatch sw;
    const DPhaseResult d = run_dphase(lc.net, tilos.sizes, opt);
    const double dphase_time = sw.seconds();
    MinflotransitOptions mopt;
    mopt.dphase = opt;
    const MinflotransitResult r = run_minflotransit(lc.net, cal.target, mopt);
    t.add_row({std::to_string(digits), std::to_string(opt.supply_digits),
               strf("%.4f", d.objective),
               strf("%.2e", std::abs(d.objective - ref.objective) /
                                std::max(1e-12, std::abs(ref.objective))),
               strf("%.4fs", dphase_time), strf("%.2f", r.area)});
    std::fflush(stdout);
  }
  std::printf("c880 @ %.2f Dmin (reference objective %.4f):\n%s",
              cal.target / cal.dmin, ref.objective, t.to_text().c_str());
  return 0;
}
