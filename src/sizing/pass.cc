#include "sizing/pass.h"

#include <algorithm>

#include "util/abort.h"
#include "util/stopwatch.h"

namespace mft {

void OptimizerPass::begin(SizingContext&, PipelineState&) {}

// ---------------------------------------------------------------------------
// TilosPass
// ---------------------------------------------------------------------------

TilosPass::TilosPass(const TilosOptions& opt) : opt_(opt) {}

PassStatus TilosPass::run(SizingContext& ctx, PipelineState& s) {
  Stopwatch sw;
  TilosOptions opt = opt_;
  opt.fast_math = opt.fast_math || ctx.fast_math();
  if (opt.pins == nullptr) opt.pins = ctx.pins();
  s.initial =
      run_tilos(ctx.net(), s.target_delay, opt, ctx.arena(), ctx.abort());
  s.tilos_seconds = sw.seconds();
  s.sizes = s.initial.sizes;
  s.best_sizes = s.initial.sizes;
  s.best_area = s.initial.area;
  s.met_target = s.initial.met_target;
  // Target unreachable: report the TILOS attempt unrefined.
  return s.met_target ? PassStatus::kDone : PassStatus::kAbort;
}

// ---------------------------------------------------------------------------
// WPhasePass
// ---------------------------------------------------------------------------

PassStatus WPhasePass::run(SizingContext& ctx, PipelineState& s) {
  const SizingNetwork& net = ctx.net();
  // W-phase at unchanged budgets: identity on interior points, but
  // canonicalizes min-clamped vertices onto the SMP fixpoint so later
  // D-phase linearizations start from a consistent point. All *area*
  // improvement comes from the D-phase budget moves. Warm-started from the
  // current iterate — which already satisfies these budgets, so the sweeps
  // only have to settle the min-clamped vertices.
  const TimingReport& t0 = ctx.sta(s.sizes);
  const WPhaseResult w0 = solve_wphase(net, t0.delay, s.sizes, ctx.arena(),
                                       ctx.abort(), ctx.fast_math(),
                                       ctx.pins());
  s.wphase_sweeps += w0.sweeps;
  if (w0.feasible) {
    const double area0 = net.area(w0.sizes);
    if (ctx.sta(w0.sizes).critical_path <= s.target_delay * (1.0 + 1e-9) &&
        area0 <= s.best_area) {
      s.sizes = w0.sizes;
      s.best_sizes = s.sizes;
      s.best_area = area0;
    }
  }
  return PassStatus::kDone;
}

// ---------------------------------------------------------------------------
// DPhasePass
// ---------------------------------------------------------------------------

DPhasePass::DPhasePass(const DPhaseOptions& opt, double rel_improvement_stop,
                       int patience, int max_beta_backoffs)
    : opt_(opt),
      rel_improvement_stop_(rel_improvement_stop),
      patience_(patience),
      max_beta_backoffs_(max_beta_backoffs) {}

void DPhasePass::begin(SizingContext&, PipelineState& s) {
  s.beta = opt_.beta;
  s.backoffs = 0;
  s.stagnant = 0;
  // The context (and with it the D-phase timing scratch) may be reused from
  // an earlier job; the first iteration must rediscover the diff by scan.
  s.dphase_changed.clear();
  s.dphase_changed_valid = false;
}

PassStatus DPhasePass::run(SizingContext& ctx, PipelineState& s) {
  const SizingNetwork& net = ctx.net();
  DPhaseOptions dopt = opt_;
  dopt.beta = s.beta;
  const DPhaseResult d =
      run_dphase(net, s.sizes, dopt, &ctx.dphase(),
                 s.dphase_changed_valid ? &s.dphase_changed : nullptr);
  // The D-phase scratch has now timed exactly s.sizes: restart the diff
  // accumulation from here.
  s.dphase_changed.clear();
  s.dphase_changed_valid = true;
  if (!d.solved) return PassStatus::kDone;
  const WPhaseResult w = solve_wphase(net, d.budget, s.sizes, ctx.arena(),
                                      ctx.abort(), ctx.fast_math(),
                                      ctx.pins());
  s.wphase_sweeps += w.sweeps;
  const TimingReport& timing = ctx.sta(w.sizes);
  const double area = net.area(w.sizes);
  const bool ok = w.feasible &&
                  timing.critical_path <= s.target_delay * (1.0 + 1e-9) &&
                  area <= s.best_area * (1.0 + 1e-9);
  if (!ok) {
    // Linearization overstepped (timing broke or area regressed):
    // re-anchor at the best solution, shrink the trust region, retry.
    // The jump to best_sizes has no tracked diff: invalidate the hint.
    if (++s.backoffs > max_beta_backoffs_) return PassStatus::kDone;
    s.beta *= 0.5;
    s.sizes = s.best_sizes;
    s.dphase_changed_valid = false;
    return PassStatus::kRepeat;
  }
  s.backoffs = 0;
  s.sizes = w.sizes;
  // Accepted move: s.sizes now differs from the last D-phase-timed iterate
  // by exactly the W-phase change set.
  s.dphase_changed.insert(s.dphase_changed.end(), w.changed.begin(),
                          w.changed.end());
  s.iterations.push_back(
      IterationLog{area, timing.critical_path, d.objective, s.beta});
  const double improvement = (s.best_area - area) / s.best_area;
  if (area < s.best_area) {
    s.best_area = area;
    s.best_sizes = s.sizes;
  }
  if (improvement < rel_improvement_stop_) {
    if (++s.stagnant >= patience_) return PassStatus::kDone;
  } else {
    s.stagnant = 0;
  }
  return PassStatus::kRepeat;
}

// ---------------------------------------------------------------------------
// DownsizePass
// ---------------------------------------------------------------------------

DownsizePass::DownsizePass(const DownsizeOptions& opt) : opt_(opt) {}

PassStatus DownsizePass::run(SizingContext& ctx, PipelineState& s) {
  if (!s.met_target) return PassStatus::kDone;
  const DownsizeResult d =
      greedy_downsize(ctx.net(), s.best_sizes, s.target_delay, opt_);
  if (d.area < s.best_area) {
    s.best_area = d.area;
    s.best_sizes = d.sizes;
    s.sizes = d.sizes;
  }
  return PassStatus::kDone;
}

// ---------------------------------------------------------------------------
// Pipeline
// ---------------------------------------------------------------------------

Pipeline& Pipeline::add(std::unique_ptr<OptimizerPass> pass, int max_repeats) {
  MFT_CHECK(pass != nullptr);
  MFT_CHECK(max_repeats >= 0);
  entries_.push_back(Entry{std::move(pass), max_repeats});
  return *this;
}

const std::string& Pipeline::pass_name(int i) const {
  return entries_[static_cast<std::size_t>(i)].pass->name();
}

PipelineResult Pipeline::run(SizingContext& ctx, double target_delay,
                             std::uint64_t seed) const {
  Stopwatch total;
  PipelineResult out;
  PipelineState& s = out.state;
  s.target_delay = target_delay;
  s.seed = seed;
  out.pass_stats.reserve(entries_.size());

  AbortToken* tok = ctx.abort();
  bool aborted = false;
  for (const Entry& e : entries_) {
    PassStats stats;
    stats.name = e.pass->name();
    if (!aborted && e.max_repeats > 0) {
      e.pass->begin(ctx, s);
      for (int rep = 0; rep < e.max_repeats; ++rep) {
        // Pass-granularity checkpoint: once the token trips, stop invoking
        // passes and surface the best-so-far state.
        if (tok != nullptr && tok->step()) {
          aborted = true;
          break;
        }
        Stopwatch sw;
        const PassStatus st = e.pass->run(ctx, s);
        stats.seconds += sw.seconds();
        ++stats.invocations;
        stats.sweeps += s.wphase_sweeps;
        s.wphase_sweeps = 0;
        if (st == PassStatus::kAbort) aborted = true;
        if (st != PassStatus::kRepeat) break;
      }
    }
    out.pass_stats.push_back(std::move(stats));
  }
  if (tok != nullptr) s.abort_status = tok->tripped();
  out.total_seconds = total.seconds();
  return out;
}

Pipeline make_minflotransit_pipeline(const MinflotransitOptions& opt) {
  Pipeline p;
  p.add(std::make_unique<TilosPass>(opt.tilos));
  p.add(std::make_unique<WPhasePass>());
  p.add(std::make_unique<DPhasePass>(opt.dphase, opt.rel_improvement_stop,
                                     opt.patience, opt.max_beta_backoffs),
        opt.max_iterations);
  return p;
}

MinflotransitResult to_minflotransit_result(SizingContext& ctx,
                                            const PipelineResult& r) {
  MinflotransitResult res;
  res.initial = r.state.initial;
  res.met_target = r.state.met_target;
  res.tilos_seconds = r.state.tilos_seconds;
  res.total_seconds = r.total_seconds;
  res.iterations = r.state.iterations;
  if (!res.met_target) {
    // Matches the legacy early return: the TILOS attempt, unrefined.
    res.sizes = r.state.initial.sizes;
    res.area = r.state.initial.area;
    res.delay = r.state.initial.achieved_delay;
    return res;
  }
  res.sizes = r.state.best_sizes;
  res.area = r.state.best_area;
  res.delay = ctx.sta(res.sizes).critical_path;
  return res;
}

}  // namespace mft
