#include "sizing/report.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/str.h"

namespace mft {

namespace {

const char* kind_name(VertexKind k) {
  switch (k) {
    case VertexKind::kSource:
      return "source";
    case VertexKind::kGate:
      return "gate";
    case VertexKind::kTransistor:
      return "transistor";
    case VertexKind::kWire:
      return "wire";
  }
  return "?";
}

}  // namespace

std::string timing_summary(const SizingNetwork& net,
                           const std::vector<double>& sizes) {
  const TimingReport t = run_sta(net, sizes);
  int critical = 0;
  double worst_slack = std::numeric_limits<double>::infinity();
  for (NodeId v = 0; v < net.num_vertices(); ++v) {
    if (net.is_source(v)) continue;
    const double sl = t.slack[static_cast<std::size_t>(v)];
    worst_slack = std::min(worst_slack, sl);
    if (sl < 1e-9 * (1.0 + t.critical_path)) ++critical;
  }
  std::ostringstream os;
  os << strf("critical path : %.4f\n", t.critical_path);
  os << strf("worst slack   : %.4g\n", worst_slack);
  os << strf("critical elems: %d of %d\n", critical, net.num_sizeable());
  os << strf("total area    : %.2f\n", net.area(sizes));
  return os.str();
}

std::string size_histogram(const SizingNetwork& net,
                           const std::vector<double>& sizes, int max_width) {
  const double min_size = net.tech().min_size;
  // Power-of-two buckets relative to minimum size.
  std::vector<int> buckets;
  for (NodeId v = 0; v < net.num_vertices(); ++v) {
    if (net.is_source(v)) continue;
    const double rel =
        std::max(1.0, sizes[static_cast<std::size_t>(v)] / min_size);
    const int b = static_cast<int>(std::floor(std::log2(rel)));
    if (b >= static_cast<int>(buckets.size()))
      buckets.resize(static_cast<std::size_t>(b) + 1, 0);
    ++buckets[static_cast<std::size_t>(b)];
  }
  int peak = 1;
  for (int c : buckets) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    const int width = buckets[b] * max_width / peak;
    os << strf("%4.0f-%4.0fx |%s %d\n", std::pow(2.0, static_cast<double>(b)),
               std::pow(2.0, static_cast<double>(b + 1)),
               std::string(static_cast<std::size_t>(width), '#').c_str(),
               buckets[b]);
  }
  return os.str();
}

std::string sizing_csv(const SizingNetwork& net,
                       const std::vector<double>& sizes) {
  const TimingReport t = run_sta(net, sizes);
  std::ostringstream os;
  os << "name,kind,size,delay,slack\n";
  for (NodeId v = 0; v < net.num_vertices(); ++v) {
    if (net.is_source(v)) continue;
    os << net.name(v) << ',' << kind_name(net.vertex(v).kind) << ','
       << strf("%.4f,%.4f,%.4f", sizes[static_cast<std::size_t>(v)],
               t.delay[static_cast<std::size_t>(v)],
               t.slack[static_cast<std::size_t>(v)])
       << '\n';
  }
  return os.str();
}

std::string compare_report(const SizingNetwork& net,
                           const MinflotransitResult& result, int top_movers) {
  std::ostringstream os;
  os << strf("TILOS         : area %.2f, delay %.4f, %lld bumps\n",
             result.initial.area, result.initial.achieved_delay,
             static_cast<long long>(result.initial.bumps));
  os << strf("MINFLOTRANSIT : area %.2f, delay %.4f, %zu D/W iterations\n",
             result.area, result.delay, result.iterations.size());
  if (result.initial.area > 0.0)
    os << strf("savings       : %.2f%%\n",
               100.0 * (1.0 - result.area / result.initial.area));

  // Vertices the refinement moved furthest (either direction).
  std::vector<NodeId> order;
  for (NodeId v = 0; v < net.num_vertices(); ++v)
    if (!net.is_source(v)) order.push_back(v);
  auto movement = [&](NodeId v) {
    return std::abs(result.sizes[static_cast<std::size_t>(v)] -
                    result.initial.sizes[static_cast<std::size_t>(v)]);
  };
  std::sort(order.begin(), order.end(),
            [&](NodeId a, NodeId b) { return movement(a) > movement(b); });
  os << "largest moves :\n";
  for (int i = 0; i < top_movers && i < static_cast<int>(order.size()); ++i) {
    const NodeId v = order[static_cast<std::size_t>(i)];
    if (movement(v) < 1e-9) break;
    os << strf("  %-20s %8.3f -> %8.3f\n", net.name(v).c_str(),
               result.initial.sizes[static_cast<std::size_t>(v)],
               result.sizes[static_cast<std::size_t>(v)]);
  }
  return os.str();
}

}  // namespace mft
