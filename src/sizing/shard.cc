#include "sizing/shard.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "sizing/context.h"
#include "util/abort.h"
#include "util/fault.h"
#include "util/stopwatch.h"
#include "util/str.h"

namespace mft {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Per-boundary crossing width (arcs + load terms spanning the boundary),
/// indexed by cut level c in [0, L]: an edge with endpoint levels lo < hi
/// crosses every boundary c with lo < c <= hi.
std::vector<int> crossing_widths(const SizingNetwork& net) {
  const int levels = net.num_levels();
  const auto& level_of = net.level_of();
  std::vector<int> diff(static_cast<std::size_t>(levels) + 2, 0);
  auto span = [&](NodeId a, NodeId b) {
    const int la = level_of[static_cast<std::size_t>(a)];
    const int lb = level_of[static_cast<std::size_t>(b)];
    const int lo = std::min(la, lb);
    const int hi = std::max(la, lb);
    ++diff[static_cast<std::size_t>(lo) + 1];
    --diff[static_cast<std::size_t>(hi) + 1];
  };
  const Digraph& g = net.dag();
  for (ArcId a = 0; a < g.num_arcs(); ++a) span(g.tail(a), g.head(a));
  for (NodeId v = 0; v < net.num_vertices(); ++v)
    for (const LoadTerm& t : net.vertex(v).loads) span(v, t.vertex);
  std::vector<int> width(static_cast<std::size_t>(levels) + 1, 0);
  int acc = 0;
  for (int c = 0; c <= levels; ++c) {
    acc += diff[static_cast<std::size_t>(c)];
    width[static_cast<std::size_t>(c)] = acc;
  }
  return width;
}

/// Per-shard span usage under a timing report: the (floored) increments of
/// the running-max arrival profile max(AT+delay) taken shard by shard.
/// Used both for the initial budgets (begin) and for reconciliation
/// re-budgeting, so the accounting cannot drift between the two.
std::vector<double> shard_usage(const ShardPartition& part,
                                const TimingReport& t, double floor) {
  const int k = part.num_shards();
  std::vector<double> endmax(static_cast<std::size_t>(k), 0.0);
  for (NodeId v = 0; v < static_cast<NodeId>(part.shard_of.size()); ++v) {
    const int sh = part.shard_of[static_cast<std::size_t>(v)];
    endmax[static_cast<std::size_t>(sh)] =
        std::max(endmax[static_cast<std::size_t>(sh)],
                 t.at[static_cast<std::size_t>(v)] +
                     t.delay[static_cast<std::size_t>(v)]);
  }
  std::vector<double> usage(static_cast<std::size_t>(k), 0.0);
  double prev = 0.0, run_max = 0.0;
  for (int sh = 0; sh < k; ++sh) {
    run_max = std::max(run_max, endmax[static_cast<std::size_t>(sh)]);
    usage[static_cast<std::size_t>(sh)] = std::max(run_max - prev, floor);
    prev = run_max;
  }
  return usage;
}

}  // namespace

ShardPartition partition_levels(const SizingNetwork& net, int num_shards) {
  MFT_CHECK(net.frozen());
  MFT_CHECK(num_shards >= 1);
  const int levels = net.num_levels();
  const int n = net.num_vertices();
  const auto& off = net.level_offsets();

  ShardPartition part;
  const int k = std::max(1, std::min(num_shards, levels));

  // Sizeable vertices per level prefix: a band with none cannot be sized.
  std::vector<int> sizeable_prefix(static_cast<std::size_t>(levels) + 1, 0);
  {
    const auto& order = net.level_order();
    for (int l = 0; l < levels; ++l) {
      int cnt = 0;
      for (int i = off[static_cast<std::size_t>(l)];
           i < off[static_cast<std::size_t>(l) + 1]; ++i)
        if (!net.is_source(order[static_cast<std::size_t>(i)])) ++cnt;
      sizeable_prefix[static_cast<std::size_t>(l) + 1] =
          sizeable_prefix[static_cast<std::size_t>(l)] + cnt;
    }
  }

  const std::vector<int> width = crossing_widths(net);
  part.cut_levels.push_back(0);
  // Place each interior cut near the equal-vertex split, picking within a
  // window the boundary with the fewest crossing couplings (ties: closest
  // to the ideal split, then lower). Only *feasible* boundaries are
  // candidates: the band being closed and everything after the cut must
  // both keep at least one sizeable vertex — otherwise the width
  // minimization would happily close an all-source band (level 0) or snap
  // onto the empty after-end boundary (c == levels, width identically 0)
  // and silently collapse the shard count.
  const int window = std::max(1, levels / (4 * k));
  for (int s = 1; s < k; ++s) {
    const int ideal_count = static_cast<int>(
        static_cast<long long>(n) * s / k);
    // First level boundary whose cumulative vertex count reaches the ideal.
    int ideal = static_cast<int>(
        std::lower_bound(off.begin() + 1, off.end(), ideal_count) -
        off.begin());
    const int prev_cut = part.cut_levels.back();
    const int lo_bound = prev_cut + 1;
    // Leave at least one level for each of the k-s bands after this cut.
    const int hi_bound = levels - (k - s);
    ideal = std::max(lo_bound, std::min(ideal, hi_bound));
    int best = -1;
    bool best_in_window = false;
    for (int c = lo_bound; c <= hi_bound; ++c) {
      if (sizeable_prefix[static_cast<std::size_t>(c)] ==
              sizeable_prefix[static_cast<std::size_t>(prev_cut)] ||
          sizeable_prefix[static_cast<std::size_t>(levels)] ==
              sizeable_prefix[static_cast<std::size_t>(c)])
        continue;  // would close or leave a band with nothing to size
      const bool in_window = std::abs(c - ideal) <= window;
      if (best < 0) {
        best = c;
        best_in_window = in_window;
        continue;
      }
      if (in_window != best_in_window) {
        if (in_window) {  // in-window candidates always beat out-of-window
          best = c;
          best_in_window = true;
        }
        continue;
      }
      const int wc = width[static_cast<std::size_t>(c)];
      const int wb = width[static_cast<std::size_t>(best)];
      if (in_window ? (wc < wb || (wc == wb && std::abs(c - ideal) <
                                                   std::abs(best - ideal)))
                    : std::abs(c - ideal) < std::abs(best - ideal))
        best = c;
    }
    if (best < 0) break;  // no feasible boundary left: fewer shards
    part.cut_levels.push_back(best);
  }
  part.cut_levels.push_back(levels);
  // Every band owns a sizeable vertex by construction: each placed cut
  // passed the feasibility filter for both the band it closes and the
  // remainder (asserted across lowerings by tests/shard_test.cc).

  const int shards = static_cast<int>(part.cut_levels.size()) - 1;
  part.shard_of.assign(static_cast<std::size_t>(n), 0);
  part.vertices.resize(static_cast<std::size_t>(shards));
  const auto& level_of = net.level_of();
  for (NodeId v = 0; v < n; ++v) {
    const int l = level_of[static_cast<std::size_t>(v)];
    const int sh = static_cast<int>(
        std::upper_bound(part.cut_levels.begin() + 1, part.cut_levels.end(),
                         l) -
        (part.cut_levels.begin() + 1));
    part.shard_of[static_cast<std::size_t>(v)] = sh;
    part.vertices[static_cast<std::size_t>(sh)].push_back(v);
  }
  for (std::size_t s = 1; s + 1 < part.cut_levels.size(); ++s)
    part.cut_width.push_back(
        width[static_cast<std::size_t>(part.cut_levels[s])]);
  return part;
}

ShardNetwork build_shard_network(const SizingNetwork& net,
                                 const ShardPartition& part, int shard,
                                 const std::vector<double>& frozen_sizes) {
  MFT_FAULT_POINT("shard.extract");
  MFT_CHECK(shard >= 0 && shard < part.num_shards());
  MFT_CHECK(static_cast<int>(frozen_sizes.size()) == net.num_vertices());
  const std::vector<NodeId>& owned =
      part.vertices[static_cast<std::size_t>(shard)];

  ShardNetwork out;
  out.net = std::make_unique<SizingNetwork>(net.tech());
  out.num_owned = static_cast<int>(owned.size());
  std::vector<NodeId> local(static_cast<std::size_t>(net.num_vertices()),
                            kInvalidNode);
  for (const NodeId gv : owned) {
    SizingVertex v = net.vertex(gv);
    v.loads.clear();  // translated below via add_load / add_b
    local[static_cast<std::size_t>(gv)] =
        out.net->add_vertex(std::move(v), net.name(gv));
    out.global_of_local.push_back(gv);
  }
  auto is_owned = [&](NodeId gv) {
    return part.shard_of[static_cast<std::size_t>(gv)] == shard;
  };

  // Replica sources for boundary inputs, created in ascending global id
  // order (deterministic local ids).
  const Digraph& g = net.dag();
  std::vector<char> needs_replica(
      static_cast<std::size_t>(net.num_vertices()), 0);
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const NodeId u = g.tail(a);
    const NodeId v = g.head(a);
    if (is_owned(v) && !is_owned(u))
      needs_replica[static_cast<std::size_t>(u)] = 1;
  }
  for (NodeId gv = 0; gv < net.num_vertices(); ++gv) {
    if (!needs_replica[static_cast<std::size_t>(gv)]) continue;
    SizingVertex src;
    src.kind = VertexKind::kSource;
    local[static_cast<std::size_t>(gv)] =
        out.net->add_vertex(std::move(src), net.name(gv) + "@cut");
    out.global_of_local.push_back(gv);
  }

  // Arcs, in global arc order: internal arcs copied, inbound arcs re-rooted
  // at the replica source, outbound arcs dropped with the driver marked as
  // a frozen required-time endpoint at the cut.
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const NodeId u = g.tail(a);
    const NodeId v = g.head(a);
    if (is_owned(v)) {
      out.net->add_arc(local[static_cast<std::size_t>(u)],
                       local[static_cast<std::size_t>(v)]);
    } else if (is_owned(u)) {
      out.net->set_po(local[static_cast<std::size_t>(u)], true);
    }
  }

  // Load terms: internal ones copied, crossing ones folded into b at the
  // frozen neighbor size.
  std::vector<char> frozen_seen(static_cast<std::size_t>(net.num_vertices()),
                                0);
  for (const NodeId gv : owned) {
    for (const LoadTerm& t : net.vertex(gv).loads) {
      if (is_owned(t.vertex)) {
        out.net->add_load(local[static_cast<std::size_t>(gv)],
                          local[static_cast<std::size_t>(t.vertex)], t.coeff);
      } else {
        out.net->add_b(local[static_cast<std::size_t>(gv)],
                       t.coeff *
                           frozen_sizes[static_cast<std::size_t>(t.vertex)]);
        frozen_seen[static_cast<std::size_t>(t.vertex)] = 1;
      }
    }
  }
  for (NodeId gv = 0; gv < net.num_vertices(); ++gv)
    if (frozen_seen[static_cast<std::size_t>(gv)])
      out.frozen_loads.push_back(gv);

  out.net->freeze();
  return out;
}

// ---------------------------------------------------------------------------
// ShardReconcilePass
// ---------------------------------------------------------------------------

struct ShardReconcilePass::ShardState {
  ShardNetwork net;            ///< rebuilt whenever the shard is re-solved
  std::vector<double> frozen;  ///< frozen_loads sizes at the last build
  std::vector<double> sizes;   ///< last shard-local solution
  double span = 0.0;           ///< current boundary budget
  double solved_span = -1.0;   ///< span of the last solve
  bool dirty = true;
};

ShardReconcilePass::ShardReconcilePass(const ShardOptions& opt) : opt_(opt) {
  MFT_CHECK(opt_.num_shards >= 1);
  MFT_CHECK(opt_.max_rounds >= 1);
}

ShardReconcilePass::~ShardReconcilePass() = default;

void ShardReconcilePass::begin(SizingContext& ctx, PipelineState& s) {
  const SizingNetwork& net = ctx.net();
  MFT_CHECK(net.num_sizeable() > 0);
  // Join any previous run's pool before its shard networks are replaced.
  stream_.reset();
  part_ = partition_levels(net, opt_.num_shards);
  cuts_ = part_.cut_levels;
  shards_.clear();
  shards_.resize(static_cast<std::size_t>(part_.num_shards()));
  rounds_.clear();
  first_stitch_ = TilosResult{};
  round_ = 0;
  shard_jobs_ = 0;
  shard_retries_ = 0;
  shard_failures_ = 0;
  progress_done_ = 0;
  reconcile_seconds_ = 0.0;
  converged_ = false;
  best_unmet_cp_ = kInf;

  // One persistent streaming pool for every round of this run, recreated
  // so tickets (and the seeds derived from them) restart at 0. Rebuilt
  // dirty shard networks carry fresh serials each round, so an unbounded
  // context pool would grow by one dead context per shard job; promote
  // the unset limit to the shard count (an explicit limit is honored).
  JobRunnerOptions ropt = opt_.runner;
  if (ropt.context_cache_limit == 0 && part_.num_shards() > 1)
    ropt.context_cache_limit = part_.num_shards();
  // Worker-side transient failures (a faulted flow solve, a dead worker)
  // ride the engine's generic retry policy — same ticket, same seed, one
  // extra attempt — instead of the old hand-rolled resubmit; an explicit
  // caller policy is honored. Extraction faults are coordinator-side and
  // retried at submit time below.
  if (ropt.retry.max_attempts <= 1) ropt.retry.max_attempts = 2;
  stream_ = std::make_unique<StreamingRunner>(ropt);

  // Initial boundary budgets from the min-sized arrival profile: shard s
  // gets the target in proportion to the time depth its band adds at
  // minimum sizes (floored so no shard starts with a degenerate budget).
  s.sizes = net.min_sizes();
  s.best_area = kInf;
  s.met_target = false;
  const int k = part_.num_shards();
  if (k == 1) {
    // Monolithic passthrough: the span is the target *exactly* (a
    // profile-proportional (target*raw)/raw can be 1 ulp off in IEEE
    // double, silently breaking the bit-identity contract), and the
    // min-sized STA that exists only to apportion it is skipped.
    shards_[0].span = s.target_delay;
    shards_[0].dirty = true;
    return;
  }
  const TimingReport& t = ctx.sta(s.sizes);
  const std::vector<double> raw =
      shard_usage(part_, t, opt_.min_span_frac * s.target_delay);
  double total = 0.0;
  for (const double r : raw) total += r;
  for (int sh = 0; sh < k; ++sh) {
    shards_[static_cast<std::size_t>(sh)].span =
        s.target_delay * raw[static_cast<std::size_t>(sh)] / total;
    shards_[static_cast<std::size_t>(sh)].dirty = true;
  }
}

void ShardReconcilePass::rebudget(const SizingNetwork& net,
                                  const TimingReport& t,
                                  const std::vector<double>& sizes,
                                  double target) {
  const int k = part_.num_shards();
  const double cp = t.critical_path;
  const std::vector<double> usage =
      shard_usage(part_, t, opt_.min_span_frac * target);
  double total_usage = 0.0;
  for (const double u : usage) total_usage += u;

  std::vector<double> next(static_cast<std::size_t>(k), 0.0);
  if (cp > target) {
    // Infeasible stitch: tighten every span proportionally so the budgets
    // sum back to the target, and re-solve every shard — a marginal miss
    // moves each span by less than the dirt tolerance, but feasibility
    // must never be declared converged away.
    for (int sh = 0; sh < k; ++sh) {
      next[static_cast<std::size_t>(sh)] =
          target * usage[static_cast<std::size_t>(sh)] / total_usage;
      shards_[static_cast<std::size_t>(sh)].span =
          next[static_cast<std::size_t>(sh)];
      shards_[static_cast<std::size_t>(sh)].dirty = true;
    }
    return;
  }
  {
    // Feasible: the gap target − CP is path-skew slack the frozen
    // boundaries could not see. Hand it to the shards weighted by their
    // eq. (7) area-delay sensitivity Σ C_i — extra budget buys the most
    // area where the sensitivity is largest (the D-phase objective at
    // shard granularity).
    const std::vector<double> weights = net.area_delay_weights(sizes);
    std::vector<double> w(static_cast<std::size_t>(k), 0.0);
    double wsum = 0.0;
    for (NodeId v = 0; v < net.num_vertices(); ++v) {
      const int sh = part_.shard_of[static_cast<std::size_t>(v)];
      w[static_cast<std::size_t>(sh)] +=
          weights[static_cast<std::size_t>(v)];
      wsum += weights[static_cast<std::size_t>(v)];
    }
    const double slack = target - cp;
    double total_next = 0.0;
    for (int sh = 0; sh < k; ++sh) {
      next[static_cast<std::size_t>(sh)] =
          usage[static_cast<std::size_t>(sh)] +
          (wsum > 0.0 ? slack * w[static_cast<std::size_t>(sh)] / wsum : 0.0);
      total_next += next[static_cast<std::size_t>(sh)];
    }
    // The min_span floor can inflate Σ usage past CP, which would push
    // Σ next past the target and ping-pong the next stitch into the
    // infeasible branch; renormalize so the spans always sum to the
    // target exactly (a no-op when no floor was binding).
    if (total_next > 0.0)
      for (int sh = 0; sh < k; ++sh)
        next[static_cast<std::size_t>(sh)] *= target / total_next;
  }

  for (int sh = 0; sh < k; ++sh) {
    ShardState& st = shards_[static_cast<std::size_t>(sh)];
    st.span = next[static_cast<std::size_t>(sh)];
    const double ref = std::max(st.solved_span, 1e-12);
    if (std::abs(st.span - st.solved_span) > opt_.rebudget_tol * ref) {
      st.dirty = true;
      continue;
    }
    // Boundary coupling drift: the shard solved against frozen neighbor
    // sizes; if those moved materially, its folded b terms are stale.
    const std::vector<NodeId>& fl = st.net.frozen_loads;
    for (std::size_t i = 0; i < fl.size(); ++i) {
      const double now = sizes[static_cast<std::size_t>(fl[i])];
      const double then = st.frozen[i];
      if (std::abs(now - then) > opt_.rebudget_tol * std::max(then, 1e-12)) {
        st.dirty = true;
        break;
      }
    }
  }
}

PassStatus ShardReconcilePass::run(SizingContext& ctx, PipelineState& s) {
  const SizingNetwork& net = ctx.net();
  const double target = s.target_delay;
  const int k = part_.num_shards();
  ++round_;

  std::vector<int> dirty;
  for (int sh = 0; sh < k; ++sh)
    if (shards_[static_cast<std::size_t>(sh)].dirty) dirty.push_back(sh);
  if (dirty.empty()) {
    converged_ = true;
    return PassStatus::kDone;
  }

  // Rebuild dirty shards at the current stitched sizes and stream each
  // job out the moment its network is built — the first shard is already
  // solving on a worker while the coordinator is still extracting the
  // next (K == 1 passes the original network straight through — the
  // bit-identity contract with the monolithic pipeline). The per-shard
  // dmin facts are resolved lazily on the workers, in parallel, instead
  // of serializing on this thread the way the batch API did.
  Stopwatch round_sw;
  const int round_total = shard_jobs_ + static_cast<int>(dirty.size());

  // Inner-thread core budget for the round, mirroring the batch policy
  // the wave path applied: a forced JobRunnerOptions::inner_threads or
  // MFT_INNER_THREADS value is left to the streaming runner's own
  // fallback; otherwise every dirty shard gets one core and leftover pool
  // capacity is round-robined onto the largest bands (owned-vertex count
  // — known before extraction, unlike the built networks). Pure function
  // of the dirty set; inner width never changes results.
  std::vector<int> inner(dirty.size(), 0);
  if (opt_.runner.inner_threads == 0 && env_inner_threads() == 0) {
    inner.assign(dirty.size(), 1);
    std::vector<std::size_t> widest(dirty.size());
    for (std::size_t i = 0; i < dirty.size(); ++i) widest[i] = i;
    std::stable_sort(widest.begin(), widest.end(),
                     [&](std::size_t a, std::size_t b) {
                       return part_.vertices[static_cast<std::size_t>(
                                                 dirty[a])].size() >
                              part_.vertices[static_cast<std::size_t>(
                                                 dirty[b])].size();
                     });
    int leftover = stream_->threads() - static_cast<int>(dirty.size());
    for (std::size_t i = 0; leftover > 0;
         i = (i + 1) % dirty.size(), --leftover)
      ++inner[widest[i]];
  }

  // Builds shard sh's job network at the current stitched sizes (the
  // original network for K == 1) and records the frozen boundary
  // snapshot. Throws when an armed "shard.extract" fault fires.
  auto rebuild = [&](int sh) -> const SizingNetwork* {
    ShardState& st = shards_[static_cast<std::size_t>(sh)];
    if (k == 1) return &net;
    st.net = build_shard_network(net, part_, sh, s.sizes);
    st.frozen.clear();
    for (const NodeId gv : st.net.frozen_loads)
      st.frozen.push_back(s.sizes[static_cast<std::size_t>(gv)]);
    return st.net.net.get();
  };
  auto make_job = [&](int sh, int width, const char* suffix) {
    SizingJob job;
    job.inner_threads = width;
    const ShardState& st = shards_[static_cast<std::size_t>(sh)];
    job.target_delay =
        k > 1 ? st.span * (1.0 - opt_.boundary_margin) : st.span;
    job.options = opt_.options;
    job.label = strf("shard%d@r%d%s", sh, round_, suffix);
    job.shard = sh;
    job.shard_round = round_;
    return job;
  };

  std::vector<JobTicket> tickets(dirty.size(), 0);
  std::vector<char> submitted(dirty.size(), 0);
  std::vector<std::string> extract_error(dirty.size());
  int retried = 0, failed = 0;
  for (std::size_t i = 0; i < dirty.size(); ++i) {
    const int sh = dirty[i];
    const SizingNetwork* job_net = nullptr;
    try {
      job_net = rebuild(sh);
    } catch (const std::exception&) {
      // Extraction failed: retry once on a fresh build, right here — the
      // coordinator-side twin of the engine's worker-side retry policy.
      ++retried;
      ++shard_retries_;
      try {
        job_net = rebuild(sh);
      } catch (const std::exception& e) {
        // Double extraction failure: the slot stays unsubmitted and the
        // consume loop folds the shard's band back.
        extract_error[i] = e.what();
        continue;
      }
    }
    std::function<void(const JobResult&)> on_complete;
    if (opt_.runner.progress)
      on_complete = [this, round_total](const JobResult& r) {
        // Serialized by the runner's callback lock; jobs of a round all
        // complete before the next round submits, so the count is
        // monotone in [1, round_total] within each round (retry jobs are
        // not counted — round_total is the no-failure job count).
        opt_.runner.progress(r, ++progress_done_, round_total);
      };
    tickets[i] = stream_->submit(*job_net, make_job(sh, inner[i], ""),
                                 std::move(on_complete));
    submitted[i] = 1;
  }
  shard_jobs_ = round_total;

  // Consume in ticket order — deterministic at any worker count — and
  // stitch each solution into the global iterate as it is claimed, while
  // the round's stragglers are still running. (Clean shards keep the
  // stitched values of the round that last solved them.) Transient
  // worker-side failures were already retried by the engine's policy
  // (JobResult::attempts > 1 says how often); extraction faults got one
  // fresh rebuild at submit. A shard that exhausted both keeps its
  // previous stitched band (min sizes in round 1) and stays dirty: the
  // band folds back into the stitched STA and the monolithic re-budget,
  // degrading the round instead of aborting the solve. The pipeline's
  // round cap then guarantees feasible-or-error termination.
  JobResult first;  // K == 1: the single job's full result, kept verbatim
  for (std::size_t i = 0; i < dirty.size(); ++i) {
    const int sh = dirty[i];
    ShardState& st = shards_[static_cast<std::size_t>(sh)];
    JobResult r;
    if (submitted[i]) {
      r = stream_->wait(tickets[i]);
      if (r.attempts > 1) {
        ++retried;
        shard_retries_ += r.attempts - 1;
      }
    } else {
      r.label = strf("shard%d@r%d", sh, round_);
      r.error = extract_error[i];
    }
    if (!r.ok) {
      ++failed;
      ++shard_failures_;
      if (k == 1) {
        // The passthrough job *is* the monolithic solve: nothing to fold
        // back into. Cancel any stragglers before unwinding frees state.
        stream_->shutdown(StreamingRunner::ShutdownMode::kCancel);
        throw EngineError(
            EngineStatus::kShardFailed,
            "shard job " + r.label + " failed after retry: " + r.error);
      }
      st.dirty = true;
      st.solved_span = -1.0;  // force a re-solve next round
      continue;
    }
    st.sizes = r.result.sizes;
    st.solved_span = st.span;
    st.dirty = false;
    if (round_ == 1) s.tilos_seconds += r.result.tilos_seconds;
    if (k > 1) {
      for (int l = 0; l < st.net.num_owned; ++l)
        s.sizes[static_cast<std::size_t>(
            st.net.global_of_local[static_cast<std::size_t>(l)])] =
            st.sizes[static_cast<std::size_t>(l)];
    } else {
      first = std::move(r);
    }
  }
  shard_jobs_ += retried;
  const double round_seconds = round_sw.seconds();

  // K == 1: the single job *is* the monolithic pipeline — forward its
  // result verbatim (including the true TILOS seed and D/W iteration log)
  // so the bit-identity contract covers the whole result shape, not just
  // the final sizes.
  if (k == 1) {
    const MinflotransitResult& inner = first.result;
    s.sizes = inner.sizes;
    s.initial = inner.initial;
    s.iterations = inner.iterations;
    s.met_target = inner.met_target;
    if (inner.met_target) {
      s.best_sizes = inner.sizes;
      s.best_area = inner.area;
    }
    ShardRound rr;
    // The inner pipeline already timed its own solution; no extra STA.
    rr.critical_path = inner.delay;
    rr.area = inner.area;
    rr.met_target = inner.met_target;
    rr.shards_solved = 1;
    rr.shards_retried = retried;
    rr.wall_seconds = round_seconds;
    rr.spans.push_back(shards_[0].solved_span);
    rounds_.push_back(std::move(rr));
    converged_ = true;
    return PassStatus::kDone;
  }

  // The surviving barrier: the stitched full-network STA and the span
  // re-budget need every shard of the round.
  Stopwatch reconcile_sw;
  const TimingReport& t = ctx.sta(s.sizes);
  const double cp = t.critical_path;
  const double area = net.area(s.sizes);
  const bool met = cp <= target * (1.0 + 1e-9);

  ShardRound rr;
  rr.critical_path = cp;
  rr.area = area;
  rr.met_target = met;
  rr.shards_solved = static_cast<int>(dirty.size()) - failed;
  rr.shards_retried = retried;
  rr.shards_failed = failed;
  rr.wall_seconds = round_seconds;
  for (int sh = 0; sh < k; ++sh)
    rr.spans.push_back(shards_[static_cast<std::size_t>(sh)].solved_span);
  rounds_.push_back(std::move(rr));
  s.iterations.push_back(IterationLog{area, cp, 0.0, 0.0});

  if (round_ == 1) {
    // The first stitch plays the role of the TILOS seed in the result
    // shape: the baseline later rounds improve on.
    s.initial.sizes = s.sizes;
    s.initial.area = area;
    s.initial.achieved_delay = cp;
    s.initial.met_target = met;
    first_stitch_ = s.initial;
  }
  if (met) {
    if (!s.met_target) {
      // First feasible round: if unmet rounds overwrote `initial` with
      // their closest attempt, restore the documented round-1 baseline.
      s.initial = first_stitch_;
    }
    if (!s.met_target || area < s.best_area) {
      s.met_target = true;
      s.best_area = area;
      s.best_sizes = s.sizes;
    }
  } else if (!s.met_target && cp < best_unmet_cp_) {
    // Target never met so far: keep the closest attempt as the reported
    // solution (the monolithic solver reports its TILOS attempt the same
    // way).
    best_unmet_cp_ = cp;
    s.initial.sizes = s.sizes;
    s.initial.area = area;
    s.initial.achieved_delay = cp;
  }

  rebudget(net, t, s.sizes, target);
  const double reconcile = reconcile_sw.seconds();
  rounds_.back().reconcile_seconds = reconcile;
  reconcile_seconds_ += reconcile;
  bool any_dirty = false;
  for (const ShardState& st : shards_)
    if (st.dirty) any_dirty = true;
  if (!any_dirty) {
    converged_ = true;
    return PassStatus::kDone;
  }
  return PassStatus::kRepeat;
}

// ---------------------------------------------------------------------------
// run_sharded_solve
// ---------------------------------------------------------------------------

ShardSolveResult run_sharded_solve(const SizingNetwork& net,
                                   double target_delay,
                                   const ShardOptions& opt) {
  SizingContext ctx(net);
  // Solve-level deadline/step budget, observed at the pipeline's
  // round-granularity checkpoint. A disarmed token never changes results.
  AbortToken token;
  if (opt.deadline_seconds > 0) token.arm_deadline(opt.deadline_seconds);
  if (opt.max_steps > 0) token.arm_steps(opt.max_steps);
  ctx.set_abort(&token);
  auto pass = std::make_unique<ShardReconcilePass>(opt);
  ShardReconcilePass* p = pass.get();
  Pipeline pipe;
  pipe.add(std::move(pass), opt.max_rounds);
  const PipelineResult pr = pipe.run(ctx, target_delay, opt.options.seed);
  ctx.set_abort(nullptr);

  ShardSolveResult out;
  out.result = to_minflotransit_result(ctx, pr);
  out.num_shards = p->num_shards();
  out.cut_levels = p->cut_levels();
  out.rounds = p->rounds();
  out.shard_jobs = p->shard_jobs();
  out.reconcile_seconds = p->reconcile_seconds();
  out.converged = p->converged();
  out.shard_retries = p->shard_retries();
  out.shard_failures = p->shard_failures();
  if (pr.state.abort_status != EngineStatus::kOk) {
    out.status = pr.state.abort_status;
    out.degraded = pr.state.met_target;
  } else if (p->shard_failures() > 0 && !pr.state.met_target) {
    // Feasible-or-error: persistent shard failures with no feasible
    // stitch inside the round cap are an error, not a silent miss.
    throw EngineError(EngineStatus::kShardFailed,
                      strf("%d shard job(s) failed after retry and the "
                           "sharded solve never met its target",
                           p->shard_failures()));
  }
  return out;
}

}  // namespace mft
