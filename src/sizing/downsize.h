// Greedy local-search downsizer: an independent near-optimality probe.
//
// Starting from any timing-feasible sizing, repeatedly tries shrinking each
// element by a constant factor, keeping the move iff the circuit still
// meets the delay target. This is O(passes·|V|·STA) — far too slow for
// production — but it certifies *local* minimality: if MINFLOTRANSIT's
// output is (near-)optimal (paper Theorem 3), a local search started from
// it must find almost nothing left to reclaim. Tests use exactly that
// property.
#pragma once

#include "timing/sta.h"

namespace mft {

struct DownsizeOptions {
  double shrink = 0.95;  ///< multiplicative trial step
  int max_passes = 50;   ///< full sweeps over all elements
};

struct DownsizeResult {
  std::vector<double> sizes;
  double area = 0.0;
  int accepted_moves = 0;
  int passes = 0;
};

/// Requires `start` to meet `target_delay`; returns a locally-minimal
/// shrink of it that still does.
DownsizeResult greedy_downsize(const SizingNetwork& net,
                               const std::vector<double>& start,
                               double target_delay,
                               const DownsizeOptions& opt = {});

}  // namespace mft
