// TILOS-style sensitivity-based greedy sizer (paper refs [1],[15]).
//
// This is both the baseline MINFLOTRANSIT is compared against in Table 1 /
// Fig. 7 and the producer of MINFLOTRANSIT's initial guess solution (§2.4
// step 1). Starting from a minimum-sized circuit, each pass walks the
// critical path, computes for every on-path element the change in path
// delay per unit of added area if that element were bumped by ×bumpsize,
// bumps the most beneficial element, and repeats until the delay target is
// met or no bump helps.
#pragma once

#include <cstdint>

#include "timing/sta.h"

namespace mft {

struct TilosOptions {
  double bumpsize = 1.1;  ///< paper §3 uses 1.1
  /// Safety cap on bump passes; 0 picks a generous default.
  std::int64_t max_bumps = 0;
  /// Opt-in FP-reassociated delay folds for the per-bump STA (see
  /// TimingScratch::fast_math). Off by default; never set on
  /// determinism-gated paths.
  bool fast_math = false;
  /// Optional ECO size pins (id-indexed, entry > 0 = hold that vertex at
  /// that size): pinned vertices start at the pinned size and are never
  /// bump candidates. Not owned; may be nullptr.
  const std::vector<double>* pins = nullptr;
};

struct TilosResult {
  std::vector<double> sizes;
  bool met_target = false;
  double achieved_delay = 0.0;  ///< CP at the returned sizes
  double area = 0.0;
  std::int64_t bumps = 0;
};

class AbortToken;
class ThreadArena;

/// Critical-path delay of the minimum-sized circuit (the paper's Dmin).
double min_sized_delay(const SizingNetwork& net);

/// `arena` (optional, multi-thread) parallelizes the per-iteration STA
/// sweeps; results are bit-identical at any thread count. The per-iteration
/// delay recompute itself is O(loaders-of-one-vertex): each bump passes the
/// bumped vertex to run_sta's changed-hint overload instead of letting it
/// rediscover the change by scanning all sizes.
///
/// `abort` (optional) is checked once per bump; when it trips the loop
/// stops with the best-so-far sizes and met_target reflecting the last STA.
TilosResult run_tilos(const SizingNetwork& net, double target_delay,
                      const TilosOptions& opt = {},
                      ThreadArena* arena = nullptr,
                      AbortToken* abort = nullptr);

}  // namespace mft
