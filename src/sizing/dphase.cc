#include "sizing/dphase.h"

#include <algorithm>
#include <cmath>

namespace mft {

DPhaseResult run_dphase(const SizingNetwork& net,
                        const std::vector<double>& sizes,
                        const DPhaseOptions& opt, DPhaseWorkspace* ws,
                        const std::vector<NodeId>* changed) {
  MFT_CHECK(net.frozen());
  MFT_CHECK(opt.beta > 0.0);
  const Digraph& g = net.dag();
  const int n = net.num_vertices();

  DPhaseWorkspace local;
  DPhaseWorkspace& w = ws ? *ws : local;
  if (w.built && w.net_serial != net.serial()) {
    // A different network than the cached build: start over.
    w = DPhaseWorkspace{};
  }

  const TimingReport& timing = changed != nullptr
                                   ? run_sta(net, sizes, w.timing, *changed)
                                   : run_sta(net, sizes, w.timing);
  const DelayBalance bal = compute_delay_balance(net, timing, opt.balance);
  std::vector<double> weights;
  if (opt.uniform_weights) {
    weights.assign(static_cast<std::size_t>(n), 1.0);
  } else {
    weights = net.area_delay_weights(sizes);
  }

  // Variable layout: r(v) = v, r(Dmy(v)) = n + v, dummy output O = 2n.
  const int var_dmy = n;
  const int var_o = 2 * n;

  // On the first call the LP structure is built; afterwards the emission
  // below re-walks the identical deterministic order and only rewrites
  // bounds and objective coefficients in place.
  const bool build = !w.built;
  if (build) {
    w.lp = DualFlowLp(2 * n + 1);
    w.lp.fix_zero(var_o);
    for (NodeId v = 0; v < n; ++v)
      if (net.is_source(v)) w.lp.fix_zero(v);
    w.net_serial = net.serial();
    w.built = true;
  }
  DualFlowLp& lp = w.lp;
  int ci = 0;  // constraint cursor (must match the build order exactly)
  int oi = 0;  // objective-term cursor
  auto constraint = [&](int a, int b, double bound) {
    if (build)
      lp.add_constraint(a, b, bound);
    else
      lp.set_constraint_bound(ci, bound);
    ++ci;
  };
  auto objective = [&](int plus, int minus, double coeff) {
    if (build)
      lp.add_objective_difference(plus, minus, coeff);
    else
      lp.set_objective_coeff(oi, coeff);
    ++oi;
  };

  for (NodeId v = 0; v < n; ++v) {
    if (net.is_source(v)) continue;
    const double d = timing.delay[static_cast<std::size_t>(v)];
    const double a_self = net.vertex(v).a_self;
    // Trust bounds; the lower one keeps d_new comfortably above the
    // self-loading floor so the W-phase SMP stays solvable.
    const double max_dd = opt.beta * d;
    const double min_dd = -std::min(opt.beta * d, 0.95 * (d - a_self));
    // FSDU(i→Dmy(i)) = 0 under both canonical schedules.
    constraint(var_dmy + v, v, max_dd);   // δd_v <= MAXΔD
    constraint(v, var_dmy + v, -min_dd);  // δd_v >= MINΔD
    objective(var_dmy + v, v, weights[static_cast<std::size_t>(v)]);
  }

  // Causality: displaced FSDUs on all original edges stay non-negative.
  // Edges leave Dmy(i) (Fig. 5); edges out of sources use r(source) itself.
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const NodeId i = g.tail(a);
    const NodeId j = g.head(a);
    const int from = net.is_source(i) ? i : var_dmy + i;
    constraint(from, j, bal.arc_fsdu[static_cast<std::size_t>(a)]);
  }
  // PO edges to the dummy output O (Corollary 1 pins CP).
  for (NodeId v = 0; v < n; ++v) {
    if (net.is_source(v)) continue;
    if (net.vertex(v).is_po || g.out_degree(v) == 0) {
      constraint(var_dmy + v, var_o,
                 bal.po_fsdu[static_cast<std::size_t>(v)]);
    }
  }

  MFT_CHECK_MSG(ci == lp.num_constraints() && oi == lp.num_objective_terms(),
                "D-phase emission order diverged from the cached LP");

  DPhaseResult res;
  res.num_constraints = lp.num_constraints();
  const DualFlowLp::Result sol =
      lp.solve(opt.solver, opt.cost_digits, opt.supply_digits, &w.flow);
  if (!sol.solved) return res;

  res.solved = true;
  res.objective = sol.objective;
  res.budget = timing.delay;
  for (NodeId v = 0; v < n; ++v) {
    if (net.is_source(v)) continue;
    const double dd = sol.r[static_cast<std::size_t>(var_dmy + v)] -
                      sol.r[static_cast<std::size_t>(v)];
    if (std::abs(dd) > 1e-12) ++res.num_moved;
    res.budget[static_cast<std::size_t>(v)] += dd;
  }
  return res;
}

}  // namespace mft
