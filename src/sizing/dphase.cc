#include "sizing/dphase.h"

#include <algorithm>
#include <cmath>

namespace mft {

DPhaseResult run_dphase(const SizingNetwork& net,
                        const std::vector<double>& sizes,
                        const DPhaseOptions& opt) {
  MFT_CHECK(net.frozen());
  MFT_CHECK(opt.beta > 0.0);
  const Digraph& g = net.dag();
  const int n = net.num_vertices();

  const TimingReport timing = run_sta(net, sizes);
  const DelayBalance bal = compute_delay_balance(net, timing, opt.balance);
  std::vector<double> weights;
  if (opt.uniform_weights) {
    weights.assign(static_cast<std::size_t>(n), 1.0);
  } else {
    weights = net.area_delay_weights(sizes);
  }

  // Variable layout: r(v) = v, r(Dmy(v)) = n + v, dummy output O = 2n.
  const int var_dmy = n;
  const int var_o = 2 * n;
  DualFlowLp lp(2 * n + 1);
  lp.fix_zero(var_o);
  for (NodeId v = 0; v < n; ++v)
    if (net.is_source(v)) lp.fix_zero(v);

  for (NodeId v = 0; v < n; ++v) {
    if (net.is_source(v)) continue;
    const double d = timing.delay[static_cast<std::size_t>(v)];
    const double a_self = net.vertex(v).a_self;
    // Trust bounds; the lower one keeps d_new comfortably above the
    // self-loading floor so the W-phase SMP stays solvable.
    const double max_dd = opt.beta * d;
    const double min_dd = -std::min(opt.beta * d, 0.95 * (d - a_self));
    // FSDU(i→Dmy(i)) = 0 under both canonical schedules.
    lp.add_constraint(var_dmy + v, v, max_dd);   // δd_v <= MAXΔD
    lp.add_constraint(v, var_dmy + v, -min_dd);  // δd_v >= MINΔD
    lp.add_objective_difference(var_dmy + v, v, weights[static_cast<std::size_t>(v)]);
  }

  // Causality: displaced FSDUs on all original edges stay non-negative.
  // Edges leave Dmy(i) (Fig. 5); edges out of sources use r(source) itself.
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const NodeId i = g.tail(a);
    const NodeId j = g.head(a);
    const int from = net.is_source(i) ? i : var_dmy + i;
    lp.add_constraint(from, j, bal.arc_fsdu[static_cast<std::size_t>(a)]);
  }
  // PO edges to the dummy output O (Corollary 1 pins CP).
  for (NodeId v = 0; v < n; ++v) {
    if (net.is_source(v)) continue;
    if (net.vertex(v).is_po || g.out_degree(v) == 0) {
      lp.add_constraint(var_dmy + v, var_o,
                        bal.po_fsdu[static_cast<std::size_t>(v)]);
    }
  }

  DPhaseResult res;
  res.num_constraints = lp.num_constraints();
  const DualFlowLp::Result sol =
      lp.solve(opt.solver, opt.cost_digits, opt.supply_digits);
  if (!sol.solved) return res;

  res.solved = true;
  res.objective = sol.objective;
  res.budget = timing.delay;
  for (NodeId v = 0; v < n; ++v) {
    if (net.is_source(v)) continue;
    const double dd = sol.r[static_cast<std::size_t>(var_dmy + v)] -
                      sol.r[static_cast<std::size_t>(v)];
    if (std::abs(dd) > 1e-12) ++res.num_moved;
    res.budget[static_cast<std::size_t>(v)] += dd;
  }
  return res;
}

}  // namespace mft
