#include "sizing/tradeoff.h"

#include "sizing/context.h"

namespace mft {

TradeoffCurve area_delay_sweep(const SizingNetwork& net,
                               const std::vector<double>& target_ratios,
                               const MinflotransitOptions& opt) {
  TradeoffCurve curve;
  curve.dmin = min_sized_delay(net);
  curve.min_area = net.area(net.min_sizes());
  // One context for the whole sweep: the D-phase LP structure and flow
  // arena are built at the first point and only rewritten afterwards.
  SizingContext ctx(net);
  for (const double ratio : target_ratios) {
    TradeoffPoint p;
    p.target_ratio = ratio;
    const double target = ratio * curve.dmin;
    ctx.begin_job();
    const MinflotransitResult r = run_minflotransit(ctx, target, opt);
    p.tilos_met = r.initial.met_target;
    p.mft_met = r.met_target;
    p.tilos_area_ratio = r.initial.area / curve.min_area;
    p.mft_area_ratio = r.area / curve.min_area;
    p.tilos_seconds = r.tilos_seconds;
    p.mft_seconds = r.total_seconds;
    if (p.tilos_met && p.mft_met && r.initial.area > 0.0)
      p.savings_pct = 100.0 * (1.0 - r.area / r.initial.area);
    curve.points.push_back(p);
  }
  return curve;
}

}  // namespace mft
