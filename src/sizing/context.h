// Context layer of the sizing engine: one SizingContext per network, owning
// every piece of reusable solver state the optimizer passes need.
//
// The refinement loop re-runs STA, the D-phase LP, and the flow solver up
// to 100 times per sizing request; a batch server runs many requests back
// to back. A context bundles the incremental-STA scratch and the D-phase
// workspace (LP structure + flow arena, built once per topology) so that
//
//  - no pass allocates per-iteration: everything hot lives here, and
//  - nothing is rebuilt per job: the engine's JobRunner keeps one context
//    per (worker thread, network) and re-enters it across jobs.
//
// Contexts are cheap to construct (all state is built lazily on first use)
// and deliberately NOT thread-safe: one context belongs to one thread.
// Parallelism happens one level up, in engine/runner.h, by giving every
// worker its own contexts over the shared read-only SizingNetwork.
#pragma once

#include <cstdint>

#include "sizing/dphase.h"
#include "timing/sta.h"

namespace mft {

class AbortToken;
class ThreadArena;

/// Per-context STA instrumentation, aggregated over both embedded
/// scratches (the pass-level one and the one inside the D-phase
/// workspace). Counters start at zero at context creation and after every
/// begin_job().
struct ContextStats {
  std::int64_t sta_full_runs = 0;
  std::int64_t sta_incremental_runs = 0;
  /// Incremental runs that took the changed-hint path (no size scan).
  std::int64_t sta_hinted_runs = 0;
  std::int64_t sta_delays_recomputed = 0;
  std::int64_t ns_pivots = 0;  ///< network-simplex pivots of the last solve
};

class SizingContext {
 public:
  /// Binds to `net` for the context's whole lifetime. The network must
  /// outlive the context and must already be frozen. Instrumentation
  /// counters start at zero.
  explicit SizingContext(const SizingNetwork& net);

  SizingContext(const SizingContext&) = delete;
  SizingContext& operator=(const SizingContext&) = delete;
  SizingContext(SizingContext&&) = default;
  SizingContext& operator=(SizingContext&&) = default;

  const SizingNetwork& net() const { return *net_; }

  /// Shared incremental-STA scratch for the passes (TILOS keeps its own
  /// internal scratch; the pipeline-level checks run through this one).
  TimingScratch& timing() { return timing_; }

  /// D-phase workspace: cached LP structure, flow arena, and its own
  /// embedded TimingScratch.
  DPhaseWorkspace& dphase() { return dphase_; }

  /// Convenience: incremental STA through the context scratch.
  const TimingReport& sta(const std::vector<double>& sizes) {
    return run_sta(*net_, sizes, timing_);
  }

  /// Inner-loop parallelism: wires `arena` (may be nullptr for sequential)
  /// into both embedded timing scratches and exposes it to the passes
  /// (TILOS STA, W-phase sweeps). Not owned; the caller — the engine
  /// worker, normally — keeps it alive while the context runs jobs.
  /// Results are bit-identical with or without an arena.
  void set_arena(ThreadArena* arena);
  ThreadArena* arena() const { return arena_; }

  /// Cooperative abort/budget token for the job currently running on this
  /// context (nullptr when none). Not owned; the engine worker installs it
  /// at job start and clears it at job end. Passes check it at their
  /// natural checkpoints — a null or disarmed token never changes results.
  void set_abort(AbortToken* abort) { abort_ = abort; }
  AbortToken* abort() const { return abort_; }

  /// Optional ECO size pins for the passes run through this context
  /// (id-indexed, entry > 0 = hold that vertex at that size). Not owned;
  /// nullptr (the default) means no pins and leaves every existing path
  /// bit-identical. TILOS never bumps a pinned vertex and the W-phase never
  /// relaxes one; the D-phase budgets freely but the pinned sizes win when
  /// the budgets are re-solved.
  void set_pins(const std::vector<double>* pins) { pins_ = pins; }
  const std::vector<double>* pins() const { return pins_; }

  /// Opt-in FP-reassociated delay folds for every kernel run through this
  /// context (TILOS STA, the pass-level scratch, the D-phase's embedded
  /// scratch, W-phase load folds). Off by default; flipping it forces the
  /// scratches' next run to a full recompute so exact and fast delays never
  /// mix in one report. Never enabled on determinism-gated paths (shard
  /// bit-identity, streaming-vs-batch equivalence).
  void set_fast_math(bool on);
  bool fast_math() const { return fast_math_; }

  /// Marks the start of a new job on a reused context: zeroes all
  /// instrumentation so per-job stats are not polluted by earlier jobs.
  /// Cached solver state (LP structure, flow arena, last-sizes vector) is
  /// kept — that reuse is the point of pooling contexts.
  void begin_job() { reset_instrumentation(); }

  /// Zero the STA/flow instrumentation counters (see begin_job()).
  void reset_instrumentation();

  /// Snapshot of the counters accumulated since the last begin_job().
  ContextStats stats() const;

 private:
  const SizingNetwork* net_;
  ThreadArena* arena_ = nullptr;
  AbortToken* abort_ = nullptr;
  const std::vector<double>* pins_ = nullptr;
  bool fast_math_ = false;
  TimingScratch timing_;
  DPhaseWorkspace dphase_;
};

}  // namespace mft
