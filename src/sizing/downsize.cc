#include "sizing/downsize.h"

#include <algorithm>

namespace mft {

DownsizeResult greedy_downsize(const SizingNetwork& net,
                               const std::vector<double>& start,
                               double target_delay,
                               const DownsizeOptions& opt) {
  MFT_CHECK(opt.shrink > 0.0 && opt.shrink < 1.0);
  MFT_CHECK_MSG(run_sta(net, start).critical_path <=
                    target_delay * (1.0 + 1e-9),
                "greedy_downsize requires a feasible starting point");
  DownsizeResult res;
  res.sizes = start;
  const double min_size = net.tech().min_size;

  for (int pass = 0; pass < opt.max_passes; ++pass) {
    ++res.passes;
    int accepted_this_pass = 0;
    for (NodeId v = 0; v < net.num_vertices(); ++v) {
      if (net.is_source(v)) continue;
      double& x = res.sizes[static_cast<std::size_t>(v)];
      if (x <= min_size * (1.0 + 1e-12)) continue;
      const double saved = x;
      x = std::max(min_size, x * opt.shrink);
      if (run_sta(net, res.sizes).critical_path >
          target_delay * (1.0 + 1e-9)) {
        x = saved;  // revert
      } else {
        ++accepted_this_pass;
      }
    }
    res.accepted_moves += accepted_this_pass;
    if (accepted_this_pass == 0) break;
  }
  res.area = net.area(res.sizes);
  return res;
}

}  // namespace mft
