// Pass layer of the sizing engine: the MINFLOTRANSIT phases as composable
// optimizer passes over a SizingContext.
//
// The paper's pipeline (§2.4) is TILOS seeding followed by an alternating
// D-phase/W-phase refinement. Historically that lived as one hard-coded
// loop in run_minflotransit(); here each phase is an OptimizerPass and a
// Pipeline runs a configured sequence of (pass, repeat-budget) entries over
// shared PipelineState. The default pipeline built by
// make_minflotransit_pipeline() reproduces the legacy loop *bit-identically*
// (asserted by tests/engine_test.cc against a verbatim copy of the old
// driver), while letting callers reorder phases, change stopping rules, or
// append extra passes (e.g. DownsizePass) without touching the core.
//
// Control flow: a pass returns kRepeat to be invoked again (up to its
// entry's repeat budget), kDone to advance to the next entry, or kAbort to
// end the whole pipeline (TILOS failing its delay target). Per-pass
// instrumentation (invocations, wall seconds) is collected by the Pipeline.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sizing/context.h"
#include "sizing/downsize.h"
#include "sizing/minflotransit.h"
#include "util/status.h"

namespace mft {

/// Mutable state threaded through the passes of one Pipeline::run().
struct PipelineState {
  double target_delay = 0.0;
  std::uint64_t seed = 0;  ///< deterministic per-job seed (engine layer)

  std::vector<double> sizes;       ///< current iterate
  std::vector<double> best_sizes;  ///< best feasible solution so far
  double best_area = 0.0;
  bool met_target = false;

  TilosResult initial;         ///< the TILOS seed solution
  double tilos_seconds = 0.0;  ///< wall time of the TILOS pass

  /// Why the run was cut short, if the context's AbortToken tripped
  /// (kCanceled / kDeadlineExpired / kStepBudget); kOk on a full run. When
  /// not kOk, sizes/best_sizes hold the best-so-far iterate — feasible iff
  /// met_target, since every accepted move preserves the delay target.
  EngineStatus abort_status = EngineStatus::kOk;

  std::vector<IterationLog> iterations;  ///< accepted D/W iterations

  // D-phase trust-region machinery (owned here so a Pipeline object can be
  // reused across runs; DPhasePass::begin re-initializes them).
  double beta = 0.0;
  int backoffs = 0;
  int stagnant = 0;

  // Incremental-STA bookkeeping for the D-phase's internal timing scratch:
  // a superset of the vertices whose size differs between `sizes` and the
  // iterate that scratch last timed. Valid only along the straight accept
  // path (cleared after every run_dphase, extended by the accepted W-phase
  // move, invalidated when the trust region re-anchors at best_sizes); when
  // invalid the D-phase falls back to its always-correct size scan.
  std::vector<NodeId> dphase_changed;
  bool dphase_changed_valid = false;

  /// W-phase Gauss–Seidel sweeps since the Pipeline last harvested the
  /// counter into the running entry's PassStats (pass implementations only
  /// ever add to it).
  std::int64_t wphase_sweeps = 0;
};

enum class PassStatus {
  kRepeat,  ///< invoke this pass again (subject to its repeat budget)
  kDone,    ///< this pass is finished; advance to the next pipeline entry
  kAbort,   ///< unrecoverable (e.g. infeasible target): end the pipeline
};

class OptimizerPass {
 public:
  virtual ~OptimizerPass() = default;
  virtual const std::string& name() const = 0;
  /// Called once per Pipeline::run() before the first invocation.
  virtual void begin(SizingContext& ctx, PipelineState& s);
  virtual PassStatus run(SizingContext& ctx, PipelineState& s) = 0;
};

/// §2.4 step 1: TILOS seed from minimum sizes. Initializes sizes/best and
/// aborts the pipeline when the target is unreachable.
class TilosPass : public OptimizerPass {
 public:
  explicit TilosPass(const TilosOptions& opt = {});
  const std::string& name() const override { return name_; }
  PassStatus run(SizingContext& ctx, PipelineState& s) override;

 private:
  std::string name_ = "tilos";
  TilosOptions opt_;
};

/// W-phase at budgets equal to the current achieved delays: the identity on
/// interior points, but canonicalizes min-clamped vertices onto the SMP
/// fixpoint so D-phase linearizations start from a consistent point.
class WPhasePass : public OptimizerPass {
 public:
  const std::string& name() const override { return name_; }
  PassStatus run(SizingContext& ctx, PipelineState& s) override;

 private:
  std::string name_ = "wphase";
};

/// One D-phase/W-phase refinement iteration with the trust-region backoff
/// and the stagnation stopping rule of run_minflotransit. Returns kRepeat
/// while progress is possible; the enclosing entry's repeat budget is the
/// paper's max-iteration cap.
class DPhasePass : public OptimizerPass {
 public:
  DPhasePass(const DPhaseOptions& opt, double rel_improvement_stop,
             int patience, int max_beta_backoffs);
  const std::string& name() const override { return name_; }
  void begin(SizingContext& ctx, PipelineState& s) override;
  PassStatus run(SizingContext& ctx, PipelineState& s) override;

 private:
  std::string name_ = "dphase";
  DPhaseOptions opt_;
  double rel_improvement_stop_;
  int patience_;
  int max_beta_backoffs_;
};

/// Optional polish: greedy local downsizing from the best solution. Not
/// part of the paper's loop (and not in the default pipeline); exists to
/// show a pass composed after the fact — near-optimality means it should
/// reclaim almost nothing.
class DownsizePass : public OptimizerPass {
 public:
  explicit DownsizePass(const DownsizeOptions& opt = {});
  const std::string& name() const override { return name_; }
  PassStatus run(SizingContext& ctx, PipelineState& s) override;

 private:
  std::string name_ = "downsize";
  DownsizeOptions opt_;
};

/// Per-pass instrumentation of one Pipeline::run().
struct PassStats {
  std::string name;
  int invocations = 0;
  double seconds = 0.0;
  /// W-phase Gauss–Seidel sweeps executed by this entry's invocations
  /// (warm-started passes show how much cheaper repeated W-phases get).
  std::int64_t sweeps = 0;
};

struct PipelineResult {
  PipelineState state;
  std::vector<PassStats> pass_stats;  ///< one entry per pipeline entry
  double total_seconds = 0.0;
};

/// An ordered sequence of (pass, repeat budget) entries.
class Pipeline {
 public:
  /// Appends a pass invoked up to `max_repeats` times (until it stops
  /// returning kRepeat). Returns *this for chaining.
  Pipeline& add(std::unique_ptr<OptimizerPass> pass, int max_repeats = 1);

  /// Runs the configured passes on ctx at the given delay target.
  PipelineResult run(SizingContext& ctx, double target_delay,
                     std::uint64_t seed = 0) const;

  int num_passes() const { return static_cast<int>(entries_.size()); }
  const std::string& pass_name(int i) const;

 private:
  struct Entry {
    std::unique_ptr<OptimizerPass> pass;
    int max_repeats = 1;
  };
  std::vector<Entry> entries_;
};

/// The paper's pipeline: [TilosPass, WPhasePass, DPhasePass × max_iter].
Pipeline make_minflotransit_pipeline(const MinflotransitOptions& opt = {});

/// Converts a finished pipeline run into the legacy result struct,
/// including the final STA through the context scratch.
MinflotransitResult to_minflotransit_result(SizingContext& ctx,
                                            const PipelineResult& r);

}  // namespace mft
