// Human- and machine-readable sizing reports: the output side of a
// production sizing tool (per-element sizes, size histogram, timing
// summary, comparison between two sizings).
#pragma once

#include <string>

#include "sizing/minflotransit.h"
#include "timing/sta.h"

namespace mft {

/// Multi-line timing summary: CP, worst slack, number of critical vertices.
std::string timing_summary(const SizingNetwork& net,
                           const std::vector<double>& sizes);

/// Logarithmic size histogram over sizeable vertices ("1-2x: ###...").
std::string size_histogram(const SizingNetwork& net,
                           const std::vector<double>& sizes, int max_width = 50);

/// CSV with one row per sizeable vertex: name, kind, size, delay, slack.
std::string sizing_csv(const SizingNetwork& net,
                       const std::vector<double>& sizes);

/// Side-by-side comparison of a MINFLOTRANSIT run against its TILOS seed:
/// areas, delays, iteration count, biggest per-vertex movers.
std::string compare_report(const SizingNetwork& net,
                           const MinflotransitResult& result, int top_movers = 8);

}  // namespace mft
