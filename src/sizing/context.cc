#include "sizing/context.h"

namespace mft {

SizingContext::SizingContext(const SizingNetwork& net) : net_(&net) {
  MFT_CHECK(net.frozen());
  // Scratches are freshly constructed (all counters zero), but reset
  // explicitly so a future member with non-zero initial instrumentation
  // cannot silently leak into the first job's stats.
  reset_instrumentation();
}

void SizingContext::set_arena(ThreadArena* arena) {
  arena_ = arena;
  timing_.arena = arena;
  dphase_.timing.arena = arena;
}

void SizingContext::set_fast_math(bool on) {
  fast_math_ = on;
  timing_.fast_math = on;
  dphase_.timing.fast_math = on;
}

void SizingContext::reset_instrumentation() {
  timing_.reset_instrumentation();
  dphase_.timing.reset_instrumentation();
  dphase_.flow.mcf.reset_stats();
}

ContextStats SizingContext::stats() const {
  ContextStats s;
  s.sta_full_runs = timing_.full_runs + dphase_.timing.full_runs;
  s.sta_incremental_runs =
      timing_.incremental_runs + dphase_.timing.incremental_runs;
  s.sta_hinted_runs = timing_.hinted_runs + dphase_.timing.hinted_runs;
  s.sta_delays_recomputed =
      timing_.delays_recomputed + dphase_.timing.delays_recomputed;
  s.ns_pivots = dphase_.flow.mcf.ns_pivots;
  return s;
}

}  // namespace mft
