// MINFLOTRANSIT (paper §2.4): TILOS initial solution, then alternating
// D-phase (min-cost-flow delay-budget redistribution) and W-phase (SMP
// minimum-area re-sizing) until the area improvement becomes negligible.
//
// Since the pass-pipeline refactor these entry points are thin wrappers
// over sizing/pass.h (make_minflotransit_pipeline) — kept as the stable
// public API. Callers that run many sizings on one network should hold a
// SizingContext and use the context overload so no solver state is rebuilt
// per call; the engine layer (engine/runner.h) does exactly that.
#pragma once

#include "sizing/dphase.h"
#include "sizing/tilos.h"
#include "sizing/wphase.h"

namespace mft {

struct MinflotransitOptions {
  TilosOptions tilos;
  DPhaseOptions dphase;
  int max_iterations = 100;  ///< §3: "no more than 100 iterations"
  /// Stop when the relative area improvement stays below this for
  /// `patience` consecutive iterations ("negligible", §2.4 step 3).
  double rel_improvement_stop = 1e-4;
  int patience = 3;
  /// On W-phase infeasibility or timing regression, the trust bound β is
  /// halved and the iteration retried, at most this many times in a row.
  int max_beta_backoffs = 4;
  /// Seed forwarded into PipelineState for stochastic passes. The default
  /// passes are fully deterministic and ignore it; the engine layer sets
  /// it per job (derived from the batch base seed) so any future
  /// randomized pass stays reproducible at every thread count.
  std::uint64_t seed = 0;
};

struct IterationLog {
  double area = 0.0;
  double critical_path = 0.0;
  double dphase_objective = 0.0;  ///< predicted area decrease
  double beta = 0.0;
};

struct MinflotransitResult {
  std::vector<double> sizes;   ///< best solution found
  bool met_target = false;
  double area = 0.0;
  double delay = 0.0;          ///< CP at the returned sizes
  TilosResult initial;         ///< the TILOS solution it started from
  std::vector<IterationLog> iterations;
  double tilos_seconds = 0.0;  ///< time spent in the initial TILOS sizing
  double total_seconds = 0.0;  ///< end-to-end, including TILOS
};

MinflotransitResult run_minflotransit(const SizingNetwork& net,
                                      double target_delay,
                                      const MinflotransitOptions& opt = {});

class SizingContext;

/// Same algorithm through a caller-owned context: reuses the context's
/// incremental-STA scratch and D-phase workspace across calls instead of
/// building them per invocation. Bit-identical results to the overload
/// above (the workspaces only change *where* work happens, not its values).
MinflotransitResult run_minflotransit(SizingContext& ctx, double target_delay,
                                      const MinflotransitOptions& opt = {});

}  // namespace mft
