// W-phase (paper §2.3.2): minimum-area sizes meeting fixed delay budgets.
//
//     minimize Σ x_i   s.t.  (a_self_i·x_i + Σ a_ij x_j + b_i)/x_i ≤ d_i,
//                            minsize ≤ x_i ≤ maxsize
//
// equivalently x_i ≥ (Σ a_ij x_j + b_i)/(d_i − a_self_i), a Simple
// Monotonic Program (ref [10]): the right-hand side is monotone increasing
// in every x_j, so the unique minimum-area solution is the least fixpoint,
// reached by Gauss–Seidel relaxation from all-minimum sizes. A single
// reverse-topological pass is exact for gate sizing (loads point strictly
// downstream); mutually-loading transistor blocks converge in a few extra
// sweeps. Worst case O(|V||E|), matching the paper's bound.
#pragma once

#include "timing/sizing_network.h"

namespace mft {

struct WPhaseResult {
  std::vector<double> sizes;
  /// False if some budget is unachievable: d_i ≤ a_self_i (no size works)
  /// or the required size exceeds maxsize. Sizes are still returned,
  /// clamped, so the caller can inspect how close the solution came.
  bool feasible = true;
  int sweeps = 0;
};

WPhaseResult solve_wphase(const SizingNetwork& net,
                          const std::vector<double>& delay_budget);

}  // namespace mft
