// W-phase (paper §2.3.2): minimum-area sizes meeting fixed delay budgets.
//
//     minimize Σ x_i   s.t.  (a_self_i·x_i + Σ a_ij x_j + b_i)/x_i ≤ d_i,
//                            minsize ≤ x_i ≤ maxsize
//
// equivalently x_i ≥ (Σ a_ij x_j + b_i)/(d_i − a_self_i), a Simple
// Monotonic Program (ref [10]): the right-hand side is monotone increasing
// in every x_j, so the unique minimum-area solution is the least fixpoint,
// reached by Gauss–Seidel relaxation. A single reverse-topological pass is
// exact for gate sizing (loads point strictly downstream — the start point
// is irrelevant); mutually-loading transistor blocks converge geometrically
// (the coupling is the weak parasitic term), so any start in the basin
// reaches the same fixpoint. Worst case O(|V||E|), matching the paper.
//
// Two starts:
//  - solve_wphase(net, budget): cold, from all-minimum sizes (the paper's
//    construction of the least fixpoint).
//  - solve_wphase(net, budget, start): warm, from a previous iterate.
//    Inside the D/W refinement consecutive budgets move only slightly, so
//    warm sweeps converge in fewer passes; for triangular (gate) networks
//    the result is bit-identical to cold.
//
// Layout: the relaxation runs entirely in sweep-position order on the
// frozen SweepPlan (budgets and sizes gathered once at entry, scattered
// once at exit), streaming the flat load CSR instead of chasing per-vertex
// heap vectors. Because loads strictly cross levels, the reverse-position
// walk reads exactly the values the historical reverse-topological walk
// read — the result is bit-identical (tests/layout_test.cc pins it).
//
// Parallelism: with a multi-thread ThreadArena the sweep runs one
// levelization level at a time (contiguous position ranges), concurrent
// within a level. Same-level vertices share no load term, so the result is
// bit-identical to sequential at any thread count (tests/parallel_test.cc).
//
// Fast math: the trailing fast_math flag switches the load fold to the
// FP-reassociated two-accumulator form (SweepPlan::delay_at_fast's fold).
// Off by default and never enabled on determinism-gated paths.
#pragma once

#include "timing/sizing_network.h"

namespace mft {

class AbortToken;
class ThreadArena;

struct WPhaseResult {
  std::vector<double> sizes;
  /// Vertices whose final size differs from the start point (min_sizes for
  /// the cold overload). Exactly the change set of this W-phase move —
  /// callers feed it to run_sta's changed-hint overload.
  std::vector<NodeId> changed;
  /// False if some budget is unachievable: d_i ≤ a_self_i (no size works)
  /// or the required size exceeds maxsize. Sizes are still returned,
  /// clamped, so the caller can inspect how close the solution came.
  bool feasible = true;
  int sweeps = 0;
};

/// Cold start from net.min_sizes(). `abort` (optional) is checked once per
/// sweep; a trip stops the relaxation and reports feasible=false so the
/// caller rejects the half-converged iterate.
///
/// `pins` (optional, id-indexed, entry > 0 means "hold this vertex at that
/// size") freezes the pinned vertices for the whole relaxation: they enter
/// at the pinned size and are never updated, so the fixpoint is the minimum
///-area solution *conditioned on* the pins. ECO size pins ride on this.
WPhaseResult solve_wphase(const SizingNetwork& net,
                          const std::vector<double>& delay_budget,
                          ThreadArena* arena = nullptr,
                          AbortToken* abort = nullptr,
                          bool fast_math = false,
                          const std::vector<double>* pins = nullptr);

/// Warm start from `start` (one full per-vertex size vector, sources 0).
WPhaseResult solve_wphase(const SizingNetwork& net,
                          const std::vector<double>& delay_budget,
                          const std::vector<double>& start,
                          ThreadArena* arena = nullptr,
                          AbortToken* abort = nullptr,
                          bool fast_math = false,
                          const std::vector<double>* pins = nullptr);

}  // namespace mft
