// D-phase (paper §2.3.1): redistribute delay budgets at fixed sizes.
//
// Construction, following the paper exactly:
//  1. STA + delay balancing capture all slack as FSDUs (Fig. 3/4).
//  2. Every vertex i gets a dummy companion Dmy(i) (Fig. 5); the FSDU
//     displacement r(Dmy(i)) − r(i) is the change in i's delay budget.
//  3. Linearization (eq. (7)): Σδx_i = −Σ C_i·δd_i with positive weights
//     C_i = x_i·y_i, (D−A)^T y = 1 — so minimizing the area change means
//     maximizing Σ C_i·(r(Dmy(i)) − r(i)).
//  4. Constraints: |δd_i| bounded by MINΔD/MAXΔD (trust region, ±β·delay,
//     floored so the W-phase stays solvable), every original edge keeps a
//     non-negative displaced FSDU (causality), and r is pinned to 0 at the
//     primary inputs and the dummy output O (Corollary 1: CP unchanged).
//  5. The LP is the dual of a min-cost flow (eq. (10)); costs are decimally
//     integerized and solved by network simplex (or an ablation solver).
//
// The result is a delay budget vector d with the same critical path that a
// W-phase call turns back into (smaller) sizes.
#pragma once

#include "mcf/dual_lp.h"
#include "timing/delay_balance.h"
#include "timing/sta.h"

namespace mft {

struct DPhaseOptions {
  double beta = 0.25;  ///< trust bound: δd_i ∈ [−β, +β]·delay(i)
  FlowSolver solver = FlowSolver::kNetworkSimplex;
  int cost_digits = 4;    ///< decimal scaling of constraint bounds (§2.3.1)
  int supply_digits = 3;  ///< decimal scaling of objective weights
  BalanceMode balance = BalanceMode::kAsap;
  /// Ablation switch: replace the C_i = x_i·y_i linearization weights of
  /// eq. (7) with uniform weights (maximize total budget movement instead
  /// of predicted area decrease). Exists to quantify how much of the win
  /// comes from the paper's sensitivity-weighted objective.
  bool uniform_weights = false;
};

struct DPhaseResult {
  bool solved = false;
  std::vector<double> budget;      ///< new per-vertex delay budgets d_i
  double objective = 0.0;          ///< Σ C_i·δd_i = predicted area decrease
  int num_constraints = 0;
  int num_moved = 0;               ///< vertices with |δd_i| > 0
};

/// Reusable state for repeated D-phase calls on one netlist topology. The
/// LP structure (constraint/objective endpoints) and the derived flow
/// network are built on the first call and only their bounds/coefficients
/// are rewritten afterwards; `problem_builds()` stays at 1 as long as the
/// topology is unchanged (the tier-1 suite asserts this). The embedded
/// TimingScratch makes the per-iteration STA incremental as well.
struct DPhaseWorkspace {
  DualFlowLp lp{0};
  DualFlowLp::Workspace flow;
  TimingScratch timing;
  bool built = false;
  std::uint64_t net_serial = 0;  ///< SizingNetwork::serial() of the build

  /// How many times the underlying McfProblem was constructed.
  int problem_builds() const { return flow.problem_builds; }
};

/// `changed` (optional) is a superset of the vertices whose size differs
/// from the previous run_dphase call on the same workspace — forwarded to
/// run_sta's changed-hint overload so the internal STA skips its O(n)
/// size-diff scan. Pass nullptr whenever the diff is not known exactly
/// (fresh workspace, re-anchored iterate); the scan fallback is always
/// correct. Results are identical either way.
DPhaseResult run_dphase(const SizingNetwork& net,
                        const std::vector<double>& sizes,
                        const DPhaseOptions& opt = {},
                        DPhaseWorkspace* ws = nullptr,
                        const std::vector<NodeId>* changed = nullptr);

}  // namespace mft
