#include "sizing/resize.h"

#include <algorithm>
#include <cmath>

#include "sizing/pass.h"
#include "sizing/shard.h"
#include "sizing/wphase.h"
#include "timing/sta.h"
#include "util/stopwatch.h"
#include "util/str.h"

namespace mft {

namespace {

/// Bounded D/W area-recovery loop over an already-feasible iterate: the
/// DPhasePass trust-region machinery run standalone (no TILOS, no full
/// pipeline), stopping after `iters` iterations or when the pass stops
/// asking to repeat. `sizes` must meet `target` on entry; on exit it holds
/// the best feasible iterate found.
void refine_area(SizingContext& ctx, const MinflotransitOptions& opt,
                 double target, int iters, std::vector<double>& sizes) {
  if (iters <= 0) return;
  DPhasePass dp(opt.dphase, opt.rel_improvement_stop, opt.patience,
                opt.max_beta_backoffs);
  PipelineState st;
  st.target_delay = target;
  st.sizes = sizes;
  st.best_sizes = sizes;
  st.best_area = ctx.net().area(sizes);
  st.met_target = true;
  dp.begin(ctx, st);
  for (int i = 0; i < iters; ++i)
    if (dp.run(ctx, st) != PassStatus::kRepeat) break;
  sizes = st.best_sizes;
}

/// Per-band increments of the running-max arrival profile max(AT+delay)
/// under `t` — the same span accounting the shard reconciliation uses
/// (shard.cc keeps its copy file-local), with no floor: a band that adds
/// no time depth contributes zero.
std::vector<double> band_usage(const ShardPartition& part,
                               const TimingReport& t) {
  const int k = part.num_shards();
  std::vector<double> endmax(static_cast<std::size_t>(k), 0.0);
  for (NodeId v = 0; v < static_cast<NodeId>(part.shard_of.size()); ++v) {
    const int sh = part.shard_of[static_cast<std::size_t>(v)];
    endmax[static_cast<std::size_t>(sh)] =
        std::max(endmax[static_cast<std::size_t>(sh)],
                 t.at[static_cast<std::size_t>(v)] +
                     t.delay[static_cast<std::size_t>(v)]);
  }
  std::vector<double> usage(static_cast<std::size_t>(k), 0.0);
  double prev = 0.0, run_max = 0.0;
  for (int sh = 0; sh < k; ++sh) {
    run_max = std::max(run_max, endmax[static_cast<std::size_t>(sh)]);
    usage[static_cast<std::size_t>(sh)] = std::max(run_max - prev, 0.0);
    prev = run_max;
  }
  return usage;
}

/// Level-band partition {[0,lo), [lo,hi), [hi,L)} with degenerate bands
/// collapsed; *mid_out is the index of the [lo,hi) band.
ShardPartition make_band_partition(const SizingNetwork& net, int lo, int hi,
                                   int* mid_out) {
  const int levels = net.num_levels();
  ShardPartition part;
  part.cut_levels.push_back(0);
  for (const int c : {lo, hi, levels})
    if (c > part.cut_levels.back()) part.cut_levels.push_back(c);
  const int k = static_cast<int>(part.cut_levels.size()) - 1;
  *mid_out = 0;
  for (int s = 0; s < k; ++s)
    if (part.cut_levels[static_cast<std::size_t>(s)] == lo) *mid_out = s;
  part.vertices.resize(static_cast<std::size_t>(k));
  part.shard_of.assign(static_cast<std::size_t>(net.num_vertices()), 0);
  const std::vector<int>& level_of = net.level_of();
  for (NodeId v = 0; v < net.num_vertices(); ++v) {
    const int l = level_of[static_cast<std::size_t>(v)];
    int s = 0;
    while (s + 1 < k && l >= part.cut_levels[static_cast<std::size_t>(s) + 1])
      ++s;
    part.shard_of[static_cast<std::size_t>(v)] = s;
    // Ascending id within each band — the local id order
    // build_shard_network expects.
    part.vertices[static_cast<std::size_t>(s)].push_back(v);
  }
  part.cut_width.assign(k > 1 ? static_cast<std::size_t>(k) - 1 : 0, 0);
  return part;
}

}  // namespace

const char* to_string(ResizeMode mode) {
  switch (mode) {
    case ResizeMode::kFixpoint:
      return "fixpoint";
    case ResizeMode::kWarm:
      return "warm";
    case ResizeMode::kCold:
      return "cold";
  }
  return "unknown";
}

ResizeSession::ResizeSession(const SizingNetwork& net, const ResizeOptions& opt)
    : net_(net.clone()),
      opt_(opt),
      ctx_(net_),
      pins_(static_cast<std::size_t>(net_.num_vertices()), 0.0) {}

bool ResizeSession::has_pins() const {
  for (const double p : pins_)
    if (p > 0.0) return true;
  return false;
}

void ResizeSession::install_pins() {
  ctx_.set_pins(has_pins() ? &pins_ : nullptr);
}

ResizeResult ResizeSession::solve(double target_delay) {
  ResizeResult res;
  if (!(target_delay > 0.0)) {
    res.ok = false;
    res.error = "target delay must be positive";
    return res;
  }
  return cold_solve(target_delay);
}

ResizeResult ResizeSession::adopt(const std::vector<double>& sizes,
                                  double target_delay) {
  ResizeResult res;
  if (!(target_delay > 0.0)) {
    res.ok = false;
    res.error = "target delay must be positive";
    return res;
  }
  if (static_cast<int>(sizes.size()) != net_.num_vertices()) {
    res.ok = false;
    res.error = strf("size vector has %zu entries, network has %d",
                     sizes.size(), net_.num_vertices());
    return res;
  }
  for (NodeId v = 0; v < net_.num_vertices(); ++v)
    if (!net_.is_source(v) && !(sizes[static_cast<std::size_t>(v)] > 0.0)) {
      res.ok = false;
      res.error = strf("adopted size of vertex %d is not positive", v);
      return res;
    }
  Stopwatch sw;
  const TimingReport t = run_sta(net_, sizes);
  sizes_ = sizes;
  target_ = target_delay;
  sized_ = true;
  res.sizes = sizes_;
  res.area = net_.area(sizes_);
  res.delay = t.critical_path;
  res.target = target_delay;
  res.met_target = t.critical_path <= target_delay * (1.0 + 1e-9);
  res.mode = ResizeMode::kFixpoint;
  res.seconds = sw.seconds();
  return res;
}

ResizeResult ResizeSession::cold_solve(double target) {
  ResizeResult res;
  Stopwatch sw;
  install_pins();
  ctx_.begin_job();
  const MinflotransitResult m = run_minflotransit(ctx_, target, opt_.cold);
  sizes_ = m.sizes;
  target_ = target;
  sized_ = true;
  res.sizes = sizes_;
  res.area = m.area;
  res.delay = m.delay;
  res.target = target;
  res.met_target = m.met_target;
  res.mode = ResizeMode::kCold;
  res.seconds = sw.seconds();
  return res;
}

bool ResizeSession::verify_and_adopt(const std::vector<double>& candidate,
                                     double target, ResizeMode mode,
                                     ResizeResult& res) {
  // The contract: every warm answer is re-verified by a full from-scratch
  // STA over the whole network before it is returned or adopted.
  const TimingReport t = run_sta(net_, candidate);
  if (!(t.critical_path <= target * (1.0 + 1e-9))) return false;
  sizes_ = candidate;
  target_ = target;
  res.sizes = sizes_;
  res.area = net_.area(sizes_);
  res.delay = t.critical_path;
  res.target = target;
  res.met_target = true;
  res.mode = mode;
  return true;
}

bool ResizeSession::warm_global(double target, ResizeResult& res) {
  // Rescale the achieved per-vertex delays into budgets summing to the new
  // target along every path, then relax warm from the current sizes: no
  // TILOS, no flow solve — two permutes and a few Gauss–Seidel sweeps.
  const TimingReport t0 = run_sta(net_, sizes_);
  if (!(t0.critical_path > 0.0)) return false;
  const double f = target / t0.critical_path;
  const std::size_t n = static_cast<std::size_t>(net_.num_vertices());
  std::vector<double> budget(n);
  for (std::size_t v = 0; v < n; ++v) budget[v] = t0.delay[v] * f;
  const WPhaseResult w =
      solve_wphase(net_, budget, sizes_, ctx_.arena(), nullptr, false,
                   has_pins() ? &pins_ : nullptr);
  if (!w.feasible) return false;
  std::vector<double> cand = w.sizes;
  install_pins();
  refine_area(ctx_, opt_.cold, target, opt_.max_local_iterations, cand);
  return verify_and_adopt(cand, target, ResizeMode::kWarm, res);
}

bool ResizeSession::warm_local(double target, int lo_level, int hi_level,
                               ResizeResult& res) {
  // Working iterate: current sizes with the pins forced — the pinned sizes
  // are part of the perturbation the carve must absorb.
  std::vector<double> work = sizes_;
  for (NodeId v = 0; v < net_.num_vertices(); ++v)
    if (pins_[static_cast<std::size_t>(v)] > 0.0)
      work[static_cast<std::size_t>(v)] = pins_[static_cast<std::size_t>(v)];

  int mid = 0;
  const ShardPartition part =
      make_band_partition(net_, lo_level, hi_level, &mid);

  // Span budget for the band from the unperturbed prefix/suffix arrival
  // profile: whatever time depth the other bands consume at the current
  // sizes is spoken for; the band gets the rest. The boundary margin is
  // shaved off the WHOLE target, not just the band's slice: it covers
  // prefix arrival drift caused by the band's own resizing (the band's
  // new sizes load the prefix's drivers), and that drift scales with the
  // full path depth — the local area-recovery pass deliberately spends
  // every unit of slack inside the band, so slack held against drift has
  // to live outside the span it is given.
  const TimingReport t = run_sta(net_, work);
  const std::vector<double> usage = band_usage(part, t);
  double span = part.num_shards() > 1 ? target * (1.0 - opt_.boundary_margin)
                                      : target;
  for (int s = 0; s < part.num_shards(); ++s)
    if (s != mid) span -= usage[static_cast<std::size_t>(s)];
  if (!(span > 0.0)) return false;

  const ShardNetwork sn = build_shard_network(net_, part, mid, work);
  const int ln = sn.net->num_vertices();
  std::vector<double> lstart(static_cast<std::size_t>(ln), 0.0);
  std::vector<double> lpins(static_cast<std::size_t>(ln), 0.0);
  bool any_pin = false;
  for (int l = 0; l < sn.num_owned; ++l) {
    const NodeId gv = sn.global_of_local[static_cast<std::size_t>(l)];
    lstart[static_cast<std::size_t>(l)] = work[static_cast<std::size_t>(gv)];
    const double p = pins_[static_cast<std::size_t>(gv)];
    if (p > 0.0) {
      lpins[static_cast<std::size_t>(l)] = p;
      any_pin = true;
    }
  }

  // Proportional budgets inside the band, warm W-phase, then the bounded
  // local D/W area recovery — all O(band), never O(V).
  const TimingReport lt = run_sta(*sn.net, lstart);
  if (!(lt.critical_path > 0.0)) return false;
  const double lf = span / lt.critical_path;
  std::vector<double> lbudget(static_cast<std::size_t>(ln));
  for (int l = 0; l < ln; ++l)
    lbudget[static_cast<std::size_t>(l)] =
        lt.delay[static_cast<std::size_t>(l)] * lf;
  const WPhaseResult w =
      solve_wphase(*sn.net, lbudget, lstart, ctx_.arena(), nullptr, false,
                   any_pin ? &lpins : nullptr);
  if (!w.feasible) return false;
  std::vector<double> lsizes = w.sizes;
  {
    SizingContext lctx(*sn.net);
    lctx.set_arena(ctx_.arena());
    if (any_pin) lctx.set_pins(&lpins);
    refine_area(lctx, opt_.cold, span, opt_.max_local_iterations, lsizes);
  }

  std::vector<double> cand = work;
  for (int l = 0; l < sn.num_owned; ++l)
    cand[static_cast<std::size_t>(
        sn.global_of_local[static_cast<std::size_t>(l)])] =
        lsizes[static_cast<std::size_t>(l)];
  res.region_vertices = sn.num_owned;
  return verify_and_adopt(cand, target, ResizeMode::kWarm, res);
}

ResizeResult ResizeSession::resize(const ResizeDelta& delta) {
  ResizeResult res;
  if (!sized_) {
    res.ok = false;
    res.error = "session has no sized state; call solve() or adopt() first";
    return res;
  }
  if (delta.target_delay < 0.0) {
    res.ok = false;
    res.error = "target delay must be positive (or 0 to keep the current)";
    return res;
  }
  const double target =
      delta.target_delay > 0.0 ? delta.target_delay : target_;
  const int n = net_.num_vertices();
  const Tech& tech = net_.tech();

  // Validate the whole delta before touching any state: a rejected delta
  // must leave the session exactly as it was (the daemon turns the error
  // into a kInvalidInput response, never a crash).
  std::vector<double> pending_b(static_cast<std::size_t>(n), 0.0);
  for (const ResizeLoadEdit& e : delta.load_edits) {
    if (e.vertex < 0 || e.vertex >= n) {
      res.ok = false;
      res.error = strf("load edit names unknown vertex %d", e.vertex);
      return res;
    }
    if (net_.is_source(e.vertex)) {
      res.ok = false;
      res.error = strf("load edit on source vertex %d (sources carry no load)",
                       e.vertex);
      return res;
    }
    pending_b[static_cast<std::size_t>(e.vertex)] += e.b_delta;
  }
  for (NodeId v = 0; v < n; ++v) {
    const double d = pending_b[static_cast<std::size_t>(v)];
    if (d == 0.0) continue;
    const SizingVertex& sv = net_.vertex(v);
    const double nb = sv.b + d;
    if (nb < 0.0 || (nb == 0.0 && sv.loads.empty())) {
      res.ok = false;
      res.error = strf(
          "load edit would leave vertex %d with degenerate load (b %.6g -> "
          "%.6g)",
          v, sv.b, nb);
      return res;
    }
  }
  std::vector<double> new_pins = pins_;
  for (const ResizePin& p : delta.pins) {
    if (p.vertex < 0 || p.vertex >= n) {
      res.ok = false;
      res.error = strf("pin names unknown vertex %d", p.vertex);
      return res;
    }
    if (net_.is_source(p.vertex)) {
      res.ok = false;
      res.error = strf("pin on source vertex %d (sources have no size)",
                       p.vertex);
      return res;
    }
    if (p.size > 0.0 &&
        (p.size < tech.min_size * (1.0 - 1e-12) ||
         p.size > tech.max_size * (1.0 + 1e-12))) {
      res.ok = false;
      res.error =
          strf("pin size %.6g for vertex %d outside [%.6g, %.6g]", p.size,
               p.vertex, tech.min_size, tech.max_size);
      return res;
    }
    new_pins[static_cast<std::size_t>(p.vertex)] =
        p.size > 0.0 ? p.size : 0.0;
  }

  // The dirty set: vertices whose constant load or pin actually changes.
  std::vector<NodeId> dirty;
  for (NodeId v = 0; v < n; ++v) {
    if (pending_b[static_cast<std::size_t>(v)] != 0.0 ||
        new_pins[static_cast<std::size_t>(v)] !=
            pins_[static_cast<std::size_t>(v)])
      dirty.push_back(v);
  }
  res.dirty_vertices = static_cast<int>(dirty.size());

  Stopwatch sw;
  if (dirty.empty() && target == target_) {
    // Zero delta: fixpoint. Bit-identical sizes, no solver touched; the
    // delay comes from the context's (exact, incremental) STA.
    res.sizes = sizes_;
    res.area = net_.area(sizes_);
    res.delay = ctx_.sta(sizes_).critical_path;
    res.target = target_;
    res.met_target = res.delay <= target_ * (1.0 + 1e-9);
    res.mode = ResizeMode::kFixpoint;
    res.seconds = sw.seconds();
    return res;
  }

  // Commit the delta: ECO load edits mutate the owned clone in place (each
  // edit mints a fresh network serial, so every serial-keyed workspace —
  // including ctx_'s scratches — recomputes from scratch next run), pins
  // replace the session pin vector.
  for (const NodeId v : dirty)
    if (pending_b[static_cast<std::size_t>(v)] != 0.0)
      net_.eco_add_b(v, pending_b[static_cast<std::size_t>(v)]);
  pins_ = new_pins;

  bool warm_attempted = false;
  bool warm_ok = false;
  if (dirty.empty()) {
    // Target-only delta: global warm re-solve from the current sizes.
    warm_attempted = true;
    warm_ok = warm_global(target, res);
  } else {
    // Local delta: carve the dirty level band (plus halo) unless it
    // covers too much of the network to be worth carving.
    const std::vector<int>& level_of = net_.level_of();
    int lo = net_.num_levels(), hi = 0;
    for (const NodeId v : dirty) {
      lo = std::min(lo, level_of[static_cast<std::size_t>(v)]);
      hi = std::max(hi, level_of[static_cast<std::size_t>(v)] + 1);
    }
    lo = std::max(0, lo - opt_.halo_levels);
    hi = std::min(net_.num_levels(), hi + opt_.halo_levels);
    const std::vector<int>& off = net_.level_offsets();
    const int region = off[static_cast<std::size_t>(hi)] -
                       off[static_cast<std::size_t>(lo)];
    res.region_vertices = region;
    if (static_cast<double>(region) <=
        opt_.full_solve_frac * static_cast<double>(n)) {
      warm_attempted = true;
      warm_ok = warm_local(target, lo, hi, res);
    }
  }

  if (!warm_ok) {
    const int dirty_count = res.dirty_vertices;
    const int region = res.region_vertices;
    res = cold_solve(target);
    res.fell_back = warm_attempted;
    res.dirty_vertices = dirty_count;
    res.region_vertices = region;
  }
  res.seconds = sw.seconds();
  return res;
}

}  // namespace mft
