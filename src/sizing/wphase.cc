#include "sizing/wphase.h"

#include <algorithm>

namespace mft {

WPhaseResult solve_wphase(const SizingNetwork& net,
                          const std::vector<double>& delay_budget) {
  MFT_CHECK(net.frozen());
  MFT_CHECK(static_cast<int>(delay_budget.size()) == net.num_vertices());
  const Tech& tech = net.tech();
  WPhaseResult res;
  res.sizes = net.min_sizes();

  const auto& topo = net.topological_order();
  const int max_sweeps = std::max(4, net.num_vertices());
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    ++res.sweeps;
    double max_rel_change = 0.0;
    // Reverse topological order: fanout sizes settle before their drivers
    // read them, making the first sweep exact in the triangular case.
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      const NodeId v = *it;
      const SizingVertex& sv = net.vertex(v);
      if (sv.kind == VertexKind::kSource) continue;
      const double d = delay_budget[static_cast<std::size_t>(v)];
      if (d <= sv.a_self) {
        // No finite size meets this budget (self-loading already exceeds
        // it); clamp to max and report infeasibility.
        res.feasible = false;
        res.sizes[static_cast<std::size_t>(v)] = tech.max_size;
        continue;
      }
      double load = sv.b;
      for (const LoadTerm& t : sv.loads)
        load += t.coeff * res.sizes[static_cast<std::size_t>(t.vertex)];
      double x = load / (d - sv.a_self);
      if (x > tech.max_size) {
        res.feasible = false;
        x = tech.max_size;
      }
      x = std::max(x, tech.min_size);
      const double old = res.sizes[static_cast<std::size_t>(v)];
      max_rel_change = std::max(max_rel_change, std::abs(x - old) / old);
      res.sizes[static_cast<std::size_t>(v)] = x;
    }
    if (max_rel_change < 1e-12) break;
  }
  return res;
}

}  // namespace mft
