#include "sizing/wphase.h"

#include <algorithm>
#include <cmath>

#include "util/abort.h"
#include "util/parallel.h"

namespace mft {

namespace {

/// Minimum vertices per arena chunk for a level sweep (cutoff below which
/// dispatch overhead beats the per-vertex load fold; results unaffected).
constexpr int kWPhaseGrain = 64;

/// Per-sweep reduction state, one cache line per thread: max is exact under
/// any association, and infeasibility is a sticky OR, so merging the
/// per-thread values in thread-index order reproduces the sequential sweep
/// bit for bit.
struct alignas(64) SweepLocal {
  double max_rel_change = 0.0;
  char infeasible = 0;
};

WPhaseResult solve_wphase_impl(const SizingNetwork& net,
                               const std::vector<double>& delay_budget,
                               const std::vector<double>& start,
                               ThreadArena* arena, AbortToken* abort) {
  MFT_CHECK(net.frozen());
  MFT_CHECK(static_cast<int>(delay_budget.size()) == net.num_vertices());
  MFT_CHECK(static_cast<int>(start.size()) == net.num_vertices());
  const Tech& tech = net.tech();
  WPhaseResult res;
  res.sizes = start;

  // One Gauss–Seidel update of vertex v from the current res.sizes. Both
  // the sequential and the level-parallel sweep run exactly this body.
  auto update = [&](NodeId v, double& max_rel_change, char& infeasible) {
    const SizingVertex& sv = net.vertex(v);
    if (sv.kind == VertexKind::kSource) return;
    const double d = delay_budget[static_cast<std::size_t>(v)];
    if (d <= sv.a_self) {
      // No finite size meets this budget (self-loading already exceeds
      // it); clamp to max and report infeasibility.
      infeasible = 1;
      res.sizes[static_cast<std::size_t>(v)] = tech.max_size;
      return;
    }
    double load = sv.b;
    for (const LoadTerm& t : sv.loads)
      load += t.coeff * res.sizes[static_cast<std::size_t>(t.vertex)];
    double x = load / (d - sv.a_self);
    if (x > tech.max_size) {
      infeasible = 1;
      x = tech.max_size;
    }
    x = std::max(x, tech.min_size);
    const double old = res.sizes[static_cast<std::size_t>(v)];
    max_rel_change = std::max(max_rel_change, std::abs(x - old) / old);
    res.sizes[static_cast<std::size_t>(v)] = x;
  };

  const bool parallel = arena != nullptr && arena->threads() > 1;
  std::vector<SweepLocal> locals(
      parallel ? static_cast<std::size_t>(arena->threads()) : 0);
  const auto& topo = net.topological_order();
  const int max_sweeps = std::max(4, net.num_vertices());
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (abort != nullptr && abort->step()) {
      // Interrupted mid-relaxation: the iterate may not satisfy the
      // budgets, so report it infeasible and let the caller discard it.
      res.feasible = false;
      break;
    }
    ++res.sweeps;
    double max_rel_change = 0.0;
    char infeasible = 0;
    if (parallel) {
      for (SweepLocal& l : locals) l = SweepLocal{};
      // Levels settle top-down, each level concurrently; within a level no
      // vertex loads another, so every update reads exactly the values the
      // sequential reverse-topological sweep would read.
      const auto& order = net.level_order();
      const auto& off = net.level_offsets();
      for (int l = net.num_levels() - 1; l >= 0; --l) {
        const int base = off[static_cast<std::size_t>(l)];
        const int width = off[static_cast<std::size_t>(l) + 1] - base;
        arena->parallel_for(width, kWPhaseGrain,
                            [&](int thread, int begin, int end) {
                              SweepLocal& local =
                                  locals[static_cast<std::size_t>(thread)];
                              for (int i = end - 1; i >= begin; --i)
                                update(order[static_cast<std::size_t>(base + i)],
                                       local.max_rel_change, local.infeasible);
                            });
      }
      for (const SweepLocal& l : locals) {
        max_rel_change = std::max(max_rel_change, l.max_rel_change);
        infeasible |= l.infeasible;
      }
    } else {
      // Reverse topological order: fanout sizes settle before their drivers
      // read them, making the first sweep exact in the triangular case.
      for (auto it = topo.rbegin(); it != topo.rend(); ++it)
        update(*it, max_rel_change, infeasible);
    }
    if (infeasible) res.feasible = false;
    if (max_rel_change < 1e-12) break;
  }

  for (NodeId v = 0; v < net.num_vertices(); ++v)
    if (res.sizes[static_cast<std::size_t>(v)] !=
        start[static_cast<std::size_t>(v)])
      res.changed.push_back(v);
  return res;
}

}  // namespace

WPhaseResult solve_wphase(const SizingNetwork& net,
                          const std::vector<double>& delay_budget,
                          ThreadArena* arena, AbortToken* abort) {
  return solve_wphase_impl(net, delay_budget, net.min_sizes(), arena, abort);
}

WPhaseResult solve_wphase(const SizingNetwork& net,
                          const std::vector<double>& delay_budget,
                          const std::vector<double>& start,
                          ThreadArena* arena, AbortToken* abort) {
  return solve_wphase_impl(net, delay_budget, start, arena, abort);
}

}  // namespace mft
