#include "sizing/wphase.h"

#include <algorithm>
#include <cmath>

#include "util/abort.h"
#include "util/parallel.h"

namespace mft {

namespace {

/// Minimum vertices per arena chunk for a level sweep (cutoff below which
/// dispatch overhead beats the per-vertex load fold; results unaffected).
constexpr int kWPhaseGrain = 64;

/// Per-sweep reduction state, one cache line per thread: max is exact under
/// any association, and infeasibility is a sticky OR, so merging the
/// per-thread values in thread-index order reproduces the sequential sweep
/// bit for bit.
struct alignas(64) SweepLocal {
  double max_rel_change = 0.0;
  char infeasible = 0;
};

WPhaseResult solve_wphase_impl(const SizingNetwork& net,
                               const std::vector<double>& delay_budget,
                               const std::vector<double>& start,
                               ThreadArena* arena, AbortToken* abort,
                               bool fast_math,
                               const std::vector<double>* pins) {
  MFT_CHECK(net.frozen());
  MFT_CHECK(static_cast<int>(delay_budget.size()) == net.num_vertices());
  MFT_CHECK(static_cast<int>(start.size()) == net.num_vertices());
  const Tech& tech = net.tech();
  const SweepPlan& pl = net.plan();
  WPhaseResult res;

  // The relaxation state lives in sweep-position order: gather once here,
  // scatter once after convergence. Multiple Gauss–Seidel sweeps amortize
  // the two permutes.
  std::vector<double> sizes_pos;
  std::vector<double> budget_pos;
  pl.gather(start, sizes_pos);
  pl.gather(delay_budget, budget_pos);

  // Pinned vertices enter at the pinned size and are excluded from the
  // update, so the relaxation solves the conditional SMP. Monotonicity is
  // preserved — a pin is just a constant in every other vertex's load fold.
  std::vector<unsigned char> pinned_pos;
  if (pins != nullptr) {
    MFT_CHECK(static_cast<int>(pins->size()) == net.num_vertices());
    pinned_pos.assign(static_cast<std::size_t>(pl.n), 0);
    for (int p = 0; p < pl.n; ++p) {
      const std::size_t pi = static_cast<std::size_t>(p);
      if (pl.source[pi]) continue;
      const double x =
          (*pins)[static_cast<std::size_t>(pl.vid[pi])];
      if (x > 0.0) {
        pinned_pos[pi] = 1;
        sizes_pos[pi] = x;
      }
    }
  }

  // One Gauss–Seidel update of the vertex at position p from the current
  // sizes_pos. Both the sequential and the level-parallel sweep run exactly
  // this body; the load fold streams the flat CSR in original term order,
  // so the sum is bit-identical to the historical AoS walk (or, under
  // fast_math, the documented two-accumulator reassociation).
  auto update = [&](int p, double& max_rel_change, char& infeasible) {
    const std::size_t pi = static_cast<std::size_t>(p);
    if (pl.source[pi]) return;
    if (!pinned_pos.empty() && pinned_pos[pi]) return;
    const double d = budget_pos[pi];
    if (d <= pl.a_self[pi]) {
      // No finite size meets this budget (self-loading already exceeds
      // it); clamp to max and report infeasibility.
      infeasible = 1;
      sizes_pos[pi] = tech.max_size;
      return;
    }
    double load;
    if (fast_math) {
      double acc0 = pl.b[pi];
      double acc1 = 0.0;
      int k = pl.load_off[pi];
      const int end = pl.load_off[pi + 1];
      for (; k + 1 < end; k += 2) {
        acc0 += pl.load_coeff[static_cast<std::size_t>(k)] *
                sizes_pos[static_cast<std::size_t>(
                    pl.load_pos[static_cast<std::size_t>(k)])];
        acc1 += pl.load_coeff[static_cast<std::size_t>(k + 1)] *
                sizes_pos[static_cast<std::size_t>(
                    pl.load_pos[static_cast<std::size_t>(k + 1)])];
      }
      if (k < end)
        acc0 += pl.load_coeff[static_cast<std::size_t>(k)] *
                sizes_pos[static_cast<std::size_t>(
                    pl.load_pos[static_cast<std::size_t>(k)])];
      load = acc0 + acc1;
    } else {
      load = pl.b[pi];
      for (int k = pl.load_off[pi]; k < pl.load_off[pi + 1]; ++k)
        load += pl.load_coeff[static_cast<std::size_t>(k)] *
                sizes_pos[static_cast<std::size_t>(
                    pl.load_pos[static_cast<std::size_t>(k)])];
    }
    double x = load / (d - pl.a_self[pi]);
    if (x > tech.max_size) {
      infeasible = 1;
      x = tech.max_size;
    }
    x = std::max(x, tech.min_size);
    const double old = sizes_pos[pi];
    max_rel_change = std::max(max_rel_change, std::abs(x - old) / old);
    sizes_pos[pi] = x;
  };

  const bool parallel = arena != nullptr && arena->threads() > 1;
  std::vector<SweepLocal> locals(
      parallel ? static_cast<std::size_t>(arena->threads()) : 0);
  const int n = pl.n;
  const int max_sweeps = std::max(4, net.num_vertices());
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (abort != nullptr && abort->step()) {
      // Interrupted mid-relaxation: the iterate may not satisfy the
      // budgets, so report it infeasible and let the caller discard it.
      res.feasible = false;
      break;
    }
    ++res.sweeps;
    double max_rel_change = 0.0;
    char infeasible = 0;
    if (parallel) {
      for (SweepLocal& l : locals) l = SweepLocal{};
      // Levels settle top-down, each level concurrently; within a level no
      // vertex loads another, so every update reads exactly the values the
      // sequential reverse sweep would read.
      const auto& off = net.level_offsets();
      for (int l = net.num_levels() - 1; l >= 0; --l) {
        const int base = off[static_cast<std::size_t>(l)];
        const int width = off[static_cast<std::size_t>(l) + 1] - base;
        arena->parallel_for(width, kWPhaseGrain,
                            [&](int thread, int begin, int end) {
                              SweepLocal& local =
                                  locals[static_cast<std::size_t>(thread)];
                              for (int i = end - 1; i >= begin; --i)
                                update(base + i, local.max_rel_change,
                                       local.infeasible);
                            });
      }
      for (const SweepLocal& l : locals) {
        max_rel_change = std::max(max_rel_change, l.max_rel_change);
        infeasible |= l.infeasible;
      }
    } else {
      // Reverse sweep-position order — a reverse topological order whose
      // levels are contiguous, so fanout sizes settle before their drivers
      // read them (exact first sweep in the triangular case) and memory
      // streams linearly.
      for (int p = n - 1; p >= 0; --p)
        update(p, max_rel_change, infeasible);
    }
    if (infeasible) res.feasible = false;
    if (max_rel_change < 1e-12) break;
  }

  pl.scatter(sizes_pos, res.sizes);
  for (NodeId v = 0; v < net.num_vertices(); ++v)
    if (res.sizes[static_cast<std::size_t>(v)] !=
        start[static_cast<std::size_t>(v)])
      res.changed.push_back(v);
  return res;
}

}  // namespace

WPhaseResult solve_wphase(const SizingNetwork& net,
                          const std::vector<double>& delay_budget,
                          ThreadArena* arena, AbortToken* abort,
                          bool fast_math, const std::vector<double>* pins) {
  return solve_wphase_impl(net, delay_budget, net.min_sizes(), arena, abort,
                           fast_math, pins);
}

WPhaseResult solve_wphase(const SizingNetwork& net,
                          const std::vector<double>& delay_budget,
                          const std::vector<double>& start,
                          ThreadArena* arena, AbortToken* abort,
                          bool fast_math, const std::vector<double>* pins) {
  return solve_wphase_impl(net, delay_budget, start, arena, abort, fast_math,
                           pins);
}

}  // namespace mft
