#include "sizing/tilos.h"

#include <algorithm>
#include <cmath>

#include "util/abort.h"

namespace mft {

double min_sized_delay(const SizingNetwork& net) {
  return run_sta(net, net.min_sizes()).critical_path;
}

TilosResult run_tilos(const SizingNetwork& net, double target_delay,
                      const TilosOptions& opt, ThreadArena* arena,
                      AbortToken* abort) {
  MFT_CHECK(opt.bumpsize > 1.0);
  const Tech& tech = net.tech();
  const SweepPlan& pl = net.plan();
  TilosResult res;
  res.sizes = net.min_sizes();
  if (opt.pins != nullptr) {
    MFT_CHECK(static_cast<int>(opt.pins->size()) == net.num_vertices());
    for (NodeId v = 0; v < net.num_vertices(); ++v) {
      const double x = (*opt.pins)[static_cast<std::size_t>(v)];
      if (x > 0.0 && !net.is_source(v))
        res.sizes[static_cast<std::size_t>(v)] = x;
    }
  }
  const std::int64_t max_bumps =
      opt.max_bumps > 0 ? opt.max_bumps
                        : 4000 * static_cast<std::int64_t>(
                                     std::max(1, net.num_sizeable()));

  // All per-bump state is kept in sweep-position order so the candidate
  // evaluation streams the plan's flat reverse-load CSR: sizes_pos mirrors
  // res.sizes (one extra write per bump), on_path marks positions.
  std::vector<double> sizes_pos;
  pl.gather(res.sizes, sizes_pos);
  std::vector<char> on_path(static_cast<std::size_t>(net.num_vertices()), 0);
  // One vertex is bumped per iteration: handing that vertex to the
  // changed-hint overload makes the per-iteration delay recompute
  // O(its loaders) with no size scan; the sweeps stay O(V+E).
  TimingScratch sta;
  sta.arena = arena;
  sta.fast_math = opt.fast_math;
  std::vector<NodeId> bumped;
  while (true) {
    const TimingReport& timing = bumped.empty()
                                     ? run_sta(net, res.sizes, sta)
                                     : run_sta(net, res.sizes, sta, bumped);
    res.achieved_delay = timing.critical_path;
    if (timing.critical_path <= target_delay) {
      res.met_target = true;
      break;
    }
    if (res.bumps >= max_bumps) break;
    if (abort != nullptr && abort->step()) break;

    const std::vector<NodeId> path = timing.critical_vertices(net);
    std::fill(on_path.begin(), on_path.end(), 0);
    for (NodeId v : path)
      on_path[static_cast<std::size_t>(
          pl.pos_of[static_cast<std::size_t>(v)])] = 1;

    // Pick the on-path element with the best (most negative) change in path
    // delay per unit of added area. Walked in path order (source→sink),
    // strict-improvement tie-break — same winner as the historical
    // id-space walk.
    NodeId best = kInvalidNode;
    double best_sens = 0.0;
    for (NodeId v : path) {
      const std::size_t p =
          static_cast<std::size_t>(pl.pos_of[static_cast<std::size_t>(v)]);
      if (pl.source[p]) continue;
      if (opt.pins != nullptr &&
          (*opt.pins)[static_cast<std::size_t>(v)] > 0.0)
        continue;  // pinned: never a bump candidate
      const double x = sizes_pos[p];
      const double nx = x * opt.bumpsize;
      if (nx > tech.max_size) continue;

      // Own-stage speedup: delay(v) = a_self + L/x with L independent of x.
      const double load =
          (timing.delay[static_cast<std::size_t>(v)] - pl.a_self[p]) * x;
      double dpath = load * (1.0 / nx - 1.0 / x);
      // Upstream penalty: every on-path vertex u with a load term a_uv sees
      // Δdelay(u) = a_uv·(nx − x)/x_u.
      for (int k = pl.rload_off[p]; k < pl.rload_off[p + 1]; ++k) {
        const std::size_t u =
            static_cast<std::size_t>(pl.rload_pos[static_cast<std::size_t>(k)]);
        if (!on_path[u]) continue;
        dpath += pl.rload_coeff[static_cast<std::size_t>(k)] * (nx - x) /
                 sizes_pos[u];
      }
      const double sens = dpath / (nx - x);
      if (sens < best_sens) {
        best_sens = sens;
        best = v;
      }
    }
    if (best == kInvalidNode) break;  // nothing improves: infeasible target
    res.sizes[static_cast<std::size_t>(best)] *= opt.bumpsize;
    sizes_pos[static_cast<std::size_t>(
        pl.pos_of[static_cast<std::size_t>(best)])] =
        res.sizes[static_cast<std::size_t>(best)];
    bumped.assign(1, best);
    ++res.bumps;
  }
  res.area = net.area(res.sizes);
  return res;
}

}  // namespace mft
