// Area-delay trade-off sweeps (paper Fig. 7): for a list of delay targets
// expressed as fractions of Dmin, size the circuit with both TILOS and
// MINFLOTRANSIT and report areas normalized to the minimum-sized circuit.
#pragma once

#include "sizing/minflotransit.h"

namespace mft {

struct TradeoffPoint {
  double target_ratio = 0.0;      ///< target delay / Dmin
  bool tilos_met = false;
  bool mft_met = false;
  double tilos_area_ratio = 0.0;  ///< TILOS area / min-sized area
  double mft_area_ratio = 0.0;    ///< MINFLOTRANSIT area / min-sized area
  double savings_pct = 0.0;       ///< 100·(1 − mft/tilos), when both met
  double tilos_seconds = 0.0;
  double mft_seconds = 0.0;       ///< total including the TILOS warm start
};

struct TradeoffCurve {
  double dmin = 0.0;      ///< CP of the minimum-sized circuit
  double min_area = 0.0;  ///< area of the minimum-sized circuit
  std::vector<TradeoffPoint> points;
};

TradeoffCurve area_delay_sweep(const SizingNetwork& net,
                               const std::vector<double>& target_ratios,
                               const MinflotransitOptions& opt = {});

}  // namespace mft
