// Sharded large-netlist solve: level-cut partitioning, parallel shard
// jobs, and boundary-budget (D-phase style) reconciliation.
//
// The monolithic pipeline walks the whole network on every TILOS bump and
// every D/W iteration, so one huge netlist is one long sequential solve.
// This module turns it into a stream of jobs the engine already knows how
// to run:
//
//  1. partition_levels() cuts the frozen network at level boundaries
//     (reusing the levelization cached at freeze()). Every arc and every
//     load term connects two different levels, so a level boundary is a
//     clean timing cut: no intra-level coupling is ever severed, and every
//     crossing points from a lower shard to a higher one. Cuts are placed
//     near equal-vertex splits, choosing within a window the boundary with
//     the fewest crossing arcs+loads — the crossings are exactly the
//     couplings that must be frozen during shard solves, so a thin cut is
//     a low-distortion cut.
//
//  2. build_shard_network() extracts one shard as a standalone
//     SizingNetwork with frozen boundary budgets: crossing arcs into the
//     shard become replica source vertices (arrival 0 — the shard is
//     budgeted in its own time frame), crossing arcs out of the shard mark
//     the driver is_po (frozen required time at the cut), and crossing
//     load terms are folded into the constant b with the neighbor's size
//     frozen at the current stitched solution. Shard-internal CP ≤ span
//     then bounds every global path segment, so stitched solutions meeting
//     Σ spans = target meet the global target (conservative: path skew at
//     the cuts is slack the reconciliation pass wins back).
//
//  3. Each shard solve is an ordinary engine SizingJob (shard metadata on
//     the job), submitted through the persistent StreamingRunner
//     (engine/stream.h) rather than as one batch per round. The worker
//     pool lives across all reconciliation rounds (no per-round spawn and
//     join barrier), each dirty shard's job is streamed out the moment
//     its network is rebuilt (the first shard solves while the
//     coordinator is still extracting the next), per-shard dmin facts
//     resolve on the workers instead of serializing on the coordinator,
//     and results are consumed in ticket order with each solution
//     stitched into the global iterate while the round's stragglers are
//     still running. The only barrier left per round is the re-budget
//     step itself (the stitched full-network STA plus the span
//     arithmetic, which need every shard of the round). Worker pool plus
//     per-job inner_threads give two-level parallelism for free — and
//     the per-sweep cost inside a shard is O(V/K) instead of O(V), which
//     is a real algorithmic win even on one worker.
//
//  4. ShardReconcilePass (an OptimizerPass over the *full-network*
//     context) stitches the shard solutions, runs one full STA, and
//     re-budgets the cut boundaries on the stitched solution: infeasible
//     stitches tighten every span proportionally; feasible ones
//     redistribute the recovered path-skew slack weighted by the shards'
//     eq. (7) area-delay sensitivities Σ C_i = Σ x_i·y_i — the D-phase
//     linearization applied at shard granularity. Only shards whose span
//     or frozen boundary sizes moved are re-solved; the pass repeats until
//     no shard is dirty (boundary slacks converged) or the round budget is
//     exhausted.
//
// Contract: run_sharded_solve with num_shards == 1 runs the monolithic
// pipeline on the original network object — bit-identical to
// run_minflotransit (asserted by tests/shard_test.cc). For K > 1 the
// result is deterministic at any worker/inner-thread count, meets the
// target whenever a round's stitch does, and trades a bounded area gap
// (the frozen-boundary conservatism, measured by bench_shard) for the
// parallel + incremental speedup.
#pragma once

#include <memory>

#include "engine/runner.h"
#include "engine/stream.h"
#include "sizing/pass.h"

namespace mft {

struct ShardOptions {
  /// Number of level-contiguous shards. 1 = monolithic passthrough;
  /// clamped to what the network's level count supports.
  int num_shards = 4;
  /// Reconciliation rounds (outer repeat budget of ShardReconcilePass).
  int max_rounds = 4;
  /// A shard is re-solved when its span budget or any frozen boundary
  /// size moved by more than this relative tolerance.
  double rebudget_tol = 0.01;
  /// Floor on a shard's share of the delay target, as a fraction of the
  /// target (protects degenerate shards from a zero budget).
  double min_span_frac = 0.02;
  /// Safety margin reserved at every cut: shards solve to span·(1−margin),
  /// leaving headroom for the cross-boundary load drift of solving all
  /// shards of a round against the previous round's frozen sizes. Not
  /// applied at num_shards == 1 (the monolithic bit-identity contract).
  double boundary_margin = 0.005;
  /// Per-shard optimizer configuration (the usual pipeline options).
  MinflotransitOptions options;
  /// Wall-clock deadline / virtual-step budget for the *whole* sharded
  /// solve (0 = none), enforced at round granularity through the pipeline
  /// checkpoint: an expired solve stops after its current round and
  /// reports the best stitched iterate with status/degraded set (same
  /// contract as SizingJob's knobs).
  double deadline_seconds = 0.0;
  std::int64_t max_steps = 0;
  /// Worker pool for the streamed shard jobs (threads, inner_threads,
  /// base_seed, progress — the progress hook fires per completed shard
  /// job). Because every reconciliation round rebuilds its dirty shard
  /// networks with fresh serials, a context_cache_limit of 0 is promoted
  /// to num_shards for K > 1 (per-worker pools and the dmin cache would
  /// otherwise grow by one dead entry per shard job); an explicit limit
  /// is honored as given. Eviction never changes results.
  JobRunnerOptions runner;
};

/// A level-cut partition of a frozen network into contiguous level bands.
struct ShardPartition {
  /// num_shards+1 ascending entries with cut_levels.front() == 0 and
  /// cut_levels.back() == net.num_levels(); shard s owns exactly the
  /// vertices with cut_levels[s] <= level_of(v) < cut_levels[s+1].
  std::vector<int> cut_levels;
  /// Per global vertex: the owning shard.
  std::vector<int> shard_of;
  /// Per shard: owned global vertex ids, ascending (the local id order of
  /// build_shard_network).
  std::vector<std::vector<NodeId>> vertices;
  /// Per interior cut (size num_shards-1): arcs + load terms crossing it.
  std::vector<int> cut_width;

  int num_shards() const { return static_cast<int>(vertices.size()); }
};

/// Cuts `net` into up to `num_shards` level bands (fewer when the network
/// has too few levels, or when a band would own no sizeable vertex). Cuts
/// sit near equal-vertex splits, locally minimizing crossing width.
ShardPartition partition_levels(const SizingNetwork& net, int num_shards);

/// One shard extracted as a standalone frozen SizingNetwork. Owned
/// vertices come first (ascending global id), then one replica source per
/// distinct boundary input.
struct ShardNetwork {
  std::unique_ptr<SizingNetwork> net;
  /// Global id of every local vertex (owned, then replica sources).
  std::vector<NodeId> global_of_local;
  /// Global vertices whose sizes were frozen into b terms (the far ends of
  /// crossing load terms), ascending; the reconciliation dirt check.
  std::vector<NodeId> frozen_loads;
  int num_owned = 0;
};

/// Builds shard `shard` of `part` with boundary load terms frozen at
/// `frozen_sizes` (one full global size vector).
ShardNetwork build_shard_network(const SizingNetwork& net,
                                 const ShardPartition& part, int shard,
                                 const std::vector<double>& frozen_sizes);

/// One reconciliation round, for diagnostics and BENCH_shard.json.
struct ShardRound {
  double critical_path = 0.0;  ///< stitched full-network CP
  double area = 0.0;           ///< stitched area
  bool met_target = false;
  int shards_solved = 0;       ///< dirty shards re-solved this round
  /// Failure recovery this round: jobs that consumed a retry (an engine
  /// re-attempt for a worker-side transient, or a fresh rebuild after an
  /// extraction fault), and shards whose retry also failed — their band
  /// kept the previous stitched sizes and stayed dirty for the next
  /// round's monolithic re-budget.
  int shards_retried = 0;
  int shards_failed = 0;
  /// Rebuild + streamed solve + stitch of the round's dirty shards, from
  /// the first submit to the last ticket consumed (rebuild and stitch
  /// overlap the in-flight solves).
  double wall_seconds = 0.0;
  /// The surviving per-round barrier: stitched full-network STA plus the
  /// span re-budget (0 for the K == 1 passthrough, which needs neither).
  double reconcile_seconds = 0.0;
  std::vector<double> spans;   ///< per-shard budget the round solved at
};

struct ShardSolveResult {
  /// Stitched best solution in the familiar shape (sizes/area/delay/
  /// met_target; `initial` is the first round's stitch — or, when the
  /// target is never met, the closest stitched attempt, which is then
  /// also what `result.sizes` reports).
  MinflotransitResult result;
  int num_shards = 0;
  std::vector<int> cut_levels;
  std::vector<ShardRound> rounds;
  int shard_jobs = 0;          ///< shard jobs executed across all rounds
  /// Total coordinator barrier time (Σ rounds' reconcile_seconds): the
  /// wave-free measurement — everything else overlaps the shard solves.
  double reconcile_seconds = 0.0;
  bool converged = false;      ///< no shard dirty when the pass stopped
  /// Structured outcome. kOk on a clean solve; kDeadlineExpired /
  /// kStepBudget when the solve-level budget tripped (degraded set when a
  /// feasible stitch exists). Shard-job failures that recovery absorbed
  /// show up only in the retry/failure counters.
  EngineStatus status = EngineStatus::kOk;
  bool degraded = false;
  int shard_retries = 0;   ///< retry attempts consumed (successful or not)
  int shard_failures = 0;  ///< shard jobs whose retry also failed
};

/// The reconciliation driver as a PR-2 pipeline pass over the full-network
/// context. begin() partitions, budgets, and brings up the persistent
/// streaming worker pool; each run() executes one round (stream dirty
/// shard jobs as they are rebuilt, consume + stitch in ticket order, then
/// the STA + re-budget barrier) and returns kRepeat until the boundary
/// budgets converge. Writes the stitched iterate/best into PipelineState,
/// so to_minflotransit_result applies unchanged. Deterministic at any
/// worker/inner-thread count: submission order and ticket-ordered
/// consumption are pure functions of the dirty sets, never of arrival
/// order.
class ShardReconcilePass : public OptimizerPass {
 public:
  explicit ShardReconcilePass(const ShardOptions& opt);
  ~ShardReconcilePass() override;
  const std::string& name() const override { return name_; }
  void begin(SizingContext& ctx, PipelineState& s) override;
  PassStatus run(SizingContext& ctx, PipelineState& s) override;

  // Diagnostics harvested by run_sharded_solve after the pipeline run.
  const std::vector<ShardRound>& rounds() const { return rounds_; }
  const std::vector<int>& cut_levels() const { return cuts_; }
  int num_shards() const { return part_.num_shards(); }
  int shard_jobs() const { return shard_jobs_; }
  double reconcile_seconds() const { return reconcile_seconds_; }
  bool converged() const { return converged_; }
  int shard_retries() const { return shard_retries_; }
  int shard_failures() const { return shard_failures_; }

 private:
  struct ShardState;
  void rebudget(const SizingNetwork& net, const TimingReport& timing,
                const std::vector<double>& sizes, double target);

  std::string name_ = "shard-reconcile";
  ShardOptions opt_;
  ShardPartition part_;
  std::vector<ShardState> shards_;
  std::vector<int> cuts_;
  std::vector<ShardRound> rounds_;
  /// Round-1 stitch, restored into PipelineState::initial if a later
  /// round is the first to meet the target (unmet rounds in between
  /// overwrite `initial` with the closest attempt, which only the
  /// never-met outcome should report).
  TilosResult first_stitch_;
  int round_ = 0;
  int shard_jobs_ = 0;
  int shard_retries_ = 0;
  int shard_failures_ = 0;
  int progress_done_ = 0;  ///< ShardOptions::runner.progress completion count
  double reconcile_seconds_ = 0.0;
  bool converged_ = false;
  double best_unmet_cp_ = 0.0;
  /// One persistent worker pool for all of a run's reconciliation rounds;
  /// (re)created by begin() so every pipeline run starts at ticket 0
  /// (deterministic seeds) with empty context pools. Declared *last*:
  /// members destroy in reverse order, so the runner joins its workers —
  /// who may still hold jobs pointing at shards_' networks when an
  /// unwinding throw skips the ticket waits — before those networks are
  /// freed.
  std::unique_ptr<StreamingRunner> stream_;
};

/// Partition → parallel shard jobs → reconciliation, end to end, on a
/// fresh context. Worker-side transient failures are retried by the
/// engine's generic policy (same ticket and seed, one extra attempt);
/// a faulted extraction is rebuilt once at submit. A shard that exhausts
/// both keeps its previous stitched band and stays dirty, so the solve
/// degrades instead of aborting (never
/// for an unreachable target — that is reported through
/// result.met_target, like the monolithic solver). Throws
/// EngineError(kShardFailed) only when failures persist *and* no feasible
/// stitch was ever found within the round cap (feasible-or-error
/// termination), or when the K == 1 passthrough job double-fails (there is
/// no band to fold back).
ShardSolveResult run_sharded_solve(const SizingNetwork& net,
                                   double target_delay,
                                   const ShardOptions& opt = {});

}  // namespace mft
