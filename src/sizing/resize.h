// ECO serving (ROADMAP "warm-start incremental re-size"): millisecond
// re-solves of an already-sized network under a small perturbation.
//
// An engineering change order (ECO) perturbs a sized design slightly — a
// new delay target, a few pF of added load, a handful of cells frozen at
// fixed sizes — and the interactive loop wants a new feasible solution in
// milliseconds, not a cold TILOS + D/W solve from scratch. The pieces this
// rides on already exist: post-freeze constant-load edits
// (SizingNetwork::eco_add_b, which mints a fresh serial so every
// serial-keyed workspace recomputes), the level cache that localizes a
// perturbation to a band of levels, the PR-4 frozen-boundary extraction
// (build_shard_network) that carves that band out as a standalone network,
// and warm-started W/D-phase refinement over the current sizes.
//
// A ResizeSession owns a mutable *clone* of the caller's network plus the
// current sized state, and applies ResizeDeltas against it:
//
//  - zero delta → fixpoint: the current sizes are returned bit-identical
//    (the contract tests/resize_test.cc pins);
//  - target-only delta → global warm re-solve: per-vertex delay budgets are
//    rescaled from the achieved delays and the W-phase relaxes warm from
//    the current sizes (no TILOS, no flow solve unless area recovery runs);
//  - small local delta (load edits / pins dirtying few levels) → the dirty
//    level band plus a halo is carved with frozen boundaries, warm-solved
//    at a span budget derived from the unperturbed prefix/suffix arrival
//    profile, locally area-recovered by a bounded D/W loop, and stitched
//    back;
//  - large delta (dirty region above ResizeOptions::full_solve_frac, or a
//    warm attempt that fails its budgets) → full cold solve, with pins
//    enforced through the pass pipeline (SizingContext::set_pins).
//
// Every non-fixpoint answer is re-verified by a full from-scratch STA over
// the whole network before it is adopted or returned; a warm answer that
// fails verification falls back to cold transparently (ResizeResult
// reports which mode actually produced the answer).
//
// Sessions are deliberately NOT thread-safe and not movable: one session
// belongs to one thread (the engine daemon serializes per-session resizes
// on its request thread).
#pragma once

#include <string>
#include <vector>

#include "sizing/context.h"
#include "sizing/minflotransit.h"

namespace mft {

/// One constant-load edit: shift b of `vertex` by `b_delta` (pF of wire or
/// sink capacitance added or removed by the ECO).
struct ResizeLoadEdit {
  NodeId vertex = kInvalidNode;
  double b_delta = 0.0;
};

/// One size pin: hold `vertex` at `size` through all subsequent solves
/// (size <= 0 releases an existing pin). Pins persist across deltas until
/// released.
struct ResizePin {
  NodeId vertex = kInvalidNode;
  double size = 0.0;
};

/// A perturbation against the session's current sized state. Default
/// constructed = the zero delta (fixpoint contract).
struct ResizeDelta {
  /// New delay target; 0 keeps the session's current target.
  double target_delay = 0.0;
  std::vector<ResizeLoadEdit> load_edits;
  std::vector<ResizePin> pins;
};

struct ResizeOptions {
  /// Warm/cold decision threshold: when the carved region (dirty levels
  /// plus halo) would cover more than this fraction of the vertices, go
  /// straight to the cold solve — the warm machinery would be touching
  /// most of the network anyway.
  double full_solve_frac = 0.25;
  /// Levels of safety halo around the dirty band. The band's frozen
  /// boundary absorbs first-order load coupling; the halo gives the local
  /// solve room to move the neighbors that matter most.
  int halo_levels = 2;
  /// Span safety margin at the carve boundary (same role as
  /// ShardOptions::boundary_margin): the band solves to span·(1−margin) so
  /// prefix arrival drift from the band's own resizing stays covered.
  double boundary_margin = 0.005;
  /// Bounded local area-recovery budget: D/W refinement iterations run on
  /// the carved band after the warm W-phase (0 disables recovery).
  int max_local_iterations = 8;
  /// Options for cold solves (the initial solve() and every fallback).
  MinflotransitOptions cold;
};

enum class ResizeMode {
  kFixpoint,  ///< zero delta: current sizes returned bit-identical
  kWarm,      ///< warm re-solve (global budget rescale or carved band)
  kCold,      ///< full cold solve (initial, threshold, or fallback)
};

const char* to_string(ResizeMode mode);

struct ResizeResult {
  /// False when the delta itself was invalid (unknown vertex, a source,
  /// an edit that would leave a degenerate delay, a bad pin size); the
  /// session state is untouched and `error` says why.
  bool ok = true;
  std::string error;

  std::vector<double> sizes;  ///< adopted solution (id-indexed)
  double area = 0.0;
  double delay = 0.0;   ///< verified full-STA critical path at `sizes`
  double target = 0.0;  ///< target the solve ran against
  bool met_target = false;
  ResizeMode mode = ResizeMode::kCold;
  /// True when a warm attempt was made but verification or feasibility
  /// forced the cold fallback.
  bool fell_back = false;

  int dirty_vertices = 0;   ///< vertices named by the delta (deduplicated)
  int region_vertices = 0;  ///< carved band size (0 unless a band was carved)
  double seconds = 0.0;     ///< wall time of this resize
};

class ResizeSession {
 public:
  /// Clones `net` (fresh serial — the clone is mutated in place by load
  /// edits and must not alias workspaces keyed on the original). The
  /// session starts unsized: call solve() or adopt() first.
  explicit ResizeSession(const SizingNetwork& net,
                         const ResizeOptions& opt = {});

  ResizeSession(const ResizeSession&) = delete;
  ResizeSession& operator=(const ResizeSession&) = delete;

  /// Establish the sized state with a full cold solve at `target_delay`.
  ResizeResult solve(double target_delay);

  /// Establish the sized state from an existing solution (e.g. a prior
  /// engine job's result on the same network) without re-solving; runs one
  /// full STA to record the achieved delay. `sizes` must be a full
  /// id-indexed vector for this network.
  ResizeResult adopt(const std::vector<double>& sizes, double target_delay);

  /// Apply one delta against the current sized state (see the file
  /// comment for the mode selection). Requires a prior solve()/adopt().
  ResizeResult resize(const ResizeDelta& delta);

  const SizingNetwork& net() const { return net_; }
  bool sized() const { return sized_; }
  const std::vector<double>& sizes() const { return sizes_; }
  double target() const { return target_; }
  /// Current pin vector (id-indexed, 0 = free).
  const std::vector<double>& pins() const { return pins_; }

 private:
  bool has_pins() const;
  void install_pins();
  ResizeResult cold_solve(double target);
  /// Full-network warm re-solve for a target-only delta.
  bool warm_global(double target, ResizeResult& res);
  /// Carve the dirty band [lo_level, hi_level) and warm-solve it.
  bool warm_local(double target, int lo_level, int hi_level,
                  ResizeResult& res);
  /// From-scratch full STA + adoption of a candidate; false if the
  /// candidate misses the target (caller then falls back).
  bool verify_and_adopt(const std::vector<double>& candidate, double target,
                        ResizeMode mode, ResizeResult& res);

  SizingNetwork net_;  ///< owned clone; eco_add_b mutates it in place
  ResizeOptions opt_;
  SizingContext ctx_;  ///< bound to net_ for the session lifetime
  std::vector<double> sizes_;
  std::vector<double> pins_;  ///< id-indexed, 0 = free
  double target_ = 0.0;
  bool sized_ = false;
};

}  // namespace mft
