#include "sizing/minflotransit.h"

#include <algorithm>

#include "util/stopwatch.h"

namespace mft {

MinflotransitResult run_minflotransit(const SizingNetwork& net,
                                      double target_delay,
                                      const MinflotransitOptions& opt) {
  Stopwatch total;
  MinflotransitResult res;

  // Step 1: TILOS initial solution (§2.4).
  {
    Stopwatch sw;
    res.initial = run_tilos(net, target_delay, opt.tilos);
    res.tilos_seconds = sw.seconds();
  }
  res.sizes = res.initial.sizes;
  res.met_target = res.initial.met_target;
  res.area = res.initial.area;
  res.delay = res.initial.achieved_delay;
  if (!res.met_target) {
    // Target unreachable: report the TILOS attempt unrefined.
    res.total_seconds = total.seconds();
    return res;
  }

  // The W-phase can only certify budgets it derived from a *feasible*
  // schedule, so timing is pinned at the TILOS CP (<= target, Corollary 1
  // keeps it there).
  double best_area = res.area;
  std::vector<double> best_sizes = res.sizes;
  std::vector<double> cur = res.sizes;

  // One workspace pair for the whole refinement loop: the D-phase builds
  // its LP + flow network once and rewrites bounds per iteration, and the
  // STA scratch re-delays only the vertices the W-phase actually moved.
  DPhaseWorkspace dws;
  TimingScratch sta;

  // Iteration 0: a W-phase pass at unchanged budgets. With budgets equal to
  // the achieved delays this is the identity on interior points (the
  // equality system (D−A)X = B has a unique solution), but it canonicalizes
  // min-clamped vertices onto the SMP fixpoint so later D-phase
  // linearizations start from a consistent point. All *area* improvement
  // comes from the D-phase budget moves — see bench_ablation_weights.
  {
    const TimingReport& t0 = run_sta(net, cur, sta);
    const WPhaseResult w0 = solve_wphase(net, t0.delay);
    if (w0.feasible) {
      const double area0 = net.area(w0.sizes);
      if (run_sta(net, w0.sizes, sta).critical_path <=
              target_delay * (1.0 + 1e-9) &&
          area0 <= best_area) {
        cur = w0.sizes;
        best_sizes = cur;
        best_area = area0;
      }
    }
  }

  DPhaseOptions dopt = opt.dphase;
  int stagnant = 0;
  int backoffs = 0;
  for (int iter = 0; iter < opt.max_iterations; ++iter) {
    const DPhaseResult d = run_dphase(net, cur, dopt, &dws);
    if (!d.solved) break;
    const WPhaseResult w = solve_wphase(net, d.budget);
    const TimingReport& timing = run_sta(net, w.sizes, sta);
    const double area = net.area(w.sizes);
    const bool ok = w.feasible &&
                    timing.critical_path <= target_delay * (1.0 + 1e-9) &&
                    area <= best_area * (1.0 + 1e-9);
    if (!ok) {
      // Linearization overstepped (timing broke or area regressed):
      // re-anchor at the best solution, shrink the trust region, retry.
      if (++backoffs > opt.max_beta_backoffs) break;
      dopt.beta *= 0.5;
      cur = best_sizes;
      continue;
    }
    backoffs = 0;
    cur = w.sizes;
    res.iterations.push_back(
        IterationLog{area, timing.critical_path, d.objective, dopt.beta});
    const double improvement = (best_area - area) / best_area;
    if (area < best_area) {
      best_area = area;
      best_sizes = cur;
    }
    if (improvement < opt.rel_improvement_stop) {
      if (++stagnant >= opt.patience) break;
    } else {
      stagnant = 0;
    }
  }

  res.sizes = std::move(best_sizes);
  res.area = best_area;
  res.delay = run_sta(net, res.sizes, sta).critical_path;
  res.total_seconds = total.seconds();
  return res;
}

}  // namespace mft
