#include "sizing/minflotransit.h"

#include "sizing/pass.h"
#include "util/stopwatch.h"

namespace mft {

// The D/W alternation itself lives in sizing/pass.cc as the default pass
// pipeline; these wrappers are the stable public API. engine_test.cc pins
// them bit-identically against a verbatim copy of the pre-refactor loop.

MinflotransitResult run_minflotransit(SizingContext& ctx, double target_delay,
                                      const MinflotransitOptions& opt) {
  Stopwatch total;
  const Pipeline pipeline = make_minflotransit_pipeline(opt);
  MinflotransitResult res =
      to_minflotransit_result(ctx, pipeline.run(ctx, target_delay, opt.seed));
  res.total_seconds = total.seconds();
  return res;
}

MinflotransitResult run_minflotransit(const SizingNetwork& net,
                                      double target_delay,
                                      const MinflotransitOptions& opt) {
  SizingContext ctx(net);
  return run_minflotransit(ctx, target_delay, opt);
}

}  // namespace mft
