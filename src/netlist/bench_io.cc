#include "netlist/bench_io.h"

#include <fstream>
#include <sstream>

#include "util/check.h"
#include "util/status.h"
#include "util/str.h"

namespace mft {
namespace {

struct PendingGate {
  std::string name;
  GateKind kind = GateKind::kBuf;
  std::vector<std::string> fanins;
  int line;
};

/// All parse failures are reported as EngineError(kInvalidInput) with the
/// offending line number — malformed user input is a clean structured
/// error, not an invariant violation.
[[noreturn]] void parse_fail(int lineno, const std::string& what) {
  throw EngineError(EngineStatus::kInvalidInput,
                    "line " + std::to_string(lineno) + ": " + what);
}

}  // namespace

Netlist read_bench(std::istream& in, const std::string& circuit_name) {
  Netlist nl(circuit_name);
  std::vector<std::string> output_names;
  std::vector<PendingGate> pending;
  std::string line;
  int lineno = 0;

  while (std::getline(in, line)) {
    ++lineno;
    std::string_view s = trim(line);
    if (s.empty() || s.front() == '#') continue;

    auto parse_paren = [&](std::string_view keyword) -> std::string {
      // keyword(name)
      std::string_view rest = trim(s.substr(keyword.size()));
      if (rest.empty() || rest.front() != '(' || rest.back() != ')')
        parse_fail(lineno, "malformed " + std::string(keyword));
      return std::string(trim(rest.substr(1, rest.size() - 2)));
    };

    const std::string upper = to_upper(s.substr(0, s.find('(')));
    if (starts_with(upper, "INPUT") && s.find('=') == std::string_view::npos) {
      try {
        nl.add_input(parse_paren(s.substr(0, s.find('('))));
      } catch (const CheckError& e) {
        // Duplicate signal names and the like: invalid input, with the
        // offending line attached.
        parse_fail(lineno, e.what());
      }
      continue;
    }
    if (starts_with(upper, "OUTPUT") && s.find('=') == std::string_view::npos) {
      output_names.push_back(parse_paren(s.substr(0, s.find('('))));
      continue;
    }

    const std::size_t eq = s.find('=');
    if (eq == std::string_view::npos) parse_fail(lineno, "expected assignment");
    PendingGate g;
    g.name = std::string(trim(s.substr(0, eq)));
    g.line = lineno;
    std::string_view rhs = trim(s.substr(eq + 1));
    const std::size_t open = rhs.find('(');
    if (open == std::string_view::npos || rhs.back() != ')')
      parse_fail(lineno, "malformed gate expression");
    const std::string kind_str(trim(rhs.substr(0, open)));
    if (!try_parse_gate_kind(kind_str, &g.kind))
      parse_fail(lineno, "unknown gate type '" + kind_str + "'");
    const std::string_view args = rhs.substr(open + 1, rhs.size() - open - 2);
    for (const std::string& a : split(args, ',')) g.fanins.push_back(a);
    pending.push_back(std::move(g));
  }

  // Gates may reference signals defined later; resolve with repeated passes
  // in definition order (a .bench file is not required to be topological).
  std::vector<bool> done(pending.size(), false);
  std::size_t remaining = pending.size();
  bool progress = true;
  while (remaining > 0 && progress) {
    progress = false;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      if (done[i]) continue;
      const PendingGate& g = pending[i];
      std::vector<GateId> ids;
      ids.reserve(g.fanins.size());
      bool ready = true;
      for (const std::string& f : g.fanins) {
        const GateId id = nl.find(f);
        if (id == kInvalidGate) {
          ready = false;
          break;
        }
        ids.push_back(id);
      }
      if (!ready) continue;
      try {
        nl.add_gate(g.kind, g.name, std::move(ids));
      } catch (const CheckError& e) {
        parse_fail(g.line, e.what());
      }
      done[i] = true;
      --remaining;
      progress = true;
    }
  }
  if (remaining > 0) {
    for (std::size_t i = 0; i < pending.size(); ++i)
      if (!done[i])
        parse_fail(pending[i].line,
                   "gate '" + pending[i].name +
                       "' references undefined signals (or a combinational "
                       "cycle)");
  }

  for (const std::string& o : output_names) {
    const GateId g = nl.find(o);
    if (g == kInvalidGate)
      throw EngineError(EngineStatus::kInvalidInput,
                        "OUTPUT(" + o + ") is undefined");
    nl.mark_output(g);
  }
  return nl;
}

Netlist read_bench_string(const std::string& text,
                          const std::string& circuit_name) {
  std::istringstream is(text);
  return read_bench(is, circuit_name);
}

Netlist read_bench_file(const std::string& path) {
  std::ifstream f(path);
  if (!f.good())
    throw EngineError(EngineStatus::kInvalidInput,
                      "cannot open '" + path + "'");
  // Circuit name = basename without extension.
  std::string name = path;
  if (const auto slash = name.find_last_of('/'); slash != std::string::npos)
    name = name.substr(slash + 1);
  if (const auto dot = name.find_last_of('.'); dot != std::string::npos)
    name = name.substr(0, dot);
  return read_bench(f, name);
}

void write_bench(const Netlist& nl, std::ostream& out) {
  out << "# " << nl.name() << " — " << nl.num_inputs() << " inputs, "
      << nl.num_outputs() << " outputs, " << nl.num_logic_gates()
      << " gates\n";
  for (GateId g : nl.inputs()) out << "INPUT(" << nl.gate(g).name << ")\n";
  for (GateId g : nl.outputs()) out << "OUTPUT(" << nl.gate(g).name << ")\n";
  for (GateId g : nl.topological_order()) {
    const Gate& gate = nl.gate(g);
    if (gate.kind == GateKind::kInput) continue;
    out << gate.name << " = " << to_string(gate.kind) << "(";
    for (std::size_t i = 0; i < gate.fanins.size(); ++i)
      out << (i ? ", " : "") << nl.gate(gate.fanins[i]).name;
    out << ")\n";
  }
}

std::string write_bench_string(const Netlist& nl) {
  std::ostringstream os;
  write_bench(nl, os);
  return os.str();
}

void write_bench_file(const Netlist& nl, const std::string& path) {
  std::ofstream f(path);
  MFT_CHECK_MSG(f.good(), "cannot open '" << path << "' for writing");
  write_bench(nl, f);
}

}  // namespace mft
