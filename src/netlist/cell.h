// Cell (gate-type) definitions for the combinational netlists the sizer
// operates on, including each primitive's static-CMOS transistor topology
// as a series/parallel tree (paper §2.1, Fig. 1).
#pragma once

#include <string>

#include "graph/sp_tree.h"

namespace mft {

/// Gate kinds. The .bench dialect of the ISCAS85 suite uses the first nine;
/// AOI/OAI exist to exercise non-trivial series/parallel topologies in the
/// transistor-level flow.
enum class GateKind {
  kInput,  ///< primary-input pseudo gate (no fanins, no transistors)
  kBuf,
  kNot,
  kAnd,
  kNand,
  kOr,
  kNor,
  kXor,
  kXnor,
  kAoi21,  ///< out = !(in0·in1 + in2)
  kOai21,  ///< out = !((in0+in1)·in2)
};

const char* to_string(GateKind k);

/// Parses a .bench gate keyword ("NAND", "not", "BUFF", ...). Throws
/// CheckError on unknown keywords.
GateKind gate_kind_from_string(const std::string& s);

/// Non-throwing variant: true and *out set when `s` names a known gate
/// kind. The parser uses this to reject unknown kinds with a line number
/// instead of an abort-style check failure.
bool try_parse_gate_kind(const std::string& s, GateKind* out);

/// True for gates that a single static CMOS stage implements directly and
/// for which an SP transistor topology exists (NOT/NAND/NOR/AOI/OAI and the
/// degenerate single-transistor planes of BUF treated as inverter).
/// AND/OR/XOR/XNOR/BUF are composite and must be decomposed first
/// (see netlist.h: tech_map_to_primitives).
bool is_primitive(GateKind k);

/// True if the gate's output is the logical complement of a monotone
/// function of its inputs (all primitives are inverting).
bool is_inverting(GateKind k);

/// Number of inputs this kind requires, or -1 if variadic (>= 2).
int fixed_arity(GateKind k);

/// Pulldown-plane (NMOS) series/parallel tree for a primitive gate with
/// `fanin` inputs. The pullup plane is its structural dual. Throws for
/// non-primitive kinds.
SpTree pulldown_topology(GateKind k, int fanin);

}  // namespace mft
