#include "netlist/cell.h"

#include "util/check.h"
#include "util/str.h"

namespace mft {

const char* to_string(GateKind k) {
  switch (k) {
    case GateKind::kInput:
      return "INPUT";
    case GateKind::kBuf:
      return "BUFF";
    case GateKind::kNot:
      return "NOT";
    case GateKind::kAnd:
      return "AND";
    case GateKind::kNand:
      return "NAND";
    case GateKind::kOr:
      return "OR";
    case GateKind::kNor:
      return "NOR";
    case GateKind::kXor:
      return "XOR";
    case GateKind::kXnor:
      return "XNOR";
    case GateKind::kAoi21:
      return "AOI21";
    case GateKind::kOai21:
      return "OAI21";
  }
  return "?";
}

bool try_parse_gate_kind(const std::string& s, GateKind* out) {
  const std::string u = to_upper(s);
  if (u == "INPUT") return *out = GateKind::kInput, true;
  if (u == "BUF" || u == "BUFF") return *out = GateKind::kBuf, true;
  if (u == "NOT" || u == "INV") return *out = GateKind::kNot, true;
  if (u == "AND") return *out = GateKind::kAnd, true;
  if (u == "NAND") return *out = GateKind::kNand, true;
  if (u == "OR") return *out = GateKind::kOr, true;
  if (u == "NOR") return *out = GateKind::kNor, true;
  if (u == "XOR") return *out = GateKind::kXor, true;
  if (u == "XNOR") return *out = GateKind::kXnor, true;
  if (u == "AOI21") return *out = GateKind::kAoi21, true;
  if (u == "OAI21") return *out = GateKind::kOai21, true;
  return false;
}

GateKind gate_kind_from_string(const std::string& s) {
  GateKind k;
  MFT_CHECK_MSG(try_parse_gate_kind(s, &k), "unknown gate kind '" << s << "'");
  return k;
}

bool is_primitive(GateKind k) {
  switch (k) {
    case GateKind::kNot:
    case GateKind::kNand:
    case GateKind::kNor:
    case GateKind::kAoi21:
    case GateKind::kOai21:
      return true;
    default:
      return false;
  }
}

bool is_inverting(GateKind k) { return is_primitive(k); }

int fixed_arity(GateKind k) {
  switch (k) {
    case GateKind::kInput:
      return 0;
    case GateKind::kBuf:
    case GateKind::kNot:
      return 1;
    case GateKind::kXor:
    case GateKind::kXnor:
      return -1;  // variadic parity
    case GateKind::kAoi21:
    case GateKind::kOai21:
      return 3;
    default:
      return -1;  // variadic
  }
}

SpTree pulldown_topology(GateKind k, int fanin) {
  MFT_CHECK_MSG(is_primitive(k), "no SP topology for composite gate "
                                     << to_string(k));
  switch (k) {
    case GateKind::kNot:
      MFT_CHECK(fanin == 1);
      return SpTree::leaf(0);
    case GateKind::kNand: {
      MFT_CHECK(fanin >= 1);
      std::vector<SpTree> kids;
      for (int i = 0; i < fanin; ++i) kids.push_back(SpTree::leaf(i));
      return SpTree::series(std::move(kids));
    }
    case GateKind::kNor: {
      MFT_CHECK(fanin >= 1);
      std::vector<SpTree> kids;
      for (int i = 0; i < fanin; ++i) kids.push_back(SpTree::leaf(i));
      return SpTree::parallel(std::move(kids));
    }
    case GateKind::kAoi21:
      MFT_CHECK(fanin == 3);
      // !(in0·in1 + in2): pulldown = (p0.p1) + p2
      return SpTree::parallel(
          {SpTree::series({SpTree::leaf(0), SpTree::leaf(1)}), SpTree::leaf(2)});
    case GateKind::kOai21:
      MFT_CHECK(fanin == 3);
      // !((in0+in1)·in2): pulldown = (p0+p1) . p2
      return SpTree::series(
          {SpTree::parallel({SpTree::leaf(0), SpTree::leaf(1)}), SpTree::leaf(2)});
    default:
      break;
  }
  MFT_CHECK(false);
  return SpTree::leaf(0);  // unreachable
}

}  // namespace mft
