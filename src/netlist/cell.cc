#include "netlist/cell.h"

#include "util/check.h"
#include "util/str.h"

namespace mft {

const char* to_string(GateKind k) {
  switch (k) {
    case GateKind::kInput:
      return "INPUT";
    case GateKind::kBuf:
      return "BUFF";
    case GateKind::kNot:
      return "NOT";
    case GateKind::kAnd:
      return "AND";
    case GateKind::kNand:
      return "NAND";
    case GateKind::kOr:
      return "OR";
    case GateKind::kNor:
      return "NOR";
    case GateKind::kXor:
      return "XOR";
    case GateKind::kXnor:
      return "XNOR";
    case GateKind::kAoi21:
      return "AOI21";
    case GateKind::kOai21:
      return "OAI21";
  }
  return "?";
}

GateKind gate_kind_from_string(const std::string& s) {
  const std::string u = to_upper(s);
  if (u == "INPUT") return GateKind::kInput;
  if (u == "BUF" || u == "BUFF") return GateKind::kBuf;
  if (u == "NOT" || u == "INV") return GateKind::kNot;
  if (u == "AND") return GateKind::kAnd;
  if (u == "NAND") return GateKind::kNand;
  if (u == "OR") return GateKind::kOr;
  if (u == "NOR") return GateKind::kNor;
  if (u == "XOR") return GateKind::kXor;
  if (u == "XNOR") return GateKind::kXnor;
  if (u == "AOI21") return GateKind::kAoi21;
  if (u == "OAI21") return GateKind::kOai21;
  MFT_CHECK_MSG(false, "unknown gate kind '" << s << "'");
  return GateKind::kBuf;  // unreachable
}

bool is_primitive(GateKind k) {
  switch (k) {
    case GateKind::kNot:
    case GateKind::kNand:
    case GateKind::kNor:
    case GateKind::kAoi21:
    case GateKind::kOai21:
      return true;
    default:
      return false;
  }
}

bool is_inverting(GateKind k) { return is_primitive(k); }

int fixed_arity(GateKind k) {
  switch (k) {
    case GateKind::kInput:
      return 0;
    case GateKind::kBuf:
    case GateKind::kNot:
      return 1;
    case GateKind::kXor:
    case GateKind::kXnor:
      return -1;  // variadic parity
    case GateKind::kAoi21:
    case GateKind::kOai21:
      return 3;
    default:
      return -1;  // variadic
  }
}

SpTree pulldown_topology(GateKind k, int fanin) {
  MFT_CHECK_MSG(is_primitive(k), "no SP topology for composite gate "
                                     << to_string(k));
  switch (k) {
    case GateKind::kNot:
      MFT_CHECK(fanin == 1);
      return SpTree::leaf(0);
    case GateKind::kNand: {
      MFT_CHECK(fanin >= 1);
      std::vector<SpTree> kids;
      for (int i = 0; i < fanin; ++i) kids.push_back(SpTree::leaf(i));
      return SpTree::series(std::move(kids));
    }
    case GateKind::kNor: {
      MFT_CHECK(fanin >= 1);
      std::vector<SpTree> kids;
      for (int i = 0; i < fanin; ++i) kids.push_back(SpTree::leaf(i));
      return SpTree::parallel(std::move(kids));
    }
    case GateKind::kAoi21:
      MFT_CHECK(fanin == 3);
      // !(in0·in1 + in2): pulldown = (p0.p1) + p2
      return SpTree::parallel(
          {SpTree::series({SpTree::leaf(0), SpTree::leaf(1)}), SpTree::leaf(2)});
    case GateKind::kOai21:
      MFT_CHECK(fanin == 3);
      // !((in0+in1)·in2): pulldown = (p0+p1) . p2
      return SpTree::series(
          {SpTree::parallel({SpTree::leaf(0), SpTree::leaf(1)}), SpTree::leaf(2)});
    default:
      break;
  }
  MFT_CHECK(false);
  return SpTree::leaf(0);  // unreachable
}

}  // namespace mft
