#include "netlist/stats.h"

#include <sstream>

namespace mft {

NetlistStats compute_stats(const Netlist& nl) {
  NetlistStats s;
  s.num_inputs = nl.num_inputs();
  s.num_outputs = nl.num_outputs();
  s.num_logic_gates = nl.num_logic_gates();
  s.depth = nl.depth();
  long fanin_sum = 0;
  long fanout_sum = 0;
  int fanout_nodes = 0;
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const Gate& gate = nl.gate(g);
    if (gate.kind != GateKind::kInput) {
      fanin_sum += static_cast<long>(gate.fanins.size());
      ++s.kind_histogram[gate.kind];
    }
    const int fo = static_cast<int>(nl.fanouts(g).size());
    if (fo > 0) {
      fanout_sum += fo;
      ++fanout_nodes;
    }
    s.max_fanout = std::max(s.max_fanout, fo);
  }
  if (s.num_logic_gates > 0)
    s.avg_fanin = static_cast<double>(fanin_sum) / s.num_logic_gates;
  if (fanout_nodes > 0)
    s.avg_fanout = static_cast<double>(fanout_sum) / fanout_nodes;
  return s;
}

std::string to_string(const NetlistStats& s) {
  std::ostringstream os;
  os << s.num_logic_gates << " gates, " << s.num_inputs << " PI, "
     << s.num_outputs << " PO, depth " << s.depth << ", avg fanin "
     << s.avg_fanin << ", avg fanout " << s.avg_fanout << ", max fanout "
     << s.max_fanout;
  return os.str();
}

}  // namespace mft
