// Structural statistics over a netlist — used by the generators to verify
// their ISCAS85 analogs match the published character of each circuit, and
// by reports.
#pragma once

#include <map>
#include <string>

#include "netlist/netlist.h"

namespace mft {

struct NetlistStats {
  int num_inputs = 0;
  int num_outputs = 0;
  int num_logic_gates = 0;
  int depth = 0;
  double avg_fanin = 0.0;   ///< over logic gates
  double avg_fanout = 0.0;  ///< over gates with any fanout
  int max_fanout = 0;
  std::map<GateKind, int> kind_histogram;
};

NetlistStats compute_stats(const Netlist& nl);

/// One-line human-readable summary.
std::string to_string(const NetlistStats& s);

}  // namespace mft
