// Gate-level combinational netlist IR.
//
// Gates are dense ids; primary inputs are pseudo-gates of kind kInput; each
// gate's output is an implicit net, so fanout is derived from fanin lists.
// This is the representation every circuit generator produces, the .bench
// reader/writer round-trips, and the timing lowerings consume.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/cell.h"

namespace mft {

using GateId = int;
inline constexpr GateId kInvalidGate = -1;

/// One gate instance.
struct Gate {
  GateKind kind = GateKind::kBuf;
  std::string name;
  std::vector<GateId> fanins;  ///< driving gates, pin order significant
};

/// A combinational netlist (no latches; ISCAS85 scope).
class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  /// Adds a primary input; names must be unique.
  GateId add_input(const std::string& name);

  /// Adds a gate driven by `fanins` (must already exist).
  GateId add_gate(GateKind kind, const std::string& name,
                  std::vector<GateId> fanins);

  /// Marks a gate's output as a primary output (idempotent).
  void mark_output(GateId g);

  // --- Accessors -----------------------------------------------------------
  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  int num_gates() const { return static_cast<int>(gates_.size()); }
  /// Gates excluding primary-input pseudo gates (the paper's "# Gates").
  int num_logic_gates() const;
  int num_inputs() const { return static_cast<int>(inputs_.size()); }
  int num_outputs() const { return static_cast<int>(outputs_.size()); }

  const Gate& gate(GateId g) const { return gates_[check(g)]; }
  bool is_input(GateId g) const { return gate(g).kind == GateKind::kInput; }
  bool is_output(GateId g) const { return is_output_[check(g)]; }

  const std::vector<GateId>& inputs() const { return inputs_; }
  const std::vector<GateId>& outputs() const { return outputs_; }

  /// Gate id by name, or kInvalidGate.
  GateId find(const std::string& name) const;

  /// Fanout lists (computed lazily, cached; invalidated by mutation).
  const std::vector<GateId>& fanouts(GateId g) const;

  /// Topological order (inputs first). Throws if the netlist is cyclic.
  std::vector<GateId> topological_order() const;

  /// Logic depth: number of logic gates on the longest input→output path.
  int depth() const;

  /// Structural sanity: every gate's fanin count matches its kind's arity,
  /// no dangling gates (every non-output gate has fanout), acyclic.
  /// Returns false and fills `why` on violation.
  bool validate(std::string* why = nullptr) const;

  /// True if every logic gate is a primitive (NOT/NAND/NOR/AOI/OAI) —
  /// precondition of the transistor-level lowering.
  bool is_primitive_only() const;

  /// Evaluate the circuit on an input assignment (keyed by input gate id
  /// order). Used by tests to prove generator/transform equivalence.
  std::vector<bool> evaluate(const std::vector<bool>& input_values) const;

 private:
  std::size_t check(GateId g) const {
    MFT_DCHECK(g >= 0 && g < num_gates());
    return static_cast<std::size_t>(g);
  }
  void invalidate_cache() { fanout_cache_.clear(); }

  std::string name_;
  std::vector<Gate> gates_;
  std::vector<bool> is_output_;
  std::vector<GateId> inputs_;
  std::vector<GateId> outputs_;
  std::unordered_map<std::string, GateId> by_name_;
  mutable std::vector<std::vector<GateId>> fanout_cache_;
};

/// Rewrites composite gates (AND/OR/XOR/XNOR/BUF) into primitive
/// NAND/NOR/NOT equivalents, preserving names of kept gates and the
/// input/output interface. Returns the new netlist.
Netlist tech_map_to_primitives(const Netlist& nl);

}  // namespace mft
