// Reader/writer for the ISCAS85 ".bench" netlist format:
//
//     # comment
//     INPUT(G1)
//     OUTPUT(G17)
//     G10 = NAND(G1, G3)
//
// The generators in src/gen emit this format and the parser reads it back,
// so genuine ISCAS85 files can be dropped into the benchmark harness
// unchanged when available.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.h"

namespace mft {

/// Parses a .bench stream. Throws EngineError(kInvalidInput) with a line
/// number on syntax errors, unknown gate types, undefined signals, or
/// duplicate definitions — malformed input is a structured, catchable
/// error, never an invariant failure.
Netlist read_bench(std::istream& in, const std::string& circuit_name = "bench");

/// Convenience overload over a string.
Netlist read_bench_string(const std::string& text,
                          const std::string& circuit_name = "bench");

/// Reads a .bench file from disk.
Netlist read_bench_file(const std::string& path);

/// Serializes to .bench. Gates appear in topological order.
void write_bench(const Netlist& nl, std::ostream& out);
std::string write_bench_string(const Netlist& nl);
void write_bench_file(const Netlist& nl, const std::string& path);

}  // namespace mft
