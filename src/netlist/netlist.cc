#include "netlist/netlist.h"

#include <algorithm>
#include <deque>
#include <sstream>

namespace mft {

GateId Netlist::add_input(const std::string& name) {
  MFT_CHECK_MSG(by_name_.find(name) == by_name_.end(),
                "duplicate gate name '" << name << "'");
  const GateId g = num_gates();
  gates_.push_back(Gate{GateKind::kInput, name, {}});
  is_output_.push_back(false);
  inputs_.push_back(g);
  by_name_.emplace(name, g);
  invalidate_cache();
  return g;
}

GateId Netlist::add_gate(GateKind kind, const std::string& name,
                         std::vector<GateId> fanins) {
  MFT_CHECK_MSG(kind != GateKind::kInput, "use add_input for inputs");
  MFT_CHECK_MSG(by_name_.find(name) == by_name_.end(),
                "duplicate gate name '" << name << "'");
  const int arity = fixed_arity(kind);
  if (arity >= 0)
    MFT_CHECK_MSG(static_cast<int>(fanins.size()) == arity,
                  to_string(kind) << " '" << name << "' needs " << arity
                                  << " fanins, got " << fanins.size());
  else
    MFT_CHECK_MSG(fanins.size() >= 1, "variadic gate '" << name
                                                        << "' needs fanins");
  for (GateId f : fanins)
    MFT_CHECK_MSG(f >= 0 && f < num_gates(),
                  "gate '" << name << "' references unknown fanin " << f);
  const GateId g = num_gates();
  gates_.push_back(Gate{kind, name, std::move(fanins)});
  is_output_.push_back(false);
  by_name_.emplace(name, g);
  invalidate_cache();
  return g;
}

void Netlist::mark_output(GateId g) {
  check(g);
  if (!is_output_[static_cast<std::size_t>(g)]) {
    is_output_[static_cast<std::size_t>(g)] = true;
    outputs_.push_back(g);
  }
}

int Netlist::num_logic_gates() const { return num_gates() - num_inputs(); }

GateId Netlist::find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? kInvalidGate : it->second;
}

const std::vector<GateId>& Netlist::fanouts(GateId g) const {
  if (fanout_cache_.empty()) {
    fanout_cache_.resize(static_cast<std::size_t>(num_gates()));
    for (GateId v = 0; v < num_gates(); ++v)
      for (GateId f : gates_[static_cast<std::size_t>(v)].fanins)
        fanout_cache_[static_cast<std::size_t>(f)].push_back(v);
  }
  return fanout_cache_[check(g)];
}

std::vector<GateId> Netlist::topological_order() const {
  std::vector<int> indeg(static_cast<std::size_t>(num_gates()), 0);
  for (GateId g = 0; g < num_gates(); ++g)
    indeg[static_cast<std::size_t>(g)] =
        static_cast<int>(gates_[static_cast<std::size_t>(g)].fanins.size());
  std::deque<GateId> ready;
  for (GateId g = 0; g < num_gates(); ++g)
    if (indeg[static_cast<std::size_t>(g)] == 0) ready.push_back(g);
  std::vector<GateId> order;
  order.reserve(static_cast<std::size_t>(num_gates()));
  while (!ready.empty()) {
    const GateId g = ready.front();
    ready.pop_front();
    order.push_back(g);
    for (GateId h : fanouts(g))
      if (--indeg[static_cast<std::size_t>(h)] == 0) ready.push_back(h);
  }
  MFT_CHECK_MSG(static_cast<int>(order.size()) == num_gates(),
                "netlist contains a combinational cycle");
  return order;
}

int Netlist::depth() const {
  std::vector<int> level(static_cast<std::size_t>(num_gates()), 0);
  int d = 0;
  for (GateId g : topological_order()) {
    const Gate& gate = gates_[static_cast<std::size_t>(g)];
    int lvl = 0;
    for (GateId f : gate.fanins)
      lvl = std::max(lvl, level[static_cast<std::size_t>(f)]);
    if (gate.kind != GateKind::kInput) lvl += 1;
    level[static_cast<std::size_t>(g)] = lvl;
    d = std::max(d, lvl);
  }
  return d;
}

bool Netlist::validate(std::string* why) const {
  auto fail = [&](const std::string& msg) {
    if (why) *why = msg;
    return false;
  };
  for (GateId g = 0; g < num_gates(); ++g) {
    const Gate& gate = gates_[static_cast<std::size_t>(g)];
    const int arity = fixed_arity(gate.kind);
    if (arity >= 0 && static_cast<int>(gate.fanins.size()) != arity)
      return fail("gate '" + gate.name + "' has wrong arity");
    if (gate.kind != GateKind::kInput && gate.fanins.empty())
      return fail("gate '" + gate.name + "' has no fanins");
    if (!is_output(g) && gate.kind != GateKind::kInput && fanouts(g).empty())
      return fail("gate '" + gate.name + "' dangles (no fanout, not a PO)");
  }
  // Acyclicity: topological_order throws; convert to a bool result.
  try {
    (void)topological_order();
  } catch (const CheckError&) {
    return fail("combinational cycle");
  }
  for (GateId g : inputs_)
    if (gates_[static_cast<std::size_t>(g)].kind != GateKind::kInput)
      return fail("inputs list corrupt");
  return true;
}

bool Netlist::is_primitive_only() const {
  for (GateId g = 0; g < num_gates(); ++g) {
    const GateKind k = gates_[static_cast<std::size_t>(g)].kind;
    if (k != GateKind::kInput && !is_primitive(k)) return false;
  }
  return true;
}

std::vector<bool> Netlist::evaluate(const std::vector<bool>& input_values) const {
  MFT_CHECK(static_cast<int>(input_values.size()) == num_inputs());
  std::vector<bool> value(static_cast<std::size_t>(num_gates()), false);
  for (std::size_t i = 0; i < inputs_.size(); ++i)
    value[static_cast<std::size_t>(inputs_[i])] = input_values[i];
  for (GateId g : topological_order()) {
    const Gate& gate = gates_[static_cast<std::size_t>(g)];
    if (gate.kind == GateKind::kInput) continue;
    auto in = [&](std::size_t i) {
      return static_cast<bool>(
          value[static_cast<std::size_t>(gate.fanins[i])]);
    };
    bool v = false;
    switch (gate.kind) {
      case GateKind::kInput:
        break;
      case GateKind::kBuf:
        v = in(0);
        break;
      case GateKind::kNot:
        v = !in(0);
        break;
      case GateKind::kAnd:
      case GateKind::kNand: {
        v = true;
        for (std::size_t i = 0; i < gate.fanins.size(); ++i) v = v && in(i);
        if (gate.kind == GateKind::kNand) v = !v;
        break;
      }
      case GateKind::kOr:
      case GateKind::kNor: {
        v = false;
        for (std::size_t i = 0; i < gate.fanins.size(); ++i) v = v || in(i);
        if (gate.kind == GateKind::kNor) v = !v;
        break;
      }
      case GateKind::kXor:
      case GateKind::kXnor: {
        v = false;
        for (std::size_t i = 0; i < gate.fanins.size(); ++i) v = v != in(i);
        if (gate.kind == GateKind::kXnor) v = !v;
        break;
      }
      case GateKind::kAoi21:
        v = !((in(0) && in(1)) || in(2));
        break;
      case GateKind::kOai21:
        v = !((in(0) || in(1)) && in(2));
        break;
    }
    value[static_cast<std::size_t>(g)] = v;
  }
  std::vector<bool> out;
  out.reserve(outputs_.size());
  for (GateId g : outputs_) out.push_back(value[static_cast<std::size_t>(g)]);
  return out;
}

// --- Tech mapping -----------------------------------------------------------

namespace {

/// Helper building primitive decompositions in the target netlist.
class Mapper {
 public:
  explicit Mapper(const Netlist& src, Netlist& dst) : src_(src), dst_(dst) {}

  void run() {
    for (GateId g : src_.topological_order()) map_gate(g);
    for (GateId g : src_.outputs())
      dst_.mark_output(image_[static_cast<std::size_t>(g)]);
  }

 private:
  std::string fresh(const std::string& base) {
    std::string name = base;
    while (dst_.find(name) != kInvalidGate)
      name = base + "_m" + std::to_string(counter_++);
    return name;
  }

  GateId nand(std::vector<GateId> ins, const std::string& base) {
    return dst_.add_gate(GateKind::kNand, fresh(base), std::move(ins));
  }
  GateId nor(std::vector<GateId> ins, const std::string& base) {
    return dst_.add_gate(GateKind::kNor, fresh(base), std::move(ins));
  }
  GateId inv(GateId in, const std::string& base) {
    return dst_.add_gate(GateKind::kNot, fresh(base), {in});
  }

  // XOR of exactly two signals via the classic 4-NAND structure.
  GateId xor2(GateId a, GateId b, const std::string& base) {
    const GateId t1 = nand({a, b}, base + "_x1");
    const GateId t2 = nand({a, t1}, base + "_x2");
    const GateId t3 = nand({b, t1}, base + "_x3");
    return nand({t2, t3}, base + "_x4");
  }

  void map_gate(GateId g) {
    const Gate& gate = src_.gate(g);
    image_.resize(static_cast<std::size_t>(src_.num_gates()), kInvalidGate);
    std::vector<GateId> ins;
    ins.reserve(gate.fanins.size());
    for (GateId f : gate.fanins)
      ins.push_back(image_[static_cast<std::size_t>(f)]);

    GateId out = kInvalidGate;
    switch (gate.kind) {
      case GateKind::kInput:
        out = dst_.add_input(gate.name);
        break;
      case GateKind::kNot:
      case GateKind::kNand:
      case GateKind::kNor:
      case GateKind::kAoi21:
      case GateKind::kOai21:
        out = dst_.add_gate(gate.kind, fresh(gate.name), std::move(ins));
        break;
      case GateKind::kBuf:
        // Two inverters keep the stage count even and the name stable.
        out = inv(inv(ins[0], gate.name + "_b"), gate.name);
        break;
      case GateKind::kAnd:
        out = inv(nand(std::move(ins), gate.name + "_n"), gate.name);
        break;
      case GateKind::kOr:
        out = inv(nor(std::move(ins), gate.name + "_n"), gate.name);
        break;
      case GateKind::kXor:
      case GateKind::kXnor: {
        GateId acc = ins[0];
        for (std::size_t i = 1; i < ins.size(); ++i)
          acc = xor2(acc, ins[i], gate.name + "_p" + std::to_string(i));
        if (gate.kind == GateKind::kXnor) acc = inv(acc, gate.name + "_i");
        out = acc;
        break;
      }
    }
    image_[static_cast<std::size_t>(g)] = out;
  }

  const Netlist& src_;
  Netlist& dst_;
  std::vector<GateId> image_;
  int counter_ = 0;
};

}  // namespace

Netlist tech_map_to_primitives(const Netlist& nl) {
  Netlist out(nl.name() + "_prim");
  Mapper(nl, out).run();
  return out;
}

}  // namespace mft
