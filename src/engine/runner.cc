#include "engine/runner.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <numeric>
#include <thread>

#include "sizing/pass.h"
#include "sizing/tilos.h"
#include "util/parallel.h"
#include "util/stopwatch.h"

namespace mft {

namespace {

// splitmix64: the standard 64-bit mix used to derive independent per-job
// seeds from (base_seed, job index) without correlation between neighbors.
std::uint64_t mix_seed(std::uint64_t base, std::uint64_t index) {
  std::uint64_t z = base + (index + 1) * 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

void execute_job(const SizingJob& job, int index, double dmin,
                 double min_area, SizingContext& ctx, ThreadArena* arena,
                 std::uint64_t base_seed, JobResult& out) {
  out.job = index;
  out.label = job.label;
  out.dmin = dmin;
  out.min_area = min_area;
  out.target =
      job.target_delay > 0.0 ? job.target_delay : job.target_ratio * dmin;
  out.seed = job.seed != 0
                 ? job.seed
                 : mix_seed(base_seed, static_cast<std::uint64_t>(index));
  out.inner_threads = arena != nullptr ? arena->threads() : 1;
  out.shard = job.shard;
  out.shard_round = job.shard_round;
  Stopwatch sw;
  try {
    ctx.begin_job();
    ctx.set_arena(arena);
    // Thread the resolved per-job seed into the pipeline so a stochastic
    // pass (none in the default pipeline) is reproducible at any thread
    // count. Running the pipeline directly (instead of through the
    // run_minflotransit wrapper) surfaces the per-pass stats into the
    // result and the batch JSON.
    MinflotransitOptions options = job.options;
    options.seed = out.seed;
    const Pipeline pipeline = make_minflotransit_pipeline(options);
    PipelineResult pr = pipeline.run(ctx, out.target, options.seed);
    out.result = to_minflotransit_result(ctx, pr);
    out.result.total_seconds = pr.total_seconds;
    out.pass_stats = std::move(pr.pass_stats);
    out.stats = ctx.stats();
    out.ok = true;
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  out.wall_seconds = sw.seconds();
}

/// Resolved inner-loop thread count for every job (see JobRunnerOptions::
/// inner_threads). Pure function of the batch — deterministic regardless
/// of scheduling.
std::vector<int> resolve_inner_threads(
    const std::vector<const SizingNetwork*>& networks,
    const std::vector<SizingJob>& jobs, int pool_threads,
    int default_inner_threads) {
  const int n = static_cast<int>(jobs.size());
  int fallback = default_inner_threads;
  if (fallback <= 0) {
    if (const char* env = std::getenv("MFT_INNER_THREADS")) {
      // A malformed value is a hard error, matching the bench flag policy:
      // silently running at a thread count the operator didn't ask for
      // would mislabel every emitted number.
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      MFT_CHECK_MSG(end != env && *end == '\0' && v >= 0,
                    "bad MFT_INNER_THREADS value '" << env << "'");
      if (v > 0) fallback = static_cast<int>(v);
    }
  }
  std::vector<int> inner(static_cast<std::size_t>(n),
                         fallback > 0 ? fallback : 1);
  // Explicit per-job requests always win, and are charged against the core
  // budget before the policy splits what remains.
  int budget = pool_threads;
  std::vector<int> policy_jobs;
  for (int i = 0; i < n; ++i) {
    const int forced = jobs[static_cast<std::size_t>(i)].inner_threads;
    if (forced > 0) {
      inner[static_cast<std::size_t>(i)] = forced;
      budget -= forced;
    } else {
      policy_jobs.push_back(i);
    }
  }
  if (fallback <= 0 && !policy_jobs.empty()) {
    // Core-budget policy: the remaining pool serves one core per job
    // first; capacity beyond that is round-robined onto the widest jobs
    // (largest networks level-parallelize best).
    int leftover = budget - static_cast<int>(policy_jobs.size());
    if (leftover > 0) {
      std::stable_sort(policy_jobs.begin(), policy_jobs.end(),
                       [&](int a, int b) {
                         const int wa = networks[static_cast<std::size_t>(
                                            jobs[static_cast<std::size_t>(a)]
                                                .network)]
                                            ->num_vertices();
                         const int wb = networks[static_cast<std::size_t>(
                                            jobs[static_cast<std::size_t>(b)]
                                                .network)]
                                            ->num_vertices();
                         return wa > wb;
                       });
      const int k = static_cast<int>(policy_jobs.size());
      for (int i = 0; leftover > 0; i = (i + 1) % k, --leftover)
        ++inner[static_cast<std::size_t>(
            policy_jobs[static_cast<std::size_t>(i)])];
    }
  }
  return inner;
}

void json_escape(std::string& dst, const std::string& s) {
  char buf[8];
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      dst.push_back('\\');
      dst.push_back(c);
    } else if (c == '\n') {
      dst += "\\n";
    } else if (c == '\t') {
      dst += "\\t";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      dst += buf;
    } else {
      dst.push_back(c);
    }
  }
}

}  // namespace

JobRunner::JobRunner(JobRunnerOptions opt) : opt_(std::move(opt)) {
  threads_ = opt_.threads;
  if (threads_ <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads_ = hw > 0 ? static_cast<int>(hw) : 1;
  }
}

BatchResult JobRunner::run(const std::vector<const SizingNetwork*>& networks,
                           const std::vector<SizingJob>& jobs) const {
  for (const SizingNetwork* net : networks) {
    MFT_CHECK(net != nullptr);
    MFT_CHECK(net->frozen());
  }
  for (const SizingJob& job : jobs)
    MFT_CHECK_MSG(job.network >= 0 &&
                      job.network < static_cast<int>(networks.size()),
                  "SizingJob.network out of range");

  Stopwatch total;
  BatchResult batch;
  const int n = static_cast<int>(jobs.size());
  batch.results.resize(static_cast<std::size_t>(n));
  batch.threads_used = std::max(1, std::min(threads_, n));

  // Per-network Dmin / minimum area, shared by every job on that network;
  // computed once per distinct network across *all* of this runner's
  // batches (serial-keyed cache), not once per job or once per run().
  std::vector<NetInfo> infos(networks.size());
  {
    std::lock_guard<std::mutex> lock(info_mu_);
    for (std::size_t i = 0; i < networks.size(); ++i) {
      const std::uint64_t serial = networks[i]->serial();
      auto it = info_cache_.find(serial);
      if (it == info_cache_.end()) {
        NetInfo info;
        info.dmin = min_sized_delay(*networks[i]);
        info.min_area = networks[i]->area(networks[i]->min_sizes());
        it = info_cache_.emplace(serial, info).first;
      }
      infos[i] = it->second;
    }
  }

  const std::vector<int> inner_threads =
      resolve_inner_threads(networks, jobs, threads_, opt_.inner_threads);

  std::atomic<int> cursor{0};
  std::mutex progress_mu;
  int completed = 0;  // guarded by progress_mu

  auto worker = [&](int thread_id) {
    // One inner-loop arena per worker, rebuilt only when the assigned
    // width changes, and one context per network this worker has touched,
    // created lazily and re-entered across jobs (the reuse the context
    // layer exists for). The arena outlives the contexts that point at it.
    std::unique_ptr<ThreadArena> arena;
    std::vector<std::unique_ptr<SizingContext>> contexts(networks.size());
    while (true) {
      const int i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      const SizingJob& job = jobs[static_cast<std::size_t>(i)];
      const std::size_t ni = static_cast<std::size_t>(job.network);
      if (!contexts[ni])
        contexts[ni] = std::make_unique<SizingContext>(*networks[ni]);
      const int inner = inner_threads[static_cast<std::size_t>(i)];
      if (inner > 1 && (!arena || arena->threads() != inner))
        arena = std::make_unique<ThreadArena>(inner);
      JobResult& out = batch.results[static_cast<std::size_t>(i)];
      execute_job(job, i, infos[ni].dmin, infos[ni].min_area, *contexts[ni],
                  inner > 1 ? arena.get() : nullptr, opt_.base_seed, out);
      out.thread = thread_id;
      if (opt_.progress) {
        // The completion count is incremented under the same lock as the
        // callback so observers see a strictly monotone 1..n sequence.
        std::lock_guard<std::mutex> lock(progress_mu);
        opt_.progress(out, ++completed, n);
      }
    }
  };

  if (batch.threads_used <= 1) {
    worker(0);  // run inline: no pool overhead for the sequential case
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(batch.threads_used));
    for (int t = 0; t < batch.threads_used; ++t)
      pool.emplace_back(worker, t);
    for (std::thread& th : pool) th.join();
  }

  batch.wall_seconds = total.seconds();
  batch.jobs_per_second =
      batch.wall_seconds > 0.0 ? n / batch.wall_seconds : 0.0;
  return batch;
}

bool write_batch_json(const std::string& path, const BatchResult& batch) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::fprintf(f,
               "{\n  \"threads\": %d,\n  \"wall_seconds\": %.9g,\n"
               "  \"jobs_per_second\": %.9g,\n  \"jobs\": [\n",
               batch.threads_used, batch.wall_seconds, batch.jobs_per_second);
  for (std::size_t i = 0; i < batch.results.size(); ++i) {
    const JobResult& r = batch.results[i];
    std::string label;
    json_escape(label, r.label);
    if (!r.ok) {
      std::string error;
      json_escape(error, r.error);
      std::fprintf(f, "    {\"label\": \"%s\", \"ok\": false, \"error\": \"%s\"}",
                   label.c_str(), error.c_str());
    } else {
      const double savings =
          r.result.initial.met_target && r.result.met_target &&
                  r.result.initial.area > 0.0
              ? 100.0 * (1.0 - r.result.area / r.result.initial.area)
              : 0.0;
      std::fprintf(
          f,
          "    {\"label\": \"%s\", \"ok\": true, \"met_target\": %s,\n"
          "     \"dmin\": %.17g, \"target\": %.17g, \"delay\": %.17g,\n"
          "     \"tilos_area\": %.17g, \"area\": %.17g, "
          "\"savings_pct\": %.9g,\n"
          "     \"iterations\": %d, \"wall_seconds\": %.9g, "
          "\"tilos_seconds\": %.9g,\n"
          "     \"sta_full_runs\": %lld, \"sta_incremental_runs\": %lld, "
          "\"sta_hinted_runs\": %lld, \"sta_delays_recomputed\": %lld,\n"
          "     \"seed\": %llu, \"thread\": %d, \"inner_threads\": %d,\n"
          "     \"shard\": %d, \"shard_round\": %d,\n"
          "     \"passes\": [",
          label.c_str(), r.result.met_target ? "true" : "false", r.dmin,
          r.target, r.result.delay, r.result.initial.area, r.result.area,
          savings, static_cast<int>(r.result.iterations.size()),
          r.wall_seconds, r.result.tilos_seconds,
          static_cast<long long>(r.stats.sta_full_runs),
          static_cast<long long>(r.stats.sta_incremental_runs),
          static_cast<long long>(r.stats.sta_hinted_runs),
          static_cast<long long>(r.stats.sta_delays_recomputed),
          static_cast<unsigned long long>(r.seed), r.thread, r.inner_threads,
          r.shard, r.shard_round);
      for (std::size_t p = 0; p < r.pass_stats.size(); ++p) {
        const PassStats& ps = r.pass_stats[p];
        std::string pass_name;
        json_escape(pass_name, ps.name);
        std::fprintf(f,
                     "%s{\"name\": \"%s\", \"invocations\": %d, "
                     "\"seconds\": %.9g, \"sweeps\": %lld}",
                     p == 0 ? "" : ", ", pass_name.c_str(), ps.invocations,
                     ps.seconds, static_cast<long long>(ps.sweeps));
      }
      std::fprintf(f, "]}");
    }
    std::fprintf(f, "%s\n", i + 1 < batch.results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace mft
