#include "engine/runner.h"

#include <atomic>
#include <cstdio>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "sizing/tilos.h"
#include "util/stopwatch.h"

namespace mft {

namespace {

// splitmix64: the standard 64-bit mix used to derive independent per-job
// seeds from (base_seed, job index) without correlation between neighbors.
std::uint64_t mix_seed(std::uint64_t base, std::uint64_t index) {
  std::uint64_t z = base + (index + 1) * 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Per-network facts every job on that network shares; computed once per
/// batch (sequentially, before the pool starts) instead of once per job.
struct NetworkInfo {
  double dmin = 0.0;
  double min_area = 0.0;
};

void execute_job(const SizingJob& job, int index, const NetworkInfo& info,
                 SizingContext& ctx, std::uint64_t base_seed, JobResult& out) {
  out.job = index;
  out.label = job.label;
  out.dmin = info.dmin;
  out.min_area = info.min_area;
  out.target =
      job.target_delay > 0.0 ? job.target_delay : job.target_ratio * info.dmin;
  out.seed = job.seed != 0
                 ? job.seed
                 : mix_seed(base_seed, static_cast<std::uint64_t>(index));
  Stopwatch sw;
  try {
    ctx.begin_job();
    // Thread the resolved per-job seed into the pipeline so a stochastic
    // pass (none in the default pipeline) is reproducible at any thread
    // count.
    MinflotransitOptions options = job.options;
    options.seed = out.seed;
    out.result = run_minflotransit(ctx, out.target, options);
    out.stats = ctx.stats();
    out.ok = true;
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  out.wall_seconds = sw.seconds();
}

void json_escape(std::string& dst, const std::string& s) {
  char buf[8];
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      dst.push_back('\\');
      dst.push_back(c);
    } else if (c == '\n') {
      dst += "\\n";
    } else if (c == '\t') {
      dst += "\\t";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      dst += buf;
    } else {
      dst.push_back(c);
    }
  }
}

}  // namespace

JobRunner::JobRunner(JobRunnerOptions opt) : opt_(std::move(opt)) {
  threads_ = opt_.threads;
  if (threads_ <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads_ = hw > 0 ? static_cast<int>(hw) : 1;
  }
}

BatchResult JobRunner::run(const std::vector<const SizingNetwork*>& networks,
                           const std::vector<SizingJob>& jobs) const {
  for (const SizingNetwork* net : networks) {
    MFT_CHECK(net != nullptr);
    MFT_CHECK(net->frozen());
  }
  for (const SizingJob& job : jobs)
    MFT_CHECK_MSG(job.network >= 0 &&
                      job.network < static_cast<int>(networks.size()),
                  "SizingJob.network out of range");

  Stopwatch total;
  BatchResult batch;
  const int n = static_cast<int>(jobs.size());
  batch.results.resize(static_cast<std::size_t>(n));
  batch.threads_used = std::max(1, std::min(threads_, n));

  // Per-network Dmin / minimum area, shared by every job on that network;
  // computed once up front instead of once per job.
  std::vector<NetworkInfo> infos(networks.size());
  for (std::size_t i = 0; i < networks.size(); ++i) {
    infos[i].dmin = min_sized_delay(*networks[i]);
    infos[i].min_area = networks[i]->area(networks[i]->min_sizes());
  }

  std::atomic<int> cursor{0};
  std::mutex progress_mu;
  int completed = 0;  // guarded by progress_mu

  auto worker = [&](int thread_id) {
    // One context per network this worker has touched, created lazily and
    // re-entered across jobs (the reuse the context layer exists for).
    std::vector<std::unique_ptr<SizingContext>> contexts(networks.size());
    while (true) {
      const int i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      const SizingJob& job = jobs[static_cast<std::size_t>(i)];
      const std::size_t ni = static_cast<std::size_t>(job.network);
      if (!contexts[ni])
        contexts[ni] = std::make_unique<SizingContext>(*networks[ni]);
      JobResult& out = batch.results[static_cast<std::size_t>(i)];
      execute_job(job, i, infos[ni], *contexts[ni], opt_.base_seed, out);
      out.thread = thread_id;
      if (opt_.progress) {
        // The completion count is incremented under the same lock as the
        // callback so observers see a strictly monotone 1..n sequence.
        std::lock_guard<std::mutex> lock(progress_mu);
        opt_.progress(out, ++completed, n);
      }
    }
  };

  if (batch.threads_used <= 1) {
    worker(0);  // run inline: no pool overhead for the sequential case
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(batch.threads_used));
    for (int t = 0; t < batch.threads_used; ++t)
      pool.emplace_back(worker, t);
    for (std::thread& th : pool) th.join();
  }

  batch.wall_seconds = total.seconds();
  batch.jobs_per_second =
      batch.wall_seconds > 0.0 ? n / batch.wall_seconds : 0.0;
  return batch;
}

bool write_batch_json(const std::string& path, const BatchResult& batch) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::fprintf(f,
               "{\n  \"threads\": %d,\n  \"wall_seconds\": %.9g,\n"
               "  \"jobs_per_second\": %.9g,\n  \"jobs\": [\n",
               batch.threads_used, batch.wall_seconds, batch.jobs_per_second);
  for (std::size_t i = 0; i < batch.results.size(); ++i) {
    const JobResult& r = batch.results[i];
    std::string label;
    json_escape(label, r.label);
    if (!r.ok) {
      std::string error;
      json_escape(error, r.error);
      std::fprintf(f, "    {\"label\": \"%s\", \"ok\": false, \"error\": \"%s\"}",
                   label.c_str(), error.c_str());
    } else {
      const double savings =
          r.result.initial.met_target && r.result.met_target &&
                  r.result.initial.area > 0.0
              ? 100.0 * (1.0 - r.result.area / r.result.initial.area)
              : 0.0;
      std::fprintf(
          f,
          "    {\"label\": \"%s\", \"ok\": true, \"met_target\": %s,\n"
          "     \"dmin\": %.17g, \"target\": %.17g, \"delay\": %.17g,\n"
          "     \"tilos_area\": %.17g, \"area\": %.17g, "
          "\"savings_pct\": %.9g,\n"
          "     \"iterations\": %d, \"wall_seconds\": %.9g, "
          "\"tilos_seconds\": %.9g,\n"
          "     \"sta_full_runs\": %lld, \"sta_incremental_runs\": %lld, "
          "\"sta_delays_recomputed\": %lld,\n"
          "     \"seed\": %llu, \"thread\": %d}",
          label.c_str(), r.result.met_target ? "true" : "false", r.dmin,
          r.target, r.result.delay, r.result.initial.area, r.result.area,
          savings, static_cast<int>(r.result.iterations.size()),
          r.wall_seconds, r.result.tilos_seconds,
          static_cast<long long>(r.stats.sta_full_runs),
          static_cast<long long>(r.stats.sta_incremental_runs),
          static_cast<long long>(r.stats.sta_delays_recomputed),
          static_cast<unsigned long long>(r.seed), r.thread);
    }
    std::fprintf(f, "%s\n", i + 1 < batch.results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace mft
