#include "engine/runner.h"

#include <algorithm>
#include <cstdio>
#include <mutex>

#include "util/stopwatch.h"

namespace mft {

std::vector<int> resolve_batch_inner_threads(
    const std::vector<const SizingNetwork*>& networks,
    const std::vector<SizingJob>& jobs, int pool_threads,
    int default_inner_threads) {
  const int n = static_cast<int>(jobs.size());
  int fallback = default_inner_threads;
  if (fallback <= 0) fallback = env_inner_threads();
  std::vector<int> inner(static_cast<std::size_t>(n),
                         fallback > 0 ? fallback : 1);
  // Explicit per-job requests always win, and are charged against the core
  // budget before the policy splits what remains.
  int budget = pool_threads;
  std::vector<int> policy_jobs;
  for (int i = 0; i < n; ++i) {
    const int forced = jobs[static_cast<std::size_t>(i)].inner_threads;
    if (forced > 0) {
      inner[static_cast<std::size_t>(i)] = forced;
      budget -= forced;
    } else {
      policy_jobs.push_back(i);
    }
  }
  if (fallback <= 0 && !policy_jobs.empty()) {
    // Core-budget policy: the remaining pool serves one core per job
    // first; capacity beyond that is round-robined onto the widest jobs
    // (largest networks level-parallelize best).
    int leftover = budget - static_cast<int>(policy_jobs.size());
    if (leftover > 0) {
      std::stable_sort(policy_jobs.begin(), policy_jobs.end(),
                       [&](int a, int b) {
                         const int wa = networks[static_cast<std::size_t>(
                                            jobs[static_cast<std::size_t>(a)]
                                                .network)]
                                            ->num_vertices();
                         const int wb = networks[static_cast<std::size_t>(
                                            jobs[static_cast<std::size_t>(b)]
                                                .network)]
                                            ->num_vertices();
                         return wa > wb;
                       });
      const int k = static_cast<int>(policy_jobs.size());
      for (int i = 0; leftover > 0; i = (i + 1) % k, --leftover)
        ++inner[static_cast<std::size_t>(
            policy_jobs[static_cast<std::size_t>(i)])];
    }
  }
  return inner;
}

namespace {

void json_escape(std::string& dst, const std::string& s) {
  char buf[8];
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      dst.push_back('\\');
      dst.push_back(c);
    } else if (c == '\n') {
      dst += "\\n";
    } else if (c == '\t') {
      dst += "\\t";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      dst += buf;
    } else {
      dst.push_back(c);
    }
  }
}

}  // namespace

JobRunner::JobRunner(JobRunnerOptions opt)
    : opt_(std::move(opt)), info_cache_(opt_.context_cache_limit) {
  threads_ = resolve_pool_threads(opt_.threads);
}

BatchResult JobRunner::run(const std::vector<const SizingNetwork*>& networks,
                           const std::vector<SizingJob>& jobs) const {
  for (const SizingNetwork* net : networks) {
    MFT_CHECK(net != nullptr);
    MFT_CHECK(net->frozen());
  }
  for (const SizingJob& job : jobs)
    MFT_CHECK_MSG(job.network >= 0 &&
                      job.network < static_cast<int>(networks.size()),
                  "SizingJob.network out of range");

  Stopwatch total;
  BatchResult batch;
  const int n = static_cast<int>(jobs.size());
  batch.results.resize(static_cast<std::size_t>(n));
  batch.threads_used = std::max(1, std::min(threads_, n));
  if (n == 0) {
    batch.wall_seconds = total.seconds();
    return batch;
  }

  // Per-network Dmin / minimum area, shared by every job on that network;
  // prefetched on the caller and shipped with each submission, so job
  // wall times never include the min-sized STA and every network is
  // computed exactly once per run() even when context_cache_limit is
  // smaller than the batch's network table. Routed through the runner's
  // serial-keyed LRU so repeat-batch callers over the same frozen
  // networks don't pay a full STA per network per batch.
  std::vector<NetInfo> infos;
  infos.reserve(networks.size());
  for (const SizingNetwork* net : networks)
    infos.push_back(info_cache_.get_or_compute(*net));

  const std::vector<int> inner_threads = resolve_batch_inner_threads(
      networks, jobs, threads_, opt_.inner_threads);

  JobRunnerOptions sopt = opt_;
  sopt.threads = batch.threads_used;
  StreamingRunner stream(sopt, &info_cache_);

  // Batch progress adapter: streaming completion callbacks are already
  // serialized, but the completion count gets its own lock so observers
  // see a strictly monotone 1..n sequence with correct memory visibility.
  std::mutex progress_mu;
  int completed = 0;
  std::function<void(const JobResult&)> on_complete;
  if (opt_.progress)
    on_complete = [&](const JobResult& r) {
      std::lock_guard<std::mutex> lock(progress_mu);
      opt_.progress(r, ++completed, n);
    };

  std::vector<JobTicket> tickets;
  tickets.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    SizingJob job = jobs[static_cast<std::size_t>(i)];
    job.inner_threads = inner_threads[static_cast<std::size_t>(i)];
    // Index-based seeding (not ticket-based): the batch contract is that
    // the same jobs yield the same seeds on every run() call of this or
    // any other runner.
    if (job.seed == 0) job.seed = derive_job_seed(opt_.base_seed, i);
    const std::size_t ni = static_cast<std::size_t>(job.network);
    tickets.push_back(
        stream.submit(*networks[ni], std::move(job), on_complete, &infos[ni]));
  }
  for (int i = 0; i < n; ++i) {
    JobResult& out = batch.results[static_cast<std::size_t>(i)];
    out = stream.wait(tickets[static_cast<std::size_t>(i)]);
    out.job = i;
  }
  stream.shutdown();

  batch.wall_seconds = total.seconds();
  batch.jobs_per_second =
      batch.wall_seconds > 0.0 ? n / batch.wall_seconds : 0.0;
  return batch;
}

bool write_batch_json(const std::string& path, const BatchResult& batch) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::fprintf(f,
               "{\n  \"threads\": %d,\n  \"wall_seconds\": %.9g,\n"
               "  \"jobs_per_second\": %.9g,\n  \"jobs\": [\n",
               batch.threads_used, batch.wall_seconds, batch.jobs_per_second);
  for (std::size_t i = 0; i < batch.results.size(); ++i) {
    const JobResult& r = batch.results[i];
    std::string label;
    json_escape(label, r.label);
    if (!r.ok) {
      std::string error;
      json_escape(error, r.error);
      std::fprintf(f,
                   "    {\"label\": \"%s\", \"ok\": false, \"status\": "
                   "\"%s\", \"attempts\": %d, \"error\": \"%s\"}",
                   label.c_str(), to_string(r.status), r.attempts,
                   error.c_str());
    } else {
      const double savings =
          r.result.initial.met_target && r.result.met_target &&
                  r.result.initial.area > 0.0
              ? 100.0 * (1.0 - r.result.area / r.result.initial.area)
              : 0.0;
      std::fprintf(
          f,
          "    {\"label\": \"%s\", \"ok\": true, \"status\": \"%s\", "
          "\"degraded\": %s, \"met_target\": %s,\n"
          "     \"dmin\": %.17g, \"target\": %.17g, \"delay\": %.17g,\n"
          "     \"tilos_area\": %.17g, \"area\": %.17g, "
          "\"savings_pct\": %.9g,\n"
          "     \"iterations\": %d, \"wall_seconds\": %.9g, "
          "\"tilos_seconds\": %.9g,\n"
          "     \"sta_full_runs\": %lld, \"sta_incremental_runs\": %lld, "
          "\"sta_hinted_runs\": %lld, \"sta_delays_recomputed\": %lld,\n"
          "     \"seed\": %llu, \"thread\": %d, \"inner_threads\": %d,\n"
          "     \"shard\": %d, \"shard_round\": %d, \"fast_math\": %s, "
          "\"attempts\": %d,\n"
          "     \"passes\": [",
          label.c_str(), to_string(r.status), r.degraded ? "true" : "false",
          r.result.met_target ? "true" : "false", r.dmin,
          r.target, r.result.delay, r.result.initial.area, r.result.area,
          savings, static_cast<int>(r.result.iterations.size()),
          r.wall_seconds, r.result.tilos_seconds,
          static_cast<long long>(r.stats.sta_full_runs),
          static_cast<long long>(r.stats.sta_incremental_runs),
          static_cast<long long>(r.stats.sta_hinted_runs),
          static_cast<long long>(r.stats.sta_delays_recomputed),
          static_cast<unsigned long long>(r.seed), r.thread, r.inner_threads,
          r.shard, r.shard_round, r.fast_math ? "true" : "false", r.attempts);
      for (std::size_t p = 0; p < r.pass_stats.size(); ++p) {
        const PassStats& ps = r.pass_stats[p];
        std::string pass_name;
        json_escape(pass_name, ps.name);
        std::fprintf(f,
                     "%s{\"name\": \"%s\", \"invocations\": %d, "
                     "\"seconds\": %.9g, \"sweeps\": %lld}",
                     p == 0 ? "" : ", ", pass_name.c_str(), ps.invocations,
                     ps.seconds, static_cast<long long>(ps.sweeps));
      }
      std::fprintf(f, "]}");
    }
    std::fprintf(f, "%s\n", i + 1 < batch.results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace mft
