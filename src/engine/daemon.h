// Engine layer, service front-end: SizingDaemon turns the StreamingRunner
// into a headless request/response service speaking JSON-lines — one flat
// JSON object per request line in, one-or-more JSON event lines out
// through an emit callback the transport owns (stdout, a Unix socket, a
// test vector — the daemon never touches an fd itself).
//
// Protocol (requests):
//   {"op":"submit","circuit":"c17","ratio":0.8,"priority":2,
//    "deadline":0.5,"max_steps":0,"inner_threads":0,"seed":0,
//    "label":"...","id":"client-tag",      // only op+circuit required
//    "session":true}                       // keep the sized result live
//   {"op":"cancel","ticket":3}
//   {"op":"resize","session":1,"target":2.5,        // ECO against the
//    "loads":"12:0.05,33:-0.01","pins":"7:4,9:0"}   // session's solution
//   {"op":"release","session":1}
//   {"op":"stats"}
//   {"op":"shutdown"}
//
// Responses (events; "id" echoes the request's id when given):
//   {"event":"accepted","id":...,"ticket":3}           // submit admitted
//   {"event":"result","id":...,"ticket":3,"status":"ok",...}
//   {"event":"cancel","ticket":3,"ok":true}
//   {"event":"release","session":1,"ok":true}
//   {"event":"stats",...}   {"event":"shutdown",...}
//
// ECO sessions (the warm-start resize path, sizing/resize.h): a submit
// carrying "session":true is admitted like any job, and its accepted
// event carries the session number. Once its result lands, "resize" ops
// against that session apply a delta — a new delay target, per-vertex
// load edits, per-vertex size pins — with the millisecond warm-start
// machinery (fixpoint / carved-band warm solve / cold fallback), each
// answering with exactly one result event that reports the mode that
// produced it. The flat protocol has no arrays, so deltas ride in
// strings: "loads" / "pins" are comma-separated "vertex:value" lists
// (a pin value of 0 releases the pin). The zero delta is a fixpoint:
// its sizes_hash equals the previous answer's bit-for-bit. A resize
// against a session whose base job is still running is refused with
// kRejected (retry after the base result); "release" frees the session.
//
// The response contract the daemon_test pins: every request line gets
// exactly one terminal response — an admitted submit exactly one
// {"event":"result"} (preceded by its "accepted" ack), a rejected submit
// one result with status "rejected", a malformed or unknown request one
// result with status "invalid_input", a shed job one result with status
// "shed". No request hangs and no ticket is lost, including under
// overload and across injected faults (sites "daemon.parse" at request
// parsing and "daemon.accept" at admission — an armed fault becomes a
// structured error response, never a dead daemon).
//
// Admission control (DaemonOptions): a submit is refused with kRejected
// when the scheduler queue is already max_queue_depth deep, or when the
// request carries a deadline that deadline-pressure estimation says
// cannot be met: predicted completion = EWMA completed-job runtime ×
// (queue depth + workers) / workers — the job's own expected run counts,
// not just its queue wait. The EWMA folds in successful results only
// (shed/canceled/failed jobs return in unrepresentative time and would
// drag the estimate toward zero under a failure storm); before the first
// success lands there is no estimate, so the daemon falls back to a
// conservative queue-depth-only check (refuse deadline-carrying work
// once the backlog reaches the worker count) instead of silently
// admitting everything through the cold-start window. Once admitted,
// overload is handled by the scheduler itself: deadline-ordered dispatch
// plus kShed for queued jobs whose deadline lapsed (JobRunnerOptions::
// shed, on by default here), and the PR-6 best-so-far degradation for
// jobs already running.
//
// Results are delivered through submit_detached, so a long-lived daemon
// accumulates nothing per request; live stats (queue depth/peak,
// admit/reject/shed counters, p50/p99 ticket latency from a fixed-bucket
// histogram) come from the "stats" op at any time.
//
// Durability (DaemonOptions::journal_path): when set, every accepted
// submit is written ahead to an fsync'd journal (util/journal.h) before
// it reaches the engine — with its seed already resolved, so the solve is
// pinned at journal time — and every terminal result is journaled after
// it is emitted. A daemon constructed on an existing journal replays it:
// requests with no journaled result are re-admitted in original order
// (bypassing admission control — they were already admitted once) and,
// carrying their journaled seeds, reproduce bit-identical sizes_hash
// values. The journal is compacted to the unfinished set on recovery. The
// emission contract is at-least-once across a crash: a request whose
// result was emitted but not yet journaled is re-run and re-emitted.
//
// Every journal begins with a config snapshot record pinning the fields
// replay determinism depends on (base_seed, fast_math); a daemon started
// on a journal whose snapshot does not match its own configuration
// refuses recovery — it emits {"event":"replay","ok":false,...},
// preserves the file untouched for the operator, and serves on without
// replaying anything. ECO sessions are durable too: the base submit and
// every resize delta are journaled write-ahead, and recovery re-runs the
// base (bit-identical by the seed contract) and re-applies the resize
// chain in order, re-emitting only resizes whose results never made it
// to the journal. When DaemonOptions::journal_compact_bytes is set, the
// journal is also rotated while serving: once it grows past the bound it
// is rewritten down to its live set (config snapshot + unfinished
// submits + live session records), so a long-lived daemon's journal
// stays proportional to its outstanding work, not its history.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "engine/stream.h"
#include "timing/lowering.h"
#include "util/histogram.h"
#include "util/journal.h"

namespace mft {

struct ResizeDelta;
struct ResizeResult;

struct DaemonOptions {
  /// Engine configuration for the wrapped StreamingRunner. `shed` is the
  /// one field whose default differs from the raw engine: the daemon arms
  /// it unless the caller explicitly turns it off (see shed below).
  JobRunnerOptions engine;
  /// Queue-depth admission bound: a submit arriving while the scheduler
  /// queue is already this deep is refused with kRejected. 0 = unbounded.
  std::size_t max_queue_depth = 0;
  /// Deadline-pressure admission factor: when > 0, a submit carrying a
  /// deadline is refused with kRejected if the predicted queue wait
  /// (EWMA completed-job runtime × queue depth / workers) exceeds
  /// deadline × this factor — work that would only be shed later is
  /// turned away up front. 0 disables the estimate (the default: the
  /// estimator is load-dependent, so tests that need determinism keep it
  /// off and pin the queue-depth bound instead).
  double deadline_pressure = 0.0;
  /// Arm the scheduler's overload shedding (JobRunnerOptions::shed).
  bool shed = true;
  /// Write-ahead journal path. Empty (the default) disables durability.
  /// When set, the constructor replays any existing journal at this path
  /// (re-admitting unfinished requests and emitting a {"event":"replay"}
  /// line) before serving, and every accepted submit / terminal result is
  /// journaled from then on.
  std::string journal_path;
  /// Size-triggered journal rotation: after a terminal record lands, a
  /// journal grown past this many bytes is compacted in place down to its
  /// live set — the config snapshot, unfinished submits, and the records
  /// of live ECO sessions. 0 (the default) disables rotation.
  std::uint64_t journal_compact_bytes = 0;
};

/// Counters the daemon layers on top of StreamStats. Guarded internally;
/// a stats() snapshot is consistent.
struct DaemonStats {
  std::uint64_t requests = 0;   ///< request lines handled (incl. bad ones)
  std::uint64_t admitted = 0;   ///< submits handed to the engine
  std::uint64_t rejected = 0;   ///< submits refused by admission control
  std::uint64_t invalid = 0;    ///< malformed / unknown requests
  std::uint64_t results = 0;    ///< terminal result events emitted
  std::uint64_t journal_records = 0;  ///< records appended this process
  std::uint64_t journal_fsyncs = 0;   ///< fsyncs issued by those appends
  std::uint64_t journal_errors = 0;   ///< appends that failed (non-fatal)
  std::uint64_t journal_bytes = 0;    ///< current journal file size
  std::uint64_t journal_compactions = 0;  ///< size-triggered rotations
  std::uint64_t recovered = 0;        ///< requests re-admitted by replay
  std::uint64_t sessions = 0;         ///< live ECO sessions
  double ewma_run_seconds = 0.0;  ///< admission EWMA over ok-job runtimes
  double p50_seconds = 0.0;     ///< median submit→result latency
  double p99_seconds = 0.0;
  StreamStats engine;           ///< live engine counters (shed lives here)
};

class SizingDaemon {
 public:
  /// Emits one complete JSON line (no trailing newline) back to the
  /// client. Called serialized — never concurrently with itself — from
  /// handle_line's thread and from engine worker threads.
  using Emit = std::function<void(const std::string& line)>;

  SizingDaemon(DaemonOptions opt, Emit emit);
  ~SizingDaemon();  ///< drains outstanding jobs, then stops the engine

  SizingDaemon(const SizingDaemon&) = delete;
  SizingDaemon& operator=(const SizingDaemon&) = delete;

  /// Handles one request line (blank lines are ignored). Every non-blank
  /// line produces at least one response event; malformed input produces
  /// a structured invalid_input result. Never throws.
  void handle_line(const std::string& line);

  /// True once a {"op":"shutdown"} request was handled; the transport
  /// loop should stop reading and call drain().
  bool shutdown_requested() const;

  /// Blocks until every admitted job has completed and emitted its
  /// result event.
  void drain();

  DaemonStats stats() const;

 private:
  struct ParsedSubmit;
  struct ParsedResize;
  struct EcoSession;

  void do_submit(const ParsedSubmit& req);
  /// One warm-start ECO resize against a live session: journals the delta
  /// write-ahead, runs the solve on the request thread (outside mu_), and
  /// answers with exactly one result event.
  void do_resize(const ParsedResize& req);
  void do_release(const std::string& id, std::uint64_t sid);
  /// Builds the session's ResizeSession on first use (adopting the base
  /// job's sizes) and applies one delta. Request thread only.
  ResizeResult apply_resize(EcoSession& es, const ResizeDelta& delta);
  /// Terminal bookkeeping for a resize: result event, result record,
  /// rotation check.
  void finish_resize(const std::string& id, std::uint64_t sid,
                     std::uint64_t rid, bool durable, const ResizeResult& rr);
  void on_result(const std::string& id, std::uint64_t rid, std::uint64_t sid,
                 const JobResult& r);
  /// Constructor-time crash recovery: replays opt_.journal_path, compacts
  /// it down to the unfinished submits, re-admits them in rid order, and
  /// emits one {"event":"replay",...} line summarizing what happened.
  void recover_from_journal();
  /// Appends one record under mu_; failures are counted, never thrown —
  /// losing durability must not take down a serving daemon.
  void journal_append_locked(const std::string& payload);
  /// The flat config-snapshot record pinning everything journal replay
  /// determinism depends on; heads every fresh or rotated journal.
  std::string config_record() const;
  /// Size-triggered rotation: once the journal grows past
  /// opt_.journal_compact_bytes, rewrites it down to the live record set.
  void maybe_compact_locked();
  /// The one-terminal-response path for anything that never reached the
  /// engine: rejected, malformed, unknown op, internal fault.
  void respond_error(const std::string& id, EngineStatus status,
                     const std::string& message);
  void respond_error_locked(const std::string& id, EngineStatus status,
                            const std::string& message);
  void emit_locked(const std::string& line);
  /// Builds (and caches) the named circuit, lowered and frozen. Throws
  /// EngineError(kInvalidInput) for an unknown name.
  const SizingNetwork& circuit(const std::string& name);
  DaemonStats stats_locked() const;

  DaemonOptions opt_;
  Emit emit_;
  /// Lowered circuits by request name; jobs hold pointers into these, so
  /// entries are never evicted while the daemon lives (the name space is
  /// the small closed set of built-in generators).
  std::unordered_map<std::string, std::unique_ptr<LoweredCircuit>> circuits_;

  mutable std::mutex mu_;  ///< emit serialization, counters, histogram
  std::uint64_t requests_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t invalid_ = 0;
  std::uint64_t results_ = 0;
  double ewma_run_seconds_ = 0.0;  ///< EWMA of completed-job wall time
  LatencyHistogram latency_;       ///< submit→result, per terminal result
  bool shutdown_ = false;

  /// Write-ahead journal (open iff opt_.journal_path is set). Guarded by
  /// mu_; declared before runner_ so result callbacks from the draining
  /// engine can still journal during destruction.
  Journal journal_;
  std::uint64_t next_rid_ = 0;       ///< next durable request id
  std::uint64_t journal_errors_ = 0;
  std::uint64_t journal_compactions_ = 0;
  std::uint64_t recovered_ = 0;
  /// Set when recovery refused an incompatible journal: rotation must not
  /// silently drop the preserved records.
  bool compaction_disabled_ = false;
  /// Exactly what a rotation keeps, keyed (rid, seq: 0 request /
  /// 1 result) so compacted journals stay in append order. Guarded by
  /// mu_; maintained only while the journal is open.
  std::map<std::pair<std::uint64_t, int>, std::string> live_records_;

  /// Live ECO sessions by session number. The map is guarded by mu_; a
  /// session's ResizeSession itself is touched only from handle_line's
  /// thread (resizes are synchronous on the request thread).
  std::map<std::uint64_t, std::unique_ptr<EcoSession>> sessions_;
  std::uint64_t next_session_id_ = 1;

  /// Declared last: destroyed (drained) before the circuits its queued
  /// jobs point into.
  std::unique_ptr<StreamingRunner> runner_;
};

}  // namespace mft
