// Engine layer, streaming execution: a StreamingRunner owns a persistent
// pool of worker threads fed by a deterministic priority/deadline
// scheduler queue — jobs are submitted while workers run, each submission
// returns a JobTicket, and results are collected by poll/wait (or a
// per-job completion callback).
//
// This is the request-serving face of the engine the batch JobRunner
// (runner.h) is a thin wrapper over:
//
//  - Submission. submit() assigns the next ticket, resolves the job's
//    deterministic seed from (base_seed, ticket) via splitmix64 when the
//    job doesn't carry one, and enqueues. Ticket order is submission
//    order; it never depends on which worker picks the job up, so any
//    caller that submits deterministically and consumes in ticket order
//    gets bit-reproducible results at any worker count (the batch
//    contract, kept — pinned by tests/stream_test.cc at 1/2/4 workers).
//    Callback-only consumers use submit_detached(), which hands the
//    result to the callback without retaining it — nothing accumulates
//    per job in a long-lived runner.
//  - Queue. SchedQueue is a priority/deadline scheduler with
//    condition-variable parking on both sides: producers never spin, idle
//    workers sleep, close() wakes everyone. Dispatch order is the
//    deterministic key (priority desc, effective deadline asc, ticket asc)
//    — all-default jobs reduce it to the FIFO the batch runner relies on,
//    and per-ticket seeds are resolved at submit, so scheduling order
//    never changes any job's bits, only when it runs.
//  - Shedding. With JobRunnerOptions::shed armed, a popped job whose
//    wall-clock deadline already passed while it sat in the queue is
//    failed immediately with kShed instead of burning worker time on a
//    result that cannot meet its deadline; jobs already running keep the
//    PR-6 best-so-far degradation contract. The shed decision reads the
//    runner's injectable clock, so tests drive it deterministically.
//  - Supervision. With JobRunnerOptions::hang_timeout armed, a watchdog
//    thread reads each worker's lock-free heartbeat slot (ticket + step
//    counter, ticked at the same checkpoints AbortToken uses). A stalled
//    worker first gets its job's token fired (a cooperative job cancels
//    within one checkpoint); a job that ignores the token through
//    hang_grace escalates to a structured kHung completion, the worker is
//    marked lost, and a replacement spawns — pool capacity never silently
//    shrinks. Off by default: no supervisor thread exists and nothing
//    about dispatch or results changes.
//  - Retry. JobRunnerOptions::retry re-enqueues jobs that failed with a
//    transient status (kWorkerDied, kInternal) under the same ticket and
//    seed with deterministic seeded backoff (util/backoff.h), so a
//    retried success is bit-identical to a fault-free run; the attempt
//    count is echoed into JobResult::attempts.
//  - Context eviction. Each worker keeps a ContextPool — per-network
//    SizingContexts keyed by SizingNetwork::serial() under a shared LRU
//    policy (util/lru.h) bounded by JobRunnerOptions::context_cache_limit
//    (0 = unbounded, the batch-compatible default). Sharded reconciliation
//    rebuilds dirty shard networks every round, so a long-lived runner
//    sees a stream of short-lived serials; the bound is what keeps its
//    memory flat. Eviction never changes results — a context is pure
//    cache (tests/eviction_test.cc).
//  - Shutdown. shutdown(kDrain) stops accepting submissions, lets the
//    workers finish every queued job, and joins the pool; completed
//    results stay collectible by wait(). shutdown(kCancel) additionally
//    fails every not-yet-started job with ok == false ("canceled ..."),
//    firing its callback exactly once like any other completion. The
//    destructor drains. submit() after shutdown throws; wait() on a
//    never-issued or already-consumed ticket throws.
//
// Per-job dmin/min-area facts are resolved lazily on the worker through a
// NetInfoCache (serial-keyed, mutex-guarded, same LRU bound), shareable
// across runners so batch callers keep their cross-run() cache.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "engine/job.h"
#include "util/abort.h"
#include "util/backoff.h"
#include "util/fault.h"
#include "util/lru.h"

namespace mft {

class ThreadArena;

struct JobRunnerOptions {
  /// Worker threads; 0 picks std::thread::hardware_concurrency() (min 1).
  /// For the batch JobRunner the pool never exceeds the batch size; pool
  /// capacity beyond the batch size is handed to the jobs' inner loops
  /// (see inner_threads). A StreamingRunner spawns exactly this many.
  int threads = 0;
  /// Default inner-loop (level-parallel STA / W-phase) threads for jobs
  /// that leave SizingJob::inner_threads at 0: > 0 forces that count; 0
  /// consults the MFT_INNER_THREADS environment variable (ops/CI knob).
  /// The batch runner additionally applies its core-budget policy —
  /// explicit per-job requests are charged against the pool first, the
  /// remaining jobs get one core each, and whatever capacity is still
  /// left is round-robined onto the jobs with the largest networks; a
  /// streaming runner cannot see "the batch", so its fallback is 1.
  /// Inner parallelism never changes results (bit-identical).
  int inner_threads = 0;
  /// Per-worker context-pool and per-runner net-info cache bound: at most
  /// this many per-network SizingContexts are kept alive per worker (LRU
  /// eviction beyond it). 0 = unbounded — exactly the pre-eviction batch
  /// behavior. Long-lived streaming processes (and sharded reconciliation,
  /// whose rebuilt shard networks have fresh serials every round) should
  /// set a small bound.
  int context_cache_limit = 0;
  /// Run every job with FP-reassociated delay folds
  /// (SizingContext::set_fast_math). Off by default. Results are then
  /// reproducible for a fixed binary but NOT bit-identical to the exact
  /// mode, so this must never be combined with bit-identity-gated paths
  /// (sharded solves, streaming-vs-batch equivalence checks); the CLI
  /// rejects the combination. Echoed per job into JobResult::fast_math.
  bool fast_math = false;
  /// Overload shedding: when true, a job popped off the queue after its
  /// wall-clock deadline already passed is failed immediately with
  /// EngineStatus::kShed ("load shed") instead of being run — the deadline
  /// is measured from submission, so an expired deadline means no amount
  /// of worker time can produce a result the caller still wants. Off by
  /// default: the batch wrapper and deadline-free callers never shed, and
  /// an expired-but-unshed job keeps the PR-6 contract (it runs, trips its
  /// AbortToken at the first checkpoint, and degrades or fails with
  /// kDeadlineExpired). Shedding never touches a job already running.
  bool shed = false;
  /// Monotonic clock override, in seconds (only differences are
  /// meaningful). Null = steady_clock since runner construction. The
  /// scheduler's effective-deadline keys, the shed decision, and the
  /// queue-wait accounting all read this clock — a test installing a fake
  /// clock makes shed-vs-run decisions fully deterministic. AbortToken
  /// deadlines inside a running job still use the real clock.
  std::function<double()> clock;
  /// Worker watchdog: > 0 spawns a supervisor thread that watches every
  /// worker's heartbeat slot (ticket + beat counter, published lock-free;
  /// the beat advances at the same pass/sweep/bump checkpoints AbortToken
  /// uses). A worker stuck on one ticket with a silent heartbeat for
  /// hang_timeout seconds — on the runner's clock, so tests drive it with
  /// a fake — gets its job's AbortToken fired; if the job still hasn't
  /// honored the token after hang_grace more seconds, the supervisor
  /// escalates: the ticket completes with a structured kHung result
  /// (callback + wait() like any completion), the worker is marked lost,
  /// and a replacement worker is spawned so pool capacity never silently
  /// shrinks. 0 (default) = no supervisor thread at all — a pure
  /// observer-free configuration, bit-identical to the pre-watchdog
  /// engine. When armed, hang_timeout must exceed the longest interval
  /// between checkpoints (e.g. the min-sized STA of the largest network),
  /// or a slow-but-healthy job can be escalated.
  double hang_timeout = 0.0;
  /// Grace between firing a hung job's AbortToken and escalating to
  /// kHung. A cooperative job cancels within one checkpoint; only a job
  /// that ignores its token (a true hang) runs out the grace.
  double hang_grace = 0.05;
  /// Transient-failure retry policy (worker death, internal faults):
  /// failed jobs are re-enqueued under the same ticket and seed with
  /// deterministic seeded backoff, up to retry.max_attempts total
  /// attempts. Default: off. See util/backoff.h.
  RetryPolicy retry;
  /// Base of the deterministic per-job seed derivation.
  std::uint64_t base_seed = 0x9e3779b97f4a7c15ull;
  /// Batch-mode progress hook: called after each job completes with
  /// (result, completed, total). Serialized: at most one invocation runs
  /// at a time, but the calling thread varies and completion order is
  /// nondeterministic. Streaming callers use per-submit callbacks instead.
  std::function<void(const JobResult&, int completed, int total)> progress;
};

/// splitmix64 mix of (base, index): the deterministic per-job seed rule —
/// index is the job's batch position (JobRunner) or its ticket
/// (StreamingRunner), so seeds never depend on scheduling or arrival
/// interleaving.
std::uint64_t derive_job_seed(std::uint64_t base, std::uint64_t index);

/// Resolves a JobRunnerOptions::threads value to a concrete pool size.
int resolve_pool_threads(int requested);

/// The MFT_INNER_THREADS environment fallback (ops/CI knob), shared by the
/// batch policy, the streaming default, and the shard round policy so the
/// operator-facing validation rule cannot drift between paths: returns the
/// parsed value, 0 when unset, and hard-errors on a malformed value
/// (silently running at a thread count the operator didn't ask for would
/// mislabel every emitted number).
int env_inner_threads();

// ---------------------------------------------------------------------------
// SchedQueue
// ---------------------------------------------------------------------------

/// Monotone per-runner job handle: the submission index. Issued by
/// submit(), redeemed exactly once by wait().
using JobTicket = std::uint64_t;

/// Deterministic dispatch key of one queued job. Ordering (sched_before):
/// higher priority first, then earlier effective deadline (absolute time
/// on the runner's clock; no deadline = +inf), then lower ticket. The
/// ticket tiebreak makes the order a total one that depends only on what
/// was submitted — never on worker count or pop timing — and reduces the
/// all-default case (priority 0, no deadlines) to exact FIFO.
struct SchedKey {
  int priority = 0;
  double deadline_at = std::numeric_limits<double>::infinity();
  JobTicket ticket = 0;
};

inline bool sched_before(const SchedKey& a, const SchedKey& b) {
  if (a.priority != b.priority) return a.priority > b.priority;
  if (a.deadline_at != b.deadline_at) return a.deadline_at < b.deadline_at;
  return a.ticket < b.ticket;
}

/// Unbounded priority/deadline multi-producer/multi-consumer scheduler
/// queue with condition-variable parking and explicit close semantics.
/// T must expose a public `SchedKey key` member; pop() always hands out
/// the best key currently queued (per sched_before).
///  - push() returns false (and drops the item) once closed;
///  - pop() blocks while open and empty, returns false only when the
///    queue is closed *and* drained — so consumers process every item
///    pushed before close();
///  - close_and_drain() closes and hands every still-queued item back to
///    the caller instead (the cancel path).
/// FIFO law, generalized: among items whose keys compare equal (same
/// priority and deadline — ticket ties are impossible, tickets are
/// unique), dispatch order is ticket order, i.e. submission order. A
/// stream of all-default submissions therefore behaves exactly like the
/// FIFO queue this replaced.
template <typename T>
class SchedQueue {
 public:
  bool push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      items_.insert(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;  // closed and drained
    out = std::move(items_.extract(items_.begin()).value());
    return true;
  }

  /// Non-blocking pop; false when currently empty (closed or not).
  bool try_pop(T& out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    out = std::move(items_.extract(items_.begin()).value());
    return true;
  }

  /// Removes and returns the best-ordered queued item matching `pred`;
  /// false when no queued item matches (it may be in flight or already
  /// done). The immediate-cancel path: a plucked job never reaches a
  /// worker.
  template <typename Pred>
  bool remove_one(Pred pred, T& out) {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = items_.begin(); it != items_.end(); ++it) {
      if (pred(*it)) {
        out = std::move(items_.extract(it).value());
        return true;
      }
    }
    return false;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// Closes and returns every still-queued item in dispatch order.
  std::vector<T> close_and_drain() {
    std::vector<T> leftover;
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
      leftover.reserve(items_.size());
      while (!items_.empty())
        leftover.push_back(std::move(items_.extract(items_.begin()).value()));
    }
    cv_.notify_all();
    return leftover;
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  struct Before {
    bool operator()(const T& a, const T& b) const {
      return sched_before(a.key, b.key);
    }
  };

  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// multiset keeps equivalent keys in insertion order, which is what
  /// makes the FIFO law hold without encoding the ticket twice.
  std::multiset<T, Before> items_;
  bool closed_ = false;
};

// ---------------------------------------------------------------------------
// NetInfoCache / ContextPool
// ---------------------------------------------------------------------------

/// Per-network facts every job on that network shares: minimum-sized
/// delay and area.
struct NetInfo {
  double dmin = 0.0;
  double min_area = 0.0;
};

/// Thread-safe serial-keyed NetInfo cache with the shared LRU bound. A
/// miss computes outside the lock (one full min-sized STA), so concurrent
/// workers on distinct networks never serialize on each other's STA; two
/// workers racing on the *same* fresh serial may both compute, landing on
/// the identical value (the computation is a pure function of the
/// network), which keeps results deterministic under any interleaving —
/// and deterministic under eviction-forced recomputation for the same
/// reason.
class NetInfoCache {
 public:
  explicit NetInfoCache(int capacity = 0) : cache_(capacity) {}

  void set_capacity(int capacity) {
    std::lock_guard<std::mutex> lock(mu_);
    cache_.set_capacity(capacity);
  }

  NetInfo get_or_compute(const SizingNetwork& net);

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.size();
  }
  std::int64_t evictions() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.evictions();
  }

 private:
  mutable std::mutex mu_;
  LruCache<std::uint64_t, NetInfo> cache_;
};

/// One worker's SizingContext pool: get-or-create keyed by
/// SizingNetwork::serial(), LRU-bounded. Single-threaded (one pool per
/// worker, like the contexts it owns). The context just acquired is
/// most-recently-used and therefore never the eviction victim, so the
/// reference stays valid until the worker's next acquire.
class ContextPool {
 public:
  explicit ContextPool(int capacity = 0) : cache_(capacity) {}

  SizingContext& acquire(const SizingNetwork& net) {
    MFT_FAULT_POINT("stream.context");
    if (std::unique_ptr<SizingContext>* hit = cache_.find(net.serial())) {
      ++hits_;
      return **hit;
    }
    ++misses_;
    std::unique_ptr<SizingContext>& slot =
        cache_.insert(net.serial(), std::make_unique<SizingContext>(net));
    if (cache_.size() > peak_) peak_ = cache_.size();
    return *slot;
  }

  std::size_t size() const { return cache_.size(); }
  std::size_t peak_size() const { return peak_; }
  std::int64_t hits() const { return hits_; }
  std::int64_t misses() const { return misses_; }
  std::int64_t evictions() const { return cache_.evictions(); }

 private:
  LruCache<std::uint64_t, std::unique_ptr<SizingContext>> cache_;
  std::size_t peak_ = 0;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

// ---------------------------------------------------------------------------
// StreamingRunner
// ---------------------------------------------------------------------------

/// Aggregate runner instrumentation. Counters and queue/latency totals are
/// live at any time; the context_* fields are complete only after
/// shutdown() (workers publish their pool's counters when they exit);
/// context_peak_per_worker is the largest pool any single worker grew.
struct StreamStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t canceled = 0;  ///< completions with status kCanceled
  std::uint64_t degraded = 0;  ///< completions with the degraded flag
  std::uint64_t shed = 0;      ///< completions with status kShed
  std::size_t ready = 0;  ///< completed results retained, not yet consumed
  std::size_t queue_depth = 0;  ///< jobs queued, not yet dispatched (now)
  std::size_t queue_peak = 0;   ///< high-water mark of queue_depth
  /// Total seconds jobs spent waiting between submit and dispatch (on the
  /// runner's clock), summed over completed jobs; divide by completed for
  /// the mean wait. Canceled-before-start and shed jobs count their full
  /// wait too — theirs ended at the pluck/shed decision.
  double queue_wait_seconds = 0.0;
  /// Total seconds workers spent executing jobs (sum of per-job
  /// wall_seconds); run/wait together split every ticket's latency.
  double run_seconds = 0.0;
  /// Transient failures re-enqueued by the retry policy (one per extra
  /// attempt, across all jobs).
  std::uint64_t retries = 0;
  /// Watchdog interventions: tokens fired on stalled workers, jobs
  /// escalated to kHung, and replacement workers spawned. All zero
  /// whenever the watchdog is disabled or never needed to act.
  std::uint64_t hang_cancels = 0;
  std::uint64_t hangs = 0;
  std::uint64_t respawns = 0;
  /// Oldest heartbeat silence the watchdog ever observed on a busy worker
  /// (seconds on the runner's clock); 0 without a watchdog.
  double heartbeat_age_peak = 0.0;
  std::size_t context_peak_per_worker = 0;
  std::int64_t context_hits = 0;
  std::int64_t context_misses = 0;
  std::int64_t context_evictions = 0;
};

class StreamingRunner {
 public:
  enum class ShutdownMode {
    kDrain,   ///< finish every queued job, then stop
    kCancel,  ///< fail queued-but-unstarted jobs with ok == false
  };

  /// Spawns the worker pool immediately. `shared_info` (optional, not
  /// owned, must outlive the runner) lets a caller share one dmin/min-area
  /// cache across runners — the batch JobRunner passes its own so repeat
  /// batches over the same frozen networks keep hitting across run()
  /// calls.
  explicit StreamingRunner(JobRunnerOptions opt = {},
                           NetInfoCache* shared_info = nullptr);
  ~StreamingRunner();  ///< shutdown(kDrain)

  StreamingRunner(const StreamingRunner&) = delete;
  StreamingRunner& operator=(const StreamingRunner&) = delete;

  int threads() const { return threads_; }

  /// Enqueues one job against `net` (frozen, caller-owned, must stay
  /// alive and unchanged until the job completes). Returns the job's
  /// ticket. If job.seed == 0 the seed is resolved to
  /// derive_job_seed(base_seed, ticket) *now*, so results never depend on
  /// when workers pick the job up. `on_complete`, if given, fires exactly
  /// once from a worker (serialized with every other completion callback)
  /// right before the result becomes collectible — it must not call
  /// wait() on its own ticket. `info`, if given, supplies the network's
  /// precomputed dmin/min-area facts (the batch wrapper prefetches them so
  /// job wall times never include the min-sized STA); otherwise the
  /// executing worker resolves them through the NetInfoCache. Throws
  /// std::runtime_error after shutdown.
  JobTicket submit(const SizingNetwork& net, SizingJob job,
                   std::function<void(const JobResult&)> on_complete = {},
                   const NetInfo* info = nullptr);

  /// Like submit(), but the result is delivered to `on_complete`
  /// (required) and never retained: poll() stays false, wait() on the
  /// ticket throws as already-consumed, and nothing accumulates in the
  /// runner — the flat-memory mode for long-lived callback-driven
  /// consumers that never redeem tickets.
  JobTicket submit_detached(const SizingNetwork& net, SizingJob job,
                            std::function<void(const JobResult&)> on_complete);

  /// Cancels one submitted job. A job still queued is failed immediately
  /// (status kCanceled, callback fired like any completion, result
  /// collectible by wait()); a job already running is interrupted
  /// cooperatively at its next pass/sweep/bump checkpoint and completes
  /// shortly after with status kCanceled — cancel() itself never blocks on
  /// it. Returns false when the job already completed (cancellation lost
  /// the race; the existing result stands). Throws std::runtime_error for
  /// a never-issued ticket.
  bool cancel(JobTicket t);

  /// True iff the ticket's result is ready and not yet consumed.
  bool poll(JobTicket t) const;

  /// Blocks until the ticket's job completes and moves the result out
  /// (each ticket is redeemable once). Canceled jobs return normally with
  /// ok == false. Throws std::runtime_error for a never-issued or
  /// already-consumed ticket. Safe to call after shutdown for any
  /// unconsumed completed ticket.
  JobResult wait(JobTicket t);

  /// Blocks until every submitted job has completed (results remain
  /// collectible afterwards).
  void wait_all();

  /// Idempotent; see ShutdownMode. Joins the worker pool before
  /// returning.
  void shutdown(ShutdownMode mode = ShutdownMode::kDrain);
  bool is_shutdown() const;

  /// Jobs submitted / completed so far (completed includes canceled).
  StreamStats stats() const;

 private:
  struct Item {
    /// Dispatch key: (job.priority, submit_at + deadline_seconds, ticket).
    /// Fixed at submit; the queue orders by it.
    SchedKey key;
    JobTicket ticket = 0;
    const SizingNetwork* net = nullptr;
    SizingJob job;
    std::function<void(const JobResult&)> on_complete;
    NetInfo info;           ///< meaningful iff has_info
    bool has_info = false;  ///< caller prefetched the network facts
    bool retain = true;     ///< false: callback-only, result never stored
    double submit_at = 0.0;  ///< runner-clock time of submission
    /// Per-job abort/budget token, created at submit (deadline measured
    /// from there). Shared with tokens_ so cancel() reaches a job already
    /// handed to a worker.
    std::shared_ptr<AbortToken> token;
    /// Retry state: which attempt this dispatch is (1-based), the total
    /// backoff scheduled so far, and the runner-clock instant before which
    /// a re-enqueued item must not be dispatched.
    int attempt = 1;
    double backoff_total = 0.0;
    double not_before = 0.0;
  };

  /// One worker's lock-free heartbeat slot, read by the watchdog.
  /// `busy` holds ticket + 1 while a job occupies the worker (0 = idle);
  /// `beat` advances at every AbortToken checkpoint of the running job.
  /// `lost` tells a worker the watchdog already escalated its current job
  /// and replaced it — it must exit instead of popping more work. Slots
  /// are heap-allocated and never destroyed before the runner, so a
  /// worker unstuck long after escalation still writes somewhere valid.
  struct WorkerSlot {
    std::atomic<std::uint64_t> busy{0};
    std::atomic<std::int64_t> beat{0};
    std::atomic<bool> lost{false};
  };

  /// Completion-relevant snapshot of an in-flight job, registered at
  /// dispatch (guarded by mu_) so the watchdog can finish a ticket it
  /// escalates without touching the stuck worker's stack.
  struct Inflight {
    std::string label;
    std::uint64_t seed = 0;
    int priority = 0;
    int shard = -1;
    int shard_round = 0;
    double submit_at = 0.0;
    double queue_seconds = 0.0;
    int attempt = 1;
    double backoff_total = 0.0;
    bool retain = true;
    std::function<void(const JobResult&)> on_complete;
  };

  JobTicket submit_item(const SizingNetwork& net, SizingJob job,
                        std::function<void(const JobResult&)> on_complete,
                        const NetInfo* info, bool retain);
  void worker_main(int worker_id, WorkerSlot* slot);
  void finish(Item& item, JobResult out);
  /// Completes `ticket` exactly once: claims it under mu_ (false when the
  /// ticket was already finished — e.g. the watchdog and a late worker
  /// racing), fires the callback, publishes counters + the retained
  /// result. Every completion path funnels through here.
  bool deliver(JobTicket ticket, bool retain,
               const std::function<void(const JobResult&)>& on_complete,
               JobResult out);
  /// Retry gate for a worker-produced outcome: re-enqueues a transient
  /// failure with attempts remaining (returns true — the ticket is NOT
  /// finished) or lets the caller finish it (false).
  bool maybe_retry(Item& item, const JobResult& out);
  /// JobResult skeleton for a job failed without running (pluck-cancel,
  /// shutdown-cancel, shed): echoes identity fields, stamps the queue wait
  /// as of `now`, and carries the structured status + message.
  JobResult stub_result(const Item& item, EngineStatus status,
                        const std::string& error, double now) const;
  /// Appends a worker (thread + heartbeat slot); workers_mu_ held.
  void spawn_worker_locked();
  void watchdog_main();
  void watchdog_scan();

  /// Watchdog-thread-private tracking of one worker slot: the (ticket,
  /// beat) pair last observed, when that pair was first seen, and when the
  /// token was fired (< 0 = not yet).
  struct WatchTrack {
    std::uint64_t busy = 0;
    std::int64_t beat = 0;
    double since = 0.0;
    double canceled_at = -1.0;
  };

  JobRunnerOptions opt_;
  int threads_ = 1;
  int default_inner_ = 1;  ///< resolved once: opt.inner_threads or env or 1
  std::function<double()> now_;  ///< runner clock: opt.clock or steady
  NetInfoCache own_info_;
  NetInfoCache* info_ = nullptr;

  SchedQueue<Item> queue_;
  /// Worker threads and their heartbeat slots. Guarded by workers_mu_:
  /// the watchdog appends replacements while the pool runs, and shutdown
  /// joins until the vector stays empty. Slots are never erased — a lost
  /// worker's slot outlives its escalation.
  std::mutex workers_mu_;
  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<WorkerSlot>> slots_;
  int next_worker_id_ = 0;

  mutable std::mutex mu_;  ///< tickets, results, outstanding, shutdown flag
  std::condition_variable done_cv_;
  std::uint64_t next_ticket_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t canceled_ = 0;
  std::uint64_t degraded_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t hang_cancels_ = 0;
  std::uint64_t hangs_ = 0;
  std::uint64_t respawns_ = 0;
  double heartbeat_age_peak_ = 0.0;
  std::size_t queue_peak_ = 0;
  double queue_wait_seconds_ = 0.0;
  double run_seconds_ = 0.0;
  std::unordered_map<JobTicket, JobResult> ready_;
  std::unordered_set<JobTicket> outstanding_;
  /// Abort token of every not-yet-completed job, for cancel(); erased by
  /// deliver(). Guarded by mu_.
  std::unordered_map<JobTicket, std::shared_ptr<AbortToken>> tokens_;
  /// Tickets whose completion is underway (claimed in deliver(), erased
  /// when the result is published): makes worker-vs-watchdog completion
  /// races resolve to exactly one delivery. Guarded by mu_.
  std::unordered_set<JobTicket> claimed_;
  /// Dispatch snapshots of running jobs, keyed by ticket (see Inflight).
  /// Guarded by mu_.
  std::unordered_map<JobTicket, Inflight> inflight_;
  bool shutdown_ = false;

  /// Watchdog thread state (spawned only when opt_.hang_timeout > 0).
  std::thread watchdog_;
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;
  std::unordered_map<WorkerSlot*, WatchTrack> watch_;  ///< watchdog-only

  std::mutex shutdown_mu_;  ///< serializes shutdown()/destructor
  std::mutex callback_mu_;  ///< serializes completion callbacks
  mutable std::mutex stats_mu_;  ///< workers publish pool stats at exit
  StreamStats pool_stats_;  ///< context_* fields, guarded by stats_mu_
};

}  // namespace mft
