// Engine layer, streaming execution: a StreamingRunner owns a persistent
// pool of worker threads fed by an MPMC queue — jobs are submitted while
// workers run, each submission returns a JobTicket, and results are
// collected by poll/wait (or a per-job completion callback).
//
// This is the request-serving face of the engine the batch JobRunner
// (runner.h) is a thin wrapper over:
//
//  - Submission. submit() assigns the next ticket, resolves the job's
//    deterministic seed from (base_seed, ticket) via splitmix64 when the
//    job doesn't carry one, and enqueues. Ticket order is submission
//    order; it never depends on which worker picks the job up, so any
//    caller that submits deterministically and consumes in ticket order
//    gets bit-reproducible results at any worker count (the batch
//    contract, kept — pinned by tests/stream_test.cc at 1/2/4 workers).
//    Callback-only consumers use submit_detached(), which hands the
//    result to the callback without retaining it — nothing accumulates
//    per job in a long-lived runner.
//  - Queue. MpmcQueue is a FIFO with condition-variable parking on both
//    sides: producers never spin, idle workers sleep, close() wakes
//    everyone. This replaces the batch runner's atomic-cursor loop, which
//    required the whole job list up front.
//  - Context eviction. Each worker keeps a ContextPool — per-network
//    SizingContexts keyed by SizingNetwork::serial() under a shared LRU
//    policy (util/lru.h) bounded by JobRunnerOptions::context_cache_limit
//    (0 = unbounded, the batch-compatible default). Sharded reconciliation
//    rebuilds dirty shard networks every round, so a long-lived runner
//    sees a stream of short-lived serials; the bound is what keeps its
//    memory flat. Eviction never changes results — a context is pure
//    cache (tests/eviction_test.cc).
//  - Shutdown. shutdown(kDrain) stops accepting submissions, lets the
//    workers finish every queued job, and joins the pool; completed
//    results stay collectible by wait(). shutdown(kCancel) additionally
//    fails every not-yet-started job with ok == false ("canceled ..."),
//    firing its callback exactly once like any other completion. The
//    destructor drains. submit() after shutdown throws; wait() on a
//    never-issued or already-consumed ticket throws.
//
// Per-job dmin/min-area facts are resolved lazily on the worker through a
// NetInfoCache (serial-keyed, mutex-guarded, same LRU bound), shareable
// across runners so batch callers keep their cross-run() cache.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "engine/job.h"
#include "util/abort.h"
#include "util/fault.h"
#include "util/lru.h"

namespace mft {

class ThreadArena;

struct JobRunnerOptions {
  /// Worker threads; 0 picks std::thread::hardware_concurrency() (min 1).
  /// For the batch JobRunner the pool never exceeds the batch size; pool
  /// capacity beyond the batch size is handed to the jobs' inner loops
  /// (see inner_threads). A StreamingRunner spawns exactly this many.
  int threads = 0;
  /// Default inner-loop (level-parallel STA / W-phase) threads for jobs
  /// that leave SizingJob::inner_threads at 0: > 0 forces that count; 0
  /// consults the MFT_INNER_THREADS environment variable (ops/CI knob).
  /// The batch runner additionally applies its core-budget policy —
  /// explicit per-job requests are charged against the pool first, the
  /// remaining jobs get one core each, and whatever capacity is still
  /// left is round-robined onto the jobs with the largest networks; a
  /// streaming runner cannot see "the batch", so its fallback is 1.
  /// Inner parallelism never changes results (bit-identical).
  int inner_threads = 0;
  /// Per-worker context-pool and per-runner net-info cache bound: at most
  /// this many per-network SizingContexts are kept alive per worker (LRU
  /// eviction beyond it). 0 = unbounded — exactly the pre-eviction batch
  /// behavior. Long-lived streaming processes (and sharded reconciliation,
  /// whose rebuilt shard networks have fresh serials every round) should
  /// set a small bound.
  int context_cache_limit = 0;
  /// Run every job with FP-reassociated delay folds
  /// (SizingContext::set_fast_math). Off by default. Results are then
  /// reproducible for a fixed binary but NOT bit-identical to the exact
  /// mode, so this must never be combined with bit-identity-gated paths
  /// (sharded solves, streaming-vs-batch equivalence checks); the CLI
  /// rejects the combination. Echoed per job into JobResult::fast_math.
  bool fast_math = false;
  /// Base of the deterministic per-job seed derivation.
  std::uint64_t base_seed = 0x9e3779b97f4a7c15ull;
  /// Batch-mode progress hook: called after each job completes with
  /// (result, completed, total). Serialized: at most one invocation runs
  /// at a time, but the calling thread varies and completion order is
  /// nondeterministic. Streaming callers use per-submit callbacks instead.
  std::function<void(const JobResult&, int completed, int total)> progress;
};

/// splitmix64 mix of (base, index): the deterministic per-job seed rule —
/// index is the job's batch position (JobRunner) or its ticket
/// (StreamingRunner), so seeds never depend on scheduling or arrival
/// interleaving.
std::uint64_t derive_job_seed(std::uint64_t base, std::uint64_t index);

/// Resolves a JobRunnerOptions::threads value to a concrete pool size.
int resolve_pool_threads(int requested);

/// The MFT_INNER_THREADS environment fallback (ops/CI knob), shared by the
/// batch policy, the streaming default, and the shard round policy so the
/// operator-facing validation rule cannot drift between paths: returns the
/// parsed value, 0 when unset, and hard-errors on a malformed value
/// (silently running at a thread count the operator didn't ask for would
/// mislabel every emitted number).
int env_inner_threads();

// ---------------------------------------------------------------------------
// MpmcQueue
// ---------------------------------------------------------------------------

/// Unbounded FIFO multi-producer/multi-consumer queue with
/// condition-variable parking and explicit close semantics:
///  - push() returns false (and drops the item) once closed;
///  - pop() blocks while open and empty, returns false only when the
///    queue is closed *and* drained — so consumers process every item
///    pushed before close();
///  - close_and_drain() closes and hands every still-queued item back to
///    the caller instead (the cancel path).
/// FIFO law: items pushed by one producer are popped in push order
/// (across producers, the order is the queue's arrival interleaving).
template <typename T>
class MpmcQueue {
 public:
  bool push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;  // closed and drained
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Non-blocking pop; false when currently empty (closed or not).
  bool try_pop(T& out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Removes and returns the first queued item matching `pred`; false when
  /// no queued item matches (it may be in flight or already done). The
  /// immediate-cancel path: a plucked job never reaches a worker.
  template <typename Pred>
  bool remove_one(Pred pred, T& out) {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = items_.begin(); it != items_.end(); ++it) {
      if (pred(*it)) {
        out = std::move(*it);
        items_.erase(it);
        return true;
      }
    }
    return false;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  std::deque<T> close_and_drain() {
    std::deque<T> leftover;
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
      leftover.swap(items_);
    }
    cv_.notify_all();
    return leftover;
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

// ---------------------------------------------------------------------------
// NetInfoCache / ContextPool
// ---------------------------------------------------------------------------

/// Per-network facts every job on that network shares: minimum-sized
/// delay and area.
struct NetInfo {
  double dmin = 0.0;
  double min_area = 0.0;
};

/// Thread-safe serial-keyed NetInfo cache with the shared LRU bound. A
/// miss computes outside the lock (one full min-sized STA), so concurrent
/// workers on distinct networks never serialize on each other's STA; two
/// workers racing on the *same* fresh serial may both compute, landing on
/// the identical value (the computation is a pure function of the
/// network), which keeps results deterministic under any interleaving —
/// and deterministic under eviction-forced recomputation for the same
/// reason.
class NetInfoCache {
 public:
  explicit NetInfoCache(int capacity = 0) : cache_(capacity) {}

  void set_capacity(int capacity) {
    std::lock_guard<std::mutex> lock(mu_);
    cache_.set_capacity(capacity);
  }

  NetInfo get_or_compute(const SizingNetwork& net);

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.size();
  }
  std::int64_t evictions() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.evictions();
  }

 private:
  mutable std::mutex mu_;
  LruCache<std::uint64_t, NetInfo> cache_;
};

/// One worker's SizingContext pool: get-or-create keyed by
/// SizingNetwork::serial(), LRU-bounded. Single-threaded (one pool per
/// worker, like the contexts it owns). The context just acquired is
/// most-recently-used and therefore never the eviction victim, so the
/// reference stays valid until the worker's next acquire.
class ContextPool {
 public:
  explicit ContextPool(int capacity = 0) : cache_(capacity) {}

  SizingContext& acquire(const SizingNetwork& net) {
    MFT_FAULT_POINT("stream.context");
    if (std::unique_ptr<SizingContext>* hit = cache_.find(net.serial())) {
      ++hits_;
      return **hit;
    }
    ++misses_;
    std::unique_ptr<SizingContext>& slot =
        cache_.insert(net.serial(), std::make_unique<SizingContext>(net));
    if (cache_.size() > peak_) peak_ = cache_.size();
    return *slot;
  }

  std::size_t size() const { return cache_.size(); }
  std::size_t peak_size() const { return peak_; }
  std::int64_t hits() const { return hits_; }
  std::int64_t misses() const { return misses_; }
  std::int64_t evictions() const { return cache_.evictions(); }

 private:
  LruCache<std::uint64_t, std::unique_ptr<SizingContext>> cache_;
  std::size_t peak_ = 0;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

// ---------------------------------------------------------------------------
// StreamingRunner
// ---------------------------------------------------------------------------

/// Monotone per-runner job handle: the submission index. Issued by
/// submit(), redeemed exactly once by wait().
using JobTicket = std::uint64_t;

/// Aggregate context-pool instrumentation across all workers. Complete
/// only after shutdown() (workers publish their pool's counters when they
/// exit); peak_per_worker is the largest pool any single worker grew.
struct StreamStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t canceled = 0;  ///< completions with status kCanceled
  std::uint64_t degraded = 0;  ///< completions with the degraded flag
  std::size_t ready = 0;  ///< completed results retained, not yet consumed
  std::size_t context_peak_per_worker = 0;
  std::int64_t context_hits = 0;
  std::int64_t context_misses = 0;
  std::int64_t context_evictions = 0;
};

class StreamingRunner {
 public:
  enum class ShutdownMode {
    kDrain,   ///< finish every queued job, then stop
    kCancel,  ///< fail queued-but-unstarted jobs with ok == false
  };

  /// Spawns the worker pool immediately. `shared_info` (optional, not
  /// owned, must outlive the runner) lets a caller share one dmin/min-area
  /// cache across runners — the batch JobRunner passes its own so repeat
  /// batches over the same frozen networks keep hitting across run()
  /// calls.
  explicit StreamingRunner(JobRunnerOptions opt = {},
                           NetInfoCache* shared_info = nullptr);
  ~StreamingRunner();  ///< shutdown(kDrain)

  StreamingRunner(const StreamingRunner&) = delete;
  StreamingRunner& operator=(const StreamingRunner&) = delete;

  int threads() const { return threads_; }

  /// Enqueues one job against `net` (frozen, caller-owned, must stay
  /// alive and unchanged until the job completes). Returns the job's
  /// ticket. If job.seed == 0 the seed is resolved to
  /// derive_job_seed(base_seed, ticket) *now*, so results never depend on
  /// when workers pick the job up. `on_complete`, if given, fires exactly
  /// once from a worker (serialized with every other completion callback)
  /// right before the result becomes collectible — it must not call
  /// wait() on its own ticket. `info`, if given, supplies the network's
  /// precomputed dmin/min-area facts (the batch wrapper prefetches them so
  /// job wall times never include the min-sized STA); otherwise the
  /// executing worker resolves them through the NetInfoCache. Throws
  /// std::runtime_error after shutdown.
  JobTicket submit(const SizingNetwork& net, SizingJob job,
                   std::function<void(const JobResult&)> on_complete = {},
                   const NetInfo* info = nullptr);

  /// Like submit(), but the result is delivered to `on_complete`
  /// (required) and never retained: poll() stays false, wait() on the
  /// ticket throws as already-consumed, and nothing accumulates in the
  /// runner — the flat-memory mode for long-lived callback-driven
  /// consumers that never redeem tickets.
  JobTicket submit_detached(const SizingNetwork& net, SizingJob job,
                            std::function<void(const JobResult&)> on_complete);

  /// Cancels one submitted job. A job still queued is failed immediately
  /// (status kCanceled, callback fired like any completion, result
  /// collectible by wait()); a job already running is interrupted
  /// cooperatively at its next pass/sweep/bump checkpoint and completes
  /// shortly after with status kCanceled — cancel() itself never blocks on
  /// it. Returns false when the job already completed (cancellation lost
  /// the race; the existing result stands). Throws std::runtime_error for
  /// a never-issued ticket.
  bool cancel(JobTicket t);

  /// True iff the ticket's result is ready and not yet consumed.
  bool poll(JobTicket t) const;

  /// Blocks until the ticket's job completes and moves the result out
  /// (each ticket is redeemable once). Canceled jobs return normally with
  /// ok == false. Throws std::runtime_error for a never-issued or
  /// already-consumed ticket. Safe to call after shutdown for any
  /// unconsumed completed ticket.
  JobResult wait(JobTicket t);

  /// Blocks until every submitted job has completed (results remain
  /// collectible afterwards).
  void wait_all();

  /// Idempotent; see ShutdownMode. Joins the worker pool before
  /// returning.
  void shutdown(ShutdownMode mode = ShutdownMode::kDrain);
  bool is_shutdown() const;

  /// Jobs submitted / completed so far (completed includes canceled).
  StreamStats stats() const;

 private:
  struct Item {
    JobTicket ticket = 0;
    const SizingNetwork* net = nullptr;
    SizingJob job;
    std::function<void(const JobResult&)> on_complete;
    NetInfo info;           ///< meaningful iff has_info
    bool has_info = false;  ///< caller prefetched the network facts
    bool retain = true;     ///< false: callback-only, result never stored
    /// Per-job abort/budget token, created at submit (deadline measured
    /// from there). Shared with tokens_ so cancel() reaches a job already
    /// handed to a worker.
    std::shared_ptr<AbortToken> token;
  };

  JobTicket submit_item(const SizingNetwork& net, SizingJob job,
                        std::function<void(const JobResult&)> on_complete,
                        const NetInfo* info, bool retain);
  void worker_main(int worker_id);
  void finish(Item& item, JobResult out);

  JobRunnerOptions opt_;
  int threads_ = 1;
  int default_inner_ = 1;  ///< resolved once: opt.inner_threads or env or 1
  NetInfoCache own_info_;
  NetInfoCache* info_ = nullptr;

  MpmcQueue<Item> queue_;
  std::vector<std::thread> workers_;

  mutable std::mutex mu_;  ///< tickets, results, outstanding, shutdown flag
  std::condition_variable done_cv_;
  std::uint64_t next_ticket_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t canceled_ = 0;
  std::uint64_t degraded_ = 0;
  std::unordered_map<JobTicket, JobResult> ready_;
  std::unordered_set<JobTicket> outstanding_;
  /// Abort token of every not-yet-completed job, for cancel(); erased by
  /// finish(). Guarded by mu_.
  std::unordered_map<JobTicket, std::shared_ptr<AbortToken>> tokens_;
  bool shutdown_ = false;

  std::mutex shutdown_mu_;  ///< serializes shutdown()/destructor
  std::mutex callback_mu_;  ///< serializes completion callbacks
  mutable std::mutex stats_mu_;  ///< workers publish pool stats at exit
  StreamStats pool_stats_;  ///< context_* fields, guarded by stats_mu_
};

}  // namespace mft
