// Engine layer, batch execution: a JobRunner executes a batch of
// independent SizingJobs over a shared read-only network table.
//
// Since the streaming engine landed (engine/stream.h), run() is a thin
// submit-all/wait-all wrapper over a StreamingRunner: jobs are submitted
// in index order (which makes ticket order == job order) and results are
// consumed in ticket order into a preallocated vector. The batch
// contracts are unchanged and still pinned by tests/engine_test.cc:
//
//  - Load balancing: the scheduler queue hands each worker the next
//    unstarted
//    job, so the batch load-balances regardless of per-job cost skew (a
//    c6288 job next to a c17 job is fine).
//  - Context reuse: every worker keeps a ContextPool — one SizingContext
//    per network it has touched, re-entered across jobs (begin_job()
//    resets per-job instrumentation; the cached LP/flow/STA state is the
//    point of the reuse), LRU-bounded by
//    JobRunnerOptions::context_cache_limit (0 = unbounded, the historic
//    batch behavior).
//  - Determinism: results are collected *ordered by job index*, and each
//    job's seed derives deterministically from the base seed and the job
//    index — never from the runner's ticket counter, so repeat run()
//    calls over the same jobs stay bit-identical too. A batch is
//    bit-reproducible at any thread count.
//  - Inner threads: the core-budget policy (see
//    JobRunnerOptions::inner_threads) is resolved over the whole batch up
//    front, then stamped per job.
//  - An optional progress callback fires after every job completion,
//    serialized under a mutex.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/stream.h"

namespace mft {

struct BatchResult {
  std::vector<JobResult> results;  ///< results[i] is jobs[i]'s outcome
  int threads_used = 0;
  double wall_seconds = 0.0;      ///< whole batch, end to end
  double jobs_per_second = 0.0;   ///< batch throughput
};

class JobRunner {
 public:
  explicit JobRunner(JobRunnerOptions opt = {});

  /// The pool size run() will use for a batch of at least that many jobs.
  int threads() const { return threads_; }

  /// Executes the batch. `networks` is the table jobs index into; every
  /// entry must be non-null, frozen, and unchanged for the duration of the
  /// call. A job that throws (infeasible configuration, bad network index
  /// caught up front) yields ok == false with the error message — it never
  /// takes down the batch.
  BatchResult run(const std::vector<const SizingNetwork*>& networks,
                  const std::vector<SizingJob>& jobs) const;

  /// Entries currently held by the per-network Dmin/min-area cache. The
  /// cache persists across run() calls keyed by SizingNetwork::serial(),
  /// so callers that submit many batches over the *same frozen networks* —
  /// lock-step calibration, repeated sweeps — don't pay a full STA per
  /// network per batch, and is LRU-bounded by
  /// JobRunnerOptions::context_cache_limit so workloads that freeze
  /// unbounded networks (streaming, sharded reconciliation) don't leak
  /// entries. (Exposed for the eviction property tests.)
  std::size_t info_cache_size() const { return info_cache_.size(); }
  std::int64_t info_cache_evictions() const {
    return info_cache_.evictions();
  }

 private:
  JobRunnerOptions opt_;
  int threads_ = 1;
  mutable NetInfoCache info_cache_;
};

/// The batch inner-thread core-budget policy (see JobRunnerOptions::
/// inner_threads): resolved per-job widths for a whole batch — explicit
/// per-job requests win and are charged against the pool first, the
/// remaining jobs get one core each, leftover pool capacity is
/// round-robined onto the jobs with the largest networks, and a
/// default/MFT_INNER_THREADS fallback overrides the policy entirely.
/// A pure function of the batch; exposed so streaming callers that do
/// have the whole job list up front (mft_cli --streaming, bench_engine's
/// streaming arm) can stamp the same widths the batch wrapper would.
std::vector<int> resolve_batch_inner_threads(
    const std::vector<const SizingNetwork*>& networks,
    const std::vector<SizingJob>& jobs, int pool_threads,
    int default_inner_threads);

/// Writes a batch to `path` as a JSON object ({"threads", "wall_seconds",
/// "jobs_per_second", "jobs": [...]}) for cross-PR perf diffing, in the
/// same spirit as the BENCH_*.json files. Returns false on I/O failure.
bool write_batch_json(const std::string& path, const BatchResult& batch);

}  // namespace mft
