// Engine layer, batch execution: a JobRunner owns a fixed pool of worker
// threads and executes a batch of independent SizingJobs over a shared
// read-only network table.
//
// Design:
//  - Work stealing is a single atomic job cursor; each worker pulls the
//    next unstarted job, so the batch load-balances regardless of per-job
//    cost skew (a c6288 job next to a c17 job is fine).
//  - Every worker keeps one SizingContext per network it has touched and
//    re-enters it across jobs (begin_job() resets per-job instrumentation;
//    the cached LP/flow/STA state is the point of the reuse).
//  - Results are collected *ordered by job index* into a preallocated
//    vector — no ordering dependence on scheduling — and each job's seed is
//    derived deterministically from the base seed and the job index, so a
//    batch is bit-reproducible at any thread count (asserted by
//    tests/engine_test.cc).
//  - An optional progress callback fires after every job completion,
//    serialized under a mutex.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "engine/job.h"

namespace mft {

struct JobRunnerOptions {
  /// Worker threads; 0 picks std::thread::hardware_concurrency() (min 1).
  /// The pool never exceeds the batch size; pool capacity beyond the batch
  /// size is handed to the jobs' inner loops (see inner_threads).
  int threads = 0;
  /// Default inner-loop (level-parallel STA / W-phase) threads for jobs
  /// that leave SizingJob::inner_threads at 0: > 0 forces that count; 0
  /// consults the MFT_INNER_THREADS environment variable (ops/CI knob) and
  /// otherwise applies the core-budget policy — explicit per-job requests
  /// are charged against the pool first, the remaining jobs get one core
  /// each, and whatever capacity is still left is round-robined onto the
  /// jobs with the largest networks. Inner parallelism never changes
  /// results (bit-identical).
  int inner_threads = 0;
  /// Base of the deterministic per-job seed derivation.
  std::uint64_t base_seed = 0x9e3779b97f4a7c15ull;
  /// Called after each job completes with (result, completed, total).
  /// Serialized: at most one invocation runs at a time, but the calling
  /// thread varies and completion order is nondeterministic.
  std::function<void(const JobResult&, int completed, int total)> progress;
};

struct BatchResult {
  std::vector<JobResult> results;  ///< results[i] is jobs[i]'s outcome
  int threads_used = 0;
  double wall_seconds = 0.0;      ///< whole batch, end to end
  double jobs_per_second = 0.0;   ///< batch throughput
};

class JobRunner {
 public:
  explicit JobRunner(JobRunnerOptions opt = {});

  /// The pool size run() will use for a batch of at least that many jobs.
  int threads() const { return threads_; }

  /// Executes the batch. `networks` is the table jobs index into; every
  /// entry must be non-null, frozen, and unchanged for the duration of the
  /// call. A job that throws (infeasible configuration, bad network index
  /// caught up front) yields ok == false with the error message — it never
  /// takes down the batch.
  BatchResult run(const std::vector<const SizingNetwork*>& networks,
                  const std::vector<SizingJob>& jobs) const;

 private:
  /// Per-network facts every job on that network shares (minimum-sized
  /// delay and area). Cached across run() calls keyed by
  /// SizingNetwork::serial(), so callers that submit many batches over
  /// the *same frozen networks* — lock-step calibration, repeated sweeps —
  /// don't pay a full STA per network per batch. (Shard reconciliation
  /// rebuilds dirty shard networks with fresh serials, so those batches
  /// miss by design.) A handful of doubles per distinct network —
  /// unbounded growth only matters for workloads that freeze unbounded
  /// networks (the streaming-API eviction item).
  struct NetInfo {
    double dmin = 0.0;
    double min_area = 0.0;
  };
  JobRunnerOptions opt_;
  int threads_ = 1;
  mutable std::mutex info_mu_;
  mutable std::unordered_map<std::uint64_t, NetInfo> info_cache_;
};

/// Writes a batch to `path` as a JSON object ({"threads", "wall_seconds",
/// "jobs_per_second", "jobs": [...]}) for cross-PR perf diffing, in the
/// same spirit as the BENCH_*.json files. Returns false on I/O failure.
bool write_batch_json(const std::string& path, const BatchResult& batch);

}  // namespace mft
