// Engine layer, job types: one SizingJob is one independent sizing request
// (network × delay target × optimizer options) and one JobResult is its
// complete outcome, including per-job instrumentation. Batch jobs
// reference their network by index into the batch's shared read-only
// network table; streaming submissions (engine/stream.h) pass the network
// directly and leave `network` unused. Either way the networks are frozen
// before execution and never mutated, which is what makes fanning jobs
// out across threads safe.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sizing/context.h"
#include "sizing/minflotransit.h"
#include "sizing/pass.h"
#include "util/status.h"

namespace mft {

struct SizingJob {
  /// Index into the network table handed to JobRunner::run(). Unused by
  /// StreamingRunner::submit, which takes the network directly.
  int network = 0;
  /// Inner-loop threads for this job's level-parallel STA and W-phase
  /// sweeps. 1 = sequential inner loop; 0 = let the runner decide
  /// (JobRunnerOptions::inner_threads, else the core-budget policy: batch
  /// width is served first and leftover pool capacity goes to the jobs
  /// with the largest networks). Results are bit-identical at any value.
  int inner_threads = 0;
  /// Delay target as a fraction of the network's minimum-sized delay Dmin.
  double target_ratio = 0.6;
  /// Absolute delay target; when > 0 it overrides target_ratio (used by
  /// benches whose targets are calibrated rather than ratio-derived).
  double target_delay = 0.0;
  /// Full optimizer configuration (TILOS bump, D-phase β/solver, stopping).
  MinflotransitOptions options;
  /// Free-form tag echoed into the result and the JSON emission.
  std::string label;
  /// Deterministic per-job seed; 0 means "derive from the runner's base
  /// seed and the job index" (splitmix64), so a batch is reproducible
  /// regardless of thread count or scheduling order.
  std::uint64_t seed = 0;
  /// Scheduling priority for the streaming dispatcher: higher-priority
  /// jobs are dispatched first; ties break on earlier effective deadline,
  /// then on ticket (submission order), so equal-priority work stays FIFO
  /// and per-ticket results never depend on what else is queued. The
  /// default 0 reproduces the plain FIFO engine exactly. Ignored by
  /// position in the batch API (results there are index-ordered anyway).
  int priority = 0;
  /// Shard metadata (sizing/shard.h): which shard of a partitioned solve
  /// this job is, and which reconciliation round submitted it. -1/0 for
  /// ordinary (non-sharded) jobs. Echoed into the result and the batch
  /// JSON; the runner itself treats sharded jobs like any other job.
  int shard = -1;
  int shard_round = 0;
  /// Wall-clock deadline, measured from submission; 0 = none. An expired
  /// job stops at its next checkpoint and returns ok == true with
  /// degraded == true when a feasible best-so-far iterate exists (the
  /// MINFLOTRANSIT loop improves monotonically from the TILOS seed), else
  /// ok == false with status kDeadlineExpired.
  double deadline_seconds = 0.0;
  /// Virtual-step budget (pass invocations + TILOS bumps + W-phase
  /// sweeps); 0 = none. Same degradation contract as the deadline but
  /// deterministic — tests pin exact results without touching the clock.
  std::int64_t max_steps = 0;
};

struct JobResult {
  /// Batch index of the job, or its JobTicket on the streaming path.
  int job = -1;
  std::string label;
  bool ok = false;      ///< false => `error` describes the failure
  std::string error;
  /// Structured outcome code. kOk for clean successes; a degraded success
  /// carries the budget that tripped (kDeadlineExpired / kStepBudget);
  /// failures carry the taxonomy code matching `error`.
  EngineStatus status = EngineStatus::kOk;
  /// True when a budget tripped mid-solve and the result is the feasible
  /// best-so-far iterate rather than the converged solution (ok stays
  /// true; `status` says which budget).
  bool degraded = false;

  double dmin = 0.0;      ///< minimum-sized delay of the job's network
  double min_area = 0.0;  ///< minimum-sized area of the job's network
  double target = 0.0;    ///< resolved absolute delay target
  std::uint64_t seed = 0; ///< resolved per-job seed

  MinflotransitResult result;  ///< TILOS seed + refined solution
  double wall_seconds = 0.0;   ///< this job alone, on its worker
  /// Seconds the job sat between submission and dispatch (worker pop, or
  /// the moment it was plucked/shed). Measured on the runner's clock, so a
  /// fake clock in tests makes it deterministic.
  double queue_seconds = 0.0;
  int priority = 0;            ///< SizingJob::priority, echoed
  /// Attempts this outcome consumed (1 = ran once, no retry). The retry
  /// policy (JobRunnerOptions::retry) re-enqueues transient failures under
  /// the same ticket and seed, so a retried success is bit-identical to
  /// what a fault-free run would have produced.
  int attempts = 1;
  /// Total backoff seconds scheduled across this job's retries
  /// (deterministic; see util/backoff.h).
  double backoff_seconds = 0.0;
  int thread = -1;             ///< worker that ran it (informational)
  int inner_threads = 1;       ///< resolved inner-loop thread count
  int shard = -1;              ///< SizingJob::shard, echoed
  int shard_round = 0;         ///< SizingJob::shard_round, echoed
  /// True when the job ran with FP-reassociated delay folds
  /// (JobRunnerOptions::fast_math). Echoed into the batch JSON so emitted
  /// numbers are never silently non-reproducible.
  bool fast_math = false;
  ContextStats stats;          ///< per-job STA/flow instrumentation
  /// Per-pass instrumentation of the job's pipeline run (invocations, wall
  /// seconds, W-phase sweeps), in pipeline order.
  std::vector<PassStats> pass_stats;
};

}  // namespace mft
