#include "engine/stream.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <stdexcept>
#include <utility>

#include "sizing/pass.h"
#include "sizing/tilos.h"
#include "util/parallel.h"
#include "util/stopwatch.h"

namespace mft {

std::uint64_t derive_job_seed(std::uint64_t base, std::uint64_t index) {
  // splitmix64: the standard 64-bit mix used to derive independent
  // per-job seeds from (base, index) without correlation between
  // neighbors.
  std::uint64_t z = base + (index + 1) * 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

int resolve_pool_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

int env_inner_threads() {
  if (const char* env = std::getenv("MFT_INNER_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    MFT_CHECK_MSG(end != env && *end == '\0' && v >= 0,
                  "bad MFT_INNER_THREADS value '" << env << "'");
    if (v > 0) return static_cast<int>(v);
  }
  return 0;
}

namespace {

/// One job, start to finish, on the worker's context. Any exception
/// (infeasible configuration, a failed MFT_CHECK) is captured into
/// out.error/out.status — a job never takes down the runner. The job's
/// seed must already be resolved (submit/run do that deterministically).
void execute_job(const SizingJob& job, JobTicket ticket, double dmin,
                 double min_area, SizingContext& ctx, ThreadArena* arena,
                 AbortToken* token, bool fast_math, JobResult& out) {
  out.job = static_cast<int>(ticket);
  out.label = job.label;
  out.dmin = dmin;
  out.min_area = min_area;
  out.target =
      job.target_delay > 0.0 ? job.target_delay : job.target_ratio * dmin;
  out.seed = job.seed;
  out.priority = job.priority;
  out.inner_threads = arena != nullptr ? arena->threads() : 1;
  out.shard = job.shard;
  out.shard_round = job.shard_round;
  out.fast_math = fast_math;
  Stopwatch sw;
  try {
    MFT_FAULT_POINT("stream.execute");
    ctx.begin_job();
    ctx.set_arena(arena);
    ctx.set_abort(token);
    // Per-job, not sticky: a pooled context's previous job may have run in
    // the other delay mode; the scratches force a full recompute on a flip.
    ctx.set_fast_math(fast_math);
    // Thread the resolved per-job seed into the pipeline so a stochastic
    // pass (none in the default pipeline) is reproducible at any thread
    // count. Running the pipeline directly (instead of through the
    // run_minflotransit wrapper) surfaces the per-pass stats into the
    // result and the batch JSON.
    MinflotransitOptions options = job.options;
    options.seed = out.seed;
    const Pipeline pipeline = make_minflotransit_pipeline(options);
    PipelineResult pr = pipeline.run(ctx, out.target, options.seed);
    out.result = to_minflotransit_result(ctx, pr);
    out.result.total_seconds = pr.total_seconds;
    out.pass_stats = std::move(pr.pass_stats);
    out.stats = ctx.stats();
    switch (pr.state.abort_status) {
      case EngineStatus::kOk:
        out.ok = true;
        break;
      case EngineStatus::kCanceled:
        out.status = EngineStatus::kCanceled;
        out.error = "canceled";
        break;
      default:
        // A budget tripped (deadline or step cap). The refinement loop
        // improves monotonically from the TILOS seed, so whenever the
        // target was ever met, best_sizes is a feasible solution worth
        // returning: ok with the degraded flag. Before that point there
        // is nothing feasible to degrade to.
        out.status = pr.state.abort_status;
        if (pr.state.met_target) {
          out.ok = true;
          out.degraded = true;
        } else {
          out.error = std::string(to_string(out.status)) +
                      " before a feasible iterate was found";
        }
        break;
    }
  } catch (const EngineError& e) {
    out.error = e.what();
    out.status = e.status();
  } catch (const std::exception& e) {
    out.error = e.what();
    out.status = EngineStatus::kInternal;
  }
  // The context is pooled and outlives this job; never leave it pointing
  // at a token about to be destroyed.
  ctx.set_abort(nullptr);
  out.wall_seconds = sw.seconds();
}

}  // namespace

NetInfo NetInfoCache::get_or_compute(const SizingNetwork& net) {
  const std::uint64_t serial = net.serial();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (const NetInfo* hit = cache_.find(serial)) return *hit;
  }
  NetInfo info;
  info.dmin = min_sized_delay(net);
  info.min_area = net.area(net.min_sizes());
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.insert(serial, info);
}

// ---------------------------------------------------------------------------
// StreamingRunner
// ---------------------------------------------------------------------------

StreamingRunner::StreamingRunner(JobRunnerOptions opt,
                                 NetInfoCache* shared_info)
    : opt_(std::move(opt)),
      own_info_(opt_.context_cache_limit),
      info_(shared_info != nullptr ? shared_info : &own_info_) {
  if (opt_.clock) {
    now_ = opt_.clock;
  } else {
    // Default runner clock: seconds since construction on steady_clock.
    // Only differences are used, so the epoch is irrelevant.
    auto epoch = std::make_shared<Stopwatch>();
    now_ = [epoch] { return epoch->seconds(); };
  }
  threads_ = resolve_pool_threads(opt_.threads);
  default_inner_ = opt_.inner_threads > 0 ? opt_.inner_threads
                                          : std::max(1, env_inner_threads());
  {
    std::lock_guard<std::mutex> lock(workers_mu_);
    workers_.reserve(static_cast<std::size_t>(threads_));
    slots_.reserve(static_cast<std::size_t>(threads_));
    for (int w = 0; w < threads_; ++w) spawn_worker_locked();
  }
  // The watchdog is opt-in: without a hang_timeout there is no supervisor
  // thread at all, and the runner is byte-for-byte the pre-watchdog engine.
  if (opt_.hang_timeout > 0)
    watchdog_ = std::thread([this] { watchdog_main(); });
}

void StreamingRunner::spawn_worker_locked() {
  slots_.push_back(std::make_unique<WorkerSlot>());
  WorkerSlot* slot = slots_.back().get();
  const int id = next_worker_id_++;
  workers_.emplace_back([this, id, slot] { worker_main(id, slot); });
}

StreamingRunner::~StreamingRunner() { shutdown(ShutdownMode::kDrain); }

JobTicket StreamingRunner::submit(
    const SizingNetwork& net, SizingJob job,
    std::function<void(const JobResult&)> on_complete, const NetInfo* info) {
  return submit_item(net, std::move(job), std::move(on_complete), info,
                     /*retain=*/true);
}

JobTicket StreamingRunner::submit_detached(
    const SizingNetwork& net, SizingJob job,
    std::function<void(const JobResult&)> on_complete) {
  MFT_CHECK_MSG(on_complete != nullptr,
                "submit_detached needs a completion callback — a detached "
                "result is delivered nowhere else");
  return submit_item(net, std::move(job), std::move(on_complete), nullptr,
                     /*retain=*/false);
}

JobTicket StreamingRunner::submit_item(
    const SizingNetwork& net, SizingJob job,
    std::function<void(const JobResult&)> on_complete, const NetInfo* info,
    bool retain) {
  MFT_CHECK(net.frozen());
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_)
    throw std::runtime_error("StreamingRunner::submit after shutdown");
  Item item;
  item.ticket = next_ticket_++;
  item.net = &net;
  item.job = std::move(job);
  if (item.job.seed == 0)
    item.job.seed = derive_job_seed(opt_.base_seed, item.ticket);
  item.on_complete = std::move(on_complete);
  if (info != nullptr) {
    item.info = *info;
    item.has_info = true;
  }
  item.retain = retain;
  // The token is born (and any deadline starts ticking) at submission, so
  // queue time counts against the deadline — the service-level meaning.
  item.token = std::make_shared<AbortToken>();
  if (item.job.deadline_seconds > 0)
    item.token->arm_deadline(item.job.deadline_seconds);
  if (item.job.max_steps > 0) item.token->arm_steps(item.job.max_steps);
  // Dispatch key, fixed at submission: the effective deadline is absolute
  // on the runner's clock (no deadline = +inf sorts last among equal
  // priorities before the ticket tiebreak), so the scheduler and the shed
  // decision agree on one instant per job.
  item.submit_at = now_();
  item.key.priority = item.job.priority;
  item.key.ticket = item.ticket;
  if (item.job.deadline_seconds > 0)
    item.key.deadline_at = item.submit_at + item.job.deadline_seconds;
  tokens_.emplace(item.ticket, item.token);
  outstanding_.insert(item.ticket);
  const JobTicket t = item.ticket;
  // Pushed under mu_ so queue order == ticket order even with concurrent
  // submitters, and so a racing shutdown() can never close the queue
  // between the shutdown_ check and the push. (mu_ -> queue mutex is the
  // one nesting order used anywhere; the queue never calls back out.)
  const bool pushed = queue_.push(std::move(item));
  MFT_CHECK(pushed);
  const std::size_t depth = queue_.size();
  if (depth > queue_peak_) queue_peak_ = depth;
  return t;
}

bool StreamingRunner::cancel(JobTicket t) {
  std::shared_ptr<AbortToken> token;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (t >= next_ticket_)
      throw std::runtime_error(
          "StreamingRunner::cancel on a never-issued ticket");
    if (outstanding_.count(t) == 0) return false;  // already completed
    auto it = tokens_.find(t);
    if (it != tokens_.end()) token = it->second;
  }
  // Still queued? Pluck it so it never reaches a worker and fail it now
  // (callback + collectible result, like any completion).
  Item item;
  if (queue_.remove_one([t](const Item& i) { return i.ticket == t; }, item)) {
    finish(item, stub_result(item, EngineStatus::kCanceled,
                             "canceled before start", now_()));
    return true;
  }
  // In flight (or racing into a worker's hands): interrupt cooperatively.
  // The worker observes the flag at its next checkpoint — or before it
  // starts, if the job was between queue and execute.
  if (token != nullptr) token->request_cancel();
  return true;
}

bool StreamingRunner::poll(JobTicket t) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ready_.count(t) > 0;
}

JobResult StreamingRunner::wait(JobTicket t) {
  std::unique_lock<std::mutex> lock(mu_);
  if (t >= next_ticket_)
    throw std::runtime_error("StreamingRunner::wait on a never-issued ticket");
  done_cv_.wait(lock, [&] {
    return ready_.count(t) > 0 || outstanding_.count(t) == 0;
  });
  auto it = ready_.find(t);
  if (it == ready_.end())
    throw std::runtime_error(
        "StreamingRunner::wait on an already-consumed ticket");
  JobResult out = std::move(it->second);
  ready_.erase(it);
  return out;
}

void StreamingRunner::wait_all() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return outstanding_.empty(); });
}

void StreamingRunner::shutdown(ShutdownMode mode) {
  // Serializes concurrent shutdown() calls (and the destructor): exactly
  // one caller drains/cancels and joins; later callers see the pool
  // already gone and return.
  std::lock_guard<std::mutex> sd(shutdown_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  // Stop the watchdog before joining workers so no replacement appears
  // mid-join. Supervision during drain would be moot anyway: a worker
  // that truly never returns blocks the join below regardless — the
  // process-level answer to that is the daemon journal (kill + replay).
  if (watchdog_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(watchdog_mu_);
      watchdog_stop_ = true;
    }
    watchdog_cv_.notify_all();
    watchdog_.join();
  }
  std::vector<std::thread> pool;
  {
    std::lock_guard<std::mutex> lock(workers_mu_);
    pool.swap(workers_);
  }
  if (pool.empty()) return;
  if (mode == ShutdownMode::kCancel) {
    std::vector<Item> leftover = queue_.close_and_drain();
    for (Item& item : leftover) {
      finish(item, stub_result(item, EngineStatus::kCanceled,
                               "canceled by StreamingRunner shutdown", now_()));
    }
  } else {
    queue_.close();
  }
  // In-flight jobs (already popped) always run to completion; with kDrain
  // the workers also finish everything still queued.
  for (std::thread& th : pool) th.join();
}

bool StreamingRunner::is_shutdown() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shutdown_;
}

StreamStats StreamingRunner::stats() const {
  StreamStats s;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    s = pool_stats_;
  }
  std::lock_guard<std::mutex> lock(mu_);
  s.submitted = next_ticket_;
  s.completed = completed_;
  s.canceled = canceled_;
  s.degraded = degraded_;
  s.shed = shed_;
  s.ready = ready_.size();
  s.queue_depth = queue_.size();
  s.queue_peak = queue_peak_;
  s.queue_wait_seconds = queue_wait_seconds_;
  s.run_seconds = run_seconds_;
  s.retries = retries_;
  s.hang_cancels = hang_cancels_;
  s.hangs = hangs_;
  s.respawns = respawns_;
  s.heartbeat_age_peak = heartbeat_age_peak_;
  return s;
}

JobResult StreamingRunner::stub_result(const Item& item, EngineStatus status,
                                       const std::string& error,
                                       double now) const {
  JobResult out;
  out.job = static_cast<int>(item.ticket);
  out.label = item.job.label;
  out.seed = item.job.seed;
  out.priority = item.job.priority;
  out.shard = item.job.shard;
  out.shard_round = item.job.shard_round;
  out.queue_seconds = now - item.submit_at;
  out.attempts = item.attempt;
  out.backoff_seconds = item.backoff_total;
  out.ok = false;
  out.status = status;
  out.error = error;
  return out;
}

void StreamingRunner::finish(Item& item, JobResult out) {
  deliver(item.ticket, item.retain, item.on_complete, std::move(out));
}

bool StreamingRunner::deliver(
    JobTicket ticket, bool retain,
    const std::function<void(const JobResult&)>& on_complete, JobResult out) {
  {
    // Claim the ticket: the watchdog escalating a hung job and the worker
    // it un-sticks later both funnel through here, and exactly one of
    // them wins — the loser's result is dropped silently.
    std::lock_guard<std::mutex> lock(mu_);
    if (outstanding_.count(ticket) == 0) return false;  // already completed
    if (!claimed_.insert(ticket).second) return false;  // delivery underway
  }
  if (on_complete) {
    // Callbacks are serialized with each other (like the batch progress
    // hook) and fire before the result becomes collectible, so a
    // callback observes its job exactly once and no wait() can consume
    // the result mid-callback.
    std::lock_guard<std::mutex> cb(callback_mu_);
    on_complete(out);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    claimed_.erase(ticket);
    outstanding_.erase(ticket);
    tokens_.erase(ticket);
    inflight_.erase(ticket);
    if (out.status == EngineStatus::kCanceled) ++canceled_;
    if (out.status == EngineStatus::kShed) ++shed_;
    if (out.degraded) ++degraded_;
    queue_wait_seconds_ += out.queue_seconds;
    run_seconds_ += out.wall_seconds;
    // Detached jobs never park a result: the callback above was their
    // delivery, so a long-lived callback-driven runner stays flat.
    if (retain) ready_.emplace(ticket, std::move(out));
    ++completed_;
  }
  done_cv_.notify_all();
  return true;
}

bool StreamingRunner::maybe_retry(Item& item, const JobResult& out) {
  if (out.ok || !retryable_status(out.status)) return false;
  if (item.attempt >= opt_.retry.max_attempts) return false;
  {
    // A ticket someone else already completed (watchdog escalation racing
    // an un-stuck worker) must not re-enter the queue.
    std::lock_guard<std::mutex> lock(mu_);
    if (outstanding_.count(item.ticket) == 0 || claimed_.count(item.ticket))
      return false;
  }
  Item again = item;  // same ticket, same seed: a retried success is
                      // bit-identical to a fault-free run
  again.attempt += 1;
  const double backoff =
      retry_backoff_seconds(opt_.retry, again.job.seed, again.attempt);
  again.backoff_total += backoff;
  again.not_before = backoff > 0 ? now_() + backoff : 0.0;
  if (!queue_.push(std::move(again)))
    return false;  // shutdown closed the queue: the failure stands
  std::lock_guard<std::mutex> lock(mu_);
  inflight_.erase(item.ticket);
  ++retries_;
  return true;
}

void StreamingRunner::worker_main(int worker_id, WorkerSlot* slot) {
  // One inner-loop arena per worker, rebuilt only when the assigned width
  // changes; declared before the pool so it outlives the pooled contexts
  // that point at it (locals destroy in reverse order).
  std::unique_ptr<ThreadArena> arena;
  ContextPool pool(opt_.context_cache_limit);
  Item item;
  // A lost worker — its current job escalated to kHung and a replacement
  // spawned — exits as soon as whatever had it stuck returns.
  while (!slot->lost.load(std::memory_order_acquire) && queue_.pop(item)) {
    // Everything between pop and finish is fenced: an exception outside
    // the job body (net-info STA, context acquisition, arena creation, an
    // armed fault site) becomes a structured kWorkerDied result instead of
    // killing the thread — poll()/wait() on the ticket always complete.
    try {
      MFT_FAULT_POINT("stream.worker");
      // Retry backoff gate: a re-enqueued item carries the instant before
      // which it must not run. Honored here (rather than in the queue) so
      // the scheduler key — and with it every determinism law — is
      // untouched; retries are rare and the backoffs short, so parking
      // the worker is the simple correct trade.
      if (item.not_before > 0) {
        while (now_() < item.not_before &&
               !(item.token != nullptr && item.token->canceled()))
          std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
      const double dispatched_at = now_();
      // Overload shedding: the deadline already passed while the job sat
      // queued, so running it cannot produce a result the caller still
      // wants — fail it now on the runner's clock, before the AbortToken
      // check, so an armed shed wins over the token's real-clock
      // kDeadlineExpired and stays deterministic under a fake clock.
      if (opt_.shed && dispatched_at > item.key.deadline_at) {
        JobResult out = stub_result(item, EngineStatus::kShed,
                                    "shed: deadline expired before dispatch",
                                    dispatched_at);
        out.thread = worker_id;
        finish(item, std::move(out));
        item = Item{};
        continue;
      }
      // Canceled (or deadline-expired) before starting: fail without
      // running. step() is safe here — the worker owns the token now.
      if (item.token != nullptr && item.token->step()) {
        const EngineStatus st = item.token->tripped();
        JobResult out =
            stub_result(item, st, std::string(to_string(st)) + " before start",
                        dispatched_at);
        out.thread = worker_id;
        finish(item, std::move(out));
        item = Item{};
        continue;
      }
      // Publish the heartbeat before the (potentially long) net-info STA:
      // busy = ticket + 1 marks the worker occupied, and the job's token
      // ticks the beat counter at every pass/sweep/bump checkpoint from
      // here on. The watchdog reads (busy, beat) lock-free; a stalled pair
      // past hang_timeout is what triggers supervision.
      MFT_FAULT_POINT("stream.heartbeat");
      {
        std::lock_guard<std::mutex> lock(mu_);
        Inflight& inf = inflight_[item.ticket];
        inf.label = item.job.label;
        inf.seed = item.job.seed;
        inf.priority = item.job.priority;
        inf.shard = item.job.shard;
        inf.shard_round = item.job.shard_round;
        inf.submit_at = item.submit_at;
        inf.queue_seconds = dispatched_at - item.submit_at;
        inf.attempt = item.attempt;
        inf.backoff_total = item.backoff_total;
        inf.retain = item.retain;
        inf.on_complete = item.on_complete;
      }
      if (item.token != nullptr) item.token->attach_heartbeat(&slot->beat);
      slot->beat.fetch_add(1, std::memory_order_relaxed);
      slot->busy.store(item.ticket + 1, std::memory_order_release);
      const NetInfo info =
          item.has_info ? item.info : info_->get_or_compute(*item.net);
      const int inner =
          item.job.inner_threads > 0 ? item.job.inner_threads : default_inner_;
      if (inner > 1 && (!arena || arena->threads() != inner))
        arena = std::make_unique<ThreadArena>(inner);
      JobResult out;
      execute_job(item.job, item.ticket, info.dmin, info.min_area,
                  pool.acquire(*item.net), inner > 1 ? arena.get() : nullptr,
                  item.token.get(), opt_.fast_math, out);
      slot->busy.store(0, std::memory_order_release);
      if (item.token != nullptr) item.token->attach_heartbeat(nullptr);
      out.thread = worker_id;
      out.queue_seconds = dispatched_at - item.submit_at;
      out.attempts = item.attempt;
      out.backoff_seconds = item.backoff_total;
      if (!maybe_retry(item, out)) finish(item, std::move(out));
    } catch (const std::exception& e) {
      slot->busy.store(0, std::memory_order_release);
      if (item.token != nullptr) item.token->attach_heartbeat(nullptr);
      JobResult out = stub_result(
          item, EngineStatus::kWorkerDied,
          std::string("worker died outside the job body: ") + e.what(), now_());
      out.thread = worker_id;
      if (!maybe_retry(item, out)) finish(item, std::move(out));
    }
    item = Item{};  // drop the callback/job before parking on the queue
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  if (pool.peak_size() > pool_stats_.context_peak_per_worker)
    pool_stats_.context_peak_per_worker = pool.peak_size();
  pool_stats_.context_hits += pool.hits();
  pool_stats_.context_misses += pool.misses();
  pool_stats_.context_evictions += pool.evictions();
}

void StreamingRunner::watchdog_main() {
  // Poll on a short real-time cadence but *measure* on the runner's clock
  // (now_), so a fake clock drives every supervision decision
  // deterministically — the cadence only bounds detection latency.
  std::unique_lock<std::mutex> lock(watchdog_mu_);
  while (!watchdog_stop_) {
    watchdog_cv_.wait_for(lock, std::chrono::milliseconds(1));
    if (watchdog_stop_) break;
    lock.unlock();
    watchdog_scan();
    lock.lock();
  }
}

void StreamingRunner::watchdog_scan() {
  const double now = now_();
  std::vector<WorkerSlot*> slots;
  {
    std::lock_guard<std::mutex> lock(workers_mu_);
    slots.reserve(slots_.size());
    for (const std::unique_ptr<WorkerSlot>& s : slots_)
      slots.push_back(s.get());
  }
  for (WorkerSlot* slot : slots) {
    if (slot->lost.load(std::memory_order_acquire)) continue;
    const std::uint64_t busy = slot->busy.load(std::memory_order_acquire);
    const std::int64_t beat = slot->beat.load(std::memory_order_relaxed);
    WatchTrack& track = watch_[slot];
    // Idle, a new ticket, or a fresh beat: healthy — restart the stall
    // measurement from here.
    if (busy == 0 || busy != track.busy || beat != track.beat) {
      track.busy = busy;
      track.beat = beat;
      track.since = now;
      track.canceled_at = -1.0;
      continue;
    }
    const double age = now - track.since;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (age > heartbeat_age_peak_) heartbeat_age_peak_ = age;
    }
    if (age < opt_.hang_timeout) continue;
    const JobTicket ticket = busy - 1;
    // Stage 1: fire the job's AbortToken. A cooperative job cancels at
    // its next checkpoint and the slot goes healthy again on its own.
    if (track.canceled_at < 0) {
      std::shared_ptr<AbortToken> token;
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = tokens_.find(ticket);
        if (it != tokens_.end()) token = it->second;
        ++hang_cancels_;
      }
      if (token != nullptr) token->request_cancel();
      track.canceled_at = now;
      continue;
    }
    if (now - track.canceled_at < opt_.hang_grace) continue;
    // Stage 2: the token went unhonored through the grace — a true hang.
    // Complete the ticket with a structured kHung result from the
    // dispatch snapshot (the stuck worker's stack is untouchable), mark
    // the worker lost, and spawn a replacement so capacity holds.
    Inflight info;
    bool have = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = inflight_.find(ticket);
      if (it != inflight_.end()) {
        info = it->second;
        have = true;
      }
    }
    if (!have) {
      watch_.erase(slot);
      continue;
    }
    JobResult out;
    out.job = static_cast<int>(ticket);
    out.label = info.label;
    out.seed = info.seed;
    out.priority = info.priority;
    out.shard = info.shard;
    out.shard_round = info.shard_round;
    out.queue_seconds = info.queue_seconds;
    out.wall_seconds = now - (info.submit_at + info.queue_seconds);
    out.attempts = info.attempt;
    out.backoff_seconds = info.backoff_total;
    out.ok = false;
    out.status = EngineStatus::kHung;
    out.error =
        "hung: heartbeat silent past hang_timeout and the abort token was "
        "not honored within the grace period";
    if (deliver(ticket, info.retain, info.on_complete, std::move(out))) {
      slot->lost.store(true, std::memory_order_release);
      bool respawn = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++hangs_;
        if (!shutdown_) respawn = true;
      }
      if (respawn) {
        {
          std::lock_guard<std::mutex> lock(workers_mu_);
          spawn_worker_locked();
        }
        std::lock_guard<std::mutex> lock(mu_);
        ++respawns_;
      }
    }
    watch_.erase(slot);
  }
}

}  // namespace mft
