#include "engine/daemon.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <stdexcept>
#include <utility>

#include "gen/blocks.h"
#include "gen/iscas_analog.h"
#include "gen/tiled.h"
#include "util/check.h"
#include "util/fault.h"
#include "util/str.h"

namespace mft {

namespace {

// ---------------------------------------------------------------------------
// Flat-object JSON (the protocol subset)
// ---------------------------------------------------------------------------
//
// Requests are one flat JSON object per line — string/number/bool/null
// values only, no nesting. A dedicated ~100-line parser keeps the daemon
// dependency-free and makes "malformed" a precise, testable notion: any
// deviation is a parse error carried back as kInvalidInput, never an
// aborted daemon.

struct JsonVal {
  enum Kind { kString, kNumber, kBool, kNull } kind = kNull;
  std::string str;
  double num = 0.0;
  bool b = false;
};

class FlatJsonParser {
 public:
  explicit FlatJsonParser(const std::string& s) : s_(s) {}

  bool parse(std::map<std::string, JsonVal>& out, std::string& err) {
    skip_ws();
    if (!eat('{')) return fail(err, "expected '{'");
    skip_ws();
    if (eat('}')) return finish(err);
    while (true) {
      skip_ws();
      JsonVal key;
      if (!parse_string(key.str)) return fail(err, "expected string key");
      skip_ws();
      if (!eat(':')) return fail(err, "expected ':'");
      skip_ws();
      JsonVal val;
      if (!parse_value(val)) return fail(err, "bad value");
      out[key.str] = std::move(val);
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) return finish(err);
      return fail(err, "expected ',' or '}'");
    }
  }

 private:
  bool finish(std::string& err) {
    skip_ws();
    if (pos_ != s_.size()) return fail(err, "trailing characters");
    return true;
  }

  bool fail(std::string& err, const char* what) {
    err = strf("%s at byte %zu", what, pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  bool eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_string(std::string& out) {
    if (!eat('"')) return false;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) return false;
      const char e = s_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return false;
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              cp |= static_cast<unsigned>(h - 'A' + 10);
            else
              return false;
          }
          // Protocol strings are names and tags; BMP code points encoded
          // as UTF-8 are all the daemon ever needs to round-trip.
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool parse_value(JsonVal& out) {
    if (pos_ < s_.size() && s_[pos_] == '"') {
      out.kind = JsonVal::kString;
      return parse_string(out.str);
    }
    if (s_.compare(pos_, 4, "true") == 0) {
      out.kind = JsonVal::kBool;
      out.b = true;
      pos_ += 4;
      return true;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      out.kind = JsonVal::kBool;
      out.b = false;
      pos_ += 5;
      return true;
    }
    if (s_.compare(pos_, 4, "null") == 0) {
      out.kind = JsonVal::kNull;
      pos_ += 4;
      return true;
    }
    const char* start = s_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) return false;
    out.kind = JsonVal::kNumber;
    out.num = v;
    pos_ += static_cast<std::size_t>(end - start);
    return true;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

using JsonObj = std::map<std::string, JsonVal>;

std::string get_string(const JsonObj& obj, const char* key,
                       const std::string& fallback = {}) {
  auto it = obj.find(key);
  if (it == obj.end() || it->second.kind != JsonVal::kString) return fallback;
  return it->second.str;
}

double get_number(const JsonObj& obj, const char* key, double fallback,
                  bool* present = nullptr) {
  auto it = obj.find(key);
  if (it == obj.end() || it->second.kind != JsonVal::kNumber) {
    if (present != nullptr) *present = false;
    return fallback;
  }
  if (present != nullptr) *present = true;
  return it->second.num;
}

void json_escape(std::string& dst, const std::string& s) {
  char buf[8];
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      dst.push_back('\\');
      dst.push_back(c);
    } else if (c == '\n') {
      dst += "\\n";
    } else if (c == '\t') {
      dst += "\\t";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      dst += buf;
    } else {
      dst.push_back(c);
    }
  }
}

/// Incremental JSON-object line builder for responses.
class JsonLine {
 public:
  JsonLine& str(const char* key, const std::string& v) {
    open(key);
    out_.push_back('"');
    json_escape(out_, v);
    out_.push_back('"');
    return *this;
  }
  JsonLine& num(const char* key, double v) {
    open(key);
    out_ += strf("%.17g", v);
    return *this;
  }
  JsonLine& integer(const char* key, long long v) {
    open(key);
    out_ += strf("%lld", v);
    return *this;
  }
  JsonLine& uinteger(const char* key, unsigned long long v) {
    open(key);
    out_ += strf("%llu", v);
    return *this;
  }
  JsonLine& boolean(const char* key, bool v) {
    open(key);
    out_ += v ? "true" : "false";
    return *this;
  }
  std::string done() {
    out_.push_back('}');
    return std::move(out_);
  }

 private:
  void open(const char* key) {
    out_.push_back(out_.empty() ? '{' : ',');
    out_.push_back('"');
    out_ += key;
    out_ += "\":";
  }
  std::string out_;
};

/// FNV-1a over the solution vector's IEEE-754 bit patterns: two results
/// hash equal iff their sizes are bit-identical, which is how the protocol
/// exposes the engine's determinism contract without shipping the vector.
std::uint64_t sizes_hash(const std::vector<double>& sizes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const double d : sizes) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &d, sizeof bits);
    for (int i = 0; i < 8; ++i) {
      h ^= (bits >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return h;
}

bool parse_tiled(const std::string& name, TiledDatapathParams& p) {
  int lanes = 0, stages = 0, bits = 0;
  char tail = '\0';
  if (std::sscanf(name.c_str(), "tiled%dx%dx%d%c", &lanes, &stages, &bits,
                  &tail) != 3 ||
      lanes < 1 || stages < 1 || bits < 1)
    return false;
  p.lanes = lanes;
  p.stages = stages;
  p.bits = bits;
  return true;
}

/// Shared by live submits and journal replay: both carry the same flat
/// key set, so a journaled submit record round-trips through this exactly
/// like the original request line did.
SizingJob job_from_obj(const JsonObj& obj, const std::string& circuit) {
  SizingJob job;
  job.label = get_string(obj, "label", circuit);
  job.target_ratio = get_number(obj, "ratio", 0.6);
  job.target_delay = get_number(obj, "target", 0.0);
  job.priority = static_cast<int>(get_number(obj, "priority", 0.0));
  job.deadline_seconds = get_number(obj, "deadline", 0.0);
  job.max_steps =
      static_cast<std::int64_t>(get_number(obj, "max_steps", 0.0));
  job.inner_threads =
      static_cast<int>(get_number(obj, "inner_threads", 0.0));
  job.seed = static_cast<std::uint64_t>(get_number(obj, "seed", 0.0));
  return job;
}

Netlist build_circuit(const std::string& name) {
  if (name == "c17") return make_c17();
  if (name.rfind("adder", 0) == 0) {
    const int bits = std::atoi(name.c_str() + 5);
    if (bits >= 1) return make_ripple_adder(bits);
  }
  TiledDatapathParams tp;
  if (parse_tiled(name, tp)) return make_tiled_datapath(tp);
  try {
    return make_iscas_analog(name);
  } catch (const std::exception& e) {
    throw EngineError(EngineStatus::kInvalidInput,
                      strf("unknown circuit '%s': %s", name.c_str(), e.what()));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// SizingDaemon
// ---------------------------------------------------------------------------

struct SizingDaemon::ParsedSubmit {
  std::string id;
  std::string circuit;
  SizingJob job;
};

namespace {

/// The write-ahead submit record: everything needed to re-run the request
/// after a crash, seed included (already resolved by the caller, so the
/// replayed solve is pinned to the same pseudo-random stream).
std::string submit_record(std::uint64_t rid, const std::string& id,
                          const std::string& circuit, const SizingJob& job) {
  JsonLine rec;
  rec.str("type", "submit").uinteger("rid", rid).str("circuit", circuit);
  if (!id.empty()) rec.str("id", id);
  return rec.str("label", job.label)
      .num("ratio", job.target_ratio)
      .num("target", job.target_delay)
      .integer("priority", job.priority)
      .num("deadline", job.deadline_seconds)
      .integer("max_steps", job.max_steps)
      .integer("inner_threads", job.inner_threads)
      .uinteger("seed", job.seed)
      .done();
}

}  // namespace

SizingDaemon::SizingDaemon(DaemonOptions opt, Emit emit)
    : opt_(std::move(opt)), emit_(std::move(emit)) {
  MFT_CHECK_MSG(emit_ != nullptr, "SizingDaemon needs an emit callback");
  JobRunnerOptions engine = opt_.engine;
  engine.shed = opt_.shed;
  runner_ = std::make_unique<StreamingRunner>(std::move(engine));
  if (!opt_.journal_path.empty()) recover_from_journal();
}

SizingDaemon::~SizingDaemon() {
  drain();
  runner_->shutdown(StreamingRunner::ShutdownMode::kDrain);
}

bool SizingDaemon::shutdown_requested() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shutdown_;
}

void SizingDaemon::drain() { runner_->wait_all(); }

void SizingDaemon::handle_line(const std::string& line) {
  // Blank lines are keep-alive noise, not requests; everything else gets
  // exactly one terminal response, whatever goes wrong below.
  if (trim(line).empty()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++requests_;
  }
  std::string id;
  try {
    MFT_FAULT_POINT("daemon.parse");
    JsonObj obj;
    std::string err;
    if (!FlatJsonParser(line).parse(obj, err))
      throw EngineError(EngineStatus::kInvalidInput,
                        "malformed request: " + err);
    id = get_string(obj, "id");
    const std::string op = get_string(obj, "op");
    if (op == "submit") {
      ParsedSubmit req;
      req.id = id;
      req.circuit = get_string(obj, "circuit");
      if (req.circuit.empty())
        throw EngineError(EngineStatus::kInvalidInput,
                          "submit needs a \"circuit\"");
      req.job = job_from_obj(obj, req.circuit);
      do_submit(req);
    } else if (op == "cancel") {
      bool present = false;
      const double t = get_number(obj, "ticket", -1.0, &present);
      if (!present || t < 0)
        throw EngineError(EngineStatus::kInvalidInput,
                          "cancel needs a non-negative \"ticket\"");
      bool ok = false;
      std::string note;
      try {
        ok = runner_->cancel(static_cast<JobTicket>(t));
        if (!ok) note = "already completed";
      } catch (const std::exception& e) {
        note = e.what();  // never-issued ticket
      }
      std::lock_guard<std::mutex> lock(mu_);
      JsonLine out;
      out.str("event", "cancel");
      if (!id.empty()) out.str("id", id);
      out.uinteger("ticket", static_cast<unsigned long long>(t))
          .boolean("ok", ok);
      if (!note.empty()) out.str("error", note);
      emit_locked(out.done());
    } else if (op == "stats") {
      std::lock_guard<std::mutex> lock(mu_);
      const DaemonStats s = stats_locked();
      JsonLine out;
      out.str("event", "stats");
      if (!id.empty()) out.str("id", id);
      emit_locked(
          out.uinteger("requests", s.requests)
              .uinteger("admitted", s.admitted)
              .uinteger("rejected", s.rejected)
              .uinteger("invalid", s.invalid)
              .uinteger("results", s.results)
              .uinteger("submitted", s.engine.submitted)
              .uinteger("completed", s.engine.completed)
              .uinteger("canceled", s.engine.canceled)
              .uinteger("degraded", s.engine.degraded)
              .uinteger("shed", s.engine.shed)
              .uinteger("queue_depth",
                        static_cast<unsigned long long>(s.engine.queue_depth))
              .uinteger("queue_peak",
                        static_cast<unsigned long long>(s.engine.queue_peak))
              .num("queue_wait_seconds", s.engine.queue_wait_seconds)
              .num("run_seconds", s.engine.run_seconds)
              .uinteger("retries", s.engine.retries)
              .uinteger("hangs", s.engine.hangs)
              .uinteger("respawns", s.engine.respawns)
              .uinteger("journal_records", s.journal_records)
              .uinteger("journal_fsyncs", s.journal_fsyncs)
              .uinteger("journal_errors", s.journal_errors)
              .uinteger("recovered", s.recovered)
              .num("p50_seconds", s.p50_seconds)
              .num("p99_seconds", s.p99_seconds)
              .integer("workers", runner_->threads())
              .done());
    } else if (op == "shutdown") {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
      emit_locked(JsonLine()
                      .str("event", "shutdown")
                      .uinteger("outstanding", admitted_ - results_)
                      .done());
    } else {
      throw EngineError(
          EngineStatus::kInvalidInput,
          op.empty() ? std::string("request has no \"op\"")
                     : strf("unknown op '%s'", op.c_str()));
    }
  } catch (const EngineError& e) {
    respond_error(id, e.status(), e.what());
  } catch (const std::exception& e) {
    // Includes injected faults at daemon.parse/daemon.accept: a
    // structured internal error, and the daemon keeps serving.
    respond_error(id, EngineStatus::kInternal, e.what());
  }
}

void SizingDaemon::do_submit(const ParsedSubmit& req) {
  // Admission seam (fault-injectable) and circuit resolution (throws
  // kInvalidInput for an unknown name) both run before mu_ is taken —
  // their exceptions unwind to handle_line's respond_error, which locks.
  MFT_FAULT_POINT("daemon.accept");
  const SizingNetwork& net = circuit(req.circuit);
  const std::string id = req.id;
  std::lock_guard<std::mutex> lock(mu_);
  std::string refusal;
  if (shutdown_) {
    refusal = "daemon is shutting down";
  } else {
    const StreamStats es = runner_->stats();
    if (opt_.max_queue_depth > 0 && es.queue_depth >= opt_.max_queue_depth) {
      refusal = strf("queue full: depth %zu at bound %zu", es.queue_depth,
                     opt_.max_queue_depth);
    } else if (opt_.deadline_pressure > 0.0 &&
               req.job.deadline_seconds > 0.0 && ewma_run_seconds_ > 0.0) {
      const double predicted = ewma_run_seconds_ *
                               static_cast<double>(es.queue_depth) /
                               static_cast<double>(runner_->threads());
      if (predicted > req.job.deadline_seconds * opt_.deadline_pressure)
        refusal = strf(
            "deadline pressure: predicted wait %.3gs exceeds deadline %.3gs",
            predicted, req.job.deadline_seconds);
    }
  }
  if (!refusal.empty()) {
    respond_error_locked(id, EngineStatus::kRejected, refusal);
    return;
  }
  // Durability, write-ahead: resolve the seed the engine would pick (so
  // the journaled record pins the exact solve) and fsync the submit
  // record before the engine can see the job. A failed append refuses the
  // submit — accepting work we cannot make durable would silently drop
  // the crash-recovery contract.
  std::uint64_t rid = 0;
  SizingJob job = req.job;
  const bool durable = journal_.is_open();
  if (durable) {
    rid = next_rid_++;
    if (job.seed == 0) job.seed = derive_job_seed(opt_.engine.base_seed, rid);
    try {
      journal_.append(submit_record(rid, id, req.circuit, job));
    } catch (const std::exception& e) {
      ++journal_errors_;
      respond_error_locked(id, EngineStatus::kInternal,
                           strf("journal append failed: %s", e.what()));
      return;
    }
  }
  // Submit while still holding mu_: the result callback also takes mu_,
  // so the "accepted" ack below always precedes the job's result event
  // even if a worker finishes it instantly. (Lock order is daemon mu_ ->
  // runner internals; callbacks take them in the compatible order
  // callback_mu_ -> daemon mu_.)
  const JobTicket t = runner_->submit_detached(
      net, job,
      [this, id, rid](const JobResult& r) { on_result(id, rid, r); });
  ++admitted_;
  JsonLine out;
  out.str("event", "accepted");
  if (!id.empty()) out.str("id", id);
  if (durable) out.uinteger("rid", rid);
  emit_locked(out.uinteger("ticket", t).done());
}

void SizingDaemon::on_result(const std::string& id, std::uint64_t rid,
                             const JobResult& r) {
  std::lock_guard<std::mutex> lock(mu_);
  if (r.wall_seconds > 0.0)
    ewma_run_seconds_ = ewma_run_seconds_ == 0.0
                            ? r.wall_seconds
                            : 0.3 * r.wall_seconds + 0.7 * ewma_run_seconds_;
  latency_.record(r.queue_seconds + r.wall_seconds);
  ++results_;
  const bool durable = journal_.is_open();
  JsonLine out;
  out.str("event", "result");
  if (!id.empty()) out.str("id", id);
  if (durable) out.uinteger("rid", rid);
  out.integer("ticket", r.job)
      .str("status", to_string(r.status))
      .boolean("ok", r.ok)
      .boolean("degraded", r.degraded)
      .str("label", r.label)
      .integer("priority", r.priority)
      .uinteger("seed", r.seed)
      .num("queue_seconds", r.queue_seconds)
      .num("wall_seconds", r.wall_seconds);
  if (r.ok) {
    out.num("area", r.result.area)
        .num("delay", r.result.delay)
        .num("target", r.target)
        .uinteger("sizes_hash", sizes_hash(r.result.sizes));
  } else {
    out.str("error", r.error);
  }
  emit_locked(out.done());
  // Journal the terminal record *after* the event went out: a crash in
  // the gap re-runs and re-emits the request on replay (at-least-once
  // emission), which is the recoverable side of the race — the reverse
  // order could mark a request finished whose result no client ever saw.
  if (durable) {
    JsonLine rec;
    rec.str("type", "result")
        .uinteger("rid", rid)
        .str("status", to_string(r.status))
        .boolean("ok", r.ok);
    if (r.ok) rec.uinteger("sizes_hash", sizes_hash(r.result.sizes));
    journal_append_locked(rec.done());
  }
}

void SizingDaemon::journal_append_locked(const std::string& payload) {
  if (!journal_.is_open()) return;
  try {
    journal_.append(payload);
  } catch (const std::exception&) {
    // A result record that fails to persist re-runs the request on the
    // next replay — redundant work, not lost work. Count it and serve on.
    ++journal_errors_;
  }
}

void SizingDaemon::recover_from_journal() {
  const std::string& path = opt_.journal_path;
  bool torn = false;
  std::vector<std::string> records;
  try {
    records = Journal::replay(path, &torn);
  } catch (const std::exception& e) {
    // Unreadable journal (or an injected fault at "journal.replay"): the
    // daemon still serves — durability resumes with the next append, and
    // the structured replay event tells the operator recovery was lost.
    std::lock_guard<std::mutex> lock(mu_);
    ++journal_errors_;
    journal_.open(path);
    emit_locked(JsonLine()
                    .str("event", "replay")
                    .boolean("ok", false)
                    .str("error", e.what())
                    .done());
    return;
  }
  // A request is unfinished iff its submit record has no matching result
  // record. Records that fail to parse or lack a rid are skipped — the
  // torn-tail contract already bounds damage to the end of the file, so
  // anything unreadable in the middle is best-effort ignored, not fatal.
  std::map<std::uint64_t, JsonObj> pending;  // rid -> parsed submit
  std::uint64_t max_rid = 0, finished = 0;
  bool any_rid = false;
  for (const std::string& rec : records) {
    JsonObj obj;
    std::string err;
    if (!FlatJsonParser(rec).parse(obj, err)) continue;
    bool has_rid = false;
    const auto rid =
        static_cast<std::uint64_t>(get_number(obj, "rid", 0.0, &has_rid));
    if (!has_rid) continue;
    any_rid = true;
    max_rid = std::max(max_rid, rid);
    const std::string type = get_string(obj, "type");
    if (type == "submit") {
      pending[rid] = std::move(obj);
    } else if (type == "result") {
      finished += pending.erase(rid);
    }
  }
  // Compact to exactly the unfinished submits (their re-runs will append
  // fresh result records behind them), then reopen for appending.
  std::vector<std::string> keep;
  keep.reserve(pending.size());
  for (const auto& kv : pending) {
    const std::string circuit = get_string(kv.second, "circuit");
    keep.push_back(submit_record(kv.first, get_string(kv.second, "id"),
                                 circuit, job_from_obj(kv.second, circuit)));
  }
  Journal::rewrite(path, keep);
  {
    std::lock_guard<std::mutex> lock(mu_);
    journal_.open(path);
    next_rid_ = any_rid ? max_rid + 1 : 0;
    emit_locked(JsonLine()
                    .str("event", "replay")
                    .boolean("ok", true)
                    .boolean("torn", torn)
                    .uinteger("records", records.size())
                    .uinteger("finished", finished)
                    .uinteger("recovered", pending.size())
                    .done());
  }
  // Re-admit in rid order, bypassing admission control — these requests
  // were admitted once already; refusing them now would break the
  // every-journaled-request-terminates contract.
  for (const auto& kv : pending) {
    const std::uint64_t rid = kv.first;
    const std::string id = get_string(kv.second, "id");
    const std::string circuit_name = get_string(kv.second, "circuit");
    const SizingJob job = job_from_obj(kv.second, circuit_name);
    try {
      const SizingNetwork& net = circuit(circuit_name);
      std::lock_guard<std::mutex> lock(mu_);
      const JobTicket t = runner_->submit_detached(
          net, job,
          [this, id, rid](const JobResult& r) { on_result(id, rid, r); });
      ++admitted_;
      ++recovered_;
      JsonLine out;
      out.str("event", "accepted");
      if (!id.empty()) out.str("id", id);
      emit_locked(out.uinteger("rid", rid).uinteger("ticket", t).done());
    } catch (const std::exception& e) {
      // Journal from a build that knew circuits this one does not: give
      // the request its terminal response and journal it as finished so
      // it stops replaying.
      std::lock_guard<std::mutex> lock(mu_);
      respond_error_locked(id, EngineStatus::kInternal,
                           strf("replay of rid %llu failed: %s",
                                static_cast<unsigned long long>(rid),
                                e.what()));
      journal_append_locked(JsonLine()
                                .str("type", "result")
                                .uinteger("rid", rid)
                                .str("status", "internal")
                                .boolean("ok", false)
                                .done());
    }
  }
}

void SizingDaemon::respond_error(const std::string& id, EngineStatus status,
                                 const std::string& message) {
  std::lock_guard<std::mutex> lock(mu_);
  respond_error_locked(id, status, message);
}

void SizingDaemon::respond_error_locked(const std::string& id,
                                        EngineStatus status,
                                        const std::string& message) {
  if (status == EngineStatus::kRejected)
    ++rejected_;
  else
    ++invalid_;
  JsonLine out;
  out.str("event", "result");
  if (!id.empty()) out.str("id", id);
  emit_locked(out.integer("ticket", -1)
                  .str("status", to_string(status))
                  .boolean("ok", false)
                  .str("error", message)
                  .done());
}

void SizingDaemon::emit_locked(const std::string& line) { emit_(line); }

const SizingNetwork& SizingDaemon::circuit(const std::string& name) {
  // Only handle_line's thread touches the cache; workers hold pointers
  // into entries but never the map. Entries live for the daemon's
  // lifetime, so queued jobs' network pointers stay valid.
  auto it = circuits_.find(name);
  if (it == circuits_.end()) {
    Netlist nl = build_circuit(name);
    auto lowered =
        std::make_unique<LoweredCircuit>(lower_gate_level(nl, Tech{}));
    it = circuits_.emplace(name, std::move(lowered)).first;
  }
  return it->second->net;
}

DaemonStats SizingDaemon::stats_locked() const {
  DaemonStats s;
  s.requests = requests_;
  s.admitted = admitted_;
  s.rejected = rejected_;
  s.invalid = invalid_;
  s.results = results_;
  s.journal_records = static_cast<std::uint64_t>(journal_.appends());
  s.journal_fsyncs = static_cast<std::uint64_t>(journal_.fsyncs());
  s.journal_errors = journal_errors_;
  s.recovered = recovered_;
  s.p50_seconds = latency_.quantile(0.50);
  s.p99_seconds = latency_.quantile(0.99);
  s.engine = runner_->stats();
  return s;
}

DaemonStats SizingDaemon::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_locked();
}

}  // namespace mft
