#include "engine/daemon.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <stdexcept>
#include <utility>

#include "gen/blocks.h"
#include "gen/iscas_analog.h"
#include "gen/tiled.h"
#include "sizing/resize.h"
#include "util/check.h"
#include "util/fault.h"
#include "util/str.h"

namespace mft {

namespace {

// ---------------------------------------------------------------------------
// Flat-object JSON (the protocol subset)
// ---------------------------------------------------------------------------
//
// Requests are one flat JSON object per line — string/number/bool/null
// values only, no nesting. A dedicated ~100-line parser keeps the daemon
// dependency-free and makes "malformed" a precise, testable notion: any
// deviation is a parse error carried back as kInvalidInput, never an
// aborted daemon.

struct JsonVal {
  enum Kind { kString, kNumber, kBool, kNull } kind = kNull;
  std::string str;
  double num = 0.0;
  bool b = false;
};

class FlatJsonParser {
 public:
  explicit FlatJsonParser(const std::string& s) : s_(s) {}

  bool parse(std::map<std::string, JsonVal>& out, std::string& err) {
    skip_ws();
    if (!eat('{')) return fail(err, "expected '{'");
    skip_ws();
    if (eat('}')) return finish(err);
    while (true) {
      skip_ws();
      JsonVal key;
      if (!parse_string(key.str)) return fail(err, "expected string key");
      skip_ws();
      if (!eat(':')) return fail(err, "expected ':'");
      skip_ws();
      JsonVal val;
      if (!parse_value(val)) return fail(err, "bad value");
      out[key.str] = std::move(val);
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) return finish(err);
      return fail(err, "expected ',' or '}'");
    }
  }

 private:
  bool finish(std::string& err) {
    skip_ws();
    if (pos_ != s_.size()) return fail(err, "trailing characters");
    return true;
  }

  bool fail(std::string& err, const char* what) {
    err = strf("%s at byte %zu", what, pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  bool eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_string(std::string& out) {
    if (!eat('"')) return false;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) return false;
      const char e = s_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return false;
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              cp |= static_cast<unsigned>(h - 'A' + 10);
            else
              return false;
          }
          // Protocol strings are names and tags; BMP code points encoded
          // as UTF-8 are all the daemon ever needs to round-trip.
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool parse_value(JsonVal& out) {
    if (pos_ < s_.size() && s_[pos_] == '"') {
      out.kind = JsonVal::kString;
      return parse_string(out.str);
    }
    if (s_.compare(pos_, 4, "true") == 0) {
      out.kind = JsonVal::kBool;
      out.b = true;
      pos_ += 4;
      return true;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      out.kind = JsonVal::kBool;
      out.b = false;
      pos_ += 5;
      return true;
    }
    if (s_.compare(pos_, 4, "null") == 0) {
      out.kind = JsonVal::kNull;
      pos_ += 4;
      return true;
    }
    const char* start = s_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) return false;
    out.kind = JsonVal::kNumber;
    out.num = v;
    pos_ += static_cast<std::size_t>(end - start);
    return true;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

using JsonObj = std::map<std::string, JsonVal>;

std::string get_string(const JsonObj& obj, const char* key,
                       const std::string& fallback = {}) {
  auto it = obj.find(key);
  if (it == obj.end() || it->second.kind != JsonVal::kString) return fallback;
  return it->second.str;
}

double get_number(const JsonObj& obj, const char* key, double fallback,
                  bool* present = nullptr) {
  auto it = obj.find(key);
  if (it == obj.end() || it->second.kind != JsonVal::kNumber) {
    if (present != nullptr) *present = false;
    return fallback;
  }
  if (present != nullptr) *present = true;
  return it->second.num;
}

/// Truthiness helper: accepts a JSON bool or a non-zero number (clients
/// writing "session":1 mean the same thing as "session":true).
bool get_flag(const JsonObj& obj, const char* key) {
  auto it = obj.find(key);
  if (it == obj.end()) return false;
  if (it->second.kind == JsonVal::kBool) return it->second.b;
  if (it->second.kind == JsonVal::kNumber) return it->second.num != 0.0;
  return false;
}

void json_escape(std::string& dst, const std::string& s) {
  char buf[8];
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      dst.push_back('\\');
      dst.push_back(c);
    } else if (c == '\n') {
      dst += "\\n";
    } else if (c == '\t') {
      dst += "\\t";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      dst += buf;
    } else {
      dst.push_back(c);
    }
  }
}

/// Incremental JSON-object line builder for responses.
class JsonLine {
 public:
  JsonLine& str(const char* key, const std::string& v) {
    open(key);
    out_.push_back('"');
    json_escape(out_, v);
    out_.push_back('"');
    return *this;
  }
  JsonLine& num(const char* key, double v) {
    open(key);
    out_ += strf("%.17g", v);
    return *this;
  }
  JsonLine& integer(const char* key, long long v) {
    open(key);
    out_ += strf("%lld", v);
    return *this;
  }
  JsonLine& uinteger(const char* key, unsigned long long v) {
    open(key);
    out_ += strf("%llu", v);
    return *this;
  }
  JsonLine& boolean(const char* key, bool v) {
    open(key);
    out_ += v ? "true" : "false";
    return *this;
  }
  std::string done() {
    out_.push_back('}');
    return std::move(out_);
  }

 private:
  void open(const char* key) {
    out_.push_back(out_.empty() ? '{' : ',');
    out_.push_back('"');
    out_ += key;
    out_ += "\":";
  }
  std::string out_;
};

/// FNV-1a over the solution vector's IEEE-754 bit patterns: two results
/// hash equal iff their sizes are bit-identical, which is how the protocol
/// exposes the engine's determinism contract without shipping the vector.
std::uint64_t sizes_hash(const std::vector<double>& sizes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const double d : sizes) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &d, sizeof bits);
    for (int i = 0; i < 8; ++i) {
      h ^= (bits >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return h;
}

bool parse_tiled(const std::string& name, TiledDatapathParams& p) {
  int lanes = 0, stages = 0, bits = 0;
  char tail = '\0';
  if (std::sscanf(name.c_str(), "tiled%dx%dx%d%c", &lanes, &stages, &bits,
                  &tail) != 3 ||
      lanes < 1 || stages < 1 || bits < 1)
    return false;
  p.lanes = lanes;
  p.stages = stages;
  p.bits = bits;
  return true;
}

/// Shared by live submits and journal replay: both carry the same flat
/// key set, so a journaled submit record round-trips through this exactly
/// like the original request line did.
SizingJob job_from_obj(const JsonObj& obj, const std::string& circuit) {
  SizingJob job;
  job.label = get_string(obj, "label", circuit);
  job.target_ratio = get_number(obj, "ratio", 0.6);
  job.target_delay = get_number(obj, "target", 0.0);
  job.priority = static_cast<int>(get_number(obj, "priority", 0.0));
  job.deadline_seconds = get_number(obj, "deadline", 0.0);
  job.max_steps =
      static_cast<std::int64_t>(get_number(obj, "max_steps", 0.0));
  job.inner_threads =
      static_cast<int>(get_number(obj, "inner_threads", 0.0));
  job.seed = static_cast<std::uint64_t>(get_number(obj, "seed", 0.0));
  return job;
}

Netlist build_circuit(const std::string& name) {
  if (name == "c17") return make_c17();
  if (name.rfind("adder", 0) == 0) {
    const int bits = std::atoi(name.c_str() + 5);
    if (bits >= 1) return make_ripple_adder(bits);
  }
  TiledDatapathParams tp;
  if (parse_tiled(name, tp)) return make_tiled_datapath(tp);
  try {
    return make_iscas_analog(name);
  } catch (const std::exception& e) {
    throw EngineError(EngineStatus::kInvalidInput,
                      strf("unknown circuit '%s': %s", name.c_str(), e.what()));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// SizingDaemon
// ---------------------------------------------------------------------------

struct SizingDaemon::ParsedSubmit {
  std::string id;
  std::string circuit;
  SizingJob job;
  bool session = false;  ///< keep the sized result live for "resize" ops
};

struct SizingDaemon::ParsedResize {
  std::string id;
  std::uint64_t sid = 0;
  double target = 0.0;  ///< 0 keeps the session's current target
  std::string loads;    ///< "vertex:delta,..." as received (journaled verbatim)
  std::string pins;     ///< "vertex:size,..." (size 0 releases)
};

/// One live ECO session. Map membership and the base_* fields are guarded
/// by the daemon's mu_ (on_result fills them from a worker thread); the
/// ResizeSession itself is only ever touched from the request thread, and
/// only once `ready` was observed under the lock.
struct SizingDaemon::EcoSession {
  std::uint64_t sid = 0;
  std::string circuit;
  std::uint64_t base_rid = 0;  ///< journal rid of the base submit
  bool durable = false;        ///< base submit was journaled
  bool ready = false;   ///< base result landed ok; base_sizes/target valid
  bool failed = false;  ///< base job failed; resizes are refused
  std::vector<double> base_sizes;
  double base_target = 0.0;
  /// Journal rids of this session's records (base + applied resizes);
  /// their live-set entries are dropped when the session is released.
  std::vector<std::uint64_t> rids;
  /// Built lazily at the first resize (request thread only).
  std::unique_ptr<ResizeSession> rs;
};

namespace {

/// The write-ahead submit record: everything needed to re-run the request
/// after a crash, seed included (already resolved by the caller, so the
/// replayed solve is pinned to the same pseudo-random stream).
std::string submit_record(std::uint64_t rid, const std::string& id,
                          const std::string& circuit, const SizingJob& job,
                          std::uint64_t sid) {
  JsonLine rec;
  rec.str("type", "submit").uinteger("rid", rid).str("circuit", circuit);
  if (!id.empty()) rec.str("id", id);
  if (sid != 0) rec.uinteger("session", sid);
  return rec.str("label", job.label)
      .num("ratio", job.target_ratio)
      .num("target", job.target_delay)
      .integer("priority", job.priority)
      .num("deadline", job.deadline_seconds)
      .integer("max_steps", job.max_steps)
      .integer("inner_threads", job.inner_threads)
      .uinteger("seed", job.seed)
      .done();
}

/// The write-ahead resize record: the delta verbatim, so replay re-applies
/// exactly what the client sent.
std::string resize_record(std::uint64_t rid, std::uint64_t sid,
                          const std::string& id, double target,
                          const std::string& loads, const std::string& pins) {
  JsonLine rec;
  rec.str("type", "resize").uinteger("rid", rid).uinteger("session", sid);
  if (!id.empty()) rec.str("id", id);
  return rec.num("target", target).str("loads", loads).str("pins", pins).done();
}

/// Parses the protocol's delta encoding: a comma-separated
/// "vertex:value" list ("12:0.05,33:-0.01"; the flat protocol has no
/// arrays, so deltas ride in strings). Empty input is the empty list.
bool parse_vertex_list(const std::string& s,
                       std::vector<std::pair<NodeId, double>>& out,
                       std::string& err) {
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t end = s.find(',', pos);
    if (end == std::string::npos) end = s.size();
    const std::string item(trim(s.substr(pos, end - pos)));
    pos = end + 1;
    if (item.empty()) continue;
    const std::size_t colon = item.find(':');
    if (colon == std::string::npos || colon == 0) {
      err = strf("bad entry '%s': expected vertex:value", item.c_str());
      return false;
    }
    char* endp = nullptr;
    const long v = std::strtol(item.c_str(), &endp, 10);
    if (endp != item.c_str() + colon || v < 0) {
      err = strf("bad vertex in '%s'", item.c_str());
      return false;
    }
    const char* vstart = item.c_str() + colon + 1;
    const double val = std::strtod(vstart, &endp);
    if (endp == vstart || *endp != '\0') {
      err = strf("bad value in '%s'", item.c_str());
      return false;
    }
    out.emplace_back(static_cast<NodeId>(v), val);
  }
  return true;
}

/// Builds a ResizeDelta from the request's string encodings; throws
/// kInvalidInput on malformed input (before any state is touched).
ResizeDelta delta_from_strings(double target, const std::string& loads,
                               const std::string& pins) {
  std::vector<std::pair<NodeId, double>> lv, pv;
  std::string err;
  if (!parse_vertex_list(loads, lv, err))
    throw EngineError(EngineStatus::kInvalidInput, "bad \"loads\": " + err);
  if (!parse_vertex_list(pins, pv, err))
    throw EngineError(EngineStatus::kInvalidInput, "bad \"pins\": " + err);
  ResizeDelta delta;
  delta.target_delay = target;
  delta.load_edits.reserve(lv.size());
  for (const auto& e : lv)
    delta.load_edits.push_back(ResizeLoadEdit{e.first, e.second});
  delta.pins.reserve(pv.size());
  for (const auto& e : pv) delta.pins.push_back(ResizePin{e.first, e.second});
  return delta;
}

}  // namespace

SizingDaemon::SizingDaemon(DaemonOptions opt, Emit emit)
    : opt_(std::move(opt)), emit_(std::move(emit)) {
  MFT_CHECK_MSG(emit_ != nullptr, "SizingDaemon needs an emit callback");
  JobRunnerOptions engine = opt_.engine;
  engine.shed = opt_.shed;
  runner_ = std::make_unique<StreamingRunner>(std::move(engine));
  if (!opt_.journal_path.empty()) recover_from_journal();
}

SizingDaemon::~SizingDaemon() {
  drain();
  runner_->shutdown(StreamingRunner::ShutdownMode::kDrain);
}

bool SizingDaemon::shutdown_requested() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shutdown_;
}

void SizingDaemon::drain() { runner_->wait_all(); }

void SizingDaemon::handle_line(const std::string& line) {
  // Blank lines are keep-alive noise, not requests; everything else gets
  // exactly one terminal response, whatever goes wrong below.
  if (trim(line).empty()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++requests_;
  }
  std::string id;
  try {
    MFT_FAULT_POINT("daemon.parse");
    JsonObj obj;
    std::string err;
    if (!FlatJsonParser(line).parse(obj, err))
      throw EngineError(EngineStatus::kInvalidInput,
                        "malformed request: " + err);
    id = get_string(obj, "id");
    const std::string op = get_string(obj, "op");
    if (op == "submit") {
      ParsedSubmit req;
      req.id = id;
      req.circuit = get_string(obj, "circuit");
      if (req.circuit.empty())
        throw EngineError(EngineStatus::kInvalidInput,
                          "submit needs a \"circuit\"");
      req.job = job_from_obj(obj, req.circuit);
      req.session = get_flag(obj, "session");
      do_submit(req);
    } else if (op == "resize") {
      ParsedResize req;
      req.id = id;
      bool present = false;
      const double s = get_number(obj, "session", 0.0, &present);
      if (!present || s < 1)
        throw EngineError(EngineStatus::kInvalidInput,
                          "resize needs a positive \"session\"");
      req.sid = static_cast<std::uint64_t>(s);
      req.target = get_number(obj, "target", 0.0);
      req.loads = get_string(obj, "loads");
      req.pins = get_string(obj, "pins");
      do_resize(req);
    } else if (op == "release") {
      bool present = false;
      const double s = get_number(obj, "session", 0.0, &present);
      if (!present || s < 1)
        throw EngineError(EngineStatus::kInvalidInput,
                          "release needs a positive \"session\"");
      do_release(id, static_cast<std::uint64_t>(s));
    } else if (op == "cancel") {
      bool present = false;
      const double t = get_number(obj, "ticket", -1.0, &present);
      if (!present || t < 0)
        throw EngineError(EngineStatus::kInvalidInput,
                          "cancel needs a non-negative \"ticket\"");
      bool ok = false;
      std::string note;
      try {
        ok = runner_->cancel(static_cast<JobTicket>(t));
        if (!ok) note = "already completed";
      } catch (const std::exception& e) {
        note = e.what();  // never-issued ticket
      }
      std::lock_guard<std::mutex> lock(mu_);
      JsonLine out;
      out.str("event", "cancel");
      if (!id.empty()) out.str("id", id);
      out.uinteger("ticket", static_cast<unsigned long long>(t))
          .boolean("ok", ok);
      if (!note.empty()) out.str("error", note);
      emit_locked(out.done());
    } else if (op == "stats") {
      std::lock_guard<std::mutex> lock(mu_);
      const DaemonStats s = stats_locked();
      JsonLine out;
      out.str("event", "stats");
      if (!id.empty()) out.str("id", id);
      emit_locked(
          out.uinteger("requests", s.requests)
              .uinteger("admitted", s.admitted)
              .uinteger("rejected", s.rejected)
              .uinteger("invalid", s.invalid)
              .uinteger("results", s.results)
              .uinteger("submitted", s.engine.submitted)
              .uinteger("completed", s.engine.completed)
              .uinteger("canceled", s.engine.canceled)
              .uinteger("degraded", s.engine.degraded)
              .uinteger("shed", s.engine.shed)
              .uinteger("queue_depth",
                        static_cast<unsigned long long>(s.engine.queue_depth))
              .uinteger("queue_peak",
                        static_cast<unsigned long long>(s.engine.queue_peak))
              .num("queue_wait_seconds", s.engine.queue_wait_seconds)
              .num("run_seconds", s.engine.run_seconds)
              .uinteger("retries", s.engine.retries)
              .uinteger("hangs", s.engine.hangs)
              .uinteger("respawns", s.engine.respawns)
              .uinteger("journal_records", s.journal_records)
              .uinteger("journal_fsyncs", s.journal_fsyncs)
              .uinteger("journal_errors", s.journal_errors)
              .uinteger("journal_bytes", s.journal_bytes)
              .uinteger("journal_compactions", s.journal_compactions)
              .uinteger("recovered", s.recovered)
              .uinteger("sessions", s.sessions)
              .num("ewma_run_seconds", s.ewma_run_seconds)
              .num("p50_seconds", s.p50_seconds)
              .num("p99_seconds", s.p99_seconds)
              .integer("workers", runner_->threads())
              .done());
    } else if (op == "shutdown") {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
      emit_locked(JsonLine()
                      .str("event", "shutdown")
                      .uinteger("outstanding", admitted_ - results_)
                      .done());
    } else {
      throw EngineError(
          EngineStatus::kInvalidInput,
          op.empty() ? std::string("request has no \"op\"")
                     : strf("unknown op '%s'", op.c_str()));
    }
  } catch (const EngineError& e) {
    respond_error(id, e.status(), e.what());
  } catch (const std::exception& e) {
    // Includes injected faults at daemon.parse/daemon.accept: a
    // structured internal error, and the daemon keeps serving.
    respond_error(id, EngineStatus::kInternal, e.what());
  }
}

void SizingDaemon::do_submit(const ParsedSubmit& req) {
  // Admission seam (fault-injectable) and circuit resolution (throws
  // kInvalidInput for an unknown name) both run before mu_ is taken —
  // their exceptions unwind to handle_line's respond_error, which locks.
  MFT_FAULT_POINT("daemon.accept");
  const SizingNetwork& net = circuit(req.circuit);
  const std::string id = req.id;
  std::lock_guard<std::mutex> lock(mu_);
  std::string refusal;
  if (shutdown_) {
    refusal = "daemon is shutting down";
  } else {
    const StreamStats es = runner_->stats();
    if (opt_.max_queue_depth > 0 && es.queue_depth >= opt_.max_queue_depth) {
      refusal = strf("queue full: depth %zu at bound %zu", es.queue_depth,
                     opt_.max_queue_depth);
    } else if (opt_.deadline_pressure > 0.0 && req.job.deadline_seconds > 0.0) {
      const double workers = static_cast<double>(runner_->threads());
      if (ewma_run_seconds_ > 0.0) {
        // Predicted completion, not just queue wait: the job's own
        // expected run (one EWMA per worker slot, i.e. +workers in the
        // numerator) counts against its deadline too. Estimating the wait
        // alone admitted every job whose runtime exceeded its deadline
        // outright, only to shed it later.
        const double predicted = ewma_run_seconds_ *
                                 (static_cast<double>(es.queue_depth) +
                                  workers) /
                                 workers;
        if (predicted > req.job.deadline_seconds * opt_.deadline_pressure)
          refusal = strf(
              "deadline pressure: predicted completion %.3gs exceeds "
              "deadline %.3gs",
              predicted, req.job.deadline_seconds);
      } else if (es.queue_depth >=
                 static_cast<std::size_t>(runner_->threads())) {
        // Cold start: no completed job yet, so no runtime estimate. The
        // old code silently admitted everything through this window; a
        // burst arriving before the first result could build an unbounded
        // backlog of deadline work that would all shed. Until the EWMA
        // exists, refuse deadline-carrying submits once the backlog
        // reaches the worker count.
        refusal = strf(
            "deadline pressure (cold start): queue depth %zu at %d workers "
            "with no completed-job estimate yet",
            es.queue_depth, runner_->threads());
      }
    }
  }
  if (!refusal.empty()) {
    respond_error_locked(id, EngineStatus::kRejected, refusal);
    return;
  }
  // Durability, write-ahead: resolve the seed the engine would pick (so
  // the journaled record pins the exact solve) and fsync the submit
  // record before the engine can see the job. A failed append refuses the
  // submit — accepting work we cannot make durable would silently drop
  // the crash-recovery contract.
  std::uint64_t rid = 0;
  SizingJob job = req.job;
  const bool durable = journal_.is_open();
  const std::uint64_t sid = req.session ? next_session_id_++ : 0;
  if (durable) {
    rid = next_rid_++;
    if (job.seed == 0) job.seed = derive_job_seed(opt_.engine.base_seed, rid);
    const std::string rec = submit_record(rid, id, req.circuit, job, sid);
    try {
      journal_.append(rec);
    } catch (const std::exception& e) {
      ++journal_errors_;
      respond_error_locked(id, EngineStatus::kInternal,
                           strf("journal append failed: %s", e.what()));
      return;
    }
    live_records_[{rid, 0}] = rec;
  }
  if (sid != 0) {
    auto es = std::make_unique<EcoSession>();
    es->sid = sid;
    es->circuit = req.circuit;
    es->base_rid = rid;
    es->durable = durable;
    if (durable) es->rids.push_back(rid);
    sessions_[sid] = std::move(es);
  }
  // Submit while still holding mu_: the result callback also takes mu_,
  // so the "accepted" ack below always precedes the job's result event
  // even if a worker finishes it instantly. (Lock order is daemon mu_ ->
  // runner internals; callbacks take them in the compatible order
  // callback_mu_ -> daemon mu_.)
  const JobTicket t = runner_->submit_detached(
      net, job,
      [this, id, rid, sid](const JobResult& r) { on_result(id, rid, sid, r); });
  ++admitted_;
  JsonLine out;
  out.str("event", "accepted");
  if (!id.empty()) out.str("id", id);
  if (durable) out.uinteger("rid", rid);
  if (sid != 0) out.uinteger("session", sid);
  emit_locked(out.uinteger("ticket", t).done());
}

void SizingDaemon::on_result(const std::string& id, std::uint64_t rid,
                             std::uint64_t sid, const JobResult& r) {
  std::lock_guard<std::mutex> lock(mu_);
  // Admission estimate: successful completions only. A shed, canceled, or
  // faulted job returns in unrepresentative (often near-zero) wall time;
  // folding those in let a failure storm drag the EWMA toward zero and
  // re-open admission exactly when the daemon was least able to serve.
  if (r.ok && r.wall_seconds > 0.0)
    ewma_run_seconds_ = ewma_run_seconds_ == 0.0
                            ? r.wall_seconds
                            : 0.3 * r.wall_seconds + 0.7 * ewma_run_seconds_;
  latency_.record(r.queue_seconds + r.wall_seconds);
  ++results_;
  if (sid != 0) {
    // ECO session base: capture the sized state the resizes start from.
    auto it = sessions_.find(sid);
    if (it != sessions_.end()) {
      EcoSession& es = *it->second;
      if (r.ok) {
        es.base_sizes = r.result.sizes;
        es.base_target = r.target;
        es.ready = true;
      } else {
        es.failed = true;
      }
    }
  }
  const bool durable = journal_.is_open();
  JsonLine out;
  out.str("event", "result");
  if (!id.empty()) out.str("id", id);
  if (durable) out.uinteger("rid", rid);
  if (sid != 0) out.uinteger("session", sid);
  out.integer("ticket", r.job)
      .str("status", to_string(r.status))
      .boolean("ok", r.ok)
      .boolean("degraded", r.degraded)
      .str("label", r.label)
      .integer("priority", r.priority)
      .uinteger("seed", r.seed)
      .num("queue_seconds", r.queue_seconds)
      .num("wall_seconds", r.wall_seconds);
  if (r.ok) {
    out.num("area", r.result.area)
        .num("delay", r.result.delay)
        .num("target", r.target)
        .uinteger("sizes_hash", sizes_hash(r.result.sizes));
  } else {
    out.str("error", r.error);
  }
  emit_locked(out.done());
  // Journal the terminal record *after* the event went out: a crash in
  // the gap re-runs and re-emits the request on replay (at-least-once
  // emission), which is the recoverable side of the race — the reverse
  // order could mark a request finished whose result no client ever saw.
  //
  // A *successful* session base deliberately journals no result record:
  // its sizes are not in the journal, so replay must re-run it (same
  // seed, bit-identical by the determinism contract) to rebuild the
  // session state the journaled resize chain re-applies against. Its
  // submit record stays live until the session is released. A failed
  // session base is terminal like any other job: journaled finished,
  // dropped from the live set — replay then drops the dead session whole.
  if (durable && (sid == 0 || !r.ok)) {
    JsonLine rec;
    rec.str("type", "result")
        .uinteger("rid", rid)
        .str("status", to_string(r.status))
        .boolean("ok", r.ok);
    if (r.ok) rec.uinteger("sizes_hash", sizes_hash(r.result.sizes));
    journal_append_locked(rec.done());
    live_records_.erase({rid, 0});
    maybe_compact_locked();
  }
}

void SizingDaemon::journal_append_locked(const std::string& payload) {
  if (!journal_.is_open()) return;
  try {
    journal_.append(payload);
  } catch (const std::exception&) {
    // A result record that fails to persist re-runs the request on the
    // next replay — redundant work, not lost work. Count it and serve on.
    ++journal_errors_;
  }
}

void SizingDaemon::do_resize(const ParsedResize& req) {
  // Parse the delta strings up front: malformed input is kInvalidInput
  // before any session state or journal record is touched.
  const ResizeDelta delta =
      delta_from_strings(req.target, req.loads, req.pins);
  EcoSession* es = nullptr;
  std::uint64_t rid = 0;
  bool durable = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(req.sid);
    if (it == sessions_.end())
      throw EngineError(EngineStatus::kInvalidInput,
                        strf("unknown session %llu",
                             static_cast<unsigned long long>(req.sid)));
    es = it->second.get();
    if (es->failed)
      throw EngineError(EngineStatus::kInvalidInput,
                        strf("session %llu is dead: its base job failed",
                             static_cast<unsigned long long>(req.sid)));
    if (!es->ready)
      throw EngineError(
          EngineStatus::kRejected,
          strf("session %llu not ready: base job still running, retry "
               "after its result",
               static_cast<unsigned long long>(req.sid)));
    durable = journal_.is_open() && es->durable;
    if (durable) {
      // Write-ahead, like a submit: a crash after this record re-applies
      // the delta on replay (and re-emits, since no result record landed).
      rid = next_rid_++;
      const std::string rec = resize_record(rid, req.sid, req.id, req.target,
                                            req.loads, req.pins);
      try {
        journal_.append(rec);
      } catch (const std::exception& e) {
        ++journal_errors_;
        respond_error_locked(req.id, EngineStatus::kInternal,
                             strf("journal append failed: %s", e.what()));
        return;
      }
      live_records_[{rid, 0}] = rec;
      es->rids.push_back(rid);
    }
  }
  // The solve runs on the request thread outside mu_ — stats/cancel stay
  // responsive is not a concern (one request thread), but result
  // callbacks from workers must not block behind a multi-millisecond
  // resize. Once `ready`, nothing else touches the session's solver.
  const ResizeResult rr = apply_resize(*es, delta);
  finish_resize(req.id, req.sid, rid, durable, rr);
}

ResizeResult SizingDaemon::apply_resize(EcoSession& es,
                                        const ResizeDelta& delta) {
  if (es.rs == nullptr) {
    es.rs = std::make_unique<ResizeSession>(circuit(es.circuit));
    const ResizeResult adopted = es.rs->adopt(es.base_sizes, es.base_target);
    if (!adopted.ok) {
      es.rs.reset();
      return adopted;
    }
  }
  return es.rs->resize(delta);
}

void SizingDaemon::finish_resize(const std::string& id, std::uint64_t sid,
                                 std::uint64_t rid, bool durable,
                                 const ResizeResult& rr) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!rr.ok) {
    respond_error_locked(id, EngineStatus::kInvalidInput, rr.error);
  } else {
    ++results_;
    latency_.record(rr.seconds);
    JsonLine out;
    out.str("event", "result");
    if (!id.empty()) out.str("id", id);
    if (durable) out.uinteger("rid", rid);
    out.uinteger("session", sid)
        .integer("ticket", -1)
        .str("status", "ok")
        .boolean("ok", true)
        .str("mode", to_string(rr.mode))
        .boolean("fell_back", rr.fell_back)
        .boolean("met_target", rr.met_target)
        .num("area", rr.area)
        .num("delay", rr.delay)
        .num("target", rr.target)
        .integer("dirty", rr.dirty_vertices)
        .integer("region", rr.region_vertices)
        .num("wall_seconds", rr.seconds)
        .uinteger("sizes_hash", sizes_hash(rr.sizes));
    emit_locked(out.done());
  }
  if (durable) {
    // An invalid delta is terminal too: journaling its failed result keeps
    // replay from re-applying (and re-answering) it.
    JsonLine rec;
    rec.str("type", "result")
        .uinteger("rid", rid)
        .uinteger("session", sid)
        .boolean("ok", rr.ok);
    if (rr.ok)
      rec.str("mode", to_string(rr.mode))
          .uinteger("sizes_hash", sizes_hash(rr.sizes));
    else
      rec.str("error", rr.error);
    const std::string payload = rec.done();
    journal_append_locked(payload);
    if (rr.ok) live_records_[{rid, 1}] = payload;
    maybe_compact_locked();
  }
}

void SizingDaemon::do_release(const std::string& id, std::uint64_t sid) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(sid);
  if (it == sessions_.end())
    throw EngineError(EngineStatus::kInvalidInput,
                      strf("unknown session %llu",
                           static_cast<unsigned long long>(sid)));
  EcoSession& es = *it->second;
  if (journal_.is_open() && es.durable) {
    // The release record makes the drop durable before the session's live
    // records leave the compaction set: replay either sees the release
    // (and skips the session) or re-runs it whole — never half of it.
    journal_append_locked(JsonLine()
                              .str("type", "release")
                              .uinteger("rid", next_rid_++)
                              .uinteger("session", sid)
                              .done());
    for (const std::uint64_t r : es.rids) {
      live_records_.erase({r, 0});
      live_records_.erase({r, 1});
    }
  }
  sessions_.erase(it);
  JsonLine out;
  out.str("event", "release");
  if (!id.empty()) out.str("id", id);
  emit_locked(out.uinteger("session", sid).boolean("ok", true).done());
  maybe_compact_locked();
}

std::string SizingDaemon::config_record() const {
  // Everything a bit-reproducible replay depends on. threads is advisory
  // (inner parallelism never changes results) and deliberately absent.
  // base_seed rides as a string: the flat parser reads numbers as
  // doubles, which cannot hold all 64 seed bits.
  return JsonLine()
      .str("type", "config")
      .integer("version", 1)
      .str("base_seed", strf("%llu", static_cast<unsigned long long>(
                                         opt_.engine.base_seed)))
      .boolean("fast_math", opt_.engine.fast_math)
      .done();
}

void SizingDaemon::maybe_compact_locked() {
  if (opt_.journal_compact_bytes == 0 || compaction_disabled_ ||
      !journal_.is_open())
    return;
  if (journal_.bytes() <
      static_cast<std::int64_t>(opt_.journal_compact_bytes))
    return;
  // Rotation: rewrite down to the live set. live_records_ is keyed
  // (rid, request-before-result), so the compacted journal preserves
  // append order; the config snapshot heads it like a fresh journal's.
  std::vector<std::string> keep;
  keep.reserve(live_records_.size() + 1);
  keep.push_back(config_record());
  for (const auto& kv : live_records_) keep.push_back(kv.second);
  const std::string path = opt_.journal_path;
  journal_.close();
  try {
    Journal::rewrite(path, keep);
    ++journal_compactions_;
  } catch (const std::exception&) {
    // The tmp+rename contract leaves the old file intact on failure:
    // nothing is lost, the journal just stays big.
    ++journal_errors_;
  }
  try {
    journal_.open(path);
  } catch (const std::exception&) {
    ++journal_errors_;  // durability lost from here; keep serving
  }
}

void SizingDaemon::recover_from_journal() {
  const std::string& path = opt_.journal_path;
  bool torn = false;
  std::vector<std::string> records;
  try {
    records = Journal::replay(path, &torn);
  } catch (const std::exception& e) {
    // Unreadable journal (or an injected fault at "journal.replay"): the
    // daemon still serves — durability resumes with the next append, and
    // the structured replay event tells the operator recovery was lost.
    std::lock_guard<std::mutex> lock(mu_);
    ++journal_errors_;
    journal_.open(path);
    emit_locked(JsonLine()
                    .str("event", "replay")
                    .boolean("ok", false)
                    .str("error", e.what())
                    .done());
    return;
  }
  // A request is unfinished iff its submit record has no matching result
  // record. Records that fail to parse or lack a rid are skipped — the
  // torn-tail contract already bounds damage to the end of the file, so
  // anything unreadable in the middle is best-effort ignored, not fatal.
  struct ReplayResize {
    std::uint64_t rid = 0;
    JsonObj obj;
    std::string raw;  ///< original payload, kept verbatim on compaction
    bool has_result = false;
    bool result_ok = false;
    std::string result_raw;
  };
  struct ReplaySession {
    std::uint64_t base_rid = 0;
    JsonObj base;
    std::string base_raw;
    bool base_failed = false;  ///< only failed bases journal results
    bool released = false;
    std::vector<ReplayResize> resizes;
  };
  std::map<std::uint64_t, std::pair<JsonObj, std::string>> pending;
  std::map<std::uint64_t, ReplaySession> sess;  // by session number
  // rid -> (session, resize index; -1 = the base submit)
  std::map<std::uint64_t, std::pair<std::uint64_t, int>> rid_owner;
  JsonObj config;
  bool has_config = false;
  std::uint64_t max_rid = 0, max_sid = 0, finished = 0;
  bool any_rid = false;
  for (const std::string& rec : records) {
    JsonObj obj;
    std::string err;
    if (!FlatJsonParser(rec).parse(obj, err)) continue;
    const std::string type = get_string(obj, "type");
    if (type == "config") {
      if (!has_config) {
        config = std::move(obj);
        has_config = true;
      }
      continue;
    }
    bool has_rid = false;
    const auto rid =
        static_cast<std::uint64_t>(get_number(obj, "rid", 0.0, &has_rid));
    if (!has_rid) continue;
    any_rid = true;
    max_rid = std::max(max_rid, rid);
    const auto sid =
        static_cast<std::uint64_t>(get_number(obj, "session", 0.0));
    max_sid = std::max(max_sid, sid);
    if (type == "submit") {
      if (sid != 0) {
        ReplaySession& rs = sess[sid];
        rs.base_rid = rid;
        rs.base = std::move(obj);
        rs.base_raw = rec;
        rid_owner[rid] = {sid, -1};
      } else {
        pending[rid] = {std::move(obj), rec};
      }
    } else if (type == "result") {
      auto owner = rid_owner.find(rid);
      if (owner != rid_owner.end()) {
        ReplaySession& rs = sess[owner->second.first];
        if (owner->second.second < 0) {
          rs.base_failed = true;
        } else {
          ReplayResize& rz =
              rs.resizes[static_cast<std::size_t>(owner->second.second)];
          rz.has_result = true;
          rz.result_ok = get_flag(obj, "ok");
          rz.result_raw = rec;
        }
        ++finished;
      } else {
        finished += pending.erase(rid);
      }
    } else if (type == "resize") {
      auto si = sess.find(sid);
      if (si != sess.end() && !si->second.released) {
        rid_owner[rid] = {sid, static_cast<int>(si->second.resizes.size())};
        ReplayResize rz;
        rz.rid = rid;
        rz.obj = std::move(obj);
        rz.raw = rec;
        si->second.resizes.push_back(std::move(rz));
      }
    } else if (type == "release") {
      auto si = sess.find(sid);
      if (si != sess.end()) si->second.released = true;
    }
  }
  // Config gate: replaying under a different base_seed or FP contract
  // would *run* — and silently produce different sizes than the journal's
  // clients were promised. Refuse recovery, preserve the file untouched
  // as operator evidence (rotation stays off so it cannot erode), and
  // serve on fresh.
  if (has_config) {
    const int ver = static_cast<int>(get_number(config, "version", 1.0));
    const std::uint64_t seed = std::strtoull(
        get_string(config, "base_seed", "0").c_str(), nullptr, 10);
    const bool fm = get_flag(config, "fast_math");
    if (ver != 1 || seed != opt_.engine.base_seed ||
        fm != opt_.engine.fast_math) {
      std::lock_guard<std::mutex> lock(mu_);
      ++journal_errors_;
      compaction_disabled_ = true;
      journal_.open(path);
      next_rid_ = any_rid ? max_rid + 1 : 0;
      next_session_id_ = max_sid + 1;
      emit_locked(
          JsonLine()
              .str("event", "replay")
              .boolean("ok", false)
              .str("error",
                   strf("journal config incompatible: journal has version "
                        "%d base_seed %llu fast_math %s, engine has "
                        "version 1 base_seed %llu fast_math %s; refusing "
                        "to replay (journal preserved)",
                        ver, static_cast<unsigned long long>(seed),
                        fm ? "true" : "false",
                        static_cast<unsigned long long>(
                            opt_.engine.base_seed),
                        opt_.engine.fast_math ? "true" : "false"))
              .uinteger("records", records.size())
              .uinteger("recovered", 0)
              .done());
      return;
    }
  }
  // Dead sessions (released, or their base failed terminally) vanish
  // whole — base, resize chain and all. Failed resizes never changed
  // state, so they are dropped from live chains too.
  for (auto it = sess.begin(); it != sess.end();) {
    if (it->second.released || it->second.base_failed) {
      it = sess.erase(it);
    } else {
      auto& rz = it->second.resizes;
      rz.erase(std::remove_if(rz.begin(), rz.end(),
                              [](const ReplayResize& r) {
                                return r.has_result && !r.result_ok;
                              }),
               rz.end());
      ++it;
    }
  }
  // Compact to exactly the live set — config snapshot first, then every
  // kept record in original append order — and seed the in-memory live
  // map the next rotation will reuse.
  std::map<std::pair<std::uint64_t, int>, std::string> live;
  for (const auto& kv : pending) live[{kv.first, 0}] = kv.second.second;
  for (const auto& kv : sess) {
    live[{kv.second.base_rid, 0}] = kv.second.base_raw;
    for (const ReplayResize& rz : kv.second.resizes) {
      live[{rz.rid, 0}] = rz.raw;
      if (rz.has_result) live[{rz.rid, 1}] = rz.result_raw;
    }
  }
  std::vector<std::string> keep;
  keep.reserve(live.size() + 1);
  keep.push_back(config_record());
  for (const auto& kv : live) keep.push_back(kv.second);
  Journal::rewrite(path, keep);
  {
    std::lock_guard<std::mutex> lock(mu_);
    journal_.open(path);
    next_rid_ = any_rid ? max_rid + 1 : 0;
    next_session_id_ = max_sid + 1;
    live_records_ = std::move(live);
    // Rebuild the session table; base sizes arrive when the re-run base
    // jobs complete (on_result fills them exactly like the first run).
    for (const auto& kv : sess) {
      auto es = std::make_unique<EcoSession>();
      es->sid = kv.first;
      es->circuit = get_string(kv.second.base, "circuit");
      es->base_rid = kv.second.base_rid;
      es->durable = true;
      es->rids.push_back(kv.second.base_rid);
      for (const ReplayResize& rz : kv.second.resizes)
        es->rids.push_back(rz.rid);
      sessions_[kv.first] = std::move(es);
    }
    emit_locked(JsonLine()
                    .str("event", "replay")
                    .boolean("ok", true)
                    .boolean("torn", torn)
                    .uinteger("records", records.size())
                    .uinteger("finished", finished)
                    .uinteger("recovered", pending.size() + sess.size())
                    .uinteger("sessions", sess.size())
                    .done());
  }
  // Re-admit in rid order, bypassing admission control — these requests
  // were admitted once already; refusing them now would break the
  // every-journaled-request-terminates contract. Session bases are
  // re-run even though their results already reached clients: their
  // sizes only live in the re-run (at-least-once re-emission, same
  // sizes_hash by the seed contract).
  struct Admit {
    std::uint64_t rid = 0;
    std::uint64_t sid = 0;
    const JsonObj* obj = nullptr;
  };
  std::vector<Admit> admits;
  admits.reserve(pending.size() + sess.size());
  for (const auto& kv : pending)
    admits.push_back(Admit{kv.first, 0, &kv.second.first});
  for (const auto& kv : sess)
    admits.push_back(Admit{kv.second.base_rid, kv.first, &kv.second.base});
  std::sort(admits.begin(), admits.end(),
            [](const Admit& a, const Admit& b) { return a.rid < b.rid; });
  for (const Admit& a : admits) {
    const std::uint64_t rid = a.rid;
    const std::uint64_t sid = a.sid;
    const std::string id = get_string(*a.obj, "id");
    const std::string circuit_name = get_string(*a.obj, "circuit");
    const SizingJob job = job_from_obj(*a.obj, circuit_name);
    try {
      const SizingNetwork& net = circuit(circuit_name);
      std::lock_guard<std::mutex> lock(mu_);
      const JobTicket t = runner_->submit_detached(
          net, job, [this, id, rid, sid](const JobResult& r) {
            on_result(id, rid, sid, r);
          });
      ++admitted_;
      ++recovered_;
      JsonLine out;
      out.str("event", "accepted");
      if (!id.empty()) out.str("id", id);
      if (sid != 0) out.uinteger("session", sid);
      emit_locked(out.uinteger("rid", rid).uinteger("ticket", t).done());
    } catch (const std::exception& e) {
      // Journal from a build that knew circuits this one does not: give
      // the request its terminal response and journal it as finished so
      // it stops replaying.
      std::lock_guard<std::mutex> lock(mu_);
      respond_error_locked(id, EngineStatus::kInternal,
                           strf("replay of rid %llu failed: %s",
                                static_cast<unsigned long long>(rid),
                                e.what()));
      journal_append_locked(JsonLine()
                                .str("type", "result")
                                .uinteger("rid", rid)
                                .str("status", "internal")
                                .boolean("ok", false)
                                .done());
      live_records_.erase({rid, 0});
      if (sid != 0) {
        auto si = sessions_.find(sid);
        if (si != sessions_.end()) si->second->failed = true;
      }
    }
  }
  // Re-apply the journaled resize chains. The bases must finish first —
  // their sizes are the chains' starting state. A resize whose result is
  // already journaled re-applies *silently* (its answer reached the
  // client; determinism makes the re-apply reach the same state); one
  // without re-emits, the at-least-once side of the crash window.
  bool any_resizes = false;
  for (const auto& kv : sess) any_resizes |= !kv.second.resizes.empty();
  if (!any_resizes) return;
  runner_->wait_all();
  struct Chain {
    std::uint64_t sid = 0;
    const ReplayResize* rz = nullptr;
  };
  std::vector<Chain> chain;
  for (const auto& kv : sess)
    for (const ReplayResize& rz : kv.second.resizes)
      chain.push_back(Chain{kv.first, &rz});
  std::sort(chain.begin(), chain.end(), [](const Chain& a, const Chain& b) {
    return a.rz->rid < b.rz->rid;
  });
  for (const Chain& c : chain) {
    const std::string id = get_string(c.rz->obj, "id");
    EcoSession* es = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto si = sessions_.find(c.sid);
      if (si == sessions_.end()) continue;
      es = si->second.get();
      if (!es->ready || es->failed) {
        // The re-run base failed where it once succeeded (e.g. its
        // circuit generator changed): terminate the chain's unanswered
        // entries so nothing replays forever.
        if (!c.rz->has_result) {
          respond_error_locked(
              id, EngineStatus::kInternal,
              strf("replay of resize rid %llu failed: session %llu base "
                   "did not recover",
                   static_cast<unsigned long long>(c.rz->rid),
                   static_cast<unsigned long long>(c.sid)));
          journal_append_locked(JsonLine()
                                    .str("type", "result")
                                    .uinteger("rid", c.rz->rid)
                                    .uinteger("session", c.sid)
                                    .boolean("ok", false)
                                    .str("error", "base did not recover")
                                    .done());
        }
        continue;
      }
    }
    ResizeResult rr;
    try {
      const ResizeDelta delta = delta_from_strings(
          get_number(c.rz->obj, "target", 0.0),
          get_string(c.rz->obj, "loads"), get_string(c.rz->obj, "pins"));
      rr = apply_resize(*es, delta);
    } catch (const std::exception& e) {
      rr.ok = false;
      rr.error = e.what();
    }
    if (!c.rz->has_result) finish_resize(id, c.sid, c.rz->rid, true, rr);
  }
}

void SizingDaemon::respond_error(const std::string& id, EngineStatus status,
                                 const std::string& message) {
  std::lock_guard<std::mutex> lock(mu_);
  respond_error_locked(id, status, message);
}

void SizingDaemon::respond_error_locked(const std::string& id,
                                        EngineStatus status,
                                        const std::string& message) {
  if (status == EngineStatus::kRejected)
    ++rejected_;
  else
    ++invalid_;
  JsonLine out;
  out.str("event", "result");
  if (!id.empty()) out.str("id", id);
  emit_locked(out.integer("ticket", -1)
                  .str("status", to_string(status))
                  .boolean("ok", false)
                  .str("error", message)
                  .done());
}

void SizingDaemon::emit_locked(const std::string& line) { emit_(line); }

const SizingNetwork& SizingDaemon::circuit(const std::string& name) {
  // Only handle_line's thread touches the cache; workers hold pointers
  // into entries but never the map. Entries live for the daemon's
  // lifetime, so queued jobs' network pointers stay valid.
  auto it = circuits_.find(name);
  if (it == circuits_.end()) {
    Netlist nl = build_circuit(name);
    auto lowered =
        std::make_unique<LoweredCircuit>(lower_gate_level(nl, Tech{}));
    it = circuits_.emplace(name, std::move(lowered)).first;
  }
  return it->second->net;
}

DaemonStats SizingDaemon::stats_locked() const {
  DaemonStats s;
  s.requests = requests_;
  s.admitted = admitted_;
  s.rejected = rejected_;
  s.invalid = invalid_;
  s.results = results_;
  s.journal_records = static_cast<std::uint64_t>(journal_.appends());
  s.journal_fsyncs = static_cast<std::uint64_t>(journal_.fsyncs());
  s.journal_errors = journal_errors_;
  s.journal_bytes = static_cast<std::uint64_t>(journal_.bytes());
  s.journal_compactions = journal_compactions_;
  s.recovered = recovered_;
  s.sessions = sessions_.size();
  s.ewma_run_seconds = ewma_run_seconds_;
  s.p50_seconds = latency_.quantile(0.50);
  s.p99_seconds = latency_.quantile(0.99);
  s.engine = runner_->stats();
  return s;
}

DaemonStats SizingDaemon::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_locked();
}

}  // namespace mft
