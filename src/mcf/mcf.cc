#include "mcf/mcf.h"

#include <algorithm>
#include <sstream>

namespace mft {

McfProblem::McfProblem(int num_nodes) {
  MFT_CHECK(num_nodes >= 0);
  supply_.assign(static_cast<std::size_t>(num_nodes), 0);
}

ArcId McfProblem::add_arc(NodeId tail, NodeId head, Flow capacity, Cost cost) {
  MFT_CHECK(tail >= 0 && tail < num_nodes());
  MFT_CHECK(head >= 0 && head < num_nodes());
  MFT_CHECK_MSG(tail != head, "self-loop arcs are not supported");
  MFT_CHECK(capacity >= 0);
  arcs_.push_back(McfArc{tail, head, capacity, cost});
  return static_cast<ArcId>(arcs_.size() - 1);
}

void McfProblem::set_supply(NodeId v, Flow s) {
  MFT_CHECK(v >= 0 && v < num_nodes());
  supply_[static_cast<std::size_t>(v)] = s;
}

void McfProblem::add_supply(NodeId v, Flow s) {
  MFT_CHECK(v >= 0 && v < num_nodes());
  supply_[static_cast<std::size_t>(v)] += s;
}

void McfProblem::set_arc_cost(ArcId a, Cost cost) {
  MFT_CHECK(a >= 0 && a < num_arcs());
  arcs_[static_cast<std::size_t>(a)].cost = cost;
}

void McfProblem::clear_supplies() {
  std::fill(supply_.begin(), supply_.end(), 0);
}

Flow McfProblem::total_supply() const {
  Flow t = 0;
  for (Flow s : supply_) t += s;
  return t;
}

Cost McfProblem::max_abs_cost() const {
  Cost m = 0;
  for (const McfArc& a : arcs_) m = std::max<Cost>(m, a.cost < 0 ? -a.cost : a.cost);
  return m;
}

const char* to_string(McfStatus s) {
  switch (s) {
    case McfStatus::kOptimal:
      return "optimal";
    case McfStatus::kInfeasible:
      return "infeasible";
    case McfStatus::kUnbounded:
      return "unbounded";
  }
  return "?";
}

bool check_flow_feasible(const McfProblem& p, const std::vector<Flow>& flow,
                         std::string* why) {
  auto fail = [&](const std::string& msg) {
    if (why) *why = msg;
    return false;
  };
  if (static_cast<int>(flow.size()) != p.num_arcs())
    return fail("flow vector arity mismatch");
  std::vector<Flow> balance(p.supplies());
  for (ArcId a = 0; a < p.num_arcs(); ++a) {
    const McfArc& arc = p.arc(a);
    const Flow f = flow[static_cast<std::size_t>(a)];
    if (f < 0) return fail("negative flow on arc " + std::to_string(a));
    if (f > arc.capacity)
      return fail("capacity violated on arc " + std::to_string(a));
    balance[static_cast<std::size_t>(arc.tail)] -= f;
    balance[static_cast<std::size_t>(arc.head)] += f;
  }
  for (NodeId v = 0; v < p.num_nodes(); ++v) {
    if (balance[static_cast<std::size_t>(v)] != 0) {
      std::ostringstream os;
      os << "conservation violated at node " << v << " (residual "
         << balance[static_cast<std::size_t>(v)] << ")";
      return fail(os.str());
    }
  }
  return true;
}

bool check_flow_optimal(const McfProblem& p, const McfSolution& sol,
                        std::string* why) {
  auto fail = [&](const std::string& msg) {
    if (why) *why = msg;
    return false;
  };
  if (sol.status != McfStatus::kOptimal) return fail("status not optimal");
  if (!check_flow_feasible(p, sol.flow, why)) return false;
  if (static_cast<int>(sol.potential.size()) != p.num_nodes())
    return fail("potential arity mismatch");
  for (ArcId a = 0; a < p.num_arcs(); ++a) {
    const McfArc& arc = p.arc(a);
    const Flow f = sol.flow[static_cast<std::size_t>(a)];
    const Cost diff = sol.potential[static_cast<std::size_t>(arc.tail)] -
                      sol.potential[static_cast<std::size_t>(arc.head)];
    if (f < arc.capacity && diff > arc.cost) {
      std::ostringstream os;
      os << "dual feasibility violated on unsaturated arc " << a << ": pi("
         << arc.tail << ")-pi(" << arc.head << ")=" << diff << " > cost "
         << arc.cost;
      return fail(os.str());
    }
    if (f > 0 && diff < arc.cost) {
      std::ostringstream os;
      os << "complementary slackness violated on arc " << a << " with flow "
         << f << ": potential difference " << diff << " < cost " << arc.cost;
      return fail(os.str());
    }
  }
  if (flow_cost(p, sol.flow) != sol.total_cost)
    return fail("reported total cost does not match flow");
  return true;
}

Cost flow_cost(const McfProblem& p, const std::vector<Flow>& flow) {
  __int128 total = 0;
  for (ArcId a = 0; a < p.num_arcs(); ++a)
    total += static_cast<__int128>(flow[static_cast<std::size_t>(a)]) *
             p.arc(a).cost;
  MFT_CHECK_MSG(total <= std::numeric_limits<Cost>::max() &&
                    total >= std::numeric_limits<Cost>::min(),
                "total cost overflows int64");
  return static_cast<Cost>(total);
}

}  // namespace mft
