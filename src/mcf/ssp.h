// Alternative min-cost flow solvers used as cross-check oracles for the
// network simplex and as ablation subjects (bench_flow_solvers).
//
//  - solve_ssp: successive shortest paths with Dijkstra + Johnson
//    potentials; negative arc costs are handled by a Bellman–Ford
//    negative-cycle-canceling preprocessing pass. Pass an McfWorkspace to
//    reuse the residual-network and Dijkstra allocations across calls
//    (ws->ssp_augmentations reports the augmentation count).
//  - solve_cycle_canceling: Klein's algorithm — establish any feasible flow,
//    then cancel Bellman–Ford negative cycles until optimal.
//
// Both return solutions satisfying the same dual contract as the network
// simplex (see mcf.h), so check_flow_optimal() applies uniformly.
#pragma once

#include "mcf/mcf.h"
#include "mcf/workspace.h"

namespace mft {

McfSolution solve_ssp(const McfProblem& p);
McfSolution solve_ssp(const McfProblem& p, McfWorkspace& ws);
McfSolution solve_cycle_canceling(const McfProblem& p);

}  // namespace mft
