#include "mcf/network_simplex.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/fault.h"

namespace mft {
namespace {

// Arc states. kLower/kUpper encode the sign used in the violation test
// state * reduced_cost < 0.
enum State : int { kStateUpper = -1, kStateTree = 0, kStateLower = 1 };

// Direction of a node's predecessor (tree) arc.
enum Dir : int {
  kDirDown = 0,  // arc points parent -> node
  kDirUp = 1,    // arc points node -> parent
};

// The solver proper. All state lives in the McfWorkspace so a caller that
// keeps one across solves never reallocates; the class only binds
// references and runs the algorithm.
class Simplex {
 public:
  Simplex(const McfProblem& p, const NetworkSimplexOptions& opt,
          McfWorkspace& ws)
      : p_(p), ws_(ws), n_(p.num_nodes()), root_(p.num_nodes()) {
    const int m_user = p.num_arcs();
    m_ = m_user + n_;  // user arcs + one artificial arc per node

    ws_.tail.resize(static_cast<std::size_t>(m_));
    ws_.head.resize(static_cast<std::size_t>(m_));
    ws_.cap.resize(static_cast<std::size_t>(m_));
    ws_.cost.resize(static_cast<std::size_t>(m_));
    // Raw-pointer views of the workspace arrays: no vector sizes change
    // after this point, and the pointers let the optimizer keep hot-loop
    // loads in registers instead of re-reading through the vector headers.
    tail_p_ = ws_.tail.data();
    head_p_ = ws_.head.data();
    cap_p_ = ws_.cap.data();
    cost_p_ = ws_.cost.data();
    for (ArcId a = 0; a < m_user; ++a) {
      const McfArc& arc = p.arc(a);
      tail_p_[static_cast<std::size_t>(a)] = arc.tail;
      head_p_[static_cast<std::size_t>(a)] = arc.head;
      cap_p_[static_cast<std::size_t>(a)] = arc.capacity;
      cost_p_[static_cast<std::size_t>(a)] = arc.cost;
    }
    // Big-M exceeding any simple-path cost so artificial flow is driven out
    // whenever the instance is feasible.
    art_cost_ = (p.max_abs_cost() + 1) * static_cast<Cost>(n_ + 1);

    ws_.flow.assign(static_cast<std::size_t>(m_), 0);
    ws_.state.assign(static_cast<std::size_t>(m_), kStateLower);
    ws_.pi.assign(static_cast<std::size_t>(n_ + 1), 0);
    ws_.parent.assign(static_cast<std::size_t>(n_ + 1), kInvalidNode);
    ws_.pred.assign(static_cast<std::size_t>(n_ + 1), kInvalidArc);
    ws_.pred_dir.assign(static_cast<std::size_t>(n_ + 1), kDirDown);
    ws_.depth.assign(static_cast<std::size_t>(n_ + 1), 0);
    flow_p_ = ws_.flow.data();
    state_p_ = ws_.state.data();
    pi_p_ = ws_.pi.data();
    parent_p_ = ws_.parent.data();
    pred_p_ = ws_.pred.data();
    pred_dir_p_ = ws_.pred_dir.data();
    depth_p_ = ws_.depth.data();
    // Reuse the inner adjacency vectors' capacity across solves.
    if (static_cast<int>(ws_.tree_adj.size()) < n_ + 1)
      ws_.tree_adj.resize(static_cast<std::size_t>(n_ + 1));
    for (int v = 0; v <= n_; ++v)
      ws_.tree_adj[static_cast<std::size_t>(v)].clear();
    ws_.candidates.clear();
    ws_.ns_pivots = 0;

    // Initial basis: a star of artificial arcs around the virtual root,
    // oriented so each carries |supply(v)| of nonnegative flow.
    for (NodeId v = 0; v < n_; ++v) {
      const Flow s = p.supply(v);
      const ArcId a = static_cast<ArcId>(m_user + v);
      if (s >= 0) {
        tail_p_[static_cast<std::size_t>(a)] = v;
        head_p_[static_cast<std::size_t>(a)] = root_;
        flow_p_[static_cast<std::size_t>(a)] = s;
        pred_dir_p_[static_cast<std::size_t>(v)] = kDirUp;
        pi_p_[static_cast<std::size_t>(v)] = art_cost_;
      } else {
        tail_p_[static_cast<std::size_t>(a)] = root_;
        head_p_[static_cast<std::size_t>(a)] = v;
        flow_p_[static_cast<std::size_t>(a)] = -s;
        pred_dir_p_[static_cast<std::size_t>(v)] = kDirDown;
        pi_p_[static_cast<std::size_t>(v)] = -art_cost_;
      }
      cap_p_[static_cast<std::size_t>(a)] = kInfFlow;
      cost_p_[static_cast<std::size_t>(a)] = art_cost_;
      state_p_[static_cast<std::size_t>(a)] = kStateTree;
      parent_p_[static_cast<std::size_t>(v)] = root_;
      pred_p_[static_cast<std::size_t>(v)] = a;
      depth_p_[static_cast<std::size_t>(v)] = 1;
      ws_.tree_adj[static_cast<std::size_t>(v)].push_back(a);
      ws_.tree_adj[static_cast<std::size_t>(root_)].push_back(a);
    }

    pricing_ = opt.pricing;
    block_size_ = opt.block_size > 0
                      ? opt.block_size
                      : std::max(20, static_cast<int>(std::sqrt(
                                         static_cast<double>(m_))));
    list_size_ =
        opt.candidate_list_size > 0
            ? opt.candidate_list_size
            : std::max(30, static_cast<int>(
                               1.25 * std::sqrt(static_cast<double>(m_))));
    minor_limit_ = opt.minor_limit > 0 ? opt.minor_limit
                                       : std::max(3, list_size_ / 10);
    max_pivots_ = opt.max_pivots > 0
                      ? opt.max_pivots
                      : 50 * static_cast<std::int64_t>(m_) + 1000;
    next_arc_ = 0;
    minor_count_ = 0;
  }

  McfSolution run() {
    McfSolution sol;
    if (p_.total_supply() != 0) {
      sol.status = McfStatus::kInfeasible;
      return sol;
    }
    ArcId in_arc;
    while ((in_arc = find_entering_arc()) != kInvalidArc) {
      MFT_CHECK_MSG(++ws_.ns_pivots <= max_pivots_,
                    "network simplex exceeded pivot safety cap");
      if (!pivot(in_arc)) {
        sol.status = McfStatus::kUnbounded;
        return sol;
      }
    }
    // Any residual artificial flow means the supplies cannot be routed.
    for (ArcId a = p_.num_arcs(); a < m_; ++a) {
      if (flow_p_[static_cast<std::size_t>(a)] != 0) {
        sol.status = McfStatus::kInfeasible;
        return sol;
      }
    }
    sol.status = McfStatus::kOptimal;
    sol.flow.assign(ws_.flow.begin(), ws_.flow.begin() + p_.num_arcs());
    sol.potential.assign(ws_.pi.begin(), ws_.pi.begin() + n_);
    sol.total_cost = flow_cost(p_, sol.flow);
    return sol;
  }

 private:
  // Reduced cost under the dual contract of mcf.h.
  Cost reduced_cost(ArcId a) const {
    return cost_p_[static_cast<std::size_t>(a)] -
           pi_p_[static_cast<std::size_t>(
               tail_p_[static_cast<std::size_t>(a)])] +
           pi_p_[static_cast<std::size_t>(
               head_p_[static_cast<std::size_t>(a)])];
  }

  // state * reduced_cost < 0 means the arc profitably enters the basis.
  Cost violation(ArcId a) const {
    return -static_cast<Cost>(state_p_[static_cast<std::size_t>(a)]) *
           reduced_cost(a);
  }

  ArcId find_entering_arc() {
    return pricing_ == NetworkSimplexOptions::Pricing::kCandidateList
               ? candidate_list_pivot()
               : block_search_pivot();
  }

  // Block pivot search: scan arcs cyclically, return the most violating arc
  // within the first block that contains any violation.
  ArcId block_search_pivot() {
    Cost best_violation = 0;
    ArcId best = kInvalidArc;
    int counted = 0;
    for (int scanned = 0; scanned < m_; ++scanned) {
      const ArcId a = next_arc_;
      next_arc_ = (next_arc_ + 1 == m_) ? 0 : next_arc_ + 1;
      if (state_p_[static_cast<std::size_t>(a)] == kStateTree) continue;
      const Cost v = violation(a);
      if (v > best_violation) {
        best_violation = v;
        best = a;
      }
      if (++counted == block_size_) {
        if (best != kInvalidArc) return best;
        counted = 0;
      }
    }
    return best;
  }

  // Candidate-list pricing: serve pivots from a shortlist of violating
  // arcs, dropping entries whose violation was cured by earlier pivots;
  // rebuild the shortlist with a full cyclic scan when it runs dry or
  // after `minor_limit_` minor pivots.
  ArcId candidate_list_pivot() {
    auto& list = ws_.candidates;
    Cost best_violation = 0;
    ArcId best = kInvalidArc;
    if (minor_count_ < minor_limit_ && !list.empty()) {
      ++minor_count_;
      std::size_t keep = 0;
      for (std::size_t i = 0; i < list.size(); ++i) {
        const ArcId a = list[i];
        const Cost v = violation(a);
        if (v <= 0) continue;  // cured; drop from the shortlist
        list[keep++] = a;
        if (v > best_violation) {
          best_violation = v;
          best = a;
        }
      }
      list.resize(keep);
      if (best != kInvalidArc) return best;
    }
    // Major iteration: rebuild the shortlist from a full cyclic scan.
    minor_count_ = 1;
    list.clear();
    for (int scanned = 0; scanned < m_; ++scanned) {
      const ArcId a = next_arc_;
      next_arc_ = (next_arc_ + 1 == m_) ? 0 : next_arc_ + 1;
      const Cost v = violation(a);
      if (v <= 0) continue;
      list.push_back(a);
      if (v > best_violation) {
        best_violation = v;
        best = a;
      }
      if (static_cast<int>(list.size()) == list_size_) break;
    }
    return best;
  }

  // Two-pointer walk to the lowest common ancestor of u and v in the basis
  // tree: equalize depths, then climb in lockstep. No marking, no full
  // path-to-root traversal. Records the nodes strictly below the join on
  // each side (in walk order) so the leaving-arc search and the flow update
  // replay linear arrays instead of chasing parent pointers again.
  void collect_cycle(NodeId u, NodeId v) {
    auto& a = ws_.path_first;
    auto& b = ws_.path_second;
    a.clear();
    b.clear();
    while (depth_p_[static_cast<std::size_t>(u)] >
           depth_p_[static_cast<std::size_t>(v)]) {
      a.push_back(u);
      u = parent_p_[static_cast<std::size_t>(u)];
    }
    while (depth_p_[static_cast<std::size_t>(v)] >
           depth_p_[static_cast<std::size_t>(u)]) {
      b.push_back(v);
      v = parent_p_[static_cast<std::size_t>(v)];
    }
    while (u != v) {
      a.push_back(u);
      u = parent_p_[static_cast<std::size_t>(u)];
      b.push_back(v);
      v = parent_p_[static_cast<std::size_t>(v)];
    }
  }

  // Executes one pivot on `in_arc`. Returns false if the cycle is
  // cost-reducing and uncapacitated (unbounded problem).
  bool pivot(ArcId in_arc) {
    // Cycle orientation: `delta` units travel join -> first -> (in_arc
    // residual) -> second -> join.
    NodeId first, second;
    if (state_p_[static_cast<std::size_t>(in_arc)] == kStateLower) {
      first = tail_p_[static_cast<std::size_t>(in_arc)];
      second = head_p_[static_cast<std::size_t>(in_arc)];
    } else {
      first = head_p_[static_cast<std::size_t>(in_arc)];
      second = tail_p_[static_cast<std::size_t>(in_arc)];
    }
    collect_cycle(first, second);
    const auto& path_first = ws_.path_first;
    const auto& path_second = ws_.path_second;

    // Residual of the entering arc itself.
    Flow delta = state_p_[static_cast<std::size_t>(in_arc)] == kStateLower
                     ? cap_p_[static_cast<std::size_t>(in_arc)] -
                           flow_p_[static_cast<std::size_t>(in_arc)]
                     : flow_p_[static_cast<std::size_t>(in_arc)];
    int result = 0;  // 0: in_arc leaves; 1/2: a tree arc on either path
    NodeId u_out = kInvalidNode;

    // First-side path: cycle direction is parent -> child (toward `first`).
    for (const NodeId u : path_first) {
      const ArcId e = pred_p_[static_cast<std::size_t>(u)];
      const Flow f = flow_p_[static_cast<std::size_t>(e)];
      const Flow residual =
          pred_dir_p_[static_cast<std::size_t>(u)] == kDirDown
              ? cap_p_[static_cast<std::size_t>(e)] - f
              : f;
      if (residual < delta) {
        delta = residual;
        u_out = u;
        result = 1;
      }
    }
    // Second-side path: cycle direction is child -> parent. The recorded
    // path is in decreasing-depth order, so `<=` implements the strongly-
    // feasible tie-break: among equal residuals the lowest-depth arc (the
    // one closest to the join) leaves.
    for (const NodeId u : path_second) {
      const ArcId e = pred_p_[static_cast<std::size_t>(u)];
      const Flow f = flow_p_[static_cast<std::size_t>(e)];
      const Flow residual =
          pred_dir_p_[static_cast<std::size_t>(u)] == kDirUp
              ? cap_p_[static_cast<std::size_t>(e)] - f
              : f;
      if (residual <= delta) {
        delta = residual;
        u_out = u;
        result = 2;
      }
    }

    // Any genuine blocking residual is bounded by real capacities or total
    // supply; half of kInfFlow can only be reached via uncapacitated arcs,
    // i.e. a negative cycle with unbounded improving direction.
    if (delta >= kInfFlow / 2) return false;

    // Apply the flow change around the cycle.
    if (delta != 0) {
      const Flow signed_delta =
          state_p_[static_cast<std::size_t>(in_arc)] == kStateLower ? delta
                                                                     : -delta;
      flow_p_[static_cast<std::size_t>(in_arc)] += signed_delta;
      for (const NodeId u : path_first) {
        const ArcId e = pred_p_[static_cast<std::size_t>(u)];
        flow_p_[static_cast<std::size_t>(e)] +=
            pred_dir_p_[static_cast<std::size_t>(u)] == kDirDown ? delta
                                                                  : -delta;
      }
      for (const NodeId u : path_second) {
        const ArcId e = pred_p_[static_cast<std::size_t>(u)];
        flow_p_[static_cast<std::size_t>(e)] +=
            pred_dir_p_[static_cast<std::size_t>(u)] == kDirUp ? delta
                                                                : -delta;
      }
    }

    if (result == 0) {
      // The entering arc saturates without displacing a tree arc.
      state_p_[static_cast<std::size_t>(in_arc)] =
          state_p_[static_cast<std::size_t>(in_arc)] == kStateLower
              ? kStateUpper
              : kStateLower;
      return true;
    }

    // Swap the basis: `out_arc` (pred of u_out) leaves, in_arc enters.
    const ArcId out_arc = pred_p_[static_cast<std::size_t>(u_out)];
    const NodeId p_out = parent_p_[static_cast<std::size_t>(u_out)];
    detach_tree_arc(u_out, out_arc);
    detach_tree_arc(p_out, out_arc);
    state_p_[static_cast<std::size_t>(out_arc)] =
        flow_p_[static_cast<std::size_t>(out_arc)] == 0 ? kStateLower
                                                         : kStateUpper;

    const NodeId attach = result == 1 ? first : second;  // endpoint inside
    const NodeId outside =
        attach == tail_p_[static_cast<std::size_t>(in_arc)]
            ? head_p_[static_cast<std::size_t>(in_arc)]
            : tail_p_[static_cast<std::size_t>(in_arc)];
    ws_.tree_adj[static_cast<std::size_t>(attach)].push_back(in_arc);
    ws_.tree_adj[static_cast<std::size_t>(outside)].push_back(in_arc);
    state_p_[static_cast<std::size_t>(in_arc)] = kStateTree;

    reroot_subtree(attach, outside, in_arc);
    return true;
  }

  void detach_tree_arc(NodeId v, ArcId a) {
    auto& adj = ws_.tree_adj[static_cast<std::size_t>(v)];
    for (std::size_t i = 0; i < adj.size(); ++i) {
      if (adj[i] == a) {
        adj[i] = adj.back();
        adj.pop_back();
        return;
      }
    }
    MFT_CHECK_MSG(false, "tree arc not found in adjacency");
  }

  // Re-roots the detached subtree at `q`, now hanging from `q_parent` via
  // tree arc `via`. The tree arcs *inside* the subtree are unchanged, so
  // every subtree dual shifts by the same constant; one DFS rewrites
  // parent/pred/pred_dir/depth and applies that single pi delta — no
  // per-node cost arithmetic.
  void reroot_subtree(NodeId q, NodeId q_parent, ArcId via) {
    const Cost new_pi_q =
        tail_p_[static_cast<std::size_t>(via)] == q_parent
            ? pi_p_[static_cast<std::size_t>(q_parent)] -
                  cost_p_[static_cast<std::size_t>(via)]
            : pi_p_[static_cast<std::size_t>(q_parent)] +
                  cost_p_[static_cast<std::size_t>(via)];
    const Cost dpi = new_pi_q - pi_p_[static_cast<std::size_t>(q)];

    auto& stack = ws_.stack;
    stack.clear();
    attach_node(q, q_parent, via);
    pi_p_[static_cast<std::size_t>(q)] += dpi;
    stack.push_back(q);
    while (!stack.empty()) {
      const NodeId w = stack.back();
      stack.pop_back();
      for (const ArcId a : ws_.tree_adj[static_cast<std::size_t>(w)]) {
        if (a == pred_p_[static_cast<std::size_t>(w)]) continue;
        const NodeId z = tail_p_[static_cast<std::size_t>(a)] == w
                             ? head_p_[static_cast<std::size_t>(a)]
                             : tail_p_[static_cast<std::size_t>(a)];
        attach_node(z, w, a);
        pi_p_[static_cast<std::size_t>(z)] += dpi;
        stack.push_back(z);
      }
    }
  }

  void attach_node(NodeId child, NodeId parent, ArcId a) {
    parent_p_[static_cast<std::size_t>(child)] = parent;
    pred_p_[static_cast<std::size_t>(child)] = a;
    pred_dir_p_[static_cast<std::size_t>(child)] =
        tail_p_[static_cast<std::size_t>(a)] == parent ? kDirDown : kDirUp;
    depth_p_[static_cast<std::size_t>(child)] =
        depth_p_[static_cast<std::size_t>(parent)] + 1;
  }

  const McfProblem& p_;
  McfWorkspace& ws_;
  NodeId* tail_p_ = nullptr;
  NodeId* head_p_ = nullptr;
  Flow* cap_p_ = nullptr;
  Flow* flow_p_ = nullptr;
  Cost* cost_p_ = nullptr;
  int* state_p_ = nullptr;
  Cost* pi_p_ = nullptr;
  NodeId* parent_p_ = nullptr;
  ArcId* pred_p_ = nullptr;
  int* pred_dir_p_ = nullptr;
  int* depth_p_ = nullptr;
  const int n_;
  const NodeId root_;
  int m_ = 0;
  Cost art_cost_ = 0;
  NetworkSimplexOptions::Pricing pricing_ =
      NetworkSimplexOptions::Pricing::kCandidateList;
  int block_size_ = 0;
  int list_size_ = 0;
  int minor_limit_ = 0;
  int minor_count_ = 0;
  std::int64_t max_pivots_ = 0;
  ArcId next_arc_ = 0;
};

}  // namespace

McfSolution solve_network_simplex(const McfProblem& p,
                                  const NetworkSimplexOptions& opt,
                                  McfWorkspace* ws) {
  MFT_FAULT_POINT("flow.solve");
  if (p.num_nodes() == 0) {
    if (ws) ws->ns_pivots = 0;
    McfSolution sol;
    sol.status = McfStatus::kOptimal;
    return sol;
  }
  McfWorkspace local;
  return Simplex(p, opt, ws ? *ws : local).run();
}

}  // namespace mft
