#include "mcf/network_simplex.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace mft {
namespace {

// Arc states. kLower/kUpper encode the sign used in the violation test
// state * reduced_cost < 0.
enum State : int { kStateUpper = -1, kStateTree = 0, kStateLower = 1 };

// Direction of a node's predecessor (tree) arc.
enum Dir : int {
  kDirDown = 0,  // arc points parent -> node
  kDirUp = 1,    // arc points node -> parent
};

class Simplex {
 public:
  Simplex(const McfProblem& p, const NetworkSimplexOptions& opt)
      : p_(p), n_(p.num_nodes()), root_(p.num_nodes()) {
    const int m_user = p.num_arcs();
    m_ = m_user + n_;  // user arcs + one artificial arc per node
    tail_.reserve(m_);
    head_.reserve(m_);
    cap_.reserve(m_);
    cost_.reserve(m_);
    for (const McfArc& a : p.arcs()) {
      tail_.push_back(a.tail);
      head_.push_back(a.head);
      cap_.push_back(a.capacity);
      cost_.push_back(a.cost);
    }
    // Big-M exceeding any simple-path cost so artificial flow is driven out
    // whenever the instance is feasible.
    art_cost_ = (p.max_abs_cost() + 1) * static_cast<Cost>(n_ + 1);

    flow_.assign(static_cast<std::size_t>(m_), 0);
    state_.assign(static_cast<std::size_t>(m_), kStateLower);
    pi_.assign(static_cast<std::size_t>(n_ + 1), 0);
    parent_.assign(static_cast<std::size_t>(n_ + 1), kInvalidNode);
    pred_.assign(static_cast<std::size_t>(n_ + 1), kInvalidArc);
    pred_dir_.assign(static_cast<std::size_t>(n_ + 1), kDirDown);
    tree_adj_.assign(static_cast<std::size_t>(n_ + 1), {});

    for (NodeId v = 0; v < n_; ++v) {
      const Flow s = p.supply(v);
      ArcId a;
      if (s >= 0) {
        a = add_internal_arc(v, root_, kInfFlow, art_cost_);
        flow_[static_cast<std::size_t>(a)] = s;
        pred_dir_[static_cast<std::size_t>(v)] = kDirUp;
        pi_[static_cast<std::size_t>(v)] = art_cost_;
      } else {
        a = add_internal_arc(root_, v, kInfFlow, art_cost_);
        flow_[static_cast<std::size_t>(a)] = -s;
        pred_dir_[static_cast<std::size_t>(v)] = kDirDown;
        pi_[static_cast<std::size_t>(v)] = -art_cost_;
      }
      state_[static_cast<std::size_t>(a)] = kStateTree;
      parent_[static_cast<std::size_t>(v)] = root_;
      pred_[static_cast<std::size_t>(v)] = a;
      tree_adj_[static_cast<std::size_t>(v)].push_back(a);
      tree_adj_[static_cast<std::size_t>(root_)].push_back(a);
    }

    block_size_ = opt.block_size > 0
                      ? opt.block_size
                      : std::max(20, static_cast<int>(std::sqrt(
                                         static_cast<double>(m_))));
    max_pivots_ = opt.max_pivots > 0
                      ? opt.max_pivots
                      : 50 * static_cast<std::int64_t>(m_) + 1000;
  }

  McfSolution run() {
    McfSolution sol;
    if (p_.total_supply() != 0) {
      sol.status = McfStatus::kInfeasible;
      return sol;
    }
    std::int64_t pivots = 0;
    ArcId in_arc;
    while ((in_arc = find_entering_arc()) != kInvalidArc) {
      MFT_CHECK_MSG(++pivots <= max_pivots_,
                    "network simplex exceeded pivot safety cap");
      if (!pivot(in_arc)) {
        sol.status = McfStatus::kUnbounded;
        return sol;
      }
    }
    // Any residual artificial flow means the supplies cannot be routed.
    for (ArcId a = p_.num_arcs(); a < m_; ++a) {
      if (flow_[static_cast<std::size_t>(a)] != 0) {
        sol.status = McfStatus::kInfeasible;
        return sol;
      }
    }
    sol.status = McfStatus::kOptimal;
    sol.flow.assign(flow_.begin(), flow_.begin() + p_.num_arcs());
    sol.potential.assign(pi_.begin(), pi_.begin() + n_);
    sol.total_cost = flow_cost(p_, sol.flow);
    return sol;
  }

 private:
  ArcId add_internal_arc(NodeId t, NodeId h, Flow cap, Cost cost) {
    tail_.push_back(t);
    head_.push_back(h);
    cap_.push_back(cap);
    cost_.push_back(cost);
    return static_cast<ArcId>(tail_.size() - 1);
  }

  // Reduced cost under the dual contract of mcf.h.
  Cost reduced_cost(ArcId a) const {
    return cost_[static_cast<std::size_t>(a)] -
           pi_[static_cast<std::size_t>(tail_[static_cast<std::size_t>(a)])] +
           pi_[static_cast<std::size_t>(head_[static_cast<std::size_t>(a)])];
  }

  // Block pivot search: scan arcs cyclically, return the most violating arc
  // within the first block that contains any violation.
  ArcId find_entering_arc() {
    Cost best_violation = 0;
    ArcId best = kInvalidArc;
    int counted = 0;
    for (int scanned = 0; scanned < m_; ++scanned) {
      const ArcId a = next_arc_;
      next_arc_ = (next_arc_ + 1 == m_) ? 0 : next_arc_ + 1;
      const int s = state_[static_cast<std::size_t>(a)];
      if (s == kStateTree) continue;
      const Cost violation = -static_cast<Cost>(s) * reduced_cost(a);
      if (violation > best_violation) {
        best_violation = violation;
        best = a;
      }
      if (++counted == block_size_) {
        if (best != kInvalidArc) return best;
        counted = 0;
      }
    }
    return best;
  }

  NodeId find_join(NodeId u, NodeId v) {
    // Mark the path u -> root, then walk from v until a marked node.
    for (NodeId w = u; w != kInvalidNode; w = parent_[static_cast<std::size_t>(w)])
      mark_[static_cast<std::size_t>(w)] = true;
    NodeId join = v;
    while (!mark_[static_cast<std::size_t>(join)])
      join = parent_[static_cast<std::size_t>(join)];
    for (NodeId w = u; w != kInvalidNode; w = parent_[static_cast<std::size_t>(w)])
      mark_[static_cast<std::size_t>(w)] = false;
    return join;
  }

  // Executes one pivot on `in_arc`. Returns false if the cycle is
  // cost-reducing and uncapacitated (unbounded problem).
  bool pivot(ArcId in_arc) {
    if (mark_.empty()) mark_.assign(static_cast<std::size_t>(n_ + 1), false);

    // Cycle orientation: `delta` units travel join -> first -> (in_arc
    // residual) -> second -> join.
    NodeId first, second;
    if (state_[static_cast<std::size_t>(in_arc)] == kStateLower) {
      first = tail_[static_cast<std::size_t>(in_arc)];
      second = head_[static_cast<std::size_t>(in_arc)];
    } else {
      first = head_[static_cast<std::size_t>(in_arc)];
      second = tail_[static_cast<std::size_t>(in_arc)];
    }
    const NodeId join = find_join(first, second);

    // Residual of the entering arc itself.
    Flow delta =
        state_[static_cast<std::size_t>(in_arc)] == kStateLower
            ? cap_[static_cast<std::size_t>(in_arc)] -
                  flow_[static_cast<std::size_t>(in_arc)]
            : flow_[static_cast<std::size_t>(in_arc)];
    int result = 0;  // 0: in_arc leaves; 1/2: a tree arc on either path
    NodeId u_out = kInvalidNode;

    // First-side path: cycle direction is parent -> child (toward `first`).
    for (NodeId u = first; u != join; u = parent_[static_cast<std::size_t>(u)]) {
      const ArcId e = pred_[static_cast<std::size_t>(u)];
      const Flow f = flow_[static_cast<std::size_t>(e)];
      const Flow residual = pred_dir_[static_cast<std::size_t>(u)] == kDirDown
                                ? cap_[static_cast<std::size_t>(e)] - f
                                : f;
      if (residual < delta) {
        delta = residual;
        u_out = u;
        result = 1;
      }
    }
    // Second-side path: cycle direction is child -> parent. `<=` implements
    // the strongly-feasible tie-break (leave the arc closest to join on the
    // second side).
    for (NodeId u = second; u != join; u = parent_[static_cast<std::size_t>(u)]) {
      const ArcId e = pred_[static_cast<std::size_t>(u)];
      const Flow f = flow_[static_cast<std::size_t>(e)];
      const Flow residual = pred_dir_[static_cast<std::size_t>(u)] == kDirUp
                                ? cap_[static_cast<std::size_t>(e)] - f
                                : f;
      if (residual <= delta) {
        delta = residual;
        u_out = u;
        result = 2;
      }
    }

    // Any genuine blocking residual is bounded by real capacities or total
    // supply; half of kInfFlow can only be reached via uncapacitated arcs,
    // i.e. a negative cycle with unbounded improving direction.
    if (delta >= kInfFlow / 2) return false;

    // Apply the flow change around the cycle.
    if (delta != 0) {
      const Flow signed_delta =
          state_[static_cast<std::size_t>(in_arc)] == kStateLower ? delta
                                                                  : -delta;
      flow_[static_cast<std::size_t>(in_arc)] += signed_delta;
      for (NodeId u = first; u != join;
           u = parent_[static_cast<std::size_t>(u)]) {
        const ArcId e = pred_[static_cast<std::size_t>(u)];
        flow_[static_cast<std::size_t>(e)] +=
            pred_dir_[static_cast<std::size_t>(u)] == kDirDown ? delta : -delta;
      }
      for (NodeId u = second; u != join;
           u = parent_[static_cast<std::size_t>(u)]) {
        const ArcId e = pred_[static_cast<std::size_t>(u)];
        flow_[static_cast<std::size_t>(e)] +=
            pred_dir_[static_cast<std::size_t>(u)] == kDirUp ? delta : -delta;
      }
    }

    if (result == 0) {
      // The entering arc saturates without displacing a tree arc.
      state_[static_cast<std::size_t>(in_arc)] =
          state_[static_cast<std::size_t>(in_arc)] == kStateLower ? kStateUpper
                                                                  : kStateLower;
      return true;
    }

    // Swap the basis: `out_arc` (pred of u_out) leaves, in_arc enters.
    const ArcId out_arc = pred_[static_cast<std::size_t>(u_out)];
    const NodeId p_out = parent_[static_cast<std::size_t>(u_out)];
    detach_tree_arc(u_out, out_arc);
    detach_tree_arc(p_out, out_arc);
    state_[static_cast<std::size_t>(out_arc)] =
        flow_[static_cast<std::size_t>(out_arc)] == 0 ? kStateLower
                                                      : kStateUpper;

    const NodeId attach = result == 1 ? first : second;  // endpoint inside
    const NodeId outside = attach == tail_[static_cast<std::size_t>(in_arc)]
                               ? head_[static_cast<std::size_t>(in_arc)]
                               : tail_[static_cast<std::size_t>(in_arc)];
    tree_adj_[static_cast<std::size_t>(attach)].push_back(in_arc);
    tree_adj_[static_cast<std::size_t>(outside)].push_back(in_arc);
    state_[static_cast<std::size_t>(in_arc)] = kStateTree;

    reroot_subtree(attach, outside, in_arc);
    return true;
  }

  void detach_tree_arc(NodeId v, ArcId a) {
    auto& adj = tree_adj_[static_cast<std::size_t>(v)];
    for (std::size_t i = 0; i < adj.size(); ++i) {
      if (adj[i] == a) {
        adj[i] = adj.back();
        adj.pop_back();
        return;
      }
    }
    MFT_CHECK_MSG(false, "tree arc not found in adjacency");
  }

  // Re-roots the detached subtree at `q`, now hanging from `q_parent` via
  // tree arc `via`, recomputing parent/pred/pi for every subtree node.
  void reroot_subtree(NodeId q, NodeId q_parent, ArcId via) {
    stack_.clear();
    attach_node(q, q_parent, via);
    stack_.push_back(q);
    while (!stack_.empty()) {
      const NodeId w = stack_.back();
      stack_.pop_back();
      for (const ArcId a : tree_adj_[static_cast<std::size_t>(w)]) {
        if (a == pred_[static_cast<std::size_t>(w)]) continue;
        const NodeId z = tail_[static_cast<std::size_t>(a)] == w
                             ? head_[static_cast<std::size_t>(a)]
                             : tail_[static_cast<std::size_t>(a)];
        attach_node(z, w, a);
        stack_.push_back(z);
      }
    }
  }

  void attach_node(NodeId child, NodeId parent, ArcId a) {
    parent_[static_cast<std::size_t>(child)] = parent;
    pred_[static_cast<std::size_t>(child)] = a;
    if (tail_[static_cast<std::size_t>(a)] == parent) {
      // arc parent -> child: 0 = cost - pi(parent) + pi(child)
      pred_dir_[static_cast<std::size_t>(child)] = kDirDown;
      pi_[static_cast<std::size_t>(child)] =
          pi_[static_cast<std::size_t>(parent)] -
          cost_[static_cast<std::size_t>(a)];
    } else {
      // arc child -> parent: 0 = cost - pi(child) + pi(parent)
      pred_dir_[static_cast<std::size_t>(child)] = kDirUp;
      pi_[static_cast<std::size_t>(child)] =
          pi_[static_cast<std::size_t>(parent)] +
          cost_[static_cast<std::size_t>(a)];
    }
  }

  const McfProblem& p_;
  const int n_;
  const NodeId root_;
  int m_ = 0;
  Cost art_cost_ = 0;
  int block_size_ = 0;
  std::int64_t max_pivots_ = 0;
  ArcId next_arc_ = 0;

  // Parallel arrays over user + artificial arcs.
  std::vector<NodeId> tail_, head_;
  std::vector<Flow> cap_, flow_;
  std::vector<Cost> cost_;
  std::vector<int> state_;

  // Spanning-tree basis.
  std::vector<Cost> pi_;
  std::vector<NodeId> parent_;
  std::vector<ArcId> pred_;
  std::vector<int> pred_dir_;
  std::vector<std::vector<ArcId>> tree_adj_;
  std::vector<bool> mark_;
  std::vector<NodeId> stack_;
};

}  // namespace

McfSolution solve_network_simplex(const McfProblem& p,
                                  const NetworkSimplexOptions& opt) {
  if (p.num_nodes() == 0) {
    McfSolution sol;
    sol.status = McfStatus::kOptimal;
    return sol;
  }
  return Simplex(p, opt).run();
}

}  // namespace mft
