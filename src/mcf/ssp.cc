#include "mcf/ssp.h"

#include <algorithm>
#include <queue>
#include <vector>

namespace mft {
namespace {

constexpr Cost kInfCost = std::numeric_limits<Cost>::max() / 4;

// Residual network with paired arcs: arc 2i is the forward image of user
// arc i, arc 2i+1 its reverse. cap[] holds *residual* capacity. The arrays
// are borrowed from an McfWorkspace so repeated solves reuse allocations.
struct Residual {
  std::vector<NodeId>& to;
  std::vector<Flow>& cap;
  std::vector<Cost>& cost;
  std::vector<std::vector<int>>& adj;

  Residual(const McfProblem& p, McfWorkspace& ws)
      : to(ws.res_to), cap(ws.res_cap), cost(ws.res_cost), adj(ws.res_adj) {
    const std::size_t n = static_cast<std::size_t>(p.num_nodes());
    to.clear();
    cap.clear();
    cost.clear();
    if (adj.size() < n) adj.resize(n);
    for (std::size_t v = 0; v < n; ++v) adj[v].clear();
    to.reserve(2 * p.arcs().size());
    for (const McfArc& a : p.arcs()) {
      adj[static_cast<std::size_t>(a.tail)].push_back(static_cast<int>(to.size()));
      to.push_back(a.head);
      cap.push_back(a.capacity);
      cost.push_back(a.cost);
      adj[static_cast<std::size_t>(a.head)].push_back(static_cast<int>(to.size()));
      to.push_back(a.tail);
      cap.push_back(0);
      cost.push_back(-a.cost);
    }
  }

  NodeId tail(int e) const { return to[static_cast<std::size_t>(e ^ 1)]; }

  void push(int e, Flow f) {
    cap[static_cast<std::size_t>(e)] -= f;
    cap[static_cast<std::size_t>(e ^ 1)] += f;
  }
};

// Bellman–Ford over residual arcs with positive capacity, from a virtual
// source at distance 0 to every node. Returns true and a cycle (arc ids) if
// a negative cycle is reachable; otherwise fills dist[].
bool bellman_ford(const Residual& r, int n, std::vector<Cost>& dist,
                  std::vector<int>* cycle_arcs, McfWorkspace& ws) {
  dist.assign(static_cast<std::size_t>(n), 0);
  if (n == 0) return false;
  auto& pred_arc = ws.pred_arc;
  pred_arc.assign(static_cast<std::size_t>(n), -1);
  NodeId updated = kInvalidNode;
  for (int round = 0; round < n; ++round) {
    updated = kInvalidNode;
    for (int e = 0; e < static_cast<int>(r.to.size()); ++e) {
      if (r.cap[static_cast<std::size_t>(e)] <= 0) continue;
      const NodeId u = r.tail(e);
      const NodeId v = r.to[static_cast<std::size_t>(e)];
      const Cost nd = dist[static_cast<std::size_t>(u)] +
                      r.cost[static_cast<std::size_t>(e)];
      if (nd < dist[static_cast<std::size_t>(v)]) {
        dist[static_cast<std::size_t>(v)] = nd;
        pred_arc[static_cast<std::size_t>(v)] = e;
        updated = v;
      }
    }
    if (updated == kInvalidNode) return false;
  }
  if (cycle_arcs == nullptr) return true;
  // Walk predecessors n steps to land inside the cycle, then unwind it.
  NodeId w = updated;
  for (int i = 0; i < n; ++i)
    w = r.tail(pred_arc[static_cast<std::size_t>(w)]);
  cycle_arcs->clear();
  NodeId x = w;
  do {
    const int e = pred_arc[static_cast<std::size_t>(x)];
    cycle_arcs->push_back(e);
    x = r.tail(e);
  } while (x != w);
  return true;
}

// Cancels all Bellman–Ford-detectable negative cycles. Returns false if an
// uncapacitated negative cycle makes the problem unbounded.
bool cancel_negative_cycles(Residual& r, int n, McfWorkspace& ws) {
  std::vector<Cost> dist;
  std::vector<int> cycle;
  while (bellman_ford(r, n, dist, &cycle, ws)) {
    Flow delta = kInfFlow;
    for (int e : cycle)
      delta = std::min(delta, r.cap[static_cast<std::size_t>(e)]);
    if (delta >= kInfFlow / 2) return false;
    for (int e : cycle) r.push(e, delta);
  }
  return true;
}

McfSolution extract(const McfProblem& p, const Residual& r,
                    const std::vector<Cost>& neg_potential) {
  McfSolution sol;
  sol.status = McfStatus::kOptimal;
  sol.flow.resize(static_cast<std::size_t>(p.num_arcs()));
  for (ArcId a = 0; a < p.num_arcs(); ++a)
    sol.flow[static_cast<std::size_t>(a)] =
        p.arc(a).capacity - r.cap[static_cast<std::size_t>(2 * a)];
  // Johnson distances d satisfy d(u) + c <= ... for residual arcs; the mcf.h
  // contract wants potential = -d.
  sol.potential.resize(static_cast<std::size_t>(p.num_nodes()));
  for (NodeId v = 0; v < p.num_nodes(); ++v)
    sol.potential[static_cast<std::size_t>(v)] =
        -neg_potential[static_cast<std::size_t>(v)];
  sol.total_cost = flow_cost(p, sol.flow);
  return sol;
}

McfSolution run_ssp(const McfProblem& p, McfWorkspace& ws) {
  McfSolution fail;
  ws.ssp_augmentations = 0;
  if (p.total_supply() != 0) {
    fail.status = McfStatus::kInfeasible;
    return fail;
  }
  const int n = p.num_nodes();
  Residual r(p, ws);

  if (!cancel_negative_cycles(r, n, ws)) {
    fail.status = McfStatus::kUnbounded;
    return fail;
  }
  auto& pi = ws.johnson_pi;  // Johnson potentials (distance-like)
  bellman_ford(r, n, pi, nullptr, ws);

  auto& excess = ws.excess;
  excess.assign(p.supplies().begin(), p.supplies().end());
  auto& dist = ws.dist;
  auto& pred = ws.pred_arc;
  auto& settled = ws.settled;
  dist.resize(static_cast<std::size_t>(n));
  pred.resize(static_cast<std::size_t>(n));
  settled.resize(static_cast<std::size_t>(n));

  for (NodeId s = 0; s < n; ++s) {
    while (excess[static_cast<std::size_t>(s)] > 0) {
      // Dijkstra with reduced costs from s until some deficit node settles.
      std::fill(dist.begin(), dist.end(), kInfCost);
      std::fill(pred.begin(), pred.end(), -1);
      std::fill(settled.begin(), settled.end(), 0);
      using Item = std::pair<Cost, NodeId>;
      std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
      dist[static_cast<std::size_t>(s)] = 0;
      heap.emplace(0, s);
      NodeId t = kInvalidNode;
      while (!heap.empty()) {
        auto [d, u] = heap.top();
        heap.pop();
        if (settled[static_cast<std::size_t>(u)]) continue;
        settled[static_cast<std::size_t>(u)] = 1;
        if (excess[static_cast<std::size_t>(u)] < 0) {
          t = u;
          break;
        }
        for (int e : r.adj[static_cast<std::size_t>(u)]) {
          if (r.cap[static_cast<std::size_t>(e)] <= 0) continue;
          const NodeId v = r.to[static_cast<std::size_t>(e)];
          if (settled[static_cast<std::size_t>(v)]) continue;
          const Cost rc = r.cost[static_cast<std::size_t>(e)] +
                          pi[static_cast<std::size_t>(u)] -
                          pi[static_cast<std::size_t>(v)];
          MFT_DCHECK(rc >= 0);
          if (d + rc < dist[static_cast<std::size_t>(v)]) {
            dist[static_cast<std::size_t>(v)] = d + rc;
            pred[static_cast<std::size_t>(v)] = e;
            heap.emplace(d + rc, v);
          }
        }
      }
      if (t == kInvalidNode) {
        fail.status = McfStatus::kInfeasible;
        return fail;
      }
      const Cost dt = dist[static_cast<std::size_t>(t)];
      for (NodeId v = 0; v < n; ++v)
        pi[static_cast<std::size_t>(v)] +=
            std::min(dist[static_cast<std::size_t>(v)], dt);
      // Augment along the shortest path.
      Flow delta = std::min(excess[static_cast<std::size_t>(s)],
                            -excess[static_cast<std::size_t>(t)]);
      for (NodeId v = t; v != s; v = r.tail(pred[static_cast<std::size_t>(v)]))
        delta = std::min(
            delta, r.cap[static_cast<std::size_t>(pred[static_cast<std::size_t>(v)])]);
      for (NodeId v = t; v != s; v = r.tail(pred[static_cast<std::size_t>(v)]))
        r.push(pred[static_cast<std::size_t>(v)], delta);
      excess[static_cast<std::size_t>(s)] -= delta;
      excess[static_cast<std::size_t>(t)] += delta;
      ++ws.ssp_augmentations;
    }
  }
  return extract(p, r, pi);
}

}  // namespace

McfSolution solve_ssp(const McfProblem& p, McfWorkspace& ws) {
  return run_ssp(p, ws);
}

McfSolution solve_ssp(const McfProblem& p) {
  McfWorkspace ws;
  return run_ssp(p, ws);
}

McfSolution solve_cycle_canceling(const McfProblem& p) {
  McfSolution fail;
  if (p.total_supply() != 0) {
    fail.status = McfStatus::kInfeasible;
    return fail;
  }
  // Phase 1: any feasible flow, via SSP on a zero-cost copy.
  McfProblem zero(p.num_nodes());
  for (const McfArc& a : p.arcs()) zero.add_arc(a.tail, a.head, a.capacity, 0);
  for (NodeId v = 0; v < p.num_nodes(); ++v) zero.set_supply(v, p.supply(v));
  McfSolution feasible = solve_ssp(zero);
  if (feasible.status != McfStatus::kOptimal) return feasible;

  // Phase 2: load the feasible flow into a residual network with the real
  // costs and cancel negative cycles.
  const int n = p.num_nodes();
  McfWorkspace ws;
  Residual r(p, ws);
  for (ArcId a = 0; a < p.num_arcs(); ++a)
    r.push(2 * a, feasible.flow[static_cast<std::size_t>(a)]);
  if (!cancel_negative_cycles(r, n, ws)) {
    fail.status = McfStatus::kUnbounded;
    return fail;
  }
  std::vector<Cost> pi;
  bellman_ford(r, n, pi, nullptr, ws);
  return extract(p, r, pi);
}

}  // namespace mft
