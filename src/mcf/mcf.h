// Minimum-cost network flow: problem definition, solution container, and
// optimality verification.
//
// This is the engine behind the paper's D-phase (§2.3.1): the delay-budget
// LP of eq. (10) is the dual of a min-cost flow, and the paper prescribes
// integerized costs ("multiplying every constant term by some power of 10"),
// so the solvers here work in exact 64-bit integer arithmetic.
//
// Conventions
//  - Arcs have lower bound 0, an upper capacity (possibly kInfFlow) and a
//    cost per unit of flow (may be negative).
//  - Node "supply" is positive for sources, negative for sinks; a feasible
//    flow satisfies, at every node v:  outflow(v) - inflow(v) = supply(v).
//  - A solution's `potential` vector satisfies the complementary-slackness
//    contract: for every arc a,
//        flow[a] < capacity[a]  =>  potential[tail] - potential[head] <= cost[a]
//        flow[a] > 0            =>  potential[tail] - potential[head] >= cost[a]
//    which makes `potential` an optimal solution of the dual LP
//        max Σ supply(v)·π(v)  s.t.  π(u) - π(v) <= cost(u,v).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "graph/digraph.h"

namespace mft {

using Flow = std::int64_t;
using Cost = std::int64_t;

/// Sentinel for uncapacitated arcs. Kept far from the int64 limit so that
/// residual arithmetic cannot overflow.
inline constexpr Flow kInfFlow = std::numeric_limits<Flow>::max() / 4;

/// One directed arc of a min-cost flow problem.
struct McfArc {
  NodeId tail = kInvalidNode;
  NodeId head = kInvalidNode;
  Flow capacity = 0;
  Cost cost = 0;
};

/// A min-cost flow instance. Nodes are 0..num_nodes()-1.
class McfProblem {
 public:
  explicit McfProblem(int num_nodes);

  /// Add an arc tail->head; self-loops are rejected. Returns the arc id.
  ArcId add_arc(NodeId tail, NodeId head, Flow capacity, Cost cost);

  void set_supply(NodeId v, Flow s);
  void add_supply(NodeId v, Flow s);

  /// Rewrite the cost of an existing arc (topology/capacity unchanged).
  /// This is what lets a reused problem skeleton absorb fresh D-phase
  /// bounds each iteration without reconstruction.
  void set_arc_cost(ArcId a, Cost cost);

  /// Reset every supply to zero, keeping all arcs.
  void clear_supplies();

  int num_nodes() const { return static_cast<int>(supply_.size()); }
  int num_arcs() const { return static_cast<int>(arcs_.size()); }
  const McfArc& arc(ArcId a) const { return arcs_[static_cast<std::size_t>(a)]; }
  const std::vector<McfArc>& arcs() const { return arcs_; }
  Flow supply(NodeId v) const { return supply_[static_cast<std::size_t>(v)]; }
  const std::vector<Flow>& supplies() const { return supply_; }

  /// Sum of all supplies; a feasible instance needs this to be zero.
  Flow total_supply() const;

  /// Largest |cost| over all arcs (0 if no arcs).
  Cost max_abs_cost() const;

 private:
  std::vector<McfArc> arcs_;
  std::vector<Flow> supply_;
};

enum class McfStatus {
  kOptimal,     ///< feasible and a minimum-cost flow was found
  kInfeasible,  ///< supplies cannot be routed
  kUnbounded,   ///< a negative-cost cycle of infinite capacity exists
};

const char* to_string(McfStatus s);

/// Result of a solver run. `flow` and `potential` are only meaningful when
/// `status == kOptimal`.
struct McfSolution {
  McfStatus status = McfStatus::kInfeasible;
  Cost total_cost = 0;
  std::vector<Flow> flow;       ///< per arc
  std::vector<Cost> potential;  ///< per node; see contract above
};

/// Verifies conservation and capacity constraints of `flow`.
/// On failure returns false and, if `why` != nullptr, a diagnostic.
bool check_flow_feasible(const McfProblem& p, const std::vector<Flow>& flow,
                         std::string* why = nullptr);

/// Verifies that `sol` is an optimal solution: feasibility plus the
/// complementary-slackness conditions between flow and potential.
bool check_flow_optimal(const McfProblem& p, const McfSolution& sol,
                        std::string* why = nullptr);

/// Recomputes Σ flow[a]·cost[a] in 128-bit arithmetic; checks it fits int64.
Cost flow_cost(const McfProblem& p, const std::vector<Flow>& flow);

}  // namespace mft
