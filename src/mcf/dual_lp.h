// The D-phase LP (paper eq. (10)) is a maximization over difference
// constraints:
//
//     maximize   Σ c_k · r_k
//     subject to r_a − r_b ≤ w_ab          (one per constraint)
//                r_k = 0 for "grounded" variables (PIs and the dummy
//                                                  output O, Corollary 1)
//
// Its dual is a min-cost network flow: each constraint becomes an
// uncapacitated arc a→b of cost w_ab, each objective coefficient a node
// supply, and all grounded variables collapse into one ground node. The
// optimal node potentials of the flow are an optimal r.
//
// Costs and supplies are integerized by decimal scaling exactly as §2.3.1
// prescribes; objective terms are added as ±pairs so supplies stay balanced
// after rounding.
#pragma once

#include <vector>

#include "mcf/mcf.h"

namespace mft {

/// Which flow solver backs the LP. NetworkSimplex is the production choice;
/// the others exist for cross-checking and the solver-ablation bench.
enum class FlowSolver { kNetworkSimplex, kSsp, kCycleCanceling };

const char* to_string(FlowSolver s);

/// Builder + solver for the difference-constraint dual LP above.
class DualFlowLp {
 public:
  explicit DualFlowLp(int num_vars);

  /// Pin variable `v` to zero (PIs / dummy output in the D-phase).
  void fix_zero(int v);

  /// Add constraint  r_a − r_b ≤ w.
  void add_constraint(int a, int b, double w);

  /// Add objective term  coeff · (r_plus − r_minus), coeff of either sign.
  /// Keeping the ± pair together guarantees exact supply balance after
  /// integer scaling.
  void add_objective_difference(int plus, int minus, double coeff);

  struct Result {
    bool solved = false;        ///< false => flow infeasible (LP unbounded)
    McfStatus flow_status = McfStatus::kInfeasible;
    std::vector<double> r;      ///< optimal variable values (grounded = 0)
    double objective = 0.0;     ///< Σ c_k r_k at the optimum
    Cost flow_cost = 0;         ///< integerized flow cost (diagnostics)
  };

  /// Solve with decimal scaling 10^cost_digits for constraint bounds and
  /// 10^supply_digits for objective coefficients.
  Result solve(FlowSolver solver = FlowSolver::kNetworkSimplex,
               int cost_digits = 4, int supply_digits = 3) const;

  int num_vars() const { return num_vars_; }
  int num_constraints() const { return static_cast<int>(cons_.size()); }

 private:
  struct Constraint {
    int a, b;
    double w;
  };
  struct ObjTerm {
    int plus, minus;
    double coeff;
  };

  int num_vars_;
  std::vector<bool> fixed_;
  std::vector<Constraint> cons_;
  std::vector<ObjTerm> obj_;
};

}  // namespace mft
