// The D-phase LP (paper eq. (10)) is a maximization over difference
// constraints:
//
//     maximize   Σ c_k · r_k
//     subject to r_a − r_b ≤ w_ab          (one per constraint)
//                r_k = 0 for "grounded" variables (PIs and the dummy
//                                                  output O, Corollary 1)
//
// Its dual is a min-cost network flow: each constraint becomes an
// uncapacitated arc a→b of cost w_ab, each objective coefficient a node
// supply, and all grounded variables collapse into one ground node. The
// optimal node potentials of the flow are an optimal r.
//
// Costs and supplies are integerized by decimal scaling exactly as §2.3.1
// prescribes; objective terms are added as ±pairs so supplies stay balanced
// after rounding.
//
// Reuse: the flow-network *structure* depends only on the constraint and
// objective endpoints — for a fixed netlist topology the D-phase produces
// the same structure every iteration, only bounds and coefficients move.
// A caller-owned DualFlowLp::Workspace caches the built McfProblem (plus
// the solver's McfWorkspace); solve() detects structure changes via a
// fingerprint and otherwise just rewrites arc costs and node supplies.
// `Workspace::problem_builds` counts the reconstructions (1 == perfect
// reuse), which the tier-1 suite asserts on.
#pragma once

#include <cstdint>
#include <vector>

#include "mcf/mcf.h"
#include "mcf/workspace.h"

namespace mft {

/// Which flow solver backs the LP. NetworkSimplex is the production choice;
/// the others exist for cross-checking and the solver-ablation bench.
enum class FlowSolver { kNetworkSimplex, kSsp, kCycleCanceling };

const char* to_string(FlowSolver s);

/// Builder + solver for the difference-constraint dual LP above.
class DualFlowLp {
 public:
  explicit DualFlowLp(int num_vars);

  /// Pin variable `v` to zero (PIs / dummy output in the D-phase).
  void fix_zero(int v);

  /// Add constraint  r_a − r_b ≤ w. Returns the constraint index.
  int add_constraint(int a, int b, double w);

  /// Add objective term  coeff · (r_plus − r_minus), coeff of either sign.
  /// Keeping the ± pair together guarantees exact supply balance after
  /// integer scaling. Returns the term index.
  int add_objective_difference(int plus, int minus, double coeff);

  /// Rewrite the bound of constraint `i` (endpoints unchanged). Lets a
  /// caller keep one built LP per topology and only move the bounds.
  void set_constraint_bound(int i, double w);

  /// Rewrite the coefficient of objective term `i` (endpoints unchanged).
  void set_objective_coeff(int i, double coeff);

  struct Result {
    bool solved = false;        ///< false => flow infeasible (LP unbounded)
    McfStatus flow_status = McfStatus::kInfeasible;
    std::vector<double> r;      ///< optimal variable values (grounded = 0)
    double objective = 0.0;     ///< Σ c_k r_k at the optimum
    Cost flow_cost = 0;         ///< integerized flow cost (diagnostics)
  };

  /// Reusable flow-problem skeleton + solver arena. See file comment.
  struct Workspace {
    McfProblem problem{0};
    McfWorkspace mcf;
    std::vector<NodeId> node;     ///< variable -> flow node
    std::vector<ArcId> cons_arc;  ///< constraint -> arc (kInvalidArc if
                                  ///< collapsed onto the ground node)
    NodeId ground = kInvalidNode;
    std::uint64_t fingerprint = 0;  ///< structure hash of the cached build
    int problem_builds = 0;         ///< times `problem` was reconstructed
  };

  /// Solve with decimal scaling 10^cost_digits for constraint bounds and
  /// 10^supply_digits for objective coefficients. With `ws`, the flow
  /// problem is rebuilt only when the LP structure changed since the
  /// workspace's last use.
  Result solve(FlowSolver solver = FlowSolver::kNetworkSimplex,
               int cost_digits = 4, int supply_digits = 3,
               Workspace* ws = nullptr) const;

  int num_vars() const { return num_vars_; }
  int num_constraints() const { return static_cast<int>(cons_.size()); }
  int num_objective_terms() const { return static_cast<int>(obj_.size()); }

 private:
  struct Constraint {
    int a, b;
    double w;
  };
  struct ObjTerm {
    int plus, minus;
    double coeff;
  };

  std::uint64_t structure_fingerprint() const;

  int num_vars_;
  std::vector<bool> fixed_;
  std::vector<Constraint> cons_;
  std::vector<ObjTerm> obj_;
};

}  // namespace mft
