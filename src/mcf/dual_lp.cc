#include "mcf/dual_lp.h"

#include <cmath>

#include "mcf/network_simplex.h"
#include "mcf/ssp.h"

namespace mft {

const char* to_string(FlowSolver s) {
  switch (s) {
    case FlowSolver::kNetworkSimplex:
      return "network-simplex";
    case FlowSolver::kSsp:
      return "ssp";
    case FlowSolver::kCycleCanceling:
      return "cycle-canceling";
  }
  return "?";
}

DualFlowLp::DualFlowLp(int num_vars) : num_vars_(num_vars) {
  MFT_CHECK(num_vars >= 0);
  fixed_.assign(static_cast<std::size_t>(num_vars), false);
}

void DualFlowLp::fix_zero(int v) {
  MFT_CHECK(v >= 0 && v < num_vars_);
  fixed_[static_cast<std::size_t>(v)] = true;
}

int DualFlowLp::add_constraint(int a, int b, double w) {
  MFT_CHECK(a >= 0 && a < num_vars_ && b >= 0 && b < num_vars_);
  MFT_CHECK_MSG(std::isfinite(w), "constraint bound must be finite");
  cons_.push_back(Constraint{a, b, w});
  return static_cast<int>(cons_.size()) - 1;
}

int DualFlowLp::add_objective_difference(int plus, int minus, double coeff) {
  MFT_CHECK(plus >= 0 && plus < num_vars_ && minus >= 0 && minus < num_vars_);
  MFT_CHECK(std::isfinite(coeff));
  obj_.push_back(ObjTerm{plus, minus, coeff});
  return static_cast<int>(obj_.size()) - 1;
}

void DualFlowLp::set_constraint_bound(int i, double w) {
  MFT_CHECK(i >= 0 && i < num_constraints());
  MFT_CHECK_MSG(std::isfinite(w), "constraint bound must be finite");
  cons_[static_cast<std::size_t>(i)].w = w;
}

void DualFlowLp::set_objective_coeff(int i, double coeff) {
  MFT_CHECK(i >= 0 && i < num_objective_terms());
  MFT_CHECK(std::isfinite(coeff));
  obj_[static_cast<std::size_t>(i)].coeff = coeff;
}

// FNV-1a over everything that determines the flow network's shape: the
// variable count, the grounded set, and the endpoints (not bounds /
// coefficients) of constraints and objective terms, in order.
std::uint64_t DualFlowLp::structure_fingerprint() const {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(num_vars_));
  for (int v = 0; v < num_vars_; ++v)
    if (fixed_[static_cast<std::size_t>(v)]) mix(static_cast<std::uint64_t>(v) + 1);
  mix(cons_.size());
  for (const Constraint& c : cons_) {
    mix(static_cast<std::uint64_t>(c.a));
    mix(static_cast<std::uint64_t>(c.b) << 32);
  }
  mix(obj_.size());
  for (const ObjTerm& t : obj_) {
    mix(static_cast<std::uint64_t>(t.plus));
    mix(static_cast<std::uint64_t>(t.minus) << 32);
  }
  return h;
}

DualFlowLp::Result DualFlowLp::solve(FlowSolver solver, int cost_digits,
                                     int supply_digits, Workspace* ws) const {
  MFT_CHECK(cost_digits >= 0 && cost_digits <= 9);
  MFT_CHECK(supply_digits >= 0 && supply_digits <= 9);
  const double cost_scale = std::pow(10.0, cost_digits);
  const double supply_scale = std::pow(10.0, supply_digits);

  Workspace local;
  Workspace& w = ws ? *ws : local;

  const std::uint64_t fp = structure_fingerprint();
  if (w.problem_builds == 0 || w.fingerprint != fp) {
    // (Re)build the structure: flow node per free variable; all fixed
    // variables share one ground node.
    w.node.assign(static_cast<std::size_t>(num_vars_), kInvalidNode);
    int next = 0;
    for (int v = 0; v < num_vars_; ++v)
      if (!fixed_[static_cast<std::size_t>(v)])
        w.node[static_cast<std::size_t>(v)] = next++;
    w.ground = next;
    for (int v = 0; v < num_vars_; ++v)
      if (fixed_[static_cast<std::size_t>(v)])
        w.node[static_cast<std::size_t>(v)] = w.ground;

    w.problem = McfProblem(next + 1);
    w.cons_arc.assign(cons_.size(), kInvalidArc);
    for (std::size_t i = 0; i < cons_.size(); ++i) {
      const Constraint& c = cons_[i];
      const NodeId na = w.node[static_cast<std::size_t>(c.a)];
      const NodeId nb = w.node[static_cast<std::size_t>(c.b)];
      if (na == nb) continue;  // grounded-grounded: validated below
      w.cons_arc[i] = w.problem.add_arc(na, nb, kInfFlow, 0);
    }
    w.fingerprint = fp;
    ++w.problem_builds;
  }

  // Rewrite the integerized costs and supplies in place. Rounding *down*
  // keeps every integerized constraint at least as tight as the real one,
  // so the returned r never violates the true LP.
  for (std::size_t i = 0; i < cons_.size(); ++i) {
    const Constraint& c = cons_[i];
    if (w.cons_arc[i] == kInvalidArc) {
      // Constraint between two grounded variables (or a variable and
      // itself): 0 <= w must hold or the LP is infeasible; the D-phase
      // never produces a violating one, so treat it as a hard error.
      MFT_CHECK_MSG(c.w >= -1e-12, "infeasible grounded constraint");
      continue;
    }
    w.problem.set_arc_cost(w.cons_arc[i],
                           static_cast<Cost>(std::floor(c.w * cost_scale)));
  }
  w.problem.clear_supplies();
  for (const ObjTerm& t : obj_) {
    const Flow s = std::llround(t.coeff * supply_scale);
    if (s == 0) continue;
    w.problem.add_supply(w.node[static_cast<std::size_t>(t.plus)], s);
    w.problem.add_supply(w.node[static_cast<std::size_t>(t.minus)], -s);
  }

  McfSolution sol;
  switch (solver) {
    case FlowSolver::kNetworkSimplex:
      sol = solve_network_simplex(w.problem, {}, &w.mcf);
      break;
    case FlowSolver::kSsp:
      sol = solve_ssp(w.problem, w.mcf);
      break;
    case FlowSolver::kCycleCanceling:
      sol = solve_cycle_canceling(w.problem);
      break;
  }

  Result res;
  res.flow_status = sol.status;
  if (sol.status != McfStatus::kOptimal) return res;
  res.solved = true;
  res.flow_cost = sol.total_cost;

  // Optimal r: shift potentials so ground sits at exactly 0, then unscale.
  const Cost base = sol.potential[static_cast<std::size_t>(w.ground)];
  res.r.assign(static_cast<std::size_t>(num_vars_), 0.0);
  for (int v = 0; v < num_vars_; ++v) {
    const NodeId nv = w.node[static_cast<std::size_t>(v)];
    res.r[static_cast<std::size_t>(v)] =
        static_cast<double>(sol.potential[static_cast<std::size_t>(nv)] - base) /
        cost_scale;
  }
  for (const ObjTerm& t : obj_)
    res.objective += t.coeff * (res.r[static_cast<std::size_t>(t.plus)] -
                                res.r[static_cast<std::size_t>(t.minus)]);
  return res;
}

}  // namespace mft
