#include "mcf/dual_lp.h"

#include <cmath>

#include "mcf/network_simplex.h"
#include "mcf/ssp.h"

namespace mft {

const char* to_string(FlowSolver s) {
  switch (s) {
    case FlowSolver::kNetworkSimplex:
      return "network-simplex";
    case FlowSolver::kSsp:
      return "ssp";
    case FlowSolver::kCycleCanceling:
      return "cycle-canceling";
  }
  return "?";
}

DualFlowLp::DualFlowLp(int num_vars) : num_vars_(num_vars) {
  MFT_CHECK(num_vars >= 0);
  fixed_.assign(static_cast<std::size_t>(num_vars), false);
}

void DualFlowLp::fix_zero(int v) {
  MFT_CHECK(v >= 0 && v < num_vars_);
  fixed_[static_cast<std::size_t>(v)] = true;
}

void DualFlowLp::add_constraint(int a, int b, double w) {
  MFT_CHECK(a >= 0 && a < num_vars_ && b >= 0 && b < num_vars_);
  MFT_CHECK_MSG(std::isfinite(w), "constraint bound must be finite");
  cons_.push_back(Constraint{a, b, w});
}

void DualFlowLp::add_objective_difference(int plus, int minus, double coeff) {
  MFT_CHECK(plus >= 0 && plus < num_vars_ && minus >= 0 && minus < num_vars_);
  MFT_CHECK(std::isfinite(coeff));
  obj_.push_back(ObjTerm{plus, minus, coeff});
}

DualFlowLp::Result DualFlowLp::solve(FlowSolver solver, int cost_digits,
                                     int supply_digits) const {
  MFT_CHECK(cost_digits >= 0 && cost_digits <= 9);
  MFT_CHECK(supply_digits >= 0 && supply_digits <= 9);
  const double cost_scale = std::pow(10.0, cost_digits);
  const double supply_scale = std::pow(10.0, supply_digits);

  // Flow node per free variable; all fixed variables share one ground node.
  std::vector<NodeId> node(static_cast<std::size_t>(num_vars_));
  int next = 0;
  for (int v = 0; v < num_vars_; ++v)
    if (!fixed_[static_cast<std::size_t>(v)]) node[static_cast<std::size_t>(v)] = next++;
  const NodeId ground = next;
  for (int v = 0; v < num_vars_; ++v)
    if (fixed_[static_cast<std::size_t>(v)]) node[static_cast<std::size_t>(v)] = ground;

  McfProblem p(next + 1);
  for (const Constraint& c : cons_) {
    const NodeId na = node[static_cast<std::size_t>(c.a)];
    const NodeId nb = node[static_cast<std::size_t>(c.b)];
    if (na == nb) {
      // Constraint between two grounded variables (or a variable and
      // itself): 0 <= w must hold or the LP is infeasible; the D-phase
      // never produces a violating one, so treat it as a hard error.
      MFT_CHECK_MSG(c.w >= -1e-12, "infeasible grounded constraint");
      continue;
    }
    // Round *down*: the integerized constraint is then at least as tight as
    // the real one, so the returned r never violates the true LP.
    p.add_arc(na, nb, kInfFlow,
              static_cast<Cost>(std::floor(c.w * cost_scale)));
  }
  for (const ObjTerm& t : obj_) {
    const Flow s = std::llround(t.coeff * supply_scale);
    if (s == 0) continue;
    p.add_supply(node[static_cast<std::size_t>(t.plus)], s);
    p.add_supply(node[static_cast<std::size_t>(t.minus)], -s);
  }

  McfSolution sol;
  switch (solver) {
    case FlowSolver::kNetworkSimplex:
      sol = solve_network_simplex(p);
      break;
    case FlowSolver::kSsp:
      sol = solve_ssp(p);
      break;
    case FlowSolver::kCycleCanceling:
      sol = solve_cycle_canceling(p);
      break;
  }

  Result res;
  res.flow_status = sol.status;
  if (sol.status != McfStatus::kOptimal) return res;
  res.solved = true;
  res.flow_cost = sol.total_cost;

  // Optimal r: shift potentials so ground sits at exactly 0, then unscale.
  const Cost base = sol.potential[static_cast<std::size_t>(ground)];
  res.r.assign(static_cast<std::size_t>(num_vars_), 0.0);
  for (int v = 0; v < num_vars_; ++v) {
    const NodeId nv = node[static_cast<std::size_t>(v)];
    res.r[static_cast<std::size_t>(v)] =
        static_cast<double>(sol.potential[static_cast<std::size_t>(nv)] - base) /
        cost_scale;
  }
  for (const ObjTerm& t : obj_)
    res.objective += t.coeff * (res.r[static_cast<std::size_t>(t.plus)] -
                                res.r[static_cast<std::size_t>(t.minus)]);
  return res;
}

}  // namespace mft
