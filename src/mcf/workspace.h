// Reusable solver workspace for the min-cost-flow layer.
//
// Every D-phase call solves one flow instance; MINFLOTRANSIT runs up to 100
// of them back to back on the same topology. Before this arena existed each
// solve reallocated every parallel array (tail/head/cap/cost/flow/state and
// the whole spanning-tree basis) from scratch — pure allocator churn on the
// hot path. A caller that owns an McfWorkspace across calls pays the
// allocation once; subsequent solves only overwrite.
//
// The workspace is plain data: no invariants survive between solves except
// vector capacity (and the stats of the most recent run). Passing nullptr
// everywhere keeps the old allocate-per-call behavior.
#pragma once

#include <cstdint>
#include <vector>

#include "mcf/mcf.h"

namespace mft {

struct McfWorkspace {
  // --- Network simplex: parallel arrays over user + artificial arcs ------
  std::vector<NodeId> tail, head;
  std::vector<Flow> cap, flow;
  std::vector<Cost> cost;
  std::vector<int> state;

  // Spanning-tree basis, depth-indexed (depth[root] == 0).
  std::vector<Cost> pi;
  std::vector<NodeId> parent;
  std::vector<ArcId> pred;
  std::vector<int> pred_dir;
  std::vector<int> depth;
  std::vector<std::vector<ArcId>> tree_adj;

  // Pricing + pivot scratch.
  std::vector<ArcId> candidates;  ///< candidate-list pricing shortlist
  std::vector<NodeId> stack;      ///< reroot DFS stack
  std::vector<NodeId> path_first, path_second;  ///< pivot cycle halves

  // --- Successive shortest paths: residual network + Dijkstra scratch ----
  std::vector<NodeId> res_to;
  std::vector<Flow> res_cap;
  std::vector<Cost> res_cost;
  std::vector<std::vector<int>> res_adj;
  std::vector<Flow> excess;
  std::vector<Cost> dist, johnson_pi;
  std::vector<int> pred_arc;
  std::vector<char> settled;

  // --- Stats of the most recent solve ------------------------------------
  std::int64_t ns_pivots = 0;         ///< network-simplex pivots
  std::int64_t ssp_augmentations = 0; ///< SSP shortest-path augmentations

  /// Zero the solve stats (capacity and cached arrays are kept). Called by
  /// SizingContext between batch jobs so per-job stats start clean.
  void reset_stats() {
    ns_pivots = 0;
    ssp_augmentations = 0;
  }
};

}  // namespace mft
