// Primal network simplex for min-cost flow.
//
// This is the production solver used by the D-phase. The paper's complexity
// citation [9] (Goldberg/Grigoriadis/Tarjan) is a network-simplex variant;
// like LEMON's implementation we use a spanning-tree basis with a block
// pivot search, big-M artificial arcs rooted at a virtual node, and the
// "strongly feasible" leaving-arc tie-break that prevents cycling.
//
// All arithmetic is exact int64 (the D-phase integerizes its costs by
// power-of-ten scaling per §2.3.1 before calling this).
#pragma once

#include "mcf/mcf.h"

namespace mft {

struct NetworkSimplexOptions {
  /// Pivot block size as a fraction of sqrt(num arcs); 0 picks a default.
  int block_size = 0;
  /// Hard safety cap on pivots (guards against a cycling bug, not expected
  /// to trigger). 0 picks 50*m + 1000.
  std::int64_t max_pivots = 0;
};

/// Solves `p` to optimality. Returns flows, total cost, and node potentials
/// satisfying the contract documented in mcf.h.
McfSolution solve_network_simplex(const McfProblem& p,
                                  const NetworkSimplexOptions& opt = {});

}  // namespace mft
