// Primal network simplex for min-cost flow.
//
// This is the production solver used by the D-phase. The paper's complexity
// citation [9] (Goldberg/Grigoriadis/Tarjan) is a network-simplex variant;
// like LEMON's implementation we use a spanning-tree basis with big-M
// artificial arcs rooted at a virtual node and the "strongly feasible"
// leaving-arc tie-break that prevents cycling.
//
// Performance architecture:
//  - The basis is depth-indexed: each node carries its tree depth, so the
//    cycle join of a pivot is found by a two-pointer walk (no mark array)
//    and subtree re-rooting updates duals with a single constant shift.
//  - Two pricing rules: classic block search, and a candidate-list rule
//    that keeps a shortlist of violating arcs between full scans (LEMON's
//    CandidateListPivotRule) — the default, measurably faster on the deep
//    chain-heavy networks the D-phase produces.
//  - All solver state can live in a caller-owned McfWorkspace so repeated
//    solves (100 D-phase iterations on one netlist) never reallocate.
//
// All arithmetic is exact int64 (the D-phase integerizes its costs by
// power-of-ten scaling per §2.3.1 before calling this).
#pragma once

#include "mcf/mcf.h"
#include "mcf/workspace.h"

namespace mft {

struct NetworkSimplexOptions {
  enum class Pricing {
    kBlockSearch,    ///< cyclic block scan, best violating arc per block
    kCandidateList,  ///< shortlist of violating arcs between full scans
  };
  Pricing pricing = Pricing::kCandidateList;
  /// Pivot block size for kBlockSearch; 0 picks sqrt(num arcs).
  int block_size = 0;
  /// Shortlist capacity for kCandidateList; 0 picks ~1.25*sqrt(num arcs).
  int candidate_list_size = 0;
  /// Pivots served from one shortlist before a rebuild; 0 picks size/10.
  int minor_limit = 0;
  /// Hard safety cap on pivots (guards against a cycling bug, not expected
  /// to trigger). 0 picks 50*m + 1000.
  std::int64_t max_pivots = 0;
};

/// Solves `p` to optimality. Returns flows, total cost, and node potentials
/// satisfying the contract documented in mcf.h. If `ws` is non-null, all
/// solver arrays live in (and are reused from) the workspace, and
/// `ws->ns_pivots` reports the pivot count of this run.
McfSolution solve_network_simplex(const McfProblem& p,
                                  const NetworkSimplexOptions& opt = {},
                                  McfWorkspace* ws = nullptr);

}  // namespace mft
