// Transistor-level lowering (paper §2.1–2.2, Fig. 1–2).
//
// Per gate and per conduction plane (NMOS pulldown, PMOS pullup = dual):
//  - every transistor is a vertex;
//  - the plane's series/parallel tree is flattened into *levels* counted
//    from the output node toward the supply rail, aligned at the output
//    side (exact for all primitive cells, whose nesting depth is <= 2);
//  - Elmore load coefficients: a transistor at level L carries, under its
//    1/x resistance, the capacitance of the output node plus every internal
//    stack node above it (drain+source parasitics of the adjacent levels),
//    which reproduces eq. (2)/(3) exactly for NAND stacks;
//  - DAG arcs run from the output side ("higher up in the discharging
//    path") toward the rail, so root vertices sit at the output node and
//    leaf vertices at the rail;
//  - cross-gate arcs connect NMOS leaves of the driver to the PMOS roots of
//    the driven gate that share a conduction path with the driven
//    transistor, and vice versa (Fig. 2).
#include <algorithm>
#include <array>
#include <map>

#include "timing/lowering.h"
#include "util/str.h"

namespace mft {
namespace {

/// One conduction plane of one gate, flattened.
struct Plane {
  struct Device {
    int pin = -1;    ///< gate input pin driving this transistor
    int level = 0;   ///< 0 = adjacent to the output node
    NodeId vertex = kInvalidNode;
  };
  std::vector<Device> devices;
  std::vector<std::vector<int>> members;          ///< device indices by level
  std::vector<std::pair<int, int>> series_arcs;   ///< device -> device
  std::vector<int> entries, exits;                ///< device indices
  std::map<int, std::vector<int>> pin_roots;      ///< pin -> root devices
  int depth = 0;
};

struct SubInfo {
  std::vector<int> entries, exits;
  int depth = 0;
};

SubInfo build_plane(const SpTree& t, int start_level, Plane& plane) {
  switch (t.kind()) {
    case SpKind::kLeaf: {
      const int idx = static_cast<int>(plane.devices.size());
      plane.devices.push_back(Plane::Device{t.pin(), start_level, kInvalidNode});
      plane.pin_roots[t.pin()] = {idx};
      return SubInfo{{idx}, {idx}, 1};
    }
    case SpKind::kSeries: {
      SubInfo all;
      int level = start_level;
      std::vector<int> prev_exits;
      std::vector<int> first_entries;
      for (std::size_t i = 0; i < t.children().size(); ++i) {
        // Record which pins belong to this child so non-first children can
        // have their roots redirected to the series head.
        const std::size_t pins_before = plane.devices.size();
        SubInfo info = build_plane(t.children()[i], level, plane);
        level += info.depth;
        all.depth += info.depth;
        if (i == 0) {
          all.entries = info.entries;
          first_entries = info.entries;
        } else {
          for (int u : prev_exits)
            for (int v : info.entries) plane.series_arcs.emplace_back(u, v);
          // Any conduction path through a non-head child enters the series
          // block through the head's entries.
          for (std::size_t d = pins_before; d < plane.devices.size(); ++d)
            plane.pin_roots[plane.devices[d].pin] = first_entries;
        }
        prev_exits = info.exits;
      }
      all.exits = prev_exits;
      return all;
    }
    case SpKind::kParallel: {
      SubInfo all;
      for (const SpTree& c : t.children()) {
        SubInfo info = build_plane(c, start_level, plane);
        all.entries.insert(all.entries.end(), info.entries.begin(),
                           info.entries.end());
        all.exits.insert(all.exits.end(), info.exits.begin(),
                         info.exits.end());
        all.depth = std::max(all.depth, info.depth);
      }
      return all;
    }
  }
  MFT_CHECK(false);
  return {};
}

Plane make_plane(const SpTree& topology) {
  Plane plane;
  SubInfo top = build_plane(topology, 0, plane);
  plane.entries = std::move(top.entries);
  plane.exits = std::move(top.exits);
  plane.depth = top.depth;
  plane.members.resize(static_cast<std::size_t>(plane.depth));
  for (std::size_t d = 0; d < plane.devices.size(); ++d)
    plane.members[static_cast<std::size_t>(plane.devices[d].level)].push_back(
        static_cast<int>(d));
  return plane;
}

}  // namespace

LoweredCircuit lower_transistor_level(const Netlist& nl, const Tech& tech) {
  MFT_CHECK_MSG(nl.is_primitive_only(),
                "transistor lowering requires a primitive netlist; run "
                "tech_map_to_primitives first");
  LoweredCircuit out(tech);
  SizingNetwork& net = out.net;
  out.gate_vertices.resize(static_cast<std::size_t>(nl.num_gates()));
  out.wire_vertices.assign(static_cast<std::size_t>(nl.num_gates()),
                           kInvalidNode);

  // Pass 1: vertices. Planes indexed [gate][0=pulldown NMOS, 1=pullup PMOS].
  std::vector<std::array<Plane, 2>> planes(
      static_cast<std::size_t>(nl.num_gates()));
  std::vector<NodeId> source_vtx(static_cast<std::size_t>(nl.num_gates()),
                                 kInvalidNode);
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const Gate& gate = nl.gate(g);
    if (gate.kind == GateKind::kInput) {
      SizingVertex v;
      v.kind = VertexKind::kSource;
      v.origin_gate = g;
      source_vtx[static_cast<std::size_t>(g)] =
          net.add_vertex(std::move(v), gate.name);
      out.gate_vertices[static_cast<std::size_t>(g)] = {
          source_vtx[static_cast<std::size_t>(g)]};
      continue;
    }
    const int fanin = static_cast<int>(gate.fanins.size());
    const SpTree pd = pulldown_topology(gate.kind, fanin);
    planes[static_cast<std::size_t>(g)][0] = make_plane(pd);
    planes[static_cast<std::size_t>(g)][1] = make_plane(pd.dual());
    for (int pl = 0; pl < 2; ++pl) {
      Plane& plane = planes[static_cast<std::size_t>(g)][static_cast<std::size_t>(pl)];
      for (std::size_t d = 0; d < plane.devices.size(); ++d) {
        SizingVertex v;
        v.kind = VertexKind::kTransistor;
        v.origin_gate = g;
        plane.devices[d].vertex = net.add_vertex(
            std::move(v),
            strf("%s_%s%zu", gate.name.c_str(), pl == 0 ? "n" : "p", d));
        out.gate_vertices[static_cast<std::size_t>(g)].push_back(
            plane.devices[d].vertex);
      }
    }
  }

  // Pass 2: load coefficients and arcs.
  const double rc_par = tech.r_unit * tech.c_par;
  const double rc_in = tech.r_unit * tech.c_in;
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const Gate& gate = nl.gate(g);
    if (gate.kind == GateKind::kInput) continue;

    // Output-node capacitors: level-0 drains of both planes, wire, pins.
    std::vector<NodeId> out_node_devices;
    for (int pl = 0; pl < 2; ++pl) {
      const Plane& plane =
          planes[static_cast<std::size_t>(g)][static_cast<std::size_t>(pl)];
      for (int d : plane.members[0])
        out_node_devices.push_back(
            plane.devices[static_cast<std::size_t>(d)].vertex);
    }
    std::vector<NodeId> driven_pins;  // transistors whose gates hang on net
    int connections = 0;
    for (GateId h : nl.fanouts(g)) {
      const Gate& sink = nl.gate(h);
      for (std::size_t pin = 0; pin < sink.fanins.size(); ++pin) {
        if (sink.fanins[pin] != g) continue;
        ++connections;
        for (int pl = 0; pl < 2; ++pl) {
          const Plane& sp =
              planes[static_cast<std::size_t>(h)][static_cast<std::size_t>(pl)];
          for (const Plane::Device& dev : sp.devices)
            if (dev.pin == static_cast<int>(pin))
              driven_pins.push_back(dev.vertex);
        }
      }
    }
    const double fixed_b =
        tech.r_unit * (tech.c_wire * connections +
                       (nl.is_output(g) ? tech.c_po_load : 0.0));

    for (int pl = 0; pl < 2; ++pl) {
      const Plane& plane =
          planes[static_cast<std::size_t>(g)][static_cast<std::size_t>(pl)];
      for (const Plane::Device& dev : plane.devices) {
        const NodeId t = dev.vertex;
        auto load = [&](NodeId j, double coeff) {
          if (j == t)
            net.add_a_self(t, coeff);
          else
            net.add_load(t, j, coeff);
        };
        // Internal stack nodes above this device: boundary bd sits between
        // levels bd-1 and bd and carries the parasitics of both.
        for (int bd = 1; bd <= dev.level; ++bd) {
          for (int lv = bd - 1; lv <= bd; ++lv)
            for (int m : plane.members[static_cast<std::size_t>(lv)])
              load(plane.devices[static_cast<std::size_t>(m)].vertex, rc_par);
        }
        // Output node.
        for (NodeId j : out_node_devices) load(j, rc_par);
        for (NodeId j : driven_pins) load(j, rc_in);
        net.add_b(t, fixed_b);
        if (nl.is_output(g) &&
            std::find(plane.exits.begin(), plane.exits.end(),
                      static_cast<int>(&dev - plane.devices.data())) !=
                plane.exits.end())
          net.set_po(t, true);
      }
      // Intra-plane series arcs (output side -> rail side).
      for (const auto& [u, v] : plane.series_arcs)
        net.add_arc(plane.devices[static_cast<std::size_t>(u)].vertex,
                    plane.devices[static_cast<std::size_t>(v)].vertex);
    }
  }

  // Pass 3: cross-gate arcs. For every connection driver->(gate h, pin p):
  // driver NMOS exits -> h's PMOS roots reaching p, and PMOS exits -> NMOS
  // roots reaching p. PIs connect from their source vertex to both planes.
  for (GateId h = 0; h < nl.num_gates(); ++h) {
    const Gate& sink = nl.gate(h);
    if (sink.kind == GateKind::kInput) continue;
    for (std::size_t pin = 0; pin < sink.fanins.size(); ++pin) {
      const GateId drv = sink.fanins[pin];
      for (int sink_pl = 0; sink_pl < 2; ++sink_pl) {
        const Plane& sp = planes[static_cast<std::size_t>(h)]
                                [static_cast<std::size_t>(sink_pl)];
        auto roots_it = sp.pin_roots.find(static_cast<int>(pin));
        MFT_CHECK(roots_it != sp.pin_roots.end());
        if (nl.is_input(drv)) {
          for (int r : roots_it->second)
            net.add_arc(source_vtx[static_cast<std::size_t>(drv)],
                        sp.devices[static_cast<std::size_t>(r)].vertex);
          continue;
        }
        // NMOS driver plane (0) pairs with PMOS sink plane (1), and vice
        // versa: a falling driver output turns on the sink's PMOS plane.
        const Plane& dp = planes[static_cast<std::size_t>(drv)]
                                [static_cast<std::size_t>(1 - sink_pl)];
        for (int e : dp.exits)
          for (int r : roots_it->second)
            net.add_arc(dp.devices[static_cast<std::size_t>(e)].vertex,
                        sp.devices[static_cast<std::size_t>(r)].vertex);
      }
    }
  }

  net.freeze();
  return out;
}

}  // namespace mft
